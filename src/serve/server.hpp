// serve::Server — a long-lived network answering a query stream.
//
// The single-shot callers (mcbsim select, examples/topk_query.cpp) pay the
// full Network construction and coroutine-frame cold start per question.
// The server keeps ONE Network alive for the whole session: every batch
// re-installs programs into the same ProcTable/channel-slot allocation via
// Network::reset(), and the frame arenas stay warm, so steady-state batches
// allocate almost nothing (RunStats::frame_reuses / arena_hit_rate in the
// report show it).
//
// Admission/batching policy: rank_select and top_k queries are both "give
// me the d-th largest" questions, so up to `batch` of them coalesce into
// one multi-rank selection run (algo::select_ranks_on — the Nowicki-style
// batched filter). A churn op is a write barrier: the pending batch
// flushes first, then the mutation applies host-side (zero simulated
// cycles — resident-set maintenance is local bookkeeping, not broadcast
// traffic). The stream ends with a final flush.
//
// Latency accounting: a query's simulated-cycle latency is the cycles of
// the batch run that answered it — every member of a batch waits for the
// whole run, exactly like requests coalesced behind one scan. Per-class
// obs::Histograms aggregate p50/p95/p99; throughput is queries per 1000
// simulated cycles. The report carries only model-level quantities
// (cycles, messages, values, phases), so it is byte-identical across
// engines and thread counts for a fixed seed — `tools/ci.sh` cmp's it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mcb/sim_config.hpp"
#include "obs/metrics.hpp"
#include "serve/query.hpp"

namespace mcb {
class TraceSink;  // mcb/trace.hpp
}  // namespace mcb

namespace mcb::serve {

struct ServeConfig {
  SimConfig sim;                  ///< p, k, engine, threads
  std::size_t n = 4096;           ///< resident dataset size (p | n)
  std::uint64_t seed = 1;         ///< dataset + stream seed
  std::size_t queries = 64;       ///< stream length
  std::size_t batch = 8;          ///< max rank queries coalesced per run
  std::vector<ClassSpec> classes;  ///< empty = "rank:4,topk:2,churn:1"
  /// Cross-check every answer against Dataset::nth_largest (host-side
  /// ground truth). O(n) per query — for tests, not throughput runs.
  bool verify = false;
  /// Trace sink handed to the persistent Network (nullptr = untraced) —
  /// lets `mcbsim serve --trace-out` capture the whole session's event
  /// stream. Host-side observation only; the deterministic report is
  /// unchanged by it. Must outlive run_server.
  TraceSink* sink = nullptr;
};

/// One answered query, in stream order.
struct QueryRecord {
  std::size_t index = 0;       ///< position in the stream
  std::size_t cls = 0;         ///< class index
  OpKind kind = OpKind::kRankSelect;
  std::size_t rank = 0;        ///< resolved rank d (0 for churn)
  Word value = 0;              ///< the answer (0 for churn)
  std::size_t batch_id = 0;    ///< flush that answered it (0 for churn)
  Cycle latency_cycles = 0;    ///< cycles of that flush's run (0 for churn)
};

struct ServeReport {
  ServeConfig cfg;
  std::vector<QueryRecord> queries;   ///< stream order
  std::size_t batches = 0;            ///< selection runs executed
  Cycle total_cycles = 0;             ///< summed over batch runs
  std::uint64_t total_messages = 0;
  std::size_t churn_ops = 0;
  std::size_t filter_phases = 0;      ///< summed over batch runs
  /// Steady-state reuse evidence (host-side; excluded from json()):
  /// summed frame allocs/reuses over every batch run.
  std::uint64_t frame_allocs = 0;
  std::uint64_t frame_reuses = 0;
  /// Per-class latency histograms plus serving counters; also carries
  /// "serve.cycles_per_query" and "serve.queries_per_kcycle" gauges.
  obs::Metrics metrics;

  /// Host-time telemetry, populated only when ServeConfig::sim.profiler is
  /// attached; all empty otherwise. batch_wall_ns is the per-flush host
  /// wall time (RunStats::sim_wall_ns of each batch run) in flush order —
  /// the serving loop's rolling latency window. The json/text pair is the
  /// rendered `host_profile` subtree; like every host_profile, it is
  /// excluded from the byte-identical determinism contract.
  std::vector<std::uint64_t> batch_wall_ns;
  std::string host_profile_json;
  std::string host_profile_text;

  /// Deterministic JSON document (model-level fields only — byte-identical
  /// across engines/threads for one seed), plus, when profiling was on, a
  /// trailing `host_profile` member that `mcbsim strip-host` removes before
  /// any byte comparison.
  std::string json() const;
  /// Deterministic Markdown report (same determinism contract; a trailing
  /// "Host profile" section appears only when profiling was on).
  std::string markdown() const;
};

/// Runs the whole session: dataset + stream from cfg.seed, one persistent
/// network, batched answering as above. Throws on model violations or (with
/// cfg.verify) any wrong answer.
ServeReport run_server(const ServeConfig& cfg);

}  // namespace mcb::serve
