#include "serve/query.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <iterator>
#include <limits>
#include <stdexcept>

#include "util/check.hpp"
#include "util/workload.hpp"

namespace mcb::serve {

namespace {

/// Tail fractions a rank class draws from: the p50/p90/p95/p99/p999 menu of
/// a latency dashboard. Clustered tails are the realistic serving mix —
/// and the one batched selection amortizes best, since neighbouring ranks
/// share their filtering prefix (algo/multi_select.hpp).
constexpr double kRankMenu[] = {0.50, 0.10, 0.05, 0.01, 0.001};

/// Top-k menu: admission cutoffs a feed/aggregator asks for.
constexpr std::size_t kTopKMenu[] = {1, 8, 64};

}  // namespace

std::size_t quantile_rank(std::size_t n, double fraction) {
  MCB_REQUIRE(n > 0, "quantile_rank over an empty set");
  MCB_REQUIRE(fraction >= 0.0 && fraction <= 1.0,
              "fraction " << fraction << " outside [0, 1]");
  // Nearest-rank with the ceil convention of obs::Histogram::quantile:
  // rank ceil(n * fraction), floored at 1 (fraction 0 still names an
  // element), capped at n (fp round-up on fraction 1).
  auto d = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(n)));
  if (d == 0) d = 1;
  return std::min(d, n);
}

std::vector<ClassSpec> parse_classes(const std::string& spec) {
  std::vector<ClassSpec> out;
  std::size_t start = 0;
  while (start <= spec.size()) {
    auto end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(start, end - start);
    start = end + 1;
    if (item.empty()) continue;
    const auto colon = item.find(':');
    const std::string kind_name = item.substr(0, colon);
    ClassSpec cls;
    cls.name = kind_name;
    if (kind_name == "rank") {
      cls.kind = OpKind::kRankSelect;
    } else if (kind_name == "topk") {
      cls.kind = OpKind::kTopK;
    } else if (kind_name == "churn") {
      cls.kind = OpKind::kChurn;
    } else {
      throw std::invalid_argument("unknown query class '" + kind_name +
                                  "' (rank|topk|churn)");
    }
    if (colon != std::string::npos) {
      const std::string w = item.substr(colon + 1);
      if (w.empty() || w.find_first_not_of("0123456789") != std::string::npos) {
        throw std::invalid_argument("malformed class weight in '" + item +
                                    "' (kind:weight, digits only)");
      }
      cls.weight = std::stoull(w);
      if (cls.weight == 0) {
        throw std::invalid_argument("class weight 0 in '" + item +
                                    "' (omit the class instead)");
      }
    }
    out.push_back(std::move(cls));
  }
  if (out.empty()) {
    throw std::invalid_argument("empty class list '" + spec + "'");
  }
  return out;
}

Dataset::Dataset(std::size_t n, std::size_t p, std::uint64_t seed)
    : rng_(util::splitmix64(seed) ^ 0xda7a5e7ull) {
  auto w = util::make_workload(n, p, util::Shape::kEven, seed);
  shards_ = std::move(w.inputs);
  n_ = n;
  Word max_seen = std::numeric_limits<Word>::min();
  for (const auto& shard : shards_) {
    for (Word v : shard) max_seen = std::max(max_seen, v);
  }
  next_fresh_ = max_seen + 1;
}

void Dataset::churn() {
  // Insert: fresh values are drawn from a strictly increasing counter above
  // everything ever resident, so distinctness is free. Round-robin target
  // shard keeps the distribution even without consulting sizes.
  shards_[insert_cursor_].push_back(next_fresh_++);
  insert_cursor_ = (insert_cursor_ + 1) % shards_.size();
  ++n_;

  // Delete: a seeded draw picks the victim shard; shards that would go
  // empty are skipped (the selection collectives require one element per
  // processor). Some shard has >= 2 elements whenever n > p, which the
  // insert above guarantees.
  auto s = static_cast<std::size_t>(
      rng_.uniform(0, static_cast<std::int64_t>(shards_.size()) - 1));
  while (shards_[s].size() <= 1) s = (s + 1) % shards_.size();
  auto& shard = shards_[s];
  const auto victim = static_cast<std::size_t>(
      rng_.uniform(0, static_cast<std::int64_t>(shard.size()) - 1));
  shard[victim] = shard.back();
  shard.pop_back();
  --n_;
}

Word Dataset::nth_largest(std::size_t d) const {
  MCB_REQUIRE(d >= 1 && d <= n_, "rank " << d << " of " << n_);
  std::vector<Word> all;
  all.reserve(n_);
  for (const auto& shard : shards_) {
    all.insert(all.end(), shard.begin(), shard.end());
  }
  std::nth_element(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(d - 1),
                   all.end(), std::greater<Word>{});
  return all[d - 1];
}

QueryStream::QueryStream(std::vector<ClassSpec> classes, std::uint64_t seed)
    : classes_(std::move(classes)),
      rng_(util::splitmix64(seed) ^ 0x5e6e5e6eull) {
  MCB_REQUIRE(!classes_.empty(), "query stream needs at least one class");
  for (const auto& c : classes_) total_weight_ += c.weight;
}

Query QueryStream::next() {
  auto draw = static_cast<std::uint64_t>(
      rng_.uniform(0, static_cast<std::int64_t>(total_weight_) - 1));
  std::size_t cls = 0;
  while (draw >= classes_[cls].weight) {
    draw -= classes_[cls].weight;
    ++cls;
  }
  Query q;
  q.cls = cls;
  q.kind = classes_[cls].kind;
  switch (q.kind) {
    case OpKind::kRankSelect:
      q.fraction = kRankMenu[static_cast<std::size_t>(rng_.uniform(
          0, static_cast<std::int64_t>(std::size(kRankMenu)) - 1))];
      break;
    case OpKind::kTopK:
      q.top_m = kTopKMenu[static_cast<std::size_t>(rng_.uniform(
          0, static_cast<std::int64_t>(std::size(kTopKMenu)) - 1))];
      break;
    case OpKind::kChurn:
      break;
  }
  return q;
}

}  // namespace mcb::serve
