// The serving layer's query model: a deterministic, seedable stream of
// rank/top-k/churn operations over a resident sharded dataset.
//
// Everything here is host-side bookkeeping — queries and churn mutations
// are generated and applied outside the simulated network; only the batched
// selection runs (serve/server.hpp) spend simulated cycles. Determinism is
// the design constraint throughout: the stream is a pure function of
// (seed, class mix, dataset size), so a serving session replays identically
// on any engine and any thread count, and the reports can be compared
// byte-for-byte (tools/ci.sh does exactly that).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mcb/types.hpp"
#include "util/random.hpp"

namespace mcb::serve {

/// Nearest-rank rank for the top `fraction` of `n` elements:
/// max(1, ceil(n * fraction)), clamped to n. The same convention as
/// obs::Histogram::quantile (ceil(q * count), floored at rank 1), so a
/// "p99" rank query and the p99 of a latency histogram mean the same
/// element. Callers that truncate instead (size_t(n * f)) are off by one
/// whenever n * f is not integral — the bug examples/topk_query.cpp had.
std::size_t quantile_rank(std::size_t n, double fraction);

/// The three operation kinds a serving class can issue.
enum class OpKind {
  kRankSelect,  ///< rank_select(d): the d-th largest resident value
  kTopK,        ///< top_k(m): the m-th largest — the top-m admission cutoff
  kChurn,       ///< churn: insert one fresh value, delete one resident value
};

/// One tenant: a named query class with a stream weight. The stream draws
/// classes proportionally to weight, so "rank:4,topk:2,churn:1" yields a
/// 4:2:1 traffic mix.
struct ClassSpec {
  std::string name;
  OpKind kind = OpKind::kRankSelect;
  std::uint64_t weight = 1;
};

/// Parses a --classes flag: comma-separated `kind:weight` items with kind
/// in {rank, topk, churn} and weight a positive integer. Throws
/// std::invalid_argument on malformed input.
std::vector<ClassSpec> parse_classes(const std::string& spec);

/// One query drawn from the stream.
struct Query {
  std::size_t cls = 0;  ///< index into the class list
  OpKind kind = OpKind::kRankSelect;
  /// kRankSelect: the tail fraction drawn from the quantile menu (the rank
  /// is quantile_rank(current n, fraction) at admission time, so churn
  /// between draws shifts it correctly). kTopK/kChurn: unused.
  double fraction = 0.0;
  /// kTopK: the requested m. kRankSelect/kChurn: unused.
  std::size_t top_m = 0;
};

/// The resident dataset, sharded one slice per processor. Values are
/// distinct (the selection collectives require it) and every shard stays
/// non-empty across churn. Mutations are deterministic functions of the
/// construction seed and the call sequence.
class Dataset {
 public:
  /// n distinct values split evenly over p shards (requires p | n),
  /// generated from `seed` exactly like `mcbsim sort/select` workloads.
  Dataset(std::size_t n, std::size_t p, std::uint64_t seed);

  const std::vector<std::vector<Word>>& shards() const { return shards_; }
  std::size_t size() const { return n_; }

  /// One churn step: inserts one fresh value (distinct from everything ever
  /// resident) into the next shard round-robin, then deletes one resident
  /// value at a seeded pseudorandom position, skipping shards that would go
  /// empty. Net size change: zero.
  void churn();

  /// Host-side ground truth: the d-th largest resident value (1-based).
  /// O(n) scratch copy + nth_element; for verification, not serving.
  Word nth_largest(std::size_t d) const;

 private:
  std::vector<std::vector<Word>> shards_;
  std::size_t n_ = 0;
  std::size_t insert_cursor_ = 0;  ///< round-robin shard for inserts
  Word next_fresh_ = 0;            ///< strictly above every value ever seen
  util::Xoshiro256StarStar rng_;
};

/// The deterministic query stream: class draws are weighted by ClassSpec,
/// rank queries draw their tail fraction from a fixed quantile menu
/// (p50/p90/p95/p99/p999 — the clustered tail mix a latency dashboard
/// issues), top-k queries draw m from a small power-of-two menu.
class QueryStream {
 public:
  QueryStream(std::vector<ClassSpec> classes, std::uint64_t seed);

  const std::vector<ClassSpec>& classes() const { return classes_; }
  Query next();

 private:
  std::vector<ClassSpec> classes_;
  std::uint64_t total_weight_ = 0;
  util::Xoshiro256StarStar rng_;
};

}  // namespace mcb::serve
