#include "serve/server.hpp"

#include <sstream>
#include <utility>

#include "algo/multi_select.hpp"
#include "mcb/network.hpp"
#include "obs/profiler.hpp"
#include "util/check.hpp"
#include "util/json.hpp"

namespace mcb::serve {

namespace {

/// Batch runs shown in the serving report's rolling latency window.
constexpr std::size_t kServeWindow = 16;

const char* kind_name(OpKind k) {
  switch (k) {
    case OpKind::kRankSelect: return "rank";
    case OpKind::kTopK: return "topk";
    case OpKind::kChurn: return "churn";
  }
  return "?";
}

}  // namespace

ServeReport run_server(const ServeConfig& cfg) {
  ServeConfig c = cfg;
  if (c.classes.empty()) c.classes = parse_classes("rank:4,topk:2,churn:1");
  c.sim.validate();
  MCB_REQUIRE(c.n >= c.sim.p && c.n % c.sim.p == 0,
              "dataset n=" << c.n << " must be a positive multiple of p="
                           << c.sim.p);
  MCB_REQUIRE(c.batch >= 1, "batch must be at least 1");

  Dataset data(c.n, c.sim.p, c.seed);
  QueryStream stream(c.classes, c.seed);

  // THE long-lived network: constructed once, reset between batches. Every
  // batch re-installs programs into the same ProcTable/slot allocation and
  // reuses the warmed frame arenas.
  Network net(c.sim, c.sink);
  bool first_run = true;

  ServeReport rep;
  rep.cfg = c;

  struct Pending {
    std::size_t index;
    std::size_t cls;
    OpKind kind;
    std::size_t rank;
  };
  std::vector<Pending> pending;

  auto flush = [&]() {
    if (pending.empty()) return;
    if (!first_run) net.reset();
    first_run = false;
    std::vector<std::size_t> ds;
    ds.reserve(pending.size());
    for (const Pending& pq : pending) ds.push_back(pq.rank);
    const auto res = algo::select_ranks_on(net, data.shards(), ds);
    ++rep.batches;
    rep.total_cycles += res.stats.cycles;
    rep.total_messages += res.stats.messages;
    rep.filter_phases += res.filter_phases;
    rep.frame_allocs += res.stats.frame_allocs;
    rep.frame_reuses += res.stats.frame_reuses;
    if (c.sim.profiler != nullptr) {
      rep.batch_wall_ns.push_back(res.stats.sim_wall_ns);
    }
    rep.metrics.observe("serve.batch_size",
                        static_cast<double>(pending.size()));
    for (std::size_t i = 0; i < pending.size(); ++i) {
      const Pending& pq = pending[i];
      QueryRecord r;
      r.index = pq.index;
      r.cls = pq.cls;
      r.kind = pq.kind;
      r.rank = pq.rank;
      r.value = res.values[i];
      r.batch_id = rep.batches;
      r.latency_cycles = res.stats.cycles;
      if (c.verify) {
        const Word want = data.nth_largest(pq.rank);
        MCB_CHECK(r.value == want, "query " << pq.index << " rank " << pq.rank
                                            << ": got " << r.value
                                            << ", ground truth " << want);
      }
      rep.metrics.observe(
          "class." + c.classes[pq.cls].name + ".latency_cycles",
          static_cast<double>(res.stats.cycles));
      rep.queries.push_back(r);
    }
    pending.clear();
  };

  for (std::size_t qi = 0; qi < c.queries; ++qi) {
    const Query q = stream.next();
    rep.metrics.add("class." + c.classes[q.cls].name + ".ops", 1);
    if (q.kind == OpKind::kChurn) {
      // Churn is a barrier: answer everything admitted before it first, so
      // every batch runs against one consistent dataset snapshot.
      flush();
      data.churn();
      ++rep.churn_ops;
      QueryRecord r;
      r.index = qi;
      r.cls = q.cls;
      r.kind = q.kind;
      rep.queries.push_back(r);
      continue;
    }
    Pending pq;
    pq.index = qi;
    pq.cls = q.cls;
    pq.kind = q.kind;
    // Ranks resolve against the dataset size at admission time; the churn
    // barrier above guarantees that size is still current when the batch
    // runs.
    pq.rank = q.kind == OpKind::kRankSelect
                  ? quantile_rank(data.size(), q.fraction)
                  : std::min(q.top_m, data.size());
    pending.push_back(pq);
    if (pending.size() >= c.batch) flush();
  }
  flush();

  std::size_t answered = 0;
  for (const auto& r : rep.queries) {
    if (r.kind != OpKind::kChurn) ++answered;
  }
  rep.metrics.add("serve.queries", c.queries);
  rep.metrics.add("serve.answered", answered);
  rep.metrics.add("serve.batches", rep.batches);
  rep.metrics.add("serve.churn_ops", rep.churn_ops);
  rep.metrics.add("serve.total_cycles", rep.total_cycles);
  rep.metrics.add("serve.total_messages", rep.total_messages);
  rep.metrics.set("serve.cycles_per_query",
                  answered == 0 ? 0.0
                                : static_cast<double>(rep.total_cycles) /
                                      static_cast<double>(answered));
  rep.metrics.set("serve.queries_per_kcycle",
                  rep.total_cycles == 0
                      ? 0.0
                      : 1000.0 * static_cast<double>(answered) /
                            static_cast<double>(rep.total_cycles));

  // Render the host_profile subtree: the serving loop's own rolling batch
  // latency window (per-flush host wall time) wrapped around the engine
  // profiler's flight-recorder totals. Quarantined host telemetry.
  if (c.sim.profiler != nullptr) {
    const obs::Profiler& prof = *c.sim.profiler;
    obs::Histogram h;
    for (std::uint64_t w : rep.batch_wall_ns) {
      h.record(static_cast<double>(w));
    }
    const std::size_t window =
        rep.batch_wall_ns.size() < kServeWindow ? rep.batch_wall_ns.size()
                                                : kServeWindow;
    const std::size_t lo = rep.batch_wall_ns.size() - window;

    std::ostringstream js;
    js << "{\"batch_runs\":" << rep.batch_wall_ns.size()
       << ",\"batch_run_wall_ns\":{\"count\":" << h.count()
       << ",\"p50\":" << util::json_double(h.p50())
       << ",\"p95\":" << util::json_double(h.p95())
       << ",\"p99\":" << util::json_double(h.p99())
       << ",\"max\":" << util::json_double(h.max())
       << "},\"recent_batch_wall_ns\":[";
    for (std::size_t i = lo; i < rep.batch_wall_ns.size(); ++i) {
      if (i != lo) js << ',';
      js << rep.batch_wall_ns[i];
    }
    js << "],\"profiler\":" << prof.json() << '}';
    rep.host_profile_json = js.str();

    std::ostringstream tx;
    tx << "host profile (serving): " << rep.batch_wall_ns.size()
       << " batch run(s); batch wall ns p50=" << util::json_double(h.p50())
       << " p95=" << util::json_double(h.p95())
       << " p99=" << util::json_double(h.p99())
       << " max=" << util::json_double(h.max()) << "\n"
       << "  recent batch wall ns (last " << window << "):";
    for (std::size_t i = lo; i < rep.batch_wall_ns.size(); ++i) {
      tx << ' ' << rep.batch_wall_ns[i];
    }
    tx << '\n' << prof.text();
    rep.host_profile_text = tx.str();
  }
  return rep;
}

std::string ServeReport::json() const {
  // Model-level fields only: no wall clock, no arena counters, no engine
  // or thread identity — the document must be byte-identical for one seed
  // whichever engine answered it (tools/ci.sh cmp's exactly this).
  std::ostringstream os;
  os << "{\"config\":{\"p\":" << cfg.sim.p << ",\"k\":" << cfg.sim.k
     << ",\"n\":" << cfg.n << ",\"seed\":" << cfg.seed
     << ",\"queries\":" << cfg.queries << ",\"batch\":" << cfg.batch
     << ",\"classes\":[";
  for (std::size_t i = 0; i < cfg.classes.size(); ++i) {
    const auto& cl = cfg.classes[i];
    if (i) os << ',';
    os << "{\"name\":\"" << util::json_escape(cl.name)
       << "\",\"weight\":" << cl.weight << '}';
  }
  os << "]},\"batches\":" << batches << ",\"total_cycles\":" << total_cycles
     << ",\"total_messages\":" << total_messages
     << ",\"churn_ops\":" << churn_ops
     << ",\"filter_phases\":" << filter_phases;

  const auto* cpq = "serve.cycles_per_query";
  const auto* qpk = "serve.queries_per_kcycle";
  os << ",\"cycles_per_query\":"
     << util::json_double(metrics.gauges().count(cpq) != 0
                              ? metrics.gauges().at(cpq)
                              : 0.0)
     << ",\"queries_per_kcycle\":"
     << util::json_double(metrics.gauges().count(qpk) != 0
                              ? metrics.gauges().at(qpk)
                              : 0.0);

  os << ",\"classes\":[";
  bool first = true;
  for (std::size_t i = 0; i < cfg.classes.size(); ++i) {
    const auto& cl = cfg.classes[i];
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << util::json_escape(cl.name)
       << "\",\"ops\":" << metrics.counter("class." + cl.name + ".ops");
    const auto& hists = metrics.histograms();
    const auto it = hists.find("class." + cl.name + ".latency_cycles");
    if (it != hists.end()) {
      const auto& h = it->second;
      os << ",\"latency_cycles\":{\"count\":" << h.count()
         << ",\"p50\":" << util::json_double(h.p50())
         << ",\"p95\":" << util::json_double(h.p95())
         << ",\"p99\":" << util::json_double(h.p99())
         << ",\"max\":" << util::json_double(h.max()) << '}';
    }
    os << '}';
  }
  os << "],\"queries\":[";
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto& r = queries[i];
    if (i) os << ',';
    os << "{\"i\":" << r.index << ",\"class\":\""
       << util::json_escape(cfg.classes[r.cls].name) << "\",\"kind\":\""
       << kind_name(r.kind) << '"';
    if (r.kind != OpKind::kChurn) {
      os << ",\"rank\":" << r.rank << ",\"value\":" << r.value
         << ",\"batch\":" << r.batch_id
         << ",\"latency_cycles\":" << r.latency_cycles;
    }
    os << '}';
  }
  os << ']';
  // The one non-model member, present only when profiling was on. `mcbsim
  // strip-host` removes it, restoring byte-identity with an unprofiled run.
  if (!host_profile_json.empty()) {
    os << ",\"host_profile\":" << host_profile_json;
  }
  os << '}';
  return os.str();
}

std::string ServeReport::markdown() const {
  std::ostringstream os;
  os << "# Serving report\n\n"
     << "MCB(" << cfg.sim.p << "," << cfg.sim.k << "), resident n=" << cfg.n
     << ", seed=" << cfg.seed << ", " << cfg.queries
     << " queries, batch<=" << cfg.batch << "\n\n"
     << "- batches (selection runs): " << batches << "\n"
     << "- total simulated cycles:   " << total_cycles << "\n"
     << "- total messages:           " << total_messages << "\n"
     << "- filtering phases:         " << filter_phases << "\n"
     << "- churn ops (barriers):     " << churn_ops << "\n\n";
  os << "| class | ops | answered | p50 | p95 | p99 | max cycles |\n"
     << "|---|---|---|---|---|---|---|\n";
  for (const auto& cl : cfg.classes) {
    const auto ops = metrics.counter("class." + cl.name + ".ops");
    const auto& hists = metrics.histograms();
    const auto it = hists.find("class." + cl.name + ".latency_cycles");
    os << "| " << cl.name << " | " << ops << " | ";
    if (it != hists.end()) {
      const auto& h = it->second;
      os << h.count() << " | " << util::json_double(h.p50()) << " | "
         << util::json_double(h.p95()) << " | " << util::json_double(h.p99())
         << " | " << util::json_double(h.max());
    } else {
      os << "0 | - | - | - | -";
    }
    os << " |\n";
  }
  const auto* cpq = "serve.cycles_per_query";
  const auto* qpk = "serve.queries_per_kcycle";
  os << "\n- cycles/query:      "
     << util::json_double(metrics.gauges().count(cpq) != 0
                              ? metrics.gauges().at(cpq)
                              : 0.0)
     << "\n- queries/kcycle:    "
     << util::json_double(metrics.gauges().count(qpk) != 0
                              ? metrics.gauges().at(qpk)
                              : 0.0)
     << '\n';
  if (!host_profile_text.empty()) {
    os << "\n## Host profile\n\n" << host_profile_text;
  }
  return os.str();
}

}  // namespace mcb::serve
