// Independent model-conformance checking.
//
// The paper's complexity results are *model* claims: per cycle each
// processor writes at most one channel and reads at most one, two writers
// on one channel collide and abort, and a message exists only in the cycle
// it is written (docs/MODEL.md). The engines enforce those rules inside
// their hot paths — but an engine bug could silently relax the model and
// "improve" every measured bound. The ConformanceChecker is the wall
// against that failure mode: a TraceSink observer that re-derives the
// model rules from the event stream alone, with its own counters, and
// reconciles the result against RunStats and the paper's lower bounds
// (src/theory) when the run finishes.
//
// The checker never mutates the network (TraceSink contract) and never
// throws on a violation: violations are data, collected into a Report with
// machine-readable (rule id, cycle, channel, procs) records so a harness
// can aggregate them. Attach it to either engine — both emit the same
// per-cycle event stream — via `mcbsim --check`, `Sweep::check`, or
// directly as the sink of any run. Detached, it costs nothing: the engines'
// sink dispatch is a single branch (docs/ENGINE.md, "Observer cost").
//
// Rule catalogue (docs/MODEL.md maps each to the paper's Section 2 / 9):
//
//   MCB-W1  a processor wrote more than one channel in one cycle
//   MCB-R1  a processor read more than once in one cycle
//   MCB-C1  two processors wrote the same channel in one cycle (collision)
//   MCB-V1  a read's observed value differs from what the cycle's writer
//           broadcast (stale, invented, or dropped value)
//   MCB-X1  multi-read used while SimConfig::multi_read is off
//   MCB-E1  malformed event stream (ids out of range, write without a
//           payload, non-monotone cycles)
//   MCB-S1  RunStats totals disagree with the checker's independent count
//   MCB-B1  totals beat a lower bound of the paper (Thms 1-3, Cor 3) —
//           a correct run cannot, so the model must have been relaxed
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mcb/sim_config.hpp"
#include "mcb/stats.hpp"
#include "mcb/trace.hpp"
#include "mcb/types.hpp"

namespace mcb::check {

enum class Rule {
  kWritePerProc,  ///< MCB-W1
  kReadPerProc,   ///< MCB-R1
  kCollision,     ///< MCB-C1
  kValue,         ///< MCB-V1
  kMultiRead,     ///< MCB-X1
  kStream,        ///< MCB-E1
  kStats,         ///< MCB-S1
  kBounds,        ///< MCB-B1
};

/// Stable machine-readable identifier ("MCB-W1", ...).
const char* rule_id(Rule r);

/// One-line statement of the rule (for reports and docs).
const char* rule_summary(Rule r);

/// One detected violation. `cycle`/`channel` are meaningful only for the
/// per-cycle rules; end-of-run rules (MCB-S1, MCB-B1) report cycle 0 and no
/// channel. `procs` lists every processor involved (e.g. both colliding
/// writers).
struct Violation {
  Rule rule = Rule::kStream;
  Cycle cycle = 0;
  std::optional<ChannelId> channel;
  std::vector<ProcId> procs;
  std::string detail;
};

/// The checker's verdict plus its independent accounting. At most
/// kMaxRecorded violations carry full records; the totals keep counting
/// beyond the cap so a hopelessly broken run cannot exhaust memory.
struct Report {
  static constexpr std::size_t kMaxRecorded = 100;

  std::vector<Violation> violations;
  std::uint64_t total_violations = 0;  ///< including unrecorded ones
  std::uint64_t cycles_checked = 0;    ///< distinct cycles observed
  std::uint64_t events = 0;            ///< per-processor events observed
  std::uint64_t messages = 0;          ///< writes counted by the checker
  std::uint64_t reads = 0;             ///< read operations counted

  bool ok() const { return total_violations == 0; }

  /// Human-readable multi-line summary ("conformance: OK ..." or the
  /// violation list).
  std::string summary() const;

  /// Machine-readable single JSON object:
  /// {"ok": ..., "cycles_checked": ..., "events": ..., "messages": ...,
  ///  "reads": ..., "total_violations": ...,
  ///  "violations": [{"rule": "MCB-C1", "cycle": 5, "channel": 2,
  ///                  "procs": [1, 3], "detail": "..."}]}
  std::string json() const;
};

/// The observer. Feed it the run's event stream (attach as the network's
/// TraceSink), then call finish(stats) exactly once when the run completes.
///
/// Events may also be injected directly through on_event — that is the
/// fault-injection surface tests/conformance_test.cpp uses to prove every
/// rule can actually fire (a checker that cannot fail proves nothing).
class ConformanceChecker final : public TraceSink {
 public:
  /// `cfg` supplies p, k and the multi-read gate. `next` optionally chains
  /// a downstream sink (e.g. a ChannelTrace) fed the unmodified events.
  explicit ConformanceChecker(const SimConfig& cfg, TraceSink* next = nullptr);

  // Optional end-of-run reconciliation against the paper's lower bounds
  // (rule MCB-B1). `sizes` are the per-processor input cardinalities of the
  // workload the run sorted / selected over.

  /// Arm the sorting bounds: Theorem 3 messages, Cor 3 + Theorem 5 cycles.
  void expect_sorting_bounds(std::vector<std::size_t> sizes);

  /// Arm the selection bounds for rank d: Theorem 1 (median) or Theorem 2
  /// (general rank, when its p <= d <= n/2 precondition holds) messages and
  /// the Corollary 1/2 cycle bound.
  void expect_selection_bounds(std::vector<std::size_t> sizes, std::size_t d);

  void on_event(const CycleEvent& ev) override;

  /// Validates the final buffered cycle and reconciles the checker's
  /// independent totals against `stats` (rules MCB-S1, MCB-B1). Single-shot;
  /// returns the completed report.
  const Report& finish(const RunStats& stats);

  /// The report so far (complete only after finish()).
  const Report& report() const { return report_; }

 private:
  void flush_cycle();
  void check_cycle_event(const CycleEvent& ev);
  void add(Rule rule, Cycle cycle, std::optional<ChannelId> channel,
           std::vector<ProcId> procs, std::string detail);

  SimConfig cfg_;
  TraceSink* next_;

  // Events of the cycle currently being assembled; validated as a unit when
  // the stream moves to the next cycle (or at finish()).
  bool cycle_open_ = false;
  Cycle cur_cycle_ = 0;
  std::vector<CycleEvent> cur_;

  // Independent cumulative accounting, reconciled against RunStats.
  std::vector<std::uint64_t> messages_per_proc_;
  std::vector<std::uint64_t> messages_per_channel_;
  Cycle last_event_cycle_ = 0;
  bool saw_events_ = false;

  enum class BoundsKind { kNone, kSorting, kSelection };
  BoundsKind bounds_ = BoundsKind::kNone;
  std::vector<std::size_t> sizes_;
  std::size_t rank_d_ = 0;

  bool finished_ = false;
  Report report_;
};

}  // namespace mcb::check
