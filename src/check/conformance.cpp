#include "check/conformance.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "theory/bounds.hpp"
#include "util/json.hpp"

namespace mcb::check {

namespace {

/// Slack for comparing integer totals against the double-valued bound
/// expressions (which involve log2) without false positives.
constexpr double kBoundsEpsilon = 1e-6;

std::string proc_list(const std::vector<ProcId>& procs) {
  std::string out;
  for (std::size_t i = 0; i < procs.size(); ++i) {
    out += std::string(i ? ", P" : "P") + std::to_string(procs[i] + 1);
  }
  return out;
}

}  // namespace

const char* rule_id(Rule r) {
  switch (r) {
    case Rule::kWritePerProc: return "MCB-W1";
    case Rule::kReadPerProc: return "MCB-R1";
    case Rule::kCollision: return "MCB-C1";
    case Rule::kValue: return "MCB-V1";
    case Rule::kMultiRead: return "MCB-X1";
    case Rule::kStream: return "MCB-E1";
    case Rule::kStats: return "MCB-S1";
    case Rule::kBounds: return "MCB-B1";
  }
  return "MCB-??";
}

const char* rule_summary(Rule r) {
  switch (r) {
    case Rule::kWritePerProc:
      return "a processor may write at most one channel per cycle";
    case Rule::kReadPerProc:
      return "a processor may read at most once per cycle";
    case Rule::kCollision:
      return "two writers on one channel in one cycle is a collision";
    case Rule::kValue:
      return "a read observes exactly the message written that cycle";
    case Rule::kMultiRead:
      return "multi-read requires the Section 9 extension to be enabled";
    case Rule::kStream:
      return "the event stream is well-formed and cycle-monotone";
    case Rule::kStats:
      return "RunStats totals match the independently counted totals";
    case Rule::kBounds:
      return "totals cannot beat the paper's lower bounds";
  }
  return "unknown rule";
}

std::string Report::summary() const {
  std::ostringstream os;
  if (ok()) {
    os << "conformance: OK — " << cycles_checked << " cycles, " << events
       << " events, " << messages << " messages, " << reads
       << " reads re-validated, 0 violations\n";
    return os.str();
  }
  os << "conformance: FAILED — " << total_violations << " violation(s) over "
     << cycles_checked << " cycles (" << violations.size() << " recorded)\n";
  for (const auto& v : violations) {
    os << "  [" << rule_id(v.rule) << "] cycle " << v.cycle;
    if (v.channel) os << " C" << *v.channel + 1;
    if (!v.procs.empty()) os << " " << proc_list(v.procs);
    os << ": " << v.detail << "\n";
  }
  return os.str();
}

std::string Report::json() const {
  std::ostringstream os;
  os << "{\"ok\": " << (ok() ? "true" : "false")
     << ", \"cycles_checked\": " << cycles_checked
     << ", \"events\": " << events << ", \"messages\": " << messages
     << ", \"reads\": " << reads
     << ", \"total_violations\": " << total_violations
     << ", \"violations\": [";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const auto& v = violations[i];
    os << (i ? ", " : "") << "{\"rule\": \"" << rule_id(v.rule)
       << "\", \"summary\": \"" << util::json_escape(rule_summary(v.rule))
       << "\", \"cycle\": " << v.cycle << ", \"channel\": ";
    if (v.channel) {
      os << *v.channel;
    } else {
      os << "null";
    }
    os << ", \"procs\": [";
    for (std::size_t j = 0; j < v.procs.size(); ++j) {
      os << (j ? ", " : "") << v.procs[j];
    }
    os << "], \"detail\": \"" << util::json_escape(v.detail) << "\"}";
  }
  os << "]}";
  return os.str();
}

ConformanceChecker::ConformanceChecker(const SimConfig& cfg, TraceSink* next)
    : cfg_(cfg), next_(next) {
  cfg_.validate();
  messages_per_proc_.assign(cfg_.p, 0);
  messages_per_channel_.assign(cfg_.k, 0);
}

void ConformanceChecker::expect_sorting_bounds(std::vector<std::size_t> sizes) {
  bounds_ = BoundsKind::kSorting;
  sizes_ = std::move(sizes);
}

void ConformanceChecker::expect_selection_bounds(std::vector<std::size_t> sizes,
                                                 std::size_t d) {
  bounds_ = BoundsKind::kSelection;
  sizes_ = std::move(sizes);
  rank_d_ = d;
}

void ConformanceChecker::add(Rule rule, Cycle cycle,
                             std::optional<ChannelId> channel,
                             std::vector<ProcId> procs, std::string detail) {
  ++report_.total_violations;
  if (report_.violations.size() < Report::kMaxRecorded) {
    report_.violations.push_back(Violation{rule, cycle, channel,
                                           std::move(procs),
                                           std::move(detail)});
  }
}

void ConformanceChecker::on_event(const CycleEvent& ev) {
  ++report_.events;
  if (cycle_open_ && ev.cycle != cur_cycle_) {
    if (ev.cycle < cur_cycle_) {
      add(Rule::kStream, ev.cycle, std::nullopt, {ev.proc},
          std::string("event for cycle ") + std::to_string(ev.cycle) +
              " arrived after cycle " + std::to_string(cur_cycle_) +
              " (stream not cycle-monotone)");
    }
    flush_cycle();
  }
  if (!cycle_open_) {
    cycle_open_ = true;
    cur_cycle_ = ev.cycle;
  }
  cur_.push_back(ev);
  if (next_ != nullptr) next_->on_event(ev);
}

// Validates the buffered cycle as a unit: writes first (collision + channel
// contents), then every read against those contents. Mirrors the engines'
// write-then-read cycle structure, but derived purely from the events.
void ConformanceChecker::flush_cycle() {
  if (!cycle_open_) return;
  ++report_.cycles_checked;
  last_event_cycle_ = cur_cycle_;
  saw_events_ = true;

  // Per-cycle channel and per-processor scratch. Sized by the model's
  // static geometry; rebuilt per flushed cycle (the checker is diagnostic
  // instrumentation, not the simulation hot path).
  std::vector<std::uint8_t> chan_written(cfg_.k, 0);
  std::vector<ProcId> chan_writer(cfg_.k, 0);
  std::vector<const Message*> chan_msg(cfg_.k, nullptr);
  std::vector<std::uint8_t> chan_collided(cfg_.k, 0);
  std::vector<std::uint32_t> proc_writes(cfg_.p, 0);
  std::vector<std::uint32_t> proc_reads(cfg_.p, 0);

  // Pass 1: writes.
  for (const CycleEvent& ev : cur_) {
    if (ev.proc >= cfg_.p) {
      add(Rule::kStream, cur_cycle_, std::nullopt, {},
          std::string("processor id ") + std::to_string(ev.proc) +
              " out of range (p=" +
              std::to_string(cfg_.p) + ")");
      continue;
    }
    if (!ev.wrote) {
      if (ev.sent) {
        add(Rule::kStream, cur_cycle_, std::nullopt, {ev.proc},
            "event carries a sent message but no written channel");
      }
      continue;
    }
    if (*ev.wrote >= cfg_.k) {
      add(Rule::kStream, cur_cycle_, *ev.wrote, {ev.proc},
          std::string("written channel id out of range (k=") +
              std::to_string(cfg_.k) + ")");
      continue;
    }
    if (!ev.sent) {
      add(Rule::kStream, cur_cycle_, *ev.wrote, {ev.proc},
          "write event carries no message payload");
      continue;
    }
    ++report_.messages;
    ++messages_per_proc_[ev.proc];
    ++messages_per_channel_[*ev.wrote];
    if (++proc_writes[ev.proc] == 2) {
      add(Rule::kWritePerProc, cur_cycle_, *ev.wrote, {ev.proc},
          std::string("P") + std::to_string(ev.proc + 1) +
              " wrote more than one channel this cycle");
    }
    const ChannelId c = *ev.wrote;
    if (chan_written[c]) {
      if (!chan_collided[c]) {
        chan_collided[c] = 1;
        add(Rule::kCollision, cur_cycle_, c, {chan_writer[c], ev.proc},
            "dual writers on one channel — the model aborts the run");
      }
      continue;
    }
    chan_written[c] = 1;
    chan_writer[c] = ev.proc;
    chan_msg[c] = &*ev.sent;
  }

  // One read observation against the cycle's channel contents.
  auto check_read_value = [&](const CycleEvent& ev, ChannelId c,
                              const std::optional<Message>& got) {
    if (chan_collided[c]) return;  // contents undefined; collision reported
    if (chan_written[c]) {
      if (!got) {
        add(Rule::kValue, cur_cycle_, c, {ev.proc, chan_writer[c]},
            "read observed silence although the channel was written this "
            "cycle");
      } else if (!(*got == *chan_msg[c])) {
        add(Rule::kValue, cur_cycle_, c, {ev.proc, chan_writer[c]},
            "read observed a value different from the one written this "
            "cycle (stale or corrupted)");
      }
    } else if (got) {
      add(Rule::kValue, cur_cycle_, c, {ev.proc},
          "read observed a value on a channel nobody wrote this cycle "
          "(channels are memoryless)");
    }
  };

  // Pass 2: reads.
  for (const CycleEvent& ev : cur_) {
    if (ev.proc >= cfg_.p) continue;  // already reported in pass 1
    if (ev.read) {
      ++report_.reads;
      if (*ev.read >= cfg_.k) {
        add(Rule::kStream, cur_cycle_, *ev.read, {ev.proc},
            std::string("read channel id out of range (k=") +
                std::to_string(cfg_.k) + ")");
      } else {
        check_read_value(ev, *ev.read, ev.received);
      }
      if (++proc_reads[ev.proc] == 2) {
        add(Rule::kReadPerProc, cur_cycle_, ev.read, {ev.proc},
            std::string("P") + std::to_string(ev.proc + 1) +
                " read more than once this cycle");
      }
    } else if (ev.received) {
      add(Rule::kStream, cur_cycle_, std::nullopt, {ev.proc},
          "event carries a received message but no read channel");
    }
    if (ev.read_all) {
      ++report_.reads;
      if (!cfg_.multi_read) {
        add(Rule::kMultiRead, cur_cycle_, std::nullopt, {ev.proc},
            "multi-read event but SimConfig::multi_read is off");
      }
      if (ev.received_all.size() != cfg_.k) {
        add(Rule::kStream, cur_cycle_, std::nullopt, {ev.proc},
            std::string("multi-read delivered ") +
                std::to_string(ev.received_all.size()) +
                " results for k=" + std::to_string(cfg_.k) + " channels");
      } else {
        for (ChannelId c = 0; c < cfg_.k; ++c) {
          check_read_value(ev, c, ev.received_all[c]);
        }
      }
      if (++proc_reads[ev.proc] == 2) {
        add(Rule::kReadPerProc, cur_cycle_, std::nullopt, {ev.proc},
            std::string("P") + std::to_string(ev.proc + 1) +
                " combined multi-read with another read this cycle");
      }
    }
  }

  cur_.clear();
  cycle_open_ = false;
}

const Report& ConformanceChecker::finish(const RunStats& stats) {
  if (finished_) return report_;
  finished_ = true;
  flush_cycle();

  // --- MCB-S1: reconcile RunStats against the independent count ----------
  auto stats_mismatch = [&](const std::string& what, std::uint64_t reported,
                            std::uint64_t counted) {
    add(Rule::kStats, 0, std::nullopt, {},
        what + ": RunStats reports " + std::to_string(reported) +
            ", checker counted " + std::to_string(counted));
  };
  if (stats.messages != report_.messages) {
    stats_mismatch("total messages", stats.messages, report_.messages);
  }
  if (saw_events_ && stats.cycles <= last_event_cycle_) {
    add(Rule::kStats, last_event_cycle_, std::nullopt, {},
        std::string("RunStats reports ") + std::to_string(stats.cycles) +
            " cycles but events were observed in cycle " +
            std::to_string(last_event_cycle_));
  }
  if (stats.messages_per_proc.size() != cfg_.p) {
    add(Rule::kStats, 0, std::nullopt, {},
        std::string("messages_per_proc has ") +
            std::to_string(stats.messages_per_proc.size()) +
            " entries for p=" + std::to_string(cfg_.p));
  } else {
    std::uint64_t sum = 0;
    for (ProcId i = 0; i < cfg_.p; ++i) {
      sum += stats.messages_per_proc[i];
      if (stats.messages_per_proc[i] != messages_per_proc_[i]) {
        stats_mismatch(std::string("messages of P") + std::to_string(i + 1),
                       stats.messages_per_proc[i], messages_per_proc_[i]);
      }
    }
    if (sum != stats.messages) {
      stats_mismatch("sum of per-processor messages", sum, stats.messages);
    }
  }
  if (stats.messages_per_channel.size() != cfg_.k) {
    add(Rule::kStats, 0, std::nullopt, {},
        std::string("messages_per_channel has ") +
            std::to_string(stats.messages_per_channel.size()) +
            " entries for k=" + std::to_string(cfg_.k));
  } else {
    for (ChannelId c = 0; c < cfg_.k; ++c) {
      if (stats.messages_per_channel[c] != messages_per_channel_[c]) {
        stats_mismatch(std::string("messages on C") + std::to_string(c + 1),
                       stats.messages_per_channel[c],
                       messages_per_channel_[c]);
      }
    }
  }

  // --- MCB-B1: the run cannot beat the paper's lower bounds --------------
  double lower_messages = 0.0;
  double lower_cycles = 0.0;
  if (bounds_ == BoundsKind::kSorting) {
    lower_messages = theory::sorting_messages_lower(sizes_);
    lower_cycles = theory::sorting_cycles_lower(sizes_, cfg_.k);
  } else if (bounds_ == BoundsKind::kSelection) {
    std::size_t n = 0;
    for (std::size_t s : sizes_) n += s;
    if (rank_d_ == (n + 1) / 2) {
      lower_messages = theory::selection_messages_lower(sizes_);
    } else if (rank_d_ >= cfg_.p && rank_d_ <= n / 2) {
      lower_messages = theory::selection_messages_lower_rank(sizes_, rank_d_);
    }
    // Corollaries 1/2: the cycle bound is the message bound over k.
    lower_cycles = lower_messages / static_cast<double>(cfg_.k);
  }
  auto beats_bound = [&](const char* what, std::uint64_t measured,
                         double lower) {
    if (lower > 0.0 && static_cast<double>(measured) < lower - kBoundsEpsilon) {
      std::ostringstream os;
      os << "run used " << measured << " " << what
         << " but the paper's lower bound is " << lower
         << " — the model must have been relaxed";
      add(Rule::kBounds, 0, std::nullopt, {}, os.str());
    }
  };
  beats_bound("messages", stats.messages, lower_messages);
  beats_bound("cycles", stats.cycles, lower_cycles);

  return report_;
}

}  // namespace mcb::check
