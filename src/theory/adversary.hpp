// The lower-bound constructions of Section 4, made executable.
//
// * hard_sort_instance       — Theorem 3's circular distribution: values are
//                              dealt round-robin over processors that still
//                              have capacity, so no two neighbours of the
//                              sorted order share a processor (within the
//                              first n - (n_max - n_max2) ranks). Any
//                              comparison sort must move Omega of them.
// * hard_sort_instance_pmax  — Theorem 5's distribution: one processor holds
//                              every even rank, forcing it to touch
//                              min(n_max, n - n_max) messages serially.
// * SelectionAdversary       — the candidate-fixing game of Theorems 1 and 2.
//                              Processors are paired by decreasing n_i and
//                              candidates equalized; whenever the algorithm
//                              sends a message exposing a candidate, the
//                              adversary fixes it and a balancing set to be
//                              "very small"/"very large", eliminating at
//                              most half of the pair's candidates (plus
//                              one). Driving any strategy against the game
//                              therefore costs at least
//                              selection_messages_lower(...) messages before
//                              a single candidate (the median) remains.
#pragma once

#include <cstddef>
#include <vector>

#include "mcb/types.hpp"

namespace mcb::theory {

/// Theorem 3 input: inputs[i] holds sizes[i] values; neighbours in sorted
/// order land on different processors wherever possible.
std::vector<std::vector<Word>> hard_sort_instance(
    const std::vector<std::size_t>& sizes);

/// Theorem 5 input: p processors, n = 2*half elements; processor 0 holds
/// the even ranks (n_max = half), the rest are spread round-robin.
std::vector<std::vector<Word>> hard_sort_instance_pmax(std::size_t half,
                                                       std::size_t p);

class SelectionAdversary {
 public:
  /// Sets up the Theorem 1 game for the given cardinalities (median
  /// selection). Candidate counts are equalized within pairs.
  explicit SelectionAdversary(const std::vector<std::size_t>& sizes);

  /// Theorem 2 variant for an arbitrary rank p <= d <= n/2: pairs whose
  /// smaller member holds fewer than d/p elements keep all of it as
  /// candidates; the remaining pairs are capped so the network starts with
  /// at most 2d candidates, each processor holding at least d/p. The median
  /// of the candidates is N[d] by construction.
  SelectionAdversary(const std::vector<std::size_t>& sizes, std::size_t d);

  /// Number of still-unfixed candidates at processor i.
  std::size_t candidates(std::size_t proc) const;

  /// Total candidates remaining in the network.
  std::size_t total_candidates() const { return total_; }

  /// The algorithm sends a message exposing the candidate at 1-based
  /// position `q` (from the bottom) of processor `proc`'s live candidates.
  /// Returns the number of candidates the adversary fixed (0 if the
  /// message exposed no live candidate). Never eliminates the last
  /// candidate of the network.
  std::size_t expose(std::size_t proc, std::size_t q);

  /// Messages the game has processed so far (every expose() call counts,
  /// exactly like the proof's accounting).
  std::size_t messages() const { return messages_; }

 private:
  std::vector<std::size_t> live_;     ///< live candidates per processor
  std::vector<std::size_t> partner_;  ///< pair partner (== self if alone)
  std::size_t total_ = 0;
  std::size_t messages_ = 0;
};

}  // namespace mcb::theory
