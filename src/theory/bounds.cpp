#include "theory/bounds.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace mcb::theory {
namespace {

std::size_t total(const std::vector<std::size_t>& sizes) {
  return std::accumulate(sizes.begin(), sizes.end(), std::size_t{0});
}

std::vector<std::size_t> sorted_desc(std::vector<std::size_t> sizes) {
  std::sort(sizes.begin(), sizes.end(), std::greater<>{});
  return sizes;
}

}  // namespace

double sorting_messages_lower(const std::vector<std::size_t>& sizes) {
  MCB_REQUIRE(!sizes.empty(), "no processors");
  const auto s = sorted_desc(sizes);
  const std::size_t n = total(sizes);
  const std::size_t n_max = s[0];
  const std::size_t n_max2 = s.size() > 1 ? s[1] : 0;
  return 0.5 * double(n - (n_max - n_max2));
}

double sorting_cycles_lower(const std::vector<std::size_t>& sizes,
                            std::size_t k) {
  MCB_REQUIRE(k >= 1, "k >= 1");
  const auto s = sorted_desc(sizes);
  const std::size_t n = total(sizes);
  const std::size_t n_max = s[0];
  const double via_messages = sorting_messages_lower(sizes) / double(k);
  const double via_pmax = double(std::min(n_max, n - n_max));
  return std::max(via_messages, via_pmax);
}

double sorting_messages_term(std::size_t n) { return double(n); }

double sorting_cycles_term(std::size_t n, std::size_t k, std::size_t n_max) {
  return std::max(double(n) / double(k), double(n_max));
}

double selection_messages_lower(const std::vector<std::size_t>& sizes) {
  MCB_REQUIRE(!sizes.empty(), "no processors");
  const auto s = sorted_desc(sizes);
  double sum = 0;
  for (std::size_t j = 1; j < s.size(); ++j) {  // drop the largest
    sum += std::log2(2.0 * double(std::max<std::size_t>(s[j], 1)));
  }
  return 0.5 * sum;
}

double selection_messages_lower_rank(const std::vector<std::size_t>& sizes,
                                     std::size_t d) {
  MCB_REQUIRE(!sizes.empty(), "no processors");
  const std::size_t p = sizes.size();
  MCB_REQUIRE(d >= 1, "d >= 1");
  const auto s = sorted_desc(sizes);
  const double dp = double(d) / double(p);
  std::size_t cnt = 0;  // the paper's s: processors with n_i >= d/p
  while (cnt < p && double(s[cnt]) >= dp) ++cnt;
  double sum = cnt > 0 ? double(cnt - 1) * std::log2(2.0 * dp) : 0.0;
  for (std::size_t j = cnt; j < p; ++j) {
    sum += std::log2(2.0 * double(std::max<std::size_t>(s[j], 1)));
  }
  return 0.5 * std::max(sum, 0.0);
}

double selection_cycles_lower(const std::vector<std::size_t>& sizes,
                              std::size_t k) {
  MCB_REQUIRE(k >= 1, "k >= 1");
  return selection_messages_lower(sizes) / double(k);
}

double selection_messages_term(std::size_t p, std::size_t k, std::size_t n) {
  return double(p) * std::log2(std::max(2.0, double(k) * double(n) /
                                                 double(p)));
}

double selection_cycles_term(std::size_t p, std::size_t k, std::size_t n) {
  return selection_messages_term(p, k, n) / double(k);
}

}  // namespace mcb::theory
