#include "theory/adversary.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace mcb::theory {

std::vector<std::vector<Word>> hard_sort_instance(
    const std::vector<std::size_t>& sizes) {
  MCB_REQUIRE(!sizes.empty(), "no processors");
  const std::size_t p = sizes.size();
  const std::size_t n =
      std::accumulate(sizes.begin(), sizes.end(), std::size_t{0});
  std::vector<std::vector<Word>> inputs(p);
  for (std::size_t i = 0; i < p; ++i) inputs[i].reserve(sizes[i]);
  // Deal ranks n, n-1, ... (descending values) circularly over processors
  // that still have capacity: consecutive sorted neighbours go to different
  // processors for as long as at least two processors are unfilled.
  std::size_t at = 0;
  for (std::size_t rank = 0; rank < n; ++rank) {
    std::size_t guard = 0;
    while (inputs[at].size() == sizes[at]) {
      at = (at + 1) % p;
      MCB_CHECK(++guard <= p, "no capacity left");
    }
    inputs[at].push_back(static_cast<Word>(n - rank));
    at = (at + 1) % p;
  }
  return inputs;
}

std::vector<std::vector<Word>> hard_sort_instance_pmax(std::size_t half,
                                                       std::size_t p) {
  MCB_REQUIRE(p >= 2, "need at least two processors");
  MCB_REQUIRE(half >= 1, "need at least one pair of ranks");
  const std::size_t n = 2 * half;
  std::vector<std::vector<Word>> inputs(p);
  // Descending values 2*half .. 1; processor 0 takes every second one.
  for (std::size_t j = 0; j < half; ++j) {
    inputs[0].push_back(static_cast<Word>(n - 2 * j - 1));  // N[2j] (even)
    inputs[1 + (j % (p - 1))].push_back(
        static_cast<Word>(n - 2 * j));  // N[2j-1] (odd ranks)
  }
  return inputs;
}

SelectionAdversary::SelectionAdversary(
    const std::vector<std::size_t>& sizes) {
  MCB_REQUIRE(!sizes.empty(), "no processors");
  const std::size_t p = sizes.size();
  // Pair processors by non-increasing n_i; equalize candidates within each
  // pair to the smaller count. An odd processor out keeps no candidates
  // (its elements are split very small / very large), as in the proof.
  std::vector<std::size_t> order(p);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return sizes[a] != sizes[b] ? sizes[a] > sizes[b] : a < b;
  });
  live_.assign(p, 0);
  partner_.assign(p, SIZE_MAX);
  for (std::size_t j = 0; j + 1 < p; j += 2) {
    const std::size_t c = sizes[order[j + 1]];
    live_[order[j]] = c;
    live_[order[j + 1]] = c;
    partner_[order[j]] = order[j + 1];
    partner_[order[j + 1]] = order[j];
  }
  if (p == 1) {
    live_[0] = sizes[0];
    partner_[0] = 0;
  }
  total_ = std::accumulate(live_.begin(), live_.end(), std::size_t{0});
}

SelectionAdversary::SelectionAdversary(const std::vector<std::size_t>& sizes,
                                       std::size_t d)
    : SelectionAdversary(sizes) {
  const std::size_t p = sizes.size();
  MCB_REQUIRE(d >= 1, "rank d >= 1");
  // Cap the per-pair candidate counts so the network total stays <= 2d
  // while every paired processor keeps at least ceil(d/p) candidates (the
  // proof's floor). Pairs are visited largest-first, trimming the excess.
  const std::size_t floor_each =
      std::max<std::size_t>(1, (d + p - 1) / p);
  std::size_t over = total_ > 2 * d ? total_ - 2 * d : 0;
  // Deterministic largest-first order over processors.
  std::vector<std::size_t> order(p);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return live_[a] != live_[b] ? live_[a] > live_[b] : a < b;
  });
  for (std::size_t idx : order) {
    if (over == 0) break;
    const std::size_t partner = partner_[idx];
    if (partner == idx || idx > partner) continue;  // visit each pair once
    const std::size_t c0 = live_[idx];
    if (c0 <= floor_each) continue;
    const std::size_t cut = std::min(c0 - floor_each, over / 2);
    live_[idx] -= cut;
    live_[partner] -= cut;
    total_ -= 2 * cut;
    over -= std::min(over, 2 * cut);
  }
}

std::size_t SelectionAdversary::candidates(std::size_t proc) const {
  MCB_REQUIRE(proc < live_.size(), "processor " << proc);
  return live_[proc];
}

std::size_t SelectionAdversary::expose(std::size_t proc, std::size_t q) {
  MCB_REQUIRE(proc < live_.size(), "processor " << proc);
  ++messages_;
  const std::size_t c = live_[proc];
  if (c == 0 || q < 1 || q > c) return 0;  // no live candidate exposed
  // The exposed candidate is on one side of P_a's median: the adversary
  // fixes it and everything beyond it in P_a (very small, say) plus an
  // equal number at the partner's opposite end (very large) — keeping the
  // global very-small/very-large balance AND the pair's counts equal, so a
  // single message never eliminates more than m+1 of the pair's 2m
  // candidates.
  std::size_t side = std::min(q, c - q + 1);
  const std::size_t pb = partner_[proc];
  MCB_CHECK(pb == proc || live_[pb] == c, "pair lost its balance");
  // Leave at least one candidate in the network (the surviving median).
  if (2 * side >= total_) {
    side = (total_ - 1) / 2;
    if (side == 0) return 0;
  }
  live_[proc] -= side;
  if (pb != proc) live_[pb] -= side;
  const std::size_t gone = pb != proc ? 2 * side : side;
  total_ -= gone;
  return gone;
}

}  // namespace mcb::theory
