// Closed-form bound expressions from the paper's theorems and corollaries,
// used by the benchmark harness to print measured-vs-predicted ratios and by
// tests to check that the implementations sit within constant factors of
// the lower bounds.
//
// Lower bounds return the Omega(...) argument with the constants the proofs
// actually give (e.g. the 1/2 from pairing in Theorem 1); Theta terms for
// upper-bound comparison return the unit-constant expression.
#pragma once

#include <cstddef>
#include <vector>

namespace mcb::theory {

// --- sorting ---------------------------------------------------------------

/// Theorem 3: messages >= (n - (n_max - n_max2)) / 2.
double sorting_messages_lower(const std::vector<std::size_t>& sizes);

/// Corollary 3 + Theorem 5: cycles >= max(Thm3/k, min(n_max, n - n_max)).
double sorting_cycles_lower(const std::vector<std::size_t>& sizes,
                            std::size_t k);

/// Corollary 6 Theta terms: n messages, max(n/k, n_max) cycles.
double sorting_messages_term(std::size_t n);
double sorting_cycles_term(std::size_t n, std::size_t k, std::size_t n_max);

// --- selection ---------------------------------------------------------------

/// Theorem 1 (median): messages >= 1/2 * sum_{j>=2} log2(2 n_{i_j}), the
/// n_{i_j} in non-increasing order (the largest is dropped by the pairing).
double selection_messages_lower(const std::vector<std::size_t>& sizes);

/// Theorem 2 (rank d, p <= d <= n/2): with s = #{i : n_i >= d/p},
/// messages >= 1/2 * ((s-1) log2(2d/p) + sum_{j>s} log2(2 n_{i_j})).
double selection_messages_lower_rank(const std::vector<std::size_t>& sizes,
                                     std::size_t d);

/// Corollaries 1/2: the cycle bounds are the message bounds divided by k.
double selection_cycles_lower(const std::vector<std::size_t>& sizes,
                              std::size_t k);

/// Corollary 7 Theta terms: p log2(kn/p) messages, (p/k) log2(kn/p) cycles.
double selection_messages_term(std::size_t p, std::size_t k, std::size_t n);
double selection_cycles_term(std::size_t p, std::size_t k, std::size_t n);

}  // namespace mcb::theory
