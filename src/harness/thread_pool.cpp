#include "harness/thread_pool.hpp"

#include <atomic>
#include <thread>
#include <vector>

namespace mcb::harness {

std::size_t resolve_threads(std::size_t threads, std::size_t n) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  if (n == 0) return 1;
  return threads < n ? (threads == 0 ? 1 : threads) : n;
}

void parallel_for_index(std::size_t n, std::size_t threads,
                        const std::function<void(std::size_t)>& fn) {
  const std::size_t workers = resolve_threads(threads, n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t t = 0; t + 1 < workers; ++t) pool.emplace_back(worker);
  worker();  // the calling thread is worker 0
  for (auto& th : pool) th.join();
}

}  // namespace mcb::harness
