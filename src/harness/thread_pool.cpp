#include "harness/thread_pool.hpp"

#include <atomic>
#include <limits>
#include <thread>
#include <vector>

#include "obs/clock.hpp"

namespace mcb::harness {

std::size_t resolve_threads(std::size_t threads, std::size_t n) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  if (n == 0) return 1;
  return threads < n ? (threads == 0 ? 1 : threads) : n;
}

void parallel_for_index(std::size_t n, std::size_t threads,
                        const std::function<void(std::size_t)>& fn) {
  const std::size_t workers = resolve_threads(threads, n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t t = 0; t + 1 < workers; ++t) pool.emplace_back(worker);
  worker();  // the calling thread is worker 0
  for (auto& th : pool) th.join();
}

WorkerPool::WorkerPool(std::size_t workers)
    : workers_(workers == 0 ? 1 : workers) {
  threads_.reserve(workers_ - 1);
  for (std::size_t t = 0; t + 1 < workers_; ++t) {
    // Lane 0 is the caller of run()/run_static(); resident thread t owns
    // lane t + 1 for the lifetime of the pool (the static-affinity map).
    threads_.emplace_back([this, lane = t + 1] { worker_main(lane); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& th : threads_) th.join();
}

void WorkerPool::set_busy_clock(obs::Clock* clock) {
  busy_clock_ = clock;
  lane_busy_ns_.assign(workers_, 0);
}

void WorkerPool::timed_call(const FnRef& fn, std::size_t i, std::size_t lane) {
  if (busy_clock_ == nullptr) {
    fn(i);
    return;
  }
  const std::uint64_t t0 = busy_clock_->now_ns();
  fn(i);
  lane_busy_ns_[lane] += busy_clock_->now_ns() - t0;
}

void WorkerPool::claim_loop(std::uint32_t epoch, std::size_t n, FnRef fn,
                            std::size_t lane) {
  for (;;) {
    std::uint64_t s = state_.load(std::memory_order_acquire);
    if (static_cast<std::uint32_t>(s >> 32) != epoch) return;  // stale batch
    const auto i = static_cast<std::uint32_t>(s);
    if (i >= n) return;  // batch fully claimed
    if (!state_.compare_exchange_weak(s, s + 1, std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
      continue;  // lost the claim race; retry with the fresh value
    }
    timed_call(fn, i, lane);
    std::lock_guard<std::mutex> lk(mu_);
    if (++completed_ == job_n_) done_cv_.notify_one();
  }
}

void WorkerPool::worker_main(std::size_t lane) {
  std::uint32_t seen = 0;
  for (;;) {
    const FnRef* fn = nullptr;
    const FnRef* sfn = nullptr;
    std::size_t n = 0;
    std::uint32_t epoch = 0;
    {
      std::unique_lock<std::mutex> lk(mu_);
      start_cv_.wait(lk, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch = epoch_;
      fn = job_;
      sfn = static_job_;
      n = job_n_;
    }
    if (sfn != nullptr) {
      // Static batch: this thread's fixed lane, exactly once. The caller
      // waits for all workers_ completions, so no resident thread can sleep
      // through a static epoch — the batch does not finish without it.
      timed_call(*sfn, lane, lane);
      std::lock_guard<std::mutex> lk(mu_);
      if (++completed_ == job_n_) done_cv_.notify_one();
    } else {
      claim_loop(epoch, n, *fn, lane);
    }
  }
}

void WorkerPool::run(std::size_t n, FnRef fn) {
  if (n == 0) return;
  if (threads_.empty()) {
    for (std::size_t i = 0; i < n; ++i) timed_call(fn, i, 0);
    return;
  }
  std::uint32_t epoch = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    epoch = ++epoch_;
    job_ = &fn;
    static_job_ = nullptr;
    job_n_ = n;
    completed_ = 0;
    // Publish the batch counter inside the critical section: a worker whose
    // wait predicate observed this epoch acquired mu_ after this store, so
    // its claim loads cannot see the previous batch's counter. The release
    // store additionally pairs with the acquire claim loads, making every
    // caller-side write sequenced before run() visible to claimants.
    state_.store(pack(epoch, 0), std::memory_order_release);
  }
  start_cv_.notify_all();

  claim_loop(epoch, n, fn, 0);  // the caller is a full lane too (lane 0)

  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return completed_ == n; });
  job_ = nullptr;
}

void WorkerPool::run_static(FnRef fn) {
  if (threads_.empty()) {
    timed_call(fn, 0, 0);
    return;
  }
  std::uint32_t epoch = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    epoch = ++epoch_;
    job_ = nullptr;
    static_job_ = &fn;
    job_n_ = workers_;
    completed_ = 0;
    // Saturate the index half under the new epoch: a dynamic straggler
    // re-checking state_ sees a foreign epoch (or a fully-claimed batch)
    // and retires without touching this batch. Static lanes never read
    // state_; publication happens under mu_ via the wait predicate.
    state_.store(pack(epoch, std::numeric_limits<std::uint32_t>::max()),
                 std::memory_order_release);
  }
  start_cv_.notify_all();

  timed_call(fn, 0, 0);  // the caller is lane 0

  std::unique_lock<std::mutex> lk(mu_);
  if (++completed_ != job_n_) {
    done_cv_.wait(lk, [&] { return completed_ == job_n_; });
  }
  static_job_ = nullptr;
}

}  // namespace mcb::harness
