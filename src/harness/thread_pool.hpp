// A fixed-size worker pool for embarrassingly parallel trial grids.
//
// parallel_for_index runs fn(0), fn(1), ..., fn(n-1) across a bounded set of
// worker threads, pulling indices from a shared atomic counter (dynamic
// scheduling — long trials don't straggle behind a static partition). The
// call returns only when every index has completed.
//
// Concurrency contract: the only shared mutable state inside the pool is
// the index counter, an std::atomic. Each index i is claimed by exactly one
// worker, and callers are required to make fn(i) touch only state owned by
// index i (the sweep harness runs one independent single-threaded Network
// per trial and writes to results[i] only). Completed writes are published
// to the caller by the workers' thread joins, which synchronize-with the
// return. The contract is enforced, not assumed: tools/ci.sh builds the
// `tsan` preset and runs this suite (tests/harness_test.cpp) plus a
// parallel sweep smoke under ThreadSanitizer on every CI run.
#pragma once

#include <cstddef>
#include <functional>

namespace mcb::harness {

/// Number of workers the pool uses for a request of `threads` (0 means "use
/// the hardware"): clamped to [1, n] and, for threads == 0, to
/// std::thread::hardware_concurrency() (itself at least 1).
std::size_t resolve_threads(std::size_t threads, std::size_t n);

/// Runs fn(i) for every i in [0, n) on up to `threads` workers (0 = use the
/// hardware). fn must not throw — trial errors are data, not control flow;
/// callers capture them into their per-index result slot. With one worker
/// (or n <= 1) everything runs on the calling thread.
void parallel_for_index(std::size_t n, std::size_t threads,
                        const std::function<void(std::size_t)>& fn);

}  // namespace mcb::harness
