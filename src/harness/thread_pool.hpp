// A fixed-size worker pool for embarrassingly parallel trial grids.
//
// parallel_for_index runs fn(0), fn(1), ..., fn(n-1) across a bounded set of
// worker threads, pulling indices from a shared atomic counter (dynamic
// scheduling — long trials don't straggle behind a static partition). The
// call returns only when every index has completed.
//
// Concurrency contract: the only shared mutable state inside the pool is
// the index counter, an std::atomic. Each index i is claimed by exactly one
// worker, and callers are required to make fn(i) touch only state owned by
// index i (the sweep harness runs one independent single-threaded Network
// per trial and writes to results[i] only). Completed writes are published
// to the caller by the workers' thread joins, which synchronize-with the
// return. The contract is enforced, not assumed: tools/ci.sh builds the
// `tsan` preset and runs this suite (tests/harness_test.cpp) plus a
// parallel sweep smoke under ThreadSanitizer on every CI run.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace mcb::obs {
class Clock;  // src/obs/clock.hpp — host wall-clock seam (profiler support)
}  // namespace mcb::obs

namespace mcb::harness {

/// Non-owning, non-allocating reference to a callable taking one index —
/// a function_ref for the pool's dispatch signature. A WorkerPool batch is
/// synchronous (run()/run_static() return only after every call completed),
/// so borrowing the callable is safe and constructing the batch costs two
/// words instead of a possibly-allocating std::function. The referent must
/// outlive the call that borrows it (binding a temporary lambda at a call
/// site is fine: the temporary lives until the full expression — the pool
/// call — returns).
class FnRef {
 public:
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, FnRef>>>
  FnRef(const F& f) noexcept  // NOLINT(google-explicit-constructor)
      : ctx_(const_cast<void*>(static_cast<const void*>(&f))),
        call_([](void* ctx, std::size_t i) {
          (*static_cast<const F*>(ctx))(i);
        }) {}

  void operator()(std::size_t i) const { call_(ctx_, i); }

 private:
  void* ctx_;
  void (*call_)(void*, std::size_t);
};

/// Number of workers the pool uses for a request of `threads` (0 means "use
/// the hardware"): clamped to [1, n] and, for threads == 0, to
/// std::thread::hardware_concurrency() (itself at least 1).
std::size_t resolve_threads(std::size_t threads, std::size_t n);

/// Runs fn(i) for every i in [0, n) on up to `threads` workers (0 = use the
/// hardware). fn must not throw — trial errors are data, not control flow;
/// callers capture them into their per-index result slot. With one worker
/// (or n <= 1) everything runs on the calling thread.
void parallel_for_index(std::size_t n, std::size_t threads,
                        const std::function<void(std::size_t)>& fn);

/// A persistent worker pool for repeated fine-grained fan-outs — the
/// per-cycle dispatch of the parallel simulation engine, which cannot afford
/// parallel_for_index's thread spawn per call (a simulated cycle is
/// microseconds; a thread spawn is tens of them).
///
/// Two dispatch modes share one epoch/condvar skeleton:
///
///   * run(n, fn) — dynamic: invokes fn(0) .. fn(n-1) exactly once each
///     across the resident threads plus the calling thread. Indices are
///     claimed from a shared epoch-tagged counter: a straggler worker waking
///     late into a finished batch observes the epoch mismatch and goes back
///     to sleep instead of claiming work from the next batch with a stale
///     function pointer. Good when per-index cost varies wildly (sweep
///     trials).
///
///   * run_static(fn) — static: invokes fn(lane) exactly once per lane, each
///     lane pinned to its fixed thread (lane 0 is the caller, lane w > 0 is
///     resident thread w-1) for the lifetime of the pool. The parallel
///     engine maps each stripe to a fixed lane, so a stripe's ProcTable
///     columns, frame arena and staging buffers are touched by the same
///     core every pass of every cycle — sticky affinity, no claim CAS
///     traffic on the hot path.
///
/// Both return only when every call has completed — each dispatch is a full
/// barrier. Memory ordering: the batch (fn, n, shared inputs written by the
/// caller) is published under the pool mutex (and, for the dynamic path, by
/// a release store of the epoch word acquired by the claim loads);
/// completions are counted under the pool mutex, whose release in the last
/// worker synchronizes-with the caller's wake. Callers may therefore hand
/// plain (non-atomic) data to fn and read plain results after the call
/// returns. Enforced under TSan by tools/ci.sh.
class WorkerPool {
 public:
  /// A pool presenting `workers` total lanes (>= 1): workers - 1 resident
  /// threads plus the caller of run(). workers == 1 spawns nothing and both
  /// dispatch modes degenerate to a serial loop on the calling thread.
  explicit WorkerPool(std::size_t workers);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  std::size_t workers() const { return workers_; }

  /// Runs fn(i) for every i in [0, n) and blocks until all calls returned.
  /// fn must not throw (callers capture errors into per-index slots). Not
  /// reentrant: one dispatch at a time, from the owning thread.
  void run(std::size_t n, FnRef fn);

  /// Runs fn(lane) for every lane in [0, workers()), each on its fixed
  /// thread, and blocks until all returned. Unlike run(), every lane
  /// participates in every batch (an idle lane still crosses the barrier),
  /// so a static batch cannot be skipped by a straggler: the barrier
  /// completes only when each resident thread has run its lane. Same
  /// no-throw and reentrancy contract as run().
  void run_static(FnRef fn);

  /// Opt-in per-lane busy accounting for the host profiler (obs::Profiler):
  /// with a clock attached, every lane brackets the work it executes inside
  /// a batch with clock reads and accumulates the delta into its own
  /// lane_busy_ns() slot. nullptr (the default) detaches and costs one
  /// predicted branch per executed call. Attach/detach only between
  /// dispatches (same reentrancy contract as run()); attaching resets the
  /// counters to zero.
  void set_busy_clock(obs::Clock* clock);

  /// Cumulative per-lane busy nanoseconds (size workers(); all zero without
  /// a clock). Each slot is written only by the thread owning that lane and
  /// published by the dispatch barrier — read it between dispatches only;
  /// callers snapshot before a batch and diff after it.
  const std::vector<std::uint64_t>& lane_busy_ns() const {
    return lane_busy_ns_;
  }

 private:
  // state_ packs (epoch << 32) | next-unclaimed-index. Claiming is a CAS
  // that increments the low half only while the high half still names the
  // claimant's epoch. Static batches bump the epoch with the index half
  // saturated so a dynamic straggler can never claim into them.
  static std::uint64_t pack(std::uint32_t epoch, std::uint32_t index) {
    return (static_cast<std::uint64_t>(epoch) << 32) | index;
  }

  void worker_main(std::size_t lane);
  void claim_loop(std::uint32_t epoch, std::size_t n, FnRef fn,
                  std::size_t lane);
  // Runs fn(i), attributing its wall time to `lane` when a busy clock is
  // attached (one predicted branch otherwise).
  void timed_call(const FnRef& fn, std::size_t i, std::size_t lane);

  std::size_t workers_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable start_cv_;  // workers wait for a new epoch
  std::condition_variable done_cv_;   // the caller waits for completion
  const FnRef* job_ = nullptr;        // dynamic batch; guarded by mu_
  const FnRef* static_job_ = nullptr; // static batch; guarded by mu_
  std::size_t job_n_ = 0;             // calls in the batch; guarded by mu_
  std::size_t completed_ = 0;         // guarded by mu_
  std::uint32_t epoch_ = 0;           // guarded by mu_
  bool stop_ = false;                 // guarded by mu_

  std::atomic<std::uint64_t> state_{0};

  // Profiler support: lane l's slot is written only by the thread owning
  // lane l (the claim/static loops pass their lane down), so no slot is
  // ever contended; the dispatch barrier publishes the values.
  obs::Clock* busy_clock_ = nullptr;
  std::vector<std::uint64_t> lane_busy_ns_;
};

}  // namespace mcb::harness
