// The parallel trial-sweep harness.
//
// Every empirical claim the repository reproduces (Theorems 1-5,
// Corollaries 1-7) is a statement over a grid of (p, k, n, shape, algorithm,
// seed) points; this subsystem runs such grids as a set of independent
// trials on a fixed-size worker pool, one single-threaded Network per trial,
// and aggregates across seeds.
//
// Determinism contract: per-trial seeds are derived as
//
//   seed(trial) = splitmix64(base_seed ^ splitmix64(trial_index))
//
// so a trial's workload — and therefore its cycle/message/aux accounting —
// depends only on (base_seed, trial_index), never on which worker ran it,
// in what order, or how many threads the pool had. Results are collected
// into stable trial order (trial_index), and the JSON serialization contains
// no host-side timing, so the serialized output of a sweep is byte-identical
// across thread counts. tests/harness_test.cpp pins this contract.
//
// Every trial also self-verifies: sorts must produce a descending
// permutation of their input (multiset fingerprint check), selections must
// return the true median of the flattened input. A trial that fails
// verification, or throws (e.g. an infeasible k > p grid point), records an
// error string instead of aborting the sweep; aggregation skips errored
// trials and reports their count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mcb/sim_config.hpp"
#include "mcb/types.hpp"
#include "obs/span.hpp"
#include "util/workload.hpp"

namespace mcb::harness {

/// One grid point: a network geometry, a workload shape and an algorithm.
/// `algorithm` is either "select" (median selection, Section 8) or one of
/// the sort algorithm names accepted by algo::sort_algorithm_from_string
/// ("auto", "columnsort", "virtual", "recursive", "uneven", "ranksort",
/// "mergesort", "central").
struct GridPoint {
  std::size_t p = 16;
  std::size_t k = 4;
  std::size_t n = 1024;
  util::Shape shape = util::Shape::kEven;
  std::string algorithm = "auto";
};

/// A sweep: either the cartesian product of the axes below (enumerated
/// p-major: p, then k, then n, then shape, then algorithm), or an explicit
/// point list, crossed with `seeds` trials per point.
struct Sweep {
  std::vector<std::size_t> ps{16};
  std::vector<std::size_t> ks{4};
  std::vector<std::size_t> ns{1024};
  std::vector<util::Shape> shapes{util::Shape::kEven};
  std::vector<std::string> algorithms{"auto"};

  /// When non-empty, replaces the cartesian axes entirely (used by benches
  /// whose grids are tuple lists, not products).
  std::vector<GridPoint> explicit_points;

  std::uint64_t base_seed = 1;
  std::size_t seeds = 1;  ///< trials per grid point
  Engine engine = Engine::kEventDriven;

  /// Attach a check::ConformanceChecker to every trial: each run's event
  /// stream is independently re-validated against the MCB model rules and
  /// reconciled against its RunStats and the paper's bounds. A trial with
  /// violations records an error (and the violation count below) instead of
  /// aborting the sweep. Deterministic given the spec, so serialized.
  bool check = false;

  /// Attach an obs::Recorder to every trial: phase spans are collected,
  /// reconciled against the run's PhaseStats (a reconciliation failure
  /// becomes the trial's error) and summarized into TrialResult::spans.
  /// Deterministic given the spec, so the summaries are serialized — the
  /// "spans" arrays appear in the JSON only when this flag is on, keeping
  /// obs-off output byte-identical to previous versions.
  bool obs = false;

  /// Grid points in stable enumeration order.
  std::vector<GridPoint> points() const;
  std::size_t trials() const { return points().size() * seeds; }
};

/// Derives the workload seed of a trial (see the determinism contract
/// above).
std::uint64_t trial_seed(std::uint64_t base_seed, std::size_t trial_index);

/// One trial, fully determined at sweep-expansion time.
struct TrialSpec {
  std::size_t trial_index = 0;  ///< position in stable result order
  std::size_t point_index = 0;  ///< index into Sweep::points()
  std::size_t seed_index = 0;   ///< 0..seeds-1 within the point
  GridPoint point;
  std::uint64_t seed = 0;  ///< trial_seed(base_seed, trial_index)
};

/// Model-level accounting of one trial plus its bound comparison. The
/// host-side sim_wall_ns is telemetry only and never serialized into the
/// deterministic sweep JSON.
struct TrialResult {
  Cycle cycles = 0;
  std::uint64_t messages = 0;
  std::size_t peak_aux_words = 0;
  std::uint64_t proc_resumes = 0;
  std::uint64_t sim_wall_ns = 0;
  /// Frame-arena telemetry. Deterministic given the spec (the trial's
  /// coroutine execution is) — so these ARE serialized, unlike sim_wall_ns.
  /// Zero in MCB_FRAME_ARENA=OFF builds.
  std::uint64_t frame_allocs = 0;
  std::uint64_t frame_frees = 0;
  std::uint64_t arena_bytes_peak = 0;
  double arena_hit_rate = 0.0;
  /// Theta-term predictions from theory/bounds for this point's geometry.
  double predicted_cycles = 0.0;
  double predicted_messages = 0.0;
  /// Model-conformance violations found by the checker (0 when the sweep
  /// ran without Sweep::check, or when the run conformed).
  std::uint64_t conformance_violations = 0;
  /// Per-phase span summaries (first-appearance order); populated only when
  /// the sweep ran with Sweep::obs. Deterministic given the spec.
  std::vector<obs::SpanSummary> spans;
  std::string algorithm_used;  ///< resolved algorithm (e.g. auto -> ...)
  std::string error;           ///< empty on success
  bool ok() const { return error.empty(); }
};

/// min/mean/max and nearest-rank percentiles of one metric across the
/// successful trials of a grid point.
struct Summary {
  double min = 0.0;
  double mean = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
};

/// Computes a Summary. Percentiles use the nearest-rank definition
/// ceil(q * count) on the sorted values; empty input yields all zeros.
Summary summarize(std::vector<double> values);

/// Cross-seed aggregation of one grid point.
struct PointAggregate {
  GridPoint point;
  std::size_t trials = 0;
  std::size_t failed = 0;  ///< trials excluded from the summaries
  Summary cycles;
  Summary messages;
  Summary peak_aux_words;
  /// mean measured / Theta-term predicted (0 when no prediction applies).
  double cycles_vs_predicted = 0.0;
  double messages_vs_predicted = 0.0;
};

struct SweepOptions {
  std::size_t threads = 0;  ///< worker count; 0 = hardware concurrency
};

/// A completed sweep: specs/results in stable trial order plus per-point
/// aggregates. wall_ns/threads_used are host-side telemetry (not part of
/// the deterministic serialization).
struct SweepRun {
  Sweep sweep;
  std::vector<TrialSpec> specs;
  std::vector<TrialResult> results;  // parallel to specs
  std::vector<PointAggregate> aggregates;
  std::uint64_t wall_ns = 0;
  std::size_t threads_used = 1;
};

/// Expands the sweep into trial specs (stable order; pure).
std::vector<TrialSpec> expand(const Sweep& sweep);

/// Runs one trial on the calling thread (pure given the spec). With
/// `check`, a ConformanceChecker observes the run; violations become the
/// trial's error. With `obs`, an obs::Recorder collects phase spans into
/// TrialResult::spans; a span/PhaseStats reconciliation failure becomes the
/// trial's error.
TrialResult run_trial(const TrialSpec& spec, Engine engine,
                      bool check = false, bool obs = false);

/// Runs the whole sweep on a worker pool and aggregates.
SweepRun run_sweep(const Sweep& sweep, const SweepOptions& opts = {});

/// Deterministic JSON serialization of a sweep run: grid, per-trial results
/// and per-point aggregates, excluding all host-side timing. Byte-identical
/// across thread counts for the same Sweep.
std::string sweep_json(const SweepRun& run);

}  // namespace mcb::harness
