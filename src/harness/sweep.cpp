#include "harness/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <sstream>

#include <optional>

#include "algo/selection.hpp"
#include "algo/sort.hpp"
#include "check/conformance.hpp"
#include "harness/thread_pool.hpp"
#include "theory/bounds.hpp"
#include "util/check.hpp"
#include "util/json.hpp"
#include "util/random.hpp"

namespace mcb::harness {

namespace {

const char* engine_name(Engine e) {
  switch (e) {
    case Engine::kEventDriven: return "event";
    case Engine::kReference: return "reference";
    case Engine::kParallel: return "parallel";
  }
  return "unknown";
}

/// True when the concatenation outputs[0] + outputs[1] + ... is
/// non-increasing — the library's sort output contract (algo/sort.hpp).
bool is_descending(const std::vector<std::vector<Word>>& outputs) {
  bool have_prev = false;
  Word prev = 0;
  for (const auto& out : outputs) {
    for (Word w : out) {
      if (have_prev && w > prev) return false;
      prev = w;
      have_prev = true;
    }
  }
  return true;
}

void fill_stats(TrialResult& r, const RunStats& stats) {
  r.cycles = stats.cycles;
  r.messages = stats.messages;
  r.peak_aux_words = stats.max_peak_aux();
  r.proc_resumes = stats.proc_resumes;
  r.sim_wall_ns = stats.sim_wall_ns;
  r.frame_allocs = stats.frame_allocs;
  r.frame_frees = stats.frame_frees;
  r.arena_bytes_peak = stats.arena_bytes_peak;
  r.arena_hit_rate = stats.arena_hit_rate;
}

void fill_spans(TrialResult& r, const obs::Recorder& rec,
                const RunStats& stats) {
  r.spans = rec.summarize();
  const auto problems = rec.reconcile(stats);
  if (!problems.empty()) {
    std::string msg = "span reconciliation failed: " + problems.front();
    if (problems.size() > 1) {
      msg += " (+" + std::to_string(problems.size() - 1) + " more)";
    }
    r.error = r.error.empty() ? msg : r.error + "; " + msg;
  }
}

double mean_ratio(const std::vector<double>& measured,
                  const std::vector<double>& predicted) {
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < measured.size(); ++i) {
    if (predicted[i] > 0.0) {
      sum += measured[i] / predicted[i];
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

/// Deterministic double rendering for the sweep JSON (identical for
/// identical values, and "0" for non-finite ones, which JSON cannot carry).
std::string fmt(double v) { return util::json_double(v); }

void summary_json(std::ostream& os, const char* name, const Summary& s) {
  os << '"' << name << "\": {\"min\": " << fmt(s.min)
     << ", \"mean\": " << fmt(s.mean) << ", \"max\": " << fmt(s.max)
     << ", \"p50\": " << fmt(s.p50) << ", \"p95\": " << fmt(s.p95) << '}';
}

void point_json(std::ostream& os, const GridPoint& pt) {
  os << "\"p\": " << pt.p << ", \"k\": " << pt.k << ", \"n\": " << pt.n
     << ", \"shape\": \"" << util::json_escape(util::to_string(pt.shape))
     << "\", \"algorithm\": \"" << util::json_escape(pt.algorithm) << '"';
}

}  // namespace

std::vector<GridPoint> Sweep::points() const {
  if (!explicit_points.empty()) return explicit_points;
  std::vector<GridPoint> pts;
  pts.reserve(ps.size() * ks.size() * ns.size() * shapes.size() *
              algorithms.size());
  for (std::size_t p : ps) {
    for (std::size_t k : ks) {
      for (std::size_t n : ns) {
        for (util::Shape shape : shapes) {
          for (const auto& algorithm : algorithms) {
            pts.push_back(GridPoint{p, k, n, shape, algorithm});
          }
        }
      }
    }
  }
  return pts;
}

std::uint64_t trial_seed(std::uint64_t base_seed, std::size_t trial_index) {
  return util::splitmix64(base_seed ^ util::splitmix64(trial_index));
}

std::vector<TrialSpec> expand(const Sweep& sweep) {
  MCB_REQUIRE(sweep.seeds >= 1, "a sweep needs at least one seed per point");
  const auto pts = sweep.points();
  MCB_REQUIRE(!pts.empty(), "a sweep needs at least one grid point");
  std::vector<TrialSpec> specs;
  specs.reserve(pts.size() * sweep.seeds);
  for (std::size_t pi = 0; pi < pts.size(); ++pi) {
    for (std::size_t si = 0; si < sweep.seeds; ++si) {
      TrialSpec spec;
      spec.trial_index = specs.size();
      spec.point_index = pi;
      spec.seed_index = si;
      spec.point = pts[pi];
      spec.seed = trial_seed(sweep.base_seed, spec.trial_index);
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

TrialResult run_trial(const TrialSpec& spec, Engine engine, bool check,
                      bool obs) {
  TrialResult r;
  const GridPoint& pt = spec.point;
  try {
    SimConfig cfg{.p = pt.p, .k = pt.k};
    cfg.engine = engine;
    // Parallel-engine trials run single-threaded: the sweep already fans
    // out across trials (parallel_for_index), so per-trial worker pools
    // would oversubscribe the machine, and the engine's determinism
    // contract makes thread count unobservable in the results anyway.
    if (engine == Engine::kParallel) cfg.threads = 1;
    cfg.validate();
    const auto w = util::make_workload(pt.n, pt.p, pt.shape, spec.seed);

    std::optional<check::ConformanceChecker> checker;
    if (check) checker.emplace(cfg);
    TraceSink* sink = check ? &*checker : nullptr;
    std::optional<obs::Recorder> recorder;
    if (obs) {
      recorder.emplace();
      cfg.span_sink = &*recorder;
    }
    std::vector<std::size_t> sizes;
    if (check) {
      sizes.reserve(w.inputs.size());
      for (const auto& in : w.inputs) sizes.push_back(in.size());
    }

    if (pt.algorithm == "select") {
      // Verification target: the true median of the flattened input.
      std::vector<Word> flat;
      flat.reserve(pt.n);
      for (const auto& in : w.inputs) {
        flat.insert(flat.end(), in.begin(), in.end());
      }
      const std::size_t d = (flat.size() + 1) / 2;  // d-th largest
      if (check) checker->expect_selection_bounds(std::move(sizes), d);
      auto res = algo::select_median(cfg, w.inputs, {}, sink);
      fill_stats(r, res.stats);
      if (check) checker->finish(res.stats);
      if (obs) fill_spans(r, *recorder, res.stats);
      r.algorithm_used = "selection";
      r.predicted_cycles = theory::selection_cycles_term(pt.p, pt.k, pt.n);
      r.predicted_messages =
          theory::selection_messages_term(pt.p, pt.k, pt.n);
      auto nth = flat.begin() + static_cast<std::ptrdiff_t>(d - 1);
      std::nth_element(flat.begin(), nth, flat.end(), std::greater<Word>{});
      if (res.value != *nth) {
        r.error = "verification failed: selection returned " +
                  std::to_string(res.value) + ", true median is " +
                  std::to_string(*nth);
      }
    } else {
      if (check) checker->expect_sorting_bounds(std::move(sizes));
      auto res = algo::sort(
          cfg, w.inputs,
          {.algorithm = algo::sort_algorithm_from_string(pt.algorithm)},
          sink);
      fill_stats(r, res.run.stats);
      if (check) checker->finish(res.run.stats);
      if (obs) fill_spans(r, *recorder, res.run.stats);
      r.algorithm_used = algo::to_string(res.used);
      r.predicted_cycles =
          theory::sorting_cycles_term(pt.n, pt.k, w.max_local());
      r.predicted_messages = theory::sorting_messages_term(pt.n);
      // Verify the output is a descending permutation of the input.
      if (!is_descending(res.run.outputs)) {
        r.error = "verification failed: sort output is not descending";
      } else if (util::multiset_fingerprint(res.run.outputs) !=
                 util::multiset_fingerprint(w.inputs)) {
        r.error =
            "verification failed: sort output is not a permutation of the "
            "input";
      }
    }

    if (check && !checker->report().ok()) {
      const auto& rep = checker->report();
      r.conformance_violations = rep.total_violations;
      std::string msg =
          std::string("conformance failed: ") +
          std::to_string(rep.total_violations) +
          " violation(s), first " +
          (rep.violations.empty()
               ? std::string("<unrecorded>")
               : std::string(check::rule_id(rep.violations.front().rule)) +
                     ": " + rep.violations.front().detail);
      r.error = r.error.empty() ? msg : r.error + "; " + msg;
    }
  } catch (const std::exception& e) {
    r.error = e.what();
  }
  return r;
}

Summary summarize(std::vector<double> values) {
  Summary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  const auto count = static_cast<double>(values.size());
  s.min = values.front();
  s.max = values.back();
  s.mean = std::accumulate(values.begin(), values.end(), 0.0) / count;
  auto nearest_rank = [&](double q) {
    const auto rank = static_cast<std::size_t>(std::ceil(q * count));
    return values[(rank == 0 ? 1 : rank) - 1];
  };
  s.p50 = nearest_rank(0.50);
  s.p95 = nearest_rank(0.95);
  return s;
}

SweepRun run_sweep(const Sweep& sweep, const SweepOptions& opts) {
  SweepRun run;
  run.sweep = sweep;
  run.specs = expand(sweep);
  run.results.resize(run.specs.size());
  run.threads_used = resolve_threads(opts.threads, run.specs.size());

  const auto t0 = std::chrono::steady_clock::now();
  // Each worker writes only results[i] for the indices it claims; trials
  // share no other mutable state (see harness/thread_pool.hpp).
  parallel_for_index(run.specs.size(), opts.threads, [&](std::size_t i) {
    run.results[i] =
        run_trial(run.specs[i], sweep.engine, sweep.check, sweep.obs);
  });
  run.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());

  // Cross-seed aggregation. Trials of one point are contiguous in spec
  // order (point-major expansion).
  const auto pts = sweep.points();
  run.aggregates.reserve(pts.size());
  for (std::size_t pi = 0; pi < pts.size(); ++pi) {
    PointAggregate agg;
    agg.point = pts[pi];
    std::vector<double> cycles, messages, aux;
    std::vector<double> pred_cycles, pred_messages;
    for (std::size_t si = 0; si < sweep.seeds; ++si) {
      const auto& res = run.results[pi * sweep.seeds + si];
      ++agg.trials;
      if (!res.ok()) {
        ++agg.failed;
        continue;
      }
      cycles.push_back(static_cast<double>(res.cycles));
      messages.push_back(static_cast<double>(res.messages));
      aux.push_back(static_cast<double>(res.peak_aux_words));
      pred_cycles.push_back(res.predicted_cycles);
      pred_messages.push_back(res.predicted_messages);
    }
    agg.cycles = summarize(cycles);
    agg.messages = summarize(messages);
    agg.peak_aux_words = summarize(aux);
    agg.cycles_vs_predicted = mean_ratio(cycles, pred_cycles);
    agg.messages_vs_predicted = mean_ratio(messages, pred_messages);
    run.aggregates.push_back(std::move(agg));
  }
  return run;
}

std::string sweep_json(const SweepRun& run) {
  std::ostringstream os;
  os << "{\n  \"sweep\": {\"base_seed\": " << run.sweep.base_seed
     << ", \"seeds\": " << run.sweep.seeds << ", \"engine\": \""
     << engine_name(run.sweep.engine) << "\", \"check\": "
     << (run.sweep.check ? "true" : "false");
  // Emitted only when on, so obs-off output stays byte-identical to
  // pre-telemetry versions of this serializer.
  if (run.sweep.obs) os << ", \"obs\": true";
  os << ", \"points\": " << run.aggregates.size()
     << ", \"trials\": " << run.results.size() << "},\n";

  os << "  \"trials\": [\n";
  for (std::size_t i = 0; i < run.specs.size(); ++i) {
    const auto& spec = run.specs[i];
    const auto& res = run.results[i];
    os << "    {\"trial\": " << spec.trial_index
       << ", \"point\": " << spec.point_index
       << ", \"seed_index\": " << spec.seed_index
       << ", \"seed\": " << spec.seed << ", ";
    point_json(os, spec.point);
    os << ", \"algorithm_used\": \"" << util::json_escape(res.algorithm_used)
       << "\", \"cycles\": " << res.cycles
       << ", \"messages\": " << res.messages
       << ", \"peak_aux_words\": " << res.peak_aux_words
       << ", \"proc_resumes\": " << res.proc_resumes
       << ", \"frame_allocs\": " << res.frame_allocs
       << ", \"frame_frees\": " << res.frame_frees
       << ", \"arena_bytes_peak\": " << res.arena_bytes_peak
       << ", \"arena_hit_rate\": " << fmt(res.arena_hit_rate)
       << ", \"predicted_cycles\": " << fmt(res.predicted_cycles)
       << ", \"predicted_messages\": " << fmt(res.predicted_messages)
       << ", \"conformance_violations\": " << res.conformance_violations;
    if (run.sweep.obs) {
      os << ", \"spans\": [";
      for (std::size_t s = 0; s < res.spans.size(); ++s) {
        const auto& sp = res.spans[s];
        os << (s == 0 ? "" : ", ") << "{\"name\": \""
           << util::json_escape(sp.name) << "\", \"count\": " << sp.count
           << ", \"cycles\": " << sp.cycles
           << ", \"messages\": " << sp.messages << '}';
      }
      os << ']';
    }
    os << ", \"error\": \"" << util::json_escape(res.error) << "\"}"
       << (i + 1 < run.specs.size() ? ",\n" : "\n");
  }
  os << "  ],\n";

  os << "  \"aggregates\": [\n";
  for (std::size_t i = 0; i < run.aggregates.size(); ++i) {
    const auto& agg = run.aggregates[i];
    os << "    {\"point\": " << i << ", ";
    point_json(os, agg.point);
    os << ", \"trials\": " << agg.trials << ", \"failed\": " << agg.failed
       << ", ";
    summary_json(os, "cycles", agg.cycles);
    os << ", ";
    summary_json(os, "messages", agg.messages);
    os << ", ";
    summary_json(os, "peak_aux_words", agg.peak_aux_words);
    os << ", \"cycles_vs_predicted\": " << fmt(agg.cycles_vs_predicted)
       << ", \"messages_vs_predicted\": " << fmt(agg.messages_vs_predicted)
       << '}' << (i + 1 < run.aggregates.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace mcb::harness
