// Distributed sorting for arbitrary (uneven) distributions — Section 7.2.
//
// Phase 0 splits into two subphases. *Group formation*: the processors use
// Partial-Sums to learn n, n_max and their own prefix counts, then form at
// most k groups whose element counts m_j satisfy
// ceil(n/k) <= m_j <= ceil(n/k) + n_max - 1, one group per cycle (the
// group's representative — its highest-numbered member — announces m_j on
// channel 0). *Element collection*: each member waits out its within-group
// prefix and streams its elements to the representative on the group's
// channel; all groups proceed in parallel, and the globally known padded
// column length m doubles as the synchronization point for phase 1.
//
// Phases 1-9 are the shared Columnsort core over the (at most k) columns;
// phase 10 is the double-broadcast redistribution, with each processor
// collecting the segment of the descending order matching its ORIGINAL
// element count (the definition of sorting in Section 3).
//
// Complexity: O(n) messages and O(n/k + n_max) cycles — by Corollary 6
// optimal (Theta(max{n/k, n_max})) whenever n_max <= alpha*n for a constant
// alpha < 1 and n >= k^2(k-1).
#pragma once

#include <cstddef>
#include <vector>

#include "algo/runner.hpp"
#include "mcb/sim_config.hpp"
#include "mcb/types.hpp"

namespace mcb::algo {

struct UnevenSortResult {
  AlgoResult run;
  std::size_t groups = 0;      ///< columns actually formed (<= k)
  std::size_t column_len = 0;  ///< m after padding
};

/// Sorts an arbitrarily distributed input (every processor must hold at
/// least one element; values != kDummy). Requires the Columnsort dimension
/// condition to be satisfiable, i.e. roughly n >= k^2(k-1) — with fewer
/// elements the algorithm automatically forms fewer groups only as the
/// distribution dictates, so callers with tiny n should reduce k.
UnevenSortResult uneven_sort(const SimConfig& cfg,
                             const std::vector<std::vector<Word>>& inputs,
                             TraceSink* sink = nullptr);

}  // namespace mcb::algo
