#include "algo/selection.hpp"

#include <algorithm>

#include "algo/columnsort_even.hpp"
#include "algo/common.hpp"
#include "algo/partial_sums.hpp"
#include "mcb/network.hpp"
#include "obs/span.hpp"
#include "seq/selection.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace mcb::algo {
namespace {

struct SelCtx {
  std::size_t threshold = 0;
  std::size_t d = 0;
  bool use_quickselect = false;
  EvenSortPlan pair_sort;  ///< one (median, count) pair per processor
};

/// Local median of the candidate list, by the paper's convention
/// N[ceil(m/2)]; reorders `cands` (harmless — candidate sets are unordered).
Word local_median(std::vector<Word>& cands, bool quick,
                  util::Xoshiro256StarStar& rng) {
  const std::size_t rank = (cands.size() + 1) / 2;
  if (quick) {
    return seq::kth_largest_quickselect(cands, rank, rng);
  }
  return seq::kth_largest(cands, rank);
}

ProcMain selection_program(Proc& self, const SelCtx& ctx,
                           const std::vector<Word>& input, Word& answer,
                           std::size_t& phases_out,
                           std::vector<std::size_t>& phase_candidates) {
  const std::size_t i = self.id();
  util::Xoshiro256StarStar rng(0x5e1ec7 + i);

  std::vector<Word> cands = input;
  std::size_t d = ctx.d;  // rank within the remaining candidates
  std::size_t phases = 0;
  bool done = false;

  // Learn the initial candidate count (every processor must know whether
  // filtering is needed at all). The span scope must close in the same
  // resumption in which the next mark_phase fires, so that the span and
  // the phase agree on their (cycle, messages) boundary stamps exactly.
  if (i == 0) self.mark_phase("setup");
  std::size_t m_known = 0;
  {
    obs::Span sp(self, "setup");
    const auto init = co_await partial_sums(
        self, static_cast<Word>(cands.size()), SumOp::add(),
        {.with_total = true});
    m_known = static_cast<std::size_t>(init.total);
  }

  // --- filtering phases ----------------------------------------------------
  while (!done && m_known > ctx.threshold) {
    if (i == 0) self.mark_phase("filter");
    obs::Span sp(self, "filter");
    ++phases;
    phase_candidates.push_back(m_known);

    // 1. local medians; empty processors contribute the dummy pair, which
    //    sorts to the very end and carries count 0.
    std::vector<KV> pair(1);
    pair[0] = cands.empty()
                  ? KV{kDummy, 0}
                  : KV{local_median(cands, ctx.use_quickselect, rng),
                       static_cast<Word>(cands.size())};

    // 2. sort the pairs descending by median.
    co_await columnsort_even_collective(self, ctx.pair_sort, pair);

    // 3. prefix counts over the sorted order; locate the weighted median.
    const auto ps = co_await partial_sums(self, pair[0].val, SumOp::add(),
                                          {.with_total = true});
    const auto m = static_cast<std::size_t>(ps.total);
    MCB_CHECK(m == m_known, "candidate count drifted: " << m << " vs "
                                                        << m_known);
    const std::size_t half = (m + 1) / 2;  // ceil(m/2)
    const bool am_star = static_cast<std::size_t>(ps.before) < half &&
                         half <= static_cast<std::size_t>(ps.self);
    Word med_star = 0;
    if (am_star) {
      med_star = pair[0].key;
      co_await self.write(0, Message::of(med_star));
    } else {
      auto got = co_await self.read(0);
      MCB_CHECK(got.has_value(), "no weighted-median broadcast");
      med_star = got->at(0);
    }

    // 4. count candidates >= med_star network-wide.
    Word ge_local = 0;
    for (Word w : cands) {
      if (w >= med_star) ++ge_local;
    }
    const auto gs = co_await partial_sums(self, ge_local, SumOp::add(),
                                          {.with_total = true});
    const auto m_s = static_cast<std::size_t>(gs.total);

    if (m_s == d) {  // case 1: found it
      answer = med_star;
      done = true;
    } else if (m_s > d) {  // case 2: answer is above med_star
      std::erase_if(cands, [med_star](Word w) { return w <= med_star; });
      m_known = m_s - 1;
    } else {  // case 3: answer is below med_star
      std::erase_if(cands, [med_star](Word w) { return w >= med_star; });
      d -= m_s;
      m_known = m - m_s;
    }
  }
  phases_out = phases;

  // --- termination phase ----------------------------------------------------
  if (i == 0) self.mark_phase("terminate");
  obs::Span sp_term(self, "terminate");
  if (!done) {
    // Prefix offsets give every processor a write window on channel 0;
    // P_1 appends its own survivors locally during its window and reads
    // everyone else's, then selects and broadcasts the answer.
    const auto ps = co_await partial_sums(
        self, static_cast<Word>(cands.size()), SumOp::add(),
        {.with_total = true});
    const auto m = static_cast<std::size_t>(ps.total);
    MCB_CHECK(d >= 1 && d <= m, "rank " << d << " of " << m << " survivors");
    const auto lo = static_cast<std::size_t>(ps.before);
    const auto hi = static_cast<std::size_t>(ps.self);
    if (i == 0) {
      std::vector<Word> pool;
      pool.reserve(m);
      for (std::size_t t = 0; t < m; ++t) {
        if (t >= lo && t < hi) {
          const Word w = cands[t - lo];
          co_await self.write(0, Message::of(w));
          pool.push_back(w);
        } else {
          auto got = co_await self.read(0);
          MCB_CHECK(got.has_value(), "termination slot " << t << " empty");
          pool.push_back(got->at(0));
        }
      }
      self.note_aux(pool.size());
      answer = seq::kth_largest(pool, d);
      co_await self.write(0, Message::of(answer));
    } else {
      if (lo > 0) co_await self.skip(lo);
      for (Word w : cands) {
        co_await self.write(0, Message::of(w));
      }
      if (m > hi) co_await self.skip(m - hi);
      auto got = co_await self.read(0);
      MCB_CHECK(got.has_value(), "no answer broadcast");
      answer = got->at(0);
    }
  }
}

}  // namespace

SelectionResult select_rank(const SimConfig& cfg,
                            const std::vector<std::vector<Word>>& inputs,
                            std::size_t d, SelectionOptions opts,
                            TraceSink* sink) {
  cfg.validate();
  MCB_REQUIRE(inputs.size() == cfg.p, "inputs for " << inputs.size()
                                                    << " processors, p="
                                                    << cfg.p);
  std::size_t n = 0;
  for (const auto& in : inputs) {
    MCB_REQUIRE(!in.empty(), "every processor needs at least one element");
    n += in.size();
    for (Word w : in) {
      MCB_REQUIRE(w != kDummy, "input contains the reserved dummy value");
    }
  }
  MCB_REQUIRE(1 <= d && d <= n, "rank " << d << " of " << n);

  SelCtx ctx;
  ctx.d = d;
  ctx.threshold = opts.threshold != 0
                      ? opts.threshold
                      : std::max<std::size_t>(cfg.p / cfg.k, 1);
  ctx.use_quickselect = opts.use_quickselect;
  ctx.pair_sort = EvenSortPlan::build(cfg.p, cfg.k, 1);

  std::vector<Word> answers(cfg.p, 0);
  std::vector<std::size_t> phases(cfg.p, 0);
  std::vector<std::vector<std::size_t>> cand_traces(cfg.p);
  Network net(cfg, sink);
  for (ProcId i = 0; i < cfg.p; ++i) {
    net.install(i, selection_program(net.proc(i), ctx, inputs[i], answers[i],
                                     phases[i], cand_traces[i]));
  }
  SelectionResult result;
  result.stats = net.run();
  result.value = answers[0];
  result.filter_phases = phases[0];
  result.candidates_per_phase = std::move(cand_traces[0]);
  for (std::size_t i = 1; i < cfg.p; ++i) {
    MCB_CHECK(answers[i] == answers[0], "P" << i + 1 << " disagrees");
  }
  return result;
}

SelectionResult select_median(const SimConfig& cfg,
                              const std::vector<std::vector<Word>>& inputs,
                              SelectionOptions opts, TraceSink* sink) {
  std::size_t n = 0;
  for (const auto& in : inputs) n += in.size();
  return select_rank(cfg, inputs, (n + 1) / 2, opts, sink);
}

}  // namespace mcb::algo
