// Baseline algorithms the paper's contributions are compared against.
//
// * central_sort          — gather everything into P_1, sort locally,
//                           broadcast back. Uses one channel regardless of
//                           k: Theta(n) cycles, the natural "naive"
//                           distributed sort. Columnsort's win is the k-fold
//                           cycle reduction.
// * selection_by_sorting  — Section 8's strawman: sort the whole input, then
//                           the owner of rank d announces it. Correct but
//                           pays Theta(n) messages where filtering pays
//                           Theta(p log(kn/p)).
#pragma once

#include <cstddef>
#include <vector>

#include "algo/runner.hpp"
#include "algo/selection.hpp"
#include "mcb/sim_config.hpp"

namespace mcb::algo {

/// Gather-sort-scatter on channel 0. Arbitrary distributions; output
/// contract identical to the Columnsort variants.
AlgoResult central_sort(const SimConfig& cfg,
                        const std::vector<std::vector<Word>>& inputs,
                        TraceSink* sink = nullptr);

/// Selection by fully sorting (uneven Columnsort) and announcing N[d].
SelectionResult selection_by_sorting(const SimConfig& cfg,
                                     const std::vector<std::vector<Word>>& inputs,
                                     std::size_t d, TraceSink* sink = nullptr);

/// Central sort under the Section-9 model extension (multi-read): the
/// collector reads all k channels per cycle, so the gather phase drops to
/// ~n/k cycles — but the single broadcaster still needs Theta(n) cycles to
/// scatter, so the total stays Theta(n). A concrete illustration of the
/// paper's closing remark that the extensions are not needed for optimal
/// sorting: Columnsort already achieves Theta(n/k) in the standard model.
/// Requires cfg.multi_read and an even distribution with p a multiple of k.
AlgoResult central_sort_multiread(const SimConfig& cfg,
                                  const std::vector<std::vector<Word>>& inputs,
                                  TraceSink* sink = nullptr);

}  // namespace mcb::algo
