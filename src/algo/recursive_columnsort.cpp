#include "algo/recursive_columnsort.hpp"

#include <array>
#include <memory>

#include "algo/common.hpp"
#include "algo/ranksort.hpp"
#include "sched/edge_coloring.hpp"
#include "sched/permutation.hpp"
#include "seq/sorting.hpp"
#include "util/check.hpp"

namespace mcb::algo {
namespace {

constexpr std::array<sched::Transform, 4> kTransforms = {
    sched::Transform::kTranspose, sched::Transform::kUndiagonalize,
    sched::Transform::kUpShift, sched::Transform::kDownShift};

/// One cross-processor element move of a segmented transformation.
/// Positions are node-local column-major indices; the channel is node-local
/// (segment channel of the source element).
struct TEdge {
  std::uint32_t src_pos = 0;
  std::uint32_t dst_pos = 0;
  std::uint32_t channel = 0;
};

/// Plan-tree node. All k' children of a split are isomorphic, so one child
/// plan is shared.
struct RNode {
  enum class Kind { kLocal, kRankSort, kSplit };
  Kind kind = Kind::kLocal;
  std::size_t n_c = 0;    ///< elements sorted by this node
  std::size_t q = 0;      ///< processors
  std::size_t kc = 0;     ///< channels
  std::size_t chunk = 0;  ///< elements per processor (n_c / q)
  Cycle cost = 0;         ///< deterministic cycle count of this node

  // kSplit only:
  std::size_t ksplit = 0;  ///< k' columns
  std::unique_ptr<RNode> child;
  /// trounds[t]: rounds of transformation t; each round's edges are
  /// pairwise channel- and receiver-disjoint.
  std::array<std::vector<std::vector<TEdge>>, 4> trounds;
  std::array<std::vector<std::uint32_t>, 4> tables;
};

std::size_t owner_of(const RNode& node, std::size_t pos) {
  return pos / node.chunk;
}

void build_transform_rounds(RNode& node) {
  const std::size_t len = node.n_c / node.ksplit;     // column length
  const std::size_t segs = node.kc / node.ksplit;     // segments per column
  const std::size_t seg_len = len / segs;
  for (std::size_t t = 0; t < kTransforms.size(); ++t) {
    node.tables[t] = sched::permutation_table(kTransforms[t], len,
                                              node.ksplit);
    const auto& table = node.tables[t];
    std::vector<sched::BipEdge> bip;
    std::vector<TEdge> moves;
    for (std::size_t pos = 0; pos < node.n_c; ++pos) {
      const std::size_t dst = table[pos];
      if (owner_of(node, pos) == owner_of(node, dst)) continue;
      const std::size_t col = pos / len;
      const std::size_t channel = col * segs + (pos % len) / seg_len;
      bip.push_back(sched::BipEdge{
          static_cast<std::uint32_t>(channel),
          static_cast<std::uint32_t>(owner_of(node, dst))});
      moves.push_back(TEdge{static_cast<std::uint32_t>(pos),
                            static_cast<std::uint32_t>(dst),
                            static_cast<std::uint32_t>(channel)});
    }
    const auto coloring = sched::euler_color(node.kc, node.q, bip);
    node.trounds[t].assign(coloring.num_colors, {});
    for (std::size_t e = 0; e < moves.size(); ++e) {
      node.trounds[t][coloring.colors[e]].push_back(moves[e]);
    }
    node.cost += coloring.num_colors;
  }
}

std::unique_ptr<RNode> build_rnode(std::size_t n_c, std::size_t q,
                                   std::size_t kc, std::size_t max_split,
                                   std::size_t* depth_out,
                                   std::size_t* top_split) {
  auto node = std::make_unique<RNode>();
  node->n_c = n_c;
  node->q = q;
  node->kc = kc;
  node->chunk = n_c / q;
  MCB_REQUIRE(n_c % q == 0, "recursive sort needs q | n (n_c=" << n_c
                                                               << ", q=" << q
                                                               << ")");
  if (q == 1) {
    node->kind = RNode::Kind::kLocal;
    node->cost = 0;
    return node;
  }
  if (kc == 1) {
    node->kind = RNode::Kind::kRankSort;
    node->cost = static_cast<Cycle>(2 * n_c);
    return node;
  }

  // Greedy largest feasible split factor.
  const std::size_t cap = max_split == 0 ? kc : std::min(kc, max_split);
  std::size_t ks = 0;
  for (std::size_t cand = cap; cand >= 2; --cand) {
    if (q % cand != 0 || kc % cand != 0) continue;
    if (n_c % (cand * cand) != 0) continue;           // cand | column length
    const std::size_t len = n_c / cand;
    if (len < cand * (cand - 1)) continue;            // Columnsort rule
    const std::size_t segs = kc / cand;
    if (len % segs != 0) continue;                    // segments tile columns
    if (q % kc != 0) continue;                        // segment/processor align
    ks = cand;
    break;
  }
  if (ks == 0) {
    // No feasible split: sort the whole node on one channel. Correct, if
    // wasteful — only reachable for degenerate dimensions.
    node->kind = RNode::Kind::kRankSort;
    node->cost = static_cast<Cycle>(2 * n_c);
    return node;
  }

  node->kind = RNode::Kind::kSplit;
  node->ksplit = ks;
  if (top_split != nullptr && *top_split == 0) *top_split = ks;
  std::size_t child_depth = 0;
  node->child = build_rnode(n_c / ks, q / ks, kc / ks, max_split,
                            &child_depth, nullptr);
  if (depth_out != nullptr) *depth_out = child_depth + 1;
  build_transform_rounds(*node);
  node->cost += 4 * node->child->cost;  // phases 1, 3, 5, 7
  return node;
}

/// Executes one segmented transformation from this processor's view.
Task<void> exec_transform(Proc& self, const RNode& node, std::size_t t,
                          std::size_t my_idx, ChannelId first_ch,
                          std::vector<Word>& mine) {
  const auto& table = node.tables[t];
  const std::size_t base = my_idx * node.chunk;

  std::vector<Word> next(mine.size());
  self.note_aux(2 * mine.size());
  // Moves that stay inside this processor are local copies.
  for (std::size_t pos = base; pos < base + node.chunk; ++pos) {
    const std::size_t dst = table[pos];
    if (owner_of(node, dst) == my_idx) {
      next[dst - base] = mine[pos - base];
    }
  }

  for (const auto& round : node.trounds[t]) {
    std::optional<WriteOp> write;
    std::optional<ChannelId> read;
    std::size_t expect_dst = SIZE_MAX;
    for (const auto& e : round) {
      if (owner_of(node, e.src_pos) == my_idx) {
        write = WriteOp{static_cast<ChannelId>(first_ch + e.channel),
                        Message::of(mine[e.src_pos - base],
                                    static_cast<Word>(e.dst_pos))};
      }
      if (owner_of(node, e.dst_pos) == my_idx) {
        read = static_cast<ChannelId>(first_ch + e.channel);
        expect_dst = e.dst_pos;
      }
    }
    auto got = co_await self.cycle(std::move(write), read);
    if (expect_dst != SIZE_MAX) {
      MCB_CHECK(got.has_value(), "segmented transfer missing");
      MCB_CHECK(static_cast<std::size_t>(got->at(1)) == expect_dst,
                "segmented transfer routed to the wrong slot");
      next[expect_dst - base] = got->at(0);
    }
  }
  mine.swap(next);
}

Task<void> rsort_exec(Proc& self, const RNode& node, ProcId first_proc,
                      ChannelId first_ch, std::vector<Word>& mine) {
  const std::size_t my_idx = self.id() - first_proc;
  switch (node.kind) {
    case RNode::Kind::kLocal:
      seq::sort_descending(mine);
      co_return;
    case RNode::Kind::kRankSort: {
      const GroupSpec grp{first_proc, node.q, first_ch};
      std::vector<std::size_t> sizes(node.q, node.chunk);
      co_await ranksort_group(self, grp, sizes, mine);
      co_return;
    }
    case RNode::Kind::kSplit:
      break;
  }

  const RNode& child = *node.child;
  const std::size_t my_col = my_idx / child.q;
  const auto child_first =
      static_cast<ProcId>(first_proc + my_col * child.q);
  const auto child_ch =
      static_cast<ChannelId>(first_ch + my_col * child.kc);

  co_await rsort_exec(self, child, child_first, child_ch, mine);   // phase 1
  co_await exec_transform(self, node, 0, my_idx, first_ch, mine);  // phase 2
  co_await rsort_exec(self, child, child_first, child_ch, mine);   // phase 3
  co_await exec_transform(self, node, 1, my_idx, first_ch, mine);  // phase 4
  co_await rsort_exec(self, child, child_first, child_ch, mine);   // phase 5
  co_await exec_transform(self, node, 2, my_idx, first_ch, mine);  // phase 6
  if (my_col != 0) {                                               // phase 7
    co_await rsort_exec(self, child, child_first, child_ch, mine);
  } else if (child.cost > 0) {
    co_await self.skip(child.cost);
  }
  co_await exec_transform(self, node, 3, my_idx, first_ch, mine);  // phase 8
}

ProcMain recursive_program(Proc& self, const RNode& root,
                           const std::vector<Word>& input,
                           std::vector<Word>& output) {
  if (self.id() == 0) self.mark_phase("recursive-columnsort");
  output = input;
  co_await rsort_exec(self, root, 0, 0, output);
}

}  // namespace

RecursiveSortResult recursive_columnsort(
    const SimConfig& cfg, const std::vector<std::vector<Word>>& inputs,
    RecursiveSortOptions opts, TraceSink* sink) {
  cfg.validate();
  MCB_REQUIRE(inputs.size() == cfg.p, "inputs for " << inputs.size()
                                                    << " processors, p="
                                                    << cfg.p);
  const std::size_t ni = inputs.front().size();
  MCB_REQUIRE(ni > 0, "every processor needs at least one element");
  for (const auto& in : inputs) {
    MCB_REQUIRE(in.size() == ni, "distribution is not even");
  }

  RecursiveSortResult result;
  std::size_t top_split = 0;
  auto root = build_rnode(cfg.p * ni, cfg.p, cfg.k, opts.max_split,
                          &result.depth, &top_split);
  result.top_columns = top_split == 0 ? 1 : top_split;
  result.run = run_network(
      cfg, inputs,
      [&root](Proc& self, const std::vector<Word>& in,
              std::vector<Word>& out) {
        return recursive_program(self, *root, in, out);
      },
      sink);
  return result;
}

}  // namespace mcb::algo
