// Recursive Columnsort — Section 6.2.
//
// When n < k^2(k-1) the flat algorithm cannot use all k channels (the
// Columnsort dimension rule caps the column count), so cycles degrade
// toward O(n^{2/3}). The fix: split into k' < k virtual columns whose
// length satisfies the rule at *this* level, recurse on the column-sorting
// phases (each child gets 1/k' of the processors and channels), and run the
// transformation phases over ALL k channels by breaking every column into
// k/k' segments, one channel per segment — "all segments are broadcast
// simultaneously, each segment using a separate channel".
//
// Scheduling the segmented transformations is the interesting part: per
// cycle each channel carries one message and each processor receives at
// most one, which is exactly a bipartite edge coloring between segment
// channels and receiving processors. Segments align with processor
// boundaries, so a channel clash subsumes a writer clash, and the
// Euler-split colorer (sched::euler_color) yields < 2 * (n_c/kc) rounds per
// transformation at a node with n_c elements and kc channels. That ratio is
// invariant down the tree (children have n_c/k' elements and kc/k'
// channels), so with depth s the total cost is O(s * n/k) cycles and
// O(s * n) messages — Corollary 5.
//
// Base cases: one processor (local sort, free) or one channel (Rank-Sort).
// A node whose dimensions admit k' = kc needs no segmentation and matches
// the memory-efficient algorithm of Section 6.1.
//
// Preconditions: even distribution, k | p, and enough divisibility for the
// splits (powers of two for p, k and n/p always work). The planner is
// greedy — largest feasible k' per level — unless capped for ablation.
#pragma once

#include <cstddef>
#include <vector>

#include "algo/runner.hpp"
#include "mcb/sim_config.hpp"
#include "mcb/types.hpp"

namespace mcb::algo {

struct RecursiveSortOptions {
  /// Caps the per-level split factor k' (0 = greedy largest). Smaller caps
  /// force deeper recursion — the ablation knob for the "choice of s"
  /// trade-off in Corollary 5.
  std::size_t max_split = 0;
};

struct RecursiveSortResult {
  AlgoResult run;
  std::size_t depth = 0;        ///< levels of splitting in the plan tree
  std::size_t top_columns = 0;  ///< k' at the root
};

/// Sorts an evenly distributed input recursively. Same output contract as
/// columnsort_even.
RecursiveSortResult recursive_columnsort(
    const SimConfig& cfg, const std::vector<std::vector<Word>>& inputs,
    RecursiveSortOptions opts = {}, TraceSink* sink = nullptr);

}  // namespace mcb::algo
