// Small reusable collectives built on Partial-Sums and single broadcasts.
//
// Extrema finding is one of the problems Section 1 cites from the
// single-channel IPBAM literature ("extrema finding, merging and sorting";
// "in our model, these problems are solved without the need for concurrent
// write access") — these helpers are the multi-channel versions:
//
//   reduce        any commutative/associative ⊕ over one value per
//                 processor, result known to everyone:
//                 O(p/k + log k) cycles, O(p) messages
//   find_max/min  extrema of the full distributed multiset (reduce over
//                 local extrema)
//   count_ge      population count of elements >= a pivot (the counting
//                 step the selection algorithm repeats)
//   broadcast_value
//                 one processor's value to everyone: 1 cycle, 1 message
//
// All are collectives: every processor must co_await them together.
#pragma once

#include <span>

#include "algo/partial_sums.hpp"
#include "algo/runner.hpp"
#include "mcb/coro.hpp"
#include "mcb/proc.hpp"

namespace mcb::algo {

/// ⊕-reduction of one value per processor; every processor learns the
/// total. O(p/k + log k) cycles, O(p) messages.
Task<Word> reduce(Proc& self, Word value, const SumOp& op);

/// Broadcast `value` from processor `root` to everyone; returns the value
/// at every processor. 1 cycle, 1 message (on channel 0).
Task<Word> broadcast_value(Proc& self, ProcId root, Word value);

/// Extrema of the distributed multiset (each processor passes its local
/// list). Empty local lists are allowed as long as one element exists
/// somewhere.
Task<Word> find_max(Proc& self, std::span<const Word> local);
Task<Word> find_min(Proc& self, std::span<const Word> local);

/// Number of elements >= pivot across the network.
Task<Word> count_ge(Proc& self, std::span<const Word> local, Word pivot);

// --- standalone drivers (build a network, run one collective) -------------

struct CollectiveResult {
  Word value = 0;
  RunStats stats;
};

CollectiveResult run_find_max(const SimConfig& cfg,
                              const std::vector<std::vector<Word>>& inputs);
CollectiveResult run_find_min(const SimConfig& cfg,
                              const std::vector<std::vector<Word>>& inputs);
CollectiveResult run_count_ge(const SimConfig& cfg,
                              const std::vector<std::vector<Word>>& inputs,
                              Word pivot);

}  // namespace mcb::algo
