#include "algo/collectives.hpp"

#include <algorithm>

#include "obs/span.hpp"
#include "util/check.hpp"

namespace mcb::algo {

Task<Word> reduce(Proc& self, Word value, const SumOp& op) {
  obs::Span sp(self, "reduce");
  const auto res =
      co_await partial_sums(self, value, op, {.with_total = true});
  co_return res.total;
}

Task<Word> broadcast_value(Proc& self, ProcId root, Word value) {
  MCB_REQUIRE(root < self.p(), "root " << root << " of " << self.p());
  obs::Span sp(self, "broadcast");
  if (self.id() == root) {
    co_await self.write(0, Message::of(value));
    co_return value;
  }
  auto got = co_await self.read(0);
  MCB_CHECK(got.has_value(), "broadcast from P" << root + 1 << " missing");
  co_return got->at(0);
}

namespace {

Word local_fold(std::span<const Word> local, const SumOp& op) {
  Word acc = op.identity;
  for (Word w : local) acc = op.combine(acc, w);
  return acc;
}

}  // namespace

Task<Word> find_max(Proc& self, std::span<const Word> local) {
  co_return co_await reduce(self, local_fold(local, SumOp::max()),
                            SumOp::max());
}

Task<Word> find_min(Proc& self, std::span<const Word> local) {
  co_return co_await reduce(self, local_fold(local, SumOp::min()),
                            SumOp::min());
}

Task<Word> count_ge(Proc& self, std::span<const Word> local, Word pivot) {
  Word count = 0;
  for (Word w : local) {
    if (w >= pivot) ++count;
  }
  co_return co_await reduce(self, count, SumOp::add());
}

namespace {

enum class Kind { kMax, kMin, kCountGe };

CollectiveResult run_collective(const SimConfig& cfg,
                                const std::vector<std::vector<Word>>& inputs,
                                Kind kind, Word pivot) {
  cfg.validate();
  MCB_REQUIRE(inputs.size() == cfg.p, "inputs for " << inputs.size()
                                                    << " processors, p="
                                                    << cfg.p);
  std::size_t total = 0;
  for (const auto& in : inputs) total += in.size();
  MCB_REQUIRE(total > 0 || kind == Kind::kCountGe,
              "extrema of an empty multiset");

  std::vector<Word> answers(cfg.p, 0);
  Network net(cfg);
  auto prog = [](Proc& self, Kind kd, Word pv,
                 const std::vector<Word>& local, Word& out) -> ProcMain {
    switch (kd) {
      case Kind::kMax:
        out = co_await find_max(self, local);
        break;
      case Kind::kMin:
        out = co_await find_min(self, local);
        break;
      case Kind::kCountGe:
        out = co_await count_ge(self, local, pv);
        break;
    }
  };
  for (ProcId i = 0; i < cfg.p; ++i) {
    net.install(i, prog(net.proc(i), kind, pivot, inputs[i], answers[i]));
  }
  CollectiveResult result;
  result.stats = net.run();
  result.value = answers[0];
  for (std::size_t i = 1; i < cfg.p; ++i) {
    MCB_CHECK(answers[i] == answers[0], "P" << i + 1 << " disagrees");
  }
  return result;
}

}  // namespace

CollectiveResult run_find_max(const SimConfig& cfg,
                              const std::vector<std::vector<Word>>& inputs) {
  return run_collective(cfg, inputs, Kind::kMax, 0);
}

CollectiveResult run_find_min(const SimConfig& cfg,
                              const std::vector<std::vector<Word>>& inputs) {
  return run_collective(cfg, inputs, Kind::kMin, 0);
}

CollectiveResult run_count_ge(const SimConfig& cfg,
                              const std::vector<std::vector<Word>>& inputs,
                              Word pivot) {
  return run_collective(cfg, inputs, Kind::kCountGe, pivot);
}

}  // namespace mcb::algo
