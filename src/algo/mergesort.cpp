#include "algo/mergesort.hpp"

#include <algorithm>
#include <numeric>

#include "seq/sorting.hpp"
#include "util/check.hpp"

namespace mcb::algo {
namespace {

/// Globally unique element identity: (value, owner, serial), ordered
/// lexicographically — the paper's distinctness device.
struct Key {
  Word value = 0;
  Word owner = -1;  ///< -1 encodes the null pointer
  Word serial = 0;

  bool null() const { return owner < 0; }
  friend auto operator<=>(const Key&, const Key&) = default;
};

constexpr Key kNullKey{};

Message key_message(const Key& k) { return Message::of(k.value, k.owner, k.serial); }

Key key_from(const Message& m, std::size_t at = 0) {
  return Key{m.at(at), m.at(at + 1), m.at(at + 2)};
}

}  // namespace

Task<void> mergesort_group(Proc& self, const GroupSpec& grp,
                           std::span<const std::size_t> sizes,
                           std::vector<Word>& data) {
  MCB_REQUIRE(sizes.size() == grp.count, "sizes for " << sizes.size()
                                                      << " members, group of "
                                                      << grp.count);
  const std::size_t me = self.id() - grp.first;
  MCB_CHECK(self.id() >= grp.first && me < grp.count,
            "P" << self.id() + 1 << " outside group");
  MCB_REQUIRE(data.size() == sizes[me],
              "local list size " << data.size() << " != declared "
                                 << sizes[me]);
  const ChannelId ch = grp.channel;
  const std::size_t n_grp =
      std::accumulate(sizes.begin(), sizes.end(), std::size_t{0});
  std::size_t tgt_start = 0;  // my output ranks: [tgt_start, tgt_end)
  for (std::size_t g = 0; g < me; ++g) tgt_start += sizes[g];
  const std::size_t tgt_end = tgt_start + sizes[me];

  // Remaining (unplaced) elements as keys, sorted descending; front = top.
  Word next_serial = 0;
  std::vector<Key> remaining;
  remaining.reserve(data.size() + 1);
  for (Word v : data) {
    remaining.push_back(Key{v, static_cast<Word>(me), next_serial++});
  }
  seq::intro_sort(std::span<Key>(remaining), std::greater<Key>{});

  std::vector<Word> out;
  out.reserve(sizes[me]);

  // Linked-list state.
  bool listed = false;
  std::size_t rank = 0;   // 1-based when listed
  Key pointer = kNullKey;  // next smaller listed top

  // Auxiliary storage beyond the element capacity: constant bookkeeping
  // plus at most one element of slack (see C2 eviction rule).
  auto note = [&] {
    const std::size_t held = remaining.size() + out.size();
    const std::size_t slack = held > sizes[me] ? held - sizes[me] : 0;
    self.note_aux(8 + slack);
  };
  note();

  // --- initial construction: members insert their tops one by one ---------
  // Each insertion is 3 cycles: (a) broadcast the candidate top, (b) P_b
  // replies with the insertion point, (c) on silence in (b), the demoted
  // previous head hands over its top as the new head's pointer.
  for (std::size_t g = 0; g < grp.count; ++g) {
    const bool inserting = g == me;
    Key cand;
    // (a)
    if (inserting) {
      cand = remaining.front();
      co_await self.write(ch, key_message(cand));
    } else {
      auto got = co_await self.read(ch);
      MCB_CHECK(got.has_value(), "construction broadcast missing");
      cand = key_from(*got);
    }
    const bool am_pb = listed && remaining.front() > cand &&
                       (pointer.null() || pointer < cand);
    bool was_head = listed && rank == 1;
    if (listed && remaining.front() < cand) ++rank;
    // (b)
    if (am_pb) {
      co_await self.write(ch, Message::of(static_cast<Word>(rank + 1),
                                           pointer.value, pointer.owner,
                                           pointer.serial));
      pointer = cand;
    } else {
      auto got = co_await self.read(ch);
      if (inserting) {
        if (got) {
          rank = static_cast<std::size_t>(got->at(0));
          pointer = key_from(*got, 1);
        } else {
          rank = 1;  // new global maximum; pointer set in (c)
        }
        listed = true;
      }
    }
    // (c)
    if (was_head && rank == 2) {
      // I was the head and got demoted: the inserter is the new head and
      // needs my top as its pointer.
      co_await self.write(ch, key_message(remaining.front()));
    } else {
      auto got = co_await self.read(ch);
      if (inserting && rank == 1 && got) {
        pointer = key_from(*got);
      }
    }
  }

  // --- main rounds: place one element per round ----------------------------
  for (std::size_t slot = 0; slot < n_grp; ++slot) {
    const bool am_head = listed && rank == 1;
    const bool am_target = slot >= tgt_start && slot < tgt_end;

    // C1: head -> target.
    Word placed = 0;
    if (am_head) {
      placed = remaining.front().value;
      co_await self.write(ch, Message::of(placed));
      remaining.erase(remaining.begin());
      listed = false;
      rank = 0;
    } else {
      auto got = co_await self.read(ch);
      MCB_CHECK(got.has_value(), "round " << slot << ": no head broadcast");
      placed = got->at(0);
      if (listed) --rank;
    }
    if (am_target) {
      out.push_back(placed);
      note();
    }

    // C2: target -> head (replacement), silence otherwise. The target only
    // evicts when it keeps at least two unplaced elements, so its listed
    // top is never evicted and the linked list stays intact.
    if (am_target && !am_head && remaining.size() >= 2) {
      const Key evicted = remaining.back();
      remaining.pop_back();
      co_await self.write(ch, Message::of(evicted.value));
      note();
    } else {
      auto got = co_await self.read(ch);
      if (am_head && got) {
        // Re-tag and merge into my remaining list.
        const Key k{got->at(0), static_cast<Word>(me), next_serial++};
        remaining.insert(
            std::upper_bound(remaining.begin(), remaining.end(), k,
                             std::greater<Key>{}),
            k);
        note();
      }
    }

    // C3: head re-inserts its new top (silence when it ran dry).
    Key cand = kNullKey;
    bool inserting = false;
    if (am_head) {
      if (!remaining.empty()) {
        cand = remaining.front();
        inserting = true;
        co_await self.write(ch, key_message(cand));
      } else {
        co_await self.step();
      }
    } else {
      auto got = co_await self.read(ch);
      if (got) cand = key_from(*got);
    }
    const bool have_cand = !cand.null();

    // C4: P_b replies with the insertion point.
    const bool am_pb = have_cand && listed && remaining.front() > cand &&
                       (pointer.null() || pointer < cand);
    if (have_cand && listed && remaining.front() < cand) ++rank;
    if (am_pb) {
      co_await self.write(ch, Message::of(static_cast<Word>(rank + 1),
                                           pointer.value, pointer.owner,
                                           pointer.serial));
      pointer = cand;
    } else {
      auto got = co_await self.read(ch);
      if (am_head && inserting) {
        if (got) {
          rank = static_cast<std::size_t>(got->at(0));
          pointer = key_from(*got, 1);
        } else {
          // New global maximum: rank 1; my old pointer already names the
          // current second-largest top (only heads are ever removed).
          rank = 1;
        }
        listed = true;
      }
    }
  }

  MCB_CHECK(out.size() == sizes[me],
            "P" << me << " placed " << out.size() << " of " << sizes[me]);
  MCB_CHECK(remaining.empty(),
            "P" << me << " still holds " << remaining.size() << " elements");
  data = std::move(out);
}

namespace {

ProcMain mergesort_program(Proc& self, const GroupSpec& grp,
                           const std::vector<std::size_t>& sizes,
                           const std::vector<Word>& in,
                           std::vector<Word>& out) {
  out = in;
  co_await mergesort_group(self, grp, sizes, out);
}

}  // namespace

AlgoResult mergesort(const SimConfig& cfg,
                     const std::vector<std::vector<Word>>& inputs,
                     TraceSink* sink) {
  cfg.validate();
  MCB_REQUIRE(inputs.size() == cfg.p, "inputs for " << inputs.size()
                                                    << " processors, p="
                                                    << cfg.p);
  std::vector<std::size_t> sizes(cfg.p);
  for (std::size_t i = 0; i < cfg.p; ++i) {
    MCB_REQUIRE(!inputs[i].empty(), "P" << i + 1 << " holds no elements");
    sizes[i] = inputs[i].size();
  }
  const GroupSpec grp{0, cfg.p, 0};
  return run_network(
      cfg, inputs,
      [&grp, &sizes](Proc& self, const std::vector<Word>& in,
                     std::vector<Word>& out) {
        return mergesort_program(self, grp, sizes, in, out);
      },
      sink);
}

}  // namespace mcb::algo
