// Front-door sorting API: picks the right algorithm for the input shape.
//
//   even distribution, feasible column split  -> columnsort_even (5.2) or
//                                                virtual_columnsort (6.1)
//   uneven distribution                       -> uneven_sort (7.2)
//   k == 1                                    -> ranksort (6.1)
//
// Explicit algorithm choice is available for benchmarking and ablation.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "algo/runner.hpp"
#include "mcb/sim_config.hpp"

namespace mcb::algo {

enum class SortAlgorithm {
  kAuto,
  kColumnsortEven,     ///< Section 5.2 (gather-based)
  kVirtualColumnsort,  ///< Section 6.1 (memory-efficient)
  kRecursive,          ///< Section 6.2
  kUnevenColumnsort,   ///< Section 7.2
  kRankSort,           ///< Section 6.1 (single channel)
  kMergeSort,          ///< Section 6.1 (single channel, O(1) aux)
  kCentral,            ///< baseline
};

const char* to_string(SortAlgorithm a);

/// Parses a CLI algorithm name (auto|columnsort|virtual|recursive|uneven|
/// ranksort|mergesort|central). Throws std::invalid_argument on unknown
/// names. Shared by mcbsim and the sweep harness.
SortAlgorithm sort_algorithm_from_string(const std::string& name);

struct SortRequest {
  SortAlgorithm algorithm = SortAlgorithm::kAuto;
};

struct SortOutcome {
  AlgoResult run;
  SortAlgorithm used = SortAlgorithm::kAuto;
};

/// Sorts `inputs` descending across the network: outputs[i] is the i-th
/// segment of the descending order, |outputs[i]| == |inputs[i]|. Throws
/// std::invalid_argument on shape violations (empty processors, reserved
/// dummy value, or an explicitly requested algorithm whose preconditions
/// the input does not meet).
SortOutcome sort(const SimConfig& cfg,
                 const std::vector<std::vector<Word>>& inputs,
                 SortRequest req = {}, TraceSink* sink = nullptr);

}  // namespace mcb::algo
