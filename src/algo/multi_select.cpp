#include "algo/multi_select.hpp"

#include <algorithm>
#include <utility>

#include "algo/columnsort_even.hpp"
#include "algo/common.hpp"
#include "algo/partial_sums.hpp"
#include "mcb/network.hpp"
#include "obs/span.hpp"
#include "seq/selection.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace mcb::algo {
namespace {

/// A rank the batch still owes an answer for, relative to the candidate set
/// of the segment that carries it. `d` shifts as elements above the segment
/// are purged; `idx` pins the slot in the answer array. Identical at every
/// processor — rank bookkeeping is pure arithmetic on globally known counts.
struct RankRef {
  std::size_t d;    ///< rank within the carrying segment (d-th largest)
  std::size_t idx;  ///< index into the unique-rank answer array
};

struct MultiSelCtx {
  std::size_t threshold = 0;
  std::vector<std::size_t> uds;  ///< requested ranks, unique and ascending
  bool use_quickselect = false;
  EvenSortPlan pair_sort;  ///< one (median, count) pair per processor
};

/// Local median of the candidate list, by the paper's convention
/// N[ceil(m/2)]; reorders `cands` (harmless — candidate sets are unordered).
Word local_median(std::vector<Word>& cands, bool quick,
                  util::Xoshiro256StarStar& rng) {
  const std::size_t rank = (cands.size() + 1) / 2;
  if (quick) {
    return seq::kth_largest_quickselect(cands, rank, rng);
  }
  return seq::kth_largest(cands, rank);
}

ProcMain multi_selection_program(Proc& self, const MultiSelCtx& ctx,
                                 const std::vector<Word>& input,
                                 std::vector<Word>& answers,
                                 std::size_t& phases_out) {
  const std::size_t i = self.id();
  util::Xoshiro256StarStar rng(0x5e1ec7 + i);
  std::size_t phases = 0;

  // A segment is a value window of the input plus the ranks that fall in
  // it. `cands` is this processor's local slice; `ranks` and `m_known` are
  // identical at every processor, so the queue discipline below — continue
  // the upper half in place, stack the lower half — is in global lockstep.
  struct Seg {
    std::vector<Word> cands;
    std::vector<RankRef> ranks;  ///< ascending by d (splits preserve this)
    std::size_t m_known = 0;     ///< network-wide candidate count
  };

  // Census: every processor must know the initial candidate count. The span
  // scope must close in the same resumption in which the next mark_phase
  // fires, so span and phase agree on their boundary stamps exactly.
  if (i == 0) self.mark_phase("setup");
  std::size_t n_total = 0;
  {
    obs::Span sp(self, "setup");
    const auto init = co_await partial_sums(
        self, static_cast<Word>(input.size()), SumOp::add(),
        {.with_total = true});
    n_total = static_cast<std::size_t>(init.total);
  }

  std::vector<Seg> stack(1);
  stack[0].cands = input;
  stack[0].ranks.reserve(ctx.uds.size());
  for (std::size_t idx = 0; idx < ctx.uds.size(); ++idx) {
    stack[0].ranks.push_back(RankRef{ctx.uds[idx], idx});
  }
  stack[0].m_known = n_total;

  while (!stack.empty()) {
    Seg seg = std::move(stack.back());
    stack.pop_back();

    // --- filtering phases (Section 8, batched) ---------------------------
    while (!seg.ranks.empty() && seg.m_known > ctx.threshold) {
      if (i == 0) self.mark_phase("filter");
      obs::Span sp(self, "filter");
      ++phases;

      // 1. local medians; empty processors contribute the dummy pair,
      //    which sorts to the very end and carries count 0.
      std::vector<KV> pair(1);
      pair[0] = seg.cands.empty()
                    ? KV{kDummy, 0}
                    : KV{local_median(seg.cands, ctx.use_quickselect, rng),
                         static_cast<Word>(seg.cands.size())};

      // 2. sort the pairs descending by median.
      co_await columnsort_even_collective(self, ctx.pair_sort, pair);

      // 3. prefix counts over the sorted order; locate the weighted median.
      const auto ps = co_await partial_sums(self, pair[0].val, SumOp::add(),
                                            {.with_total = true});
      const auto m = static_cast<std::size_t>(ps.total);
      MCB_CHECK(m == seg.m_known, "candidate count drifted: " << m << " vs "
                                                              << seg.m_known);
      const std::size_t half = (m + 1) / 2;  // ceil(m/2)
      const bool am_star = static_cast<std::size_t>(ps.before) < half &&
                           half <= static_cast<std::size_t>(ps.self);
      Word med_star = 0;
      if (am_star) {
        med_star = pair[0].key;
        co_await self.write(0, Message::of(med_star));
      } else {
        auto got = co_await self.read(0);
        MCB_CHECK(got.has_value(), "no weighted-median broadcast");
        med_star = got->at(0);
      }

      // 4. count candidates >= med_star network-wide.
      Word ge_local = 0;
      for (Word w : seg.cands) {
        if (w >= med_star) ++ge_local;
      }
      const auto gs = co_await partial_sums(self, ge_local, SumOp::add(),
                                            {.with_total = true});
      const auto m_s = static_cast<std::size_t>(gs.total);

      // 5. route every rank: exactly m_s → answered here; below m_s → the
      //    window above med_star (m_s - 1 candidates); above m_s → the
      //    window below it (m - m_s candidates, ranks shifted by m_s).
      std::vector<RankRef> high, low;
      for (const RankRef& r : seg.ranks) {
        if (r.d == m_s) {
          answers[r.idx] = med_star;
        } else if (r.d < m_s) {
          high.push_back(r);
        } else {
          low.push_back(RankRef{r.d - m_s, r.idx});
        }
      }

      if (!high.empty() && !low.empty()) {
        // The batch straddles the weighted median: split. The lower window
        // waits on the stack; filtering continues in the upper one.
        Seg lower;
        lower.cands.reserve(seg.cands.size());
        for (Word w : seg.cands) {
          if (w < med_star) lower.cands.push_back(w);
        }
        lower.ranks = std::move(low);
        lower.m_known = m - m_s;
        stack.push_back(std::move(lower));
        std::erase_if(seg.cands, [med_star](Word w) { return w <= med_star; });
        seg.ranks = std::move(high);
        seg.m_known = m_s - 1;
      } else if (!high.empty()) {
        std::erase_if(seg.cands, [med_star](Word w) { return w <= med_star; });
        seg.ranks = std::move(high);
        seg.m_known = m_s - 1;
      } else if (!low.empty()) {
        std::erase_if(seg.cands, [med_star](Word w) { return w >= med_star; });
        seg.ranks = std::move(low);
        seg.m_known = m - m_s;
      } else {
        seg.ranks.clear();  // every rank hit med_star's position exactly
      }
    }
    if (seg.ranks.empty()) continue;

    // --- termination: one collection answers the whole cluster -----------
    // Prefix offsets give every processor a write window on channel 0; P_1
    // appends its own survivors locally during its window and reads
    // everyone else's, then selects *all* of the segment's ranks from the
    // one pool and broadcasts them in rank order — |ranks| cycles total,
    // where B separate runs would pay B full collections.
    if (i == 0) self.mark_phase("terminate");
    obs::Span sp_term(self, "terminate");
    const auto ps = co_await partial_sums(
        self, static_cast<Word>(seg.cands.size()), SumOp::add(),
        {.with_total = true});
    const auto m = static_cast<std::size_t>(ps.total);
    const auto lo = static_cast<std::size_t>(ps.before);
    const auto hi = static_cast<std::size_t>(ps.self);
    if (i == 0) {
      std::vector<Word> pool;
      pool.reserve(m);
      for (std::size_t t = 0; t < m; ++t) {
        if (t >= lo && t < hi) {
          const Word w = seg.cands[t - lo];
          co_await self.write(0, Message::of(w));
          pool.push_back(w);
        } else {
          auto got = co_await self.read(0);
          MCB_CHECK(got.has_value(), "termination slot " << t << " empty");
          pool.push_back(got->at(0));
        }
      }
      self.note_aux(pool.size());
      for (const RankRef& r : seg.ranks) {
        MCB_CHECK(r.d >= 1 && r.d <= m,
                  "rank " << r.d << " of " << m << " survivors");
        const Word a = seq::kth_largest(pool, r.d);
        answers[r.idx] = a;
        co_await self.write(0, Message::of(a));
      }
    } else {
      if (lo > 0) co_await self.skip(lo);
      for (Word w : seg.cands) {
        co_await self.write(0, Message::of(w));
      }
      if (m > hi) co_await self.skip(m - hi);
      for (const RankRef& r : seg.ranks) {
        auto got = co_await self.read(0);
        MCB_CHECK(got.has_value(), "no answer broadcast for rank " << r.d);
        answers[r.idx] = got->at(0);
      }
    }
  }
  phases_out = phases;
}

}  // namespace

MultiSelectionResult select_ranks_on(
    Network& net, const std::vector<std::vector<Word>>& inputs,
    const std::vector<std::size_t>& ds, SelectionOptions opts) {
  const SimConfig& cfg = net.config();
  MCB_REQUIRE(inputs.size() == cfg.p, "inputs for " << inputs.size()
                                                    << " processors, p="
                                                    << cfg.p);
  std::size_t n = 0;
  for (const auto& in : inputs) {
    MCB_REQUIRE(!in.empty(), "every processor needs at least one element");
    n += in.size();
    for (Word w : in) {
      MCB_REQUIRE(w != kDummy, "input contains the reserved dummy value");
    }
  }
  MCB_REQUIRE(!ds.empty(), "at least one rank to select");
  for (std::size_t d : ds) {
    MCB_REQUIRE(1 <= d && d <= n, "rank " << d << " of " << n);
  }

  MultiSelCtx ctx;
  ctx.uds = ds;
  std::sort(ctx.uds.begin(), ctx.uds.end());
  ctx.uds.erase(std::unique(ctx.uds.begin(), ctx.uds.end()), ctx.uds.end());
  ctx.threshold = opts.threshold != 0
                      ? opts.threshold
                      : std::max<std::size_t>(cfg.p / cfg.k, 1);
  ctx.use_quickselect = opts.use_quickselect;
  ctx.pair_sort = EvenSortPlan::build(cfg.p, cfg.k, 1);

  std::vector<std::vector<Word>> answers(cfg.p,
                                         std::vector<Word>(ctx.uds.size(), 0));
  std::vector<std::size_t> phases(cfg.p, 0);
  for (ProcId i = 0; i < cfg.p; ++i) {
    net.install(i, multi_selection_program(net.proc(i), ctx, inputs[i],
                                           answers[i], phases[i]));
  }
  MultiSelectionResult result;
  result.stats = net.run();
  result.filter_phases = phases[0];
  for (std::size_t i = 1; i < cfg.p; ++i) {
    MCB_CHECK(answers[i] == answers[0], "P" << i + 1 << " disagrees");
  }
  result.values.reserve(ds.size());
  for (std::size_t d : ds) {
    const auto it = std::lower_bound(ctx.uds.begin(), ctx.uds.end(), d);
    result.values.push_back(
        answers[0][static_cast<std::size_t>(it - ctx.uds.begin())]);
  }
  return result;
}

MultiSelectionResult select_ranks(const SimConfig& cfg,
                                  const std::vector<std::vector<Word>>& inputs,
                                  const std::vector<std::size_t>& ds,
                                  SelectionOptions opts, TraceSink* sink) {
  cfg.validate();
  Network net(cfg, sink);
  return select_ranks_on(net, inputs, ds, opts);
}

}  // namespace mcb::algo
