// Batched multi-rank selection: all of N[d_1], ..., N[d_B] in one run.
//
// The serving layer (src/serve/) coalesces compatible rank queries into a
// single network run; this is the collective that answers them. It
// generalizes the Section 8 filtering scheme the way Nowicki's "parallel
// multiple selection" treats simultaneous ranks: the candidate set is
// filtered as usual, but when the batch's ranks straddle the weighted
// median the candidate set *splits* into an upper and a lower segment, each
// carrying the ranks that fall inside it, and filtering continues per
// segment. Ranks that land exactly on the weighted median are answered on
// the spot.
//
// Determinism/lockstep: every branching decision — which ranks resolve,
// whether a segment splits, which segment is processed next — depends only
// on globally known quantities (the rank list and the network-wide counts
// m and m_s produced by Partial-Sums), so all p processors walk identical
// segment queues and stay in collective lockstep without any extra
// coordination traffic.
//
// The win over B independent select_rank runs: the setup census and every
// filtering phase above the first split are paid once instead of B times,
// and ranks that are still together when their segment reaches the
// termination threshold share one survivor collection, answering the whole
// cluster for one collection plus B broadcast cycles. Clustered rank
// batches (e.g. tail quantiles of one distribution) ride the shared prefix
// almost to the end — bench/bench_serve.cpp measures the resulting
// cycles-per-query gap.
#pragma once

#include <cstddef>
#include <vector>

#include "algo/selection.hpp"
#include "mcb/sim_config.hpp"
#include "mcb/stats.hpp"
#include "mcb/trace.hpp"
#include "mcb/types.hpp"

namespace mcb {
class Network;
}  // namespace mcb

namespace mcb::algo {

struct MultiSelectionResult {
  /// values[j] is the ds[j]-th largest element — parallel to the requested
  /// rank list, duplicates and arbitrary order included.
  std::vector<Word> values;
  /// Filtering rounds executed across all segments (a shared round counts
  /// once; the single-rank equivalent of the batch would pay one per rank).
  std::size_t filter_phases = 0;
  RunStats stats;
};

/// Selects every requested rank (1-based, each <= n, d-th largest) in one
/// network run. `ds` may repeat ranks and need not be sorted. Every
/// processor must hold at least one element; all values distinct.
MultiSelectionResult select_ranks(const SimConfig& cfg,
                                  const std::vector<std::vector<Word>>& inputs,
                                  const std::vector<std::size_t>& ds,
                                  SelectionOptions opts = {},
                                  TraceSink* sink = nullptr);

/// Same collective, but installed onto a caller-owned network — the serving
/// layer's entry point. `net` must be freshly constructed or reset(), with
/// net.config().p == inputs.size(); the run reuses whatever allocations and
/// warmed frame arenas the network carries. The caller resets again before
/// the next batch.
MultiSelectionResult select_ranks_on(Network& net,
                                     const std::vector<std::vector<Word>>& inputs,
                                     const std::vector<std::size_t>& ds,
                                     SelectionOptions opts = {});

}  // namespace mcb::algo
