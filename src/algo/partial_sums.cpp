#include "algo/partial_sums.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "obs/span.hpp"
#include "util/check.hpp"

namespace mcb::algo {

SumOp SumOp::add() {
  return {[](Word a, Word b) { return a + b; }, 0};
}

SumOp SumOp::max() {
  return {[](Word a, Word b) { return std::max(a, b); },
          std::numeric_limits<Word>::min()};
}

SumOp SumOp::min() {
  return {[](Word a, Word b) { return std::min(a, b); },
          std::numeric_limits<Word>::max()};
}

namespace {

std::size_t ceil_log2(std::size_t p) {
  std::size_t d = 0;
  while ((std::size_t{1} << d) < p) ++d;
  return d;
}

std::size_t ceil_div(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

}  // namespace

Task<PartialSumsResult> partial_sums(Proc& self, Word a_i, const SumOp& op,
                                     PartialSumsOptions opts) {
  const std::size_t p = self.p();
  const std::size_t k = self.k();
  const std::size_t i = self.id();
  const std::size_t depth = ceil_log2(p);
  const std::size_t p2 = std::size_t{1} << depth;

  obs::Span sp(self, "partial-sums");
  PartialSumsResult out;
  if (p == 1) {
    out.before = op.identity;
    out.self = a_i;
    out.next = a_i;
    out.total = a_i;
    co_return out;
  }

  // val[l] = combined value of the subtree of the level-l node this
  // processor simulates (it simulates node (l, i >> l) iff 2^l | i).
  std::vector<Word> val(depth + 1, op.identity);
  val[0] = a_i;
  self.note_aux(val.size());

  // Idle cycles owed to the schedule but not yet slept. Each tree level
  // burns exactly `cycles` cycles with at most one channel action at
  // in-level cycle `at` (`at == SIZE_MAX` = idle level); idle cycles
  // accumulate in `pending` so a processor that sits out several
  // consecutive levels sleeps through them in a single suspension. The
  // per-level step is written inline in both loops rather than as a helper
  // coroutine: a helper frame per processor per level dominated the
  // simulator's allocation profile (~90% of all coroutine frames), and most
  // of those calls never suspended at all.
  std::size_t pending = 0;

  // --- bottom-up phase ------------------------------------------------------
  for (std::size_t l = 0; l < depth; ++l) {
    const std::size_t pairs = p2 >> (l + 1);  // fathers at level l+1
    const std::size_t cycles = ceil_div(pairs, k);
    const std::size_t stride = std::size_t{1} << l;

    std::size_t at = SIZE_MAX;
    std::optional<WriteOp> write;
    std::optional<ChannelId> read;
    if (i % stride == 0) {
      const std::size_t node = i >> l;
      if (node % 2 == 1) {
        // Right son: send subtree value to the father's simulator.
        const std::size_t father = node / 2;
        at = father / k;
        write = WriteOp{static_cast<ChannelId>(father % k),
                        Message::of(val[l])};
      } else if (i % (stride * 2) == 0) {
        // Father simulator (== left son simulator): receive from right son.
        const std::size_t father = node / 2;
        at = father / k;
        read = static_cast<ChannelId>(father % k);
      }
    }
    Proc::ReadResult got;
    if (at == SIZE_MAX || at >= cycles) {
      pending += cycles;
    } else {
      if (pending + at > 0) co_await self.skip(pending + at);
      got = co_await self.cycle(std::move(write), read);
      pending = cycles - at - 1;
    }
    if (i % (stride * 2) == 0) {
      // Silence = dummy right subtree (p not a power of two) = identity.
      val[l + 1] = got ? op.combine(val[l], got->at(0)) : val[l];
    }
  }

  // --- top-down phase -------------------------------------------------------
  // F = combined value of everything left of the current node's subtree.
  Word f = op.identity;
  if (i == 0) out.total = val[depth];
  for (std::size_t l = depth; l >= 1; --l) {
    const std::size_t fathers = p2 >> l;
    const std::size_t cycles = ceil_div(fathers, k);
    const std::size_t stride = std::size_t{1} << (l - 1);

    std::size_t at = SIZE_MAX;
    std::optional<WriteOp> write;
    std::optional<ChannelId> read;
    bool receiving = false;
    if (i % stride == 0) {
      const std::size_t node = i >> (l - 1);  // this proc's node at level l-1
      if (node % 2 == 0 && i % (stride * 2) == 0) {
        // Father: send F ⊕ L to the right son, unless the right subtree is
        // entirely dummy (its simulator would not exist).
        const std::size_t father = node / 2;
        if (i + stride < p) {
          at = father / k;
          write = WriteOp{static_cast<ChannelId>(father % k),
                          Message::of(op.combine(f, val[l - 1]))};
        }
        // f unchanged for the left son (== this processor).
      } else if (node % 2 == 1) {
        const std::size_t father = node / 2;
        at = father / k;
        read = static_cast<ChannelId>(father % k);
        receiving = true;
      }
    }
    Proc::ReadResult got;
    if (at == SIZE_MAX || at >= cycles) {
      pending += cycles;
    } else {
      if (pending + at > 0) co_await self.skip(pending + at);
      got = co_await self.cycle(std::move(write), read);
      pending = cycles - at - 1;
    }
    if (receiving) {
      MCB_CHECK(got.has_value(), "top-down message missing at P" << i + 1);
      f = got->at(0);
    }
  }

  out.before = f;
  out.self = op.combine(f, a_i);

  // --- optional total broadcast --------------------------------------------
  if (opts.with_total) {
    if (pending > 0) {
      co_await self.skip(pending);
      pending = 0;
    }
    if (i == 0) {
      co_await self.write(0, Message::of(out.total));
    } else {
      auto got = co_await self.read(0);
      MCB_CHECK(got.has_value(), "total broadcast missing at P" << i + 1);
      out.total = got->at(0);
    }
  }

  // --- optional neighbour exchange -------------------------------------
  // P_{i+1} tells P_i its inclusive prefix; O(p/k) cycles, p-1 messages.
  // Each processor acts in at most two cycles of the exchange and sleeps
  // through the rest.
  if (opts.with_next) {
    if (pending > 0) {
      co_await self.skip(pending);
      pending = 0;
    }
    out.next = out.self;  // correct for the last processor
    const std::size_t cycles = ceil_div(p - 1, k);
    const std::size_t send_at = i >= 1 ? (i - 1) / k : SIZE_MAX;
    const std::size_t read_at = i + 1 < p ? i / k : SIZE_MAX;
    for (std::size_t t = 0; t < cycles;) {
      std::optional<WriteOp> write;
      std::optional<ChannelId> read;
      if (t == send_at) {
        write = WriteOp{static_cast<ChannelId>((i - 1) % k),
                        Message::of(out.self)};
      }
      if (t == read_at) {
        read = static_cast<ChannelId>(i % k);
      }
      if (!write && !read) {
        std::size_t next = cycles;
        if (send_at != SIZE_MAX && send_at > t) next = std::min(next, send_at);
        if (read_at != SIZE_MAX && read_at > t) next = std::min(next, read_at);
        co_await self.skip(next - t);
        t = next;
        continue;
      }
      auto got = co_await self.cycle(std::move(write), read);
      if (t == read_at) {
        MCB_CHECK(got.has_value(), "neighbour prefix missing at P" << i + 1);
        out.next = got->at(0);
      }
      ++t;
    }
  }

  if (pending > 0) co_await self.skip(pending);
  co_return out;
}

}  // namespace mcb::algo
