// Harness for running a distributed algorithm on a fresh network.
//
// All algorithms in algo/ share one calling convention: per-processor input
// lists in, per-processor output lists plus run statistics out. The runner
// owns the input/output storage for the lifetime of the run so processor
// coroutines can safely hold references to it.
#pragma once

#include <functional>
#include <vector>

#include "mcb/coro.hpp"
#include "mcb/network.hpp"
#include "mcb/sim_config.hpp"
#include "mcb/stats.hpp"
#include "mcb/types.hpp"

namespace mcb::algo {

/// Result of running a distributed algorithm.
struct AlgoResult {
  /// outputs[i] is processor i's local list after the algorithm.
  std::vector<std::vector<Word>> outputs;
  RunStats stats;
};

/// Creates one processor program. `input` is the processor's initial local
/// list (alive for the whole run); the program writes its result to
/// `output`.
using ProgramFactory = std::function<ProcMain(
    Proc& self, const std::vector<Word>& input, std::vector<Word>& output)>;

/// Spawns factory(i) on every processor of an MCB(cfg.p, cfg.k), runs to
/// quiescence and returns outputs + stats. `inputs.size()` must equal cfg.p.
AlgoResult run_network(const SimConfig& cfg,
                       std::vector<std::vector<Word>> inputs,
                       const ProgramFactory& factory,
                       TraceSink* sink = nullptr);

}  // namespace mcb::algo
