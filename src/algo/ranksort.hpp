// The single-channel Rank-Sort algorithm of Section 6.1.
//
// A group of processors sharing one broadcast channel sorts its distributed
// list in two linear passes:
//
//   pass 1  every element is broadcast once, processor after processor;
//           each processor maintains a rank counter per local element,
//           incremented whenever a larger element is heard. Afterwards each
//           processor knows the (descending, 1-based) global rank of each of
//           its elements.
//   pass 2  elements are broadcast in rank order — the owner of rank r
//           writes in slot r — and collected by their target processors.
//           Slots whose element already sits on its target stay silent.
//
// Complexity: 2*n cycles and at most 2*n messages for a group holding n
// elements; O(n_i) auxiliary storage per processor. Works for arbitrary
// (even or uneven) distributions, and for duplicate values (elements are
// broadcast as (value, owner, index) triples and ordered lexicographically,
// exactly the w.l.o.g. tie-breaking of Section 3).
//
// ranksort_group is a *collective over a group*: every member must co_await
// it in the same cycle, and all members must agree on the group layout.
// Several groups may run the collective concurrently on distinct channels —
// that is precisely how the memory-efficient Columnsort (Section 6.1) sorts
// its virtual columns.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "algo/runner.hpp"
#include "mcb/coro.hpp"
#include "mcb/proc.hpp"

namespace mcb::algo {

/// A contiguous run of processors sharing one channel.
struct GroupSpec {
  ProcId first = 0;        ///< lowest processor id in the group
  std::size_t count = 0;   ///< number of processors
  ChannelId channel = 0;   ///< the group's broadcast channel
};

/// Sorts the group's distributed list descending. `sizes[g]` is member g's
/// element count (known to all members); on return, `data` (the calling
/// member's local list, arbitrary order) holds that member's segment of the
/// descending order, with |data| preserved.
Task<void> ranksort_group(Proc& self, const GroupSpec& grp,
                          std::span<const std::size_t> sizes,
                          std::vector<Word>& data);

/// Standalone driver: sorts `inputs` over the whole network using channel 0
/// only (the paper presents Rank-Sort as a single-channel algorithm).
AlgoResult ranksort(const SimConfig& cfg,
                    const std::vector<std::vector<Word>>& inputs,
                    TraceSink* sink = nullptr);

}  // namespace mcb::algo
