// Shared core of the distributed Columnsort implementations: the
// transformation phases 1-9 run by the column representatives, and the
// double-broadcast redistribution of phase 10. Used by the even
// (Section 5.2) and uneven (Section 7.2) sorting algorithms and, through
// the even collective, by selection (Section 8).
//
// The core sorts (key, value) pairs — KV — descending by key; plain-Word
// entry points wrap values of zero around this. Messages carry at most
// (key, value, destination-row), within the model's O(log beta)-bit budget.
//
// Internal header — not part of the public API surface.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "algo/common.hpp"
#include "mcb/coro.hpp"
#include "seq/columnsort.hpp"
#include "mcb/proc.hpp"
#include "sched/schedule.hpp"

namespace mcb::algo::detail {

/// Static plan for one Columnsort instance over kk columns of length m.
/// Deterministically derivable from (m, kk); shared across all processors.
struct CorePlan {
  std::size_t kk = 0;  ///< number of columns (and of representatives)
  std::size_t m = 0;   ///< column length (padded: kk | m, m >= kk(kk-1))
  std::array<std::vector<std::uint32_t>, 4> tables;
  std::array<sched::TransferPlan, 4> plans;
  Cycle core_cycles = 0;  ///< total channel cycles of phases 2, 4, 6, 8

  /// Builds tables and broadcast schedules. Requires valid dimensions
  /// (seq::columnsort_dims_ok(m, kk, variant)).
  static CorePlan build(std::size_t m, std::size_t kk,
                        seq::ColumnsortVariant variant =
                            seq::ColumnsortVariant::kUndiagonalize);
};

/// Sorts a column descending by (key, val).
void sort_column_desc(std::vector<KV>& column);

/// One matrix transformation (phase 2/4/6/8) from the point of view of the
/// representative owning column `my_col`; `t` indexes CorePlan::plans.
Task<void> run_transform(Proc& self, const CorePlan& plan, std::size_t t,
                         std::size_t my_col, std::vector<KV>& column);

/// Phases 1-9 for a representative (column owner). `column` must already be
/// padded to length plan.m. Non-representatives call core_skip instead.
Task<void> columnsort_phases(Proc& self, const CorePlan& plan,
                             std::size_t my_col, std::vector<KV>& column);

/// The matching skip for processors that do not own a column.
Task<void> core_skip(Proc& self, const CorePlan& plan);

/// Phase 10: representatives broadcast the real (non-dummy) prefix of their
/// sorted columns twice; every processor collects its final segment of
/// global ranks [lo, hi). `n` is the number of real elements; `column` is
/// ignored for non-representatives. Costs exactly 2*m cycles.
Task<void> redistribute(Proc& self, const CorePlan& plan, bool is_rep,
                        std::size_t my_col, const std::vector<KV>& column,
                        std::size_t n, std::size_t lo, std::size_t hi,
                        std::vector<KV>& output);

}  // namespace mcb::algo::detail
