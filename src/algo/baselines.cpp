#include "algo/baselines.hpp"

#include "algo/common.hpp"
#include "algo/partial_sums.hpp"
#include "algo/uneven_sort.hpp"
#include "mcb/network.hpp"
#include "obs/span.hpp"
#include "seq/sorting.hpp"
#include "util/check.hpp"

namespace mcb::algo {
namespace {

ProcMain central_program(Proc& self, const std::vector<Word>& input,
                         std::vector<Word>& output) {
  const std::size_t i = self.id();

  // Prefix counts drive both the gather offsets and the final segment.
  const auto ps = co_await partial_sums(
      self, static_cast<Word>(input.size()), SumOp::add(),
      {.with_total = true});
  const auto n = static_cast<std::size_t>(ps.total);
  const auto lo = static_cast<std::size_t>(ps.before);
  const auto hi = static_cast<std::size_t>(ps.self);

  if (i == 0) self.mark_phase("gather");
  std::vector<Word> pool;
  {
    // The span scope closes in the same resumption in which the "scatter"
    // mark fires, so span and phase boundary stamps agree exactly.
    obs::Span sp(self, "gather");
    if (i == 0) {
      // P_1 streams its own window, reads everyone else's.
      pool.reserve(n);
      for (std::size_t t = 0; t < n; ++t) {
        if (t >= lo && t < hi) {
          co_await self.write(0, Message::of(input[t - lo]));
          pool.push_back(input[t - lo]);
        } else {
          auto got = co_await self.read(0);
          MCB_CHECK(got.has_value(), "gather slot " << t << " empty");
          pool.push_back(got->at(0));
        }
      }
      self.note_aux(pool.size());
      seq::sort_descending(pool);
    } else {
      if (lo > 0) co_await self.skip(lo);
      for (Word w : input) {
        co_await self.write(0, Message::of(w));
      }
      if (n > hi) co_await self.skip(n - hi);
    }
  }

  if (i == 0) self.mark_phase("scatter");
  obs::Span sp(self, "scatter");
  // P_1 broadcasts the sorted order rank by rank; everyone keeps its
  // segment (ranks [lo, hi) — counts are preserved by sorting) and sleeps
  // outside its window.
  output.reserve(hi - lo);
  if (i == 0) {
    for (std::size_t r = 0; r < n; ++r) {
      co_await self.write(0, Message::of(pool[r]));
      if (r >= lo && r < hi) output.push_back(pool[r]);
    }
  } else {
    if (lo > 0) co_await self.skip(lo);
    for (std::size_t r = lo; r < hi; ++r) {
      auto got = co_await self.read(0);
      MCB_CHECK(got.has_value(), "scatter slot " << r << " empty");
      output.push_back(got->at(0));
    }
    if (n > hi) co_await self.skip(n - hi);
  }
}

ProcMain central_multiread_program(Proc& self, std::size_t ni,
                                   const std::vector<Word>& input,
                                   std::vector<Word>& output) {
  const std::size_t i = self.id();
  const std::size_t p = self.p();
  const std::size_t k = self.k();
  const std::size_t n = p * ni;

  // --- gather: k parallel writer streams, P_1 multi-reads all channels ----
  if (i == 0) self.mark_phase("gather-multiread");
  const std::size_t streams = k;
  const std::size_t longest = ceil_div(p - 1, streams);
  const Cycle gather_cycles = static_cast<Cycle>(longest * ni);
  std::vector<Word> pool;
  {
    obs::Span sp(self, "gather-multiread");
    if (i == 0) {
      pool.reserve(n);
      pool.insert(pool.end(), input.begin(), input.end());
      for (Cycle t = 0; t < gather_cycles; ++t) {
        auto got = co_await self.cycle_all(std::nullopt);
        for (const auto& msg : got) {
          if (msg) pool.push_back(msg->at(0));
        }
      }
      MCB_CHECK(pool.size() == n, "collector holds " << pool.size() << " of "
                                                     << n);
      self.note_aux(pool.size());
      seq::sort_descending(pool);
    } else {
      const std::size_t stream = (i - 1) % streams;
      const std::size_t slot = (i - 1) / streams;
      if (slot > 0) co_await self.skip(static_cast<Cycle>(slot * ni));
      for (Word w : input) {
        co_await self.write(static_cast<ChannelId>(stream), Message::of(w));
      }
      const Cycle rest = gather_cycles - static_cast<Cycle>((slot + 1) * ni);
      if (rest > 0) co_await self.skip(rest);
    }
  }

  // --- scatter: rank by rank on channel 0 (the single-writer bottleneck) --
  if (i == 0) self.mark_phase("scatter");
  obs::Span sp(self, "scatter");
  const std::size_t lo = i * ni;
  const std::size_t hi = lo + ni;
  output.reserve(ni);
  if (i == 0) {
    for (std::size_t r = 0; r < n; ++r) {
      co_await self.write(0, Message::of(pool[r]));
      if (r >= lo && r < hi) output.push_back(pool[r]);
    }
  } else {
    if (lo > 0) co_await self.skip(lo);
    for (std::size_t r = lo; r < hi; ++r) {
      auto got = co_await self.read(0);
      MCB_CHECK(got.has_value(), "scatter slot " << r << " empty");
      output.push_back(got->at(0));
    }
    if (n > hi) co_await self.skip(n - hi);
  }
}

}  // namespace

AlgoResult central_sort_multiread(const SimConfig& cfg,
                                  const std::vector<std::vector<Word>>& inputs,
                                  TraceSink* sink) {
  cfg.validate();
  MCB_REQUIRE(cfg.multi_read,
              "central_sort_multiread needs SimConfig::multi_read");
  MCB_REQUIRE(inputs.size() == cfg.p, "inputs for " << inputs.size()
                                                    << " processors, p="
                                                    << cfg.p);
  const std::size_t ni = inputs.front().size();
  MCB_REQUIRE(ni > 0, "every processor needs at least one element");
  for (const auto& in : inputs) {
    MCB_REQUIRE(in.size() == ni, "distribution is not even");
  }
  return run_network(
      cfg, inputs,
      [ni](Proc& self, const std::vector<Word>& in, std::vector<Word>& out) {
        return central_multiread_program(self, ni, in, out);
      },
      sink);
}

AlgoResult central_sort(const SimConfig& cfg,
                        const std::vector<std::vector<Word>>& inputs,
                        TraceSink* sink) {
  cfg.validate();
  MCB_REQUIRE(inputs.size() == cfg.p, "inputs for " << inputs.size()
                                                    << " processors, p="
                                                    << cfg.p);
  for (const auto& in : inputs) {
    MCB_REQUIRE(!in.empty(), "every processor needs at least one element");
  }
  return run_network(
      cfg, inputs,
      [](Proc& self, const std::vector<Word>& in, std::vector<Word>& out) {
        return central_program(self, in, out);
      },
      sink);
}

SelectionResult selection_by_sorting(
    const SimConfig& cfg, const std::vector<std::vector<Word>>& inputs,
    std::size_t d, TraceSink* sink) {
  std::size_t n = 0;
  for (const auto& in : inputs) n += in.size();
  MCB_REQUIRE(1 <= d && d <= n, "rank " << d << " of " << n);

  auto sorted = uneven_sort(cfg, inputs, sink);
  // Locate rank d (1-based) in the output segments; "announcing" it costs
  // one more message and cycle, accounted on top of the sort's stats.
  std::size_t at = d - 1;
  SelectionResult result;
  for (const auto& out : sorted.run.outputs) {
    if (at < out.size()) {
      result.value = out[at];
      break;
    }
    at -= out.size();
  }
  result.stats = sorted.run.stats;
  result.stats.cycles += 1;
  result.stats.messages += 1;
  result.filter_phases = 0;
  return result;
}

}  // namespace mcb::algo
