// Distributed Columnsort for evenly distributed inputs (Section 5.2).
//
// The n elements (n/p per processor) are sorted so that afterwards P_i holds
// the i-th descending segment of n/p elements. Structure, following the
// paper:
//
//   phase 0      gather: the p processors form kk groups; each group's
//                elements are collected into its representative, one member
//                at a time on the group's channel (skipped when p == kk).
//   phases 1-9   Columnsort over kk columns owned by the representatives.
//                Local sorts are free in the cycle measure; each matrix
//                transformation runs a collision-free broadcast schedule
//                from sched/schedule (<= m cycles each).
//   phase 10     redistribute: representatives broadcast their sorted
//                columns twice (the double broadcast lets every processor
//                collect a segment that straddles two columns); skipped when
//                no padding was needed and p == kk.
//
// kk is the number of columns actually used: the largest divisor of p that
// is <= k and satisfies the Columnsort dimension requirement
// m >= kk(kk-1) — for n >= k^2(k-1) (and k | p) that is k itself; for
// smaller inputs fewer columns are used, exactly as the paper prescribes
// (Section 5.2 suggests ~n^{1/3} columns; the divisor search finds the best
// feasible count).
//
// Complexity: O(n) messages and O(n/kk) cycles — Theta(n/k) cycles whenever
// kk == k, which by Corollary 5 is optimal.
//
// Three entry points: a standalone Word sort, a standalone (key, value)
// pair sort, and an in-run *collective* used by the selection algorithm to
// sort its (median, count) pairs each filtering phase.
#pragma once

#include <cstddef>
#include <vector>

#include "algo/columnsort_core.hpp"
#include "algo/common.hpp"
#include "algo/runner.hpp"
#include "mcb/sim_config.hpp"
#include "mcb/types.hpp"

namespace mcb::algo {

struct ColumnsortEvenOptions {
  /// Number of columns to use; 0 = automatic (largest feasible). Must
  /// divide p and satisfy the dimension requirement if given.
  std::size_t columns = 0;
  /// Phase-4 transformation: the paper's un-diagonalize (default) or
  /// Leighton's untranspose (ablation; needs m >= 2(k-1)^2).
  seq::ColumnsortVariant variant = seq::ColumnsortVariant::kUndiagonalize;
};

/// Precomputed plan for the even sort collective: fully determined by
/// (p, k, ni) and sharable across repeated invocations (the selection
/// algorithm reuses one plan for every filtering phase).
struct EvenSortPlan {
  std::size_t p = 0;
  std::size_t kk = 0;  ///< columns used
  std::size_t g = 0;   ///< group size p / kk
  std::size_t n = 0;
  std::size_t ni = 0;  ///< elements per processor
  bool redistribute = false;
  detail::CorePlan core;

  /// Throws std::invalid_argument on infeasible parameters.
  static EvenSortPlan build(std::size_t p, std::size_t k, std::size_t ni,
                            std::size_t columns = 0,
                            seq::ColumnsortVariant variant =
                                seq::ColumnsortVariant::kUndiagonalize);
};

/// The collective: sorts `data` (exactly plan.ni pairs per processor, keys
/// != kDummy) descending across the network; on return `data` holds this
/// processor's segment. All processors must co_await together.
Task<void> columnsort_even_collective(Proc& self, const EvenSortPlan& plan,
                                      std::vector<KV>& data);

struct ColumnsortEvenResult {
  AlgoResult run;              ///< outputs[i] = P_i's sorted segment; stats
  std::size_t columns = 0;     ///< kk actually used
  std::size_t column_len = 0;  ///< m (after padding)
};

/// Standalone driver for plain values. Requires: all inputs the same
/// non-zero size, values != kDummy.
ColumnsortEvenResult columnsort_even(
    const SimConfig& cfg, const std::vector<std::vector<Word>>& inputs,
    ColumnsortEvenOptions opts = {}, TraceSink* sink = nullptr);

struct ColumnsortPairsResult {
  std::vector<std::vector<KV>> outputs;
  RunStats stats;
  std::size_t columns = 0;
  std::size_t column_len = 0;
};

/// Standalone driver for (key, value) pairs, ordered by key descending.
ColumnsortPairsResult columnsort_even_pairs(
    const SimConfig& cfg, const std::vector<std::vector<KV>>& inputs,
    ColumnsortEvenOptions opts = {}, TraceSink* sink = nullptr);

/// The column count columnsort_even would pick for (n, p, k).
std::size_t choose_columns(std::size_t n, std::size_t p, std::size_t k,
                           seq::ColumnsortVariant variant =
                               seq::ColumnsortVariant::kUndiagonalize);

}  // namespace mcb::algo
