// The Partial-Sums collective of Section 7.1.
//
// Given a value a_i at each processor P_i and a commutative, associative
// operator ⊕, computes at every processor the prefix a_1 ⊕ ... ⊕ a_i (and
// optionally the neighbouring prefix and the total). Implemented exactly as
// the paper describes: Vishkin's tree machine simulated level by level —
// bottom-up combine, top-down prefix distribution — with each tree node
// simulated by the processor that simulates its left son, so only
// father/right-son messages are sent. Levels near the leaves batch their
// messages k at a time over the channels; the top log k levels take one
// cycle each.
//
// Complexity: O(p/k + log k) cycles and O(p) messages, matching the paper.
//
// This is a *collective*: every processor of the network must co_await it
// in the same cycle, like an MPI collective. General p is supported (the
// conceptual tree is padded to a power of two; dummy nodes simply never
// write, and the detectable silence stands in for the identity value).
#pragma once

#include <functional>

#include "mcb/coro.hpp"
#include "mcb/proc.hpp"
#include "mcb/types.hpp"

namespace mcb::algo {

/// The ⊕ operator with its identity element. Must be commutative and
/// associative; both sides only ever see values produced by `a_i`s and ⊕.
struct SumOp {
  std::function<Word(Word, Word)> combine;
  Word identity = 0;

  static SumOp add();
  static SumOp max();
  static SumOp min();
};

struct PartialSumsOptions {
  bool with_total = false;  ///< broadcast the total to all processors
  bool with_next = false;   ///< also obtain the successor's inclusive prefix
};

struct PartialSumsResult {
  Word before = 0;  ///< a_1 ⊕ ... ⊕ a_{i-1}  (identity for P_1)
  Word self = 0;    ///< a_1 ⊕ ... ⊕ a_i
  Word next = 0;    ///< a_1 ⊕ ... ⊕ a_{i+1}  (== self for P_p; needs with_next)
  Word total = 0;   ///< a_1 ⊕ ... ⊕ a_p       (needs with_total)
};

/// The collective. `a_i` is this processor's input value.
Task<PartialSumsResult> partial_sums(Proc& self, Word a_i, const SumOp& op,
                                     PartialSumsOptions opts = {});

}  // namespace mcb::algo
