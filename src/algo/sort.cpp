#include "algo/sort.hpp"

#include "algo/baselines.hpp"
#include "algo/columnsort_even.hpp"
#include "algo/mergesort.hpp"
#include "algo/ranksort.hpp"
#include "algo/recursive_columnsort.hpp"
#include "algo/uneven_sort.hpp"
#include "algo/virtual_columnsort.hpp"
#include "util/check.hpp"

namespace mcb::algo {

const char* to_string(SortAlgorithm a) {
  switch (a) {
    case SortAlgorithm::kAuto: return "auto";
    case SortAlgorithm::kColumnsortEven: return "columnsort-even";
    case SortAlgorithm::kVirtualColumnsort: return "virtual-columnsort";
    case SortAlgorithm::kRecursive: return "recursive-columnsort";
    case SortAlgorithm::kUnevenColumnsort: return "uneven-columnsort";
    case SortAlgorithm::kRankSort: return "rank-sort";
    case SortAlgorithm::kMergeSort: return "merge-sort";
    case SortAlgorithm::kCentral: return "central-sort";
  }
  return "?";
}

SortAlgorithm sort_algorithm_from_string(const std::string& name) {
  if (name == "auto") return SortAlgorithm::kAuto;
  if (name == "columnsort") return SortAlgorithm::kColumnsortEven;
  if (name == "virtual") return SortAlgorithm::kVirtualColumnsort;
  if (name == "recursive") return SortAlgorithm::kRecursive;
  if (name == "uneven") return SortAlgorithm::kUnevenColumnsort;
  if (name == "ranksort") return SortAlgorithm::kRankSort;
  if (name == "mergesort") return SortAlgorithm::kMergeSort;
  if (name == "central") return SortAlgorithm::kCentral;
  throw std::invalid_argument(
      "unknown algorithm '" + name +
      "' (auto|columnsort|virtual|recursive|uneven|ranksort|mergesort|"
      "central)");
}

SortOutcome sort(const SimConfig& cfg,
                 const std::vector<std::vector<Word>>& inputs,
                 SortRequest req, TraceSink* sink) {
  cfg.validate();
  MCB_REQUIRE(inputs.size() == cfg.p, "inputs for " << inputs.size()
                                                    << " processors, p="
                                                    << cfg.p);
  bool even = true;
  for (const auto& in : inputs) {
    MCB_REQUIRE(!in.empty(), "every processor needs at least one element");
    even = even && in.size() == inputs.front().size();
  }

  SortAlgorithm algo = req.algorithm;
  if (algo == SortAlgorithm::kAuto) {
    if (cfg.k == 1) {
      algo = SortAlgorithm::kRankSort;
    } else if (even) {
      algo = SortAlgorithm::kColumnsortEven;
    } else {
      algo = SortAlgorithm::kUnevenColumnsort;
    }
  }

  SortOutcome out;
  out.used = algo;
  switch (algo) {
    case SortAlgorithm::kColumnsortEven:
      out.run = columnsort_even(cfg, inputs, {}, sink).run;
      break;
    case SortAlgorithm::kVirtualColumnsort:
      out.run = virtual_columnsort(cfg, inputs, {}, sink).run;
      break;
    case SortAlgorithm::kRecursive:
      out.run = recursive_columnsort(cfg, inputs, {}, sink).run;
      break;
    case SortAlgorithm::kUnevenColumnsort:
      out.run = uneven_sort(cfg, inputs, sink).run;
      break;
    case SortAlgorithm::kRankSort:
      out.run = ranksort(cfg, inputs, sink);
      break;
    case SortAlgorithm::kMergeSort:
      out.run = mergesort(cfg, inputs, sink);
      break;
    case SortAlgorithm::kCentral:
      out.run = central_sort(cfg, inputs, sink);
      break;
    case SortAlgorithm::kAuto:
      MCB_CHECK(false, "unresolved auto");
  }
  return out;
}

}  // namespace mcb::algo
