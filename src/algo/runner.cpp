#include "algo/runner.hpp"

#include "util/check.hpp"

namespace mcb::algo {

AlgoResult run_network(const SimConfig& cfg,
                       std::vector<std::vector<Word>> inputs,
                       const ProgramFactory& factory, TraceSink* sink) {
  cfg.validate();
  MCB_REQUIRE(inputs.size() == cfg.p,
              "inputs for " << inputs.size() << " processors but p=" << cfg.p);

  AlgoResult result;
  result.outputs.resize(cfg.p);

  Network net(cfg, sink);
  for (std::size_t i = 0; i < cfg.p; ++i) {
    const auto id = static_cast<ProcId>(i);
    net.install(id, factory(net.proc(id), inputs[i], result.outputs[i]));
  }
  result.stats = net.run();
  return result;
}

}  // namespace mcb::algo
