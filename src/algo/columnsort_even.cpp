#include "algo/columnsort_even.hpp"

#include "obs/span.hpp"
#include "seq/columnsort.hpp"
#include "util/check.hpp"

namespace mcb::algo {

std::size_t choose_columns(std::size_t n, std::size_t p, std::size_t k,
                           seq::ColumnsortVariant variant) {
  std::size_t best = 1;
  for (std::size_t kk = 1; kk <= k; ++kk) {
    if (p % kk != 0) continue;
    const std::size_t m = round_up(n / kk, kk);
    if (seq::columnsort_dims_ok(m, kk, variant)) best = kk;
  }
  return best;
}

EvenSortPlan EvenSortPlan::build(std::size_t p, std::size_t k, std::size_t ni,
                                 std::size_t columns,
                                 seq::ColumnsortVariant variant) {
  MCB_REQUIRE(p >= 1 && k >= 1 && k <= p, "p=" << p << " k=" << k);
  MCB_REQUIRE(ni > 0, "every processor needs at least one element");
  EvenSortPlan plan;
  plan.p = p;
  plan.n = p * ni;
  plan.ni = ni;
  plan.kk = columns != 0 ? columns : choose_columns(plan.n, p, k, variant);
  MCB_REQUIRE(plan.kk >= 1 && plan.kk <= k && p % plan.kk == 0,
              "column count " << plan.kk << " infeasible for p=" << p
                              << " k=" << k);
  plan.g = p / plan.kk;
  const std::size_t m = round_up(plan.n / plan.kk, plan.kk);
  plan.redistribute = !(plan.g == 1 && m == plan.ni);
  plan.core = detail::CorePlan::build(m, plan.kk, variant);
  return plan;
}

Task<void> columnsort_even_collective(Proc& self, const EvenSortPlan& plan,
                                      std::vector<KV>& data) {
  MCB_REQUIRE(data.size() == plan.ni, "local list size " << data.size()
                                                         << " != plan ni="
                                                         << plan.ni);
  const std::size_t i = self.id();
  const std::size_t j = i / plan.g;        // group / column index
  const std::size_t idx = i % plan.g;      // index within the group
  const bool is_rep = idx == plan.g - 1;   // highest-numbered member
  const auto jch = static_cast<ChannelId>(j);
  const std::size_t m = plan.core.m;

  std::vector<KV> column;

  // Span names carry the "even." prefix so they never collide with the
  // PhaseStats names of whatever program hosts this collective (the
  // recorder's reconcile pass matches phases and spans by name).
  // --- phase 0: gather the group's elements at the representative ---------
  if (plan.g > 1) {
    obs::Span sp(self, "even.gather");
    const Cycle gather_cycles = static_cast<Cycle>((plan.g - 1) * plan.ni);
    if (!is_rep) {
      if (idx > 0) co_await self.skip(static_cast<Cycle>(idx * plan.ni));
      for (const KV& e : data) {
        co_await self.write(jch, Message::of(e.key, e.val));
      }
      const Cycle rest =
          gather_cycles - static_cast<Cycle>((idx + 1) * plan.ni);
      if (rest > 0) co_await self.skip(rest);
    } else {
      column.reserve(m);
      for (Cycle t = 0; t < gather_cycles; ++t) {
        auto got = co_await self.read(jch);
        MCB_CHECK(got.has_value(), "gather slot empty at P" << i + 1);
        column.push_back(KV{got->at(0), got->at(1)});
      }
      column.insert(column.end(), data.begin(), data.end());
    }
  } else {
    column = data;
  }

  // --- phases 1-9: Columnsort over the representatives' columns -----------
  {
    obs::Span sp(self, "even.core");
    if (is_rep) {
      column.resize(m, KV{kDummy, 0});  // pad so kk | m
      co_await detail::columnsort_phases(self, plan.core, j, column);
    } else {
      co_await detail::core_skip(self, plan.core);
    }
  }

  // --- phase 10: redistribute sorted segments ------------------------------
  if (!plan.redistribute) {
    data = std::move(column);
    co_return;
  }
  obs::Span sp(self, "even.redistribute");
  const std::size_t lo = i * plan.ni;  // this processor's final ranks
  co_await detail::redistribute(self, plan.core, is_rep, j, column, plan.n,
                                lo, lo + plan.ni, data);
}

namespace {

ProcMain pairs_program(Proc& self, const EvenSortPlan& plan,
                       const std::vector<KV>& input,
                       std::vector<KV>& output) {
  output = input;
  if (self.id() == 0) self.mark_phase("even-columnsort");
  obs::Span sp(self, "even-columnsort");
  co_await columnsort_even_collective(self, plan, output);
}

ColumnsortPairsResult run_pairs(const SimConfig& cfg,
                                const std::vector<std::vector<KV>>& inputs,
                                ColumnsortEvenOptions opts, TraceSink* sink) {
  cfg.validate();
  MCB_REQUIRE(inputs.size() == cfg.p, "inputs for " << inputs.size()
                                                    << " processors, p="
                                                    << cfg.p);
  const std::size_t ni = inputs.front().size();
  for (const auto& in : inputs) {
    MCB_REQUIRE(in.size() == ni, "distribution is not even");
    for (const KV& e : in) {
      MCB_REQUIRE(e.key != kDummy, "input contains the reserved dummy key");
    }
  }
  const auto plan =
      EvenSortPlan::build(cfg.p, cfg.k, ni, opts.columns, opts.variant);

  ColumnsortPairsResult result;
  result.columns = plan.kk;
  result.column_len = plan.core.m;
  result.outputs.resize(cfg.p);

  Network net(cfg, sink);
  for (ProcId i = 0; i < cfg.p; ++i) {
    net.install(i, pairs_program(net.proc(i), plan, inputs[i],
                                 result.outputs[i]));
  }
  result.stats = net.run();
  return result;
}

}  // namespace

ColumnsortPairsResult columnsort_even_pairs(
    const SimConfig& cfg, const std::vector<std::vector<KV>>& inputs,
    ColumnsortEvenOptions opts, TraceSink* sink) {
  return run_pairs(cfg, inputs, opts, sink);
}

ColumnsortEvenResult columnsort_even(
    const SimConfig& cfg, const std::vector<std::vector<Word>>& inputs,
    ColumnsortEvenOptions opts, TraceSink* sink) {
  std::vector<std::vector<KV>> kv_inputs(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    kv_inputs[i].reserve(inputs[i].size());
    for (Word w : inputs[i]) kv_inputs[i].push_back(KV{w, 0});
  }
  auto pairs = run_pairs(cfg, kv_inputs, opts, sink);

  ColumnsortEvenResult result;
  result.columns = pairs.columns;
  result.column_len = pairs.column_len;
  result.run.stats = std::move(pairs.stats);
  result.run.outputs.resize(pairs.outputs.size());
  for (std::size_t i = 0; i < pairs.outputs.size(); ++i) {
    result.run.outputs[i].reserve(pairs.outputs[i].size());
    for (const KV& e : pairs.outputs[i]) {
      result.run.outputs[i].push_back(e.key);
    }
  }
  return result;
}

}  // namespace mcb::algo
