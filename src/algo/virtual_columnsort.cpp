#include "algo/virtual_columnsort.hpp"

#include <array>

#include "algo/columnsort_core.hpp"
#include "algo/common.hpp"
#include "algo/mergesort.hpp"
#include "algo/ranksort.hpp"
#include "seq/sorting.hpp"
#include "util/check.hpp"

namespace mcb::algo {
namespace {

/// One intra-column move: the element at row `src` goes to row `dst` of the
/// same column — local in the representative-based algorithm, a broadcast
/// between group members here.
struct IntraMove {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
};

struct VCtx {
  std::size_t kk = 0;
  std::size_t g = 0;   ///< members per group (= rows owners per column)
  std::size_t n = 0;
  std::size_t ni = 0;
  bool redistribute = false;
  LocalSort local_sort = LocalSort::kRankSort;
  detail::CorePlan plan;
  /// intra[t][c]: column c's intra moves for transform t, in src-row order.
  std::array<std::vector<std::vector<IntraMove>>, 4> intra;
  std::array<std::size_t, 4> intra_rounds{};  ///< max list length per t
  std::vector<std::size_t> sizes;  ///< group-member element counts (shared)
  Cycle sort_cost = 0;             ///< cycles of one virtual-column sort
};

/// Which group member owns row r (the last member also owns the padding).
std::size_t row_owner(const VCtx& ctx, std::size_t r) {
  return std::min(r / ctx.ni, ctx.g - 1);
}

Task<void> v_transform(Proc& self, const VCtx& ctx, std::size_t t,
                       std::size_t j, std::size_t idx,
                       std::vector<Word>& rows) {
  const auto& table = ctx.plan.tables[t];
  const std::size_t m = ctx.plan.m;
  const std::size_t base = idx * ctx.ni;
  const auto jch = static_cast<ChannelId>(j);

  std::vector<Word> next(rows.size());
  self.note_aux(2 * rows.size());

  // Intra-column moves that stay within this member are pure local copies
  // (including stationary elements).
  for (std::size_t r = base; r < base + rows.size(); ++r) {
    const std::size_t dst = table[j * m + r];
    if (dst / m == j && row_owner(ctx, dst % m) == idx) {
      next[dst % m - base] = rows[r - base];
    }
  }

  // Every member replays the column's send queues so the owner of the
  // scheduled row knows when to speak (deterministic local computation).
  std::vector<std::vector<std::uint32_t>> queue(ctx.kk);
  for (std::size_t r = 0; r < m; ++r) {
    const std::size_t dst = table[j * m + r];
    if (dst / m != j) {
      queue[dst / m].push_back(static_cast<std::uint32_t>(r));
    }
  }
  std::vector<std::size_t> ptr(ctx.kk, 0);

  // --- inter-column rounds --------------------------------------------------
  for (const auto& round : ctx.plan.plans[t].rounds) {
    std::optional<WriteOp> write;
    std::optional<ChannelId> read;
    const auto dc = round.dst[j];
    if (dc != sched::kIdle) {
      const std::size_t r = queue[dc][ptr[dc]++];
      if (row_owner(ctx, r) == idx) {
        const std::size_t dst = table[j * m + r];
        write = WriteOp{jch, Message::of(rows[r - base],
                                         static_cast<Word>(dst % m))};
      }
    }
    const auto sc = round.src[j];
    if (sc != sched::kIdle) read = static_cast<ChannelId>(sc);
    auto got = co_await self.cycle(std::move(write), read);
    if (got) {
      const auto dr = static_cast<std::size_t>(got->at(1));
      if (row_owner(ctx, dr) == idx) next[dr - base] = got->at(0);
    }
  }

  // --- intra-column rounds (fixed count across columns, for lockstep) -----
  const auto& moves = ctx.intra[t][j];
  for (std::size_t round = 0; round < moves.size(); ++round) {
    const auto [sr, dr] = moves[round];
    const bool own_src = row_owner(ctx, sr) == idx;
    const bool own_dst = row_owner(ctx, dr) == idx;
    if (own_src) {
      co_await self.write(jch, Message::of(rows[sr - base],
                                           static_cast<Word>(dr)));
    } else {
      auto got = co_await self.read(jch);
      if (own_dst) {
        MCB_CHECK(got.has_value(), "intra move " << sr << "->" << dr
                                                 << " silent");
        next[dr - base] = got->at(0);
      }
    }
  }
  // Columns with fewer moves sleep through the padding rounds that keep the
  // group lockstep.
  if (ctx.intra_rounds[t] > moves.size()) {
    co_await self.skip(ctx.intra_rounds[t] - moves.size());
  }
  rows.swap(next);
}

Task<void> v_sort(Proc& self, const VCtx& ctx, std::size_t j,
                  std::vector<Word>& rows) {
  if (ctx.g == 1) {
    seq::sort_descending(rows);  // whole column local: free
    co_return;
  }
  const GroupSpec grp{static_cast<ProcId>(j * ctx.g), ctx.g,
                      static_cast<ChannelId>(j)};
  if (ctx.local_sort == LocalSort::kRankSort) {
    co_await ranksort_group(self, grp, ctx.sizes, rows);
  } else {
    co_await mergesort_group(self, grp, ctx.sizes, rows);
  }
}

ProcMain virtual_program(Proc& self, const VCtx& ctx,
                         const std::vector<Word>& input,
                         std::vector<Word>& output) {
  const std::size_t i = self.id();
  const std::size_t j = i / ctx.g;
  const std::size_t idx = i % ctx.g;
  const std::size_t m = ctx.plan.m;
  const std::size_t base = idx * ctx.ni;

  // My slice of the virtual column; the last member also holds the padding.
  std::vector<Word> rows = input;
  if (idx == ctx.g - 1) {
    rows.resize(m - base, kDummy);
  }
  self.note_aux(rows.size());

  if (i == 0) self.mark_phase("virtual-columnsort");
  co_await v_sort(self, ctx, j, rows);                    // phase 1
  if (ctx.kk > 1) {
    co_await v_transform(self, ctx, 0, j, idx, rows);     // phase 2
    co_await v_sort(self, ctx, j, rows);                  // phase 3
    co_await v_transform(self, ctx, 1, j, idx, rows);     // phase 4
    co_await v_sort(self, ctx, j, rows);                  // phase 5
    co_await v_transform(self, ctx, 2, j, idx, rows);     // phase 6
    if (j != 0) {                                         // phase 7
      co_await v_sort(self, ctx, j, rows);
    } else if (ctx.sort_cost > 0) {
      co_await self.skip(ctx.sort_cost);  // column 1 idles in lockstep
    }
    co_await v_transform(self, ctx, 3, j, idx, rows);     // phase 8
  }

  // --- final ownership fix-up ----------------------------------------------
  if (!ctx.redistribute) {
    output = std::move(rows);
    co_return;
  }
  if (i == 0) self.mark_phase("virtual-redistribute");
  // Same double-broadcast as phase 10, except each member broadcasts its
  // own rows (rank r lives at row r%m of column r/m).
  const std::size_t lo = i * ctx.ni;
  const std::size_t hi = lo + ctx.ni;
  output.assign(ctx.ni, 0);
  const auto jch = static_cast<ChannelId>(j);
  for (int pass = 0; pass < 2; ++pass) {
    const std::size_t want_col = pass == 0 ? lo / m : (hi - 1) / m;
    for (std::size_t t = 0; t < m; ++t) {
      std::optional<WriteOp> write;
      std::optional<ChannelId> read;
      const bool i_broadcast =
          row_owner(ctx, t) == idx && j * m + t < ctx.n;
      if (i_broadcast) {
        write = WriteOp{jch, Message::of(rows[t - base])};
      }
      const std::size_t rank = want_col * m + t;
      bool reading = rank >= lo && rank < hi;
      if (reading && want_col == j && row_owner(ctx, t) == idx) {
        output[rank - lo] = rows[t - base];  // my own row
        reading = false;
      }
      if (reading) read = static_cast<ChannelId>(want_col);
      auto got = co_await self.cycle(std::move(write), read);
      if (reading) {
        MCB_CHECK(got.has_value(),
                  "virtual redistribute slot empty (rank " << rank << ")");
        output[rank - lo] = got->at(0);
      }
    }
  }
}

}  // namespace

ColumnsortEvenResult virtual_columnsort(
    const SimConfig& cfg, const std::vector<std::vector<Word>>& inputs,
    VirtualColumnsortOptions opts, TraceSink* sink) {
  cfg.validate();
  MCB_REQUIRE(inputs.size() == cfg.p, "inputs for " << inputs.size()
                                                    << " processors, p="
                                                    << cfg.p);
  const std::size_t ni = inputs.front().size();
  MCB_REQUIRE(ni > 0, "every processor needs at least one element");
  for (const auto& in : inputs) {
    MCB_REQUIRE(in.size() == ni, "distribution is not even");
    for (Word w : in) {
      MCB_REQUIRE(w != kDummy, "input contains the reserved dummy value");
    }
  }

  VCtx ctx;
  ctx.n = cfg.p * ni;
  ctx.ni = ni;
  ctx.local_sort = opts.local_sort;
  ctx.kk = opts.columns != 0 ? opts.columns
                             : choose_columns(ctx.n, cfg.p, cfg.k);
  MCB_REQUIRE(ctx.kk >= 1 && ctx.kk <= cfg.k && cfg.p % ctx.kk == 0,
              "column count " << ctx.kk << " infeasible for p=" << cfg.p
                              << " k=" << cfg.k);
  ctx.g = cfg.p / ctx.kk;
  const std::size_t m = round_up(ctx.n / ctx.kk, ctx.kk);
  ctx.redistribute = m != ctx.g * ni;
  ctx.plan = detail::CorePlan::build(m, ctx.kk);

  // Intra-column move lists per transform.
  if (ctx.kk > 1) {
    for (std::size_t t = 0; t < 4; ++t) {
      ctx.intra[t].resize(ctx.kk);
      const auto& table = ctx.plan.tables[t];
      for (std::size_t c = 0; c < ctx.kk; ++c) {
        for (std::size_t r = 0; r < m; ++r) {
          const std::size_t dst = table[c * m + r];
          // Only moves crossing member boundaries need a broadcast round;
          // same-owner moves (stationary ones included) are local copies.
          if (dst / m == c && row_owner(ctx, r) != row_owner(ctx, dst % m)) {
            ctx.intra[t][c].push_back(
                IntraMove{static_cast<std::uint32_t>(r),
                          static_cast<std::uint32_t>(dst % m)});
          }
        }
        ctx.intra_rounds[t] =
            std::max(ctx.intra_rounds[t], ctx.intra[t][c].size());
      }
    }
  }

  // Member element counts within a group (identical for every group).
  ctx.sizes.assign(ctx.g, ni);
  ctx.sizes.back() = m - (ctx.g - 1) * ni;

  // Deterministic cost of one virtual-column sort, for the phase-7 skip.
  if (ctx.g > 1) {
    ctx.sort_cost = ctx.local_sort == LocalSort::kRankSort
                        ? 2 * m
                        : 3 * ctx.g + 4 * m;
  }

  ColumnsortEvenResult result;
  result.columns = ctx.kk;
  result.column_len = m;
  result.run = run_network(
      cfg, inputs,
      [&ctx](Proc& self, const std::vector<Word>& in,
             std::vector<Word>& out) {
        return virtual_program(self, ctx, in, out);
      },
      sink);
  return result;
}

}  // namespace mcb::algo
