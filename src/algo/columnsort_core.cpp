#include "algo/columnsort_core.hpp"

#include "obs/span.hpp"
#include "seq/columnsort.hpp"
#include "seq/sorting.hpp"
#include "util/check.hpp"

namespace mcb::algo::detail {
namespace {

}  // namespace

CorePlan CorePlan::build(std::size_t m, std::size_t kk,
                         seq::ColumnsortVariant variant) {
  MCB_REQUIRE(seq::columnsort_dims_ok(m, kk, variant),
              "invalid Columnsort dimensions m=" << m << " kk=" << kk
                                                 << " for this variant");
  const std::array<sched::Transform, 4> transforms = {
      sched::Transform::kTranspose,
      variant == seq::ColumnsortVariant::kUndiagonalize
          ? sched::Transform::kUndiagonalize
          : sched::Transform::kUntranspose,
      sched::Transform::kUpShift, sched::Transform::kDownShift};
  CorePlan plan;
  plan.m = m;
  plan.kk = kk;
  if (kk > 1) {
    for (std::size_t t = 0; t < transforms.size(); ++t) {
      plan.tables[t] = sched::permutation_table(transforms[t], m, kk);
      plan.plans[t] =
          sched::plan_transform(transforms[t], m, kk, &plan.tables[t]);
      plan.core_cycles += plan.plans[t].cycles();
    }
  }
  return plan;
}

void sort_column_desc(std::vector<KV>& column) {
  seq::intro_sort(std::span<KV>(column),
                  [](const KV& a, const KV& b) { return desc_before(a, b); });
}

Task<void> run_transform(Proc& self, const CorePlan& plan, std::size_t t,
                         std::size_t my_col, std::vector<KV>& column) {
  const auto& table = plan.tables[t];
  const auto& rounds = plan.plans[t];
  const std::size_t m = plan.m;

  std::vector<KV> next(m);
  std::vector<std::vector<std::uint32_t>> queue(plan.kk);
  for (std::size_t r = 0; r < m; ++r) {
    const std::size_t dst = table[my_col * m + r];
    const std::size_t dc = dst / m;
    if (dc == my_col) {
      next[dst % m] = column[r];
    } else {
      queue[dc].push_back(static_cast<std::uint32_t>(r));
    }
  }
  self.note_aux(2 * m);

  std::vector<std::size_t> ptr(plan.kk, 0);
  for (const auto& round : rounds.rounds) {
    std::optional<WriteOp> write;
    std::optional<ChannelId> read;
    const auto dc = round.dst[my_col];
    if (dc != sched::kIdle) {
      MCB_CHECK(ptr[dc] < queue[dc].size(),
                "send queue " << my_col << "->" << dc << " exhausted");
      const std::size_t r = queue[dc][ptr[dc]++];
      const std::size_t dst = table[my_col * m + r];
      write = WriteOp{static_cast<ChannelId>(my_col),
                      Message::of(column[r].key, column[r].val,
                                  static_cast<Word>(dst % m))};
    }
    const auto sc = round.src[my_col];
    if (sc != sched::kIdle) read = static_cast<ChannelId>(sc);
    auto got = co_await self.cycle(std::move(write), read);
    if (sc != sched::kIdle) {
      MCB_CHECK(got.has_value(), "missing transfer on channel " << sc);
      next[static_cast<std::size_t>(got->at(2))] = KV{got->at(0), got->at(1)};
    }
  }
  column.swap(next);
}

Task<void> columnsort_phases(Proc& self, const CorePlan& plan,
                             std::size_t my_col, std::vector<KV>& column) {
  MCB_CHECK(column.size() == plan.m,
            "column length " << column.size() << " != m=" << plan.m);
  self.note_aux(column.size());
  // Phase spans: the odd (local sort) phases cost zero cycles by the model
  // — local computation is free — so their spans record a 0-cycle mark;
  // the transform phases carry the communication.
  {
    obs::Span sp(self, "cs.phase1.sort");                    // phase 1
    sort_column_desc(column);
  }
  if (plan.kk > 1) {
    {
      obs::Span sp(self, "cs.phase2.transform");             // phase 2
      co_await run_transform(self, plan, 0, my_col, column);
    }
    {
      obs::Span sp(self, "cs.phase3.sort");                  // phase 3
      sort_column_desc(column);
    }
    {
      obs::Span sp(self, "cs.phase4.transform");             // phase 4
      co_await run_transform(self, plan, 1, my_col, column);
    }
    {
      obs::Span sp(self, "cs.phase5.sort");                  // phase 5
      sort_column_desc(column);
    }
    {
      obs::Span sp(self, "cs.phase6.transform");             // phase 6
      co_await run_transform(self, plan, 2, my_col, column);
    }
    if (my_col != 0) {
      obs::Span sp(self, "cs.phase7.sort");                  // phase 7
      sort_column_desc(column);
    }
    {
      obs::Span sp(self, "cs.phase8.transform");             // phase 8
      co_await run_transform(self, plan, 3, my_col, column);
    }
    // Phase 9 (local re-sort) is unnecessary: the schedules place every
    // element at its exact destination row, so after phase 8 the column is
    // already in final order.
  }
}

Task<void> core_skip(Proc& self, const CorePlan& plan) {
  if (plan.core_cycles > 0) co_await self.skip(plan.core_cycles);
}

Task<void> redistribute(Proc& self, const CorePlan& plan, bool is_rep,
                        std::size_t my_col, const std::vector<KV>& column,
                        std::size_t n, std::size_t lo, std::size_t hi,
                        std::vector<KV>& output) {
  const std::size_t m = plan.m;
  MCB_CHECK(hi >= lo && hi <= n, "segment [" << lo << "," << hi << ") of "
                                             << n);
  MCB_CHECK(hi - lo <= m, "segment longer than a column");
  output.assign(hi - lo, KV{});
  // Real (non-dummy) elements in this representative's final column: the
  // dummies are the global minimum, so reals occupy ranks [0, n) and column
  // c holds ranks [c*m, c*m + m).
  const std::size_t real_here =
      is_rep ? std::min(m, n > my_col * m ? n - my_col * m : std::size_t{0})
             : 0;
  for (int pass = 0; pass < 2; ++pass) {
    // A contiguous segment of <= m ranks spans at most two consecutive
    // columns; collect the first in pass 0, the second in pass 1.
    const std::size_t want_col =
        hi == lo ? SIZE_MAX : (pass == 0 ? lo / m : (hi - 1) / m);
    // This processor's read window within the pass: the in-column slots t
    // whose rank want_col*m + t falls in [lo, hi). Contiguous by
    // construction, and empty when want_col is SIZE_MAX.
    std::size_t t_read0 = m, t_read1 = m;
    if (want_col != SIZE_MAX) {
      const std::size_t col_lo = want_col * m;
      t_read0 = lo > col_lo ? lo - col_lo : 0;
      t_read1 = hi > col_lo ? std::min(m, hi - col_lo) : 0;
      if (t_read1 < t_read0) t_read1 = t_read0;
    }
    if (!is_rep) {
      // Non-representatives only read; sleep through the rest of the pass
      // (observationally identical to idle cycles: no intent either way).
      if (t_read0 > 0) co_await self.skip(t_read0);
      for (std::size_t t = t_read0; t < t_read1; ++t) {
        auto got = co_await self.read(static_cast<ChannelId>(want_col));
        MCB_CHECK(got.has_value(), "redistribute slot empty (rank "
                                       << want_col * m + t << ")");
        output[want_col * m + t - lo] = KV{got->at(0), got->at(1)};
      }
      if (t_read1 < m) co_await self.skip(m - t_read1);
      continue;
    }
    if (want_col == my_col) {
      // Own column: take the segment locally, no channel reads needed.
      for (std::size_t t = t_read0; t < t_read1; ++t) {
        output[want_col * m + t - lo] = column[t];
      }
      t_read0 = t_read1 = m;
    }
    // A representative's action cycles are the write prefix [0, real_here)
    // plus the (possibly overlapping) read window; sleep through the gap
    // between them and the idle tail of the pass.
    std::size_t t = 0;
    while (t < m) {
      const bool writing = t < real_here;
      const bool reading = t >= t_read0 && t < t_read1;
      if (!writing && !reading) {
        const std::size_t next_act = t < t_read0 ? t_read0 : m;
        co_await self.skip(next_act - t);
        t = next_act;
        continue;
      }
      std::optional<WriteOp> write;
      std::optional<ChannelId> read;
      if (writing) {
        write = WriteOp{static_cast<ChannelId>(my_col),
                        Message::of(column[t].key, column[t].val)};
      }
      if (reading) read = static_cast<ChannelId>(want_col);
      auto got = co_await self.cycle(std::move(write), read);
      if (reading) {
        MCB_CHECK(got.has_value(), "redistribute slot empty (rank "
                                       << want_col * m + t << ")");
        output[want_col * m + t - lo] = KV{got->at(0), got->at(1)};
      }
      ++t;
    }
  }
}

}  // namespace mcb::algo::detail
