#include "algo/ranksort.hpp"

#include <numeric>
#include <utility>

#include "seq/sorting.hpp"
#include "util/check.hpp"

namespace mcb::algo {
namespace {

/// Lexicographic comparison of (value, owner, index) triples — the paper's
/// tie-breaking device making all elements distinct.
bool triple_less(Word v1, std::size_t o1, std::size_t i1, Word v2,
                 std::size_t o2, std::size_t i2) {
  if (v1 != v2) return v1 < v2;
  if (o1 != o2) return o1 < o2;
  return i1 < i2;
}

}  // namespace

Task<void> ranksort_group(Proc& self, const GroupSpec& grp,
                          std::span<const std::size_t> sizes,
                          std::vector<Word>& data) {
  MCB_REQUIRE(sizes.size() == grp.count, "sizes for " << sizes.size()
                                                      << " members, group of "
                                                      << grp.count);
  const std::size_t me = self.id() - grp.first;
  MCB_CHECK(self.id() >= grp.first && me < grp.count,
            "P" << self.id() + 1 << " outside group");
  MCB_REQUIRE(data.size() == sizes[me],
              "local list size " << data.size() << " != declared "
                                 << sizes[me]);

  const std::size_t n_grp =
      std::accumulate(sizes.begin(), sizes.end(), std::size_t{0});
  std::size_t my_start = 0;  // first pass-1 slot owned by this member
  for (std::size_t g = 0; g < me; ++g) my_start += sizes[g];

  // --- pass 1: broadcast everything once; count larger elements -----------
  // rank[e] starts at 1 and ends as the element's 1-based descending rank.
  std::vector<std::size_t> rank(data.size(), 1);
  self.note_aux(rank.size());
  for (std::size_t slot = 0; slot < n_grp; ++slot) {
    const bool mine = slot >= my_start && slot < my_start + data.size();
    Word bv = 0;  // broadcast value / owner / index this slot
    std::size_t bo = 0, bi = 0;
    if (mine) {
      bi = slot - my_start;
      bo = me;
      bv = data[bi];
      co_await self.write(grp.channel, Message::of(bv, bo, bi));
    } else {
      auto got = co_await self.read(grp.channel);
      MCB_CHECK(got.has_value(), "pass-1 slot " << slot << " silent");
      bv = got->at(0);
      bo = static_cast<std::size_t>(got->at(1));
      bi = static_cast<std::size_t>(got->at(2));
    }
    // Everyone (sender included) bumps the rank of every local element
    // smaller than the broadcast one.
    for (std::size_t e = 0; e < data.size(); ++e) {
      if (triple_less(data[e], me, e, bv, bo, bi)) ++rank[e];
    }
  }

  // --- pass 2: emit in rank order; targets collect their segments ---------
  std::size_t tgt_start = 0;  // first output rank (0-based) owned by me
  for (std::size_t g = 0; g < me; ++g) tgt_start += sizes[g];
  const std::size_t tgt_end = tgt_start + sizes[me];

  // My elements in emit order: (slot, element index) sorted by slot. A
  // pointer walk over this list keeps pass-2 bookkeeping at O(n_i) words
  // (a whole-group slot map would be O(n) per processor).
  std::vector<Word> out(sizes[me]);
  std::vector<std::pair<std::size_t, std::size_t>> emits(data.size());
  for (std::size_t e = 0; e < data.size(); ++e) {
    emits[e] = {rank[e] - 1, e};
  }
  seq::intro_sort(std::span<std::pair<std::size_t, std::size_t>>(emits));
  self.note_aux(rank.size() + out.size() + emits.size());

  // Action slots are the emit list (sorted by slot) merged with the
  // contiguous target window; sleep through the gaps between them.
  std::size_t next_emit = 0;
  for (std::size_t slot = 0; slot < n_grp;) {
    std::size_t next_act = n_grp;
    if (next_emit < emits.size()) {
      next_act = std::min(next_act, emits[next_emit].first);
    }
    if (slot < tgt_end) next_act = std::min(next_act, std::max(slot, tgt_start));
    if (next_act > slot) {
      co_await self.skip(next_act - slot);
      slot = next_act;
      continue;
    }
    std::size_t e = SIZE_MAX;
    if (next_emit < emits.size() && emits[next_emit].first == slot) {
      e = emits[next_emit].second;
      ++next_emit;
    }
    const bool target_is_me = slot >= tgt_start && slot < tgt_end;
    if (e != SIZE_MAX) {
      // I own the element of this rank.
      if (target_is_me) {
        out[slot - tgt_start] = data[e];  // already in place: stay silent
        co_await self.step();
      } else {
        co_await self.write(grp.channel, Message::of(data[e]));
      }
    } else {
      auto got = co_await self.read(grp.channel);
      MCB_CHECK(got.has_value(), "pass-2 slot " << slot << " silent");
      out[slot - tgt_start] = got->at(0);
    }
    ++slot;
  }
  data = std::move(out);
}

namespace {

ProcMain ranksort_program(Proc& self, const GroupSpec& grp,
                          const std::vector<std::size_t>& sizes,
                          const std::vector<Word>& in,
                          std::vector<Word>& out) {
  out = in;
  co_await ranksort_group(self, grp, sizes, out);
}

}  // namespace

AlgoResult ranksort(const SimConfig& cfg,
                    const std::vector<std::vector<Word>>& inputs,
                    TraceSink* sink) {
  cfg.validate();
  MCB_REQUIRE(inputs.size() == cfg.p, "inputs for " << inputs.size()
                                                    << " processors, p="
                                                    << cfg.p);
  std::vector<std::size_t> sizes(cfg.p);
  for (std::size_t i = 0; i < cfg.p; ++i) {
    MCB_REQUIRE(!inputs[i].empty(), "P" << i + 1 << " holds no elements");
    sizes[i] = inputs[i].size();
  }
  const GroupSpec grp{0, cfg.p, 0};

  return run_network(
      cfg, inputs,
      [&grp, &sizes](Proc& self, const std::vector<Word>& in,
                     std::vector<Word>& out) {
        return ranksort_program(self, grp, sizes, in, out);
      },
      sink);
}

}  // namespace mcb::algo
