// The single-channel distributed Merge-Sort of Section 6.1.
//
// Each processor first sorts its local list. The processors then maintain a
// *distributed linked list* of their current top (largest unplaced)
// elements, sorted descending: each processor knows its own top element, a
// pointer to the next smaller listed top, and its rank in the list. In each
// round the head of the list (rank 1) moves its top to that element's
// target processor; to keep memory constant, the target evicts its smallest
// remaining element back to the head ("replacement"); the head then
// re-inserts its new top into the linked list with one broadcast and one
// reply.
//
// Round structure (4 cycles, fixed, so the whole group stays in lockstep):
//   C1  head -> target: the next-largest element (placed at output slot r)
//   C2  target -> head: replacement (silence when the target is the head,
//       holds fewer than two unplaced elements, or has none)
//   C3  head broadcast: its new top, for insertion (silence when empty)
//   C4  P_b -> head: insertion point (new rank + predecessor's pointer);
//       silence means the new top is the global maximum (head keeps its
//       pointer, which by the only-heads-are-removed invariant is exactly
//       the current rank-1 top)
//
// The initial linked list is built by 3-cycle insertions, one member after
// another (the third cycle lets a demoted head hand its top to a new global
// maximum, which otherwise would not know its successor).
//
// Complexity for a group holding n elements: O(n) cycles and messages, and
// O(1) auxiliary storage per processor — the memory claim this module
// exists to demonstrate (Rank-Sort needs O(n_i) counters).
//
// Duplicate values are handled by the paper's w.l.o.g. triple trick:
// elements travel as (value, owner, serial) keys ordered lexicographically.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "algo/ranksort.hpp"  // GroupSpec
#include "algo/runner.hpp"
#include "mcb/coro.hpp"
#include "mcb/proc.hpp"

namespace mcb::algo {

/// Sorts the group's distributed list descending; same collective contract
/// as ranksort_group (all members co_await together; `sizes` known to all).
Task<void> mergesort_group(Proc& self, const GroupSpec& grp,
                           std::span<const std::size_t> sizes,
                           std::vector<Word>& data);

/// Standalone driver over the whole network on channel 0.
AlgoResult mergesort(const SimConfig& cfg,
                     const std::vector<std::vector<Word>>& inputs,
                     TraceSink* sink = nullptr);

}  // namespace mcb::algo
