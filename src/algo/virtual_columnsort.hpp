// Memory-efficient Columnsort — Section 6.1.
//
// Instead of gathering each group's elements into a representative (which
// needs Theta(n/k) memory there), every group of p/kk processors acts as a
// single *virtual processor* owning a *virtual column* that stays
// distributed: member idx holds rows [idx*ni, (idx+1)*ni) (the last member
// also holds the padding rows).
//
//   sorting phases      each group sorts its virtual column with the
//                       single-channel Rank-Sort or Merge-Sort collective on
//                       the group's own channel; all groups run in parallel
//                       and in lockstep (both collectives have
//                       deterministic cycle counts). Phase 7 skips column 1,
//                       whose group idles the identical number of cycles.
//   transformation      inter-column rounds follow the usual broadcast
//   phases              schedule, except that "the work of a virtual
//                       processor during a given cycle is carried out by the
//                       processor containing the element to be broadcast";
//                       all members of the destination group read the
//                       channel concurrently and the owner of the
//                       destination row keeps the element. Intra-column
//                       moves, local in the representative version, now
//                       cross member boundaries and run in a dedicated
//                       block of rounds on the group's own channel.
//
// Complexity: O(n) messages, O(n/kk) cycles — same as the gather-based
// algorithm — with per-processor storage O(n/p) instead of O(n/k).
#pragma once

#include <cstddef>
#include <vector>

#include "algo/columnsort_even.hpp"
#include "mcb/sim_config.hpp"

namespace mcb::algo {

enum class LocalSort {
  kRankSort,   ///< O(n_i) aux storage per processor
  kMergeSort,  ///< O(1) aux storage per processor
};

struct VirtualColumnsortOptions {
  std::size_t columns = 0;  ///< 0 = automatic, as columnsort_even
  LocalSort local_sort = LocalSort::kRankSort;
};

/// Sorts an evenly distributed input without ever concentrating a column in
/// one processor. Same contract as columnsort_even.
ColumnsortEvenResult virtual_columnsort(
    const SimConfig& cfg, const std::vector<std::vector<Word>>& inputs,
    VirtualColumnsortOptions opts = {}, TraceSink* sink = nullptr);

}  // namespace mcb::algo
