// Shared helpers for the distributed algorithms.
#pragma once

#include <cstddef>
#include <limits>

#include "mcb/types.hpp"

namespace mcb::algo {

/// Padding value used for the dummy elements of Sections 5.2 and 7.2. It is
/// smaller than every real element, so after a descending sort all dummies
/// sit at the global tail. Inputs must not contain this value (validated at
/// the algorithm entry points).
inline constexpr Word kDummy = std::numeric_limits<Word>::min();

/// A sortable (key, value) pair. The distributed sorts order by key
/// descending (value as a deterministic tie-break); the value tags along —
/// the selection algorithm sorts (median, count) pairs this way, exactly as
/// Section 8 prescribes.
struct KV {
  Word key = 0;
  Word val = 0;

  friend bool operator==(const KV&, const KV&) = default;
  /// Descending-order comparator (largest first).
  friend bool desc_before(const KV& a, const KV& b) {
    return a.key != b.key ? a.key > b.key : a.val > b.val;
  }
};

inline constexpr std::size_t ceil_div(std::size_t a, std::size_t b) {
  return (a + b - 1) / b;
}

/// Rounds `a` up to a multiple of `b`.
inline constexpr std::size_t round_up(std::size_t a, std::size_t b) {
  return ceil_div(a, b) * b;
}

}  // namespace mcb::algo
