#include "algo/uneven_sort.hpp"

#include <algorithm>
#include <numeric>

#include "algo/columnsort_core.hpp"
#include "algo/common.hpp"
#include "algo/partial_sums.hpp"
#include "util/check.hpp"

namespace mcb::algo {
namespace {

/// Deterministic replay of the group-formation rule, used by the caller to
/// presize the Columnsort core plan (each processor derives the identical
/// values in-run from the Partial-Sums results and the representatives'
/// broadcasts; building the tables is local computation and free in the
/// cycle measure).
struct Formation {
  std::size_t kk = 0;  ///< groups formed
  std::size_t m = 0;   ///< padded column length
};

/// The paper's Columnsort dimension guard, applied to the channel count:
/// groups are formed against the largest k' <= k with n >= k'^2 (k'-1), so
/// the padded column length stays O(n/k' + n_max) instead of blowing up to
/// kk(kk-1) when n is small relative to k.
std::size_t effective_k(std::size_t n, std::size_t k) {
  std::size_t best = 1;
  for (std::size_t kp = 2; kp <= k; ++kp) {
    if (n >= kp * kp * (kp - 1)) best = kp;
  }
  return best;
}

Formation plan_formation(const std::vector<std::size_t>& sizes,
                         std::size_t k_raw) {
  const std::size_t n =
      std::accumulate(sizes.begin(), sizes.end(), std::size_t{0});
  const std::size_t k = effective_k(n, k_raw);
  const std::size_t n_max = *std::max_element(sizes.begin(), sizes.end());
  const std::size_t budget = ceil_div(n, k) + n_max - 1;

  Formation f;
  std::size_t assigned = 0;
  std::size_t prefix = 0;
  std::size_t max_group = 0;
  std::size_t i = 0;
  while (assigned < n) {
    // Greedily extend the group while the next processor still fits.
    std::size_t group = 0;
    while (i < sizes.size() && prefix + sizes[i] <= assigned + budget) {
      prefix += sizes[i];
      group += sizes[i];
      ++i;
    }
    MCB_CHECK(group > 0, "group formation stalled at processor " << i);
    assigned += group;
    max_group = std::max(max_group, group);
    ++f.kk;
  }
  MCB_CHECK(f.kk <= k, "formed " << f.kk << " groups with k=" << k);
  // Column length: the longest group, padded so kk | m and m >= kk(kk-1).
  f.m = std::max(round_up(max_group, f.kk), f.kk * (f.kk - 1));
  if (f.m == 0) f.m = 1;  // kk == 1, degenerate
  return f;
}

struct UnevenCtx {
  std::size_t k = 0;
  detail::CorePlan plan;
};

ProcMain uneven_program(Proc& self, const UnevenCtx& ctx,
                        const std::vector<Word>& input,
                        std::vector<Word>& output) {
  const std::size_t i = self.id();
  const std::size_t p = self.p();
  const auto ni = static_cast<Word>(input.size());

  // --- phase 0a: learn the distribution and form groups --------------------
  if (i == 0) self.mark_phase("phase0a:form");
  const auto ps = co_await partial_sums(
      self, ni, SumOp::add(), {.with_total = true, .with_next = true});
  const auto mx =
      co_await partial_sums(self, ni, SumOp::max(), {.with_total = true});
  const auto n = static_cast<std::size_t>(ps.total);
  const auto n_max = static_cast<std::size_t>(mx.total);
  const std::size_t k_eff = effective_k(n, ctx.k);
  const std::size_t budget = ceil_div(n, k_eff) + n_max - 1;

  // One cycle per group: its representative announces the group size on
  // channel 0; everyone tracks the running total to decide membership.
  std::size_t assigned = 0;
  std::size_t my_group = SIZE_MAX;
  std::size_t my_offset = 0;  // within-group prefix of my elements
  std::size_t my_group_total = 0;
  bool is_rep = false;
  std::size_t kk = 0;
  while (assigned < n) {
    const bool joins =
        my_group == SIZE_MAX &&
        static_cast<std::size_t>(ps.self) <= assigned + budget;
    const bool announces =
        joins && (i == p - 1 ||
                  static_cast<std::size_t>(ps.next) > assigned + budget);
    std::size_t group_total = 0;
    if (announces) {
      group_total = static_cast<std::size_t>(ps.self) - assigned;
      co_await self.write(0, Message::of(static_cast<Word>(group_total)));
    } else {
      auto got = co_await self.read(0);
      MCB_CHECK(got.has_value(), "no representative announced group " << kk);
      group_total = static_cast<std::size_t>(got->at(0));
    }
    if (joins) {
      my_group = kk;
      my_offset = static_cast<std::size_t>(ps.before) - assigned;
      my_group_total = group_total;
      is_rep = announces;
    }
    assigned += group_total;
    ++kk;
  }
  MCB_CHECK(my_group != SIZE_MAX, "P" << i + 1 << " joined no group");
  MCB_CHECK(kk == ctx.plan.kk,
            "in-run group count " << kk << " != planned " << ctx.plan.kk);
  const std::size_t m = ctx.plan.m;
  const auto gch = static_cast<ChannelId>(my_group);

  // --- phase 0b: collect each group's elements at its representative ------
  // Fixed window of m cycles for every group (m bounds every group total).
  if (i == 0) self.mark_phase("phase0b:collect");
  std::vector<KV> column;
  if (!is_rep) {
    if (my_offset > 0) co_await self.skip(my_offset);
    for (Word w : input) {
      co_await self.write(gch, Message::of(w));
    }
    const std::size_t rest = m - my_offset - input.size();
    if (rest > 0) co_await self.skip(rest);
  } else {
    const std::size_t incoming = my_group_total - input.size();
    column.reserve(m);
    for (std::size_t t = 0; t < incoming; ++t) {
      auto got = co_await self.read(gch);
      MCB_CHECK(got.has_value(), "collection slot " << t << " empty");
      column.push_back(KV{got->at(0), 0});
    }
    for (Word w : input) column.push_back(KV{w, 0});
    column.resize(m, KV{kDummy, 0});
    if (incoming < m) co_await self.skip(m - incoming);
  }

  // --- phases 1-9 -----------------------------------------------------------
  if (i == 0) self.mark_phase("core:columnsort");
  if (is_rep) {
    co_await detail::columnsort_phases(self, ctx.plan, my_group, column);
  } else {
    co_await detail::core_skip(self, ctx.plan);
  }

  // --- phase 10: redistribute ------------------------------------------------
  if (i == 0) self.mark_phase("phase10:redistribute");
  std::vector<KV> segment;
  co_await detail::redistribute(self, ctx.plan, is_rep, my_group, column, n,
                                static_cast<std::size_t>(ps.before),
                                static_cast<std::size_t>(ps.self), segment);
  output.clear();
  output.reserve(segment.size());
  for (const KV& e : segment) output.push_back(e.key);
}

}  // namespace

UnevenSortResult uneven_sort(const SimConfig& cfg,
                             const std::vector<std::vector<Word>>& inputs,
                             TraceSink* sink) {
  cfg.validate();
  MCB_REQUIRE(inputs.size() == cfg.p, "inputs for " << inputs.size()
                                                    << " processors, p="
                                                    << cfg.p);
  std::vector<std::size_t> sizes(cfg.p);
  for (std::size_t i = 0; i < cfg.p; ++i) {
    MCB_REQUIRE(!inputs[i].empty(), "P" << i + 1 << " holds no elements "
                                        << "(the paper assumes n_i > 0)");
    sizes[i] = inputs[i].size();
    for (Word w : inputs[i]) {
      MCB_REQUIRE(w != kDummy, "input contains the reserved dummy value");
    }
  }

  const Formation f = plan_formation(sizes, cfg.k);
  UnevenCtx ctx;
  ctx.k = cfg.k;
  ctx.plan = detail::CorePlan::build(f.m, f.kk);

  UnevenSortResult result;
  result.groups = f.kk;
  result.column_len = f.m;
  result.run = run_network(
      cfg, inputs,
      [&ctx](Proc& self, const std::vector<Word>& in,
             std::vector<Word>& out) {
        return uneven_program(self, ctx, in, out);
      },
      sink);
  return result;
}

}  // namespace mcb::algo
