// Distributed selection by rank — Section 8.
//
// Identifies N[d], the d-th largest of n elements distributed arbitrarily
// over the p processors, by repeated filtering:
//
//   filtering phase (repeated while more than m* candidates remain)
//     1. each processor computes the median med_i of its local candidates
//        (BFPRT, free local computation);
//     2. the (med_i, m_i) pairs are sorted descending by median with the
//        even Columnsort collective (one pair per processor);
//     3. Partial-Sums over the sorted counts locates the *weighted median*
//        med_{i*} — the smallest prefix covering half the candidates — and
//        P_{i*} broadcasts it;
//     4. Partial-Sums counts the candidates >= med_{i*}; depending on how
//        that count m_s compares to d, either med_{i*} is the answer, or
//        all candidates <= med_{i*} (case m_s > d) or >= med_{i*}
//        (case m_s < d, with d reduced by m_s) are purged.
//     Each phase purges at least ~1/4 of the candidates (Figure 2).
//
//   termination phase: the at most m* = max(p/k, 1) survivors are collected
//     into P_1 (p/k-slot schedule driven by Partial-Sums prefixes), which
//     selects locally and broadcasts the answer.
//
// Complexity: O((p/k) log(kn/p)) cycles and O(p log(kn/p)) messages, tight
// by Corollary 7 for d = Theta(n) and p >= k^2.
//
// The paper assumes distinct elements w.l.o.g.; this implementation
// requires them (callers can lexicographically extend values as in
// Section 3 if needed).
#pragma once

#include <cstddef>
#include <vector>

#include "mcb/sim_config.hpp"
#include "mcb/stats.hpp"
#include "mcb/trace.hpp"
#include "mcb/types.hpp"

namespace mcb::algo {

struct SelectionOptions {
  /// Candidate threshold below which the termination phase collects the
  /// survivors centrally; 0 = the paper's choice max(p/k, 1).
  std::size_t threshold = 0;
  /// Use randomized quickselect instead of BFPRT for local medians (changes
  /// nothing observable; both are free local computation).
  bool use_quickselect = false;
};

struct SelectionResult {
  Word value = 0;                 ///< the d-th largest element
  std::size_t filter_phases = 0;  ///< filtering rounds executed
  /// Candidates alive entering each filtering phase — the quantity Figure 2
  /// illustrates. The purge guarantee makes each entry at most ~3/4 of its
  /// predecessor.
  std::vector<std::size_t> candidates_per_phase;
  RunStats stats;
};

/// Selects the d-th largest element (1-based, d <= n). Every processor must
/// hold at least one element; all values distinct.
SelectionResult select_rank(const SimConfig& cfg,
                            const std::vector<std::vector<Word>>& inputs,
                            std::size_t d, SelectionOptions opts = {},
                            TraceSink* sink = nullptr);

/// Convenience: the median, N[ceil(n/2)].
SelectionResult select_median(const SimConfig& cfg,
                              const std::vector<std::vector<Word>>& inputs,
                              SelectionOptions opts = {},
                              TraceSink* sink = nullptr);

}  // namespace mcb::algo
