// Bounded-memory per-channel timeline of a run.
//
// A TraceSink that bins the cycle-event stream into fixed-width cycle
// buckets: per-bucket, per-channel write counts plus read / silent-read /
// multi-read / busy-cycle counters. Memory stays bounded no matter how long
// the run is: buckets start one cycle wide, and whenever the run outgrows
// `max_buckets` the recorder merges adjacent bucket pairs and doubles the
// bucket width (so the resolution degrades gracefully while every count is
// preserved exactly — the same collapse-by-merging idea as a reservoir).
// Cost per event is O(1) amortized; memory is O(max_buckets * k).
//
// The timeline never sees idle stretches (the engines emit no events for
// them — the event engine fast-forwards them entirely), so idle time is
// derived at finalize(): total cycles minus the distinct busy cycles
// counted from the stream.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mcb/trace.hpp"
#include "mcb/types.hpp"

namespace mcb::obs {

/// Counters for one bucket of `bucket_cycles()` consecutive cycles.
struct TimelineBucket {
  std::vector<std::uint64_t> writes;  ///< per channel, size k
  std::uint64_t reads = 0;            ///< single-channel read operations
  std::uint64_t silent_reads = 0;     ///< reads that observed silence
  std::uint64_t multi_reads = 0;      ///< Section 9 read-all operations
  std::uint64_t busy_cycles = 0;      ///< distinct cycles with >= 1 event
};

class Timeline final : public TraceSink {
 public:
  explicit Timeline(std::size_t k, std::size_t max_buckets = 256);

  void on_event(const CycleEvent& ev) override;

  /// Records the run's total cycle count so idle time can be derived.
  /// Call once after Network::run() returns.
  void finalize(Cycle total_cycles);

  std::size_t k() const { return k_; }
  /// Current bucket width in cycles (a power of two).
  Cycle bucket_cycles() const { return width_; }
  const std::vector<TimelineBucket>& buckets() const { return buckets_; }

  // Exact run-wide totals (independent of bucket resolution).
  std::uint64_t total_writes() const { return total_writes_; }
  const std::vector<std::uint64_t>& writes_per_channel() const {
    return channel_writes_;
  }
  std::uint64_t total_reads() const { return total_reads_; }
  std::uint64_t total_silent_reads() const { return total_silent_reads_; }
  std::uint64_t total_multi_reads() const { return total_multi_reads_; }
  /// Distinct cycles in which at least one event occurred.
  std::uint64_t busy_cycles() const { return busy_cycles_; }
  /// total - busy; valid after finalize().
  std::uint64_t idle_cycles() const;
  Cycle total_cycles() const { return total_cycles_; }
  bool finalized() const { return finalized_; }

 private:
  TimelineBucket& bucket_for(Cycle cycle);
  void merge_pairs();

  std::size_t k_;
  std::size_t max_buckets_;
  Cycle width_ = 1;
  std::vector<TimelineBucket> buckets_;

  std::uint64_t total_writes_ = 0;
  std::vector<std::uint64_t> channel_writes_;
  std::uint64_t total_reads_ = 0;
  std::uint64_t total_silent_reads_ = 0;
  std::uint64_t total_multi_reads_ = 0;
  std::uint64_t busy_cycles_ = 0;

  bool any_event_ = false;
  Cycle last_busy_cycle_ = 0;
  Cycle total_cycles_ = 0;
  bool finalized_ = false;
};

}  // namespace mcb::obs
