// RAII phase spans and their recorder.
//
// The paper's complexity claims are per-phase claims (Columnsort's 10
// phases, selection's filtering rounds), so the telemetry layer records
// *where* the cycles and messages went, not just the end-of-run totals.
// Protocol code opens a span around a phase:
//
//   {
//     obs::Span sp(self, "filter");
//     ... the filtering round ...
//   }  // span closes here
//
// Spans nest (RAII inside one coroutine guarantees well-formed nesting),
// are stamped in *simulated cycles*, and carry the network-wide message
// delta over their lifetime. By the same convention as Proc::mark_phase,
// only processor 0's spans are recorded — Span checks the id itself, so
// call sites need no `if (i == 0)` guard. With no recorder attached
// (SimConfig::span_sink == nullptr) a span costs two predictable branches.
//
// The Recorder buffers at most `capacity` records (drops beyond it, counted
// in dropped()) and aggregates them into per-name summaries; reconcile()
// cross-checks the records against the flat PhaseStats accounting that
// Network::mark_phase produces — the two systems are independent paths over
// the same counters, so any disagreement is a telemetry bug.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mcb/proc.hpp"
#include "mcb/stats.hpp"
#include "mcb/trace.hpp"
#include "mcb/types.hpp"

namespace mcb::obs {

inline constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);

/// One recorded span, in begin order. Collision deltas are intentionally
/// absent: a collision aborts the run (CollisionError), so a span can never
/// observe a nonzero count.
struct SpanRecord {
  std::string name;
  std::size_t parent = kNoParent;  ///< index of the enclosing record
  std::size_t depth = 0;           ///< 0 = top-level
  Cycle begin_cycle = 0;
  Cycle end_cycle = 0;
  std::uint64_t begin_messages = 0;
  std::uint64_t end_messages = 0;
  bool closed = false;

  Cycle cycles() const { return end_cycle - begin_cycle; }
  std::uint64_t messages() const { return end_messages - begin_messages; }
};

/// Per-name aggregate of the records, in first-appearance order (stable and
/// engine-independent, so it serializes deterministically).
struct SpanSummary {
  std::string name;
  std::uint64_t count = 0;
  Cycle cycles = 0;
  std::uint64_t messages = 0;
};

/// Collects Span begin/end marks into SpanRecords. Attach via
/// SimConfig::span_sink; the recorder must outlive the Network.
class Recorder final : public SpanSink {
 public:
  explicit Recorder(std::size_t capacity = 1u << 16) : capacity_(capacity) {}

  void on_span_begin(std::string_view name, Cycle cycle,
                     std::uint64_t messages) override;
  void on_span_end(Cycle cycle, std::uint64_t messages) override;

  const std::vector<SpanRecord>& records() const { return records_; }
  /// Spans discarded once the capacity cap was hit.
  std::uint64_t dropped() const { return dropped_; }
  /// Maximum nesting depth observed (0 when no spans were recorded).
  std::size_t max_depth() const { return max_depth_; }

  /// True when every recorded span was closed and the stack drained — i.e.
  /// the begin/end stream was balanced and properly nested.
  bool well_formed() const;

  /// Per-name aggregates in first-appearance order.
  std::vector<SpanSummary> summarize() const;

  /// Cross-checks the records against the run's PhaseStats: every phase
  /// that shares its name with recorded spans must agree exactly on cycles
  /// and messages with the per-name span aggregate, and the stream must be
  /// well-formed. Returns one line per discrepancy; empty means reconciled.
  std::vector<std::string> reconcile(const RunStats& stats) const;

 private:
  std::size_t capacity_;
  std::uint64_t dropped_ = 0;
  std::size_t max_depth_ = 0;
  std::vector<SpanRecord> records_;
  std::vector<std::size_t> stack_;  ///< open record indices (kNoParent = dropped)
};

/// The RAII span protocol code creates. Records only on processor 0 (and
/// only when a sink is attached); move-only is unnecessary — spans are
/// scoped, never stored.
class Span {
 public:
  Span(Proc& self, std::string_view name) {
    if (self.id() == 0) {
      proc_ = &self;
      self.span_begin(name);
    }
  }
  ~Span() {
    if (proc_ != nullptr) proc_->span_end();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Proc* proc_ = nullptr;
};

}  // namespace mcb::obs
