// Chrome trace-event / Perfetto-compatible JSON export.
//
// Serializes a finished run's telemetry into the JSON trace-event format
// that chrome://tracing and ui.perfetto.dev load directly:
//
//   * pid 1 ("phase spans") — one thread track carrying the recorder's
//     nested B/E duration events, emitted in proper stack order (begin,
//     children, end), timestamped in simulated cycles with the span's
//     message delta in args.
//   * pid 2 ("channels") — one counter track per channel ("C1 writes", ...)
//     with one counter sample per timeline bucket, so per-channel
//     utilization renders as k stacked area charts.
//
// Timestamps are simulated cycles, not host time — the exporter reads only
// deterministic state, so the trace of a deterministic run is byte-identical
// across engines, thread counts and repetitions. The output is strict RFC
// 8259 JSON (tests parse it back with util::json).
#pragma once

#include <string>

#include "mcb/sim_config.hpp"
#include "mcb/stats.hpp"

namespace mcb::obs {

class Recorder;
class Timeline;

/// Renders the trace-event JSON document. Either collector may be null
/// (its tracks are simply absent). `cfg` supplies p and k for the header.
std::string chrome_trace_json(const RunStats& stats, const SimConfig& cfg,
                              const Recorder* spans, const Timeline* timeline);

/// One RunStats as a JSON object — the "stats" member of `mcbsim
/// sort/select --json` and of the serving report. Strict RFC 8259: the
/// double fields (cycles_per_sec, arena_hit_rate) go through
/// util::json_double, so a non-finite value renders as 0 rather than an
/// unparseable bare `nan`/`inf` token.
std::string run_stats_json(const RunStats& stats);

}  // namespace mcb::obs
