// Chrome trace-event / Perfetto-compatible JSON export.
//
// Serializes a finished run's telemetry into the JSON trace-event format
// that chrome://tracing and ui.perfetto.dev load directly:
//
//   * pid 1 ("phase spans") — one thread track carrying the recorder's
//     nested B/E duration events, emitted in proper stack order (begin,
//     children, end), timestamped in simulated cycles with the span's
//     message delta in args.
//   * pid 2 ("channels") — one counter track per channel ("C1 writes", ...)
//     with one counter sample per timeline bucket, so per-channel
//     utilization renders as k stacked area charts.
//   * pid 3 ("host profile", only with a Profiler attached) — per-lane busy
//     swim-lanes (one complete event per lane per cycle-batch window) plus
//     barrier wait/commit counter tracks, timestamped in cumulative host
//     nanoseconds.
//
// Timestamps on pids 1-2 are simulated cycles, not host time — those tracks
// read only deterministic state, so the trace of a deterministic run is
// byte-identical across engines, thread counts and repetitions. Pid 3 is
// the one exception: it is host telemetry (wall-clock), carried in the same
// document but excluded from the byte-identical contract — the profiled and
// unprofiled documents are compared only after `mcbsim strip-host`-style
// pruning. The output is strict RFC 8259 JSON either way (tests parse it
// back with util::json).
#pragma once

#include <string>

#include "mcb/sim_config.hpp"
#include "mcb/stats.hpp"

namespace mcb::obs {

class Recorder;
class Timeline;
class Profiler;

/// Renders the trace-event JSON document. Any collector may be null (its
/// tracks are simply absent). `cfg` supplies p and k for the header;
/// `profiler` adds the wall-clock pid 3 (host telemetry — see above).
std::string chrome_trace_json(const RunStats& stats, const SimConfig& cfg,
                              const Recorder* spans, const Timeline* timeline,
                              const Profiler* profiler = nullptr);

/// One RunStats as a JSON object — the "stats" member of `mcbsim
/// sort/select --json` and of the serving report. Strict RFC 8259: the
/// double fields (cycles_per_sec, arena_hit_rate) go through
/// util::json_double, so a non-finite value renders as 0 rather than an
/// unparseable bare `nan`/`inf` token.
std::string run_stats_json(const RunStats& stats);

}  // namespace mcb::obs
