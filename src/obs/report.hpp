// Deterministic Markdown run reports from mcbsim's machine-readable output.
//
// `mcbsim report <run.json|sweep.json>` feeds a previously captured
// --json document back through this renderer: phase tables, span
// aggregates, per-channel utilization sparklines (from the --obs timeline)
// and measured-vs-theory ratios recomputed from src/theory. The renderer
// reads only deterministic fields — never sim_wall_ns, cycles_per_sec or
// other host-side timing — so the report of a given logical run is
// byte-identical across repetitions, engines and sweep thread counts
// (tools/ci.sh cmp's two independent invocations to pin this).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace mcb::obs {

/// ASCII sparkline of `values` scaled to [0, max(values)], one character
/// per value (10 intensity levels, ' ' = zero). Deterministic.
std::string spark(const std::vector<double>& values);

/// Renders the Markdown report for a parsed mcbsim --json document: either
/// a single run (sort/select) or a sweep. Throws std::invalid_argument when
/// the document is neither.
std::string report_markdown(const util::JsonValue& doc);

}  // namespace mcb::obs
