#include "obs/span.hpp"

#include <algorithm>
#include <sstream>

namespace mcb::obs {

void Recorder::on_span_begin(std::string_view name, Cycle cycle,
                             std::uint64_t messages) {
  if (records_.size() >= capacity_) {
    // Keep the stream balanced: push a sentinel so the matching end is
    // swallowed rather than closing an unrelated span.
    ++dropped_;
    stack_.push_back(kNoParent);
    return;
  }
  SpanRecord rec;
  rec.name.assign(name);
  rec.parent = stack_.empty() ? kNoParent : stack_.back();
  rec.depth = stack_.size();
  rec.begin_cycle = cycle;
  rec.begin_messages = messages;
  max_depth_ = std::max(max_depth_, rec.depth);
  stack_.push_back(records_.size());
  records_.push_back(std::move(rec));
}

void Recorder::on_span_end(Cycle cycle, std::uint64_t messages) {
  if (stack_.empty()) {
    // Unbalanced end — count it as a drop; reconcile() will flag the
    // stream as ill-formed via the unclosed/over-closed accounting.
    ++dropped_;
    return;
  }
  const std::size_t idx = stack_.back();
  stack_.pop_back();
  if (idx == kNoParent) return;  // end of a dropped span
  SpanRecord& rec = records_[idx];
  rec.end_cycle = cycle;
  rec.end_messages = messages;
  rec.closed = true;
}

bool Recorder::well_formed() const {
  if (!stack_.empty()) return false;
  return std::all_of(records_.begin(), records_.end(),
                     [](const SpanRecord& r) { return r.closed; });
}

std::vector<SpanSummary> Recorder::summarize() const {
  std::vector<SpanSummary> out;
  for (const auto& rec : records_) {
    if (!rec.closed) continue;
    auto it = std::find_if(out.begin(), out.end(), [&](const SpanSummary& s) {
      return s.name == rec.name;
    });
    if (it == out.end()) {
      out.push_back(SpanSummary{rec.name, 0, 0, 0});
      it = out.end() - 1;
    }
    ++it->count;
    it->cycles += rec.cycles();
    it->messages += rec.messages();
  }
  return out;
}

std::vector<std::string> Recorder::reconcile(const RunStats& stats) const {
  std::vector<std::string> problems;
  if (!well_formed()) {
    std::ostringstream os;
    os << "span stream ill-formed: " << stack_.size() << " span(s) left open"
       << " and "
       << std::count_if(records_.begin(), records_.end(),
                        [](const SpanRecord& r) { return !r.closed; })
       << " record(s) never closed";
    problems.push_back(os.str());
  }
  const auto sums = summarize();
  for (const auto& ph : stats.phases) {
    const auto it =
        std::find_if(sums.begin(), sums.end(), [&](const SpanSummary& s) {
          return s.name == ph.name;
        });
    if (it == sums.end()) continue;  // phase not instrumented with spans
    if (it->cycles != ph.cycles || it->messages != ph.messages) {
      std::ostringstream os;
      os << "phase '" << ph.name << "': PhaseStats says " << ph.cycles
         << " cycles / " << ph.messages << " messages but spans total "
         << it->cycles << " / " << it->messages;
      problems.push_back(os.str());
    }
  }
  return problems;
}

}  // namespace mcb::obs
