#include "obs/profiler.hpp"

#include <algorithm>
#include <sstream>

#include "util/json.hpp"
#include "util/table.hpp"

namespace mcb::obs {

namespace {

/// Histogram quantile block shared by json() renderings:
/// {"count": n, "p50": ..., "p95": ..., "p99": ..., "max": ...}.
void hist_json(std::ostream& os, const Histogram& h) {
  os << "{\"count\":" << h.count() << ",\"p50\":" << util::json_double(h.p50())
     << ",\"p95\":" << util::json_double(h.p95())
     << ",\"p99\":" << util::json_double(h.p99())
     << ",\"max\":" << util::json_double(h.max()) << '}';
}

double ms(std::uint64_t ns) { return static_cast<double>(ns) / 1e6; }

}  // namespace

Profiler::Profiler(Clock* clock, std::size_t batch_cycles,
                   std::size_t batch_capacity, std::size_t sample_capacity)
    : clock_(clock != nullptr ? clock : &default_clock()),
      batch_cycles_(batch_cycles == 0 ? 1 : batch_cycles),
      batch_capacity_(batch_capacity),
      sample_capacity_(sample_capacity) {}

std::uint64_t Profiler::pool_busy_sum() const {
  if (pool_busy_ == nullptr) return 0;
  std::uint64_t sum = 0;
  for (std::uint64_t v : *pool_busy_) sum += v;
  return sum;
}

void Profiler::begin_run(std::size_t lanes,
                         const std::vector<std::uint64_t>* pool_busy_ns) {
  lanes_ = std::max(lanes_, lanes == 0 ? std::size_t{1} : lanes);
  if (lane_busy_total_.size() < lanes_) lane_busy_total_.resize(lanes_, 0);
  pool_busy_ = pool_busy_ns;
  run_lane_base_.assign(pool_busy_ != nullptr ? pool_busy_->size() : 0, 0);
  if (pool_busy_ != nullptr) {
    run_lane_base_.assign(pool_busy_->begin(), pool_busy_->end());
  }
  ++runs_;
  run_t0_ = clock_->now_ns();
  run_open_ = true;
  open_window();
}

void Profiler::end_run() {
  if (!run_open_) return;
  close_window();
  run_wall_ns_ += clock_->now_ns() - run_t0_;
  if (pool_busy_ != nullptr) {
    const std::size_t n =
        std::min(pool_busy_->size(), lane_busy_total_.size());
    for (std::size_t l = 0; l < n; ++l) {
      const std::uint64_t base = l < run_lane_base_.size()
                                     ? run_lane_base_[l]
                                     : std::uint64_t{0};
      lane_busy_total_[l] += (*pool_busy_)[l] - base;
    }
  }
  pool_busy_ = nullptr;
  run_open_ = false;
}

void Profiler::record_commit(std::uint64_t ns) {
  ++commits_;
  commit_ns_ += ns;
  window_commit_ns_ += ns;
}

void Profiler::barrier_begin() {
  barrier_t0_ = clock_->now_ns();
  barrier_busy_base_ = pool_busy_sum();
}

Profiler::Site& Profiler::site(const char* name) {
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    if (sites_[i].name == name) {
      last_site_ = i;
      return sites_[i];
    }
  }
  last_site_ = sites_.size();
  sites_.push_back(Site{name, 0, 0, 0, 0, 0, 0});
  return sites_.back();
}

void Profiler::barrier_end(const char* site_name, bool pooled) {
  const std::uint64_t now = clock_->now_ns();
  const std::uint64_t wall = now - barrier_t0_;
  // Inline passes run wholly on the coordinator: busy is the wall time and
  // nothing waited. Pooled passes read the per-lane busy counters the pool
  // accumulated inside the barrier; the aggregate idle is what the lanes
  // spent parked at the barrier (plus dispatch/wake latency).
  const std::uint64_t busy =
      pooled ? pool_busy_sum() - barrier_busy_base_ : wall;
  const std::size_t lanes_used = pooled ? lanes_ : 1;
  const std::uint64_t span = wall * lanes_used;
  const std::uint64_t wait = span > busy ? span - busy : 0;

  Site& s = site(site_name);
  ++s.barriers;
  if (pooled) ++s.pooled;
  s.dispatch_ns += wall;
  s.busy_ns += busy;
  s.wait_ns += wait;

  window_dispatch_ns_ += wall;
  window_wait_ns_ += wait;
  if (!pooled) {
    window_inline_ns_ += wall;
    inline_busy_ns_ += wall;
  }

  if (barrier_wait_hist_.count() < sample_capacity_) {
    barrier_wait_hist_.record(static_cast<double>(wait));
  } else {
    ++samples_dropped_;
  }
  merge_t0_ = now;
}

void Profiler::merge_end() {
  if (last_site_ >= sites_.size()) return;
  const std::uint64_t m = clock_->now_ns() - merge_t0_;
  sites_[last_site_].merge_ns += m;
  window_merge_ns_ += m;
}

void Profiler::cycle_end() {
  ++cycles_;
  ++window_cycles_;
  if (window_cycles_ >= batch_cycles_) {
    close_window();
    open_window();
  }
}

void Profiler::open_window() {
  window_open_ = true;
  window_t0_ = clock_->now_ns();
  window_first_cycle_ = cycles_;
  window_cycles_ = 0;
  window_commit_ns_ = 0;
  window_dispatch_ns_ = 0;
  window_wait_ns_ = 0;
  window_merge_ns_ = 0;
  window_inline_ns_ = 0;
  window_lane_base_.clear();
  if (pool_busy_ != nullptr) {
    window_lane_base_.assign(pool_busy_->begin(), pool_busy_->end());
  }
}

void Profiler::close_window() {
  if (!window_open_) return;
  window_open_ = false;
  // A window with no cycles and no work (e.g. the tail of a run whose last
  // window closed exactly at the run's final cycle) is noise, not data.
  if (window_cycles_ == 0 && window_dispatch_ns_ == 0 &&
      window_commit_ns_ == 0) {
    return;
  }
  const std::uint64_t wall = clock_->now_ns() - window_t0_;
  if (batch_wall_hist_.count() < sample_capacity_) {
    batch_wall_hist_.record(static_cast<double>(wall));
  } else {
    ++samples_dropped_;
  }
  if (batches_.size() >= batch_capacity_) {
    ++batches_dropped_;
    return;
  }
  Batch b;
  b.first_cycle = window_first_cycle_;
  b.cycles = window_cycles_;
  b.wall_ns = wall;
  b.commit_ns = window_commit_ns_;
  b.dispatch_ns = window_dispatch_ns_;
  b.wait_ns = window_wait_ns_;
  b.merge_ns = window_merge_ns_;
  b.lane_busy_ns.assign(lanes_, 0);
  if (pool_busy_ != nullptr) {
    const std::size_t n = std::min(pool_busy_->size(), b.lane_busy_ns.size());
    for (std::size_t l = 0; l < n; ++l) {
      const std::uint64_t base = l < window_lane_base_.size()
                                     ? window_lane_base_[l]
                                     : std::uint64_t{0};
      b.lane_busy_ns[l] = (*pool_busy_)[l] - base;
    }
  }
  if (!b.lane_busy_ns.empty()) b.lane_busy_ns[0] += window_inline_ns_;
  batches_.push_back(std::move(b));
}

std::vector<std::uint64_t> Profiler::lane_busy_totals() const {
  std::vector<std::uint64_t> totals = lane_busy_total_;
  if (totals.size() < lanes_) totals.resize(lanes_, 0);
  if (!totals.empty()) totals[0] += inline_busy_ns_;
  return totals;
}

double Profiler::imbalance_ratio() const {
  const auto totals = lane_busy_totals();
  std::uint64_t sum = 0, maxv = 0;
  for (std::uint64_t v : totals) {
    sum += v;
    maxv = std::max(maxv, v);
  }
  if (sum == 0 || totals.empty()) return 0.0;
  const double mean =
      static_cast<double>(sum) / static_cast<double>(totals.size());
  return static_cast<double>(maxv) / mean;
}

std::string Profiler::json() const {
  std::ostringstream os;
  os << "{\"runs\":" << runs_ << ",\"lanes\":" << lanes_
     << ",\"cycles\":" << cycles_ << ",\"run_wall_ns\":" << run_wall_ns_
     << ",\"commits\":" << commits_ << ",\"commit_ns\":" << commit_ns_
     << ",\"batch_cycles\":" << batch_cycles_
     << ",\"batches\":" << batches_.size()
     << ",\"batches_dropped\":" << batches_dropped_
     << ",\"samples_dropped\":" << samples_dropped_
     << ",\"imbalance_ratio\":" << util::json_double(imbalance_ratio())
     << ",\"lane_busy_ns\":[";
  const auto totals = lane_busy_totals();
  for (std::size_t l = 0; l < totals.size(); ++l) {
    if (l) os << ',';
    os << totals[l];
  }
  os << "],\"sites\":[";
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    const Site& s = sites_[i];
    if (i) os << ',';
    os << "{\"name\":\"" << util::json_escape(s.name)
       << "\",\"barriers\":" << s.barriers << ",\"pooled\":" << s.pooled
       << ",\"dispatch_ns\":" << s.dispatch_ns << ",\"busy_ns\":" << s.busy_ns
       << ",\"wait_ns\":" << s.wait_ns << ",\"merge_ns\":" << s.merge_ns
       << '}';
  }
  os << "],\"barrier_wait_ns\":";
  hist_json(os, barrier_wait_hist_);
  os << ",\"batch_wall_ns\":";
  hist_json(os, batch_wall_hist_);
  os << '}';
  return os.str();
}

std::string Profiler::text() const {
  std::ostringstream os;
  os << "host profile: " << runs_ << " run(s), " << lanes_ << " lane(s), "
     << cycles_ << " cycles, " << util::json_double(ms(run_wall_ns_))
     << " ms wall\n"
     << "  commit: " << commits_ << " commit(s), "
     << util::json_double(ms(commit_ns_)) << " ms\n"
     << "  lane imbalance (max/mean busy): "
     << util::json_double(imbalance_ratio()) << "\n";
  if (!sites_.empty()) {
    util::Table t;
    t.header({"barrier", "count", "pooled", "dispatch ms", "busy ms",
              "wait ms", "merge ms"});
    for (const Site& s : sites_) {
      t.row({util::Table::txt(s.name), util::Table::num(s.barriers),
             util::Table::num(s.pooled), util::Table::num(ms(s.dispatch_ns), 3),
             util::Table::num(ms(s.busy_ns), 3),
             util::Table::num(ms(s.wait_ns), 3),
             util::Table::num(ms(s.merge_ns), 3)});
    }
    os << t;
  }
  os << "  barrier wait ns: n=" << barrier_wait_hist_.count()
     << " p50=" << util::json_double(barrier_wait_hist_.p50())
     << " p95=" << util::json_double(barrier_wait_hist_.p95())
     << " p99=" << util::json_double(barrier_wait_hist_.p99())
     << " max=" << util::json_double(barrier_wait_hist_.max()) << "\n"
     << "  batch wall ns (" << batch_cycles_
     << "-cycle windows): n=" << batch_wall_hist_.count()
     << " p50=" << util::json_double(batch_wall_hist_.p50())
     << " p95=" << util::json_double(batch_wall_hist_.p95())
     << " p99=" << util::json_double(batch_wall_hist_.p99())
     << " max=" << util::json_double(batch_wall_hist_.max()) << "\n";
  return os.str();
}

}  // namespace mcb::obs
