#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/span.hpp"
#include "obs/timeline.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace mcb::obs {

namespace {

/// Deterministic double rendering (mirrors harness::sweep_json's fmt),
/// guarded for JSON embedding: NaN/Inf have no JSON literal, so non-finite
/// values render as 0 (util::json_double).
std::string fmt(double v) { return util::json_double(v); }

}  // namespace

double Histogram::quantile(double q) const {
  if (values_.empty()) return 0.0;
  if (dirty_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    dirty_ = false;
    ++sort_passes_;
  }
  const auto count = static_cast<double>(sorted_.size());
  auto rank = static_cast<std::size_t>(std::ceil(q * count));
  if (rank == 0) rank = 1;
  return sorted_[rank - 1];
}

double Histogram::max() const {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

void Metrics::add(const std::string& name, std::uint64_t delta) {
  counters_[name] += delta;
}

void Metrics::set(const std::string& name, double value) {
  gauges_[name] = value;
}

void Metrics::observe(const std::string& name, double value) {
  histograms_[name].record(value);
}

std::uint64_t Metrics::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::string Metrics::render() const {
  std::ostringstream os;
  if (!counters_.empty() || !gauges_.empty()) {
    util::Table t;
    t.header({"metric", "value"});
    for (const auto& [name, v] : counters_) {
      t.row({util::Table::txt(name), util::Table::num(v)});
    }
    for (const auto& [name, v] : gauges_) {
      t.row({util::Table::txt(name), util::Table::num(v, 3)});
    }
    os << t;
  }
  if (!histograms_.empty()) {
    util::Table t;
    t.header({"histogram", "count", "p50", "p95", "max"});
    for (const auto& [name, h] : histograms_) {
      t.row({util::Table::txt(name), util::Table::num(h.count()),
             util::Table::num(h.p50(), 1), util::Table::num(h.p95(), 1),
             util::Table::num(h.max(), 1)});
    }
    os << t;
  }
  return os.str();
}

std::string Metrics::json() const {
  std::ostringstream os;
  os << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters_) {
    os << (first ? "" : ", ") << '"' << util::json_escape(name)
       << "\": " << v;
    first = false;
  }
  os << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges_) {
    os << (first ? "" : ", ") << '"' << util::json_escape(name)
       << "\": " << fmt(v);
    first = false;
  }
  os << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ", ") << '"' << util::json_escape(name)
       << "\": {\"count\": " << h.count() << ", \"p50\": " << fmt(h.p50())
       << ", \"p95\": " << fmt(h.p95()) << ", \"max\": " << fmt(h.max())
       << '}';
    first = false;
  }
  os << "}}";
  return os.str();
}

Metrics collect_metrics(const RunStats& stats, const Recorder* spans,
                        const Timeline* timeline) {
  Metrics m;
  m.add("run.cycles", stats.cycles);
  m.add("run.messages", stats.messages);
  m.add("run.peak_aux_words", stats.max_peak_aux());

  if (timeline != nullptr) {
    m.add("timeline.busy_cycles", timeline->busy_cycles());
    if (timeline->finalized()) {
      m.add("timeline.idle_cycles", timeline->idle_cycles());
    }
    m.add("timeline.reads", timeline->total_reads());
    m.add("timeline.silent_reads", timeline->total_silent_reads());
    m.add("timeline.multi_reads", timeline->total_multi_reads());
    const auto& per_channel = timeline->writes_per_channel();
    for (std::size_t c = 0; c < per_channel.size(); ++c) {
      m.add("channel.C" + std::to_string(c + 1) + ".writes", per_channel[c]);
    }
    // Per-bucket utilization of the busiest view we have: writes per bucket
    // as a fraction of bucket width * k (the theoretical write capacity).
    const double cap = static_cast<double>(timeline->bucket_cycles()) *
                       static_cast<double>(timeline->k());
    for (const auto& b : timeline->buckets()) {
      std::uint64_t writes = 0;
      for (std::uint64_t w : b.writes) writes += w;
      m.observe("bucket.write_utilization",
                cap > 0.0 ? static_cast<double>(writes) / cap : 0.0);
    }
  }

  if (spans != nullptr) {
    m.add("spans.recorded", spans->records().size());
    m.add("spans.dropped", spans->dropped());
    m.add("spans.max_depth", spans->max_depth());
    for (const auto& s : spans->summarize()) {
      m.add("span." + s.name + ".count", s.count);
      m.add("span." + s.name + ".cycles", s.cycles);
      m.add("span." + s.name + ".messages", s.messages);
      m.observe("span.cycles", static_cast<double>(s.cycles));
    }
  }
  return m;
}

}  // namespace mcb::obs
