// A small metrics registry: counters, gauges and exact-quantile histograms.
//
// The registry is the bridge between the raw telemetry collectors (span
// Recorder, Timeline) and the renderers/exporters: collect_metrics() folds
// a finished run into named metrics, and render()/json() emit them with
// deterministic ordering (name-sorted) and formatting, so two runs of the
// same deterministic simulation produce byte-identical output.
//
// Histograms are exact, not sketched: the consumers record at most
// O(max_buckets + spans) values per run, so storing them and computing
// nearest-rank p50/p95 plus the true max costs less than a sketch would.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mcb/stats.hpp"

namespace mcb::obs {

class Recorder;
class Timeline;

/// Exact-quantile histogram (nearest-rank, matching harness::summarize).
/// Quantile queries sort once and serve every subsequent query from the
/// cached order until the next record() — the serving layer records one
/// sample per query and renders several quantiles per report, which the
/// old copy-and-sort-per-call behaviour made quadratic.
class Histogram {
 public:
  void record(double v) {
    values_.push_back(v);
    dirty_ = true;
  }
  std::uint64_t count() const { return values_.size(); }
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }
  double max() const;
  /// Nearest-rank quantile: ceil(q * count)-th smallest; 0 when empty.
  double quantile(double q) const;
  /// Samples in record order (exporters that need the raw series).
  const std::vector<double>& values() const { return values_; }
  /// Times the cache actually sorted — telemetry for the sort-once
  /// contract (tests assert it stays at 1 across repeated quantiles).
  std::uint64_t sort_passes() const { return sort_passes_; }

 private:
  std::vector<double> values_;
  // Cache shared by the const quantile accessors, rebuilt only after new
  // samples arrive.
  mutable std::vector<double> sorted_;
  mutable bool dirty_ = false;
  mutable std::uint64_t sort_passes_ = 0;
};

class Metrics {
 public:
  /// Counter: monotone uint64, add() accumulates.
  void add(const std::string& name, std::uint64_t delta);
  /// Gauge: last-write-wins double.
  void set(const std::string& name, double value);
  /// Histogram sample.
  void observe(const std::string& name, double value);

  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  std::uint64_t counter(const std::string& name) const;

  /// Deterministic aligned-table rendering (counters, gauges, then
  /// histograms with count/p50/p95/max columns).
  std::string render() const;

  /// Deterministic JSON object:
  /// {"counters": {...}, "gauges": {...},
  ///  "histograms": {"x": {"count": n, "p50": ..., "p95": ..., "max": ...}}}
  std::string json() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Folds a finished run into the registry: totals from `stats`, per-channel
/// and idle/busy accounting from the timeline, per-phase aggregates from
/// the span recorder. Either collector may be null.
Metrics collect_metrics(const RunStats& stats, const Recorder* spans,
                        const Timeline* timeline);

}  // namespace mcb::obs
