// Host-side engine profiler: a wall-clock flight recorder for the parallel
// hot path and the serving loop.
//
// Every other collector in src/obs runs in *simulated* time; this one runs
// in *host* time. It answers the question docs/ENGINE.md's cost model asks
// analytically — where does a parallel cycle's wall clock go, B·(dispatch +
// merge) + commit — by measurement: per cycle-batch it records the serial
// commit time (Network::commit_staged_writes), per-barrier dispatch / wait /
// merge time, and per-lane busy time from the worker pool, from which it
// derives the lane-imbalance ratio (max-lane busy / mean-lane busy).
//
// Attachment mirrors the SpanSink pattern: ride on SimConfig::profiler,
// nullptr by default, so a disabled profiler costs one predicted branch per
// instrumentation site and a missing one costs nothing. Wall time is read
// exclusively through the obs::Clock seam (obs/clock.hpp) — tests inject a
// FakeClock to pin the arithmetic, and the model directories stay free of
// direct *_clock::now() calls (mcblint MCB-L2).
//
// Determinism contract: everything recorded here is host telemetry. It is
// serialized only inside `host_profile` JSON subtrees (and the wall-clock
// pid of the Perfetto export), which are explicitly excluded from the
// byte-identical determinism contract; `mcbsim strip-host` removes them so
// CI can cmp profiled against unprofiled runs. See
// docs/OBSERVABILITY.md ("Host time vs simulated time").
//
// Memory is bounded the same way the span Recorder's is: barrier-wait and
// batch-wall histogram samples stop at a capacity cap (excess counted in
// samples_dropped()), and closed cycle-batch windows stop at
// batch_capacity (batches_dropped()). Aggregate counters keep accumulating
// past both caps.
//
// One profiler may span several Network::run() calls (the serving loop
// reset()s and re-runs one network per query batch): begin_run()/end_run()
// bracket each run and everything accumulates across them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"

namespace mcb::obs {

class Profiler {
 public:
  /// Aggregate for one barrier site, in first-appearance order. The
  /// parallel engine has three: "init" (the initial resume pass), "resume"
  /// (the per-cycle fused read+resume pass) and "read" (the dedicated read
  /// pass of traced runs).
  struct Site {
    std::string name;
    std::uint64_t barriers = 0;     ///< dispatches through this site
    std::uint64_t pooled = 0;       ///< of which fanned out to the pool
    std::uint64_t dispatch_ns = 0;  ///< total wall time of the fan-out calls
    std::uint64_t busy_ns = 0;      ///< summed lane busy time inside them
    std::uint64_t wait_ns = 0;      ///< aggregate lane idle: lanes*wall-busy
    std::uint64_t merge_ns = 0;     ///< serial merge after the barrier
  };

  /// One closed cycle-batch window.
  struct Batch {
    std::uint64_t first_cycle = 0;  ///< profiler-cumulative cycle index
    std::uint64_t cycles = 0;       ///< cycles in the window
    std::uint64_t wall_ns = 0;      ///< window wall clock
    std::uint64_t commit_ns = 0;
    std::uint64_t dispatch_ns = 0;
    std::uint64_t wait_ns = 0;
    std::uint64_t merge_ns = 0;
    /// Per-lane busy time inside the window (inline coordinator work is
    /// folded into lane 0 — it runs there).
    std::vector<std::uint64_t> lane_busy_ns;
  };

  /// `clock` nullptr means obs::default_clock(). `batch_cycles` sets the
  /// cycle-batch window width; a window also closes at end_run(), so short
  /// runs still produce at least one batch sample.
  explicit Profiler(Clock* clock = nullptr, std::size_t batch_cycles = 256,
                    std::size_t batch_capacity = 1u << 12,
                    std::size_t sample_capacity = 1u << 16);

  Clock& clock() const { return *clock_; }
  std::size_t batch_cycles() const { return batch_cycles_; }

  // --- engine hooks (Network; each guarded by one profiler != nullptr
  // branch at the call site) ---

  /// A run starts: `lanes` is the pool width (1 when serial or no pool);
  /// `pool_busy_ns` points at WorkerPool::lane_busy_ns() for the run, or
  /// nullptr without a pool. The referent must stay valid until end_run().
  void begin_run(std::size_t lanes,
                 const std::vector<std::uint64_t>* pool_busy_ns);
  void end_run();

  /// Serial commit_staged_writes wall time for one cycle.
  void record_commit(std::uint64_t ns);

  /// Brackets one barrier (a dispatch_segments call). `pooled` says whether
  /// the pass fanned out to the pool or ran inline on the coordinator.
  void barrier_begin();
  void barrier_end(const char* site, bool pooled);

  /// Charges the wall time since the last barrier_end to that barrier's
  /// serial merge (the stripe-merge loop, or trace emission).
  void merge_end();

  /// A simulated cycle completed; closes the window every batch_cycles.
  void cycle_end();

  // --- accessors (exporters, renderers, tests) ---

  std::size_t lanes() const { return lanes_; }
  std::uint64_t runs() const { return runs_; }
  std::uint64_t cycles() const { return cycles_; }
  std::uint64_t run_wall_ns() const { return run_wall_ns_; }
  std::uint64_t commits() const { return commits_; }
  std::uint64_t commit_ns() const { return commit_ns_; }
  const std::vector<Site>& sites() const { return sites_; }
  const std::vector<Batch>& batches() const { return batches_; }
  std::uint64_t batches_dropped() const { return batches_dropped_; }
  const Histogram& barrier_wait_hist() const { return barrier_wait_hist_; }
  const Histogram& batch_wall_hist() const { return batch_wall_hist_; }
  std::uint64_t samples_dropped() const { return samples_dropped_; }

  /// Run-level per-lane busy totals, inline coordinator work folded into
  /// lane 0. Size lanes() (empty before the first run).
  std::vector<std::uint64_t> lane_busy_totals() const;

  /// max-lane busy / mean-lane busy over lane_busy_totals(); 0 when nothing
  /// was measured, 1.0 for a perfectly balanced (or single-lane) run.
  double imbalance_ratio() const;

  /// The `host_profile` JSON subtree (strict RFC 8259 object). Host
  /// telemetry — quarantined from the determinism contract.
  std::string json() const;

  /// Aligned text rendering for CLI output (same content as json()).
  std::string text() const;

 private:
  std::uint64_t pool_busy_sum() const;
  void open_window();
  void close_window();
  Site& site(const char* name);

  Clock* clock_;
  std::size_t batch_cycles_;
  std::size_t batch_capacity_;
  std::size_t sample_capacity_;

  // Run state.
  const std::vector<std::uint64_t>* pool_busy_ = nullptr;
  std::vector<std::uint64_t> run_lane_base_;  // pool busy at begin_run
  std::uint64_t run_t0_ = 0;
  bool run_open_ = false;

  // Barrier state.
  std::uint64_t barrier_t0_ = 0;
  std::uint64_t barrier_busy_base_ = 0;
  std::uint64_t merge_t0_ = 0;
  std::size_t last_site_ = static_cast<std::size_t>(-1);

  // Window state.
  bool window_open_ = false;
  std::uint64_t window_t0_ = 0;
  std::uint64_t window_first_cycle_ = 0;
  std::uint64_t window_cycles_ = 0;
  std::uint64_t window_commit_ns_ = 0;
  std::uint64_t window_dispatch_ns_ = 0;
  std::uint64_t window_wait_ns_ = 0;
  std::uint64_t window_merge_ns_ = 0;
  std::uint64_t window_inline_ns_ = 0;  // inline barrier work -> lane 0
  std::vector<std::uint64_t> window_lane_base_;

  // Accumulated totals.
  std::size_t lanes_ = 1;
  std::uint64_t runs_ = 0;
  std::uint64_t cycles_ = 0;
  std::uint64_t run_wall_ns_ = 0;
  std::uint64_t commits_ = 0;
  std::uint64_t commit_ns_ = 0;
  std::uint64_t inline_busy_ns_ = 0;  // run-level inline total (lane 0)
  std::vector<std::uint64_t> lane_busy_total_;
  std::vector<Site> sites_;
  std::vector<Batch> batches_;
  std::uint64_t batches_dropped_ = 0;
  Histogram barrier_wait_hist_;
  Histogram batch_wall_hist_;
  std::uint64_t samples_dropped_ = 0;
};

}  // namespace mcb::obs
