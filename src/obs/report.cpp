#include "obs/report.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "theory/bounds.hpp"
#include "util/table.hpp"
#include "util/workload.hpp"

namespace mcb::obs {

namespace {

/// Ten intensity levels; index 0 renders as '.' only for nonzero values so
/// "no activity at all" stays visually blank.
constexpr const char kLevels[] = ".:-=+*#%@@";

double num_or(const util::JsonValue& obj, const std::string& key,
              double fallback) {
  const auto* v = obj.find(key);
  if (v == nullptr || v->kind() != util::JsonValue::Kind::kNumber) {
    return fallback;
  }
  return v->as_number();
}

std::string str_or(const util::JsonValue& obj, const std::string& key,
                   const std::string& fallback) {
  const auto* v = obj.find(key);
  if (v == nullptr || v->kind() != util::JsonValue::Kind::kString) {
    return fallback;
  }
  return v->as_string();
}

std::uint64_t uint_of(double v) {
  return v < 0.0 ? 0 : static_cast<std::uint64_t>(v);
}

util::Shape shape_from_string(const std::string& s) {
  if (s == "zipf") return util::Shape::kZipf;
  if (s == "onehot") return util::Shape::kOneHot;
  if (s == "random") return util::Shape::kRandom;
  if (s == "staircase") return util::Shape::kStaircase;
  return util::Shape::kEven;
}

util::Table::Cell ratio_cell(double measured, double bound) {
  if (bound <= 0.0) return util::Table::txt("n/a");
  return util::Table::num(measured / bound, 2);
}

void fenced(std::ostringstream& os, const std::string& body) {
  os << "```\n" << body << "```\n";
}

void phases_section(std::ostringstream& os, const util::JsonValue& stats) {
  const auto* phases = stats.find("phases");
  if (phases == nullptr || !phases->is_array() || phases->size() == 0) return;
  const double total_cycles = num_or(stats, "cycles", 0.0);
  const double total_messages = num_or(stats, "messages", 0.0);
  os << "\n## Phases\n\n";
  util::Table t;
  t.header({"phase", "first cycle", "cycles", "cyc %", "messages", "msg %"});
  for (const auto& ph : phases->items()) {
    const double cyc = num_or(ph, "cycles", 0.0);
    const double msg = num_or(ph, "messages", 0.0);
    t.row({util::Table::txt(str_or(ph, "name", "?")),
           util::Table::num(uint_of(num_or(ph, "first_cycle", 0.0))),
           util::Table::num(uint_of(cyc)),
           total_cycles > 0.0 ? util::Table::num(100.0 * cyc / total_cycles, 1)
                              : util::Table::txt("n/a"),
           util::Table::num(uint_of(msg)),
           total_messages > 0.0
               ? util::Table::num(100.0 * msg / total_messages, 1)
               : util::Table::txt("n/a")});
  }
  t.row({util::Table::txt("TOTAL"), util::Table::num(0),
         util::Table::num(uint_of(total_cycles)), util::Table::num(100.0, 1),
         util::Table::num(uint_of(total_messages)),
         util::Table::num(100.0, 1)});
  fenced(os, t.str());
}

void spans_section(std::ostringstream& os, const util::JsonValue& doc) {
  const auto* obs = doc.find("obs");
  if (obs == nullptr) return;
  const auto* spans = obs->find("spans");
  if (spans == nullptr || !spans->is_array() || spans->size() == 0) return;
  os << "\n## Spans\n\n";
  util::Table t;
  t.header({"span", "count", "cycles", "messages"});
  for (const auto& s : spans->items()) {
    t.row({util::Table::txt(str_or(s, "name", "?")),
           util::Table::num(uint_of(num_or(s, "count", 0.0))),
           util::Table::num(uint_of(num_or(s, "cycles", 0.0))),
           util::Table::num(uint_of(num_or(s, "messages", 0.0)))});
  }
  fenced(os, t.str());
}

void timeline_section(std::ostringstream& os, const util::JsonValue& doc,
                      double total_cycles) {
  const auto* obs = doc.find("obs");
  if (obs == nullptr) return;
  const auto* tl = obs->find("timeline");
  if (tl == nullptr || !tl->is_object()) return;
  const auto* channels = tl->find("channels");
  if (channels == nullptr || !channels->is_array()) return;

  os << "\n## Channel utilization\n\n";
  os << "bucket width " << uint_of(num_or(*tl, "bucket_cycles", 1.0))
     << " cycles; busy " << uint_of(num_or(*tl, "busy_cycles", 0.0))
     << " / idle " << uint_of(num_or(*tl, "idle_cycles", 0.0))
     << " cycles\n\n";
  util::Table t;
  t.header({"channel", "writes", "write %", "timeline"});
  for (std::size_t c = 0; c < channels->size(); ++c) {
    const auto& ch = channels->at(c);
    const double writes = num_or(ch, "writes", 0.0);
    std::vector<double> buckets;
    const auto* bs = ch.find("buckets");
    if (bs != nullptr && bs->is_array()) {
      for (const auto& b : bs->items()) buckets.push_back(b.as_number());
    }
    std::string label = "C";
    label += std::to_string(c + 1);
    t.row({util::Table::txt(std::move(label)),
           util::Table::num(uint_of(writes)),
           total_cycles > 0.0
               ? util::Table::num(100.0 * writes / total_cycles, 1)
               : util::Table::txt("n/a"),
           util::Table::txt(spark(buckets))});
  }
  fenced(os, t.str());
}

void theory_section(std::ostringstream& os, const util::JsonValue& doc,
                    const util::JsonValue& stats, bool selection) {
  const auto* config = doc.find("config");
  if (config == nullptr || !config->is_object()) return;
  const auto n = static_cast<std::size_t>(num_or(*config, "n", 0.0));
  const auto p = static_cast<std::size_t>(num_or(*config, "p", 0.0));
  const auto k = static_cast<std::size_t>(num_or(*config, "k", 0.0));
  if (n == 0 || p == 0 || k == 0) return;
  const auto seed =
      static_cast<std::uint64_t>(num_or(*config, "seed", 1.0));
  const auto shape = shape_from_string(str_or(*config, "shape", "even"));
  const auto sizes = util::cardinalities(n, p, shape, seed);

  const double cycles = num_or(stats, "cycles", 0.0);
  const double messages = num_or(stats, "messages", 0.0);

  os << "\n## Measured vs theory\n\n";
  util::Table t;
  t.header({"quantity", "measured", "bound", "ratio"});
  if (selection) {
    const auto d = static_cast<std::size_t>(
        num_or(*config, "rank", static_cast<double>((n + 1) / 2)));
    const double msg_lower = theory::selection_messages_lower(sizes);
    const double cyc_lower = theory::selection_cycles_lower(sizes, k);
    const double msg_term = theory::selection_messages_term(p, k, n);
    const double cyc_term = theory::selection_cycles_term(p, k, n);
    t.row({util::Table::txt("messages vs Thm 1 lower"),
           util::Table::num(uint_of(messages)),
           util::Table::num(msg_lower, 1), ratio_cell(messages, msg_lower)});
    t.row({util::Table::txt("messages vs Thm 2 lower (rank " +
                            std::to_string(d) + ")"),
           util::Table::num(uint_of(messages)),
           util::Table::num(theory::selection_messages_lower_rank(sizes, d),
                            1),
           ratio_cell(messages,
                      theory::selection_messages_lower_rank(sizes, d))});
    t.row({util::Table::txt("cycles vs Cor 1/2 lower"),
           util::Table::num(uint_of(cycles)), util::Table::num(cyc_lower, 1),
           ratio_cell(cycles, cyc_lower)});
    t.row({util::Table::txt("messages vs Cor 7 Theta term"),
           util::Table::num(uint_of(messages)), util::Table::num(msg_term, 1),
           ratio_cell(messages, msg_term)});
    t.row({util::Table::txt("cycles vs Cor 7 Theta term"),
           util::Table::num(uint_of(cycles)), util::Table::num(cyc_term, 1),
           ratio_cell(cycles, cyc_term)});
  } else {
    std::size_t n_max = 0;
    for (std::size_t s : sizes) n_max = std::max(n_max, s);
    const double msg_lower = theory::sorting_messages_lower(sizes);
    const double cyc_lower = theory::sorting_cycles_lower(sizes, k);
    const double msg_term = theory::sorting_messages_term(n);
    const double cyc_term = theory::sorting_cycles_term(n, k, n_max);
    t.row({util::Table::txt("messages vs Thm 3 lower"),
           util::Table::num(uint_of(messages)),
           util::Table::num(msg_lower, 1), ratio_cell(messages, msg_lower)});
    t.row({util::Table::txt("cycles vs Cor 3/Thm 5 lower"),
           util::Table::num(uint_of(cycles)), util::Table::num(cyc_lower, 1),
           ratio_cell(cycles, cyc_lower)});
    t.row({util::Table::txt("messages vs Cor 6 Theta term"),
           util::Table::num(uint_of(messages)), util::Table::num(msg_term, 1),
           ratio_cell(messages, msg_term)});
    t.row({util::Table::txt("cycles vs Cor 6 Theta term"),
           util::Table::num(uint_of(cycles)), util::Table::num(cyc_term, 1),
           ratio_cell(cycles, cyc_term)});
  }
  fenced(os, t.str());
}

void quantile_line(std::ostringstream& os, const util::JsonValue& h,
                   const std::string& label) {
  os << "- " << label << ": n=" << uint_of(num_or(h, "count", 0.0))
     << ", p50=" << num_or(h, "p50", 0.0) << ", p95=" << num_or(h, "p95", 0.0)
     << ", p99=" << num_or(h, "p99", 0.0) << ", max="
     << num_or(h, "max", 0.0) << "\n";
}

/// Renders the quarantined `host_profile` subtree (present only on runs
/// captured with --profile): commit + per-barrier dispatch/wait/merge
/// breakdown, lane busy totals and the imbalance ratio. Handles both the
/// run-document shape (the profiler object directly) and the serve-document
/// shape (a serving-window envelope wrapping a "profiler" member).
void host_profile_section(std::ostringstream& os,
                          const util::JsonValue& doc) {
  const auto* hp = doc.find("host_profile");
  if (hp == nullptr || !hp->is_object()) return;
  const auto* prof = hp->find("profiler");
  const bool serve_shape = prof != nullptr && prof->is_object();
  if (!serve_shape) prof = hp;

  os << "\n## Host profile\n\n"
     << "Host wall-clock telemetry — quarantined from the determinism "
        "contract (`mcbsim strip-host` removes it).\n\n";
  if (serve_shape) {
    os << "- batch runs: " << uint_of(num_or(*hp, "batch_runs", 0.0)) << "\n";
    if (const auto* bw = hp->find("batch_run_wall_ns");
        bw != nullptr && bw->is_object()) {
      quantile_line(os, *bw, "batch run wall ns");
    }
  }
  const double wall_ns = num_or(*prof, "run_wall_ns", 0.0);
  const double commit_ns = num_or(*prof, "commit_ns", 0.0);
  os << "- runs: " << uint_of(num_or(*prof, "runs", 0.0))
     << ", lanes: " << uint_of(num_or(*prof, "lanes", 0.0))
     << ", cycles: " << uint_of(num_or(*prof, "cycles", 0.0))
     << ", wall: " << wall_ns / 1e6 << " ms\n";
  os << "- serial commit: " << uint_of(num_or(*prof, "commits", 0.0))
     << " commit(s), " << commit_ns / 1e6 << " ms";
  if (wall_ns > 0.0) {
    os << " (" << 100.0 * commit_ns / wall_ns << "% of wall)";
  }
  os << "\n";
  os << "- lane imbalance (max/mean busy): "
     << num_or(*prof, "imbalance_ratio", 0.0) << "\n";

  const auto* sites = prof->find("sites");
  if (sites != nullptr && sites->is_array() && sites->size() > 0) {
    os << "\n";
    util::Table t;
    t.header({"barrier", "count", "pooled", "dispatch ms", "busy ms",
              "wait ms", "merge ms"});
    for (const auto& s : sites->items()) {
      t.row({util::Table::txt(str_or(s, "name", "?")),
             util::Table::num(uint_of(num_or(s, "barriers", 0.0))),
             util::Table::num(uint_of(num_or(s, "pooled", 0.0))),
             util::Table::num(num_or(s, "dispatch_ns", 0.0) / 1e6, 3),
             util::Table::num(num_or(s, "busy_ns", 0.0) / 1e6, 3),
             util::Table::num(num_or(s, "wait_ns", 0.0) / 1e6, 3),
             util::Table::num(num_or(s, "merge_ns", 0.0) / 1e6, 3)});
    }
    fenced(os, t.str());
  }
  if (const auto* h = prof->find("barrier_wait_ns");
      h != nullptr && h->is_object()) {
    quantile_line(os, *h, "barrier wait ns");
  }
  if (const auto* h = prof->find("batch_wall_ns");
      h != nullptr && h->is_object()) {
    quantile_line(os, *h,
                  "batch wall ns (" +
                      std::to_string(uint_of(
                          num_or(*prof, "batch_cycles", 0.0))) +
                      "-cycle windows)");
  }
}

std::string run_report(const util::JsonValue& doc) {
  const auto& stats = doc.at("stats");
  const bool selection = doc.find("filter_phases") != nullptr;
  const std::string algorithm =
      str_or(doc, "algorithm", selection ? "selection" : "?");

  std::ostringstream os;
  os << "# mcbsim run report\n\n";
  os << "- algorithm: `" << algorithm << "`\n";
  if (const auto* config = doc.find("config");
      config != nullptr && config->is_object()) {
    os << "- network: MCB(p=" << uint_of(num_or(*config, "p", 0.0))
       << ", k=" << uint_of(num_or(*config, "k", 0.0))
       << "), n=" << uint_of(num_or(*config, "n", 0.0)) << ", shape="
       << str_or(*config, "shape", "even") << ", seed="
       << uint_of(num_or(*config, "seed", 1.0)) << "\n";
  }
  os << "- cycles: " << uint_of(num_or(stats, "cycles", 0.0)) << "\n";
  os << "- messages: " << uint_of(num_or(stats, "messages", 0.0)) << "\n";
  os << "- peak aux words: "
     << uint_of(num_or(stats, "peak_aux_words", 0.0)) << "\n";
  if (selection) {
    os << "- selected value: " << uint_of(num_or(doc, "value", 0.0))
       << " after " << uint_of(num_or(doc, "filter_phases", 0.0))
       << " filtering phase(s)\n";
  }

  phases_section(os, stats);
  spans_section(os, doc);
  timeline_section(os, doc, num_or(stats, "cycles", 0.0));
  theory_section(os, doc, stats, selection);
  host_profile_section(os, doc);
  return os.str();
}

std::string sweep_report(const util::JsonValue& doc) {
  const auto& header = doc.at("sweep");
  const auto& trials = doc.at("trials");
  const auto& aggregates = doc.at("aggregates");

  std::size_t failed = 0;
  for (const auto& trial : trials.items()) {
    if (!str_or(trial, "error", "").empty()) ++failed;
  }

  std::ostringstream os;
  os << "# mcbsim sweep report\n\n";
  os << "- engine: " << str_or(header, "engine", "?") << ", base seed "
     << uint_of(num_or(header, "base_seed", 0.0)) << ", "
     << uint_of(num_or(header, "seeds", 0.0)) << " seed(s) per point\n";
  os << "- grid points: " << aggregates.size()
     << ", trials: " << trials.size() << ", failed: " << failed << "\n";

  os << "\n## Aggregates\n\n";
  util::Table t;
  t.header({"p", "k", "n", "shape", "algorithm", "trials", "failed",
            "cyc mean", "cyc p95", "msg mean", "msg p95", "cyc/pred",
            "msg/pred"});
  for (const auto& agg : aggregates.items()) {
    t.row({util::Table::num(uint_of(num_or(agg, "p", 0.0))),
           util::Table::num(uint_of(num_or(agg, "k", 0.0))),
           util::Table::num(uint_of(num_or(agg, "n", 0.0))),
           util::Table::txt(str_or(agg, "shape", "?")),
           util::Table::txt(str_or(agg, "algorithm", "?")),
           util::Table::num(uint_of(num_or(agg, "trials", 0.0))),
           util::Table::num(uint_of(num_or(agg, "failed", 0.0))),
           util::Table::num(num_or(agg.at("cycles"), "mean", 0.0), 1),
           util::Table::num(num_or(agg.at("cycles"), "p95", 0.0), 0),
           util::Table::num(num_or(agg.at("messages"), "mean", 0.0), 1),
           util::Table::num(num_or(agg.at("messages"), "p95", 0.0), 0),
           util::Table::num(num_or(agg, "cycles_vs_predicted", 0.0), 2),
           util::Table::num(num_or(agg, "messages_vs_predicted", 0.0), 2)});
  }
  fenced(os, t.str());

  if (failed > 0) {
    os << "\n## Failed trials\n\n";
    for (const auto& trial : trials.items()) {
      const auto err = str_or(trial, "error", "");
      if (err.empty()) continue;
      os << "- trial " << uint_of(num_or(trial, "trial", 0.0)) << " (p="
         << uint_of(num_or(trial, "p", 0.0)) << ", k="
         << uint_of(num_or(trial, "k", 0.0)) << ", "
         << str_or(trial, "algorithm", "?") << "): " << err << "\n";
    }
  }

  // Cross-trial span aggregation (present when the sweep ran with --obs).
  std::vector<std::string> names;
  std::vector<std::uint64_t> counts, cycles, messages;
  for (const auto& trial : trials.items()) {
    const auto* spans = trial.find("spans");
    if (spans == nullptr || !spans->is_array()) continue;
    for (const auto& s : spans->items()) {
      const auto name = str_or(s, "name", "?");
      std::size_t idx = names.size();
      for (std::size_t i = 0; i < names.size(); ++i) {
        if (names[i] == name) {
          idx = i;
          break;
        }
      }
      if (idx == names.size()) {
        names.push_back(name);
        counts.push_back(0);
        cycles.push_back(0);
        messages.push_back(0);
      }
      counts[idx] += uint_of(num_or(s, "count", 0.0));
      cycles[idx] += uint_of(num_or(s, "cycles", 0.0));
      messages[idx] += uint_of(num_or(s, "messages", 0.0));
    }
  }
  if (!names.empty()) {
    os << "\n## Spans (all trials)\n\n";
    util::Table st;
    st.header({"span", "count", "cycles", "messages"});
    for (std::size_t i = 0; i < names.size(); ++i) {
      st.row({util::Table::txt(names[i]), util::Table::num(counts[i]),
              util::Table::num(cycles[i]), util::Table::num(messages[i])});
    }
    fenced(os, st.str());
  }
  return os.str();
}

std::string serve_report(const util::JsonValue& doc) {
  std::ostringstream os;
  os << "# mcbsim serving report\n\n";
  if (const auto* config = doc.find("config");
      config != nullptr && config->is_object()) {
    os << "- network: MCB(p=" << uint_of(num_or(*config, "p", 0.0))
       << ", k=" << uint_of(num_or(*config, "k", 0.0))
       << "), resident n=" << uint_of(num_or(*config, "n", 0.0))
       << ", seed=" << uint_of(num_or(*config, "seed", 1.0)) << "\n";
    os << "- stream: " << uint_of(num_or(*config, "queries", 0.0))
       << " queries, batch<=" << uint_of(num_or(*config, "batch", 0.0))
       << "\n";
  }
  os << "- batches (selection runs): "
     << uint_of(num_or(doc, "batches", 0.0)) << "\n";
  os << "- total simulated cycles: "
     << uint_of(num_or(doc, "total_cycles", 0.0)) << "\n";
  os << "- total messages: "
     << uint_of(num_or(doc, "total_messages", 0.0)) << "\n";
  os << "- churn ops: " << uint_of(num_or(doc, "churn_ops", 0.0))
     << ", filtering phases: "
     << uint_of(num_or(doc, "filter_phases", 0.0)) << "\n";
  os << "- cycles/query: " << num_or(doc, "cycles_per_query", 0.0)
     << ", queries/kcycle: " << num_or(doc, "queries_per_kcycle", 0.0)
     << "\n";

  if (const auto* classes = doc.find("classes");
      classes != nullptr && classes->is_array() && classes->size() > 0) {
    os << "\n## Per-class latency\n\n";
    util::Table t;
    t.header({"class", "ops", "answered", "p50", "p95", "p99",
              "max cycles"});
    for (const auto& cl : classes->items()) {
      const auto* h = cl.find("latency_cycles");
      const bool has = h != nullptr && h->is_object();
      t.row({util::Table::txt(str_or(cl, "name", "?")),
             util::Table::num(uint_of(num_or(cl, "ops", 0.0))),
             has ? util::Table::num(uint_of(num_or(*h, "count", 0.0)))
                 : util::Table::num(0),
             has ? util::Table::num(num_or(*h, "p50", 0.0), 0)
                 : util::Table::txt("n/a"),
             has ? util::Table::num(num_or(*h, "p95", 0.0), 0)
                 : util::Table::txt("n/a"),
             has ? util::Table::num(num_or(*h, "p99", 0.0), 0)
                 : util::Table::txt("n/a"),
             has ? util::Table::num(uint_of(num_or(*h, "max", 0.0)))
                 : util::Table::txt("n/a")});
    }
    fenced(os, t.str());
  }

  // Batch summary: regroup the answered query stream by the flush that
  // answered it (churn ops carry no "batch" member and are skipped).
  if (const auto* queries = doc.find("queries");
      queries != nullptr && queries->is_array()) {
    std::vector<std::uint64_t> ids, counts, latencies;
    for (const auto& q : queries->items()) {
      const auto* b = q.find("batch");
      if (b == nullptr || b->kind() != util::JsonValue::Kind::kNumber) {
        continue;
      }
      const auto id = uint_of(b->as_number());
      std::size_t idx = ids.size();
      for (std::size_t i = 0; i < ids.size(); ++i) {
        if (ids[i] == id) {
          idx = i;
          break;
        }
      }
      if (idx == ids.size()) {
        ids.push_back(id);
        counts.push_back(0);
        latencies.push_back(uint_of(num_or(q, "latency_cycles", 0.0)));
      }
      ++counts[idx];
    }
    if (!ids.empty()) {
      os << "\n## Batch summary\n\n";
      util::Table t;
      t.header({"batch", "queries", "run cycles"});
      for (std::size_t i = 0; i < ids.size(); ++i) {
        t.row({util::Table::num(ids[i]), util::Table::num(counts[i]),
               util::Table::num(latencies[i])});
      }
      fenced(os, t.str());
    }
  }

  host_profile_section(os, doc);
  return os.str();
}

}  // namespace

std::string spark(const std::vector<double>& values) {
  double maxv = 0.0;
  for (double v : values) maxv = std::max(maxv, v);
  std::string out;
  out.reserve(values.size());
  for (double v : values) {
    if (v <= 0.0 || maxv <= 0.0) {
      out.push_back(' ');
      continue;
    }
    const auto level = static_cast<std::size_t>(
        std::floor(v / maxv * 9.0));
    out.push_back(kLevels[level > 9 ? 9 : level]);
  }
  return out;
}

std::string report_markdown(const util::JsonValue& doc) {
  if (!doc.is_object()) {
    throw std::invalid_argument("report input is not a JSON object");
  }
  if (doc.find("trials") != nullptr && doc.find("aggregates") != nullptr) {
    return sweep_report(doc);
  }
  if (doc.find("batches") != nullptr && doc.find("churn_ops") != nullptr) {
    return serve_report(doc);
  }
  if (doc.find("stats") != nullptr) {
    return run_report(doc);
  }
  throw std::invalid_argument(
      "unrecognized document: expected mcbsim sort/select --json output "
      "(a \"stats\" object), sweep --json output (\"trials\" + "
      "\"aggregates\"), or serve --json output (\"batches\" + "
      "\"churn_ops\")");
}

}  // namespace mcb::obs
