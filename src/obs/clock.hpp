// The host wall-clock seam.
//
// Model time in this repo is the cycle counter; wall time is host telemetry
// (RunStats::sim_wall_ns, the host profiler) and must never become a
// protocol input. mcblint rule MCB-L2 enforces that by flagging any direct
// `*_clock::now()` call inside the model directories (src/mcb, src/algo,
// src/se, src/sched, src/serve). Engine code therefore reads wall time only
// through this interface: the call site names *what* it measures, the
// implementation lives here in src/obs — host-observability territory,
// outside MCB-L2's scope — and tests inject a fake clock to make host-time
// telemetry deterministic (tests/obs_test.cpp).
//
// The interface is deliberately one method: a monotonic nanosecond stamp.
// Differences of now_ns() are durations; absolute values carry no epoch
// contract (SteadyClock uses the std::chrono::steady_clock epoch).
#pragma once

#include <chrono>
#include <cstdint>

namespace mcb::obs {

/// Monotonic nanosecond clock. Implementations must be safe to call from
/// any thread (the worker pool stamps per-lane busy time through it).
class Clock {
 public:
  virtual ~Clock() = default;
  virtual std::uint64_t now_ns() = 0;
};

/// The real host clock: std::chrono::steady_clock in nanoseconds.
class SteadyClock final : public Clock {
 public:
  std::uint64_t now_ns() override {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

/// The process-wide default clock (a shared SteadyClock), used whenever no
/// clock was injected (SimConfig::clock == nullptr).
inline Clock& default_clock() {
  static SteadyClock clock;
  return clock;
}

}  // namespace mcb::obs
