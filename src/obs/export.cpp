#include "obs/export.hpp"

#include <sstream>
#include <vector>

#include "obs/profiler.hpp"
#include "obs/span.hpp"
#include "obs/timeline.hpp"
#include "util/json.hpp"

namespace mcb::obs {

namespace {

constexpr int kSpanPid = 1;
constexpr int kChannelPid = 2;
constexpr int kHostPid = 3;

void meta_event(std::ostream& os, int pid, const char* key,
                const std::string& value) {
  os << "    {\"ph\": \"M\", \"pid\": " << pid << ", \"tid\": 1, \"name\": \""
     << key << "\", \"args\": {\"name\": \"" << util::json_escape(value)
     << "\"}}";
}

/// Emits record `idx` and its children depth-first: B, children, E. The
/// records vector is in begin order, so children always follow parents;
/// scanning forward from idx+1 finds them in chronological order.
void emit_span(std::ostream& os, const std::vector<SpanRecord>& records,
               std::size_t idx, bool& first) {
  const SpanRecord& rec = records[idx];
  if (!rec.closed) return;
  os << (first ? "" : ",\n");
  first = false;
  os << "    {\"ph\": \"B\", \"pid\": " << kSpanPid
     << ", \"tid\": 1, \"ts\": " << rec.begin_cycle << ", \"name\": \""
     << util::json_escape(rec.name)
     << "\", \"cat\": \"span\", \"args\": {\"messages_at_begin\": "
     << rec.begin_messages << "}}";
  for (std::size_t j = idx + 1; j < records.size(); ++j) {
    if (records[j].parent == idx) emit_span(os, records, j, first);
  }
  os << ",\n    {\"ph\": \"E\", \"pid\": " << kSpanPid
     << ", \"tid\": 1, \"ts\": " << rec.end_cycle
     << ", \"args\": {\"cycles\": " << rec.cycles()
     << ", \"messages\": " << rec.messages() << "}}";
}

}  // namespace

std::string chrome_trace_json(const RunStats& stats, const SimConfig& cfg,
                              const Recorder* spans, const Timeline* timeline,
                              const Profiler* profiler) {
  std::ostringstream os;
  os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": {\"p\": "
     << cfg.p << ", \"k\": " << cfg.k << ", \"cycles\": " << stats.cycles
     << ", \"messages\": " << stats.messages;
  if (timeline != nullptr) {
    os << ", \"bucket_cycles\": " << timeline->bucket_cycles();
  }
  os << "},\n  \"traceEvents\": [\n";

  bool first = true;
  if (spans != nullptr && !spans->records().empty()) {
    meta_event(os, kSpanPid, "process_name", "phase spans");
    first = false;
    const auto& records = spans->records();
    for (std::size_t i = 0; i < records.size(); ++i) {
      if (records[i].depth == 0) emit_span(os, records, i, first);
    }
  }

  if (timeline != nullptr) {
    if (!first) os << ",\n";
    meta_event(os, kChannelPid, "process_name", "channels");
    first = false;
    const Cycle width = timeline->bucket_cycles();
    const auto& buckets = timeline->buckets();
    for (std::size_t c = 0; c < timeline->k(); ++c) {
      std::string track = "C";
      track += std::to_string(c + 1);
      track += " writes";
      for (std::size_t b = 0; b < buckets.size(); ++b) {
        os << ",\n    {\"ph\": \"C\", \"pid\": " << kChannelPid
           << ", \"tid\": 1, \"ts\": " << static_cast<Cycle>(b) * width
           << ", \"name\": \"" << util::json_escape(track)
           << "\", \"args\": {\"writes\": " << buckets[b].writes[c] << "}}";
      }
      // Terminal zero sample so the counter area closes at run end.
      os << ",\n    {\"ph\": \"C\", \"pid\": " << kChannelPid
         << ", \"tid\": 1, \"ts\": "
         << static_cast<Cycle>(buckets.size()) * width << ", \"name\": \""
         << util::json_escape(track) << "\", \"args\": {\"writes\": 0}}";
    }
  }

  // Host-time tracks (wall clock, NOT simulated cycles): one swim-lane per
  // pool lane showing its busy time inside each cycle-batch window, plus
  // barrier-wait and commit counter tracks. Timestamps are cumulative
  // window wall time in microseconds (the trace-event ts unit).
  if (profiler != nullptr && !profiler->batches().empty()) {
    if (!first) os << ",\n";
    meta_event(os, kHostPid, "process_name", "host profile");
    first = false;
    std::uint64_t t_ns = 0;
    for (const Profiler::Batch& b : profiler->batches()) {
      const std::uint64_t ts_us = t_ns / 1000;
      for (std::size_t l = 0; l < b.lane_busy_ns.size(); ++l) {
        os << ",\n    {\"ph\": \"X\", \"pid\": " << kHostPid
           << ", \"tid\": " << l + 1 << ", \"ts\": " << ts_us
           << ", \"dur\": " << b.lane_busy_ns[l] / 1000
           << ", \"name\": \"lane " << l << " busy\", \"cat\": \"host\""
           << ", \"args\": {\"first_cycle\": " << b.first_cycle
           << ", \"cycles\": " << b.cycles << "}}";
      }
      os << ",\n    {\"ph\": \"C\", \"pid\": " << kHostPid
         << ", \"tid\": 1, \"ts\": " << ts_us
         << ", \"name\": \"barrier wait ns\", \"args\": {\"wait\": "
         << b.wait_ns << "}}";
      os << ",\n    {\"ph\": \"C\", \"pid\": " << kHostPid
         << ", \"tid\": 1, \"ts\": " << ts_us
         << ", \"name\": \"commit ns\", \"args\": {\"commit\": " << b.commit_ns
         << "}}";
      t_ns += b.wall_ns;
    }
    // Terminal zero samples so the counter areas close at the last window.
    os << ",\n    {\"ph\": \"C\", \"pid\": " << kHostPid
       << ", \"tid\": 1, \"ts\": " << t_ns / 1000
       << ", \"name\": \"barrier wait ns\", \"args\": {\"wait\": 0}}";
    os << ",\n    {\"ph\": \"C\", \"pid\": " << kHostPid
       << ", \"tid\": 1, \"ts\": " << t_ns / 1000
       << ", \"name\": \"commit ns\", \"args\": {\"commit\": 0}}";
  }

  os << "\n  ]\n}\n";
  return os.str();
}

std::string run_stats_json(const RunStats& stats) {
  std::ostringstream os;
  os << "{\"cycles\":" << stats.cycles << ",\"messages\":" << stats.messages
     << ",\"peak_aux_words\":" << stats.max_peak_aux()
     << ",\"sim_wall_ns\":" << stats.sim_wall_ns
     << ",\"proc_resumes\":" << stats.proc_resumes
     << ",\"threads_requested\":" << stats.threads_requested
     << ",\"threads_effective\":" << stats.threads_effective
     << ",\"cycles_per_sec\":" << util::json_double(stats.cycles_per_sec)
     << ",\"frame_allocs\":" << stats.frame_allocs
     << ",\"frame_frees\":" << stats.frame_frees
     << ",\"frame_reuses\":" << stats.frame_reuses
     << ",\"arena_bytes_peak\":" << stats.arena_bytes_peak
     << ",\"arena_hit_rate\":" << util::json_double(stats.arena_hit_rate)
     << ",\"phases\":[";
  for (std::size_t i = 0; i < stats.phases.size(); ++i) {
    const auto& ph = stats.phases[i];
    if (i) os << ',';
    os << "{\"name\":\"" << util::json_escape(ph.name)
       << "\",\"first_cycle\":" << ph.first_cycle
       << ",\"cycles\":" << ph.cycles << ",\"messages\":" << ph.messages
       << '}';
  }
  os << "]}";
  return os.str();
}

}  // namespace mcb::obs
