#include "obs/timeline.hpp"

#include "util/check.hpp"

namespace mcb::obs {

Timeline::Timeline(std::size_t k, std::size_t max_buckets)
    : k_(k), max_buckets_(max_buckets), channel_writes_(k, 0) {
  MCB_REQUIRE(k >= 1, "timeline needs at least one channel");
  MCB_REQUIRE(max_buckets >= 2, "bucket merging needs max_buckets >= 2");
}

void Timeline::merge_pairs() {
  // Collapse adjacent pairs: bucket i of the new width 2w covers exactly
  // old buckets 2i and 2i+1, so every counter is preserved.
  const std::size_t half = (buckets_.size() + 1) / 2;
  for (std::size_t i = 0; i < half; ++i) {
    TimelineBucket merged = std::move(buckets_[2 * i]);
    if (2 * i + 1 < buckets_.size()) {
      const TimelineBucket& hi = buckets_[2 * i + 1];
      for (std::size_t c = 0; c < k_; ++c) merged.writes[c] += hi.writes[c];
      merged.reads += hi.reads;
      merged.silent_reads += hi.silent_reads;
      merged.multi_reads += hi.multi_reads;
      merged.busy_cycles += hi.busy_cycles;
    }
    buckets_[i] = std::move(merged);
  }
  buckets_.resize(half);
  width_ *= 2;
}

TimelineBucket& Timeline::bucket_for(Cycle cycle) {
  while (cycle / width_ >= max_buckets_) merge_pairs();
  const auto idx = static_cast<std::size_t>(cycle / width_);
  while (buckets_.size() <= idx) {
    TimelineBucket b;
    b.writes.assign(k_, 0);
    buckets_.push_back(std::move(b));
  }
  return buckets_[idx];
}

void Timeline::on_event(const CycleEvent& ev) {
  TimelineBucket& b = bucket_for(ev.cycle);
  if (!any_event_ || ev.cycle != last_busy_cycle_) {
    any_event_ = true;
    last_busy_cycle_ = ev.cycle;
    ++b.busy_cycles;
    ++busy_cycles_;
  }
  if (ev.wrote) {
    const std::size_t c = *ev.wrote;
    if (c < k_) {
      ++b.writes[c];
      ++channel_writes_[c];
    }
    ++total_writes_;
  }
  if (ev.read) {
    ++b.reads;
    ++total_reads_;
    if (!ev.received) {
      ++b.silent_reads;
      ++total_silent_reads_;
    }
  }
  if (ev.read_all) {
    ++b.multi_reads;
    ++total_multi_reads_;
  }
}

void Timeline::finalize(Cycle total_cycles) {
  MCB_REQUIRE(!finalized_, "Timeline::finalize is single-shot");
  total_cycles_ = total_cycles;
  finalized_ = true;
}

std::uint64_t Timeline::idle_cycles() const {
  MCB_REQUIRE(finalized_, "idle_cycles requires finalize()");
  const std::uint64_t total = total_cycles_;
  return total > busy_cycles_ ? total - busy_cycles_ : 0;
}

}  // namespace mcb::obs
