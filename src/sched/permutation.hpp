// The four Columnsort matrix transformations as explicit permutations.
//
// Section 5.1 of the paper defines Transpose, Un-Diagonalize, Up-Shift and
// Down-Shift on an m x k matrix (m rows, k columns, column-major). Both the
// in-memory reference Columnsort (seq/columnsort) and the MCB broadcast
// schedules (sched/schedule) are driven from the same index maps defined
// here, so they cannot drift apart.
//
// Conventions: 0-based (row r, column c); column-major linear index
// ell = c*m + r. All maps send SOURCE linear index to DESTINATION linear
// index.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mcb::sched {

enum class Transform {
  kTranspose,      ///< read column-major, store row-major
  kUndiagonalize,  ///< read diagonal-major, store column-major
  kUpShift,        ///< circular shift by +floor(m/2) in column-major order
  kDownShift,      ///< circular shift by -floor(m/2) in column-major order
  kUntranspose,    ///< read row-major, store column-major (the inverse of
                   ///< kTranspose — Leighton's original step 4, kept as an
                   ///< ablation against the paper's kUndiagonalize)
};

const char* to_string(Transform t);

/// Destination linear index of the element at source linear index `ell`.
/// Requires k | m for kTranspose (the paper's standing assumption) and
/// ell < m*k.
std::size_t transform_index(Transform t, std::size_t ell, std::size_t m,
                            std::size_t k);

/// Full permutation table: table[src] = dst. O(m*k) time and space.
std::vector<std::uint32_t> permutation_table(Transform t, std::size_t m,
                                             std::size_t k);

/// True iff `table` is a permutation of 0..table.size()-1.
bool is_permutation_table(const std::vector<std::uint32_t>& table);

}  // namespace mcb::sched
