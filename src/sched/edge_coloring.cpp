#include "sched/edge_coloring.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mcb::sched {
namespace {

std::vector<std::uint64_t> row_sums(const CountMatrix& m) {
  std::vector<std::uint64_t> s(m.size(), 0);
  for (std::size_t i = 0; i < m.size(); ++i) {
    for (auto v : m[i]) s[i] += v;
  }
  return s;
}

std::vector<std::uint64_t> col_sums(const CountMatrix& m) {
  std::vector<std::uint64_t> s(m.size(), 0);
  for (const auto& row : m) {
    for (std::size_t j = 0; j < row.size(); ++j) s[j] += row[j];
  }
  return s;
}

void validate_square(const CountMatrix& m) {
  for (const auto& row : m) {
    MCB_REQUIRE(row.size() == m.size(), "matrix must be square");
  }
}

// Kuhn's augmenting-path matching on the positive support of `counts`.
// match_col[j] = row matched to column j, or SIZE_MAX.
bool try_kuhn(const CountMatrix& counts, std::size_t row,
              std::vector<bool>& visited, std::vector<std::size_t>& match_col) {
  for (std::size_t j = 0; j < counts.size(); ++j) {
    if (counts[row][j] == 0 || visited[j]) continue;
    visited[j] = true;
    if (match_col[j] == SIZE_MAX ||
        try_kuhn(counts, match_col[j], visited, match_col)) {
      match_col[j] = row;
      return true;
    }
  }
  return false;
}

}  // namespace

std::uint64_t max_degree(const CountMatrix& counts) {
  validate_square(counts);
  std::uint64_t r = 0;
  for (auto v : row_sums(counts)) r = std::max(r, v);
  for (auto v : col_sums(counts)) r = std::max(r, v);
  return r;
}

CountMatrix pad_to_regular(const CountMatrix& counts) {
  validate_square(counts);
  const std::size_t k = counts.size();
  const std::uint64_t r = max_degree(counts);
  auto rows = row_sums(counts);
  auto cols = col_sums(counts);
  CountMatrix dummy(k, std::vector<std::uint64_t>(k, 0));
  // Greedy transport of row deficits onto column deficits. Total row deficit
  // equals total column deficit (both are k*R - sum), so this terminates
  // with every deficit consumed.
  std::size_t i = 0, j = 0;
  while (i < k && j < k) {
    const std::uint64_t rd = r - rows[i];
    const std::uint64_t cd = r - cols[j];
    if (rd == 0) {
      ++i;
      continue;
    }
    if (cd == 0) {
      ++j;
      continue;
    }
    const std::uint64_t x = std::min(rd, cd);
    dummy[i][j] += x;
    rows[i] += x;
    cols[j] += x;
  }
  return dummy;
}

EdgeColoring euler_color(std::size_t left_size, std::size_t right_size,
                         const std::vector<BipEdge>& edges) {
  const std::size_t n_real = edges.size();
  // Equalize the two sides with virtual vertices so the padding below can
  // reach an exactly regular (hence all-even-degree) multigraph — the Euler
  // walks then consist of circuits only, which is what makes the
  // alternating split exact. Vertex ids: left 0..M-1, right M..2M-1.
  const std::size_t side = std::max(left_size, right_size);
  std::vector<std::uint32_t> eu, ev;
  eu.reserve(n_real);
  ev.reserve(n_real);
  std::vector<std::size_t> degL(side, 0), degR(side, 0);
  for (const auto& e : edges) {
    MCB_REQUIRE(e.left < left_size && e.right < right_size,
                "edge (" << e.left << "," << e.right << ") out of range");
    eu.push_back(e.left);
    ev.push_back(static_cast<std::uint32_t>(side + e.right));
    ++degL[e.left];
    ++degR[e.right];
  }
  std::size_t delta = 0;
  for (auto d : degL) delta = std::max(delta, d);
  for (auto d : degR) delta = std::max(delta, d);

  EdgeColoring out;
  out.colors.assign(n_real, 0);
  if (delta <= 1) {
    out.num_colors = delta == 0 ? 0 : 1;
    return out;
  }
  std::uint32_t ncolors = 1;
  while (ncolors < delta) ncolors *= 2;

  // Pad to ncolors-regular: total deficits on both (equalized) sides match,
  // so the two-pointer transport consumes them exactly.
  {
    std::size_t li = 0, ri = 0;
    while (li < side && ri < side) {
      if (degL[li] == ncolors) {
        ++li;
        continue;
      }
      if (degR[ri] == ncolors) {
        ++ri;
        continue;
      }
      eu.push_back(static_cast<std::uint32_t>(li));
      ev.push_back(static_cast<std::uint32_t>(side + ri));
      ++degL[li];
      ++degR[ri];
    }
    for (std::size_t v = 0; v < side; ++v) {
      MCB_CHECK(degL[v] == ncolors && degR[v] == ncolors,
                "padding failed to regularize vertex " << v);
    }
  }

  const std::size_t nv = 2 * side;
  std::vector<std::uint32_t> all(eu.size());
  for (std::size_t e = 0; e < all.size(); ++e) {
    all[e] = static_cast<std::uint32_t>(e);
  }
  out.num_colors = ncolors;

  // Recursive Euler halving. The padded graph is ncolors-regular with
  // ncolors a power of two, so every level sees an even-regular multigraph:
  // its components decompose into Euler circuits, and assigning edges
  // alternately along each circuit splits every vertex's edges exactly in
  // half (bipartite circuits have even length). Each half is
  // (span/2)-regular, down to perfect matchings at span 1.
  struct Frame {
    std::vector<std::uint32_t> edge_ids;
    std::uint32_t color_base;
    std::uint32_t span;  // number of colors available to this subgraph
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{std::move(all), 0, ncolors});
  // Scratch adjacency reused across frames.
  while (!stack.empty()) {
    Frame fr = std::move(stack.back());
    stack.pop_back();
    if (fr.edge_ids.empty()) continue;
    if (fr.span == 1) {
      for (auto e : fr.edge_ids) {
        if (e < n_real) out.colors[e] = fr.color_base;
      }
      continue;
    }
    // Adjacency over local edge indices (le indexes fr.edge_ids).
    std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> adj(nv);
    std::vector<bool> used(fr.edge_ids.size(), false);
    for (std::uint32_t le = 0; le < fr.edge_ids.size(); ++le) {
      const auto e = fr.edge_ids[le];
      adj[eu[e]].push_back({ev[e], le});
      adj[ev[e]].push_back({eu[e], le});
    }
    std::vector<std::size_t> cursor(nv, 0);
    std::vector<std::uint32_t> half_a, half_b;
    half_a.reserve(fr.edge_ids.size() / 2 + 1);
    half_b.reserve(fr.edge_ids.size() / 2 + 1);
    // Start trails preferentially at odd-degree vertices, then circuits.
    auto walk = [&](std::uint32_t start) {
      // Hierholzer-style walk consuming edges; alternate assignment along
      // the trail.
      std::vector<std::uint32_t> trail;
      std::vector<std::uint32_t> vstack{start};
      std::vector<std::uint32_t> estack;
      while (!vstack.empty()) {
        const auto v = vstack.back();
        bool advanced = false;
        while (cursor[v] < adj[v].size()) {
          auto [w, le] = adj[v][cursor[v]];
          ++cursor[v];
          if (used[le]) continue;
          used[le] = true;
          vstack.push_back(w);
          estack.push_back(le);
          advanced = true;
          break;
        }
        if (!advanced) {
          vstack.pop_back();
          if (!estack.empty() && !vstack.empty()) {
            trail.push_back(estack.back());
            estack.pop_back();
          }
        }
      }
      bool to_a = true;
      for (auto le : trail) {
        (to_a ? half_a : half_b).push_back(fr.edge_ids[le]);
        to_a = !to_a;
      }
    };
    for (std::uint32_t v = 0; v < nv; ++v) {
      walk(v);  // consumes v's component; later calls find nothing left
    }
    stack.push_back(Frame{std::move(half_a), fr.color_base, fr.span / 2});
    stack.push_back(
        Frame{std::move(half_b),
              static_cast<std::uint32_t>(fr.color_base + fr.span / 2),
              fr.span / 2});
  }
  return out;
}

std::vector<PermTerm> birkhoff_decompose(const CountMatrix& input) {
  validate_square(input);
  const std::size_t k = input.size();
  auto rows = row_sums(input);
  auto cols = col_sums(input);
  const std::uint64_t r = rows.empty() ? 0 : rows[0];
  for (std::size_t i = 0; i < k; ++i) {
    MCB_REQUIRE(rows[i] == r && cols[i] == r,
                "matrix is not doubly regular: row/col " << i << " sums "
                    << rows[i] << "/" << cols[i] << " vs " << r);
  }

  CountMatrix counts = input;
  std::vector<PermTerm> result;
  std::uint64_t remaining = r;
  while (remaining > 0) {
    // Perfect matching on the support. An R-regular non-negative integer
    // matrix always has one (Hall's condition holds), so failure here is an
    // internal invariant violation.
    std::vector<std::size_t> match_col(k, SIZE_MAX);
    for (std::size_t row = 0; row < k; ++row) {
      std::vector<bool> visited(k, false);
      const bool ok = try_kuhn(counts, row, visited, match_col);
      MCB_CHECK(ok, "no perfect matching in regular matrix (row " << row
                                                                  << ")");
    }
    PermTerm term;
    term.perm.resize(k);
    std::uint64_t lambda = UINT64_MAX;
    for (std::size_t j = 0; j < k; ++j) {
      term.perm[match_col[j]] = static_cast<std::uint32_t>(j);
      lambda = std::min(lambda, counts[match_col[j]][j]);
    }
    term.count = lambda;
    for (std::size_t j = 0; j < k; ++j) {
      counts[match_col[j]][j] -= lambda;
    }
    remaining -= lambda;
    result.push_back(std::move(term));
  }
  return result;
}

}  // namespace mcb::sched
