// Bipartite multigraph edge coloring via Birkhoff–von-Neumann decomposition.
//
// A matrix transformation on k columns is, communication-wise, a bipartite
// multigraph: count[c][c'] elements must move from column c to column c'.
// Scheduling it collision-free on the MCB means partitioning the edges into
// rounds in which every column sends at most once and receives at most once
// — i.e. into (sub-)permutation matrices. König's theorem guarantees that
// R = max row/column sum rounds suffice; this module computes such a
// partition constructively: pad the matrix to an R-regular one, then peel
// off permutation matrices by repeated perfect matching (Kuhn's augmenting
// paths on the k x k support — cheap, since k is small even when the element
// counts are huge).
#pragma once

#include <cstdint>
#include <vector>

namespace mcb::sched {

/// A permutation matrix with multiplicity: `perm[i] = j` means edge i -> j,
/// used for `count` consecutive rounds.
struct PermTerm {
  std::vector<std::uint32_t> perm;
  std::uint64_t count = 0;
};

using CountMatrix = std::vector<std::vector<std::uint64_t>>;

/// Decomposes a square non-negative matrix whose row sums and column sums
/// all equal R into permutation terms with counts summing to R (Birkhoff).
/// Throws std::invalid_argument if the sums are not all equal.
std::vector<PermTerm> birkhoff_decompose(const CountMatrix& counts);

/// Pads `counts` (arbitrary square non-negative matrix) with dummy entries
/// so every row and column sums to R = max row/col sum. Returns the dummy
/// matrix (same shape); counts + dummies is R-regular.
CountMatrix pad_to_regular(const CountMatrix& counts);

/// max row/column sum — the number of rounds any schedule needs (and, by
/// König, achieves).
std::uint64_t max_degree(const CountMatrix& counts);

/// One edge of an explicit bipartite multigraph: left vertex -> right
/// vertex.
struct BipEdge {
  std::uint32_t left = 0;
  std::uint32_t right = 0;
};

/// Result of euler_color: colors[e] is edge e's color in [0, num_colors).
struct EdgeColoring {
  std::vector<std::uint32_t> colors;
  std::uint32_t num_colors = 0;
};

/// Colors the edges of an explicit bipartite multigraph so that no two
/// edges of one color share a left or right endpoint, using Euler-split
/// halving: near-linear time, at most 2^ceil(log2(Delta)) < 2*Delta colors
/// (Delta = max degree). Used for the large, irregular transfer graphs of
/// the recursive Columnsort, where the Birkhoff peeling of
/// birkhoff_decompose would be too slow.
EdgeColoring euler_color(std::size_t left_size, std::size_t right_size,
                         const std::vector<BipEdge>& edges);

}  // namespace mcb::sched
