#include "sched/schedule.hpp"

#include "util/check.hpp"

namespace mcb::sched {

std::uint64_t TransferPlan::messages() const {
  std::uint64_t total = 0;
  for (const auto& round : rounds) {
    for (auto d : round.dst) {
      if (d != kIdle) ++total;
    }
  }
  return total;
}

TransferPlan plan_transform(Transform t, std::size_t m, std::size_t k,
                            const std::vector<std::uint32_t>* table_in) {
  MCB_REQUIRE(m >= 1 && k >= 1, "m=" << m << " k=" << k);
  std::vector<std::uint32_t> local_table;
  if (table_in == nullptr) {
    local_table = permutation_table(t, m, k);
    table_in = &local_table;
  }
  const auto& table = *table_in;

  // Cross-column transfer counts (intra-column moves are local).
  CountMatrix counts(k, std::vector<std::uint64_t>(k, 0));
  for (std::size_t ell = 0; ell < m * k; ++ell) {
    const std::size_t c = ell / m;
    const std::size_t cd = table[ell] / m;
    if (c != cd) ++counts[c][cd];
  }

  const auto dummy = pad_to_regular(counts);
  CountMatrix padded = counts;
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) padded[i][j] += dummy[i][j];
  }

  TransferPlan plan;
  plan.transform = t;
  plan.m = m;
  plan.k = k;
  if (max_degree(counts) == 0) return plan;  // fully intra-column

  // Emit rounds from the decomposition. For each (c, c') pair the first
  // counts[c][c'] occurrences across the round sequence are real sends and
  // the rest are padding (idle). Senders and receivers replay the same
  // deterministic assignment.
  CountMatrix real_left = counts;
  for (const auto& term : birkhoff_decompose(padded)) {
    for (std::uint64_t rep = 0; rep < term.count; ++rep) {
      Round round;
      round.dst.assign(k, kIdle);
      round.src.assign(k, kIdle);
      bool any = false;
      for (std::size_t c = 0; c < k; ++c) {
        const std::uint32_t cd = term.perm[c];
        if (cd == c) continue;  // self-edges only arise as padding
        if (real_left[c][cd] > 0) {
          --real_left[c][cd];
          round.dst[c] = cd;
          round.src[cd] = static_cast<std::uint32_t>(c);
          any = true;
        }
      }
      if (any) plan.rounds.push_back(std::move(round));
    }
  }
  // Every real transfer must be scheduled.
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t cd = 0; cd < k; ++cd) {
      MCB_CHECK(real_left[c][cd] == 0,
                "unscheduled transfers " << real_left[c][cd] << " for "
                                         << c << "->" << cd);
    }
  }
  return plan;
}

bool plan_is_valid(const TransferPlan& plan,
                   const std::vector<std::uint32_t>& table) {
  const std::size_t k = plan.k;
  const std::size_t m = plan.m;
  CountMatrix want(k, std::vector<std::uint64_t>(k, 0));
  for (std::size_t ell = 0; ell < m * k; ++ell) {
    const std::size_t c = ell / m;
    const std::size_t cd = table[ell] / m;
    if (c != cd) ++want[c][cd];
  }
  CountMatrix got(k, std::vector<std::uint64_t>(k, 0));
  for (const auto& round : plan.rounds) {
    if (round.dst.size() != k || round.src.size() != k) return false;
    std::vector<bool> dst_used(k, false);
    for (std::size_t c = 0; c < k; ++c) {
      const auto d = round.dst[c];
      if (d == kIdle) continue;
      if (d >= k || d == c) return false;
      if (dst_used[d]) return false;  // two senders to one receiver
      dst_used[d] = true;
      if (round.src[d] != c) return false;  // src must invert dst
      ++got[c][d];
    }
    for (std::size_t cd = 0; cd < k; ++cd) {
      if (round.src[cd] != kIdle && round.dst[round.src[cd]] != cd) {
        return false;
      }
    }
  }
  return got == want;
}

}  // namespace mcb::sched
