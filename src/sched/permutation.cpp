#include "sched/permutation.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mcb::sched {

const char* to_string(Transform t) {
  switch (t) {
    case Transform::kTranspose: return "transpose";
    case Transform::kUndiagonalize: return "un-diagonalize";
    case Transform::kUpShift: return "up-shift";
    case Transform::kDownShift: return "down-shift";
    case Transform::kUntranspose: return "untranspose";
  }
  return "?";
}

namespace {

// Number of matrix entries on anti-diagonals 0..d-1 of an m x k matrix
// (diagonal d holds entries with c + r == d).
std::size_t diag_prefix(std::size_t d, std::size_t m, std::size_t k) {
  std::size_t count = 0;
  for (std::size_t j = 0; j < d; ++j) {
    const std::size_t lo = j >= m ? j - (m - 1) : 0;  // min column on diag j
    const std::size_t hi = std::min(k - 1, j);        // max column on diag j
    if (hi >= lo) count += hi - lo + 1;
  }
  return count;
}

}  // namespace

std::size_t transform_index(Transform t, std::size_t ell, std::size_t m,
                            std::size_t k) {
  const std::size_t n = m * k;
  MCB_REQUIRE(ell < n, "index " << ell << " out of " << n);
  const std::size_t c = ell / m;
  const std::size_t r = ell % m;
  switch (t) {
    case Transform::kTranspose: {
      MCB_REQUIRE(m % k == 0, "transpose requires k | m (m=" << m
                                                             << ", k=" << k
                                                             << ")");
      // Read column-major (order = ell), write row-major: destination cell
      // (row ell/k, column ell%k) expressed back in column-major.
      return (ell % k) * m + ell / k;
    }
    case Transform::kUndiagonalize: {
      // Read diagonal-major — diagonal d = c + r, within a diagonal by
      // descending column — write column-major: the element's position in
      // the diagonal enumeration IS its destination linear index.
      const std::size_t d = c + r;
      const std::size_t hi = std::min(k - 1, d);  // first column emitted
      return diag_prefix(d, m, k) + (hi - c);
    }
    case Transform::kUpShift:
      return (ell + m / 2) % n;
    case Transform::kDownShift:
      return (ell + n - m / 2) % n;
    case Transform::kUntranspose: {
      MCB_REQUIRE(m % k == 0, "untranspose requires k | m (m=" << m
                                                               << ", k=" << k
                                                               << ")");
      // Read row-major, write column-major: the inverse of kTranspose.
      return r * k + c;
    }
  }
  MCB_CHECK(false, "unreachable");
  return 0;
}

std::vector<std::uint32_t> permutation_table(Transform t, std::size_t m,
                                             std::size_t k) {
  const std::size_t n = m * k;
  MCB_REQUIRE(n <= UINT32_MAX, "matrix too large for a u32 table");
  std::vector<std::uint32_t> table(n);
  if (t == Transform::kUndiagonalize) {
    // Build by walking the diagonal enumeration once: O(n) instead of the
    // O(n (m+k)) of calling transform_index per element.
    std::uint32_t pos = 0;
    for (std::size_t d = 0; d <= (m - 1) + (k - 1); ++d) {
      const std::size_t lo = d >= m ? d - (m - 1) : 0;
      const std::size_t hi = std::min(k - 1, d);
      for (std::size_t c = hi + 1; c-- > lo;) {  // descending column order
        const std::size_t r = d - c;
        table[c * m + r] = pos++;
      }
    }
    MCB_CHECK(pos == n, "diagonal enumeration covered " << pos << " of " << n);
    return table;
  }
  for (std::size_t ell = 0; ell < n; ++ell) {
    table[ell] = static_cast<std::uint32_t>(transform_index(t, ell, m, k));
  }
  return table;
}

bool is_permutation_table(const std::vector<std::uint32_t>& table) {
  std::vector<bool> seen(table.size(), false);
  for (auto v : table) {
    if (v >= table.size() || seen[v]) return false;
    seen[v] = true;
  }
  return true;
}

}  // namespace mcb::sched
