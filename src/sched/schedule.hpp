// Collision-free broadcast schedules for the Columnsort transformations.
//
// A TransferPlan turns one matrix transformation (m x k, column c owned by
// the processor driving channel c) into a sequence of rounds. In each round
// every column broadcasts at most one element on its own channel and reads
// at most one other channel — by construction no two writers share a channel,
// so the schedule is collision-free, and the number of rounds is the König
// bound R <= m.
//
// The plan is deterministic and derivable from (transform, m, k) alone; in a
// real MCB every processor would compute it locally (local computation is
// free in the model). The simulator computes it once and shares it, which
// changes nothing observable.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "sched/edge_coloring.hpp"
#include "sched/permutation.hpp"

namespace mcb::sched {

/// Sentinel for "no send / no receive this round".
inline constexpr std::uint32_t kIdle = std::numeric_limits<std::uint32_t>::max();

struct Round {
  /// dst[c]: destination column of column c's broadcast this round, or
  /// kIdle. dst[c] != c always (intra-column moves are local, not sent).
  std::vector<std::uint32_t> dst;
  /// src[c']: which column broadcasts to c' this round, or kIdle. Inverse
  /// view of dst, precomputed for receivers.
  std::vector<std::uint32_t> src;
};

struct TransferPlan {
  Transform transform{};
  std::size_t m = 0;
  std::size_t k = 0;
  std::vector<Round> rounds;

  std::size_t cycles() const { return rounds.size(); }
  /// Total broadcasts the plan performs (= cross-column element moves).
  std::uint64_t messages() const;
};

/// Builds the schedule for one transformation. The permutation table can be
/// passed in when the caller already has it (it is also needed to route
/// element payloads); if null it is computed internally.
TransferPlan plan_transform(Transform t, std::size_t m, std::size_t k,
                            const std::vector<std::uint32_t>* table = nullptr);

/// Validates plan invariants: per round, non-idle destinations are distinct,
/// src is the inverse of dst, and per column pair the number of scheduled
/// sends equals the transformation's cross-column element count. Used by
/// tests and debug assertions.
bool plan_is_valid(const TransferPlan& plan,
                   const std::vector<std::uint32_t>& table);

}  // namespace mcb::sched
