#include "util/arena.hpp"

#include <new>

#include "util/check.hpp"

namespace mcb::util {

namespace {

/// Prefix of every frame allocation; 16 bytes keeps the frame itself on the
/// default new alignment.
struct alignas(16) FrameHeader {
  FrameArena* arena;  ///< nullptr: block came from global operator new
  std::size_t cls;    ///< size class (meaningful only when arena != nullptr)
};
static_assert(sizeof(FrameHeader) == 16);

thread_local FrameArena* tl_current_arena = nullptr;

}  // namespace

FrameArena::~FrameArena() {
  for (void* slab : slabs_) {
    ::operator delete(slab);
  }
}

void* FrameArena::allocate_class(std::size_t cls) {
  MCB_CHECK(cls < kNumClasses, "size class " << cls << " out of range");
  const std::size_t bytes = class_bytes(cls);
  ++stats_.allocs;
  stats_.bytes_live += bytes;
  if (stats_.bytes_live > stats_.bytes_peak) {
    stats_.bytes_peak = stats_.bytes_live;
  }

  if (FreeNode* node = free_heads_[cls]) {
    free_heads_[cls] = node->next;
    ++stats_.reuses;
    return node;
  }
  if (remaining_ < bytes) {
    ++stats_.slab_allocs;
    slabs_.push_back(::operator new(kSlabBytes));
    bump_ = static_cast<std::byte*>(slabs_.back());
    remaining_ = kSlabBytes;
  }
  void* block = bump_;
  bump_ += bytes;
  remaining_ -= bytes;
  return block;
}

void FrameArena::deallocate_class(void* block, std::size_t cls) {
  ++stats_.frees;
  stats_.bytes_live -= class_bytes(cls);
  auto* node = static_cast<FreeNode*>(block);
  node->next = free_heads_[cls];
  free_heads_[cls] = node;
}

FrameArena* current_frame_arena() noexcept { return tl_current_arena; }

FrameArenaScope::FrameArenaScope(FrameArena* arena) noexcept
    : prev_(tl_current_arena) {
  tl_current_arena = arena;
}

FrameArenaScope::~FrameArenaScope() { tl_current_arena = prev_; }

void* frame_allocate(std::size_t bytes) {
  const std::size_t total = bytes + sizeof(FrameHeader);
  FrameArena* arena = tl_current_arena;
  FrameHeader* header;
  if (arena != nullptr && total <= FrameArena::kMaxClassBytes) {
    const std::size_t cls = FrameArena::class_of(total);
    header = static_cast<FrameHeader*>(arena->allocate_class(cls));
    header->arena = arena;
    header->cls = cls;
  } else {
    header = static_cast<FrameHeader*>(::operator new(total));
    header->arena = nullptr;
    header->cls = 0;
  }
  return header + 1;
}

void frame_deallocate(void* p) noexcept {
  if (p == nullptr) return;
  FrameHeader* header = static_cast<FrameHeader*>(p) - 1;
  if (header->arena != nullptr) {
    header->arena->deallocate_class(header, header->cls);
  } else {
    ::operator delete(header);
  }
}

}  // namespace mcb::util
