#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace mcb::util {

std::string json_double(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

[[noreturn]] void fail(std::size_t pos, const std::string& what) {
  throw std::invalid_argument("JSON parse error at offset " +
                              std::to_string(pos) + ": " + what);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) throw std::invalid_argument("JSON: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) {
    throw std::invalid_argument("JSON: not a number");
  }
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) {
    throw std::invalid_argument("JSON: not a string");
  }
  return string_;
}

std::size_t JsonValue::size() const {
  if (kind_ == Kind::kArray) return array_.size();
  if (kind_ == Kind::kObject) return object_.size();
  throw std::invalid_argument("JSON: size() on a scalar");
}

const JsonValue& JsonValue::at(std::size_t i) const {
  if (kind_ != Kind::kArray) throw std::invalid_argument("JSON: not an array");
  if (i >= array_.size()) throw std::invalid_argument("JSON: index range");
  return array_[i];
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (kind_ != Kind::kArray) throw std::invalid_argument("JSON: not an array");
  return array_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) {
    throw std::invalid_argument("JSON: not an object");
  }
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (kind_ != Kind::kObject) {
    throw std::invalid_argument("JSON: not an object");
  }
  return object_;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) throw std::invalid_argument("JSON: missing key " + key);
  return *v;
}

// Recursive-descent parser over the whole input string_view.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing characters");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(pos_, std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.kind_ = JsonValue::Kind::kString;
      v.string_ = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      JsonValue v;
      v.kind_ = JsonValue::Kind::kBool;
      v.bool_ = true;
      return v;
    }
    if (consume_literal("false")) {
      JsonValue v;
      v.kind_ = JsonValue::Kind::kBool;
      v.bool_ = false;
      return v;
    }
    if (consume_literal("null")) return JsonValue{};
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object_.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array_.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail(pos_, "unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail(pos_, "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail(pos_ - 1, "bad \\u digit");
            }
          }
          // UTF-8 encode the code point (basic plane only — the escapes our
          // serializers emit are control characters, all < 0x80).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail(pos_ - 1, "unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail(start, "expected a value");
    double value = 0.0;
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (res.ec != std::errc{} || res.ptr != text_.data() + pos_) {
      fail(start, "malformed number");
    }
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    v.number_ = value;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue json_parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

namespace {

/// Doubles holding exact integers (counters, ids, nanosecond totals) print
/// as integers — json_double's 12-significant-digit rounding would corrupt
/// large counts like a nanosecond wall total.
void serialize_number(std::ostream& os, double v) {
  constexpr double kExact = 9007199254740992.0;  // 2^53
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) <= kExact) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    os << buf;
    return;
  }
  os << json_double(v);
}

bool dropped(const std::vector<std::string>* drop, const std::string& key) {
  if (drop == nullptr) return false;
  for (const std::string& d : *drop) {
    if (d == key) return true;
  }
  return false;
}

void serialize_value(std::ostream& os, const JsonValue& v,
                     const std::vector<std::string>* drop) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      os << "null";
      break;
    case JsonValue::Kind::kBool:
      os << (v.as_bool() ? "true" : "false");
      break;
    case JsonValue::Kind::kNumber:
      serialize_number(os, v.as_number());
      break;
    case JsonValue::Kind::kString:
      os << '"' << json_escape(v.as_string()) << '"';
      break;
    case JsonValue::Kind::kArray: {
      os << '[';
      bool first = true;
      for (const JsonValue& item : v.items()) {
        if (!first) os << ',';
        first = false;
        serialize_value(os, item, drop);
      }
      os << ']';
      break;
    }
    case JsonValue::Kind::kObject: {
      os << '{';
      bool first = true;
      for (const auto& [key, member] : v.members()) {
        if (dropped(drop, key)) continue;
        if (!first) os << ',';
        first = false;
        os << '"' << json_escape(key) << "\":";
        serialize_value(os, member, drop);
      }
      os << '}';
      break;
    }
  }
}

}  // namespace

std::string json_serialize(const JsonValue& v) {
  std::ostringstream os;
  serialize_value(os, v, nullptr);
  return os.str();
}

std::string json_serialize_without(const JsonValue& v,
                                   const std::vector<std::string>& drop) {
  std::ostringstream os;
  serialize_value(os, v, &drop);
  return os.str();
}

}  // namespace mcb::util
