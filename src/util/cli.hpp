// A small command-line flag parser for the tools and benches.
//
// Grammar: <subcommand> (--name value | --name | --name=value)*.
// Typed getters with defaults; unknown-flag detection; helpful errors.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mcb::util {

class Cli {
 public:
  /// Parses argv (excluding argv[0]). Throws std::invalid_argument on
  /// malformed input (flag without name, duplicate flag).
  static Cli parse(int argc, const char* const* argv);
  static Cli parse(const std::vector<std::string>& args);

  /// First positional token (the subcommand); empty if none.
  const std::string& command() const { return command_; }

  bool has(const std::string& name) const;

  /// Typed access. get_* throw std::invalid_argument if the flag is present
  /// but malformed; return `fallback` if absent. Boolean flags are true
  /// when present with no value or with "true"/"1".
  std::string get_string(const std::string& name,
                         const std::string& fallback = "") const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  std::uint64_t get_uint(const std::string& name,
                         std::uint64_t fallback) const;
  bool get_bool(const std::string& name, bool fallback = false) const;

  /// Flags seen but never queried — call after all getters to reject typos.
  std::vector<std::string> unused() const;

 private:
  std::string command_;
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> touched_;
};

}  // namespace mcb::util
