// Synthetic workload generators.
//
// The paper evaluates nothing empirically, so the benchmark harness supplies
// deterministic synthetic inputs: a value set distributed over p processors
// under one of several distribution shapes, including the adversarial
// distributions used in the lower-bound proofs (see theory/adversary.hpp for
// those). Every generator is seeded and reproducible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mcb/types.hpp"

namespace mcb::util {

/// How the n elements are split among the p processors.
enum class Shape {
  kEven,        ///< n_i = n/p for all i (requires p | n).
  kZipf,        ///< sizes proportional to 1/rank — heavy skew, n_max large.
  kOneHot,      ///< one processor holds almost everything (n_max ~ n-p+1).
  kRandom,      ///< i.i.d. random split with every n_i >= 1.
  kStaircase,   ///< n_i proportional to i+1 — mild monotone skew.
};

std::string to_string(Shape s);

/// A concrete distributed input: inputs[i] is processor i's local list.
struct Workload {
  std::vector<std::vector<Word>> inputs;

  std::size_t total() const;
  std::size_t max_local() const;   ///< the paper's n_max
  std::size_t max2_local() const;  ///< the paper's n_max2
};

/// Splits total n into p positive cardinalities according to `shape`.
std::vector<std::size_t> cardinalities(std::size_t n, std::size_t p,
                                       Shape shape, std::uint64_t seed);

/// Generates a workload of n distinct values (a random permutation of a
/// value range) split per `shape`. Values are distinct, as the paper assumes
/// w.l.o.g. (Section 3).
Workload make_workload(std::size_t n, std::size_t p, Shape shape,
                       std::uint64_t seed);

/// Generates a workload with caller-provided cardinalities.
Workload make_workload(const std::vector<std::size_t>& sizes,
                       std::uint64_t seed);

/// Order-insensitive content fingerprint of a distributed list: element
/// count, wrapping sum, and two independent mixes (xor / wrapping sum of
/// splitmix64 of each value). Two lists with equal fingerprints hold the
/// same multiset of values up to astronomically unlikely collisions; used by
/// the sweep harness and the bench guards to reject outputs that drop,
/// duplicate or invent elements.
struct MultisetFingerprint {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t hash_xor = 0;
  std::uint64_t hash_sum = 0;
  friend bool operator==(const MultisetFingerprint&,
                         const MultisetFingerprint&) = default;
};

MultisetFingerprint multiset_fingerprint(
    const std::vector<std::vector<Word>>& lists);

}  // namespace mcb::util
