// Minimal JSON support for the tools and tests.
//
// The library's machine-readable outputs (mcbsim --json, the sweep harness,
// the BENCH_*.json artifacts) are emitted by hand-written serializers;
// json_escape makes the string fields of those outputs well-formed. The
// parser is the consumer side: tests parse the emitted documents back to
// validate structure and values, without an external JSON dependency.
//
// The parser is strict RFC 8259 on everything the serializers emit (objects,
// arrays, strings with escapes, numbers, booleans, null) and throws
// std::invalid_argument on malformed input.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mcb::util {

/// Escapes `s` for inclusion inside a JSON string literal (adds backslash
/// escapes; control characters become \u00XX). Does not add the quotes.
std::string json_escape(std::string_view s);

/// Renders a double as a JSON number: 12 significant digits (the
/// deterministic-output precision every serializer in this repo uses), and
/// `0` for NaN/Inf — JSON has no non-finite literals, so streaming such a
/// value raw (e.g. a 0/0 hit rate) would emit an unparseable document.
std::string json_double(double v);

/// A parsed JSON document node.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Typed accessors; throw std::invalid_argument on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  /// Array access.
  std::size_t size() const;
  const JsonValue& at(std::size_t i) const;
  const std::vector<JsonValue>& items() const;

  /// Object access: find returns nullptr when the key is absent; at throws.
  const JsonValue* find(const std::string& key) const;
  const JsonValue& at(const std::string& key) const;

  /// Object members in insertion order (for consumers that walk a document
  /// structurally, e.g. the `mcbsim gates` scanner). Throws on non-objects.
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

 private:
  friend JsonValue json_parse(std::string_view);
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;  // insertion order
};

/// Parses one JSON document (throws std::invalid_argument on syntax errors
/// or trailing garbage).
JsonValue json_parse(std::string_view text);

/// Serializes a parsed document back to compact canonical text: no
/// whitespace, object members in insertion order, integral numbers (within
/// the double-exact range) rendered without a fraction and everything else
/// through json_double. Two documents whose parses are equal serialize to
/// identical bytes, which is what `mcbsim strip-host` needs to make
/// profiled and unprofiled runs byte-comparable after removing host fields.
std::string json_serialize(const JsonValue& v);

/// json_serialize with a key filter: object members whose key appears in
/// `drop` are removed, recursively, at every nesting depth. This is the
/// engine behind `mcbsim strip-host`.
std::string json_serialize_without(const JsonValue& v,
                                   const std::vector<std::string>& drop);

}  // namespace mcb::util
