#include "util/workload.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"
#include "util/random.hpp"

namespace mcb::util {

std::string to_string(Shape s) {
  switch (s) {
    case Shape::kEven: return "even";
    case Shape::kZipf: return "zipf";
    case Shape::kOneHot: return "onehot";
    case Shape::kRandom: return "random";
    case Shape::kStaircase: return "staircase";
  }
  return "?";
}

std::size_t Workload::total() const {
  std::size_t n = 0;
  for (const auto& v : inputs) n += v.size();
  return n;
}

std::size_t Workload::max_local() const {
  std::size_t m = 0;
  for (const auto& v : inputs) m = std::max(m, v.size());
  return m;
}

std::size_t Workload::max2_local() const {
  std::size_t m1 = 0, m2 = 0;
  for (const auto& v : inputs) {
    if (v.size() >= m1) {
      m2 = m1;
      m1 = v.size();
    } else {
      m2 = std::max(m2, v.size());
    }
  }
  return m2;
}

std::vector<std::size_t> cardinalities(std::size_t n, std::size_t p,
                                       Shape shape, std::uint64_t seed) {
  MCB_REQUIRE(p >= 1 && n >= p,
              "need n >= p >= 1, got n=" << n << " p=" << p);
  std::vector<std::size_t> sizes(p, 0);
  switch (shape) {
    case Shape::kEven: {
      MCB_REQUIRE(n % p == 0, "even shape needs p | n (n=" << n
                                  << ", p=" << p << ")");
      std::fill(sizes.begin(), sizes.end(), n / p);
      break;
    }
    case Shape::kZipf: {
      // weights 1/1, 1/2, ..., 1/p; floor-allocate then distribute the
      // remainder to the heaviest processors, keeping every n_i >= 1.
      double total_w = 0;
      for (std::size_t i = 0; i < p; ++i) total_w += 1.0 / double(i + 1);
      std::size_t assigned = 0;
      for (std::size_t i = 0; i < p; ++i) {
        const double w = (1.0 / double(i + 1)) / total_w;
        sizes[i] = std::max<std::size_t>(
            1, static_cast<std::size_t>(w * double(n)));
        assigned += sizes[i];
      }
      // Correct rounding drift.
      while (assigned > n) {
        for (std::size_t i = p; i-- > 0 && assigned > n;) {
          if (sizes[i] > 1) {
            --sizes[i];
            --assigned;
          }
        }
      }
      for (std::size_t i = 0; assigned < n; i = (i + 1) % p) {
        ++sizes[i];
        ++assigned;
      }
      break;
    }
    case Shape::kOneHot: {
      std::fill(sizes.begin(), sizes.end(), std::size_t{1});
      sizes[0] = n - (p - 1);
      break;
    }
    case Shape::kRandom: {
      Xoshiro256StarStar rng(seed ^ 0x6f6e656c6f6164ull);
      std::fill(sizes.begin(), sizes.end(), std::size_t{1});
      for (std::size_t rest = n - p; rest > 0; --rest) {
        ++sizes[static_cast<std::size_t>(
            rng.uniform(0, static_cast<std::int64_t>(p) - 1))];
      }
      break;
    }
    case Shape::kStaircase: {
      const std::size_t weight_sum = p * (p + 1) / 2;
      std::size_t assigned = 0;
      for (std::size_t i = 0; i < p; ++i) {
        sizes[i] = std::max<std::size_t>(1, (i + 1) * n / weight_sum);
        assigned += sizes[i];
      }
      while (assigned > n) {
        for (std::size_t i = p; i-- > 0 && assigned > n;) {
          if (sizes[i] > 1) {
            --sizes[i];
            --assigned;
          }
        }
      }
      for (std::size_t i = 0; assigned < n; i = (i + 1) % p) {
        ++sizes[i];
        ++assigned;
      }
      break;
    }
  }
  MCB_CHECK(std::accumulate(sizes.begin(), sizes.end(), std::size_t{0}) == n,
            "cardinalities must sum to n");
  return sizes;
}

Workload make_workload(const std::vector<std::size_t>& sizes,
                       std::uint64_t seed) {
  std::size_t n = std::accumulate(sizes.begin(), sizes.end(), std::size_t{0});
  // Distinct values: a shuffled permutation of 1..n scaled by a stride so
  // values are not simply ranks (catches rank/value confusion in tests).
  std::vector<Word> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = static_cast<Word>(i + 1) * 7 - 3;
  }
  Xoshiro256StarStar rng(seed);
  rng.shuffle(values);

  Workload w;
  w.inputs.resize(sizes.size());
  std::size_t at = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    w.inputs[i].assign(values.begin() + static_cast<std::ptrdiff_t>(at),
                       values.begin() + static_cast<std::ptrdiff_t>(at + sizes[i]));
    at += sizes[i];
  }
  return w;
}

Workload make_workload(std::size_t n, std::size_t p, Shape shape,
                       std::uint64_t seed) {
  return make_workload(cardinalities(n, p, shape, seed), seed);
}

MultisetFingerprint multiset_fingerprint(
    const std::vector<std::vector<Word>>& lists) {
  MultisetFingerprint fp;
  for (const auto& list : lists) {
    fp.count += list.size();
    for (Word w : list) {
      const auto u = static_cast<std::uint64_t>(w);
      const std::uint64_t h = splitmix64(u);
      fp.sum += u;
      fp.hash_xor ^= h;
      fp.hash_sum += h;
    }
  }
  return fp;
}

}  // namespace mcb::util
