// Size-classed free-list arena for coroutine frames.
//
// Motivation (docs/ENGINE.md, "Memory model"): every `co_await` of a Task<T>
// subroutine allocates a coroutine frame, and the simulator's hot path
// performs hundreds of thousands of processor resumes per trial with several
// frame allocations each. Round-tripping malloc for frames that are freed
// microseconds later — and re-requested at the exact same size — dominates
// the per-trial wall clock. This arena recycles frames the way calendar-queue
// simulators and coroutine runtimes do: freed frames park on a per-size-class
// free list and the next allocation of that class pops them in O(1).
//
// Layout: every frame allocation (arena or fallback) is prefixed with a
// 16-byte header recording the owning arena (nullptr = global new) and the
// size class. Deallocation routes through the header, so a frame may outlive
// the thread-local arena *scope* it was allocated under — only the arena
// object itself must outlive its frames (Network guarantees this by owning
// the arena and declaring it before the program table).
//
// Thread contract: an arena is single-threaded — it is installed thread_local
// by Network::run(), one Network runs on one thread, and the harness gives
// every trial its own Network, so sweep workers never contend (no locks
// anywhere on this path). Allocate and deallocate must not race; frames are
// freed on the thread that owns the arena.
//
// The arena never returns memory to the system until it is destroyed; a
// sanitizer note follows from that: recycled frames stay addressable, so
// ASan cannot flag use-after-free *within* one arena's lifetime. The
// MCB_FRAME_ARENA=OFF build (plain global new/delete for every frame)
// exists exactly so sanitizer runs can cover both layouts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mcb::util {

/// Telemetry counters of one arena. `allocs`/`frees`/`reuses`/`slab_allocs`
/// are monotonic; `bytes_live`/`bytes_peak` track rounded class bytes
/// (headers included).
struct ArenaStats {
  std::uint64_t allocs = 0;       ///< requests served from this arena
  std::uint64_t frees = 0;        ///< frames returned to this arena
  std::uint64_t reuses = 0;       ///< allocs served from a free list
  std::uint64_t slab_allocs = 0;  ///< allocs that acquired a new slab
  std::uint64_t bytes_live = 0;
  std::uint64_t bytes_peak = 0;

  /// Fraction of arena allocations served without touching the global
  /// allocator — a free-list pop or a bump-carve from a slab already in
  /// hand. Only allocations that had to acquire a fresh slab count as
  /// misses, so the rate measures exactly what the arena exists to avoid:
  /// per-frame round trips to operator new. Approaches 1 quickly — one
  /// 64 KiB slab amortizes hundreds of frames.
  double hit_rate() const {
    return allocs == 0 ? 0.0
                       : static_cast<double>(allocs - slab_allocs) /
                             static_cast<double>(allocs);
  }
};

class FrameArena {
 public:
  /// Size classes are multiples of 64 bytes up to 4 KiB; larger frames fall
  /// back to global new (rare: a frame that big holds large locals that
  /// should live on the processor, not the coroutine frame).
  static constexpr std::size_t kGranularity = 64;
  static constexpr std::size_t kNumClasses = 64;
  static constexpr std::size_t kMaxClassBytes = kGranularity * kNumClasses;
  /// Slabs are carved bump-pointer style; one slab serves many classes.
  static constexpr std::size_t kSlabBytes = 64 * 1024;

  FrameArena() = default;
  ~FrameArena();
  FrameArena(const FrameArena&) = delete;
  FrameArena& operator=(const FrameArena&) = delete;

  const ArenaStats& stats() const { return stats_; }

  // Internal allocation interface (header excluded); frame code uses the
  // free functions below, tests may drive these directly.
  void* allocate_class(std::size_t cls);
  void deallocate_class(void* block, std::size_t cls);

  static std::size_t class_of(std::size_t total_bytes) {
    return (total_bytes - 1) / kGranularity;
  }
  static std::size_t class_bytes(std::size_t cls) {
    return (cls + 1) * kGranularity;
  }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  FreeNode* free_heads_[kNumClasses] = {};
  std::vector<void*> slabs_;
  std::byte* bump_ = nullptr;     ///< next free byte in the current slab
  std::size_t remaining_ = 0;     ///< bytes left in the current slab
  ArenaStats stats_;
};

/// The arena new frame allocations route to on this thread (nullptr = global
/// new). Installed by Network::run() via FrameArenaScope.
FrameArena* current_frame_arena() noexcept;

/// RAII install/restore of the thread-local current arena. Scopes nest (a
/// hosted Network running inside another Network's coroutine restores the
/// outer arena on exit).
class FrameArenaScope {
 public:
  explicit FrameArenaScope(FrameArena* arena) noexcept;
  ~FrameArenaScope();
  FrameArenaScope(const FrameArenaScope&) = delete;
  FrameArenaScope& operator=(const FrameArenaScope&) = delete;

 private:
  FrameArena* prev_;
};

/// Allocates a coroutine frame: from the current arena when one is installed
/// and the size fits a class, from global new otherwise. The returned
/// pointer is 16-byte aligned (the default new alignment GCC assumes for
/// coroutine frames without an aligned promise operator new).
void* frame_allocate(std::size_t bytes);

/// Frees a frame wherever it came from — the header, not the thread-local
/// pointer, decides, so frames may be freed after their allocation scope
/// ended (e.g. suspended programs destroyed by ~Network after run()).
void frame_deallocate(void* p) noexcept;

}  // namespace mcb::util
