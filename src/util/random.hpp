// Deterministic pseudo-random number generation.
//
// All randomness in the library flows through Xoshiro256StarStar so that a
// given seed reproduces an identical run — workloads, traces and statistics
// included. The generator satisfies std::uniform_random_bit_generator and
// can therefore be used with standard distributions, but the helpers below
// avoid libstdc++-version-dependent distribution algorithms so results are
// stable across toolchains.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace mcb::util {

/// One round of the splitmix64 output function (Steele, Lea & Flood; public
/// domain reference algorithm): a stateless 64-bit finalizer/mixer. Used to
/// seed the xoshiro lanes and, by the sweep harness, to derive independent
/// per-trial seeds from (base_seed, trial_index).
std::uint64_t splitmix64(std::uint64_t x);

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four lanes of state from a single 64-bit seed via splitmix64.
  explicit Xoshiro256StarStar(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform01();

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace mcb::util
