#include "util/random.hpp"

#include "util/check.hpp"

namespace mcb::util {
namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

Xoshiro256StarStar::Xoshiro256StarStar(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& lane : s_) {
    lane = splitmix64(sm);
    sm += 0x9e3779b97f4a7c15ull;
  }
  // All-zero state is the one invalid state; splitmix64 cannot produce four
  // zero outputs from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Xoshiro256StarStar::result_type Xoshiro256StarStar::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Xoshiro256StarStar::uniform(std::int64_t lo, std::int64_t hi) {
  MCB_REQUIRE(lo <= hi, "uniform(" << lo << ", " << hi << ")");
  const auto range = static_cast<std::uint64_t>(hi) -
                     static_cast<std::uint64_t>(lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  // Rejection sampling for exact uniformity.
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % range);
}

double Xoshiro256StarStar::uniform01() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

}  // namespace mcb::util
