// Assertion and precondition-checking macros used throughout the library.
//
// MCB_REQUIRE  — validates a user-supplied precondition; throws
//                std::invalid_argument with a formatted message. Always on.
// MCB_CHECK    — validates an internal invariant; throws std::logic_error.
//                Always on (the simulator is a measurement instrument, so
//                internal consistency matters more than the last few percent
//                of speed).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mcb::detail {

[[noreturn]] inline void throw_require(const char* expr, const char* file,
                                       int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_check(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace mcb::detail

#define MCB_REQUIRE(cond, msg)                                        \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::mcb::detail::throw_require(#cond, __FILE__, __LINE__,         \
                                   (std::ostringstream{} << msg).str()); \
    }                                                                 \
  } while (false)

#define MCB_CHECK(cond, msg)                                          \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::mcb::detail::throw_check(#cond, __FILE__, __LINE__,           \
                                 (std::ostringstream{} << msg).str()); \
    }                                                                 \
  } while (false)
