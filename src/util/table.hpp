// Aligned ASCII table printer used by the benchmark harnesses to report
// measured-vs-predicted complexity rows in a form comparable to the paper's
// claims.
#pragma once

#include <concepts>
#include <iosfwd>
#include <string>
#include <vector>

namespace mcb::util {

/// Builds a table row by row and renders it with aligned columns.
///
/// Numeric cells are right-aligned, text cells left-aligned. The first row
/// added via header() is underlined. Intended usage:
///
///   Table t;
///   t.header({"n", "cycles", "n/k", "ratio"});
///   t.row({Table::num(4096), Table::num(1024), ...});
///   std::cout << t;
class Table {
 public:
  struct Cell {
    std::string text;
    bool numeric = false;
  };

  template <std::integral T>
  static Cell num(T v) {
    return {std::to_string(v), true};
  }
  static Cell num(double v, int precision = 3);
  static Cell txt(std::string s);

  void header(std::vector<std::string> names);
  void row(std::vector<Cell> cells);

  /// Renders with two-space column gaps; header separated by dashes.
  std::string str() const;

  friend std::ostream& operator<<(std::ostream& os, const Table& t);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace mcb::util
