#include "util/cli.hpp"

#include <charconv>

#include "util/check.hpp"

namespace mcb::util {

Cli Cli::parse(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return parse(args);
}

Cli Cli::parse(const std::vector<std::string>& args) {
  Cli cli;
  std::size_t at = 0;
  if (at < args.size() && !args[at].starts_with("--")) {
    cli.command_ = args[at++];
  }
  while (at < args.size()) {
    const std::string& tok = args[at];
    MCB_REQUIRE(tok.starts_with("--") && tok.size() > 2,
                "expected --flag, got '" << tok << "'");
    std::string name, value;
    const auto eq = tok.find('=');
    if (eq != std::string::npos) {
      name = tok.substr(2, eq - 2);
      value = tok.substr(eq + 1);
      ++at;
    } else {
      name = tok.substr(2);
      ++at;
      if (at < args.size() && !args[at].starts_with("--")) {
        value = args[at++];
      }
    }
    MCB_REQUIRE(!cli.flags_.contains(name), "duplicate flag --" << name);
    cli.flags_[name] = value;
  }
  return cli;
}

bool Cli::has(const std::string& name) const {
  touched_[name] = true;
  return flags_.contains(name);
}

std::string Cli::get_string(const std::string& name,
                            const std::string& fallback) const {
  touched_[name] = true;
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& name,
                          std::int64_t fallback) const {
  touched_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  std::int64_t out = 0;
  const auto& s = it->second;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  MCB_REQUIRE(ec == std::errc{} && ptr == s.data() + s.size(),
              "--" << name << " expects an integer, got '" << s << "'");
  return out;
}

std::uint64_t Cli::get_uint(const std::string& name,
                            std::uint64_t fallback) const {
  const auto v = get_int(name, static_cast<std::int64_t>(fallback));
  MCB_REQUIRE(v >= 0, "--" << name << " must be non-negative");
  return static_cast<std::uint64_t>(v);
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  touched_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const auto& s = it->second;
  if (s.empty() || s == "true" || s == "1") return true;
  if (s == "false" || s == "0") return false;
  MCB_REQUIRE(false, "--" << name << " expects a boolean, got '" << s << "'");
  return fallback;
}

std::vector<std::string> Cli::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : flags_) {
    if (!touched_.contains(name)) out.push_back(name);
  }
  return out;
}

}  // namespace mcb::util
