#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace mcb::util {

Table::Cell Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return {buf, true};
}

Table::Cell Table::txt(std::string s) {
  return {std::move(s), false};
}

void Table::header(std::vector<std::string> names) {
  header_ = std::move(names);
}

void Table::row(std::vector<Cell> cells) {
  MCB_CHECK(header_.empty() || cells.size() == header_.size(),
            "row width " << cells.size() << " vs header " << header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::str() const {
  const std::size_t ncols =
      header_.empty() ? (rows_.empty() ? 0 : rows_.front().size())
                      : header_.size();
  std::vector<std::size_t> width(ncols, 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size() && c < ncols; ++c) {
      width[c] = std::max(width[c], r[c].text.size());
    }
  }

  std::ostringstream os;
  auto pad = [&](const std::string& s, std::size_t w, bool right) {
    if (right) {
      os << std::string(w - s.size(), ' ') << s;
    } else {
      os << s << std::string(w - s.size(), ' ');
    }
  };

  if (!header_.empty()) {
    for (std::size_t c = 0; c < ncols; ++c) {
      if (c) os << "  ";
      pad(header_[c], width[c], false);
    }
    os << '\n';
    for (std::size_t c = 0; c < ncols; ++c) {
      if (c) os << "  ";
      os << std::string(width[c], '-');
    }
    os << '\n';
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) os << "  ";
      pad(r[c].text, width[c], r[c].numeric);
    }
    os << '\n';
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.str();
}

}  // namespace mcb::util
