#include "se/shout_echo.hpp"

#include <algorithm>
#include <limits>

#include "algo/common.hpp"
#include "seq/selection.hpp"
#include "seq/sorting.hpp"
#include "util/check.hpp"

namespace mcb::se {

ShoutEchoNet::ShoutEchoNet(std::size_t p) : p_(p) {
  MCB_REQUIRE(p >= 1, "need at least one processor");
}

std::vector<Message> ShoutEchoNet::shout(std::size_t shouter,
                                         const Message& msg,
                                         const EchoFn& echo) {
  MCB_REQUIRE(shouter < p_, "shouter " << shouter << " of " << p_);
  ++stats_.activities;
  stats_.messages += 1 + (p_ - 1);  // the shout plus one echo from each
  std::vector<Message> echoes(p_);
  for (std::size_t i = 0; i < p_; ++i) {
    if (i == shouter) continue;
    echoes[i] = echo(i, msg);
  }
  return echoes;
}

namespace {

// Shout opcodes (first message word).
enum Op : Word {
  kReport = 1,     ///< reply with (median, count) of your candidates
  kPurgeLe = 2,    ///< purge candidates <= arg, then report
  kPurgeGe = 3,    ///< purge candidates >= arg, then report
  kCountGe = 4,    ///< reply with #candidates >= arg
  kFetch = 5,      ///< args (proc, index): that processor replies with its
                   ///< index-th candidate
  kDone = 6,       ///< selection finished; arg is the answer
};

struct ProcState {
  std::vector<Word> cands;
};

Message pair_report(ProcState& st) {
  if (st.cands.empty()) return Message::of(algo::kDummy, Word{0});
  std::vector<Word> tmp = st.cands;
  const Word med = seq::median(tmp);
  return Message::of(med, static_cast<Word>(st.cands.size()));
}

}  // namespace

SESelectionResult se_select_rank(const std::vector<std::vector<Word>>& inputs,
                                 std::size_t d) {
  const std::size_t p = inputs.size();
  MCB_REQUIRE(p >= 1, "no processors");
  std::size_t n = 0;
  for (const auto& in : inputs) {
    MCB_REQUIRE(!in.empty(), "every processor needs at least one element");
    n += in.size();
  }
  MCB_REQUIRE(1 <= d && d <= n, "rank " << d << " of " << n);

  ShoutEchoNet net(p);
  std::vector<ProcState> state(p);
  for (std::size_t i = 0; i < p; ++i) state[i].cands = inputs[i];

  auto handler = [&state](std::size_t proc, const Message& m) -> Message {
    auto& st = state[proc];
    switch (m.at(0)) {
      case kReport:
        return pair_report(st);
      case kPurgeLe:
        std::erase_if(st.cands, [&](Word w) { return w <= m.at(1); });
        return pair_report(st);
      case kPurgeGe:
        std::erase_if(st.cands, [&](Word w) { return w >= m.at(1); });
        return pair_report(st);
      case kCountGe: {
        Word c = 0;
        for (Word w : st.cands) {
          if (w >= m.at(1)) ++c;
        }
        return Message::of(c);
      }
      case kFetch:
        if (static_cast<std::size_t>(m.at(1)) == proc) {
          return Message::of(
              st.cands.at(static_cast<std::size_t>(m.at(2))));
        }
        return Message::of(Word{0});
      case kDone:
        return Message::of(Word{0});
    }
    MCB_CHECK(false, "bad shout opcode");
    return {};
  };

  // The coordinator is P_1; its own candidate set participates locally.
  constexpr std::size_t kCoord = 0;
  constexpr std::size_t kThreshold = 4;

  SESelectionResult result;
  std::size_t m_total = n;
  Message next_shout = Message::of(Word{kReport});
  bool done = false;

  while (!done) {
    // One activity: (purge +) report — collect the (median, count) pairs.
    auto echoes = net.shout(kCoord, next_shout, handler);
    // The coordinator applies the same purge to its own candidates.
    std::vector<algo::KV> pairs;
    {
      auto& own = state[kCoord].cands;
      if (next_shout.at(0) == kPurgeLe) {
        std::erase_if(own, [&](Word w) { return w <= next_shout.at(1); });
      } else if (next_shout.at(0) == kPurgeGe) {
        std::erase_if(own, [&](Word w) { return w >= next_shout.at(1); });
      }
      const auto own_pair = pair_report(state[kCoord]);
      pairs.push_back(algo::KV{own_pair.at(0), own_pair.at(1)});
    }
    for (std::size_t i = 0; i < p; ++i) {
      if (i == kCoord) continue;
      pairs.push_back(algo::KV{echoes[i].at(0), echoes[i].at(1)});
    }

    std::size_t m_check = 0;
    for (const auto& kv : pairs) {
      m_check += static_cast<std::size_t>(kv.val);
    }
    MCB_CHECK(m_check == m_total, "candidate count drifted");

    if (m_total <= kThreshold) break;  // termination phase below
    ++result.filter_phases;

    // Weighted median of the medians (free local computation).
    std::sort(pairs.begin(), pairs.end(), [](const auto& a, const auto& b) {
      return desc_before(a, b);
    });
    const std::size_t half = (m_total + 1) / 2;
    Word med_star = 0;
    std::size_t prefix = 0;
    for (const auto& kv : pairs) {
      prefix += static_cast<std::size_t>(kv.val);
      if (prefix >= half) {
        med_star = kv.key;
        break;
      }
    }

    // One activity: count candidates >= med_star.
    auto counts =
        net.shout(kCoord, Message::of(Word{kCountGe}, med_star), handler);
    std::size_t m_s = 0;
    for (Word w : state[kCoord].cands) {
      if (w >= med_star) ++m_s;
    }
    for (std::size_t i = 0; i < p; ++i) {
      if (i != kCoord) m_s += static_cast<std::size_t>(counts[i].at(0));
    }

    if (m_s == d) {
      result.value = med_star;
      done = true;
    } else if (m_s > d) {
      next_shout = Message::of(Word{kPurgeLe}, med_star);
      m_total = m_s - 1;
    } else {
      next_shout = Message::of(Word{kPurgeGe}, med_star);
      d -= m_s;
      m_total -= m_s;
    }
  }

  if (!done) {
    // Termination: fetch the few survivors one activity each, select
    // locally at the coordinator.
    std::vector<Word> pool = state[kCoord].cands;
    for (std::size_t i = 0; i < p; ++i) {
      if (i == kCoord) continue;
      const std::size_t have = state[i].cands.size();
      for (std::size_t j = 0; j < have; ++j) {
        auto echoes = net.shout(
            kCoord,
            Message::of(Word{kFetch}, static_cast<Word>(i),
                        static_cast<Word>(j)),
            handler);
        pool.push_back(echoes[i].at(0));
      }
    }
    MCB_CHECK(d >= 1 && d <= pool.size(), "termination rank out of range");
    result.value = seq::kth_largest(pool, d);
  }

  // Announce the answer (the echoes are acknowledgements).
  net.shout(kCoord, Message::of(Word{kDone}, result.value), handler);
  result.stats = net.stats();
  return result;
}

SESelectionResult se_select_binary_search(
    const std::vector<std::vector<Word>>& inputs, std::size_t d) {
  const std::size_t p = inputs.size();
  MCB_REQUIRE(p >= 1, "no processors");
  std::size_t n = 0;
  for (const auto& in : inputs) {
    MCB_REQUIRE(!in.empty(), "every processor needs at least one element");
    n += in.size();
  }
  MCB_REQUIRE(1 <= d && d <= n, "rank " << d << " of " << n);

  ShoutEchoNet net(p);
  auto count_ge = [&inputs](std::size_t proc, const Message& m) -> Message {
    Word c = 0;
    for (Word w : inputs[proc]) {
      if (w >= m.at(1)) ++c;
    }
    return Message::of(c);
  };
  auto minmax = [&inputs](std::size_t proc, const Message&) -> Message {
    const auto [lo, hi] =
        std::minmax_element(inputs[proc].begin(), inputs[proc].end());
    return Message::of(*lo, *hi);
  };

  // Activity 1: learn the global value range.
  Word lo = *std::min_element(inputs[0].begin(), inputs[0].end());
  Word hi = *std::max_element(inputs[0].begin(), inputs[0].end());
  auto ranges = net.shout(0, Message::of(Word{0}), minmax);
  for (std::size_t i = 1; i < p; ++i) {
    lo = std::min(lo, ranges[i].at(0));
    hi = std::max(hi, ranges[i].at(1));
  }

  // Binary search over values: the answer is the largest v present with
  // #(>= v) >= d; with distinct elements #(>= answer) == d exactly.
  while (lo < hi) {
    const Word mid = lo + (hi - lo + 1) / 2;  // round up so lo advances
    auto echoes = net.shout(0, Message::of(Word{kCountGe}, mid), count_ge);
    std::size_t ge = 0;
    for (Word w : inputs[0]) {
      if (w >= mid) ++ge;
    }
    for (std::size_t i = 1; i < p; ++i) {
      ge += static_cast<std::size_t>(echoes[i].at(0));
    }
    if (ge >= d) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }

  SESelectionResult result;
  result.value = lo;
  result.stats = net.stats();
  return result;
}

}  // namespace mcb::se
