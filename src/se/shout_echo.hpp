// The Shout-Echo broadcast model (Santoro & Sidney), Section 9's porting
// target: "In [Marb85] we have implemented the selection algorithm in the
// Shout-Echo broadcast model, improving the previous best upper bound in
// that model [Rote83] by a factor of O(log p)."
//
// One *communication activity* consists of a single processor broadcasting
// a message (the shout) and receiving a reply from every other processor
// (the echoes). Complexity is measured in activities and total messages
// (1 shout + p-1 echoes per activity). Like the MCB, messages carry
// O(log beta) bits.
//
// The model is inherently coordinator-driven, so no coroutine machinery is
// needed: the network dispatches each shout to per-processor echo handlers
// synchronously and accounts for the traffic.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "mcb/message.hpp"
#include "mcb/types.hpp"

namespace mcb::se {

struct SEStats {
  std::size_t activities = 0;
  std::uint64_t messages = 0;  ///< shouts + echoes
};

/// The Shout-Echo network. Processor-local state lives with the caller;
/// the network only enforces the activity structure and counts traffic.
class ShoutEchoNet {
 public:
  /// echo(proc, shout) -> that processor's reply. Called once per
  /// non-shouting processor, in processor order.
  using EchoFn =
      std::function<Message(std::size_t proc, const Message& shout)>;

  explicit ShoutEchoNet(std::size_t p);

  std::size_t p() const { return p_; }

  /// One activity: `shouter` broadcasts `msg`; returns the p-1 echoes
  /// indexed by processor (the shouter's own slot holds an empty Message).
  std::vector<Message> shout(std::size_t shouter, const Message& msg,
                             const EchoFn& echo);

  const SEStats& stats() const { return stats_; }

 private:
  std::size_t p_;
  SEStats stats_;
};

struct SESelectionResult {
  Word value = 0;
  std::size_t filter_phases = 0;
  SEStats stats;
};

/// Selection by rank in the Shout-Echo model — the Section 8 filtering
/// algorithm ported as in [Marb85]: each phase costs O(1) activities
/// (collect (median, count) pairs by echo, shout the weighted median, count
/// by echo), so N[d] is found in O(log n) activities. Distinct values
/// required, every processor non-empty.
SESelectionResult se_select_rank(const std::vector<std::vector<Word>>& inputs,
                                 std::size_t d);

/// Baseline in the same model: binary search over the value range (shout a
/// pivot, echo local counts). O(log(value range)) activities — what the
/// filtering approach improves on when values are from a large universe.
SESelectionResult se_select_binary_search(
    const std::vector<std::vector<Word>>& inputs, std::size_t d);

}  // namespace mcb::se
