// Run statistics: the two complexity measures of the MCB model (cycles and
// messages), broken down per processor, per channel and per named algorithm
// phase, plus auxiliary-storage accounting used to validate the memory
// claims of Section 6.1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mcb/types.hpp"

namespace mcb {

/// Accounting for one named span of cycles (e.g. "transpose", "phase 0").
struct PhaseStats {
  std::string name;
  Cycle first_cycle = 0;   ///< first cycle belonging to the phase
  Cycle cycles = 0;        ///< number of cycles spanned
  std::uint64_t messages = 0;
};

/// Simulated cycles per host second, guarded against sub-resolution runs:
/// a run so short that the steady clock measured sim_wall_ns == 0 reports
/// 0.0 rather than leaking inf/NaN into JSON consumers.
double safe_cycles_per_sec(Cycle cycles, std::uint64_t wall_ns);

struct RunStats {
  Cycle cycles = 0;              ///< total cycles until quiescence
  std::uint64_t messages = 0;    ///< total broadcasts (channel writes)
  std::vector<std::uint64_t> messages_per_proc;
  std::vector<std::uint64_t> messages_per_channel;
  std::vector<std::size_t> peak_aux_words;  ///< per-proc max noted storage
  std::vector<PhaseStats> phases;

  // Simulator telemetry (host-side; not part of the model's accounting and
  // excluded from engine-equivalence comparisons).
  std::uint64_t sim_wall_ns = 0;   ///< wall-clock spent inside Network::run()
  std::uint64_t proc_resumes = 0;  ///< coroutine resumptions performed
  double cycles_per_sec = 0.0;     ///< simulated cycles per host second

  // Worker-pool telemetry. requested echoes SimConfig::threads (0 = "use
  // the hardware"); effective is the lane count the run actually used —
  // serial engines report 1, and the parallel engine silently caps the
  // request at min(hardware, stripe count), which this pair makes visible
  // (mcbsim notes the cap in text output and emits both in --json).
  std::size_t threads_requested = 0;  ///< SimConfig::threads, verbatim
  std::size_t threads_effective = 1;  ///< pool lanes actually used

  // Frame-arena telemetry (util/arena.hpp): coroutine frames allocated by
  // this run's protocol code. All zero under MCB_FRAME_ARENA=OFF.
  std::uint64_t frame_allocs = 0;      ///< frames served by the arena
  std::uint64_t frame_frees = 0;       ///< frames recycled into the arena
  std::uint64_t frame_reuses = 0;      ///< allocs served from a free list
  std::uint64_t arena_bytes_peak = 0;  ///< peak live frame bytes
  double arena_hit_rate = 0.0;         ///< free-list reuse fraction [0, 1]

  /// Largest per-processor auxiliary storage over the whole run.
  std::size_t max_peak_aux() const {
    std::size_t m = 0;
    for (std::size_t v : peak_aux_words) m = m > v ? m : v;
    return m;
  }

  /// Finds a phase by name; nullptr if absent. Phases with duplicate names
  /// are accumulated into the first occurrence when recorded.
  const PhaseStats* phase(const std::string& name) const;

  /// Multi-line human-readable summary.
  std::string summary() const;
};

}  // namespace mcb
