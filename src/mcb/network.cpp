#include "mcb/network.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <thread>
#include <utility>

#include "harness/thread_pool.hpp"
#include "obs/clock.hpp"
#include "obs/profiler.hpp"
#include "util/check.hpp"

namespace mcb {

namespace {

/// Stripe count for the parallel engine. Fixed (never derived from the
/// thread count) so the stripe an id belongs to — and therefore which arena
/// its frames live in and which buffer its wakes land in — is a pure
/// function of (p, id). That makes every reduced number, including the
/// arena telemetry, identical for any worker count.
constexpr std::size_t kStripeCount = 64;

/// Below this many items a parallel pass runs inline on the coordinator
/// (same stripe order, same arenas — identical results, no dispatch cost).
/// Sparse cycles of skip-heavy protocols stay serial; dense cycles fan out.
constexpr std::size_t kParallelBatchMin = 64;

}  // namespace

/// One shard of the parallel engine: a contiguous processor-id range
/// [begin, end) with its own frame arena and per-cycle buffers. A stripe is
/// touched by exactly one worker per pass (the sticky stripe→lane map pins
/// it to one thread for the whole run), so nothing here is synchronized
/// beyond the pool barrier.
struct Network::Stripe {
  struct WakeReg {
    ProcId id;
    Cycle wake;
  };

  util::FrameArena arena;

  // Per-cycle deltas, merged (and cleared) at the barrier in stripe order.
  // staged_writes holds the ids whose pending_write intent was set when they
  // suspended; the coordinator commits them serially (stripe-major = id
  // order) at the top of the next cycle, so the hot path never touches the
  // shared slot arrays from a worker thread.
  std::vector<ProcId> staged_writes;
  std::vector<WakeReg> wakes;
  std::vector<ProcId> active;
  std::uint64_t resumes = 0;
  std::uint64_t completions = 0;
  std::exception_ptr error;
};

Network::Network(SimConfig cfg, TraceSink* sink)
    : cfg_(cfg), sink_(sink), sched_(cfg.p, cfg.k) {
  cfg_.validate();
  mode_ = cfg_.engine;
  tab_.resize(cfg_.p);
  procs_.reserve(cfg_.p);
  for (std::size_t i = 0; i < cfg_.p; ++i) {
    // Proc's constructor is private (Network is its only factory), so
    // make_unique cannot reach it.
    procs_.push_back(std::unique_ptr<Proc>(
        new Proc(*this, static_cast<ProcId>(i))));  // lint-allow: naked-new
  }
  installed_.assign(cfg_.p, false);
  slot_written_ = std::vector<std::atomic<std::uint8_t>>(cfg_.k);
  for (auto& f : slot_written_) f.store(0, std::memory_order_relaxed);
  slot_writer_.assign(cfg_.k, 0);
  slot_msg_.resize(cfg_.k);
  stats_.messages_per_proc.assign(cfg_.p, 0);
  stats_.messages_per_channel.assign(cfg_.k, 0);

  if (mode_ == Engine::kParallel) {
    // Power-of-two stripe width so stripe lookup is a shift (and the drain
    // spans can be cut by binary search on id boundaries). Still a pure
    // function of p — never of the thread count — so the stripe an id maps
    // to, its arena and its staging buffers are thread-count invariant.
    stripe_width_ = std::bit_ceil((cfg_.p + kStripeCount - 1) / kStripeCount);
    stripe_shift_ =
        static_cast<std::uint32_t>(std::countr_zero(stripe_width_));
    const std::size_t stripes =
        (cfg_.p + stripe_width_ - 1) / stripe_width_;
    stripes_.reserve(stripes);
    for (std::size_t s = 0; s < stripes; ++s) {
      stripes_.push_back(std::make_unique<Stripe>());
    }
  }
}

Network::~Network() = default;

Proc& Network::proc(ProcId i) {
  MCB_REQUIRE(i < procs_.size(), "processor index " << i << " of " << cfg_.p);
  return *procs_[i];
}

void Network::install(ProcId i, ProcMain program) {
  MCB_REQUIRE(i < procs_.size(), "processor index " << i << " of " << cfg_.p);
  MCB_REQUIRE(!installed_[i], "P" << i + 1 << " already has a program");
  MCB_REQUIRE(programs_.size() == static_cast<std::size_t>(
                  std::count(installed_.begin(), installed_.end(), true)),
              "programs/installed bookkeeping out of sync");
  program.handle().promise().proc = procs_[i].get();
  tab_.resume_point[i] = program.handle();
  tab_.program[i] = program.handle();
  installed_[i] = true;
  programs_.push_back(std::move(program));
}

void Network::resume_proc(ProcId id) {
  ++stats_.proc_resumes;
  tab_.resume_point[id].resume();
  if (tab_.done[id]) {
    --alive_;
    // Surface any exception that escaped the program. The handle is stored
    // in the table at install time, so this is O(1) per completion.
    if (auto exc = tab_.program[id].promise().exception) {
      std::rethrow_exception(exc);
    }
  }
}

void Network::on_cycle_op(Proc& pr) {
  const ProcId id = pr.id_;
  tab_.wake_cycle[id] = now_ + 1;
  if (mode_ == Engine::kEventDriven) {
    sched_.add_active(id);
    sched_.schedule_wake(id, now_ + 1, now_);
  } else if (mode_ == Engine::kParallel) {
    // The channel intents are already in the ProcTable (the awaiter factory
    // stores them before suspending), so the write can be staged right here
    // — the commit pass then only walks actual writers, not all actives.
    // The active list is only consumed by the traced read/emit pass; leave
    // it empty on untraced runs, where reads fuse into the resume pass.
    Stripe& s = *tl_stripe_;
    if (tab_.pending_write[id]) s.staged_writes.push_back(id);
    if (sink_ != nullptr) s.active.push_back(id);
    s.wakes.push_back(Stripe::WakeReg{id, now_ + 1});
  }
}

void Network::on_sleep(Proc& pr, Cycle t) {
  const ProcId id = pr.id_;
  tab_.wake_cycle[id] = now_ + t;
  if (mode_ == Engine::kEventDriven) {
    sched_.schedule_wake(id, now_ + t, now_);
  } else if (mode_ == Engine::kParallel) {
    tl_stripe_->wakes.push_back(Stripe::WakeReg{id, now_ + t});
  }
}

void Network::span_begin(std::string_view name) {
  if (cfg_.span_sink != nullptr) {
    cfg_.span_sink->on_span_begin(name, now_, stats_.messages);
  }
}

void Network::span_end() {
  if (cfg_.span_sink != nullptr) {
    cfg_.span_sink->on_span_end(now_, stats_.messages);
  }
}

void Network::mark_phase(std::string name) {
  finish_phase();
  phase_name_ = std::move(name);
  phase_start_cycle_ = now_;
  phase_start_messages_ = stats_.messages;
}

void Network::finish_phase() {
  if (phase_name_.empty()) return;
  // Accumulate into an existing phase of the same name (phases that repeat,
  // e.g. the selection filtering rounds, aggregate naturally).
  for (auto& ph : stats_.phases) {
    if (ph.name == phase_name_) {
      ph.cycles += now_ - phase_start_cycle_;
      ph.messages += stats_.messages - phase_start_messages_;
      phase_name_.clear();
      return;
    }
  }
  stats_.phases.push_back(PhaseStats{phase_name_, phase_start_cycle_,
                                     now_ - phase_start_cycle_,
                                     stats_.messages - phase_start_messages_});
  phase_name_.clear();
}

void Network::throw_max_cycles() const {
  throw ProtocolError("run exceeded max_cycles=" +
                      std::to_string(cfg_.max_cycles) +
                      " — deadlocked or runaway protocol");
}

void Network::clear_intents(ProcId i) {
  tab_.pending_write[i].reset();
  tab_.pending_read[i].reset();
  tab_.pending_read_all[i] = 0;
}

void Network::apply_read(ProcId i) {
  tab_.read_result[i].reset();
  if (const auto& rc = tab_.pending_read[i]) {
    if (slot_written_[*rc].load(std::memory_order_relaxed) != 0) {
      tab_.read_result[i] = slot_msg_[*rc];
    }
  }
  if (tab_.pending_read_all[i] != 0) {
    auto& out = tab_.read_all_results[i];
    out.assign(cfg_.k, std::nullopt);
    for (std::size_t c = 0; c < cfg_.k; ++c) {
      if (slot_written_[c].load(std::memory_order_relaxed) != 0) {
        out[c] = slot_msg_[c];
      }
    }
  }
}

void Network::emit_event(ProcId i) {
  const auto& w = tab_.pending_write[i];
  if (!w && !tab_.pending_read[i] && tab_.pending_read_all[i] == 0) {
    return;
  }
  CycleEvent ev;
  ev.cycle = now_;
  ev.proc = i;
  if (w) {
    ev.wrote = w->channel;
    ev.sent = w->msg;
  }
  ev.read = tab_.pending_read[i];
  ev.received = tab_.read_result[i];
  if (tab_.pending_read_all[i] != 0) {
    ev.read_all = true;
    ev.received_all = tab_.read_all_results[i];
  }
  sink_->on_event(ev);
}

RunStats Network::run() {
  MCB_REQUIRE(!ran_, "Network::run() is single-shot — reset() re-arms it");
  MCB_REQUIRE(std::all_of(installed_.begin(), installed_.end(),
                          [](bool b) { return b; }),
              "every processor needs a program before run()");
  ran_ = true;

  // Snapshot the arena counters so the run telemetry below reports this
  // run's deltas. On a fresh network every counter is zero and this is a
  // no-op; on a reset network the arenas carry the previous runs' monotonic
  // totals (and, more usefully, their warm free lists).
  arena_base_ = util::ArenaStats{};
  if (mode_ == Engine::kParallel) {
    for (const auto& s : stripes_) {
      const util::ArenaStats& as = s->arena.stats();
      arena_base_.allocs += as.allocs;
      arena_base_.frees += as.frees;
      arena_base_.reuses += as.reuses;
      arena_base_.slab_allocs += as.slab_allocs;
    }
  } else {
    arena_base_ = arena_.stats();
  }

  const bool parallel = mode_ == Engine::kParallel;

  // The worker pool lives for exactly one run. Sized from SimConfig::threads
  // (0 = hardware), capped at the stripe count — a stripe is the unit of
  // work, so extra lanes could never run anything. The requested/effective
  // pair is host telemetry (like sim_wall_ns): the cap is otherwise silent,
  // and `mcbsim --json` surfaces it.
  stats_.threads_requested = cfg_.threads;
  stats_.threads_effective = 1;
  std::unique_ptr<harness::WorkerPool> pool;
  if (parallel) {
    std::size_t t = cfg_.threads;
    if (t == 0) {
      // Pool sizing only — results are byte-identical at any lane count,
      // so host topology never reaches the model. lint-allow: nondeterminism
      const unsigned hw = std::thread::hardware_concurrency();
      t = hw == 0 ? 1 : hw;
    }
    t = std::min(t, stripes_.size());
    stats_.threads_effective = t;
    if (t > 1) {
      pool = std::make_unique<harness::WorkerPool>(t);
      pool_ = pool.get();
    }
  }

  // Sticky stripe→lane affinity: contiguous stripe blocks per lane (stripes
  // are contiguous id ranges, so each lane owns one contiguous id range for
  // the whole run). The map never influences results — any lane could run
  // any stripe and produce the same bytes — it only keeps each stripe's
  // table columns, arena and staging buffers in one core's cache. The
  // warmup dispatch below makes the owning lane do the first touch of its
  // stripes' staging buffers (NUMA-aware first-touch placement) and
  // pre-sizes them so the hot path never grows a vector.
  if (pool_ != nullptr) {
    const std::size_t lanes = pool_->workers();
    stripe_lane_.resize(stripes_.size());
    for (std::size_t s = 0; s < stripes_.size(); ++s) {
      stripe_lane_[s] =
          static_cast<std::uint32_t>(s * lanes / stripes_.size());
    }
    // mcblint: parallel-region begin
    pool_->run_static([this](std::size_t w) {
      for (std::size_t s = 0; s < stripes_.size(); ++s) {
        if (stripe_lane_[s] != w) continue;
        Stripe& st = *stripes_[s];
        st.staged_writes.reserve(stripe_width_);
        st.wakes.reserve(stripe_width_);
        if (sink_ != nullptr) st.active.reserve(stripe_width_);
      }
    });
    // mcblint: parallel-region end
  }

  // Attach the profiler (opt-in host flight recorder). The pool's per-lane
  // busy clock must be set before begin_run snapshots the counters, and
  // before the first dispatch — the attach is only legal between batches.
  if (cfg_.profiler != nullptr) {
    if (pool_ != nullptr) pool_->set_busy_clock(&cfg_.profiler->clock());
    cfg_.profiler->begin_run(pool_ != nullptr ? pool_->workers() : 1,
                             pool_ != nullptr ? &pool_->lane_busy_ns()
                                              : nullptr);
  }

  // Route coroutine frame allocations (Task subroutine frames created by
  // protocol code from here on) through this network's arena. The scope
  // nests, so a hosted Network run inside a program restores the outer
  // arena when it finishes. No-op layout-wise under MCB_FRAME_ARENA=OFF.
  // The parallel engine skips this: its resume passes install the stripe
  // arenas instead, whichever thread ends up running the stripe.
  std::unique_ptr<util::FrameArenaScope> frame_scope;
  if (!parallel) {
    frame_scope = std::make_unique<util::FrameArenaScope>(&arena_);
  }

  // Wall-clock telemetry (stats_.sim_wall_ns), never a protocol input —
  // the sim clock is the cycle counter. Read through the obs::Clock seam so
  // the engine directory stays free of direct *_clock::now() calls and
  // tests can pin host-time telemetry with a fake clock.
  obs::Clock& clk =
      cfg_.clock != nullptr ? *cfg_.clock : obs::default_clock();
  const std::uint64_t wall_start = clk.now_ns();

  // Initial resume: run every program up to its first cycle boundary.
  alive_ = cfg_.p;
  if (parallel) {
    std::vector<ProcId> all(cfg_.p);
    for (std::size_t i = 0; i < cfg_.p; ++i) {
      all[i] = static_cast<ProcId>(i);
    }
    build_segments(all);
    parallel_resume(all, /*initial=*/true, /*apply_reads=*/false);
  } else {
    for (ProcId i = 0; i < cfg_.p; ++i) {
      if (tab_.done[i] == 0) resume_proc(i);
    }
  }

  switch (mode_) {
    case Engine::kEventDriven:
      run_event_loop();
      break;
    case Engine::kReference:
      run_reference_loop();
      break;
    case Engine::kParallel:
      run_parallel_loop();
      break;
  }

  if (cfg_.profiler != nullptr) cfg_.profiler->end_run();
  pool_ = nullptr;
  finish_phase();
  stats_.cycles = now_;
  stats_.peak_aux_words = tab_.peak_aux_words;

  stats_.sim_wall_ns = clk.now_ns() - wall_start;
  stats_.cycles_per_sec =
      safe_cycles_per_sec(stats_.cycles, stats_.sim_wall_ns);

  // Allocation telemetry (host-side, like sim_wall_ns; all zero under
  // MCB_FRAME_ARENA=OFF where frames go through plain global new). The
  // parallel engine reduces its stripe arenas by sum — stripes are a
  // function of p alone, so the totals are thread-count independent
  // (bytes_peak is the sum of per-stripe peaks, not a global peak).
  //
  // All counts are deltas against the start-of-run snapshot, so a run on a
  // reset network reports the same frame_allocs/frees a fresh network would
  // — what changes on reuse is frame_reuses and the hit rate, which is the
  // point. bytes_peak stays the raw monotonic peak: live bytes return to
  // zero between runs (every frame is freed), so later runs' peaks match a
  // fresh network's and the value is reset-invariant anyway.
  std::uint64_t allocs = 0, frees = 0, reuses = 0, peak = 0, slabs = 0;
  if (parallel) {
    for (const auto& s : stripes_) {
      const util::ArenaStats& as = s->arena.stats();
      allocs += as.allocs;
      frees += as.frees;
      reuses += as.reuses;
      peak += as.bytes_peak;
      slabs += as.slab_allocs;
    }
  } else {
    const util::ArenaStats& as = arena_.stats();
    allocs = as.allocs;
    frees = as.frees;
    reuses = as.reuses;
    peak = as.bytes_peak;
    slabs = as.slab_allocs;
  }
  allocs -= arena_base_.allocs;
  frees -= arena_base_.frees;
  reuses -= arena_base_.reuses;
  slabs -= arena_base_.slab_allocs;
  stats_.frame_allocs = allocs;
  stats_.frame_frees = frees;
  stats_.frame_reuses = reuses;
  stats_.arena_bytes_peak = peak;
  stats_.arena_hit_rate =
      allocs == 0 ? 0.0
                  : static_cast<double>(allocs - slabs) /
                        static_cast<double>(allocs);
  return stats_;
}

void Network::reset() {
  // Destroy the program objects first: destroying a suspended coroutine
  // frame releases it (and any in-scope Task frames it holds) back to the
  // owning arena through the allocation headers, so the free lists are warm
  // for the next install round. Only then null the table's handles.
  programs_.clear();
  tab_.reset();
  std::fill(installed_.begin(), installed_.end(), false);

  for (auto& f : slot_written_) f.store(0, std::memory_order_relaxed);
  std::fill(slot_writer_.begin(), slot_writer_.end(), ProcId{0});
  // slot_msg_ entries are dead once the written flags are clear — every
  // read consults the flag first — so the payloads need no scrubbing.

  sched_.reset();
  now_ = 0;
  alive_ = 0;
  ran_ = false;

  stats_ = RunStats{};
  stats_.messages_per_proc.assign(cfg_.p, 0);
  stats_.messages_per_channel.assign(cfg_.k, 0);
  phase_name_.clear();
  phase_start_cycle_ = 0;
  phase_start_messages_ = 0;

  // Parallel-engine scratch. The stripe buffers are normally drained at the
  // barrier (and the staging buffers at the commit), but a run aborted by a
  // thrown error can leave residue.
  pool_ = nullptr;
  segments_.clear();
  segment_ids_ = nullptr;
  pending_error_ = nullptr;
  for (auto& s : stripes_) {
    s->staged_writes.clear();
    s->wakes.clear();
    s->active.clear();
    s->resumes = 0;
    s->completions = 0;
    s->error = nullptr;
  }
  arena_base_ = util::ArenaStats{};
}

// The event-driven engine. Observationally identical to the reference loop
// below (which is the semantics specification); see docs/ENGINE.md for the
// step-by-step argument. The three O(p) scans become iterations over the
// scheduler's active list, the O(k) slot sweep becomes an iteration over the
// dirty-channel list, and stretches of cycles in which no processor is due
// are skipped in one jump.
void Network::run_event_loop() {
  while (alive_ > 0) {
    MCB_REQUIRE(!sched_.queue_empty(),
                "live processors but an empty wake queue");

    // Idle-cycle fast-forward: if nobody wakes before cycle `next`, the
    // cycles in between carry no writes, no reads and no trace events (a
    // sleeping processor holds no channel intent), so jump straight to the
    // last idle cycle. Statistics are exact because nothing observable
    // happens in the skipped span.
    const Cycle next = sched_.next_wake(now_);
    if (next > now_ + 1) now_ = next - 1;
    if (now_ >= cfg_.max_cycles) throw_max_cycles();

    const auto& active = sched_.active();

    // Step 1: writes. Collision check per the model. `active` holds the
    // processors that suspended with a channel intent, in id order — the
    // same order the reference scan visits them.
    for (ProcId id : active) {
      const auto& w = tab_.pending_write[id];
      if (!w) continue;
      const ChannelId c = w->channel;
      if (slot_written_[c].load(std::memory_order_relaxed) != 0) {
        throw CollisionError(now_, c, slot_writer_[c], id);
      }
      slot_written_[c].store(1, std::memory_order_relaxed);
      slot_writer_[c] = id;
      slot_msg_[c] = w->msg;
      sched_.mark_dirty(c);
      ++stats_.messages;
      ++stats_.messages_per_proc[id];
      ++stats_.messages_per_channel[c];
    }

    // Step 2: reads (concurrent reads allowed; silence is observable).
    for (ProcId id : active) apply_read(id);

    if (sink_ != nullptr) {
      for (ProcId id : active) emit_event(id);
    }

    // Step 3: the cycle completes. Clear only the channels written this
    // cycle, then resume every processor due at the new time, in processor
    // order (the drain is id-sorted; processors re-registering while it is
    // iterated wake strictly later and land in fresh buckets).
    for (ChannelId c : sched_.dirty()) {
      slot_written_[c].store(0, std::memory_order_relaxed);
    }
    sched_.clear_dirty();
    sched_.clear_active();
    ++now_;
    for (ProcId id : sched_.drain_due(now_)) {
      clear_intents(id);
      resume_proc(id);
    }
  }
}

// The scan-the-world reference loop — the seed implementation, kept as the
// executable specification of the cycle semantics and as the baseline that
// bench_simspeed measures the other engines against.
void Network::run_reference_loop() {
  while (alive_ > 0) {
    if (now_ >= cfg_.max_cycles) throw_max_cycles();

    // Step 1: writes. Collision check per the model.
    for (auto& f : slot_written_) f.store(0, std::memory_order_relaxed);
    for (ProcId id = 0; id < cfg_.p; ++id) {
      if (tab_.done[id] != 0) continue;
      const auto& w = tab_.pending_write[id];
      if (!w) continue;
      const ChannelId c = w->channel;
      if (slot_written_[c].load(std::memory_order_relaxed) != 0) {
        throw CollisionError(now_, c, slot_writer_[c], id);
      }
      slot_written_[c].store(1, std::memory_order_relaxed);
      slot_writer_[c] = id;
      slot_msg_[c] = w->msg;
      ++stats_.messages;
      ++stats_.messages_per_proc[id];
      ++stats_.messages_per_channel[c];
    }

    // Step 2: reads (concurrent reads allowed; silence is observable).
    for (ProcId id = 0; id < cfg_.p; ++id) {
      if (tab_.done[id] == 0) apply_read(id);
    }

    if (sink_ != nullptr) {
      for (ProcId id = 0; id < cfg_.p; ++id) {
        if (tab_.done[id] == 0) emit_event(id);
      }
    }

    // Step 3: the cycle completes; resume local computation of every
    // processor due this cycle (in processor order, for determinism).
    ++now_;
    for (ProcId id = 0; id < cfg_.p; ++id) {
      if (tab_.done[id] != 0 || tab_.wake_cycle[id] > now_) continue;
      clear_intents(id);
      resume_proc(id);
    }
  }
}

// ---------------------------------------------------------------------------
// Parallel engine.
//
// Same wake queue and cycle structure as the event loop, reorganized around
// one barrier per cycle:
//
//   * Writes are staged per stripe when the processor suspends (on_cycle_op
//     runs inside the resume pass, on the stripe's owning lane) and
//     committed serially at the top of the next cycle, stripe-major — which
//     is id order — so a collision throws the reference engine's exact
//     CollisionError with no atomic claims and no re-scan. A cycle carries
//     at most k successful writes, so the serial commit is O(k), not O(p).
//
//   * The read scan is fused into the next cycle's resume pass: reads only
//     consume slot state that is final at the commit, and the dirty slots
//     are cleared after the fused pass instead of before it. Untraced runs
//     therefore cross exactly one barrier per cycle; traced runs keep a
//     dedicated read pass + serial emit (the sink's stream is part of the
//     identity contract) for two barriers per cycle.
//
// Everything order-sensitive — trace emission, wake merging, stats
// accumulation, collision and exception reporting — happens serially on the
// coordinator between barriers, in stripe order, which equals processor-id
// order because stripes are contiguous id ranges. Which lane runs a stripe
// is invisible in the results; the sticky map only exists for cache
// locality. See docs/ENGINE.md ("The parallel engine").
// ---------------------------------------------------------------------------

/// Splits an id-sorted list into per-stripe contiguous segments.
void Network::build_segments(const std::vector<ProcId>& ids) {
  Scheduler::segment_spans(ids, stripe_shift_, segments_);
  segment_ids_ = &ids;
}

/// Runs fn over every segment: on the pool when the batch is worth the
/// dispatch, inline on the coordinator otherwise. Both paths execute the
/// identical per-stripe code, so the choice is invisible in the results.
/// Pool dispatch is static: each lane walks the contiguous block of
/// segments its stripes map to (stripe_lane_ is monotone, so a prefix sum
/// over per-lane segment counts yields each lane's [lo, hi) block).
bool Network::dispatch_segments(std::size_t total_items,
                                const harness::FnRef& fn) {
  const std::size_t n = segments_.size();
  if (pool_ == nullptr || n <= 1 || total_items < kParallelBatchMin) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return false;
  }
  const std::size_t lanes = pool_->workers();
  lane_seg_.assign(lanes + 1, 0);
  for (const auto& seg : segments_) {
    ++lane_seg_[stripe_lane_[seg.stripe] + 1];
  }
  for (std::size_t w = 0; w < lanes; ++w) lane_seg_[w + 1] += lane_seg_[w];
  // mcblint: parallel-region begin
  pool_->run_static([this, &fn](std::size_t w) {
    for (std::size_t si = lane_seg_[w]; si < lane_seg_[w + 1]; ++si) fn(si);
  });
  // mcblint: parallel-region end
  return true;
}

/// Serial commit of the writes staged during the previous resume pass,
/// walking stripes in ascending order. Within a stripe the staging order is
/// ascending id (the drain is id-sorted), so the commit visits writers in
/// global id order and reproduces the reference engine's CollisionError —
/// same cycle, channel, first and second writer — directly at the conflict.
void Network::commit_staged_writes() {
  for (auto& sp : stripes_) {
    Stripe& s = *sp;
    if (s.staged_writes.empty()) continue;
    for (ProcId id : s.staged_writes) {
      const auto& w = tab_.pending_write[id];
      const ChannelId c = w->channel;
      if (slot_written_[c].load(std::memory_order_relaxed) != 0) {
        throw CollisionError(now_, c, slot_writer_[c], id);
      }
      slot_written_[c].store(1, std::memory_order_relaxed);
      slot_writer_[c] = id;
      slot_msg_[c] = w->msg;
      sched_.mark_dirty(c);
      ++stats_.messages;
      ++stats_.messages_per_proc[id];
      ++stats_.messages_per_channel[c];
    }
    s.staged_writes.clear();
  }
}

/// Resumes every id in `ids` (id-sorted; segments_ must already describe
/// it), fanned out over stripe segments. With apply_reads, each processor's
/// pending read is served against the previous cycle's (still uncleared)
/// slot state immediately before it resumes — the fused read scan. Wake
/// registrations are buffered per stripe and merged at the barrier in
/// stripe order — which is id order — so the scheduler's next-bucket stays
/// id-sorted by construction, exactly as in the serial engines. Exceptions
/// abort the throwing stripe at the throw point; the lowest-stripe error is
/// rethrown, which names the same first thrower as a serial id-order drain
/// would.
void Network::parallel_resume(const std::vector<ProcId>& ids, bool initial,
                              bool apply_reads) {
  // The per-stripe resume task is the one region that legitimately writes
  // an engine member: the thread-local stripe cursor protocol code routes
  // its staging through. Everything else it touches is reached through the
  // per-stripe `Stripe& s` or is a per-id column of the proc table that
  // only this stripe's ids index.
  // mcblint: parallel-region begin allow=tl_stripe_
  auto task = [this, initial, apply_reads](std::size_t si) {
    const Scheduler::Span seg = segments_[si];
    Stripe& s = *stripes_[seg.stripe];
    util::FrameArenaScope frame_scope(&s.arena);
    tl_stripe_ = &s;
    const auto& due = *segment_ids_;
    try {
      for (std::uint32_t j = seg.lo; j < seg.hi; ++j) {
        const ProcId id = due[j];
        if (!initial) {
          // apply_read on a processor waking from skip() only resets its
          // (unobservable until its next channel op) read result — same
          // net effect as the serial engines, which reset it on the next
          // active cycle.
          if (apply_reads) apply_read(id);
          clear_intents(id);
        }
        ++s.resumes;
        tab_.resume_point[id].resume();
        if (tab_.done[id] != 0) {
          ++s.completions;
          if (auto exc = tab_.program[id].promise().exception) {
            std::rethrow_exception(exc);
          }
        }
      }
    } catch (...) {
      s.error = std::current_exception();
    }
    tl_stripe_ = nullptr;
  };
  // mcblint: parallel-region end
  obs::Profiler* const prof = cfg_.profiler;
  if (prof != nullptr) prof->barrier_begin();
  const bool pooled = dispatch_segments(ids.size(), task);
  if (prof != nullptr) prof->barrier_end(initial ? "init" : "resume", pooled);

  for (const Scheduler::Span& seg : segments_) {
    Stripe& s = *stripes_[seg.stripe];
    if (s.error != nullptr && pending_error_ == nullptr) {
      pending_error_ = s.error;
    }
    s.error = nullptr;
    for (const Stripe::WakeReg& w : s.wakes) {
      sched_.schedule_wake(w.id, w.wake, now_);
    }
    for (ProcId id : s.active) sched_.add_active(id);
    stats_.proc_resumes += s.resumes;
    alive_ -= s.completions;
    s.wakes.clear();
    s.active.clear();
    s.resumes = 0;
    s.completions = 0;
  }
  if (prof != nullptr) prof->merge_end();
  if (pending_error_ != nullptr) {
    std::exception_ptr e = pending_error_;
    pending_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void Network::run_parallel_loop() {
  const bool traced = sink_ != nullptr;
  obs::Profiler* const prof = cfg_.profiler;
  while (alive_ > 0) {
    MCB_REQUIRE(!sched_.queue_empty(),
                "live processors but an empty wake queue");

    // Idle-cycle fast-forward, as in the event loop. A jump can only happen
    // when no processor held a channel intent for the cycle in flight
    // (channel ops always wake one cycle ahead), so the staging buffers are
    // necessarily empty across a jump.
    const Cycle next = sched_.next_wake(now_);
    if (next > now_ + 1) now_ = next - 1;
    if (now_ >= cfg_.max_cycles) throw_max_cycles();

    // Step 1 (serial, O(writes <= k)): commit the writes of the cycle in
    // flight, staged when their processors suspended.
    if (prof != nullptr) {
      const std::uint64_t t0 = prof->clock().now_ns();
      commit_staged_writes();
      prof->record_commit(prof->clock().now_ns() - t0);
    } else {
      commit_staged_writes();
    }

    // Step 2, traced runs only: a dedicated parallel read pass over the
    // active list plus the serial trace emission — sinks are not
    // thread-safe and their stream is part of the identity contract.
    // Untraced runs skip both (reads fuse into step 3) and never populate
    // the active list at all.
    if (traced) {
      const auto& active = sched_.active();
      if (!active.empty()) {
        build_segments(active);
        if (prof != nullptr) prof->barrier_begin();
        // mcblint: parallel-region begin
        const bool pooled =
            dispatch_segments(active.size(), [this](std::size_t si) {
              const Scheduler::Span seg = segments_[si];
              const auto& ids = *segment_ids_;
              for (std::uint32_t j = seg.lo; j < seg.hi; ++j) {
                apply_read(ids[j]);
              }
            });
        // mcblint: parallel-region end
        if (prof != nullptr) prof->barrier_end("read", pooled);
        for (ProcId id : active) emit_event(id);
        if (prof != nullptr) prof->merge_end();
      }
      sched_.clear_active();
    }

    // Step 3: the cycle completes; fused read + resume of everything due,
    // stripe-merged at the barrier. The slots written this cycle stay
    // readable until after the pass, then are cleared for the next commit.
    ++now_;
    const auto& due = sched_.drain_due_spans(now_, stripe_shift_, segments_);
    segment_ids_ = &due;
    parallel_resume(due, /*initial=*/false, /*apply_reads=*/!traced);

    for (ChannelId c : sched_.dirty()) {
      slot_written_[c].store(0, std::memory_order_relaxed);
    }
    sched_.clear_dirty();
    if (prof != nullptr) prof->cycle_end();
  }
}

}  // namespace mcb
