#include "mcb/network.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace mcb {

Network::Network(SimConfig cfg, TraceSink* sink)
    : cfg_(cfg), sink_(sink) {
  cfg_.validate();
  procs_.reserve(cfg_.p);
  for (std::size_t i = 0; i < cfg_.p; ++i) {
    procs_.push_back(
        std::unique_ptr<Proc>(new Proc(*this, static_cast<ProcId>(i))));
  }
  installed_.assign(cfg_.p, false);
  slots_.resize(cfg_.k);
  stats_.messages_per_proc.assign(cfg_.p, 0);
  stats_.messages_per_channel.assign(cfg_.k, 0);
}

Proc& Network::proc(ProcId i) {
  MCB_REQUIRE(i < procs_.size(), "processor index " << i << " of " << cfg_.p);
  return *procs_[i];
}

void Network::install(ProcId i, ProcMain program) {
  MCB_REQUIRE(i < procs_.size(), "processor index " << i << " of " << cfg_.p);
  MCB_REQUIRE(!installed_[i], "P" << i + 1 << " already has a program");
  MCB_REQUIRE(programs_.size() == static_cast<std::size_t>(
                  std::count(installed_.begin(), installed_.end(), true)),
              "programs/installed bookkeeping out of sync");
  program.handle().promise().proc = procs_[i].get();
  procs_[i]->resume_point_ = program.handle();
  installed_[i] = true;
  programs_.push_back(std::move(program));
}

void Network::resume_proc(Proc& pr) {
  pr.resume_point_.resume();
  if (pr.done_) {
    --alive_;
    // Surface any exception that escaped the program, annotated with the
    // processor it came from.
    for (auto& prog : programs_) {
      if (prog.handle() && prog.handle().promise().proc == &pr) {
        if (auto exc = prog.handle().promise().exception) {
          std::rethrow_exception(exc);
        }
        break;
      }
    }
  }
}

void Network::mark_phase(std::string name) {
  finish_phase();
  phase_name_ = std::move(name);
  phase_start_cycle_ = now_;
  phase_start_messages_ = stats_.messages;
}

void Network::finish_phase() {
  if (phase_name_.empty()) return;
  // Accumulate into an existing phase of the same name (phases that repeat,
  // e.g. the selection filtering rounds, aggregate naturally).
  for (auto& ph : stats_.phases) {
    if (ph.name == phase_name_) {
      ph.cycles += now_ - phase_start_cycle_;
      ph.messages += stats_.messages - phase_start_messages_;
      phase_name_.clear();
      return;
    }
  }
  stats_.phases.push_back(PhaseStats{phase_name_, phase_start_cycle_,
                                     now_ - phase_start_cycle_,
                                     stats_.messages - phase_start_messages_});
  phase_name_.clear();
}

RunStats Network::run() {
  MCB_REQUIRE(!ran_, "Network::run() is single-shot");
  MCB_REQUIRE(std::all_of(installed_.begin(), installed_.end(),
                          [](bool b) { return b; }),
              "every processor needs a program before run()");
  ran_ = true;

  // Initial resume: run every program up to its first cycle boundary.
  alive_ = cfg_.p;
  for (auto& pr : procs_) {
    if (!pr->done_) resume_proc(*pr);
  }

  while (alive_ > 0) {
    if (now_ >= cfg_.max_cycles) {
      throw ProtocolError("run exceeded max_cycles=" +
                          std::to_string(cfg_.max_cycles) +
                          " — deadlocked or runaway protocol");
    }

    // Step 1: writes. Collision check per the model.
    for (auto& slot : slots_) slot.written = false;
    for (auto& pr : procs_) {
      if (pr->done_ || !pr->pending_write_) continue;
      auto& slot = slots_[pr->pending_write_->channel];
      if (slot.written) {
        throw CollisionError(now_, pr->pending_write_->channel, slot.writer,
                             pr->id_);
      }
      slot.written = true;
      slot.writer = pr->id_;
      slot.msg = pr->pending_write_->msg;
      ++stats_.messages;
      ++stats_.messages_per_proc[pr->id_];
      ++stats_.messages_per_channel[pr->pending_write_->channel];
    }

    // Step 2: reads (concurrent reads allowed; silence is observable).
    for (auto& pr : procs_) {
      if (pr->done_) continue;
      pr->read_result_.reset();
      if (pr->pending_read_) {
        const auto& slot = slots_[*pr->pending_read_];
        if (slot.written) pr->read_result_ = slot.msg;
      }
      if (pr->pending_read_all_) {
        pr->read_all_results_.assign(cfg_.k, std::nullopt);
        for (std::size_t c = 0; c < cfg_.k; ++c) {
          if (slots_[c].written) pr->read_all_results_[c] = slots_[c].msg;
        }
      }
    }

    if (sink_ != nullptr) {
      for (auto& pr : procs_) {
        if (pr->done_ || (!pr->pending_write_ && !pr->pending_read_)) continue;
        CycleEvent ev;
        ev.cycle = now_;
        ev.proc = pr->id_;
        if (pr->pending_write_) {
          ev.wrote = pr->pending_write_->channel;
          ev.sent = pr->pending_write_->msg;
        }
        ev.read = pr->pending_read_;
        ev.received = pr->read_result_;
        sink_->on_event(ev);
      }
    }

    // Step 3: the cycle completes; resume local computation of every
    // processor due this cycle (in processor order, for determinism).
    ++now_;
    for (auto& pr : procs_) {
      if (pr->done_ || pr->wake_cycle_ > now_) continue;
      pr->pending_write_.reset();
      pr->pending_read_.reset();
      pr->pending_read_all_ = false;
      resume_proc(*pr);
    }
  }

  finish_phase();
  stats_.cycles = now_;
  stats_.peak_aux_words.resize(cfg_.p);
  for (std::size_t i = 0; i < cfg_.p; ++i) {
    stats_.peak_aux_words[i] = procs_[i]->peak_aux_words_;
  }
  return stats_;
}

}  // namespace mcb
