#include "mcb/network.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "util/check.hpp"

namespace mcb {

Network::Network(SimConfig cfg, TraceSink* sink)
    : cfg_(cfg), sink_(sink), sched_(cfg.p, cfg.k) {
  cfg_.validate();
  event_mode_ = cfg_.engine == Engine::kEventDriven;
  procs_.reserve(cfg_.p);
  for (std::size_t i = 0; i < cfg_.p; ++i) {
    // Proc's constructor is private (Network is its only factory), so
    // make_unique cannot reach it.
    procs_.push_back(std::unique_ptr<Proc>(
        new Proc(*this, static_cast<ProcId>(i))));  // lint-allow: naked-new
  }
  installed_.assign(cfg_.p, false);
  slots_.resize(cfg_.k);
  stats_.messages_per_proc.assign(cfg_.p, 0);
  stats_.messages_per_channel.assign(cfg_.k, 0);
}

Proc& Network::proc(ProcId i) {
  MCB_REQUIRE(i < procs_.size(), "processor index " << i << " of " << cfg_.p);
  return *procs_[i];
}

void Network::install(ProcId i, ProcMain program) {
  MCB_REQUIRE(i < procs_.size(), "processor index " << i << " of " << cfg_.p);
  MCB_REQUIRE(!installed_[i], "P" << i + 1 << " already has a program");
  MCB_REQUIRE(programs_.size() == static_cast<std::size_t>(
                  std::count(installed_.begin(), installed_.end(), true)),
              "programs/installed bookkeeping out of sync");
  program.handle().promise().proc = procs_[i].get();
  procs_[i]->resume_point_ = program.handle();
  procs_[i]->program_ = program.handle();
  installed_[i] = true;
  programs_.push_back(std::move(program));
}

void Network::resume_proc(Proc& pr) {
  ++stats_.proc_resumes;
  pr.resume_point_.resume();
  if (pr.done_) {
    --alive_;
    // Surface any exception that escaped the program. The handle is stored
    // on the Proc at install time, so this is O(1) per completion.
    if (auto exc = pr.program_.promise().exception) {
      std::rethrow_exception(exc);
    }
  }
}

void Network::on_cycle_op(Proc& pr) {
  pr.wake_cycle_ = now_ + 1;
  if (event_mode_) {
    sched_.add_active(&pr);
    sched_.schedule_wake(&pr, pr.id_, pr.wake_cycle_, now_);
  }
}

void Network::on_sleep(Proc& pr, Cycle t) {
  pr.wake_cycle_ = now_ + t;
  if (event_mode_) {
    sched_.schedule_wake(&pr, pr.id_, pr.wake_cycle_, now_);
  }
}

void Network::span_begin(std::string_view name) {
  if (cfg_.span_sink != nullptr) {
    cfg_.span_sink->on_span_begin(name, now_, stats_.messages);
  }
}

void Network::span_end() {
  if (cfg_.span_sink != nullptr) {
    cfg_.span_sink->on_span_end(now_, stats_.messages);
  }
}

void Network::mark_phase(std::string name) {
  finish_phase();
  phase_name_ = std::move(name);
  phase_start_cycle_ = now_;
  phase_start_messages_ = stats_.messages;
}

void Network::finish_phase() {
  if (phase_name_.empty()) return;
  // Accumulate into an existing phase of the same name (phases that repeat,
  // e.g. the selection filtering rounds, aggregate naturally).
  for (auto& ph : stats_.phases) {
    if (ph.name == phase_name_) {
      ph.cycles += now_ - phase_start_cycle_;
      ph.messages += stats_.messages - phase_start_messages_;
      phase_name_.clear();
      return;
    }
  }
  stats_.phases.push_back(PhaseStats{phase_name_, phase_start_cycle_,
                                     now_ - phase_start_cycle_,
                                     stats_.messages - phase_start_messages_});
  phase_name_.clear();
}

void Network::throw_max_cycles() const {
  throw ProtocolError("run exceeded max_cycles=" +
                      std::to_string(cfg_.max_cycles) +
                      " — deadlocked or runaway protocol");
}

RunStats Network::run() {
  MCB_REQUIRE(!ran_, "Network::run() is single-shot");
  MCB_REQUIRE(std::all_of(installed_.begin(), installed_.end(),
                          [](bool b) { return b; }),
              "every processor needs a program before run()");
  ran_ = true;

  // Route coroutine frame allocations (Task subroutine frames created by
  // protocol code from here on) through this network's arena. The scope
  // nests, so a hosted Network run inside a program restores the outer
  // arena when it finishes. No-op layout-wise under MCB_FRAME_ARENA=OFF.
  util::FrameArenaScope frame_scope(&arena_);

  const auto wall_start = std::chrono::steady_clock::now();

  // Initial resume: run every program up to its first cycle boundary.
  alive_ = cfg_.p;
  for (auto& pr : procs_) {
    if (!pr->done_) resume_proc(*pr);
  }

  if (event_mode_) {
    run_event_loop();
  } else {
    run_reference_loop();
  }

  finish_phase();
  stats_.cycles = now_;
  stats_.peak_aux_words.resize(cfg_.p);
  for (std::size_t i = 0; i < cfg_.p; ++i) {
    stats_.peak_aux_words[i] = procs_[i]->peak_aux_words_;
  }

  const auto wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - wall_start)
                           .count();
  stats_.sim_wall_ns = static_cast<std::uint64_t>(wall_ns);
  stats_.cycles_per_sec =
      safe_cycles_per_sec(stats_.cycles, stats_.sim_wall_ns);

  // Allocation telemetry (host-side, like sim_wall_ns; all zero under
  // MCB_FRAME_ARENA=OFF where frames go through plain global new).
  const util::ArenaStats& as = arena_.stats();
  stats_.frame_allocs = as.allocs;
  stats_.frame_frees = as.frees;
  stats_.arena_bytes_peak = as.bytes_peak;
  stats_.arena_hit_rate = as.hit_rate();
  return stats_;
}

// The event-driven engine. Observationally identical to the reference loop
// below (which is the semantics specification); see docs/ENGINE.md for the
// step-by-step argument. The three O(p) scans become iterations over the
// scheduler's active list, the O(k) slot sweep becomes an iteration over the
// dirty-channel list, and stretches of cycles in which no processor is due
// are skipped in one jump.
void Network::run_event_loop() {
  while (alive_ > 0) {
    MCB_REQUIRE(!sched_.queue_empty(),
                "live processors but an empty wake queue");

    // Idle-cycle fast-forward: if nobody wakes before cycle `next`, the
    // cycles in between carry no writes, no reads and no trace events (a
    // sleeping processor holds no channel intent), so jump straight to the
    // last idle cycle. Statistics are exact because nothing observable
    // happens in the skipped span.
    const Cycle next = sched_.next_wake(now_);
    if (next > now_ + 1) now_ = next - 1;
    if (now_ >= cfg_.max_cycles) throw_max_cycles();

    const auto& active = sched_.active();

    // Step 1: writes. Collision check per the model. `active` holds the
    // processors that suspended with a channel intent, in id order — the
    // same order the reference scan visits them.
    for (Proc* pr : active) {
      if (!pr->pending_write_) continue;
      auto& slot = slots_[pr->pending_write_->channel];
      if (slot.written) {
        throw CollisionError(now_, pr->pending_write_->channel, slot.writer,
                             pr->id_);
      }
      slot.written = true;
      slot.writer = pr->id_;
      slot.msg = pr->pending_write_->msg;
      sched_.mark_dirty(pr->pending_write_->channel);
      ++stats_.messages;
      ++stats_.messages_per_proc[pr->id_];
      ++stats_.messages_per_channel[pr->pending_write_->channel];
    }

    // Step 2: reads (concurrent reads allowed; silence is observable).
    for (Proc* pr : active) {
      pr->read_result_.reset();
      if (pr->pending_read_) {
        const auto& slot = slots_[*pr->pending_read_];
        if (slot.written) pr->read_result_ = slot.msg;
      }
      if (pr->pending_read_all_) {
        pr->read_all_results_.assign(cfg_.k, std::nullopt);
        for (std::size_t c = 0; c < cfg_.k; ++c) {
          if (slots_[c].written) pr->read_all_results_[c] = slots_[c].msg;
        }
      }
    }

    if (sink_ != nullptr) {
      for (Proc* pr : active) {
        if (!pr->pending_write_ && !pr->pending_read_ &&
            !pr->pending_read_all_) {
          continue;
        }
        CycleEvent ev;
        ev.cycle = now_;
        ev.proc = pr->id_;
        if (pr->pending_write_) {
          ev.wrote = pr->pending_write_->channel;
          ev.sent = pr->pending_write_->msg;
        }
        ev.read = pr->pending_read_;
        ev.received = pr->read_result_;
        if (pr->pending_read_all_) {
          ev.read_all = true;
          ev.received_all = pr->read_all_results_;
        }
        sink_->on_event(ev);
      }
    }

    // Step 3: the cycle completes. Clear only the channels written this
    // cycle, then resume every processor due at the new time, in processor
    // order (the drain is id-sorted; processors re-registering while it is
    // iterated wake strictly later and land in fresh buckets).
    for (ChannelId c : sched_.dirty()) slots_[c].written = false;
    sched_.clear_dirty();
    sched_.clear_active();
    ++now_;
    for (const Scheduler::Entry& e : sched_.drain_due(now_)) {
      Proc* pr = e.proc;
      pr->pending_write_.reset();
      pr->pending_read_.reset();
      pr->pending_read_all_ = false;
      resume_proc(*pr);
    }
  }
}

// The scan-the-world reference loop — the seed implementation, kept as the
// executable specification of the cycle semantics and as the baseline that
// bench_simspeed measures the event engine against.
void Network::run_reference_loop() {
  while (alive_ > 0) {
    if (now_ >= cfg_.max_cycles) throw_max_cycles();

    // Step 1: writes. Collision check per the model.
    for (auto& slot : slots_) slot.written = false;
    for (auto& pr : procs_) {
      if (pr->done_ || !pr->pending_write_) continue;
      auto& slot = slots_[pr->pending_write_->channel];
      if (slot.written) {
        throw CollisionError(now_, pr->pending_write_->channel, slot.writer,
                             pr->id_);
      }
      slot.written = true;
      slot.writer = pr->id_;
      slot.msg = pr->pending_write_->msg;
      ++stats_.messages;
      ++stats_.messages_per_proc[pr->id_];
      ++stats_.messages_per_channel[pr->pending_write_->channel];
    }

    // Step 2: reads (concurrent reads allowed; silence is observable).
    for (auto& pr : procs_) {
      if (pr->done_) continue;
      pr->read_result_.reset();
      if (pr->pending_read_) {
        const auto& slot = slots_[*pr->pending_read_];
        if (slot.written) pr->read_result_ = slot.msg;
      }
      if (pr->pending_read_all_) {
        pr->read_all_results_.assign(cfg_.k, std::nullopt);
        for (std::size_t c = 0; c < cfg_.k; ++c) {
          if (slots_[c].written) pr->read_all_results_[c] = slots_[c].msg;
        }
      }
    }

    if (sink_ != nullptr) {
      for (auto& pr : procs_) {
        if (pr->done_ || (!pr->pending_write_ && !pr->pending_read_ &&
                          !pr->pending_read_all_)) {
          continue;
        }
        CycleEvent ev;
        ev.cycle = now_;
        ev.proc = pr->id_;
        if (pr->pending_write_) {
          ev.wrote = pr->pending_write_->channel;
          ev.sent = pr->pending_write_->msg;
        }
        ev.read = pr->pending_read_;
        ev.received = pr->read_result_;
        if (pr->pending_read_all_) {
          ev.read_all = true;
          ev.received_all = pr->read_all_results_;
        }
        sink_->on_event(ev);
      }
    }

    // Step 3: the cycle completes; resume local computation of every
    // processor due this cycle (in processor order, for determinism).
    ++now_;
    for (auto& pr : procs_) {
      if (pr->done_ || pr->wake_cycle_ > now_) continue;
      pr->pending_write_.reset();
      pr->pending_read_.reset();
      pr->pending_read_all_ = false;
      resume_proc(*pr);
    }
  }
}

}  // namespace mcb
