// Simulator fault types.
#pragma once

#include <stdexcept>
#include <string>

#include "mcb/types.hpp"

namespace mcb {

/// Base class of all simulator faults.
class SimError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Two or more processors wrote the same channel in the same cycle. Per the
/// model (Section 2), the computation fails; algorithms in this library must
/// be collision-free, so this surfacing at runtime is always a bug in a
/// protocol schedule.
class CollisionError : public SimError {
 public:
  CollisionError(Cycle cycle, ChannelId channel, ProcId first, ProcId second);

  Cycle cycle() const { return cycle_; }
  ChannelId channel() const { return channel_; }
  ProcId first_writer() const { return first_; }
  ProcId second_writer() const { return second_; }

 private:
  Cycle cycle_;
  ChannelId channel_;
  ProcId first_;
  ProcId second_;
};

/// A processor program violated the cycle protocol (e.g. a coroutine kept a
/// dangling context, or the run exceeded the configured cycle limit).
class ProtocolError : public SimError {
 public:
  using SimError::SimError;
};

inline CollisionError::CollisionError(Cycle cycle, ChannelId channel,
                                      ProcId first, ProcId second)
    : SimError("write collision on channel C" + std::to_string(channel + 1) +
               " in cycle " + std::to_string(cycle) + " between P" +
               std::to_string(first + 1) + " and P" +
               std::to_string(second + 1)),
      cycle_(cycle),
      channel_(channel),
      first_(first),
      second_(second) {}

}  // namespace mcb
