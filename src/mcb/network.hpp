// The MCB(p, k) network simulator.
//
// Faithful to Section 2 of the paper: computation proceeds in globally
// synchronous cycles; during each cycle every processor may write one
// channel and read one channel, then perform arbitrary local computation.
// Channels are memoryless slots of width one cycle: a message is observed
// only by processors reading that channel in that same cycle; a read of a
// channel nobody wrote yields detectable silence. Two writers on one channel
// in one cycle is a collision and aborts the run with CollisionError.
//
// Complexity accounting is exact: `cycles` counts synchronous rounds until
// every program has completed, `messages` counts channel writes.
//
// Three engines implement these semantics (SimConfig::engine):
//
//   * kEventDriven (default) — a wake-queue scheduler (mcb/scheduler.hpp).
//     Suspending processors register their wake cycle and channel intents;
//     each cycle touches only the participating processors and the written
//     channels, and runs of cycles in which nothing observable happens are
//     fast-forwarded in O(1). Simulation cost is O(events), not O(p·cycles).
//
//   * kReference — the original scan-the-world loop: three O(p) passes and
//     an O(k) slot sweep per cycle. It is the executable specification the
//     other engines are tested against (tests/scheduler_equivalence_test.cpp
//     asserts bit-identical statistics).
//
//   * kParallel — the event engine's wake queue plus a persistent worker
//     pool: writes are staged per stripe at suspension time and committed
//     serially in id order, and the read scan is fused into the resume pass
//     (one barrier per cycle when untraced), fanned out over fixed
//     processor stripes with a sticky stripe→lane affinity map and merged
//     deterministically at the barrier. Identical observable output for any
//     thread count.
//
// All engines walk the same struct-of-arrays state: per-processor hot state
// lives in a ProcTable (mcb/proc_table.hpp) and channel slots in flat
// per-channel arrays, both owned by this class. See docs/ENGINE.md for the
// equivalence argument.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mcb/coro.hpp"
#include "mcb/errors.hpp"
#include "mcb/proc.hpp"
#include "mcb/proc_table.hpp"
#include "mcb/scheduler.hpp"
#include "mcb/sim_config.hpp"
#include "mcb/stats.hpp"
#include "mcb/trace.hpp"
#include "util/arena.hpp"

namespace mcb::harness {
class WorkerPool;  // src/harness/thread_pool.hpp; only Engine::kParallel
class FnRef;       // non-allocating callable reference (same header)
}  // namespace mcb::harness

namespace mcb {

class Network {
 public:
  /// Creates the network with all p processor contexts; programs are
  /// attached afterwards with install(). `sink` may be nullptr.
  explicit Network(SimConfig cfg, TraceSink* sink = nullptr);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  const SimConfig& config() const { return cfg_; }

  /// Processor context i, used to create its program:
  ///   net.install(i, my_protocol(net.proc(i), args...));
  Proc& proc(ProcId i);

  /// Attaches a program to processor i. Every processor must have exactly
  /// one program installed before run().
  void install(ProcId i, ProcMain program);

  /// Runs to quiescence (all programs complete) and returns the statistics.
  /// Throws CollisionError / ProtocolError on model violations, and
  /// propagates any exception escaping a processor program. Single-shot per
  /// install round: reset() re-arms the network for another one.
  RunStats run();

  /// Returns the network to its pre-install state so a new set of programs
  /// can be installed and run on the same allocation: processor contexts,
  /// channel-slot arrays, scheduler tiers and — crucially for the serving
  /// layer — the warmed coroutine-frame arenas all survive, so repeated
  /// runs skip both the setup allocations and most slab acquisitions
  /// (RunStats::frame_reuses shows the free-list hits). Model-observable
  /// state is cleared completely: a run after reset() is byte-identical —
  /// stats, traces, conformance streams — to the same run on a fresh
  /// network (tests/reset_test.cpp holds every engine to that). Safe after
  /// a failed run too: suspended programs are destroyed and their frames
  /// recycled. Must not be called from inside a processor program.
  void reset();

  /// Completed cycles (valid during a run; queried by Proc::now()).
  Cycle now() const { return now_; }

  /// Starts a named accounting phase at the current cycle.
  void mark_phase(std::string name);

  /// Span marks forwarded to SimConfig::span_sink (obs::Span), stamped with
  /// the current cycle and network-wide message count. No-ops (one branch)
  /// without a sink.
  void span_begin(std::string_view name);
  void span_end();

 private:
  friend class Proc;
  friend struct Proc::CycleAwaiter;
  friend struct Proc::SkipAwaiter;
  friend struct Proc::MultiReadAwaiter;

  // One shard of the parallel engine (defined in network.cpp): a contiguous
  // processor-id range with its own frame arena, wake/active buffers and
  // stats deltas. Stripe count depends only on p — never on the thread
  // count — so the reduction at the barrier is bitwise reproducible.
  struct Stripe;

  // Suspension hooks called by the Proc awaiters. on_cycle_op: `pr` holds a
  // channel intent for the cycle in flight and wakes next cycle. on_sleep:
  // `pr` sleeps for t cycles with no channel activity.
  void on_cycle_op(Proc& pr);
  void on_sleep(Proc& pr, Cycle t);

  void resume_proc(ProcId id);
  void run_event_loop();
  void run_reference_loop();
  void run_parallel_loop();
  [[noreturn]] void throw_max_cycles() const;
  void finish_phase();

  // Shared cycle steps over the SoA state (used by all engines).
  void apply_read(ProcId i);
  void emit_event(ProcId i);  // requires sink_ != nullptr
  void clear_intents(ProcId i);

  // Parallel-engine internals (network.cpp). dispatch_segments returns
  // whether the pass fanned out to the pool (false = it ran inline on the
  // coordinator) — the profiler attributes barrier time differently per
  // mode, and the choice is otherwise invisible by design.
  void build_segments(const std::vector<ProcId>& ids);
  bool dispatch_segments(std::size_t n, const harness::FnRef& fn);
  void commit_staged_writes();
  void parallel_resume(const std::vector<ProcId>& ids, bool initial,
                       bool apply_reads);

  SimConfig cfg_;
  TraceSink* sink_;

  // Frame arenas for this network's coroutine frames. The serial engines
  // install arena_ thread_local for the duration of run(); the parallel
  // engine gives each stripe its own arena shard instead (stripes_).
  // Declared before programs_ so they are destroyed after them: destroying
  // a suspended program (e.g. after a CollisionError aborted the run) frees
  // its in-scope Task frames back into the owning arena.
  util::FrameArena arena_;
  std::vector<std::unique_ptr<Stripe>> stripes_;

  ProcTable tab_;
  std::vector<std::unique_ptr<Proc>> procs_;
  std::vector<ProcMain> programs_;  // parallel to procs_; keeps frames alive
  std::vector<bool> installed_;

  // Channel state for the cycle in flight, struct-of-arrays: who wrote, and
  // what. The written flags are atomic so the parallel write scan can claim
  // a slot with one exchange; the serial engines use relaxed loads/stores,
  // which compile to plain moves.
  std::vector<std::atomic<std::uint8_t>> slot_written_;
  std::vector<ProcId> slot_writer_;
  std::vector<Message> slot_msg_;

  Scheduler sched_;
  Engine mode_ = Engine::kEventDriven;

  Cycle now_ = 0;
  std::size_t alive_ = 0;
  bool ran_ = false;

  // Parallel-engine per-cycle scratch (see run_parallel_loop).
  harness::WorkerPool* pool_ = nullptr;  // non-null only inside a parallel run
  std::size_t stripe_width_ = 0;   // processor ids per stripe (power of two)
  std::uint32_t stripe_shift_ = 0; // log2(stripe_width_): stripe = id >> shift
  std::vector<Scheduler::Span> segments_;
  const std::vector<ProcId>* segment_ids_ = nullptr;
  // Sticky affinity: stripe s runs on pool lane stripe_lane_[s], every pass
  // of every cycle (monotone block map, rebuilt per run from the pool
  // width). lane_seg_ is the per-dispatch prefix-sum of segments per lane.
  std::vector<std::uint32_t> stripe_lane_;
  std::vector<std::size_t> lane_seg_;
  std::exception_ptr pending_error_;
  // Stripe the current thread is executing on behalf of, so the suspension
  // hooks buffer wake/active registrations locally instead of touching the
  // shared scheduler (nullptr outside a parallel resume pass).
  inline static thread_local Stripe* tl_stripe_ = nullptr;

  RunStats stats_;
  std::string phase_name_;
  Cycle phase_start_cycle_ = 0;
  std::uint64_t phase_start_messages_ = 0;

  // Arena counters (summed over stripes under kParallel) at the start of the
  // current run, so the per-run telemetry reports this run's deltas even on
  // a reset network whose arenas carry warm free lists from earlier runs.
  // Zero for a fresh network, keeping first-run telemetry unchanged.
  util::ArenaStats arena_base_;
};

}  // namespace mcb
