// The MCB(p, k) network simulator.
//
// Faithful to Section 2 of the paper: computation proceeds in globally
// synchronous cycles; during each cycle every processor may write one
// channel and read one channel, then perform arbitrary local computation.
// Channels are memoryless slots of width one cycle: a message is observed
// only by processors reading that channel in that same cycle; a read of a
// channel nobody wrote yields detectable silence. Two writers on one channel
// in one cycle is a collision and aborts the run with CollisionError.
//
// Complexity accounting is exact: `cycles` counts synchronous rounds until
// every program has completed, `messages` counts channel writes.
//
// Two engines implement these semantics (SimConfig::engine):
//
//   * kEventDriven (default) — a wake-queue scheduler (mcb/scheduler.hpp).
//     Suspending processors register their wake cycle and channel intents;
//     each cycle touches only the participating processors and the written
//     channels, and runs of cycles in which nothing observable happens are
//     fast-forwarded in O(1). Simulation cost is O(events), not O(p·cycles).
//
//   * kReference — the original scan-the-world loop: three O(p) passes and
//     an O(k) slot sweep per cycle. It is the executable specification the
//     event engine is tested against (tests/scheduler_equivalence_test.cpp
//     asserts bit-identical statistics).
//
// See docs/ENGINE.md for the equivalence argument.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mcb/coro.hpp"
#include "mcb/errors.hpp"
#include "mcb/proc.hpp"
#include "mcb/scheduler.hpp"
#include "mcb/sim_config.hpp"
#include "mcb/stats.hpp"
#include "mcb/trace.hpp"
#include "util/arena.hpp"

namespace mcb {

class Network {
 public:
  /// Creates the network with all p processor contexts; programs are
  /// attached afterwards with install(). `sink` may be nullptr.
  explicit Network(SimConfig cfg, TraceSink* sink = nullptr);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  const SimConfig& config() const { return cfg_; }

  /// Processor context i, used to create its program:
  ///   net.install(i, my_protocol(net.proc(i), args...));
  Proc& proc(ProcId i);

  /// Attaches a program to processor i. Every processor must have exactly
  /// one program installed before run().
  void install(ProcId i, ProcMain program);

  /// Runs to quiescence (all programs complete) and returns the statistics.
  /// Throws CollisionError / ProtocolError on model violations, and
  /// propagates any exception escaping a processor program. Single-shot.
  RunStats run();

  /// Completed cycles (valid during a run; queried by Proc::now()).
  Cycle now() const { return now_; }

  /// Starts a named accounting phase at the current cycle.
  void mark_phase(std::string name);

  /// Span marks forwarded to SimConfig::span_sink (obs::Span), stamped with
  /// the current cycle and network-wide message count. No-ops (one branch)
  /// without a sink.
  void span_begin(std::string_view name);
  void span_end();

 private:
  friend class Proc;
  friend struct Proc::CycleAwaiter;
  friend struct Proc::SkipAwaiter;
  friend struct Proc::MultiReadAwaiter;

  // Suspension hooks called by the Proc awaiters. on_cycle_op: `pr` holds a
  // channel intent for the cycle in flight and wakes next cycle. on_sleep:
  // `pr` sleeps for t cycles with no channel activity.
  void on_cycle_op(Proc& pr);
  void on_sleep(Proc& pr, Cycle t);

  void resume_proc(Proc& pr);
  void run_event_loop();
  void run_reference_loop();
  [[noreturn]] void throw_max_cycles() const;
  void finish_phase();

  SimConfig cfg_;
  TraceSink* sink_;

  // Frame arena for this network's coroutine frames, installed thread_local
  // for the duration of run(). Declared before programs_ so it is destroyed
  // after them: destroying a suspended program (e.g. after a CollisionError
  // aborted the run) frees its in-scope Task frames back into this arena.
  util::FrameArena arena_;

  std::vector<std::unique_ptr<Proc>> procs_;
  std::vector<ProcMain> programs_;  // parallel to procs_; keeps frames alive
  std::vector<bool> installed_;

  // Channel state for the cycle in flight: who wrote, and what.
  struct Slot {
    bool written = false;
    ProcId writer = 0;
    Message msg;
  };
  std::vector<Slot> slots_;

  Scheduler sched_;
  bool event_mode_ = true;

  Cycle now_ = 0;
  std::size_t alive_ = 0;
  bool ran_ = false;

  RunStats stats_;
  std::string phase_name_;
  Cycle phase_start_cycle_ = 0;
  std::uint64_t phase_start_messages_ = 0;
};

}  // namespace mcb
