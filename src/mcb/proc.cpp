#include "mcb/proc.hpp"

#include <algorithm>
#include <utility>

#include "mcb/network.hpp"
#include "util/check.hpp"

namespace mcb {

std::size_t Proc::p() const { return net_->config().p; }
std::size_t Proc::k() const { return net_->config().k; }
Cycle Proc::now() const { return net_->now(); }

void Proc::mark_done() { net_->tab_.done[id_] = 1; }

Proc::CycleAwaiter Proc::cycle(std::optional<WriteOp> write,
                               std::optional<ChannelId> read) {
  if (write) {
    MCB_REQUIRE(write->channel < k(), "P" << id_ + 1 << " writing channel "
                                          << write->channel << " of " << k());
  }
  if (read) {
    MCB_REQUIRE(*read < k(), "P" << id_ + 1 << " reading channel " << *read
                                 << " of " << k());
  }
  net_->tab_.pending_write[id_] = std::move(write);
  net_->tab_.pending_read[id_] = read;
  return CycleAwaiter{*this};
}

Proc::CycleAwaiter Proc::write(ChannelId ch, Message m) {
  return cycle(WriteOp{ch, std::move(m)}, std::nullopt);
}

Proc::CycleAwaiter Proc::read(ChannelId ch) { return cycle(std::nullopt, ch); }

Proc::CycleAwaiter Proc::write_read(ChannelId wch, Message m, ChannelId rch) {
  return cycle(WriteOp{wch, std::move(m)}, rch);
}

Proc::CycleAwaiter Proc::step() { return cycle(std::nullopt, std::nullopt); }

Proc::SkipAwaiter Proc::skip(Cycle t) { return SkipAwaiter{*this, t}; }

Proc::MultiReadAwaiter Proc::cycle_all(std::optional<WriteOp> write) {
  MCB_REQUIRE(net_->config().multi_read,
              "cycle_all requires SimConfig::multi_read (the Section 9 "
              "model extension)");
  if (write) {
    MCB_REQUIRE(write->channel < k(), "P" << id_ + 1 << " writing channel "
                                          << write->channel << " of " << k());
  }
  net_->tab_.pending_write[id_] = std::move(write);
  net_->tab_.pending_read[id_].reset();
  net_->tab_.pending_read_all[id_] = 1;
  return MultiReadAwaiter{*this};
}

void Proc::note_aux(std::size_t words) {
  auto& peak = net_->tab_.peak_aux_words[id_];
  peak = std::max(peak, words);
}

void Proc::mark_phase(std::string name) { net_->mark_phase(std::move(name)); }

void Proc::span_begin(std::string_view name) { net_->span_begin(name); }

void Proc::span_end() { net_->span_end(); }

void Proc::CycleAwaiter::await_suspend(std::coroutine_handle<> h) noexcept {
  proc.net_->tab_.resume_point[proc.id_] = h;
  proc.net_->on_cycle_op(proc);
}

Proc::ReadResult Proc::CycleAwaiter::await_resume() const noexcept {
  return std::move(proc.net_->tab_.read_result[proc.id_]);
}

void Proc::SkipAwaiter::await_suspend(std::coroutine_handle<> h) noexcept {
  ProcTable& tab = proc.net_->tab_;
  tab.pending_write[proc.id_].reset();
  tab.pending_read[proc.id_].reset();
  tab.pending_read_all[proc.id_] = 0;
  tab.resume_point[proc.id_] = h;
  proc.net_->on_sleep(proc, t);
}

void Proc::MultiReadAwaiter::await_suspend(
    std::coroutine_handle<> h) noexcept {
  proc.net_->tab_.resume_point[proc.id_] = h;
  proc.net_->on_cycle_op(proc);
}

std::vector<Proc::ReadResult> Proc::MultiReadAwaiter::await_resume()
    const noexcept {
  return std::move(proc.net_->tab_.read_all_results[proc.id_]);
}

}  // namespace mcb
