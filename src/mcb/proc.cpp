#include "mcb/proc.hpp"

#include <algorithm>
#include <utility>

#include "mcb/network.hpp"
#include "util/check.hpp"

namespace mcb {

std::size_t Proc::p() const { return net_->config().p; }
std::size_t Proc::k() const { return net_->config().k; }
Cycle Proc::now() const { return net_->now(); }

Proc::CycleAwaiter Proc::cycle(std::optional<WriteOp> write,
                               std::optional<ChannelId> read) {
  if (write) {
    MCB_REQUIRE(write->channel < k(), "P" << id_ + 1 << " writing channel "
                                          << write->channel << " of " << k());
  }
  if (read) {
    MCB_REQUIRE(*read < k(), "P" << id_ + 1 << " reading channel " << *read
                                 << " of " << k());
  }
  pending_write_ = std::move(write);
  pending_read_ = read;
  return CycleAwaiter{*this};
}

Proc::CycleAwaiter Proc::write(ChannelId ch, Message m) {
  return cycle(WriteOp{ch, std::move(m)}, std::nullopt);
}

Proc::CycleAwaiter Proc::read(ChannelId ch) { return cycle(std::nullopt, ch); }

Proc::CycleAwaiter Proc::write_read(ChannelId wch, Message m, ChannelId rch) {
  return cycle(WriteOp{wch, std::move(m)}, rch);
}

Proc::CycleAwaiter Proc::step() { return cycle(std::nullopt, std::nullopt); }

Proc::SkipAwaiter Proc::skip(Cycle t) { return SkipAwaiter{*this, t}; }

Proc::MultiReadAwaiter Proc::cycle_all(std::optional<WriteOp> write) {
  MCB_REQUIRE(net_->config().multi_read,
              "cycle_all requires SimConfig::multi_read (the Section 9 "
              "model extension)");
  if (write) {
    MCB_REQUIRE(write->channel < k(), "P" << id_ + 1 << " writing channel "
                                          << write->channel << " of " << k());
  }
  pending_write_ = std::move(write);
  pending_read_.reset();
  pending_read_all_ = true;
  return MultiReadAwaiter{*this};
}

void Proc::note_aux(std::size_t words) {
  peak_aux_words_ = std::max(peak_aux_words_, words);
}

void Proc::mark_phase(std::string name) { net_->mark_phase(std::move(name)); }

void Proc::span_begin(std::string_view name) { net_->span_begin(name); }

void Proc::span_end() { net_->span_end(); }

void Proc::CycleAwaiter::await_suspend(std::coroutine_handle<> h) noexcept {
  proc.resume_point_ = h;
  proc.net_->on_cycle_op(proc);
}

Proc::ReadResult Proc::CycleAwaiter::await_resume() const noexcept {
  return std::move(proc.read_result_);
}

void Proc::SkipAwaiter::await_suspend(std::coroutine_handle<> h) noexcept {
  proc.pending_write_.reset();
  proc.pending_read_.reset();
  proc.pending_read_all_ = false;
  proc.resume_point_ = h;
  proc.net_->on_sleep(proc, t);
}

void Proc::MultiReadAwaiter::await_suspend(
    std::coroutine_handle<> h) noexcept {
  proc.resume_point_ = h;
  proc.net_->on_cycle_op(proc);
}

std::vector<Proc::ReadResult> Proc::MultiReadAwaiter::await_resume()
    const noexcept {
  return std::move(proc.read_all_results_);
}

}  // namespace mcb
