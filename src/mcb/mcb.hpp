// Umbrella header: the public API of the MCB library.
//
// A reproduction of "Sorting and Selection in Multi-Channel Broadcast
// Networks" (Marberg & Gafni, 1985). The library provides:
//
//   mcb::Network / mcb::Proc      the cycle-accurate MCB(p, k) simulator
//   mcb::algo::sort               distributed sorting (auto-dispatched)
//   mcb::algo::select_rank        distributed selection by rank
//   mcb::algo::partial_sums       the Partial-Sums collective
//   mcb::theory::*                lower-bound formulas and adversaries
//
// See README.md for a quickstart and DESIGN.md for the full inventory.
#pragma once

#include "algo/baselines.hpp"
#include "algo/collectives.hpp"
#include "algo/columnsort_even.hpp"
#include "algo/mergesort.hpp"
#include "algo/partial_sums.hpp"
#include "algo/ranksort.hpp"
#include "algo/recursive_columnsort.hpp"
#include "algo/runner.hpp"
#include "algo/selection.hpp"
#include "algo/sort.hpp"
#include "algo/uneven_sort.hpp"
#include "algo/virtual_columnsort.hpp"
#include "check/conformance.hpp"
#include "mcb/network.hpp"
#include "se/shout_echo.hpp"
#include "theory/adversary.hpp"
#include "theory/bounds.hpp"
#include "util/workload.hpp"
