#include "mcb/message.hpp"

#include <ostream>

#include "util/check.hpp"

namespace mcb {

Message::Message(std::initializer_list<Word> words) {
  MCB_REQUIRE(words.size() <= kMaxWords,
              "message of " << words.size() << " words exceeds the O(log "
                            << "beta)-bit model limit of " << kMaxWords);
  for (Word w : words) words_[size_++] = w;
}

Word Message::at(std::size_t i) const {
  MCB_REQUIRE(i < size_, "word index " << i << " out of range (size "
                                       << size_ << ")");
  return words_[i];
}

void Message::push(Word w) {
  MCB_REQUIRE(size_ < kMaxWords, "message already holds " << kMaxWords
                                                          << " words");
  words_[size_++] = w;
}

std::ostream& operator<<(std::ostream& os, const Message& m) {
  os << '[';
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (i) os << ' ';
    os << m.at(i);
  }
  return os << ']';
}

}  // namespace mcb
