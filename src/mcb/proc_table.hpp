// Struct-of-arrays block holding the hot per-processor simulation state.
//
// The seed implementation kept wake cycle, channel intents, read results and
// the resume handle as members of each heap-allocated Proc, so every engine
// pass chased a unique_ptr per processor. The engines walk processors in id
// order thousands of times per run; moving the per-processor state into flat
// id-indexed arrays owned by the Network turns those walks into linear
// scans of contiguous memory, and gives the parallel engine a layout where
// "processor i's state" is a set of array slots that exactly one worker
// touches per cycle (distinct indices — no sharing, no locks).
//
// Proc itself shrinks to a handle {Network*, ProcId}; all accessors index
// this table through the owning network.
#pragma once

#include <algorithm>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "mcb/coro.hpp"
#include "mcb/message.hpp"
#include "mcb/proc.hpp"
#include "mcb/types.hpp"

namespace mcb {

/// Per-processor state, one array element per processor, indexed by ProcId.
/// Owned by Network (declared after the frame arenas, so coroutine frames
/// outlive their handles here). The columns are written either serially or,
/// under Engine::kParallel, by the single worker holding the stripe that
/// owns the index — see docs/ENGINE.md for the sharing discipline.
struct ProcTable {
  /// Innermost suspended coroutine; resuming it continues the program.
  std::vector<std::coroutine_handle<>> resume_point;
  /// Top-level program handle, for O(1) exception retrieval on completion.
  std::vector<ProcMain::handle_type> program;
  /// Cycle at which the processor is next due.
  std::vector<Cycle> wake_cycle;
  /// Program completed (uint8_t, not vector<bool>: the parallel engine
  /// writes neighbouring flags from different workers, and vector<bool>
  /// packs bits into shared words).
  std::vector<std::uint8_t> done;

  // Per-cycle channel intents and results.
  std::vector<std::optional<WriteOp>> pending_write;
  std::vector<std::optional<ChannelId>> pending_read;
  std::vector<std::uint8_t> pending_read_all;
  std::vector<Proc::ReadResult> read_result;
  std::vector<std::vector<Proc::ReadResult>> read_all_results;

  /// Max storage noted via Proc::note_aux, per processor.
  std::vector<std::size_t> peak_aux_words;

  void resize(std::size_t p) {
    resume_point.resize(p);
    program.resize(p);
    wake_cycle.assign(p, 0);
    done.assign(p, 0);
    pending_write.resize(p);
    pending_read.resize(p);
    pending_read_all.assign(p, 0);
    read_result.resize(p);
    read_all_results.resize(p);
    peak_aux_words.assign(p, 0);
  }

  /// Returns every column to its post-resize state without shrinking any
  /// allocation (Network::reset). Handles are nulled, not destroyed — the
  /// Network owns the program objects and clears them first.
  void reset() {
    std::fill(resume_point.begin(), resume_point.end(),
              std::coroutine_handle<>{});
    std::fill(program.begin(), program.end(), ProcMain::handle_type{});
    std::fill(wake_cycle.begin(), wake_cycle.end(), Cycle{0});
    std::fill(done.begin(), done.end(), std::uint8_t{0});
    for (auto& w : pending_write) w.reset();
    for (auto& r : pending_read) r.reset();
    std::fill(pending_read_all.begin(), pending_read_all.end(),
              std::uint8_t{0});
    for (auto& r : read_result) r.reset();
    for (auto& v : read_all_results) v.clear();
    std::fill(peak_aux_words.begin(), peak_aux_words.end(), std::size_t{0});
  }
};

}  // namespace mcb
