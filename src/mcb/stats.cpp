#include "mcb/stats.hpp"

#include <sstream>

namespace mcb {

double safe_cycles_per_sec(Cycle cycles, std::uint64_t wall_ns) {
  if (wall_ns == 0) return 0.0;
  return static_cast<double>(cycles) * 1e9 / static_cast<double>(wall_ns);
}

const PhaseStats* RunStats::phase(const std::string& name) const {
  for (const auto& ph : phases) {
    if (ph.name == name) return &ph;
  }
  return nullptr;
}

std::string RunStats::summary() const {
  std::ostringstream os;
  os << "cycles=" << cycles << " messages=" << messages
     << " peak_aux_words=" << max_peak_aux() << '\n';
  if (sim_wall_ns > 0) {
    os << "  sim_wall_ns=" << sim_wall_ns << " proc_resumes=" << proc_resumes
       << " cycles_per_sec=" << cycles_per_sec << '\n';
  }
  if (frame_allocs > 0) {
    os << "  frame_allocs=" << frame_allocs << " frame_frees=" << frame_frees
       << " arena_bytes_peak=" << arena_bytes_peak
       << " arena_hit_rate=" << arena_hit_rate << '\n';
  }
  for (const auto& ph : phases) {
    os << "  phase " << ph.name << ": cycles=" << ph.cycles
       << " messages=" << ph.messages << '\n';
  }
  return os.str();
}

}  // namespace mcb
