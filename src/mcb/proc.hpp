// Per-processor context: the API that processor programs use to interact
// with the network, one synchronous cycle at a time.
#pragma once

#include <coroutine>
#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "mcb/coro.hpp"
#include "mcb/message.hpp"
#include "mcb/types.hpp"

namespace mcb {

class Network;

/// A channel write intent for the coming cycle.
struct WriteOp {
  ChannelId channel = 0;
  Message msg;
};

class Proc {
 public:
  /// The result of a cycle from this processor's point of view: the message
  /// observed on the channel it read, or nullopt on silence / no read.
  using ReadResult = std::optional<Message>;

  ProcId id() const { return id_; }
  std::size_t p() const;  ///< processors in the network
  std::size_t k() const;  ///< channels in the network

  /// Number of network cycles completed so far.
  Cycle now() const;

  // --- cycle operations (awaitable; each consumes exactly one cycle) -----

  /// Full generality: optionally write one channel and read one channel.
  /// Yields the message read (nullopt on silence or when not reading).
  struct CycleAwaiter;
  CycleAwaiter cycle(std::optional<WriteOp> write,
                     std::optional<ChannelId> read);

  CycleAwaiter write(ChannelId ch, Message m);
  CycleAwaiter read(ChannelId ch);
  CycleAwaiter write_read(ChannelId wch, Message m, ChannelId rch);
  CycleAwaiter step();  ///< participate in a cycle doing nothing

  /// Sleep for `t >= 1` cycles without being rescheduled (equivalent to t
  /// consecutive step()s but O(1) simulation work). Used for the paper's
  /// "wait your turn by counting cycles" synchronization.
  struct SkipAwaiter;
  SkipAwaiter skip(Cycle t);

  /// Section 9 extension (requires SimConfig::multi_read): optionally write
  /// one channel and read EVERY channel this cycle. Yields one ReadResult
  /// per channel.
  struct MultiReadAwaiter;
  MultiReadAwaiter cycle_all(std::optional<WriteOp> write);

  // --- accounting helpers ------------------------------------------------

  /// Reports this processor's current auxiliary storage in words; the run
  /// statistics record the maximum. Used to validate the O(1)/O(n) memory
  /// claims of Section 6.1.
  void note_aux(std::size_t words);

  /// Marks the start of a named algorithm phase (records global cycle and
  /// message counters). By convention only processor 0 calls this.
  void mark_phase(std::string name);

  /// Span marks forwarded to the network's SpanSink (see obs::Span, which
  /// is the intended RAII entry point). By convention only processor 0
  /// emits spans; no-ops without a sink.
  void span_begin(std::string_view name);
  void span_end();

  // --- awaiters -----------------------------------------------------------

  struct CycleAwaiter {
    Proc& proc;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) noexcept;
    ReadResult await_resume() const noexcept;
  };

  struct SkipAwaiter {
    Proc& proc;
    Cycle t;
    bool await_ready() const noexcept { return t == 0; }
    void await_suspend(std::coroutine_handle<> h) noexcept;
    void await_resume() const noexcept {}
  };

  struct MultiReadAwaiter {
    Proc& proc;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) noexcept;
    std::vector<ReadResult> await_resume() const noexcept;
  };

 private:
  friend class Network;
  friend struct ProcMain::promise_type::FinalAwaiter;

  Proc(Network& net, ProcId id) : net_(&net), id_(id) {}
  Proc(const Proc&) = delete;
  Proc& operator=(const Proc&) = delete;

  // Sets the done flag in the network's ProcTable (defined in proc.cpp,
  // where Network is complete).
  void mark_done();

  // Proc is a thin handle: all hot per-processor state (wake cycle, channel
  // intents, read results, resume handle) lives in the Network's ProcTable
  // (mcb/proc_table.hpp), indexed by id_, so the engines scan flat arrays
  // instead of chasing per-processor heap objects.
  Network* net_;
  ProcId id_;
};

inline std::coroutine_handle<>
ProcMain::promise_type::FinalAwaiter::await_suspend(
    std::coroutine_handle<promise_type> h) noexcept {
  if (h.promise().proc != nullptr) {
    h.promise().proc->mark_done();
  }
  return std::noop_coroutine();
}

}  // namespace mcb
