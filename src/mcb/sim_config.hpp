// Network configuration.
#pragma once

#include <cstddef>

#include "util/check.hpp"

namespace mcb {

class SpanSink;

namespace obs {
class Clock;     // src/obs/clock.hpp — host wall-clock seam
class Profiler;  // src/obs/profiler.hpp — host-time flight recorder
}  // namespace obs

/// Which simulation engine drives Network::run(). All implement the exact
/// same synchronous-cycle semantics and produce bit-identical statistics
/// (cycles, messages, phases — see docs/ENGINE.md); they differ only in
/// wall-clock cost.
enum class Engine {
  /// Wake-queue scheduler: sleeping processors cost O(log p) total instead
  /// of O(sleep length), per-cycle work scales with the processors actually
  /// participating, and runs of idle cycles are fast-forwarded. The default.
  kEventDriven,
  /// The original scan-the-world loop: O(p) scans plus an O(k) slot sweep
  /// every cycle. Kept as the executable semantics specification and as the
  /// baseline for bench_simspeed.
  kReference,
  /// The event engine's wake queue plus a cycle-synchronous worker pool:
  /// each cycle's write scan, read scan and processor resumes are
  /// partitioned across persistent workers and merged deterministically at
  /// the cycle barrier, so stats, traces and conformance streams are
  /// byte-identical to the serial engines for any thread count. Worth it
  /// for dense runs at large p; see docs/ENGINE.md ("Parallel engine").
  kParallel,
};

/// Static description of an MCB(p, k): p processors and k broadcast
/// channels, with k <= p (Section 2 of the paper).
struct SimConfig {
  std::size_t p = 0;  ///< processor count
  std::size_t k = 0;  ///< channel count

  /// Safety valve: a run exceeding this many cycles aborts with
  /// ProtocolError (deadlocked schedules would otherwise spin forever).
  std::size_t max_cycles = 1u << 28;

  /// Section 9 extension: allow a processor to read ALL channels in one
  /// cycle (Proc::cycle_all). Off by default — the standard MCB model
  /// permits one read per cycle, and the paper's algorithms never need
  /// more; the flag exists to study the extension.
  bool multi_read = false;

  /// Simulation engine (identical observable behaviour either way).
  Engine engine = Engine::kEventDriven;

  /// Worker threads for Engine::kParallel (0 = use the hardware). The
  /// observable results do not depend on this value — the parallel engine's
  /// reduction contract (docs/ENGINE.md) makes every thread count produce
  /// the same stats, traces and telemetry. Meaningless for the serial
  /// engines, and validate() rejects it there so a mis-wired CLI or harness
  /// fails loudly instead of silently running serial.
  std::size_t threads = 0;

  /// Host-side observer for protocol phase spans (obs::Span); not part of
  /// the model's configuration and excluded from engine-equivalence
  /// comparisons. Riding on SimConfig lets it reach the Network that
  /// algo::sort / select construct internally. Must outlive the run.
  /// nullptr (the default) costs one branch per span mark.
  SpanSink* span_sink = nullptr;

  /// Host wall-clock source for run telemetry (RunStats::sim_wall_ns) and
  /// the profiler's instrumentation stamps. nullptr (the default) means the
  /// process steady clock (obs::default_clock()); tests inject a fake clock
  /// to make host-time telemetry deterministic. Never a protocol input —
  /// model time is the cycle counter (mcblint MCB-L2 holds the engine
  /// directories to that).
  obs::Clock* clock = nullptr;

  /// Opt-in host-time flight recorder (obs::Profiler): per cycle-batch
  /// commit / barrier dispatch / wait / merge wall time and per-lane busy
  /// time under Engine::kParallel; run-wall accounting under every engine.
  /// Host telemetry like sim_wall_ns — its output is quarantined in
  /// `host_profile` subtrees and excluded from the determinism contract.
  /// Must outlive the run. nullptr (the default) costs one predicted branch
  /// per instrumentation site, matching the SpanSink pattern.
  obs::Profiler* profiler = nullptr;

  void validate() const {
    MCB_REQUIRE(p >= 1, "need at least one processor");
    MCB_REQUIRE(k >= 1, "need at least one channel");
    MCB_REQUIRE(k <= p, "MCB model requires k <= p (k=" << k << ", p=" << p
                                                        << ")");
    MCB_REQUIRE(threads == 0 || engine == Engine::kParallel,
                "threads is only meaningful for Engine::kParallel");
  }
};

}  // namespace mcb
