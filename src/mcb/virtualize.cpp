#include "mcb/virtualize.hpp"

#include <optional>
#include <vector>

#include "util/check.hpp"

namespace mcb {

VirtualCost virtualization_cost(const SimConfig& real, const SimConfig& virt,
                                const RunStats& virtual_stats) {
  real.validate();
  virt.validate();
  MCB_REQUIRE(real.p <= virt.p && real.k <= virt.k,
              "real MCB(" << real.p << "," << real.k
                          << ") must be no larger than virtual MCB("
                          << virt.p << "," << virt.k << ")");
  VirtualCost cost;
  cost.hosts = (virt.p + real.p - 1) / real.p;
  cost.channel_mux = (virt.k + real.k - 1) / real.k;
  // h*h*c subrounds per virtual cycle; each virtual message is repeated
  // once per reader slot (h copies).
  cost.real_cycles = virtual_stats.cycles *
                     static_cast<Cycle>(cost.hosts * cost.hosts *
                                        cost.channel_mux);
  cost.real_messages =
      virtual_stats.messages * static_cast<std::uint64_t>(cost.hosts);
  return cost;
}

namespace {

/// Compact record of one virtual cycle: what each virtual channel carried
/// (and who wrote it), and which channel each virtual processor read.
struct CycleRecord {
  std::vector<std::optional<Message>> channel;  ///< size virt.k
  std::vector<ProcId> writer;                   ///< writer per channel
  std::vector<std::int32_t> read_ch;            ///< per vproc; -1 = no read
};

/// Recorder sink building CycleRecords from the virtual run.
class Recorder final : public TraceSink {
 public:
  Recorder(std::size_t vp, std::size_t vk) : vp_(vp), vk_(vk) {}

  void on_event(const CycleEvent& ev) override {
    while (cycles_.size() <= ev.cycle) {
      CycleRecord rec;
      rec.channel.resize(vk_);
      rec.writer.resize(vk_, 0);
      rec.read_ch.assign(vp_, -1);
      cycles_.push_back(std::move(rec));
    }
    auto& rec = cycles_[ev.cycle];
    if (ev.wrote) {
      rec.channel[*ev.wrote] = *ev.sent;
      rec.writer[*ev.wrote] = ev.proc;
    }
    if (ev.read) {
      rec.read_ch[ev.proc] = static_cast<std::int32_t>(*ev.read);
    }
  }

  std::vector<CycleRecord> cycles_;

 private:
  std::size_t vp_;
  std::size_t vk_;
};

/// Everything the relay processors share.
struct RelayState {
  const std::vector<CycleRecord>* cycles = nullptr;
  std::size_t vp = 0, vk = 0;  ///< virtual dimensions
  std::size_t h = 0, c = 0;    ///< hosts per real proc, channels per real ch
  std::size_t rk = 0;          ///< real channel count
  /// Observed delivery per (virtual cycle, virtual reader): filled by the
  /// relays, compared against the virtual run afterwards.
  std::vector<std::optional<Message>> actual;
  bool mismatch = false;
};

/// The relay program for real processor `me`: walks every subround
/// (vcycle, u_w, u_r, b) and performs the host's share of the schedule.
ProcMain relay_program(Proc& self, RelayState& st) {
  const std::size_t me = self.id();
  for (std::size_t vc = 0; vc < st.cycles->size(); ++vc) {
    const auto& rec = (*st.cycles)[vc];
    for (std::size_t u_w = 0; u_w < st.h; ++u_w) {
      for (std::size_t u_r = 0; u_r < st.h; ++u_r) {
        for (std::size_t b = 0; b < st.c; ++b) {
          // Writer role: my slot-u_w virtual processor rebroadcasts its
          // message if it wrote a block-b channel this virtual cycle.
          std::optional<WriteOp> write;
          const std::size_t vw = me * st.h + u_w;
          if (vw < st.vp) {
            for (std::size_t ch = b * st.rk;
                 ch < std::min((b + 1) * st.rk, st.vk); ++ch) {
              if (rec.channel[ch] && rec.writer[ch] == vw) {
                write = WriteOp{static_cast<ChannelId>(ch % st.rk),
                                *rec.channel[ch]};
                break;  // a virtual processor writes at most one channel
              }
            }
          }
          // Reader role: my slot-u_r virtual processor listens for its
          // requested channel if it is in block b.
          std::optional<ChannelId> read;
          std::size_t verify_slot = SIZE_MAX;
          bool local = false;
          const std::size_t vr = me * st.h + u_r;
          if (vr < st.vp && rec.read_ch[vr] >= 0) {
            const auto vch = static_cast<std::size_t>(rec.read_ch[vr]);
            if (vch / st.rk == b) {
              verify_slot = vc * st.vp + vr;
              const auto rch = static_cast<ChannelId>(vch % st.rk);
              if (write && write->channel == rch) {
                // I am rebroadcasting the very channel my reader wants:
                // deliver locally instead of reading my own write (the
                // model separates the write and read ports).
                local = true;
              } else {
                read = rch;
              }
            }
          }
          auto got = co_await self.cycle(write, read);
          if (verify_slot != SIZE_MAX) {
            std::optional<Message> delivered;
            if (local) {
              delivered = write->msg;
            } else if (got) {
              delivered = *got;
            }
            if (delivered) {
              auto& slot = st.actual[verify_slot];
              if (slot.has_value() && !(*slot == *delivered)) {
                st.mismatch = true;  // two subrounds delivered differently
              }
              slot = delivered;
            }
          }
        }
      }
    }
  }
}

}  // namespace

VirtualizedRunResult run_virtualized(
    const SimConfig& real, const SimConfig& virt,
    const std::function<void(Network&)>& install) {
  real.validate();
  virt.validate();
  MCB_REQUIRE(real.p <= virt.p && real.k <= virt.k,
              "real MCB(" << real.p << "," << real.k
                          << ") must be no larger than virtual MCB("
                          << virt.p << "," << virt.k << ")");
  MCB_REQUIRE(virt.p % real.p == 0 && virt.k % real.k == 0,
              "hosted execution needs real.p | virt.p and real.k | virt.k");

  VirtualizedRunResult result;

  // 1. Run the virtual network, recording every cycle's traffic.
  Recorder recorder(virt.p, virt.k);
  Network vnet(virt, &recorder);
  install(vnet);
  result.virtual_stats = vnet.run();
  // Pad the record to the full run length (trailing quiet cycles still cost
  // subrounds on the hosted machine — the schedule is non-adaptive).
  if (result.virtual_stats.cycles > 0) {
    CycleEvent pad;
    pad.cycle = result.virtual_stats.cycles - 1;
    recorder.on_event(pad);
  }

  // 2. Replay on the real network through relay processors.
  RelayState st;
  st.cycles = &recorder.cycles_;
  st.vp = virt.p;
  st.vk = virt.k;
  st.h = virt.p / real.p;
  st.c = virt.k / real.k;
  st.rk = real.k;
  st.actual.assign(recorder.cycles_.size() * virt.p, std::nullopt);

  Network rnet(real);
  for (ProcId i = 0; i < real.p; ++i) {
    rnet.install(i, relay_program(rnet.proc(i), st));
  }
  result.real_stats = rnet.run();

  // 3. Verify every virtual delivery against the hosted execution.
  MCB_CHECK(!st.mismatch, "conflicting deliveries in the hosted run");
  for (std::size_t vc = 0; vc < recorder.cycles_.size(); ++vc) {
    const auto& rec = recorder.cycles_[vc];
    for (std::size_t v = 0; v < virt.p; ++v) {
      if (rec.read_ch[v] < 0) continue;
      const auto& expect =
          rec.channel[static_cast<std::size_t>(rec.read_ch[v])];
      const auto& got = st.actual[vc * virt.p + v];
      MCB_CHECK(expect == got, "hosted delivery mismatch at virtual cycle "
                                   << vc << ", P" << v + 1);
    }
  }

  result.predicted = virtualization_cost(real, virt, result.virtual_stats);
  MCB_CHECK(result.real_stats.cycles == result.predicted.real_cycles,
            "hosted cycles " << result.real_stats.cycles
                             << " != predicted "
                             << result.predicted.real_cycles);
  MCB_CHECK(result.real_stats.messages == result.predicted.real_messages,
            "hosted messages " << result.real_stats.messages
                               << " != predicted "
                               << result.predicted.real_messages);
  return result;
}

}  // namespace mcb
