// The simulation lemma of Section 2: one cycle of an MCB(p', k') can be
// executed on a smaller MCB(p, k), with each real processor hosting
// h = ceil(p'/p) virtual processors and each real channel carrying
// c = ceil(k'/k) virtual channels, "repeating each message" so every
// hosted reader gets a slot.
//
// The concrete schedule implemented here runs one virtual cycle as
// subrounds (u_w, u_r, b): in subround (u_w, u_r, b) the virtual processors
// with host-slot u_w whose write targets a block-b channel write (at most
// one per real processor, and distinct block-b channels map to distinct
// real channels — collision-free by construction), while the virtual
// readers with host-slot u_r listen (at most one per real processor).
// That is h * h * c real cycles per virtual cycle and h real messages per
// virtual message.
//
// Note an honest deviation: the paper claims O((p'/p)(k'/k)) cycles without
// giving a construction; a factor h of our schedule comes from read
// scheduling (a real processor can read only one channel per cycle, and
// its h hosted readers may all need messages that are live simultaneously).
// When p' == p (channel-only virtualization) the two bounds coincide at
// O(k'/k). See DESIGN.md.
//
// This module provides exact accounting for the schedule: run any program
// on the virtual network, then price the run on real hardware.
#pragma once

#include <cstddef>
#include <functional>

#include "mcb/network.hpp"
#include "mcb/sim_config.hpp"
#include "mcb/stats.hpp"

namespace mcb {

struct VirtualCost {
  std::size_t hosts = 0;        ///< h = ceil(p'/p)
  std::size_t channel_mux = 0;  ///< c = ceil(k'/k)
  Cycle real_cycles = 0;
  std::uint64_t real_messages = 0;

  /// Cycle overhead factor relative to the virtual run.
  double cycle_overhead(const RunStats& virtual_stats) const {
    return virtual_stats.cycles == 0
               ? 0.0
               : double(real_cycles) / double(virtual_stats.cycles);
  }
};

/// Prices a virtual run of MCB(virt.p, virt.k) on an MCB(real.p, real.k).
/// Requires real.p <= virt.p and real.k <= virt.k (and k <= p on both).
VirtualCost virtualization_cost(const SimConfig& real, const SimConfig& virt,
                                const RunStats& virtual_stats);

struct VirtualizedRunResult {
  RunStats virtual_stats;  ///< the MCB(p', k') run being hosted
  RunStats real_stats;     ///< the actual hosted execution on MCB(p, k)
  VirtualCost predicted;   ///< the closed-form cost (must match real_stats)
};

/// Executes a virtual MCB(virt.p, virt.k) computation on a real
/// MCB(real.p, real.k): the virtual run is recorded cycle by cycle, then
/// replayed through relay processors following the subround schedule
/// documented above — every virtual message really crosses a real channel
/// (h copies, one per reader slot), every virtual read is really listened
/// for in all h candidate subrounds, collision-freedom is enforced by the
/// real network, and every delivered message is verified against the
/// virtual run. Throws on any mismatch.
///
/// `install` receives the virtual network and must install all virt.p
/// programs (exactly like driving a Network directly).
VirtualizedRunResult run_virtualized(
    const SimConfig& real, const SimConfig& virt,
    const std::function<void(Network&)>& install);

}  // namespace mcb
