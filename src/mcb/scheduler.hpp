// Event queue for the event-driven simulation engine.
//
// The paper's protocols synchronize by counting cycles: at any instant many
// processors are asleep in Proc::skip() waiting for their turn, and the
// rest re-awaken every cycle via channel operations. The scan-the-world
// reference loop pays O(p) per cycle regardless; this scheduler makes each
// suspension cost O(1) amortized and lets the network iterate only over the
// processors that actually participate in the cycle in flight.
//
// The wake queue is a three-tier structure keyed on the wake cycle — a
// hierarchical bucket wheel in the calendar-queue tradition of discrete-event
// simulators:
//
//   * next bucket — processors waking exactly one cycle ahead (every channel
//     op, and skip(1)). This is the hot path: pushes happen in processor-id
//     order during the drain of the previous cycle, so the bucket is always
//     id-sorted by construction and push/pop are O(1). A binary heap here
//     measurably dominates simulation time (an O(log p) sift per resume,
//     tens of millions of times per run).
//   * wheel       — kWheelSize buckets indexed by wake & kWheelMask, holding
//     wakes within the next kWheelSize cycles. Registration is one push_back
//     into an array slot — O(1), no node allocation, no tree rebalancing —
//     and bucket vectors are recycled drain over drain (clear keeps
//     capacity). Slot residency is unambiguous: every pending wheel wake
//     lies in (now, now + kWheelSize], a window of exactly kWheelSize
//     cycles, so distinct pending wakes never share a slot and a drained
//     bucket contains only entries due that very cycle.
//   * spill heap  — wakes beyond the wheel horizon, in a binary min-heap on
//     the wake cycle. Only very long skips land here (O(log #spilled) each);
//     entries stay in the heap until their cycle comes due — no migration
//     pass when the horizon advances past them.
//
// A drain that merged wheel or spill entries is re-sorted by processor id,
// restoring the reference engine's deterministic resume order (the previous
// ordered-map far queue needed the same sort; see docs/ENGINE.md).
//
// Two more lists let the run loop touch only what changed:
//
//   * active list — processors that suspended with a channel intent
//     (write / read / multi-read) for the cycle in flight. The write, read
//     and trace steps iterate this list only.
//   * dirty list  — channels written in the cycle in flight, so clearing
//     slots is O(writes), not O(k).
//
// Invariants (see docs/ENGINE.md): every live suspended processor sits in
// exactly one tier; the active list holds exactly the processors whose
// wake cycle is now+1 *and* that registered a channel intent; a cycle whose
// drain would be empty is observationally silent and may be skipped
// wholesale (idle-cycle fast-forward).
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "mcb/types.hpp"

namespace mcb {

class Scheduler {
 public:
  Scheduler(std::size_t p, std::size_t k);

  /// Empties every tier plus the active and dirty lists, keeping all vector
  /// capacities, so a long-lived network (Network::reset) re-runs without
  /// re-growing the queue structures.
  void reset();

  // --- wake queue ---------------------------------------------------------

  /// Registers processor `id` (suspended at cycle `now`) to be resumed at
  /// `wake`, with wake >= now + 1. A processor is scheduled at most once at
  /// a time (it is suspended at a single awaiter). Entries are bare
  /// processor ids — all per-processor state lives in the Network's
  /// ProcTable, so the queue tiers are flat id arrays.
  void schedule_wake(ProcId id, Cycle wake, Cycle now) {
    ++pending_;
    const Cycle ahead = wake - now;
    if (ahead == 1) {
      next_bucket_.push_back(id);
    } else if (ahead <= kWheelSize) {
      wheel_[wake & kWheelMask].push_back(id);
      ++wheel_count_;
    } else {
      push_spill(id, wake);
    }
  }

  bool queue_empty() const { return pending_ == 0; }

  /// Earliest pending wake cycle given the current cycle `now`. Requires a
  /// non-empty queue. O(1) on the hot path (next bucket occupied); at most
  /// kWheelSize slot probes otherwise — only on idle-cycle fast-forwards,
  /// which are rare by definition.
  Cycle next_wake(Cycle now) const;

  /// Collects every processor due at `now` in processor-id order. The
  /// returned entries are valid until the next drain; processors
  /// re-scheduling themselves while the caller iterates land in fresh
  /// buckets and are never part of the same drain.
  const std::vector<ProcId>& drain_due(Cycle now);

  /// A contiguous slice of an id-sorted list belonging to one stripe of the
  /// parallel engine (stripe = id >> stripe_shift; stripe widths are powers
  /// of two). [lo, hi) indexes the list the slice was cut from.
  struct Span {
    std::uint32_t stripe;
    std::uint32_t lo, hi;
  };

  /// drain_due plus stripe partitioning in one step: fills `spans` with the
  /// per-stripe slices of the drained list. The spans are found by binary
  /// search over the (already id-sorted) drain — O(stripes · log) instead of
  /// the O(drained) per-id walk a separate partition pass would cost — and
  /// `spans` is reused drain over drain (clear keeps capacity), so the
  /// parallel engine's per-cycle dispatch does no vector rebuild.
  const std::vector<ProcId>& drain_due_spans(Cycle now,
                                             std::uint32_t stripe_shift,
                                             std::vector<Span>& spans);

  /// Partitions any id-sorted list into per-stripe spans (the same slicing
  /// drain_due_spans applies to a drain). Exposed for the parallel engine's
  /// other id lists (the active list, the initial all-processors resume).
  static void segment_spans(const std::vector<ProcId>& ids,
                            std::uint32_t stripe_shift,
                            std::vector<Span>& spans);

  // --- active list (participants of the cycle in flight) ------------------

  void add_active(ProcId id) { active_.push_back(id); }
  const std::vector<ProcId>& active() const { return active_; }
  void clear_active() { active_.clear(); }

  // --- dirty channels -----------------------------------------------------

  /// Records that channel `c` was written this cycle. The collision check
  /// guarantees at most one write per channel per cycle, so entries are
  /// unique without deduplication.
  void mark_dirty(ChannelId c) { dirty_.push_back(c); }
  const std::vector<ChannelId>& dirty() const { return dirty_; }
  void clear_dirty() { dirty_.clear(); }

 private:
  static constexpr std::size_t kWheelSize = 64;
  static constexpr Cycle kWheelMask = kWheelSize - 1;

  struct SpillEntry {
    Cycle wake;
    ProcId id;
  };

  void push_spill(ProcId id, Cycle wake);

  std::vector<ProcId> next_bucket_;  ///< wakes at (drain cycle)+1
  std::array<std::vector<ProcId>, kWheelSize> wheel_;
  std::size_t wheel_count_ = 0;     ///< entries across all wheel buckets
  std::vector<SpillEntry> spill_;   ///< min-heap on wake, beyond the wheel
  std::size_t pending_ = 0;         ///< entries across all three tiers
  std::vector<ProcId> drain_entries_;  ///< scratch, swapped with next bucket
  std::vector<ProcId> active_;
  std::vector<ChannelId> dirty_;
};

}  // namespace mcb
