// Event queue for the event-driven simulation engine.
//
// The paper's protocols synchronize by counting cycles: at any instant many
// processors are asleep in Proc::skip() waiting for their turn, and the
// rest re-awaken every cycle via channel operations. The scan-the-world
// reference loop pays O(p) per cycle regardless; this scheduler makes each
// suspension cost O(1) amortized and lets the network iterate only over the
// processors that actually participate in the cycle in flight.
//
// The wake queue is a two-tier bucket queue keyed on the wake cycle:
//
//   * next bucket — processors waking exactly one cycle ahead (every channel
//     op, and skip(1)). This is the hot path: pushes happen in processor-id
//     order during the drain of the previous cycle, so the bucket is always
//     id-sorted by construction and push/pop are O(1). A binary heap here
//     measurably dominates simulation time (an O(log p) sift per resume,
//     tens of millions of times per run).
//   * far buckets  — processors sleeping more than one cycle, grouped by
//     wake cycle in an ordered map. Skips are rarer than channel ops, and
//     each sleeping processor costs O(log #distinct-wake-cycles) once, not
//     O(sleep length). A far bucket merging into a drain is sorted by id
//     then, restoring the reference engine's deterministic resume order.
//
// Two more lists let the run loop touch only what changed:
//
//   * active list — processors that suspended with a channel intent
//     (write / read / multi-read) for the cycle in flight. The write, read
//     and trace steps iterate this list only.
//   * dirty list  — channels written in the cycle in flight, so clearing
//     slots is O(writes), not O(k).
//
// Invariants (see docs/ENGINE.md): every live suspended processor sits in
// exactly one bucket; the active list holds exactly the processors whose
// wake cycle is now+1 *and* that registered a channel intent; a cycle whose
// drain would be empty is observationally silent and may be skipped
// wholesale (idle-cycle fast-forward).
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "mcb/types.hpp"

namespace mcb {

class Proc;

class Scheduler {
 public:
  Scheduler(std::size_t p, std::size_t k);

  // --- wake queue ---------------------------------------------------------

  /// Registers `pr` (suspended at cycle `now`) to be resumed at `wake`,
  /// with wake >= now + 1. A processor is scheduled at most once at a time
  /// (it is suspended at a single awaiter).
  void schedule_wake(Proc* pr, ProcId id, Cycle wake, Cycle now);

  bool queue_empty() const { return next_bucket_.empty() && far_.empty(); }

  /// Earliest pending wake cycle given the current cycle `now`. Requires a
  /// non-empty queue.
  Cycle next_wake(Cycle now) const {
    return next_bucket_.empty() ? far_.begin()->first : now + 1;
  }

  /// Collects every processor due at `now` in processor-id order. The
  /// returned list is valid until the next drain; processors re-scheduling
  /// themselves while the caller iterates it land in fresh buckets and are
  /// never part of the same drain.
  const std::vector<Proc*>& drain_due(Cycle now);

  // --- active list (participants of the cycle in flight) ------------------

  void add_active(Proc* pr) { active_.push_back(pr); }
  const std::vector<Proc*>& active() const { return active_; }
  void clear_active() { active_.clear(); }

  // --- dirty channels -----------------------------------------------------

  /// Records that channel `c` was written this cycle. The collision check
  /// guarantees at most one write per channel per cycle, so entries are
  /// unique without deduplication.
  void mark_dirty(ChannelId c) { dirty_.push_back(c); }
  const std::vector<ChannelId>& dirty() const { return dirty_; }
  void clear_dirty() { dirty_.clear(); }

 private:
  struct Entry {
    ProcId id;
    Proc* proc;
  };

  std::vector<Entry> next_bucket_;        ///< wakes at (drain cycle)+1
  std::map<Cycle, std::vector<Entry>> far_;  ///< wakes further out
  std::vector<Entry> drain_entries_;      ///< scratch, swapped with next
  std::vector<Proc*> drained_;            ///< what drain_due returns
  std::vector<Proc*> active_;
  std::vector<ChannelId> dirty_;
};

}  // namespace mcb
