// Cycle-by-cycle observation of network activity.
//
// A TraceSink receives one event per cycle describing every write and read
// that occurred. The default sink is null (zero overhead beyond a branch);
// the bundled ChannelTrace collects a bounded in-memory log used by the
// trace_visualizer example and by tests that assert on exact schedules.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "mcb/message.hpp"
#include "mcb/types.hpp"

namespace mcb {

/// One processor's channel activity in one cycle.
struct CycleEvent {
  Cycle cycle = 0;
  ProcId proc = 0;
  std::optional<ChannelId> wrote;    ///< channel written, if any
  std::optional<Message> sent;       ///< the message written
  std::optional<ChannelId> read;     ///< channel read, if any
  std::optional<Message> received;   ///< message observed (nullopt = silence)
  /// Section 9 multi-read (Proc::cycle_all): true when the processor read
  /// every channel this cycle; received_all[c] is then what it observed on
  /// channel c (nullopt = silence). Empty unless read_all is set.
  bool read_all = false;
  std::vector<std::optional<Message>> received_all;
};

/// Observer interface. Implementations must not mutate the network.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const CycleEvent& ev) = 0;
};

/// Records events up to a capacity cap (drops silently beyond it to keep
/// long benchmark runs bounded); renders a per-cycle channel map.
class ChannelTrace final : public TraceSink {
 public:
  explicit ChannelTrace(std::size_t capacity = 1u << 16)
      : capacity_(capacity) {}

  void on_event(const CycleEvent& ev) override;

  const std::vector<CycleEvent>& events() const { return events_; }
  bool truncated() const { return truncated_; }

  /// "cycle 3: P2 -> C1 [42]; P4 reads C1" style rendering, followed by a
  /// per-channel utilization footer (writes per channel over the traced
  /// span) sized by `num_channels` — channels beyond it that appear in the
  /// events are still shown.
  std::string render(std::size_t num_channels) const;

 private:
  std::size_t capacity_;
  bool truncated_ = false;
  std::vector<CycleEvent> events_;
};

}  // namespace mcb
