// Cycle-by-cycle observation of network activity.
//
// A TraceSink receives one event per cycle describing every write and read
// that occurred. The default sink is null (zero overhead beyond a branch);
// the bundled ChannelTrace collects a bounded in-memory log used by the
// trace_visualizer example and by tests that assert on exact schedules.
// TeeSink fans one event stream out to several observers so tracing,
// conformance checking and the obs/ timeline can watch one run at once.
//
// A SpanSink receives the begin/end marks of named protocol spans
// (obs::Span). It is a separate seam from TraceSink because spans are
// emitted by protocol code at phase granularity, not by the engine at cycle
// granularity; a network with no span sink pays one branch per mark.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "mcb/message.hpp"
#include "mcb/types.hpp"

namespace mcb {

/// One processor's channel activity in one cycle.
struct CycleEvent {
  Cycle cycle = 0;
  ProcId proc = 0;
  std::optional<ChannelId> wrote;    ///< channel written, if any
  std::optional<Message> sent;       ///< the message written
  std::optional<ChannelId> read;     ///< channel read, if any
  std::optional<Message> received;   ///< message observed (nullopt = silence)
  /// Section 9 multi-read (Proc::cycle_all): true when the processor read
  /// every channel this cycle; received_all[c] is then what it observed on
  /// channel c (nullopt = silence). Empty unless read_all is set.
  bool read_all = false;
  std::vector<std::optional<Message>> received_all;
};

/// Observer interface. Implementations must not mutate the network.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const CycleEvent& ev) = 0;
};

/// Span observer interface: receives the begin/end marks that obs::Span
/// emits from protocol code, stamped with the simulated cycle and the
/// network-wide message count at the mark. Implementations must not mutate
/// the network. Begin/end arrive properly nested (RAII in one coroutine).
class SpanSink {
 public:
  virtual ~SpanSink() = default;
  virtual void on_span_begin(std::string_view name, Cycle cycle,
                             std::uint64_t messages) = 0;
  virtual void on_span_end(Cycle cycle, std::uint64_t messages) = 0;
};

/// Fans one event stream out to several sinks, in registration order.
/// Null sinks are skipped at add() time so callers can tee over optional
/// observers without branching.
class TeeSink final : public TraceSink {
 public:
  TeeSink() = default;
  explicit TeeSink(std::initializer_list<TraceSink*> sinks) {
    for (TraceSink* s : sinks) add(s);
  }

  void add(TraceSink* sink) {
    if (sink != nullptr) sinks_.push_back(sink);
  }

  std::size_t size() const { return sinks_.size(); }

  /// The tee collapsed to the cheapest equivalent sink: nullptr when empty,
  /// the sole sink when singular, this otherwise.
  TraceSink* as_sink() {
    if (sinks_.empty()) return nullptr;
    if (sinks_.size() == 1) return sinks_.front();
    return this;
  }

  void on_event(const CycleEvent& ev) override {
    for (TraceSink* s : sinks_) s->on_event(ev);
  }

 private:
  std::vector<TraceSink*> sinks_;
};

/// Records events up to a capacity cap (drops beyond it to keep long
/// benchmark runs bounded, but counts what it dropped); renders a per-cycle
/// channel map.
class ChannelTrace final : public TraceSink {
 public:
  explicit ChannelTrace(std::size_t capacity = 1u << 16)
      : capacity_(capacity) {}

  void on_event(const CycleEvent& ev) override;

  const std::vector<CycleEvent>& events() const { return events_; }
  /// Events discarded once the capacity cap was hit.
  std::uint64_t dropped() const { return dropped_; }
  bool truncated() const { return dropped_ > 0; }

  /// "cycle 3: P2 -> C1 [42]; P4 reads C1" style rendering, followed by a
  /// "... (+N dropped)" footer when the cap was hit and a per-channel
  /// utilization footer (writes per channel over the traced span) sized by
  /// `num_channels` — channels beyond it that appear in the events are
  /// still shown.
  std::string render(std::size_t num_channels) const;

 private:
  std::size_t capacity_;
  std::uint64_t dropped_ = 0;
  std::vector<CycleEvent> events_;
};

}  // namespace mcb
