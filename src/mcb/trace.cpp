#include "mcb/trace.hpp"

#include <algorithm>
#include <sstream>

namespace mcb {

void ChannelTrace::on_event(const CycleEvent& ev) {
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(ev);
}

std::string ChannelTrace::render(std::size_t num_channels) const {
  std::ostringstream os;
  Cycle current = ~Cycle{0};
  for (const auto& ev : events_) {
    if (ev.cycle != current) {
      current = ev.cycle;
      os << "cycle " << current << ":\n";
    }
    if (ev.wrote) {
      os << "  P" << ev.proc + 1 << " -> C" << *ev.wrote + 1 << ' '
         << *ev.sent << '\n';
    }
    if (ev.read) {
      os << "  P" << ev.proc + 1 << " <- C" << *ev.read + 1 << ' ';
      if (ev.received) {
        os << *ev.received;
      } else {
        os << "(silence)";
      }
      os << '\n';
    }
    if (ev.read_all) {
      os << "  P" << ev.proc + 1 << " <- all:";
      for (std::size_t c = 0; c < ev.received_all.size(); ++c) {
        os << " C" << c + 1 << ' ';
        if (ev.received_all[c]) {
          os << *ev.received_all[c];
        } else {
          os << "(silence)";
        }
      }
      os << '\n';
    }
  }
  if (dropped_ > 0) os << "... (+" << dropped_ << " dropped)\n";

  // Per-channel utilization over the traced span: how many of the traced
  // cycles each channel carried a write.
  if (!events_.empty()) {
    std::vector<std::uint64_t> writes(num_channels, 0);
    Cycle first = events_.front().cycle;
    Cycle last = events_.front().cycle;
    for (const auto& ev : events_) {
      first = std::min(first, ev.cycle);
      last = std::max(last, ev.cycle);
      if (ev.wrote) {
        if (*ev.wrote >= writes.size()) writes.resize(*ev.wrote + 1, 0);
        ++writes[*ev.wrote];
      }
    }
    const Cycle span = last - first + 1;
    os << "channel utilization over cycles " << first << ".." << last
       << " (" << span << " cycles):\n";
    for (std::size_t c = 0; c < writes.size(); ++c) {
      const auto pct =
          static_cast<std::uint64_t>(writes[c] * 100 / span);
      os << "  C" << c + 1 << ": " << writes[c] << " writes (" << pct
         << "%)\n";
    }
  }
  return os.str();
}

}  // namespace mcb
