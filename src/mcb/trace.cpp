#include "mcb/trace.hpp"

#include <sstream>

namespace mcb {

void ChannelTrace::on_event(const CycleEvent& ev) {
  if (events_.size() >= capacity_) {
    truncated_ = true;
    return;
  }
  events_.push_back(ev);
}

std::string ChannelTrace::render(std::size_t num_channels) const {
  std::ostringstream os;
  Cycle current = ~Cycle{0};
  for (const auto& ev : events_) {
    if (ev.cycle != current) {
      current = ev.cycle;
      os << "cycle " << current << ":\n";
    }
    if (ev.wrote) {
      os << "  P" << ev.proc + 1 << " -> C" << *ev.wrote + 1 << ' '
         << *ev.sent << '\n';
    }
    if (ev.read) {
      os << "  P" << ev.proc + 1 << " <- C" << *ev.read + 1 << ' ';
      if (ev.received) {
        os << *ev.received;
      } else {
        os << "(silence)";
      }
      os << '\n';
    }
  }
  if (truncated_) os << "... (trace truncated)\n";
  (void)num_channels;
  return os.str();
}

}  // namespace mcb
