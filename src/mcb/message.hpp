// A broadcast message.
//
// Section 2 of the paper: "A message consists of at most O(log beta) bits,
// where beta is the value of the largest parameter or datum involved in the
// computation." We model this as a small fixed number of 64-bit words — a
// message may carry a constant number of values (an element, a (median,
// count) pair, a (rank, pointer) pair, ...) but never a data block. The
// kMaxWords cap turns any accidental violation of the model into a hard
// error instead of a silently unrealistic algorithm.
#pragma once

#include <array>
#include <cassert>
#include <concepts>
#include <cstddef>
#include <initializer_list>
#include <iosfwd>

#include "mcb/types.hpp"

namespace mcb {

class Message {
 public:
  /// Maximum words per message. 4 words = O(1) values, comfortably enough
  /// for every protocol in the paper.
  static constexpr std::size_t kMaxWords = 4;

  Message() = default;

  /// Constructs from 1..kMaxWords words; throws std::invalid_argument beyond.
  Message(std::initializer_list<Word> words);

  /// Builds a message from 1..kMaxWords values without an initializer_list
  /// (std::initializer_list temporaries inside co_await expressions trip a
  /// GCC 12 coroutine bug — use this factory in coroutine code).
  template <typename... Ws>
    requires(sizeof...(Ws) >= 1 && sizeof...(Ws) <= kMaxWords &&
             (std::convertible_to<Ws, Word> && ...))
  static Message of(Ws... ws) {
    Message m;
    (m.push(static_cast<Word>(ws)), ...);
    return m;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Bounds-checked word access; throws std::invalid_argument out of range.
  /// Protocol code validating a received message belongs here.
  Word at(std::size_t i) const;

  /// Unchecked word access for hot-path code whose index is structurally
  /// valid (asserts in debug builds only). Use at() on untrusted indices.
  Word operator[](std::size_t i) const {
    assert(i < size_);
    return words_[i];
  }

  /// Appends one word; throws std::invalid_argument past kMaxWords.
  void push(Word w);

  friend bool operator==(const Message&, const Message&) = default;

 private:
  std::array<Word, kMaxWords> words_{};
  std::size_t size_ = 0;
};

std::ostream& operator<<(std::ostream& os, const Message& m);

}  // namespace mcb
