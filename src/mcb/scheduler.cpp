#include "mcb/scheduler.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace mcb {

namespace {

/// Heap comparator: the spill heap is a min-heap on the wake cycle (std::
/// *_heap builds a max-heap under the comparator, so "later wakes first"
/// yields the earliest wake at front()).
struct SpillLater {
  template <typename S>
  bool operator()(const S& a, const S& b) const {
    return a.wake > b.wake;
  }
};

}  // namespace

Scheduler::Scheduler(std::size_t p, std::size_t k) {
  next_bucket_.reserve(p);
  drain_entries_.reserve(p);
  active_.reserve(p);
  dirty_.reserve(k);
}

void Scheduler::reset() {
  next_bucket_.clear();
  for (auto& bucket : wheel_) bucket.clear();
  wheel_count_ = 0;
  spill_.clear();
  pending_ = 0;
  drain_entries_.clear();
  active_.clear();
  dirty_.clear();
}

void Scheduler::push_spill(ProcId id, Cycle wake) {
  spill_.push_back(SpillEntry{wake, id});
  std::push_heap(spill_.begin(), spill_.end(), SpillLater{});
}

Cycle Scheduler::next_wake(Cycle now) const {
  if (!next_bucket_.empty()) return now + 1;
  // The earliest pending wake is either in the wheel (scan forward from
  // now+1; every pending wheel wake is within kWheelSize cycles, so the
  // first occupied slot met is the earliest) or at the top of the spill
  // heap — whichever comes first.
  if (wheel_count_ > 0) {
    for (Cycle d = 1; d <= kWheelSize; ++d) {
      const Cycle c = now + d;
      if (!wheel_[c & kWheelMask].empty()) {
        return spill_.empty() ? c : std::min(c, spill_.front().wake);
      }
    }
    MCB_CHECK(false, "wheel count " << wheel_count_ << " but no occupied "
                                    << "slot within the horizon");
  }
  MCB_CHECK(!spill_.empty(), "next_wake on an empty queue");
  return spill_.front().wake;
}

const std::vector<ProcId>& Scheduler::drain_due(Cycle now) {
  // The next bucket is id-sorted by construction; swapping it out recycles
  // the previous drain's capacity as the fresh next bucket.
  drain_entries_.clear();
  std::swap(drain_entries_, next_bucket_);

  // Merge the wheel bucket that has come due. Slot-window invariant: every
  // entry in slot now & mask has wake == now exactly, so the whole bucket
  // drains. Entries arrive across multiple registration cycles, hence in
  // arbitrary id order — remember to re-sort below.
  bool merged = false;
  auto& bucket = wheel_[now & kWheelMask];
  if (!bucket.empty()) {
    drain_entries_.insert(drain_entries_.end(), bucket.begin(), bucket.end());
    wheel_count_ -= bucket.size();
    bucket.clear();  // keeps capacity: the bucket vector is recycled
    merged = true;
  }

  // Merge spill entries that have come due (long sleeps registered beyond
  // the wheel horizon stay in the heap until their cycle arrives).
  while (!spill_.empty() && spill_.front().wake <= now) {
    std::pop_heap(spill_.begin(), spill_.end(), SpillLater{});
    drain_entries_.push_back(spill_.back().id);
    spill_.pop_back();
    merged = true;
  }

  // Merged drains must be re-sorted by id for deterministic resume order,
  // but most are already sorted (a wheel bucket filled during a single
  // registration cycle inherits that cycle's id-ordered drain), so a linear
  // is_sorted pass usually replaces the sort.
  if (merged &&
      !std::is_sorted(drain_entries_.begin(), drain_entries_.end())) {
    std::sort(drain_entries_.begin(), drain_entries_.end());
  }
  pending_ -= drain_entries_.size();
  return drain_entries_;
}

const std::vector<ProcId>& Scheduler::drain_due_spans(
    Cycle now, std::uint32_t stripe_shift, std::vector<Span>& spans) {
  const std::vector<ProcId>& due = drain_due(now);
  segment_spans(due, stripe_shift, spans);
  return due;
}

void Scheduler::segment_spans(const std::vector<ProcId>& ids,
                              std::uint32_t stripe_shift,
                              std::vector<Span>& spans) {
  spans.clear();
  const std::size_t n = ids.size();
  std::size_t i = 0;
  while (i < n) {
    const auto stripe = static_cast<std::uint32_t>(ids[i] >> stripe_shift);
    // First id beyond this stripe, by binary search over the sorted tail:
    // a dense drain (every processor due) costs #stripes searches instead
    // of one comparison per id.
    const auto limit = static_cast<ProcId>(
        (static_cast<std::uint64_t>(stripe) + 1) << stripe_shift);
    const auto it =
        std::lower_bound(ids.begin() + static_cast<std::ptrdiff_t>(i + 1),
                         ids.end(), limit);
    const auto j = static_cast<std::size_t>(it - ids.begin());
    spans.push_back(Span{stripe, static_cast<std::uint32_t>(i),
                         static_cast<std::uint32_t>(j)});
    i = j;
  }
}

}  // namespace mcb
