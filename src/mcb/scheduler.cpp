#include "mcb/scheduler.hpp"

#include <algorithm>

namespace mcb {

Scheduler::Scheduler(std::size_t p, std::size_t k) {
  next_bucket_.reserve(p);
  drain_entries_.reserve(p);
  drained_.reserve(p);
  active_.reserve(p);
  dirty_.reserve(k);
}

void Scheduler::schedule_wake(Proc* pr, ProcId id, Cycle wake, Cycle now) {
  if (wake == now + 1) {
    next_bucket_.push_back(Entry{id, pr});
  } else {
    far_[wake].push_back(Entry{id, pr});
  }
}

const std::vector<Proc*>& Scheduler::drain_due(Cycle now) {
  drain_entries_.clear();
  std::swap(drain_entries_, next_bucket_);

  // Merge in a far bucket that has come due. Far entries arrive in
  // registration order, not id order, so the combined drain is re-sorted to
  // match the reference engine's processor-order resumption.
  const auto it = far_.begin();
  if (it != far_.end() && it->first <= now) {
    drain_entries_.insert(drain_entries_.end(), it->second.begin(),
                          it->second.end());
    far_.erase(it);
    std::sort(drain_entries_.begin(), drain_entries_.end(),
              [](const Entry& a, const Entry& b) { return a.id < b.id; });
  }

  drained_.clear();
  for (const Entry& e : drain_entries_) drained_.push_back(e.proc);
  return drained_;
}

}  // namespace mcb
