// Coroutine plumbing for processor programs.
//
// A processor's behaviour is written as an ordinary C++20 coroutine:
//
//   ProcMain my_protocol(Proc& self, ...) {
//     auto got = co_await self.write_read(c_out, Message::of(42), c_in);
//     ...
//     co_await sub_phase(self, ...);   // compose algorithms (Task<T>)
//   }
//
// Execution model: the Network resumes each processor once per cycle it
// participates in. A processor suspends at a cycle boundary by awaiting one
// of the Proc channel operations (see proc.hpp); the awaiter registers the
// processor's wake cycle and channel intents with the Network's scheduler,
// so sleeping processors (Proc::skip) cost nothing until they are due.
// Between two suspensions a processor performs arbitrary local computation —
// exactly the "write, read, compute" cycle of Section 2 of the paper.
//
// Task<T> is an awaitable subroutine bound to the same processor. Awaiting
// it transfers control into the subroutine; the subroutine's own cycle
// awaits register themselves as the processor's resume point, so the Network
// always resumes the innermost active coroutine. On completion, control
// symmetrically transfers back to the awaiting parent. This makes the
// paper's composition ("using the Partial-Sums algorithm, ...") a one-line
// co_await.
#pragma once

#include <coroutine>
#include <exception>
#include <new>
#include <type_traits>
#include <utility>

#include "util/arena.hpp"

namespace mcb {

class Proc;

template <typename T>
class Task;

namespace detail {

/// Mixed into every promise type so coroutine frames allocate from the
/// thread-local frame arena (util/arena.hpp) when one is installed —
/// Network::run() installs its own — and from global new otherwise. The
/// per-frame header written by frame_allocate routes the matching delete,
/// so frames may legally outlive the arena *scope* (e.g. a suspended
/// program destroyed by ~Network after run() returned). Compiled out by
/// -DMCB_FRAME_ARENA=OFF, which falls back to global new/delete frames.
struct FrameAlloc {
#if MCB_FRAME_ARENA_ENABLED
  static void* operator new(std::size_t bytes) {
    return util::frame_allocate(bytes);
  }
  static void operator delete(void* p) noexcept {
    util::frame_deallocate(p);
  }
  static void operator delete(void* p, std::size_t) noexcept {
    util::frame_deallocate(p);
  }
#endif
};

/// Final awaiter of Task<T>: symmetric transfer back to the awaiting parent.
struct TaskFinalAwaiter {
  bool await_ready() const noexcept { return false; }
  template <typename Promise>
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    auto cont = h.promise().continuation;
    return cont ? cont : std::noop_coroutine();
  }
  void await_resume() const noexcept {}
};

template <typename T>
struct TaskPromiseBase : FrameAlloc {
  std::coroutine_handle<> continuation = nullptr;
  std::exception_ptr exception;

  std::suspend_always initial_suspend() noexcept { return {}; }
  TaskFinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

/// The result lives in raw storage with an engaged flag instead of a
/// std::optional<T>: the value is written exactly once (return_value) and
/// moved out exactly once (await_resume), so the optional's re-engagement
/// machinery is pure overhead on a path executed once per co_await.
template <typename T>
struct TaskPromise final : TaskPromiseBase<T> {
  alignas(T) unsigned char storage[sizeof(T)];
  bool engaged = false;

  TaskPromise() noexcept {}
  ~TaskPromise() {
    if (engaged) result().~T();
  }
  TaskPromise(const TaskPromise&) = delete;
  TaskPromise& operator=(const TaskPromise&) = delete;

  T& result() noexcept {
    return *std::launder(reinterpret_cast<T*>(storage));
  }
  Task<T> get_return_object();
  void return_value(T v) {
    ::new (static_cast<void*>(storage)) T(std::move(v));
    engaged = true;
  }
};

template <>
struct TaskPromise<void> final : TaskPromiseBase<void> {
  Task<void> get_return_object();
  void return_void() noexcept {}
};

}  // namespace detail

/// An awaitable subroutine running on the same processor as its awaiter.
/// Move-only; owns the coroutine frame. Must be awaited exactly once (the
/// [[nodiscard]] catches the common mistake of calling a protocol subroutine
/// without co_await, which would silently run nothing).
template <typename T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::TaskPromise<T>;
  using handle_type = std::coroutine_handle<promise_type>;

  explicit Task(handle_type h) : h_(h) {}
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      if (h_) h_.destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (h_) h_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<> parent) noexcept {
    h_.promise().continuation = parent;
    return h_;  // symmetric transfer into the subroutine
  }
  T await_resume() {
    if (h_.promise().exception) {
      std::rethrow_exception(h_.promise().exception);
    }
    if constexpr (!std::is_void_v<T>) {
      return std::move(h_.promise().result());
    }
  }

 private:
  handle_type h_;
};

namespace detail {

template <typename T>
Task<T> TaskPromise<T>::get_return_object() {
  return Task<T>(std::coroutine_handle<TaskPromise<T>>::from_promise(*this));
}

inline Task<void> TaskPromise<void>::get_return_object() {
  return Task<void>(
      std::coroutine_handle<TaskPromise<void>>::from_promise(*this));
}

}  // namespace detail

/// Top-level program of one processor. Created by calling a coroutine
/// function, then installed into a Network which drives it cycle by cycle.
class [[nodiscard]] ProcMain {
 public:
  struct promise_type : detail::FrameAlloc {
    Proc* proc = nullptr;  // wired up by Network::install
    std::exception_ptr exception;

    ProcMain get_return_object() {
      return ProcMain(
          std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    // Defined in proc.hpp (needs Proc to be complete): marks the processor
    // done so the Network stops scheduling it.
    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept;
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept {
      exception = std::current_exception();
    }
  };
  using handle_type = std::coroutine_handle<promise_type>;

  explicit ProcMain(handle_type h) : h_(h) {}
  ProcMain(ProcMain&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  ProcMain& operator=(ProcMain&& o) noexcept {
    if (this != &o) {
      if (h_) h_.destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  ProcMain(const ProcMain&) = delete;
  ProcMain& operator=(const ProcMain&) = delete;
  ~ProcMain() {
    if (h_) h_.destroy();
  }

  handle_type handle() const { return h_; }

 private:
  handle_type h_;
};

}  // namespace mcb
