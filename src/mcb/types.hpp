// Fundamental vocabulary types of the MCB model.
#pragma once

#include <cstdint>

namespace mcb {

/// One datum / one machine word. The paper allows messages of O(log beta)
/// bits where beta is the largest value involved; a 64-bit word models that.
using Word = std::int64_t;

/// Processor index, 0-based (the paper's P_{i+1}).
using ProcId = std::uint32_t;

/// Channel index, 0-based (the paper's C_{j+1}).
using ChannelId = std::uint32_t;

/// Cycle counter.
using Cycle = std::uint64_t;

}  // namespace mcb
