#include "seq/columnsort.hpp"

#include <vector>

#include "seq/matrix.hpp"
#include "seq/sorting.hpp"
#include "util/check.hpp"

namespace mcb::seq {

bool columnsort_dims_ok(std::size_t m, std::size_t k,
                        ColumnsortVariant variant) {
  if (k == 0 || m == 0) return false;
  if (k == 1) return true;
  if (m % k != 0) return false;
  return variant == ColumnsortVariant::kUndiagonalize
             ? m >= k * (k - 1)
             : m >= 2 * (k - 1) * (k - 1);
}

void apply_transform(sched::Transform t, std::span<Word> data, std::size_t m,
                     std::size_t k) {
  const auto table = sched::permutation_table(t, m, k);
  std::vector<Word> scratch(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    scratch[table[i]] = data[i];
  }
  std::copy(scratch.begin(), scratch.end(), data.begin());
}

void columnsort(std::span<Word> data, std::size_t m, std::size_t k,
                ColumnsortVariant variant) {
  MCB_REQUIRE(data.size() == m * k,
              "data size " << data.size() << " != m*k = " << m * k);
  MCB_REQUIRE(columnsort_dims_ok(m, k, variant),
              "invalid Columnsort dimensions m=" << m << " k=" << k
                                                 << " for this variant");
  ColMatrix mat(data, m, k);
  auto sort_columns = [&](std::size_t from_col) {
    for (std::size_t c = from_col; c < k; ++c) {
      sort_descending(mat.column(c));
    }
  };

  sort_columns(0);  // phase 1
  if (k == 1) return;

  apply_transform(sched::Transform::kTranspose, data, m, k);       // phase 2
  sort_columns(0);                                                 // phase 3
  apply_transform(variant == ColumnsortVariant::kUndiagonalize
                      ? sched::Transform::kUndiagonalize
                      : sched::Transform::kUntranspose,
                  data, m, k);                                     // phase 4
  sort_columns(0);                                                 // phase 5
  apply_transform(sched::Transform::kUpShift, data, m, k);         // phase 6
  sort_columns(1);  // phase 7: every column except column 1
  apply_transform(sched::Transform::kDownShift, data, m, k);       // phase 8
}

}  // namespace mcb::seq
