// Column-major matrix view used by Columnsort.
//
// The paper views the input as "a set of k columns of length m". ColMatrix
// is a non-owning view over flat storage of size m*k laid out column-major:
// linear index ell = col*m + row, which is exactly the "(column, row)
// lexicographic order" the transformations are defined over.
#pragma once

#include <cstddef>
#include <span>

#include "mcb/types.hpp"
#include "util/check.hpp"

namespace mcb::seq {

class ColMatrix {
 public:
  ColMatrix(std::span<Word> data, std::size_t m, std::size_t k)
      : data_(data), m_(m), k_(k) {
    MCB_REQUIRE(data.size() == m * k, "matrix storage " << data.size()
                                                        << " != m*k = "
                                                        << m * k);
  }

  std::size_t rows() const { return m_; }
  std::size_t cols() const { return k_; }
  std::size_t size() const { return m_ * k_; }

  Word& at(std::size_t row, std::size_t col) {
    MCB_CHECK(row < m_ && col < k_, "(" << row << "," << col << ")");
    return data_[col * m_ + row];
  }
  Word at(std::size_t row, std::size_t col) const {
    MCB_CHECK(row < m_ && col < k_, "(" << row << "," << col << ")");
    return data_[col * m_ + row];
  }

  std::span<Word> column(std::size_t col) {
    MCB_CHECK(col < k_, "column " << col);
    return data_.subspan(col * m_, m_);
  }

  std::span<Word> flat() { return data_; }
  std::span<const Word> flat() const { return data_; }

 private:
  std::span<Word> data_;
  std::size_t m_;
  std::size_t k_;
};

}  // namespace mcb::seq
