// Sequential selection substrate.
//
// The paper's local median computations cite [Blum73] — the linear-time
// median-of-medians algorithm (BFPRT). This module implements it from
// scratch, plus a randomized quickselect. Rank conventions follow the paper:
// ranks are 1-based and count from the LARGEST element (N[1] is the
// maximum, N[n] the minimum, N[ceil(n/2)] the median — Section 3).
#pragma once

#include <cstddef>
#include <span>

#include "mcb/types.hpp"
#include "util/random.hpp"

namespace mcb::seq {

/// d-th largest element, 1 <= d <= v.size(), deterministic O(n) worst case
/// (median of medians, groups of 5). Reorders v.
Word kth_largest(std::span<Word> v, std::size_t d);

/// d-th largest via randomized quickselect: expected O(n). Reorders v.
Word kth_largest_quickselect(std::span<Word> v, std::size_t d,
                             util::Xoshiro256StarStar& rng);

/// The paper's median: element of rank ceil(n/2) from the top. Reorders v.
Word median(std::span<Word> v);

/// Convenience for const input: copies, then selects.
Word kth_largest_copy(std::span<const Word> v, std::size_t d);

}  // namespace mcb::seq
