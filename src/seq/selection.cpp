#include "seq/selection.hpp"

#include <utility>
#include <vector>

#include "seq/sorting.hpp"
#include "util/check.hpp"

namespace mcb::seq {
namespace {

// Partitions v around pivot value; returns (lt, gt) such that
//   v[0 .. lt)   > pivot   (the "larger" side — descending convention)
//   v[lt .. gt)  == pivot
//   v[gt .. n)   < pivot
// Three-way partition keeps the algorithm linear with duplicate values.
std::pair<std::size_t, std::size_t> partition3(std::span<Word> v,
                                               Word pivot) {
  std::size_t lt = 0, i = 0, gt = v.size();
  while (i < gt) {
    if (v[i] > pivot) {
      std::swap(v[i], v[lt]);
      ++lt;
      ++i;
    } else if (v[i] < pivot) {
      --gt;
      std::swap(v[i], v[gt]);
    } else {
      ++i;
    }
  }
  return {lt, gt};
}

Word median_of_medians(std::span<Word> v);

Word select_bfprt(std::span<Word> v, std::size_t d) {
  while (true) {
    MCB_CHECK(1 <= d && d <= v.size(), "rank " << d << " of " << v.size());
    if (v.size() <= 10) {
      insertion_sort(v, std::greater<Word>{});
      return v[d - 1];
    }
    const Word pivot = median_of_medians(v);
    const auto [lt, gt] = partition3(v, pivot);
    if (d <= lt) {
      v = v.subspan(0, lt);
    } else if (d <= gt) {
      return pivot;
    } else {
      d -= gt;
      v = v.subspan(gt);
    }
  }
}

// Median of the medians of groups of five, gathered destructively into the
// prefix of v so the recursion works in place.
Word median_of_medians(std::span<Word> v) {
  const std::size_t groups = (v.size() + 4) / 5;
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t lo = g * 5;
    const std::size_t len = std::min<std::size_t>(5, v.size() - lo);
    auto grp = v.subspan(lo, len);
    insertion_sort(grp, std::greater<Word>{});
    std::swap(v[g], grp[(len - 1) / 2]);  // group median (upper for even)
  }
  return select_bfprt(v.subspan(0, groups), (groups + 1) / 2);
}

}  // namespace

Word kth_largest(std::span<Word> v, std::size_t d) {
  MCB_REQUIRE(1 <= d && d <= v.size(),
              "rank " << d << " out of range for " << v.size() << " elements");
  return select_bfprt(v, d);
}

Word kth_largest_quickselect(std::span<Word> v, std::size_t d,
                             util::Xoshiro256StarStar& rng) {
  MCB_REQUIRE(1 <= d && d <= v.size(),
              "rank " << d << " out of range for " << v.size() << " elements");
  while (true) {
    if (v.size() <= 10) {
      insertion_sort(v, std::greater<Word>{});
      return v[d - 1];
    }
    const Word pivot = v[static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(v.size()) - 1))];
    const auto [lt, gt] = partition3(v, pivot);
    if (d <= lt) {
      v = v.subspan(0, lt);
    } else if (d <= gt) {
      return pivot;
    } else {
      d -= gt;
      v = v.subspan(gt);
    }
  }
}

Word median(std::span<Word> v) {
  MCB_REQUIRE(!v.empty(), "median of an empty list");
  return kth_largest(v, (v.size() + 1) / 2);
}

Word kth_largest_copy(std::span<const Word> v, std::size_t d) {
  std::vector<Word> tmp(v.begin(), v.end());
  return kth_largest(std::span<Word>(tmp), d);
}

}  // namespace mcb::seq
