// Reference in-memory Columnsort [Leig84], exactly as specialized by the
// paper (Section 5.1): 8 phases alternating local column sorts with the four
// matrix transformations, producing the elements in descending order of
// magnitude, column after column.
//
// This implementation is the executable specification that the distributed
// MCB implementations are tested against; it shares the transformation
// definitions with the broadcast schedules via sched/permutation.
#pragma once

#include <cstddef>
#include <span>

#include "mcb/types.hpp"
#include "sched/permutation.hpp"

namespace mcb::seq {

/// Which phase-4 transformation the 8-phase scheme uses. The paper uses
/// un-diagonalize, valid for m >= k(k-1); Leighton's original untranspose
/// needs the stronger m >= 2(k-1)^2 — implemented as an ablation that
/// quantifies why the paper's choice admits more columns per element.
enum class ColumnsortVariant {
  kUndiagonalize,  ///< the paper's scheme (default)
  kUntranspose,    ///< Leighton's original
};

/// Dimension validity for the chosen variant (k | m plus the bound above;
/// k == 1 is always valid — single column, phases 2-9 degenerate).
bool columnsort_dims_ok(
    std::size_t m, std::size_t k,
    ColumnsortVariant variant = ColumnsortVariant::kUndiagonalize);

/// Sorts `data` (column-major m x k) into descending column-major order.
/// Requires columnsort_dims_ok(m, k, variant); throws std::invalid_argument
/// otherwise.
void columnsort(std::span<Word> data, std::size_t m, std::size_t k,
                ColumnsortVariant variant = ColumnsortVariant::kUndiagonalize);

/// Applies one transformation out of place via a scratch buffer.
void apply_transform(sched::Transform t, std::span<Word> data, std::size_t m,
                     std::size_t k);

}  // namespace mcb::seq
