// Sequential sorting substrate.
//
// The paper's local sorting phases cite [Knut73]; this module provides the
// stand-in: insertion sort, heapsort, bottom-up merge sort and an introsort
// driver (quicksort with median-of-three, depth-limited into heapsort,
// insertion sort for small ranges). Implemented from scratch so the library
// has no hidden dependency on std::sort; std algorithms appear only in tests
// as oracles.
//
// All comparators follow std conventions: cmp(a, b) == true iff a must
// precede b. The paper orders lists in *descending* magnitude (N[1] is the
// largest element), so descending helpers are provided as the library
// default.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "mcb/types.hpp"

namespace mcb::seq {

template <typename T, typename Cmp = std::less<T>>
void insertion_sort(std::span<T> v, Cmp cmp = {}) {
  for (std::size_t i = 1; i < v.size(); ++i) {
    T x = std::move(v[i]);
    std::size_t j = i;
    while (j > 0 && cmp(x, v[j - 1])) {
      v[j] = std::move(v[j - 1]);
      --j;
    }
    v[j] = std::move(x);
  }
}

namespace detail {

template <typename T, typename Cmp>
void sift_down(std::span<T> v, std::size_t root, std::size_t limit, Cmp cmp) {
  // Max-heap with respect to cmp: parent not cmp-before any child.
  while (true) {
    const std::size_t left = 2 * root + 1;
    if (left >= limit) return;
    std::size_t best = left;
    if (left + 1 < limit && cmp(v[left], v[left + 1])) best = left + 1;
    if (!cmp(v[root], v[best])) return;
    using std::swap;
    swap(v[root], v[best]);
    root = best;
  }
}

}  // namespace detail

template <typename T, typename Cmp = std::less<T>>
void heap_sort(std::span<T> v, Cmp cmp = {}) {
  const std::size_t n = v.size();
  if (n < 2) return;
  for (std::size_t i = n / 2; i-- > 0;) {
    detail::sift_down(v, i, n, cmp);
  }
  for (std::size_t end = n; end-- > 1;) {
    using std::swap;
    swap(v[0], v[end]);
    detail::sift_down(v, 0, end, cmp);
  }
}

/// Stable bottom-up merge sort; allocates an n-element buffer.
template <typename T, typename Cmp = std::less<T>>
void merge_sort(std::span<T> v, Cmp cmp = {}) {
  const std::size_t n = v.size();
  if (n < 2) return;
  std::vector<T> buf(v.begin(), v.end());
  T* src = buf.data();
  T* dst = v.data();
  bool into_v = true;
  for (std::size_t width = 1; width < n; width *= 2) {
    for (std::size_t lo = 0; lo < n; lo += 2 * width) {
      const std::size_t mid = std::min(lo + width, n);
      const std::size_t hi = std::min(lo + 2 * width, n);
      std::size_t a = lo, b = mid, o = lo;
      while (a < mid && b < hi) {
        // !cmp(src[b], src[a]) keeps equal elements from the left: stable.
        dst[o++] = !cmp(src[b], src[a]) ? std::move(src[a++])
                                        : std::move(src[b++]);
      }
      while (a < mid) dst[o++] = std::move(src[a++]);
      while (b < hi) dst[o++] = std::move(src[b++]);
    }
    std::swap(src, dst);
    into_v = !into_v;
  }
  // After the final swap, `src` points at the fully sorted data.
  if (into_v) {
    for (std::size_t i = 0; i < n; ++i) v[i] = std::move(buf[i]);
  }
}

namespace detail {

template <typename T, typename Cmp>
const T& median3(const T& a, const T& b, const T& c, Cmp cmp) {
  if (cmp(a, b)) {
    if (cmp(b, c)) return b;
    return cmp(a, c) ? c : a;
  }
  if (cmp(a, c)) return a;
  return cmp(b, c) ? c : b;
}

template <typename T, typename Cmp>
void intro_rec(std::span<T> v, std::size_t depth, Cmp cmp) {
  constexpr std::size_t kSmall = 24;
  while (v.size() > kSmall) {
    if (depth == 0) {
      heap_sort(v, cmp);
      return;
    }
    --depth;
    const T pivot =
        median3(v[0], v[v.size() / 2], v[v.size() - 1], cmp);
    // Hoare partition.
    std::size_t i = 0, j = v.size() - 1;
    while (true) {
      while (cmp(v[i], pivot)) ++i;
      while (cmp(pivot, v[j])) --j;
      if (i >= j) break;
      using std::swap;
      swap(v[i], v[j]);
      ++i;
      --j;
    }
    // Recurse into the smaller side, loop on the larger (bounded stack).
    const std::size_t cut = j + 1;
    if (cut < v.size() - cut) {
      intro_rec(v.subspan(0, cut), depth, cmp);
      v = v.subspan(cut);
    } else {
      intro_rec(v.subspan(cut), depth, cmp);
      v = v.subspan(0, cut);
    }
  }
  insertion_sort(v, cmp);
}

}  // namespace detail

/// General-purpose sort: introsort. O(n log n) worst case, in place.
template <typename T, typename Cmp = std::less<T>>
void intro_sort(std::span<T> v, Cmp cmp = {}) {
  std::size_t depth = 0;
  for (std::size_t x = v.size(); x > 1; x /= 2) depth += 2;
  detail::intro_rec(v, depth, cmp);
}

// --- Word conveniences in the paper's (descending) convention --------------

void sort_descending(std::span<Word> v);
void sort_ascending(std::span<Word> v);
bool is_sorted_descending(std::span<const Word> v);

}  // namespace mcb::seq
