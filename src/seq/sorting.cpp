#include "seq/sorting.hpp"

namespace mcb::seq {

void sort_descending(std::span<Word> v) {
  intro_sort(v, std::greater<Word>{});
}

void sort_ascending(std::span<Word> v) { intro_sort(v, std::less<Word>{}); }

bool is_sorted_descending(std::span<const Word> v) {
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i - 1] < v[i]) return false;
  }
  return true;
}

}  // namespace mcb::seq
