// Tests of the recursive Columnsort (Section 6.2): correctness in the
// small-n regime n < k^2(k-1) where the flat algorithm cannot use all
// channels, the O(s*n/k) cycle behaviour, and the max_split ablation knob.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "algo/columnsort_even.hpp"
#include "algo/recursive_columnsort.hpp"
#include "util/workload.hpp"

namespace mcb::algo {
namespace {

void expect_sorted_outputs(const std::vector<std::vector<Word>>& inputs,
                           const std::vector<std::vector<Word>>& outputs) {
  std::vector<Word> all;
  for (const auto& x : inputs) all.insert(all.end(), x.begin(), x.end());
  std::sort(all.begin(), all.end(), std::greater<Word>{});
  std::size_t at = 0;
  ASSERT_EQ(inputs.size(), outputs.size());
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    ASSERT_EQ(outputs[i].size(), inputs[i].size()) << "P" << i + 1;
    for (Word w : outputs[i]) {
      ASSERT_EQ(w, all[at]) << "P" << i + 1 << " rank " << at;
      ++at;
    }
  }
}

struct Shape {
  std::size_t p, k, ni;
};

class RecursiveSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(RecursiveSweep, Sorts) {
  const auto [p, k, ni] = GetParam();
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    auto w = util::make_workload(p * ni, p, util::Shape::kEven, seed);
    auto res = recursive_columnsort({.p = p, .k = k}, w.inputs);
    expect_sorted_outputs(w.inputs, res.run.outputs);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RecursiveSweep,
    ::testing::ValuesIn(std::vector<Shape>{
        // The regime this algorithm exists for: n < k^2(k-1).
        {16, 16, 4},    // n = 64 << 16^2*15
        {32, 16, 2},    // n = 64
        {64, 16, 4},    // n = 256
        {64, 32, 8},    // n = 512 << 32^2*31
        {16, 8, 8},     // n = 128 < 448
        // Comfortable dimensions (split factor = k, like Section 6.1).
        {16, 4, 64},
        {8, 2, 32},
        // Degenerate cases.
        {4, 1, 8},      // single channel: Rank-Sort
        {1, 1, 16},     // single processor: local
        {8, 8, 1},      // one element per processor
    }),
    [](const auto& pinfo) {
      return "p" + std::to_string(pinfo.param.p) + "_k" +
             std::to_string(pinfo.param.k) + "_ni" +
             std::to_string(pinfo.param.ni);
    });

TEST(RecursiveColumnsortTest, UsesAllChannelsWhereFlatCannot) {
  // n = 256, k = 16: flat Columnsort can use at most 4 columns
  // (m = n/kk >= kk(kk-1) caps kk). The recursive algorithm engages and
  // spreads transformation traffic over all 16 channels. (The cycle-count
  // crossover against the flat algorithm needs larger configurations and is
  // measured in bench_sort_recursive.)
  const std::size_t p = 64, k = 16, ni = 4;
  auto w = util::make_workload(p * ni, p, util::Shape::kEven, 5);

  auto flat = columnsort_even({.p = p, .k = k}, w.inputs);
  auto rec = recursive_columnsort({.p = p, .k = k}, w.inputs);
  expect_sorted_outputs(w.inputs, rec.run.outputs);

  EXPECT_LT(flat.columns, k);  // the flat algorithm is channel-starved
  EXPECT_GT(rec.depth, 1u);    // recursion engaged
  // All 16 channels carry traffic in the recursive run.
  for (std::size_t c = 0; c < k; ++c) {
    EXPECT_GT(rec.run.stats.messages_per_channel[c], 0u) << "channel " << c;
  }
}

TEST(RecursiveColumnsortTest, MaxSplitAblation) {
  const std::size_t p = 64, k = 16, ni = 16;
  auto w = util::make_workload(p * ni, p, util::Shape::kEven, 6);
  std::vector<std::vector<Word>> reference;
  for (std::size_t cap : {2u, 4u, 16u}) {
    auto res = recursive_columnsort({.p = p, .k = k}, w.inputs,
                                    {.max_split = cap});
    expect_sorted_outputs(w.inputs, res.run.outputs);
    EXPECT_LE(res.top_columns, cap);
    if (reference.empty()) {
      reference = res.run.outputs;
    } else {
      EXPECT_EQ(res.run.outputs, reference);
    }
  }
}

TEST(RecursiveColumnsortTest, CyclesScaleWithNOverKAtFixedDepth) {
  // A depth-s plan has 4^s sequential sorting slots and per-slot cost
  // O(n/k) (the per-channel load n_c/kc is invariant down the tree), so
  // cycles / (4^depth * n/k) must stay bounded as n grows at fixed (p, k).
  const std::size_t p = 64, k = 16;
  for (std::size_t ni : {4u, 8u, 16u, 32u}) {
    auto w = util::make_workload(p * ni, p, util::Shape::kEven, ni);
    auto res = recursive_columnsort({.p = p, .k = k}, w.inputs);
    expect_sorted_outputs(w.inputs, res.run.outputs);
    const double slots = std::pow(4.0, double(res.depth));
    const double normalized =
        double(res.run.stats.cycles) / (slots * double(p * ni) / double(k));
    EXPECT_LE(normalized, 8.0) << "ni=" << ni << " depth=" << res.depth;
  }
}

TEST(RecursiveColumnsortTest, DuplicatesHandled) {
  std::vector<std::vector<Word>> inputs{
      {7, 7, 7, 7}, {1, 1, 1, 1}, {7, 1, 7, 1}, {4, 4, 4, 4}};
  auto res = recursive_columnsort({.p = 4, .k = 2}, inputs);
  expect_sorted_outputs(inputs, res.run.outputs);
}

TEST(RecursiveColumnsortTest, UnevenInputRejected) {
  std::vector<std::vector<Word>> inputs{{1, 2}, {3}};
  EXPECT_THROW(recursive_columnsort({.p = 2, .k = 2}, inputs),
               std::invalid_argument);
}

}  // namespace
}  // namespace mcb::algo
