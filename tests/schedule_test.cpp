// Tests of the broadcast scheduling substrate: Birkhoff decomposition,
// regular padding, and transformation transfer plans (collision-freedom and
// the König round bound R <= m).
#include <gtest/gtest.h>

#include <array>
#include <numeric>

#include "sched/edge_coloring.hpp"
#include "sched/schedule.hpp"
#include "util/random.hpp"

namespace mcb::sched {
namespace {

CountMatrix random_regular(std::size_t k, std::uint64_t r,
                           std::uint64_t seed) {
  // Sum of r random permutation matrices is r-regular.
  util::Xoshiro256StarStar rng(seed);
  CountMatrix m(k, std::vector<std::uint64_t>(k, 0));
  std::vector<std::size_t> perm(k);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  for (std::uint64_t t = 0; t < r; ++t) {
    rng.shuffle(perm);
    for (std::size_t i = 0; i < k; ++i) ++m[i][perm[i]];
  }
  return m;
}

void expect_decomposes(const CountMatrix& m) {
  const auto k = m.size();
  auto terms = birkhoff_decompose(m);
  CountMatrix sum(k, std::vector<std::uint64_t>(k, 0));
  std::uint64_t total = 0;
  for (const auto& t : terms) {
    ASSERT_EQ(t.perm.size(), k);
    // each term is a permutation
    std::vector<bool> seen(k, false);
    for (auto v : t.perm) {
      ASSERT_LT(v, k);
      ASSERT_FALSE(seen[v]);
      seen[v] = true;
    }
    for (std::size_t i = 0; i < k; ++i) sum[i][t.perm[i]] += t.count;
    total += t.count;
  }
  EXPECT_EQ(sum, m);
  EXPECT_EQ(total, max_degree(m));
}

TEST(EdgeColoringTest, DecomposesRandomRegularMatrices) {
  for (std::size_t k : {2u, 3u, 5u, 8u}) {
    for (std::uint64_t r : {1u, 2u, 7u, 100u}) {
      expect_decomposes(random_regular(k, r, k * 1000 + r));
    }
  }
}

TEST(EdgeColoringTest, SingleVertex) {
  expect_decomposes(CountMatrix{{5}});
}

TEST(EdgeColoringTest, RejectsIrregular) {
  CountMatrix bad{{1, 0}, {1, 0}};  // column sums 2 and 0
  EXPECT_THROW(birkhoff_decompose(bad), std::invalid_argument);
}

TEST(EdgeColoringTest, RejectsNonSquare) {
  CountMatrix bad{{1, 0, 0}, {0, 1, 0}};
  EXPECT_THROW(birkhoff_decompose(bad), std::invalid_argument);
}

TEST(EdgeColoringTest, PadToRegularBalances) {
  util::Xoshiro256StarStar rng(11);
  for (std::size_t k : {2u, 4u, 7u}) {
    CountMatrix m(k, std::vector<std::uint64_t>(k, 0));
    for (auto& row : m) {
      for (auto& v : row) {
        v = static_cast<std::uint64_t>(rng.uniform(0, 9));
      }
    }
    const auto r = max_degree(m);
    auto dummy = pad_to_regular(m);
    for (std::size_t i = 0; i < k; ++i) {
      std::uint64_t rs = 0, cs = 0;
      for (std::size_t j = 0; j < k; ++j) {
        rs += m[i][j] + dummy[i][j];
        cs += m[j][i] + dummy[j][i];
      }
      EXPECT_EQ(rs, r) << "row " << i;
      EXPECT_EQ(cs, r) << "col " << i;
    }
  }
}

// --- Euler-split edge coloring ----------------------------------------------

void expect_valid_coloring(std::size_t l, std::size_t r,
                           const std::vector<BipEdge>& edges) {
  auto ec = euler_color(l, r, edges);
  ASSERT_EQ(ec.colors.size(), edges.size());
  // No two same-colored edges share an endpoint.
  std::vector<std::vector<bool>> seen_l(ec.num_colors,
                                        std::vector<bool>(l, false));
  std::vector<std::vector<bool>> seen_r(ec.num_colors,
                                        std::vector<bool>(r, false));
  std::size_t delta = 0;
  std::vector<std::size_t> dl(l, 0), dr(r, 0);
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const auto c = ec.colors[e];
    ASSERT_LT(c, ec.num_colors);
    ASSERT_FALSE(seen_l[c][edges[e].left]) << "left clash, color " << c;
    ASSERT_FALSE(seen_r[c][edges[e].right]) << "right clash, color " << c;
    seen_l[c][edges[e].left] = true;
    seen_r[c][edges[e].right] = true;
    delta = std::max({delta, ++dl[edges[e].left], ++dr[edges[e].right]});
  }
  // Color budget: 2^ceil(log2(delta)) < 2*delta.
  if (delta > 0) {
    EXPECT_LT(ec.num_colors, 2 * delta);
  }
}

TEST(EulerColorTest, RandomMultigraphs) {
  util::Xoshiro256StarStar rng(23);
  for (auto [l, r, e] : std::vector<std::array<std::size_t, 3>>{
           {1, 1, 5}, {2, 3, 10}, {4, 16, 64}, {8, 64, 500}, {16, 128, 2000},
           {3, 7, 1}}) {
    std::vector<BipEdge> edges(e);
    for (auto& ed : edges) {
      ed.left = static_cast<std::uint32_t>(
          rng.uniform(0, static_cast<std::int64_t>(l) - 1));
      ed.right = static_cast<std::uint32_t>(
          rng.uniform(0, static_cast<std::int64_t>(r) - 1));
    }
    expect_valid_coloring(l, r, edges);
  }
}

TEST(EulerColorTest, EmptyAndParallelEdges) {
  expect_valid_coloring(3, 3, {});
  // 6 parallel edges between one pair: needs >= 6 colors.
  std::vector<BipEdge> par(6, BipEdge{1, 2});
  auto ec = euler_color(3, 3, par);
  std::vector<bool> used(ec.num_colors, false);
  for (auto c : ec.colors) {
    ASSERT_FALSE(used[c]);
    used[c] = true;
  }
}

TEST(EulerColorTest, PerfectMatchingNeedsOneColor) {
  std::vector<BipEdge> edges{{0, 2}, {1, 1}, {2, 0}};
  auto ec = euler_color(3, 3, edges);
  EXPECT_EQ(ec.num_colors, 1u);
}

TEST(EulerColorTest, OutOfRangeRejected) {
  EXPECT_THROW(euler_color(2, 2, {BipEdge{2, 0}}), std::invalid_argument);
}

// --- transfer plans ----------------------------------------------------------

class PlanTest : public ::testing::TestWithParam<
                     std::tuple<Transform, std::size_t, std::size_t>> {};

TEST_P(PlanTest, ValidAndWithinKoenigBound) {
  auto [t, m, k] = GetParam();
  auto table = permutation_table(t, m, k);
  auto plan = plan_transform(t, m, k, &table);
  EXPECT_TRUE(plan_is_valid(plan, table))
      << to_string(t) << " m=" << m << " k=" << k;
  EXPECT_LE(plan.cycles(), m) << "more rounds than the Koenig bound";
  // Messages = cross-column moves <= m*k.
  EXPECT_LE(plan.messages(), m * k);
}

INSTANTIATE_TEST_SUITE_P(
    Dims, PlanTest,
    ::testing::Combine(::testing::Values(Transform::kTranspose,
                                         Transform::kUndiagonalize,
                                         Transform::kUpShift,
                                         Transform::kDownShift,
                                         Transform::kUntranspose),
                       ::testing::Values<std::size_t>(4, 8, 16, 24),
                       ::testing::Values<std::size_t>(2, 4)),
    [](const auto& pinfo) {
      return std::string(1,
                         "TUSDN"[static_cast<int>(std::get<0>(pinfo.param))]) +
             "_m" + std::to_string(std::get<1>(pinfo.param)) + "_k" +
             std::to_string(std::get<2>(pinfo.param));
    });

TEST(PlanTest, TransposeUsesExactlyMCyclesAtUniformLoad) {
  // Transpose moves m - m/k elements out of each column, spread uniformly
  // over destinations; the plan should need at most m rounds and at least
  // m - m/k (each column sends at most one element per round).
  const std::size_t m = 16, k = 4;
  auto plan = plan_transform(Transform::kTranspose, m, k);
  EXPECT_GE(plan.cycles(), m - m / k);
  EXPECT_LE(plan.cycles(), m);
  EXPECT_EQ(plan.messages(), (m - m / k) * k);
}

TEST(PlanTest, UpShiftUsesHalfColumnCycles) {
  const std::size_t m = 12, k = 3;
  auto plan = plan_transform(Transform::kUpShift, m, k);
  EXPECT_EQ(plan.cycles(), m / 2);  // only the bottom half crosses columns
  EXPECT_EQ(plan.messages(), (m / 2) * k);
}

TEST(PlanTest, SingleColumnPlanIsEmpty) {
  auto plan = plan_transform(Transform::kUpShift, 8, 1);
  EXPECT_EQ(plan.cycles(), 0u);
  EXPECT_EQ(plan.messages(), 0u);
}

}  // namespace
}  // namespace mcb::sched
