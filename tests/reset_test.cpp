// Reset-equivalence suite for the serving path (Network::reset).
//
// The contract under test: a program run through a reset() network is
// observationally identical to the same program run through a freshly
// constructed one — same model accounting, same cycle-by-cycle trace
// stream, same conformance verdict — on every engine and thread count. The
// only sanctioned differences are the warm-arena effects reset exists to
// buy: frame_reuses / arena_hit_rate may (and should) improve on the
// second run, while the per-run frame_allocs / frame_frees deltas stay
// equal to a cold network's.
#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "algo/multi_select.hpp"
#include "check/conformance.hpp"
#include "mcb/errors.hpp"
#include "mcb/network.hpp"
#include "mcb/trace.hpp"
#include "util/workload.hpp"

namespace mcb {
namespace {

struct EngineCase {
  Engine engine;
  std::size_t threads;
  const char* label;
};

// Parallel runs at 1 (degenerate pool) and 4 (real striping) — reset must
// not depend on which worker simulated which stripe.
const EngineCase kEngineGrid[] = {
    {Engine::kReference, 0, "reference"},
    {Engine::kEventDriven, 0, "event"},
    {Engine::kParallel, 1, "parallel-t1"},
    {Engine::kParallel, 4, "parallel-t4"},
};

SimConfig make_cfg(std::size_t p, std::size_t k, const EngineCase& ec) {
  SimConfig cfg{.p = p, .k = k};
  cfg.engine = ec.engine;
  cfg.threads = ec.threads;
  return cfg;
}

/// Every model-level field plus the per-run arena deltas. frame_reuses and
/// arena_hit_rate are deliberately absent: those are the warm-arena signal
/// (asserted separately), not part of the equivalence contract.
void expect_equivalent_runs(const RunStats& fresh, const RunStats& reset,
                            const std::string& label) {
  EXPECT_EQ(fresh.cycles, reset.cycles) << label;
  EXPECT_EQ(fresh.messages, reset.messages) << label;
  EXPECT_EQ(fresh.messages_per_proc, reset.messages_per_proc) << label;
  EXPECT_EQ(fresh.messages_per_channel, reset.messages_per_channel) << label;
  EXPECT_EQ(fresh.peak_aux_words, reset.peak_aux_words) << label;
  EXPECT_EQ(fresh.proc_resumes, reset.proc_resumes) << label;
  ASSERT_EQ(fresh.phases.size(), reset.phases.size()) << label;
  for (std::size_t i = 0; i < fresh.phases.size(); ++i) {
    EXPECT_EQ(fresh.phases[i].name, reset.phases[i].name) << label;
    EXPECT_EQ(fresh.phases[i].first_cycle, reset.phases[i].first_cycle)
        << label << " phase " << fresh.phases[i].name;
    EXPECT_EQ(fresh.phases[i].cycles, reset.phases[i].cycles)
        << label << " phase " << fresh.phases[i].name;
    EXPECT_EQ(fresh.phases[i].messages, reset.phases[i].messages)
        << label << " phase " << fresh.phases[i].name;
  }
  // Per-run deltas (Network subtracts the start-of-run arena snapshot), so
  // a warm second run must report exactly a cold network's numbers.
  EXPECT_EQ(fresh.frame_allocs, reset.frame_allocs) << label;
  EXPECT_EQ(fresh.frame_frees, reset.frame_frees) << label;
  // Raw high-water mark: live bytes return to zero between identical runs,
  // so the warm arena's peak is the cold arena's peak.
  EXPECT_EQ(fresh.arena_bytes_peak, reset.arena_bytes_peak) << label;
}

/// Staggered sleepers (distinct write cycles, so collision-free), a phase
/// mark, and per-proc tails — the skip-heavy shape that exercises the wake
/// queue's reset hardest.
void install_sleepers(Network& net, const SimConfig& cfg) {
  auto sleeper = [](Proc& self, Cycle gap) -> ProcMain {
    if (self.id() == 0) self.mark_phase("stagger");
    co_await self.skip(gap);
    co_await self.write(static_cast<ChannelId>(self.id() % self.k()),
                        Message::of(static_cast<Word>(self.id())));
    if (self.id() == 0) self.mark_phase("tail");
    co_await self.skip(3 * (self.id() + 1));
  };
  for (ProcId i = 0; i < cfg.p; ++i) {
    net.install(i, sleeper(net.proc(i), 11 * (i + 1)));
  }
}

TEST(ResetEquivalence, HandRolledProtocolMatchesFreshNetworks) {
  for (const auto& ec : kEngineGrid) {
    const auto cfg = make_cfg(24, 4, ec);

    auto run_fresh = [&]() {
      Network net(cfg);
      install_sleepers(net, cfg);
      return net.run();
    };
    const RunStats fresh1 = run_fresh();
    const RunStats fresh2 = run_fresh();

    Network net(cfg);
    install_sleepers(net, cfg);
    const RunStats r1 = net.run();
    net.reset();
    install_sleepers(net, cfg);
    const RunStats r2 = net.run();

    expect_equivalent_runs(fresh1, r1, std::string(ec.label) + "/run1");
    expect_equivalent_runs(fresh2, r2, std::string(ec.label) + "/run2");
    // No arena assertions here: the frame-arena scope is active only
    // inside run(), so top-level program frames installed beforehand are
    // global-heap and this protocol spawns no sub-coroutines. The warm-
    // arena evidence lives in ServingSelectRanksPathMatchesFreshNetworks.
  }
}

TEST(ResetEquivalence, ServingSelectRanksPathMatchesFreshNetworks) {
  // The serving layer's actual reuse pattern: consecutive batches with
  // *different* rank lists (different programs, different frame shapes)
  // through one network.
  const auto w = util::make_workload(512, 16, util::Shape::kRandom, 3);
  const std::vector<std::size_t> batch1 = {1, 52, 256, 500};
  const std::vector<std::size_t> batch2 = {7, 412};
  for (const auto& ec : kEngineGrid) {
    const auto cfg = make_cfg(16, 4, ec);

    auto run_fresh = [&](const std::vector<std::size_t>& ds) {
      Network net(cfg);
      return algo::select_ranks_on(net, w.inputs, ds);
    };
    const auto fresh1 = run_fresh(batch1);
    const auto fresh2 = run_fresh(batch2);

    Network net(cfg);
    const auto r1 = algo::select_ranks_on(net, w.inputs, batch1);
    net.reset();
    const auto r2 = algo::select_ranks_on(net, w.inputs, batch2);

    EXPECT_EQ(fresh1.values, r1.values) << ec.label;
    EXPECT_EQ(fresh2.values, r2.values) << ec.label;
    EXPECT_EQ(fresh1.filter_phases, r1.filter_phases) << ec.label;
    EXPECT_EQ(fresh2.filter_phases, r2.filter_phases) << ec.label;
    expect_equivalent_runs(fresh1.stats, r1.stats,
                           std::string(ec.label) + "/batch1");
    expect_equivalent_runs(fresh2.stats, r2.stats,
                           std::string(ec.label) + "/batch2");
    if (MCB_FRAME_ARENA_ENABLED) {
      // The warm-arena payoff, isolated from within-run reuse: a fresh
      // network running batch2 pays slab allocations for its first round
      // of collective sub-frames; the reset network serves that same
      // round out of the free lists batch1 left behind, so its reuse
      // count must be strictly higher (and its hit rate no worse).
      EXPECT_GT(r2.stats.frame_reuses, fresh2.stats.frame_reuses)
          << ec.label;
      EXPECT_GE(r2.stats.arena_hit_rate, fresh2.stats.arena_hit_rate)
          << ec.label;
    }
  }
}

TEST(ResetEquivalence, TraceStreamAndConformanceSurviveReset) {
  // Strongest form: the cycle-by-cycle event stream of a reset network's
  // two runs is the concatenation of the two fresh networks' streams, and
  // each segment independently passes the model-conformance checker
  // reconciled against its own run's stats.
  const auto w = util::make_workload(256, 8, util::Shape::kEven, 5);
  const std::vector<std::size_t> batch1 = {1, 128, 200};
  const std::vector<std::size_t> batch2 = {64, 64, 9};
  for (const auto& ec : kEngineGrid) {
    const auto cfg = make_cfg(8, 2, ec);

    auto run_traced = [&](const std::vector<std::size_t>& ds,
                          ChannelTrace& trace) {
      Network net(cfg, &trace);
      return algo::select_ranks_on(net, w.inputs, ds);
    };
    ChannelTrace fresh_trace1(1u << 20);
    ChannelTrace fresh_trace2(1u << 20);
    const auto fresh1 = run_traced(batch1, fresh_trace1);
    const auto fresh2 = run_traced(batch2, fresh_trace2);
    ASSERT_FALSE(fresh_trace1.truncated());
    ASSERT_FALSE(fresh_trace2.truncated());

    ChannelTrace trace(1u << 20);
    Network net(cfg, &trace);
    const auto r1 = algo::select_ranks_on(net, w.inputs, batch1);
    const std::size_t cut = trace.events().size();
    net.reset();
    const auto r2 = algo::select_ranks_on(net, w.inputs, batch2);
    ASSERT_FALSE(trace.truncated());

    const auto& a1 = fresh_trace1.events();
    const auto& a2 = fresh_trace2.events();
    const auto& b = trace.events();
    ASSERT_EQ(cut, a1.size()) << ec.label;
    ASSERT_EQ(b.size(), a1.size() + a2.size()) << ec.label;
    auto same = [&](const CycleEvent& x, const CycleEvent& y,
                    std::size_t i) {
      EXPECT_EQ(x.cycle, y.cycle) << ec.label << " event " << i;
      EXPECT_EQ(x.proc, y.proc) << ec.label << " event " << i;
      EXPECT_EQ(x.wrote, y.wrote) << ec.label << " event " << i;
      EXPECT_EQ(x.sent, y.sent) << ec.label << " event " << i;
      EXPECT_EQ(x.read, y.read) << ec.label << " event " << i;
      EXPECT_EQ(x.received, y.received) << ec.label << " event " << i;
    };
    for (std::size_t i = 0; i < a1.size(); ++i) same(a1[i], b[i], i);
    for (std::size_t i = 0; i < a2.size(); ++i) same(a2[i], b[cut + i], i);

    // Each run segment re-checked from the event stream alone.
    check::ConformanceChecker c1(cfg);
    for (std::size_t i = 0; i < cut; ++i) c1.on_event(b[i]);
    EXPECT_TRUE(c1.finish(r1.stats).ok()) << ec.label << "\n"
                                          << c1.report().summary();
    check::ConformanceChecker c2(cfg);
    for (std::size_t i = cut; i < b.size(); ++i) c2.on_event(b[i]);
    EXPECT_TRUE(c2.finish(r2.stats).ok()) << ec.label << "\n"
                                          << c2.report().summary();
  }
}

TEST(ResetEquivalence, RunIsSingleShotUntilReset) {
  const SimConfig cfg{.p = 4, .k = 2};
  Network net(cfg);
  install_sleepers(net, cfg);
  const RunStats first = net.run();
  EXPECT_THROW(net.run(), std::invalid_argument);
  net.reset();
  install_sleepers(net, cfg);
  const RunStats again = net.run();
  EXPECT_EQ(first.cycles, again.cycles);
  EXPECT_EQ(first.messages, again.messages);
}

TEST(ResetEquivalence, ResetRecoversFromAbortedRun) {
  // A collision aborts the run mid-flight with suspended coroutines still
  // installed; reset() must tear that state down and re-arm the network.
  const SimConfig cfg{.p = 4, .k = 2};
  Network net(cfg);
  auto collider = [](Proc& self) -> ProcMain {
    co_await self.write(0, Message::of(static_cast<Word>(self.id())));
  };
  for (ProcId i = 0; i < cfg.p; ++i) net.install(i, collider(net.proc(i)));
  EXPECT_THROW(net.run(), CollisionError);

  net.reset();
  install_sleepers(net, cfg);
  Network fresh(cfg);
  install_sleepers(fresh, cfg);
  const RunStats want = fresh.run();
  const RunStats got = net.run();
  expect_equivalent_runs(want, got, "post-abort reset");
}

}  // namespace
}  // namespace mcb
