// Golden-stats regression test for the optimized engines.
//
// The scan-the-world reference loop (SimConfig::Engine::kReference, the
// seed implementation kept as the executable semantics specification) is
// the oracle; the event-driven scheduler (kEventDriven) and the striped
// parallel engine (kParallel, at every thread count in kThreadGrid) must be
// observationally identical to it: for every algorithm in src/algo/ on a
// seeded workload grid, all engines must report exactly the same cycles,
// messages, messages_per_proc, messages_per_channel, peak_aux_words and
// per-phase stats — and, where checked, the same cycle-by-cycle trace
// events. Within the parallel family the bar is higher still: the
// frame-arena telemetry (stripe-sharded, so not comparable to the serial
// engines' single arena) must itself be independent of the thread count.
#include <gtest/gtest.h>

#include <functional>
#include <optional>
#include <vector>

#include "algo/baselines.hpp"
#include "algo/collectives.hpp"
#include "algo/selection.hpp"
#include "algo/sort.hpp"
#include "harness/sweep.hpp"
#include "mcb/network.hpp"
#include "util/workload.hpp"

namespace mcb {
namespace {

/// Worker counts the parallel engine is exercised at. 1 covers the
/// degenerate pool, 8 oversubscribes this container — determinism must not
/// depend on hardware concurrency.
constexpr std::size_t kThreadGrid[] = {1, 2, 4, 8};

SimConfig with_engine(SimConfig cfg, Engine e, std::size_t threads = 0) {
  cfg.engine = e;
  cfg.threads = threads;
  return cfg;
}

void expect_identical_stats(const RunStats& ref, const RunStats& ev,
                            const std::string& label) {
  EXPECT_EQ(ref.cycles, ev.cycles) << label;
  EXPECT_EQ(ref.messages, ev.messages) << label;
  EXPECT_EQ(ref.messages_per_proc, ev.messages_per_proc) << label;
  EXPECT_EQ(ref.messages_per_channel, ev.messages_per_channel) << label;
  EXPECT_EQ(ref.peak_aux_words, ev.peak_aux_words) << label;
  ASSERT_EQ(ref.phases.size(), ev.phases.size()) << label;
  for (std::size_t i = 0; i < ref.phases.size(); ++i) {
    EXPECT_EQ(ref.phases[i].name, ev.phases[i].name) << label;
    EXPECT_EQ(ref.phases[i].first_cycle, ev.phases[i].first_cycle)
        << label << " phase " << ref.phases[i].name;
    EXPECT_EQ(ref.phases[i].cycles, ev.phases[i].cycles)
        << label << " phase " << ref.phases[i].name;
    EXPECT_EQ(ref.phases[i].messages, ev.phases[i].messages)
        << label << " phase " << ref.phases[i].name;
  }
}

/// Runs `go` under all three engines (parallel at every kThreadGrid count)
/// and asserts identical accounting, with reference as the oracle. The
/// frame-arena telemetry is additionally pinned across thread counts within
/// the parallel family (see the file comment for why not across engines).
void expect_engines_agree(const SimConfig& cfg,
                          const std::function<RunStats(const SimConfig&)>& go,
                          const std::string& label) {
  const RunStats ref = go(with_engine(cfg, Engine::kReference));
  const RunStats ev = go(with_engine(cfg, Engine::kEventDriven));
  expect_identical_stats(ref, ev, label + "/event");

  std::optional<RunStats> first_par;
  for (const std::size_t t : kThreadGrid) {
    const RunStats par = go(with_engine(cfg, Engine::kParallel, t));
    const std::string plabel = label + "/parallel-t" + std::to_string(t);
    expect_identical_stats(ref, par, plabel);
    if (!first_par) {
      first_par = par;
      continue;
    }
    EXPECT_EQ(first_par->frame_allocs, par.frame_allocs) << plabel;
    EXPECT_EQ(first_par->frame_frees, par.frame_frees) << plabel;
    EXPECT_EQ(first_par->arena_bytes_peak, par.arena_bytes_peak) << plabel;
    EXPECT_EQ(first_par->arena_hit_rate, par.arena_hit_rate) << plabel;
  }
}

TEST(SchedulerEquivalence, EveryExplicitSortAlgorithm) {
  const auto w = util::make_workload(256, 16, util::Shape::kEven, 2);
  for (auto a : {algo::SortAlgorithm::kColumnsortEven,
                 algo::SortAlgorithm::kVirtualColumnsort,
                 algo::SortAlgorithm::kRecursive,
                 algo::SortAlgorithm::kUnevenColumnsort,
                 algo::SortAlgorithm::kRankSort,
                 algo::SortAlgorithm::kMergeSort,
                 algo::SortAlgorithm::kCentral}) {
    expect_engines_agree(
        {.p = 16, .k = 4},
        [&](const SimConfig& cfg) {
          return algo::sort(cfg, w.inputs, {.algorithm = a}).run.stats;
        },
        std::string("sort/") + algo::to_string(a));
  }
}

TEST(SchedulerEquivalence, AutoSortAcrossShapesAndSeeds) {
  for (auto shape : {util::Shape::kEven, util::Shape::kZipf,
                     util::Shape::kRandom, util::Shape::kStaircase}) {
    for (std::uint64_t seed : {1u, 7u}) {
      const auto w = util::make_workload(192, 12, shape, seed);
      for (std::size_t k : {std::size_t{1}, std::size_t{4}}) {
        expect_engines_agree(
            {.p = 12, .k = k},
            [&](const SimConfig& cfg) {
              return algo::sort(cfg, w.inputs).run.stats;
            },
            "auto-sort/" + util::to_string(shape) + "/seed" +
                std::to_string(seed) + "/k" + std::to_string(k));
      }
    }
  }
}

TEST(SchedulerEquivalence, SelectionGrid) {
  // Selection is the skip-heaviest protocol in the library (processors wait
  // their turn by counting cycles), so it exercises the wake queue and the
  // idle-cycle fast-forward hardest.
  struct Case {
    std::size_t n, p, k;
    util::Shape shape;
    std::uint64_t seed;
  };
  for (const auto& c : std::vector<Case>{
           {1024, 16, 4, util::Shape::kEven, 3},
           {300, 6, 3, util::Shape::kRandom, 5},
           {200, 8, 2, util::Shape::kZipf, 11},
       }) {
    const auto w = util::make_workload(c.n, c.p, c.shape, c.seed);
    for (std::size_t d : {std::size_t{1}, c.n / 2, c.n}) {
      expect_engines_agree(
          {.p = c.p, .k = c.k},
          [&](const SimConfig& cfg) {
            return algo::select_rank(cfg, w.inputs, d).stats;
          },
          "select/n" + std::to_string(c.n) + "/p" + std::to_string(c.p) +
              "/k" + std::to_string(c.k) + "/d" + std::to_string(d));
    }
  }
}

TEST(SchedulerEquivalence, SelectionBySortingBaseline) {
  const auto w = util::make_workload(300, 6, util::Shape::kRandom, 5);
  expect_engines_agree(
      {.p = 6, .k = 3},
      [&](const SimConfig& cfg) {
        return algo::selection_by_sorting(cfg, w.inputs, 150).stats;
      },
      "selection_by_sorting");
}

TEST(SchedulerEquivalence, Collectives) {
  const auto w = util::make_workload(256, 16, util::Shape::kRandom, 9);
  expect_engines_agree(
      {.p = 16, .k = 4},
      [&](const SimConfig& cfg) {
        return algo::run_find_max(cfg, w.inputs).stats;
      },
      "find_max");
  expect_engines_agree(
      {.p = 16, .k = 4},
      [&](const SimConfig& cfg) {
        return algo::run_count_ge(cfg, w.inputs, 128).stats;
      },
      "count_ge");
}

TEST(SchedulerEquivalence, MultiReadExtension) {
  // central_sort_multiread drives the Section 9 cycle_all path, so the
  // event engine's handling of multi-read intents is covered too.
  const auto w = util::make_workload(64, 8, util::Shape::kEven, 4);
  expect_engines_agree(
      {.p = 8, .k = 4, .multi_read = true},
      [&](const SimConfig& cfg) {
        return algo::central_sort_multiread(cfg, w.inputs).stats;
      },
      "central_sort_multiread");
}

TEST(SchedulerEquivalence, TraceStreamsIdentical) {
  // Strongest form of "observationally identical": the cycle-by-cycle event
  // streams seen by a TraceSink must match, not just the aggregates. The
  // parallel engine emits its events from the merge step at the cycle
  // barrier, so the stream must come out in processor-id order regardless
  // of which worker simulated which stripe.
  const auto w = util::make_workload(256, 16, util::Shape::kEven, 2);
  auto run_traced = [&](Engine e, std::size_t threads, ChannelTrace& trace) {
    return algo::sort(with_engine({.p = 16, .k = 4}, e, threads), w.inputs,
                      {.algorithm = algo::SortAlgorithm::kColumnsortEven},
                      &trace)
        .run.stats;
  };
  ChannelTrace ref_trace(1u << 20);
  const RunStats ref = run_traced(Engine::kReference, 0, ref_trace);
  ASSERT_FALSE(ref_trace.truncated());
  const auto& a = ref_trace.events();

  auto expect_same_stream = [&](Engine e, std::size_t threads,
                                const std::string& label) {
    ChannelTrace trace(1u << 20);
    const RunStats got = run_traced(e, threads, trace);
    expect_identical_stats(ref, got, "traced columnsort/" + label);
    ASSERT_FALSE(trace.truncated());
    const auto& b = trace.events();
    ASSERT_EQ(a.size(), b.size()) << label;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].cycle, b[i].cycle) << label << " event " << i;
      EXPECT_EQ(a[i].proc, b[i].proc) << label << " event " << i;
      EXPECT_EQ(a[i].wrote, b[i].wrote) << label << " event " << i;
      EXPECT_EQ(a[i].sent, b[i].sent) << label << " event " << i;
      EXPECT_EQ(a[i].read, b[i].read) << label << " event " << i;
      EXPECT_EQ(a[i].received, b[i].received) << label << " event " << i;
    }
  };
  expect_same_stream(Engine::kEventDriven, 0, "event");
  for (const std::size_t t : kThreadGrid) {
    expect_same_stream(Engine::kParallel, t, "parallel-t" + std::to_string(t));
  }
}

TEST(SchedulerEquivalence, SweepJsonStableUnderParallelEngine) {
  // End-to-end determinism: a sweep run on the parallel engine serializes
  // byte-identically regardless of the trial pool's width, and its model
  // accounting (cycles/messages/aux) matches the event engine's trial for
  // trial. (Full JSON identity across engines is not expected: the frame
  // telemetry in the JSON is arena-sharding-specific.)
  harness::Sweep sweep;
  sweep.ps = {8, 16};
  sweep.ks = {2, 4};
  sweep.ns = {256};
  sweep.algorithms = {"auto", "select"};
  sweep.seeds = 2;
  sweep.engine = Engine::kParallel;

  const auto one = harness::run_sweep(sweep, {.threads = 1});
  const auto four = harness::run_sweep(sweep, {.threads = 4});
  EXPECT_EQ(harness::sweep_json(one), harness::sweep_json(four));

  sweep.engine = Engine::kEventDriven;
  const auto ev = harness::run_sweep(sweep, {.threads = 2});
  ASSERT_EQ(ev.results.size(), one.results.size());
  for (std::size_t i = 0; i < ev.results.size(); ++i) {
    EXPECT_EQ(ev.results[i].cycles, one.results[i].cycles) << "trial " << i;
    EXPECT_EQ(ev.results[i].messages, one.results[i].messages)
        << "trial " << i;
    EXPECT_EQ(ev.results[i].peak_aux_words, one.results[i].peak_aux_words)
        << "trial " << i;
    EXPECT_EQ(ev.results[i].error, one.results[i].error) << "trial " << i;
  }
}

TEST(SchedulerEquivalence, SkipHeavyHandRolledProtocol) {
  // Direct network-level check of the fast-forward path: staggered sleepers
  // with long gaps, a phase marker, and a final rendezvous broadcast.
  auto go = [](const SimConfig& cfg) {
    Network net(cfg);
    auto sleeper = [](Proc& self, Cycle gap) -> ProcMain {
      if (self.id() == 0) self.mark_phase("stagger");
      co_await self.skip(gap);
      co_await self.write(static_cast<ChannelId>(self.id() % self.k()),
                          Message::of(static_cast<Word>(self.id())));
      if (self.id() == 0) self.mark_phase("tail");
      co_await self.skip(5 * (self.id() + 1));
    };
    for (ProcId i = 0; i < cfg.p; ++i) {
      net.install(i, sleeper(net.proc(i), 17 * (i + 1)));
    }
    return net.run();
  };
  expect_engines_agree({.p = 32, .k = 8}, go, "skip-heavy");
}

}  // namespace
}  // namespace mcb
