// MCB-L1 fixture: references/pointers bound to temporaries or stack
// locals and used across a suspension point. Never compiled — mcblint
// reads it as text; tests/mcblint_test.cpp asserts exact (rule, line)
// pairs, so line positions in this file are load-bearing.
#include <vector>

struct Proc {
  int id() const;
};
struct Awaitable {
  bool await_ready();
};
Awaitable suspend();
std::vector<int> make_values();

struct Task {};

Task bad_temp_ref(Proc& self) {
  const std::vector<int>& vals = make_values();  // binds a temporary
  co_await suspend();
  (void)vals.size();  // line 21: L1 — temporary used after suspend
  co_return;
}

Task bad_stack_ptr(Proc& self) {
  int local = 7;
  int* p = &local;
  co_await suspend();
  *p = 9;  // line 29: L1 — pointer to stack local used after suspend
  co_return;
}

Task bad_local_ref(Proc& self) {
  int acc = 0;
  auto& r = acc;
  co_await suspend();
  r += 1;  // line 37: L1 — reference to stack local used after suspend
  co_return;
}

Task ok_use_before_suspend(Proc& self) {
  const std::vector<int>& vals = make_values();
  const int n = static_cast<int>(vals.size());  // use precedes the suspend
  co_await suspend();
  (void)n;  // the copy is what crosses the suspension point
  co_return;
}

struct Table {
  std::vector<int> column;
};

Task ok_member_and_param_roots(Proc& self, Table& tab) {
  auto& col = tab.column;  // parameter-rooted: outlives the frame
  co_await suspend();
  (void)col.size();
  int scratch = self.id();  // param-rooted value, never a ref
  co_await suspend();
  (void)scratch;
  co_return;
}

Task ok_scope_closed_before_suspend(Proc& self) {
  {
    const std::vector<int>& vals = make_values();
    (void)vals.size();
  }  // the reference dies with its scope, before any suspension
  co_await suspend();
  co_return;
}
