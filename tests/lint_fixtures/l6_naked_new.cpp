// MCB-L6 fixture: naked new outside the frame arena. Lines are asserted
// by tests/mcblint_test.cpp.
#include <cstddef>
#include <new>

struct Frame {
  Frame(int, int);
};

void* naked() {
  int* p = new int;  // line 11: L6
  auto* q = new Frame(1, 2);  // line 12: L6
  (void)q;
  return p;
}

// Fine: placement new never takes ownership, nothrow is placement-form,
// and operator-new definitions are the arena itself.
struct Arena {
  void* slot();
  static void* operator new(std::size_t n);
};

Frame* placed(Arena& a) {
  void* raw = a.slot();
  Frame* f = new (raw) Frame(3, 4);
  Frame* g = new (std::nothrow) Frame(5, 6);
  (void)g;
  // `new Frame` in a comment, and "new Frame" in a string, never fire:
  const char* s = "new Frame";
  (void)s;
  return f;
}
