// Negative fixture: constructs that superficially resemble findings but
// must never fire. tests/mcblint_test.cpp asserts this file is clean
// under --all-rules.
#include <string>
#include <vector>

// rand(), new Frame, steady_clock::now() — all inert inside comments.
/* Block comments too:
   while (x) co_await self.step();
   int* p = new int;
*/

struct Proc {
  int step();
  int skip(long);
  long now() const;
};
struct Task {};

const char* strings() {
  // Literals are stripped before the rules run — including raw strings
  // with rule-shaped contents and embedded quotes.
  static const std::string a = "rand() time(0) new Frame";
  static const std::string b = R"(co_await self.step(); new int;
      std::random_device rd; for (auto& x : umap) {})";
  static const char c = '"';
  (void)c;
  return a.size() > b.size() ? a.c_str() : b.c_str();
}

#define FIXTURE_MACRO(x) ((x) + 1)  // new Frame in a directive is inert

// A multi-line statement whose continuation would have confused a
// line-based checker: a loop that does real per-cycle work.
Task participates(Proc& self, long deadline) {
  while (self.now() <
         deadline) {
    co_await self.step();
    if (self.now() % 2 == 0) {
      co_await self.skip(2);
    }
  }
  co_return;
}

// References rooted at parameters or through `this` survive suspension by
// the engine's ownership contract and must not trip L1.
struct Holder {
  std::vector<int> data;
  Task touch(Proc& self);
};

Task Holder::touch(Proc& self) {
  auto& d = data;  // member-rooted
  co_await self.skip(1);
  (void)d.size();
  co_return;
}
