// MCB-L3 fixture: range-for over unordered containers leaks hash-order
// nondeterminism. Lines are asserted by tests/mcblint_test.cpp.
#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct Index {
  std::unordered_map<int, std::string> by_id;
};

int iterate_member(const Index& idx) {
  int n = 0;
  for (const auto& [k, v] : idx.by_id) {  // line 15: L3
    n += k + static_cast<int>(v.size());
  }
  return n;
}

int iterate_local() {
  std::unordered_set<int> seen{1, 2, 3};
  int n = 0;
  for (int v : seen) {  // line 24: L3
    n += v;
  }
  return n;
}

// Fine: ordered containers, and sorting an unordered container's contents
// into a vector before iterating.
int iterate_sorted(const Index& idx) {
  std::vector<int> keys;
  for (int v : std::vector<int>{3, 1, 2}) {
    keys.push_back(v);
  }
  keys.reserve(idx.by_id.size());
  std::sort(keys.begin(), keys.end());
  int n = 0;
  for (int k : keys) {
    n += k;
  }
  return n;
}
