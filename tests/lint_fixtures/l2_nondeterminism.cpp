// MCB-L2 fixture: nondeterminism sources in protocol/engine code. Line
// positions are asserted by tests/mcblint_test.cpp.
#include <chrono>
#include <cstdlib>
#include <random>
#include <thread>

int protocol_noise() {
  int x = rand();  // line 9: L2 — C PRNG
  std::random_device rd;  // line 10: L2 — host entropy
  x += static_cast<int>(rd());
  return x;
}

long wall_clock_leak() {
  const auto t0 = std::chrono::steady_clock::now();  // line 16: L2
  const auto t1 =
      std::chrono::high_resolution_clock::now();  // line 18: L2
  return (t1 - t0).count() + time(nullptr);  // line 19: L2 — C time source
}

unsigned host_topology() {
  // line 24 below: L2 — thread count must not shape results
  unsigned n = std::thread::hardware_concurrency();
  std::this_thread::yield();  // line 25: L2 — host scheduling state
  return n;
}

// None of the following may fire: rand() in comments, strings or member
// position is not a PRNG call. (Declaring a *method* named rand() would
// fire — a deliberate rule limitation; seeded RNG wrappers here use
// draw()/next() names.)
struct Rng;
int not_noise(Rng& rng) {
  const char* s = "rand() and steady_clock::now() in a string";
  int a = rng.rand();      // member call, not the C PRNG
  long b = rng.time(0);    // member call, not the C time source
  return a + static_cast<int>(b) + static_cast<int>(sizeof s);
}
