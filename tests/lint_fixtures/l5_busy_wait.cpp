// MCB-L5 fixture: busy-wait step() loops, in every textual shape the old
// awk rule could miss. Lines are asserted by tests/mcblint_test.cpp.
struct Proc {
  int step();
  int skip(long t);
  bool active() const;
  long now() const;
};

struct Task {};

Task single_line(Proc& self, long t) {
  while (self.now() < t) co_await self.step();  // line 13: L5
  co_return;
}

Task braced_same_line(Proc& self, long t) {
  while (self.now() < t) { co_await self.step(); }  // line 18: L5
  co_return;
}

Task multi_line(Proc& self, long t) {
  while (self.now() < t) {
    co_await self.step();  // line 24: L5
  }
  co_return;
}

Task for_loop(Proc& self, long t) {
  for (long i = 0; i < t; ++i) {
    // a comment inside the body must not hide the pattern
    co_await self.step();  // line 32: L5
  }
  co_return;
}

// Fine: per-cycle participation inside a larger body, and the skip() the
// rule is pushing people toward.
Task legit(Proc& self, long t) {
  while (self.now() < t) {
    co_await self.step();
    if (self.active()) co_return;
  }
  co_await self.skip(t);
  // while (self.now() < t) co_await self.step();  <- commented out: fine
  co_return;
}
