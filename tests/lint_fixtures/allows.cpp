// lint-allow fixture: one deliberate violation of every rule L1-L6, each
// silenced by an escape comment — trailing, line-above, slug and MCB-Lx id
// forms are all exercised. tests/mcblint_test.cpp asserts zero findings
// and exactly six suppressions.
#include <cstdlib>
#include <unordered_map>
#include <vector>

struct Proc {
  int step();
  long now() const;
};
struct Awaitable {
  bool await_ready();
};
Awaitable suspend();
std::vector<int> make_values();
struct Task {};

Task l1_allowed(Proc& self) {
  const std::vector<int>& vals = make_values();
  co_await suspend();
  (void)vals.size();  // lint-allow: use-after-suspend
  co_return;
}

int l2_allowed() {
  // Deliberate wall-entropy probe. lint-allow: nondeterminism
  return rand();
}

int l3_allowed(const std::unordered_map<int, int>& m) {
  int n = 0;
  // Order-insensitive sum, safe by inspection. lint-allow: unordered-iteration
  for (const auto& [k, v] : m) {
    n += k + v;
  }
  return n;
}

class Engine {
  int scratch_ = 0;

 public:
  void region() {
    // mcblint: parallel-region begin
    scratch_ = 1;  // lint-allow: parallel-phase
    // mcblint: parallel-region end
  }
};

Task l5_allowed(Proc& self, long t) {
  while (self.now() < t) {
    co_await self.step();  // lint-allow: busy-wait-step
  }
  co_return;
}

void* l6_allowed() {
  return new int;  // lint-allow: MCB-L6
}
