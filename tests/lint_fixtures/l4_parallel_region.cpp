// MCB-L4 fixture: engine-member writes inside fenced parallel regions.
// Lines are asserted by tests/mcblint_test.cpp.
#include <cstddef>
#include <vector>

struct Stripe {
  std::vector<int> staged;
  int resumes = 0;
};

class Engine {
 public:
  void cycle(std::size_t w);

 private:
  int cursor_ = 0;
  int bad_ = 0;
  std::vector<int> buf_;
  std::vector<Stripe> stripes_;
  int counter_ = 0;
};

void Engine::cycle(std::size_t w) {
  // mcblint: parallel-region begin allow=cursor_
  {
    Stripe& s = stripes_[w];  // reading engine members is fine
    cursor_ = static_cast<int>(w);  // allowed by the region's allow list
    bad_ = 1;  // line 28: L4 — off-allowlist member write
    buf_.push_back(3);  // line 29: L4 — mutating call on a member
    ++counter_;  // line 30: L4 — increment is a write
    s.resumes += 1;    // per-stripe state via a local ref: fine
    s.staged.clear();  // same
  }
  // mcblint: parallel-region end

  bad_ = 2;  // outside the fence: the serial merge phase may write freely
  counter_++;
}

// line 41 below: L4 — an end marker with no begin is itself a finding
// mcblint: parallel-region end
