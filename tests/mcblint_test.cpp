// Tests of the mcblint static analyzer (tools/mcblint): each rule fires at
// the exact (rule, line) pairs its fixture under tests/lint_fixtures/
// documents, every lint-allow escape form suppresses, the negative fixture
// stays clean, baselines grandfather and report staleness, JSON output
// round-trips through the strict util::json parser and is byte-identical
// across runs, and the CLI's 0/1/2 exit discipline holds end to end.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "mcblint/lexer.hpp"
#include "mcblint/rules.hpp"
#include "util/json.hpp"

namespace mcblint {
namespace {

// --- fixture loading ---------------------------------------------------------

std::string fixtures_dir() {
  const char* dir = std::getenv("MCBLINT_FIXTURES");
  return dir == nullptr ? std::string() : std::string(dir);
}

std::string read_fixture(const std::string& name) {
  const std::string path = fixtures_dir() + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Lexes fixture `name` under a pretend repo path and runs the rule engine.
FileReport analyze_fixture(const std::string& name, bool all_scopes = true,
                           std::string as_path = std::string()) {
  if (as_path.empty()) as_path = "tests/lint_fixtures/" + name;
  const LexedFile f = lex(as_path, read_fixture(name));
  Options opts;
  opts.all_scopes = all_scopes;
  return analyze(f, opts);
}

std::vector<std::pair<std::string, int>> rule_lines(const FileReport& r) {
  std::vector<std::pair<std::string, int>> out;
  for (const Finding& f : r.findings) out.emplace_back(f.rule, f.line);
  return out;
}

using RL = std::vector<std::pair<std::string, int>>;

// --- per-rule fixtures: exact (rule, line) pairs -----------------------------

TEST(McblintRules, L1UseAfterSuspendFiresOnFixture) {
  const auto r = analyze_fixture("l1_use_after_suspend.cpp");
  EXPECT_EQ(rule_lines(r),
            (RL{{"MCB-L1", 21}, {"MCB-L1", 29}, {"MCB-L1", 37}}));
  // The detail names the offending binding and the suspension point.
  EXPECT_NE(r.findings[0].detail.find("co_await"), std::string::npos);
  EXPECT_EQ(r.findings[0].slug, "use-after-suspend");
}

TEST(McblintRules, L2NondeterminismFiresOnFixture) {
  const auto r = analyze_fixture("l2_nondeterminism.cpp");
  EXPECT_EQ(rule_lines(r),
            (RL{{"MCB-L2", 9},
                {"MCB-L2", 10},
                {"MCB-L2", 16},
                {"MCB-L2", 18},
                {"MCB-L2", 19},
                {"MCB-L2", 24},
                {"MCB-L2", 25}}));
  for (const Finding& f : r.findings) EXPECT_EQ(f.slug, "nondeterminism");
}

TEST(McblintRules, L3UnorderedIterationFiresOnFixture) {
  const auto r = analyze_fixture("l3_unordered_iteration.cpp");
  EXPECT_EQ(rule_lines(r), (RL{{"MCB-L3", 15}, {"MCB-L3", 24}}));
  // Member-path roots are resolved: the container name, not the object.
  EXPECT_NE(r.findings[0].detail.find("'by_id'"), std::string::npos);
  EXPECT_NE(r.findings[1].detail.find("'seen'"), std::string::npos);
}

TEST(McblintRules, L4ParallelRegionFiresOnFixture) {
  const auto r = analyze_fixture("l4_parallel_region.cpp");
  EXPECT_EQ(rule_lines(r), (RL{{"MCB-L4", 28},
                               {"MCB-L4", 29},
                               {"MCB-L4", 30},
                               {"MCB-L4", 41}}));
  EXPECT_NE(r.findings[0].detail.find("'bad_'"), std::string::npos);
  EXPECT_NE(r.findings[1].detail.find("push_back"), std::string::npos);
  EXPECT_NE(r.findings[2].detail.find("'counter_'"), std::string::npos);
  // The unpaired end marker is its own finding.
  EXPECT_NE(r.findings[3].detail.find("without a begin"), std::string::npos);
}

TEST(McblintRules, L5BusyWaitStepFiresOnFixture) {
  const auto r = analyze_fixture("l5_busy_wait.cpp");
  EXPECT_EQ(rule_lines(r), (RL{{"MCB-L5", 13},
                               {"MCB-L5", 18},
                               {"MCB-L5", 24},
                               {"MCB-L5", 32}}));
}

TEST(McblintRules, L6NakedNewFiresOnFixture) {
  const auto r = analyze_fixture("l6_naked_new.cpp");
  EXPECT_EQ(rule_lines(r), (RL{{"MCB-L6", 11}, {"MCB-L6", 12}}));
  EXPECT_NE(r.findings[1].detail.find("new Frame"), std::string::npos);
}

// --- escapes and negatives ---------------------------------------------------

TEST(McblintRules, LintAllowSuppressesEveryRuleAndForm) {
  // One violation per rule, silenced via trailing comments, comment-above,
  // slug names and MCB-Lx ids. All six must be counted as suppressed.
  const auto r = analyze_fixture("allows.cpp");
  EXPECT_TRUE(r.findings.empty()) << render_text(r.findings);
  EXPECT_EQ(r.suppressed_allow, 6);
}

TEST(McblintRules, CleanFixtureProducesNoFindings) {
  const auto r = analyze_fixture("clean.cpp");
  EXPECT_TRUE(r.findings.empty()) << render_text(r.findings);
  EXPECT_EQ(r.suppressed_allow, 0);
}

TEST(McblintRules, PathScopingGatesProtocolOnlyRules) {
  // L2 is scoped to engine/protocol directories: the same bytes fire when
  // lexed as src/mcb code and stay silent under tests/ without --all-rules.
  const auto in_scope =
      analyze_fixture("l2_nondeterminism.cpp", false, "src/mcb/fixture.cpp");
  EXPECT_EQ(in_scope.findings.size(), 7u);
  const auto out_of_scope = analyze_fixture("l2_nondeterminism.cpp", false);
  EXPECT_TRUE(out_of_scope.findings.empty())
      << render_text(out_of_scope.findings);
}

// --- baseline ----------------------------------------------------------------

TEST(McblintBaseline, ParseAcceptsEntriesAndComments) {
  std::vector<BaselineEntry> entries;
  std::string error;
  ASSERT_TRUE(parse_baseline("# grandfathered\n"
                             "MCB-L6 src/mcb/network.cpp:67\n"
                             "\n"
                             "MCB-L2 src/serve/loop.cpp:12\n",
                             &entries, &error))
      << error;
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].rule, "MCB-L6");
  EXPECT_EQ(entries[0].file, "src/mcb/network.cpp");
  EXPECT_EQ(entries[0].line, 67);
}

TEST(McblintBaseline, ParseRejectsMalformedLines) {
  std::vector<BaselineEntry> entries;
  std::string error;
  EXPECT_FALSE(parse_baseline("MCB-L6 missing-line-number\n", &entries,
                              &error));
  EXPECT_FALSE(error.empty());
}

TEST(McblintBaseline, ApplySuppressesExactMatchesAndReportsStale) {
  auto r = analyze_fixture("l6_naked_new.cpp");
  ASSERT_EQ(r.findings.size(), 2u);
  std::vector<BaselineEntry> baseline = {
      {"MCB-L6", "tests/lint_fixtures/l6_naked_new.cpp", 11},
      {"MCB-L6", "tests/lint_fixtures/l6_naked_new.cpp", 999},  // stale
  };
  std::vector<BaselineEntry> stale;
  const int suppressed = apply_baseline(&r.findings, baseline, &stale);
  EXPECT_EQ(suppressed, 1);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].line, 12);
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].line, 999);
}

// --- output: JSON round-trip and byte determinism ----------------------------

TEST(McblintOutput, JsonRoundTripsThroughStrictParser) {
  const auto r = analyze_fixture("l4_parallel_region.cpp");
  const std::string doc = render_json(r.findings, 1, r.suppressed_allow, 0);
  const mcb::util::JsonValue v = mcb::util::json_parse(doc);  // throws if bad
  EXPECT_EQ(v.at("tool").as_string(), "mcblint");
  EXPECT_EQ(v.at("version").as_number(), 1.0);
  EXPECT_EQ(v.at("files_scanned").as_number(), 1.0);
  EXPECT_EQ(v.at("suppressed").at("lint_allow").as_number(), 0.0);
  EXPECT_EQ(v.at("suppressed").at("baseline").as_number(), 0.0);
  const mcb::util::JsonValue& findings = v.at("findings");
  ASSERT_EQ(findings.size(), r.findings.size());
  for (std::size_t i = 0; i < findings.size(); ++i) {
    EXPECT_EQ(findings.at(i).at("rule").as_string(), r.findings[i].rule);
    EXPECT_EQ(findings.at(i).at("slug").as_string(), r.findings[i].slug);
    EXPECT_EQ(findings.at(i).at("file").as_string(), r.findings[i].file);
    EXPECT_EQ(findings.at(i).at("line").as_number(),
              static_cast<double>(r.findings[i].line));
    EXPECT_EQ(findings.at(i).at("detail").as_string(), r.findings[i].detail);
  }
}

TEST(McblintOutput, AnalysisAndRenderingAreByteDeterministic) {
  // mcblint holds itself to the engine's contract: same input, same bytes.
  const auto a = analyze_fixture("l2_nondeterminism.cpp");
  const auto b = analyze_fixture("l2_nondeterminism.cpp");
  EXPECT_EQ(render_text(a.findings), render_text(b.findings));
  EXPECT_EQ(render_json(a.findings, 1, a.suppressed_allow, 0),
            render_json(b.findings, 1, b.suppressed_allow, 0));
}

TEST(McblintOutput, SortFindingsOrdersAndDeduplicates) {
  std::vector<Finding> fs = {
      {"MCB-L2", "nondeterminism", "b.cpp", 5, "x"},
      {"MCB-L1", "use-after-suspend", "a.cpp", 9, "y"},
      {"MCB-L2", "nondeterminism", "b.cpp", 5, "x"},  // exact dup
      {"MCB-L1", "use-after-suspend", "a.cpp", 2, "z"},
  };
  sort_findings(&fs);
  ASSERT_EQ(fs.size(), 3u);
  EXPECT_EQ(fs[0].file, "a.cpp");
  EXPECT_EQ(fs[0].line, 2);
  EXPECT_EQ(fs[1].line, 9);
  EXPECT_EQ(fs[2].file, "b.cpp");
}

// --- lexer structure ---------------------------------------------------------

TEST(McblintLexer, StripsLiteralsCommentsAndDirectives) {
  const LexedFile f = lex("x.cpp",
                          "// rand()\n"
                          "#define NOISE rand()\n"
                          "const char* s = \"rand()\";\n"
                          "char c = 'r';\n");
  for (const Token& t : f.tokens) EXPECT_NE(t.text, "rand");
}

TEST(McblintLexer, CollectsAllowsAndRegionMarkers) {
  const std::string marker = "// mcblint: parallel-region";
  const LexedFile f =
      lex("x.cpp", "int a;  // lint-allow: naked-new, nondeterminism\n" +
                       marker + " begin allow=head_,tail_\n" + marker +
                       " end\n");
  ASSERT_EQ(f.allows.count(1), 1u);
  EXPECT_EQ(f.allows.at(1).count("naked-new"), 1u);
  EXPECT_EQ(f.allows.at(1).count("nondeterminism"), 1u);
  ASSERT_EQ(f.markers.size(), 2u);
  EXPECT_TRUE(f.markers[0].begin);
  EXPECT_EQ(f.markers[0].line, 2);
  EXPECT_EQ(f.markers[0].allow.count("head_"), 1u);
  EXPECT_EQ(f.markers[0].allow.count("tail_"), 1u);
  EXPECT_FALSE(f.markers[1].begin);
}

// --- CLI exit discipline (subprocess; binary injected by ctest) --------------

const char* mcblint_bin() { return std::getenv("MCBLINT_BIN"); }

int run_mcblint(const std::string& args) {
  const std::string cmd =
      std::string(mcblint_bin()) + " " + args + " >/dev/null 2>&1";
  const int rc = std::system(cmd.c_str());
  EXPECT_NE(rc, -1);
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

TEST(McblintCli, ExitsZeroOnCleanInput) {
  if (mcblint_bin() == nullptr) GTEST_SKIP() << "MCBLINT_BIN not set";
  EXPECT_EQ(run_mcblint("--all-rules " + fixtures_dir() + "/clean.cpp"), 0);
}

TEST(McblintCli, ExitsOneOnFindings) {
  if (mcblint_bin() == nullptr) GTEST_SKIP() << "MCBLINT_BIN not set";
  EXPECT_EQ(
      run_mcblint("--all-rules " + fixtures_dir() + "/l6_naked_new.cpp"), 1);
}

TEST(McblintCli, ExitsTwoOnUsageErrors) {
  if (mcblint_bin() == nullptr) GTEST_SKIP() << "MCBLINT_BIN not set";
  EXPECT_EQ(run_mcblint("--no-such-flag"), 2);
  EXPECT_EQ(run_mcblint("does/not/exist.cpp"), 2);
}

}  // namespace
}  // namespace mcblint
