// Tests of the coroutine-frame arena (util/arena.hpp): size-class
// mapping, free-list reuse, peak accounting, the global-new fallbacks
// (oversized frames and no installed arena), scope nesting, and the
// end-to-end contract with Network — every frame allocated during a run is
// returned to the arena, and the run serves almost all of them without
// touching the global allocator.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "mcb/network.hpp"
#include "util/arena.hpp"

namespace mcb {
namespace {

using util::FrameArena;
using util::FrameArenaScope;

// --- size-class mapping ------------------------------------------------------

TEST(ArenaTest, ClassMappingRoundTrips) {
  // class_bytes(class_of(n)) is the smallest class multiple >= n.
  EXPECT_EQ(FrameArena::class_of(1), 0u);
  EXPECT_EQ(FrameArena::class_of(64), 0u);
  EXPECT_EQ(FrameArena::class_of(65), 1u);
  EXPECT_EQ(FrameArena::class_of(FrameArena::kMaxClassBytes),
            FrameArena::kNumClasses - 1);
  for (std::size_t n = 1; n <= FrameArena::kMaxClassBytes; ++n) {
    const std::size_t cls = FrameArena::class_of(n);
    EXPECT_GE(FrameArena::class_bytes(cls), n);
    EXPECT_LT(FrameArena::class_bytes(cls) - n, FrameArena::kGranularity);
  }
}

// --- reuse and accounting ----------------------------------------------------

TEST(ArenaTest, FreedBlockIsReusedLifo) {
  FrameArena arena;
  void* a = arena.allocate_class(3);
  void* b = arena.allocate_class(3);
  EXPECT_NE(a, b);
  arena.deallocate_class(a, 3);
  arena.deallocate_class(b, 3);
  // Free lists are LIFO: the most recently freed block comes back first.
  EXPECT_EQ(arena.allocate_class(3), b);
  EXPECT_EQ(arena.allocate_class(3), a);
  EXPECT_EQ(arena.stats().allocs, 4u);
  EXPECT_EQ(arena.stats().frees, 2u);
  EXPECT_EQ(arena.stats().reuses, 2u);
}

TEST(ArenaTest, ClassesDoNotShareFreeLists) {
  FrameArena arena;
  void* small = arena.allocate_class(0);
  arena.deallocate_class(small, 0);
  // An allocation of a different class must not pick up the freed block.
  void* big = arena.allocate_class(5);
  EXPECT_NE(big, small);
  EXPECT_EQ(arena.stats().reuses, 0u);
}

TEST(ArenaTest, StressReallocationAcrossClasses) {
  // Allocate/free/reallocate waves across several classes; after the
  // warm-up wave every allocation must be a free-list pop, no block is
  // handed out twice while live, and the books balance exactly.
  FrameArena arena;
  const std::size_t classes[] = {0, 1, 2, 7, 15, 31};
  const int waves = 50, per_class = 8;
  std::vector<void*> live;
  for (int w = 0; w < waves; ++w) {
    for (std::size_t cls : classes) {
      for (int i = 0; i < per_class; ++i) {
        void* p = arena.allocate_class(cls);
        for (void* q : live) ASSERT_NE(p, q);
        live.push_back(p);
      }
    }
    std::size_t idx = 0;
    for (std::size_t cls : classes) {
      for (int i = 0; i < per_class; ++i) {
        arena.deallocate_class(live[idx++], cls);
      }
    }
    live.clear();
  }
  const auto& st = arena.stats();
  const auto total =
      static_cast<std::uint64_t>(waves) * std::size(classes) * per_class;
  EXPECT_EQ(st.allocs, total);
  EXPECT_EQ(st.frees, total);
  // Only the first wave carves fresh blocks; every later wave reuses.
  EXPECT_EQ(st.reuses, total - std::size(classes) * per_class);
  EXPECT_EQ(st.bytes_live, 0u);
  EXPECT_GT(st.hit_rate(), 0.9);
}

TEST(ArenaTest, PeakTracksHighWaterOfRoundedBytes) {
  FrameArena arena;
  void* a = arena.allocate_class(0);  // 64 bytes
  void* b = arena.allocate_class(1);  // 128 bytes
  EXPECT_EQ(arena.stats().bytes_live, 192u);
  EXPECT_EQ(arena.stats().bytes_peak, 192u);
  arena.deallocate_class(a, 0);
  EXPECT_EQ(arena.stats().bytes_live, 128u);
  EXPECT_EQ(arena.stats().bytes_peak, 192u);  // peak is sticky
  void* c = arena.allocate_class(0);          // reuse: peak unchanged
  EXPECT_EQ(arena.stats().bytes_peak, 192u);
  arena.deallocate_class(b, 1);
  arena.deallocate_class(c, 0);
  EXPECT_EQ(arena.stats().bytes_live, 0u);
}

TEST(ArenaTest, HitRateCountsSlabAcquisitionsAsMisses) {
  FrameArena arena;
  // The first allocation must acquire a slab; subsequent bump-carves and
  // free-list pops are hits, so the rate climbs towards 1.
  void* p = arena.allocate_class(0);
  EXPECT_EQ(arena.stats().slab_allocs, 1u);
  EXPECT_DOUBLE_EQ(arena.stats().hit_rate(), 0.0);
  std::vector<void*> blocks{p};
  // One slab holds kSlabBytes / 64 class-0 blocks; stay well within it.
  for (int i = 0; i < 100; ++i) blocks.push_back(arena.allocate_class(0));
  EXPECT_EQ(arena.stats().slab_allocs, 1u);
  EXPECT_GT(arena.stats().hit_rate(), 0.99);
  for (void* q : blocks) arena.deallocate_class(q, 0);
}

// --- frame_allocate / frame_deallocate routing -------------------------------

TEST(ArenaTest, NoInstalledArenaFallsBackToGlobalNew) {
  ASSERT_EQ(util::current_frame_arena(), nullptr);
  void* p = util::frame_allocate(100);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 16, 0u);
  util::frame_deallocate(p);  // routes to global delete via the header
  util::frame_deallocate(nullptr);  // no-op
}

TEST(ArenaTest, ScopeInstallsAndNestsAndRestores) {
  FrameArena outer, inner;
  ASSERT_EQ(util::current_frame_arena(), nullptr);
  {
    FrameArenaScope s1(&outer);
    EXPECT_EQ(util::current_frame_arena(), &outer);
    {
      FrameArenaScope s2(&inner);
      EXPECT_EQ(util::current_frame_arena(), &inner);
    }
    EXPECT_EQ(util::current_frame_arena(), &outer);
  }
  EXPECT_EQ(util::current_frame_arena(), nullptr);
}

TEST(ArenaTest, InstalledArenaServesAndOversizedBypasses) {
  FrameArena arena;
  FrameArenaScope scope(&arena);
  void* p = util::frame_allocate(100);
  EXPECT_EQ(arena.stats().allocs, 1u);
  // An allocation too large for any size class must bypass the arena even
  // while one is installed (its header routes the delete to global new).
  void* big = util::frame_allocate(FrameArena::kMaxClassBytes + 1);
  EXPECT_EQ(arena.stats().allocs, 1u);
  util::frame_deallocate(big);
  EXPECT_EQ(arena.stats().frees, 0u);
  util::frame_deallocate(p);
  EXPECT_EQ(arena.stats().frees, 1u);
}

TEST(ArenaTest, FrameMayOutliveItsAllocationScope) {
  // Deletion is routed by the per-block header, not the thread-local
  // pointer — the contract ~Network relies on when destroying suspended
  // programs after run() returned (docs/ENGINE.md, "Memory model").
  FrameArena arena;
  void* p;
  {
    FrameArenaScope scope(&arena);
    p = util::frame_allocate(100);
  }
  ASSERT_EQ(util::current_frame_arena(), nullptr);
  util::frame_deallocate(p);
  EXPECT_EQ(arena.stats().frees, 1u);
  EXPECT_EQ(arena.stats().bytes_live, 0u);
}

// --- end-to-end: Network runs recycle every frame ----------------------------

Task<Word> double_up(Proc& self, Word x) {
  co_await self.skip(1);
  co_return x * 2;
}

ProcMain doubling_program(Proc& self, Word& out) {
  Word v = 1;
  for (int i = 0; i < 50; ++i) {
    v = co_await double_up(self, v % 1000);
  }
  out = v;
}

TEST(ArenaTest, NetworkRunRecyclesTaskFrames) {
  const std::size_t p = 8;
  Network net({.p = p, .k = 1});
  std::vector<Word> out(p, 0);
  for (ProcId i = 0; i < p; ++i) {
    net.install(i, doubling_program(net.proc(i), out[i]));
  }
  auto stats = net.run();
  for (Word v : out) EXPECT_NE(v, 0);
#if MCB_FRAME_ARENA_ENABLED
  // One Task frame per double_up call, all allocated from the run's arena
  // and all returned to it: the frames of one processor's successive calls
  // recycle each other.
  EXPECT_GE(stats.frame_allocs, std::uint64_t{50 * p});
  EXPECT_EQ(stats.frame_allocs, stats.frame_frees);
  EXPECT_GT(stats.arena_bytes_peak, 0u);
  EXPECT_GT(stats.arena_hit_rate, 0.9);
#else
  // The OFF build compiles the arena hooks out entirely; the telemetry
  // must read as zeros, not garbage.
  EXPECT_EQ(stats.frame_allocs, 0u);
  EXPECT_EQ(stats.frame_frees, 0u);
  EXPECT_EQ(stats.arena_bytes_peak, 0u);
  EXPECT_EQ(stats.arena_hit_rate, 0.0);
#endif
}

}  // namespace
}  // namespace mcb
