// Tests of the model-conformance checker (src/check): every algorithm in
// the repository validates clean on both engines with the paper's bounds
// armed, and every rule in the catalogue actually fires when its violation
// is injected — a checker that cannot fail proves nothing. Injection uses
// the documented fault surface: events fed straight into on_event, plus one
// end-to-end case with a corrupting tee between a real engine and the
// checker.
#include <gtest/gtest.h>

#include <cstddef>
#include <optional>
#include <vector>

#include "algo/selection.hpp"
#include "algo/sort.hpp"
#include "check/conformance.hpp"
#include "harness/sweep.hpp"
#include "util/json.hpp"
#include "util/workload.hpp"

namespace mcb::check {
namespace {

using algo::SortAlgorithm;

// --- event and stats builders for injection ---------------------------------

CycleEvent write_ev(Cycle cy, ProcId p, ChannelId c, Word v) {
  CycleEvent ev;
  ev.cycle = cy;
  ev.proc = p;
  ev.wrote = c;
  ev.sent = Message::of(v);
  return ev;
}

CycleEvent read_ev(Cycle cy, ProcId p, ChannelId c, std::optional<Word> v) {
  CycleEvent ev;
  ev.cycle = cy;
  ev.proc = p;
  ev.read = c;
  if (v) ev.received = Message::of(*v);
  return ev;
}

/// RunStats consistent with the injected events, so reconciliation (MCB-S1)
/// stays quiet and the rule under test is the only violation.
RunStats stats_of(Cycle cycles, std::vector<std::uint64_t> per_proc,
                  std::vector<std::uint64_t> per_channel) {
  RunStats s;
  s.cycles = cycles;
  for (auto m : per_proc) s.messages += m;
  s.messages_per_proc = std::move(per_proc);
  s.messages_per_channel = std::move(per_channel);
  return s;
}

std::vector<std::size_t> sizes_of(const std::vector<std::vector<Word>>& in) {
  std::vector<std::size_t> sizes;
  for (const auto& x : in) sizes.push_back(x.size());
  return sizes;
}

/// Asserts the report contains at least one violation and that every
/// recorded one carries `rule`. Returns false when empty so callers can
/// guard indexed access.
[[nodiscard]] bool expect_only_rule(const Report& rep, Rule rule) {
  EXPECT_FALSE(rep.ok());
  EXPECT_GE(rep.violations.size(), 1u) << rep.summary();
  for (const auto& v : rep.violations) {
    EXPECT_EQ(v.rule, rule) << "unexpected " << rule_id(v.rule) << " in\n"
                            << rep.summary();
  }
  return !rep.violations.empty();
}

// --- positive: the whole algorithm grid conforms on both engines ------------

TEST(ConformancePositive, EverySortAlgorithmOnBothEngines) {
  auto w = util::make_workload(256, 16, util::Shape::kEven, 2);
  const auto sizes = sizes_of(w.inputs);
  for (auto engine : {Engine::kEventDriven, Engine::kReference}) {
    for (auto a : {SortAlgorithm::kColumnsortEven,
                   SortAlgorithm::kVirtualColumnsort, SortAlgorithm::kRecursive,
                   SortAlgorithm::kUnevenColumnsort, SortAlgorithm::kRankSort,
                   SortAlgorithm::kMergeSort, SortAlgorithm::kCentral}) {
      SimConfig cfg{.p = 16, .k = 4, .engine = engine};
      ConformanceChecker checker(cfg);
      checker.expect_sorting_bounds(sizes);
      auto res = algo::sort(cfg, w.inputs, {.algorithm = a}, &checker);
      const Report& rep = checker.finish(res.run.stats);
      EXPECT_TRUE(rep.ok()) << to_string(a) << ": " << rep.summary();
      // The checker's independent count must agree with the engine's.
      EXPECT_EQ(rep.messages, res.run.stats.messages) << to_string(a);
      EXPECT_GT(rep.cycles_checked, 0u) << to_string(a);
    }
  }
}

TEST(ConformancePositive, SelectionMedianAndRankOnBothEngines) {
  auto w = util::make_workload(256, 8, util::Shape::kRandom, 3);
  const auto sizes = sizes_of(w.inputs);
  for (auto engine : {Engine::kEventDriven, Engine::kReference}) {
    SimConfig cfg{.p = 8, .k = 4, .engine = engine};
    {
      ConformanceChecker checker(cfg);
      checker.expect_selection_bounds(sizes, (256 + 1) / 2);
      auto res = algo::select_median(cfg, w.inputs, {}, &checker);
      EXPECT_TRUE(checker.finish(res.stats).ok())
          << checker.report().summary();
    }
    {
      // d = 16 satisfies Theorem 2's precondition p <= d <= n/2.
      ConformanceChecker checker(cfg);
      checker.expect_selection_bounds(sizes, 16);
      auto res = algo::select_rank(cfg, w.inputs, 16, {}, &checker);
      EXPECT_TRUE(checker.finish(res.stats).ok())
          << checker.report().summary();
    }
  }
}

TEST(ConformancePositive, MultiReadCleanWhenExtensionEnabled) {
  SimConfig cfg{.p = 2, .k = 2, .multi_read = true};
  ConformanceChecker checker(cfg);
  checker.on_event(write_ev(0, 0, 0, 5));
  CycleEvent all;
  all.cycle = 0;
  all.proc = 1;
  all.read_all = true;
  all.received_all = {Message::of(5), std::nullopt};
  checker.on_event(all);
  EXPECT_TRUE(checker.finish(stats_of(1, {1, 0}, {1, 0})).ok())
      << checker.report().summary();
}

TEST(ConformancePositive, TeeForwardsEveryEventUnmodified) {
  auto w = util::make_workload(64, 8, util::Shape::kEven, 4);
  SimConfig cfg{.p = 8, .k = 2};
  ChannelTrace trace;
  ConformanceChecker checker(cfg, &trace);
  auto res = algo::sort(cfg, w.inputs, {}, &checker);
  EXPECT_TRUE(checker.finish(res.run.stats).ok());
  ASSERT_FALSE(trace.truncated());
  EXPECT_EQ(trace.events().size(), checker.report().events);
}

TEST(ConformancePositive, HarnessTrialRunsCheckedOnBothEngines) {
  for (auto engine : {Engine::kEventDriven, Engine::kReference}) {
    for (const char* alg : {"auto", "select"}) {
      harness::TrialSpec spec;
      spec.point = {.p = 8, .k = 2, .n = 64,
                    .shape = util::Shape::kEven, .algorithm = alg};
      spec.seed = 7;
      auto r = harness::run_trial(spec, engine, /*check=*/true);
      EXPECT_TRUE(r.ok()) << alg << ": " << r.error;
      EXPECT_EQ(r.conformance_violations, 0u) << alg;
    }
  }
}

// --- injection: every rule fires with its documented id ---------------------

TEST(ConformanceInjection, DualWriteFiresW1) {
  ConformanceChecker checker({.p = 2, .k = 2});
  checker.on_event(write_ev(0, 0, 0, 1));
  checker.on_event(write_ev(0, 0, 1, 2));
  const Report& rep = checker.finish(stats_of(1, {2, 0}, {1, 1}));
  ASSERT_TRUE(expect_only_rule(rep, Rule::kWritePerProc));
  EXPECT_STREQ(rule_id(rep.violations[0].rule), "MCB-W1");
  EXPECT_EQ(rep.violations[0].cycle, 0u);
  EXPECT_EQ(rep.violations[0].procs, std::vector<ProcId>{0});
}

TEST(ConformanceInjection, DoubleReadFiresR1) {
  ConformanceChecker checker({.p = 2, .k = 1});
  checker.on_event(write_ev(3, 0, 0, 7));
  checker.on_event(read_ev(3, 1, 0, 7));
  checker.on_event(read_ev(3, 1, 0, 7));
  const Report& rep = checker.finish(stats_of(4, {1, 0}, {1}));
  ASSERT_TRUE(expect_only_rule(rep, Rule::kReadPerProc));
  EXPECT_STREQ(rule_id(rep.violations[0].rule), "MCB-R1");
  EXPECT_EQ(rep.violations[0].cycle, 3u);
  EXPECT_EQ(rep.violations[0].procs, std::vector<ProcId>{1});
}

TEST(ConformanceInjection, DualWritersOnOneChannelFireC1) {
  ConformanceChecker checker({.p = 2, .k = 1});
  checker.on_event(write_ev(5, 0, 0, 1));
  checker.on_event(write_ev(5, 1, 0, 2));
  const Report& rep = checker.finish(stats_of(6, {1, 1}, {2}));
  ASSERT_TRUE(expect_only_rule(rep, Rule::kCollision));
  EXPECT_STREQ(rule_id(rep.violations[0].rule), "MCB-C1");
  EXPECT_EQ(rep.violations[0].cycle, 5u);
  EXPECT_EQ(rep.violations[0].channel, std::optional<ChannelId>{0});
  EXPECT_EQ(rep.violations[0].procs, (std::vector<ProcId>{0, 1}));
}

TEST(ConformanceInjection, StaleValueReadFiresV1) {
  ConformanceChecker checker({.p = 2, .k = 1});
  checker.on_event(write_ev(0, 0, 0, 1));
  checker.on_event(read_ev(0, 1, 0, 2));  // nobody wrote 2 this cycle
  const Report& rep = checker.finish(stats_of(1, {1, 0}, {1}));
  ASSERT_TRUE(expect_only_rule(rep, Rule::kValue));
  EXPECT_STREQ(rule_id(rep.violations[0].rule), "MCB-V1");
}

TEST(ConformanceInjection, InventedValueOnSilentChannelFiresV1) {
  ConformanceChecker checker({.p = 2, .k = 1});
  checker.on_event(read_ev(0, 1, 0, 9));  // channels are memoryless
  const Report& rep = checker.finish(stats_of(1, {0, 0}, {0}));
  ASSERT_TRUE(expect_only_rule(rep, Rule::kValue));
}

TEST(ConformanceInjection, MultiReadWithoutFlagFiresX1) {
  ConformanceChecker checker({.p = 2, .k = 2});  // multi_read defaults off
  CycleEvent all;
  all.proc = 0;
  all.read_all = true;
  all.received_all = {std::nullopt, std::nullopt};
  checker.on_event(all);
  const Report& rep = checker.finish(stats_of(1, {0, 0}, {0, 0}));
  ASSERT_TRUE(expect_only_rule(rep, Rule::kMultiRead));
  EXPECT_STREQ(rule_id(rep.violations[0].rule), "MCB-X1");
}

TEST(ConformanceInjection, NonMonotoneStreamFiresE1) {
  ConformanceChecker checker({.p = 1, .k = 1});
  CycleEvent late;
  late.cycle = 1;
  CycleEvent early;
  early.cycle = 0;
  checker.on_event(late);
  checker.on_event(early);
  const Report& rep = checker.finish(stats_of(2, {0}, {0}));
  ASSERT_TRUE(expect_only_rule(rep, Rule::kStream));
  EXPECT_STREQ(rule_id(rep.violations[0].rule), "MCB-E1");
}

TEST(ConformanceInjection, WriteWithoutPayloadFiresE1) {
  ConformanceChecker checker({.p = 1, .k = 1});
  CycleEvent ev;
  ev.wrote = 0;  // no sent message
  checker.on_event(ev);
  const Report& rep = checker.finish(stats_of(1, {0}, {0}));
  ASSERT_TRUE(expect_only_rule(rep, Rule::kStream));
}

TEST(ConformanceInjection, DoctoredRunStatsFireS1) {
  // A real clean run, reconciled against stats claiming one extra message:
  // only the reconciliation rule can explain the difference.
  auto w = util::make_workload(64, 8, util::Shape::kEven, 5);
  SimConfig cfg{.p = 8, .k = 2};
  ConformanceChecker checker(cfg);
  auto res = algo::sort(cfg, w.inputs, {}, &checker);
  RunStats doctored = res.run.stats;
  doctored.messages += 1;
  const Report& rep = checker.finish(doctored);
  ASSERT_TRUE(expect_only_rule(rep, Rule::kStats));
  EXPECT_STREQ(rule_id(rep.violations[0].rule), "MCB-S1");
}

TEST(ConformanceInjection, BeatingTheLowerBoundFiresB1) {
  // A "run" claiming zero messages against a 4x4 sorting workload beats
  // Theorem 3 — impossible in the model, so the checker must flag it.
  SimConfig cfg{.p = 4, .k = 2};
  ConformanceChecker checker(cfg);
  checker.expect_sorting_bounds({4, 4, 4, 4});
  const Report& rep = checker.finish(stats_of(0, {0, 0, 0, 0}, {0, 0}));
  ASSERT_TRUE(expect_only_rule(rep, Rule::kBounds));
  EXPECT_STREQ(rule_id(rep.violations[0].rule), "MCB-B1");
}

TEST(ConformanceInjection, CorruptingTeeOnRealEngineFiresW1) {
  // End-to-end: a tee between a real engine and the checker duplicates
  // every write onto the other channel, forging a second write per writer
  // per cycle. Proves the checker catches engine-level corruption, not just
  // synthetic streams.
  struct CorruptingTee final : TraceSink {
    explicit CorruptingTee(TraceSink* out) : out_(out) {}
    void on_event(const CycleEvent& ev) override {
      out_->on_event(ev);
      if (ev.wrote) {
        CycleEvent forged = ev;
        forged.wrote = static_cast<ChannelId>(*ev.wrote == 0 ? 1 : 0);
        forged.read = std::nullopt;
        forged.received = std::nullopt;
        out_->on_event(forged);
      }
    }
    TraceSink* out_;
  };
  auto w = util::make_workload(64, 8, util::Shape::kEven, 6);
  SimConfig cfg{.p = 8, .k = 2};
  ConformanceChecker checker(cfg);
  CorruptingTee tee(&checker);
  auto res = algo::sort(cfg, w.inputs, {}, &tee);
  const Report& rep = checker.finish(res.run.stats);
  EXPECT_FALSE(rep.ok());
  bool saw_w1 = false;
  for (const auto& v : rep.violations) {
    if (v.rule == Rule::kWritePerProc) saw_w1 = true;
  }
  EXPECT_TRUE(saw_w1) << rep.summary();
}

// --- report surface ----------------------------------------------------------

TEST(ConformanceReport, JsonRoundTripsThroughTheParser) {
  ConformanceChecker checker({.p = 2, .k = 1});
  checker.on_event(write_ev(5, 0, 0, 1));
  checker.on_event(write_ev(5, 1, 0, 2));
  const Report& rep = checker.finish(stats_of(6, {1, 1}, {2}));
  auto doc = util::json_parse(rep.json());
  EXPECT_FALSE(doc.at("ok").as_bool());
  EXPECT_EQ(doc.at("total_violations").as_number(), 1.0);
  EXPECT_EQ(doc.at("messages").as_number(), 2.0);
  const auto& v = doc.at("violations").at(0);
  EXPECT_EQ(v.at("rule").as_string(), "MCB-C1");
  EXPECT_EQ(v.at("cycle").as_number(), 5.0);
  EXPECT_EQ(v.at("channel").as_number(), 0.0);
  EXPECT_EQ(v.at("procs").size(), 2u);
}

TEST(ConformanceReport, CleanJsonAndSummaryReportOk) {
  ConformanceChecker checker({.p = 1, .k = 1});
  checker.on_event(write_ev(0, 0, 0, 42));
  const Report& rep = checker.finish(stats_of(1, {1}, {1}));
  ASSERT_TRUE(rep.ok());
  EXPECT_NE(rep.summary().find("OK"), std::string::npos);
  auto doc = util::json_parse(rep.json());
  EXPECT_TRUE(doc.at("ok").as_bool());
  EXPECT_EQ(doc.at("violations").size(), 0u);
}

TEST(ConformanceReport, FinishIsSingleShot) {
  ConformanceChecker checker({.p = 1, .k = 1});
  checker.on_event(write_ev(0, 0, 0, 42));
  const Report& first = checker.finish(stats_of(1, {1}, {1}));
  EXPECT_TRUE(first.ok());
  // A second finish with absurd stats must not re-reconcile.
  const Report& second = checker.finish(stats_of(999, {77}, {77}));
  EXPECT_TRUE(second.ok());
  EXPECT_EQ(&first, &second);
}

TEST(ConformanceReport, RecordingCapKeepsCounting) {
  ConformanceChecker checker({.p = 2, .k = 1});
  for (Cycle t = 0; t < Report::kMaxRecorded + 50; ++t) {
    checker.on_event(read_ev(t, 1, 0, 9));  // invented value every cycle
  }
  const Report& rep = checker.finish(
      stats_of(Report::kMaxRecorded + 50, {0, 0}, {0}));
  EXPECT_EQ(rep.violations.size(), Report::kMaxRecorded);
  EXPECT_EQ(rep.total_violations, Report::kMaxRecorded + 50);
}

}  // namespace
}  // namespace mcb::check
