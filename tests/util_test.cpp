// Tests of the utility substrate: deterministic RNG, table rendering, and
// the synthetic workload generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "util/json.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "util/workload.hpp"

namespace mcb::util {
namespace {

// --- Xoshiro256** -----------------------------------------------------------

TEST(RandomTest, DeterministicAcrossInstances) {
  Xoshiro256StarStar a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Xoshiro256StarStar a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RandomTest, UniformStaysInRange) {
  Xoshiro256StarStar rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform(-5, 17);
    ASSERT_GE(v, -5);
    ASSERT_LE(v, 17);
  }
}

TEST(RandomTest, UniformDegenerateRange) {
  Xoshiro256StarStar rng(7);
  EXPECT_EQ(rng.uniform(3, 3), 3);
  EXPECT_THROW(rng.uniform(4, 3), std::invalid_argument);
}

TEST(RandomTest, UniformCoversRangeRoughlyEvenly) {
  Xoshiro256StarStar rng(11);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 100000; ++i) {
    ++hits[static_cast<std::size_t>(rng.uniform(0, 9))];
  }
  for (int h : hits) {
    EXPECT_GT(h, 9000);
    EXPECT_LT(h, 11000);
  }
}

TEST(RandomTest, Uniform01InHalfOpenUnit) {
  Xoshiro256StarStar rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(RandomTest, ShuffleIsAPermutation) {
  Xoshiro256StarStar rng(17);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

// --- Table -------------------------------------------------------------------

TEST(TableTest, AlignsNumericRightTextLeft) {
  Table t;
  t.header({"name", "value"});
  t.row({Table::txt("a"), Table::num(5)});
  t.row({Table::txt("long-name"), Table::num(12345)});
  const auto s = t.str();
  EXPECT_NE(s.find("long-name"), std::string::npos);
  EXPECT_NE(s.find("    5"), std::string::npos);  // right-aligned
  EXPECT_NE(s.find("-----"), std::string::npos);  // header underline
}

TEST(TableTest, DoublePrecision) {
  EXPECT_EQ(Table::num(1.23456, 2).text, "1.23");
  EXPECT_EQ(Table::num(2.0, 0).text, "2");
}

TEST(TableTest, RowWidthMismatchRejected) {
  Table t;
  t.header({"a", "b"});
  EXPECT_THROW(t.row({Table::num(1)}), std::logic_error);
}

TEST(TableTest, HeaderlessTable) {
  Table t;
  t.row({Table::num(1), Table::num(2)});
  EXPECT_EQ(t.str(), "1  2\n");
}

// --- workloads ----------------------------------------------------------------

TEST(WorkloadTest, CardinalitiesSumAndPositivity) {
  for (auto shape : {Shape::kEven, Shape::kZipf, Shape::kOneHot,
                     Shape::kRandom, Shape::kStaircase}) {
    for (auto [n, p] : std::vector<std::pair<std::size_t, std::size_t>>{
             {64, 8}, {1000, 7}, {33, 33}}) {
      if (shape == Shape::kEven && n % p != 0) continue;
      auto sizes = cardinalities(n, p, shape, 3);
      EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), std::size_t{0}),
                n)
          << to_string(shape);
      for (auto s : sizes) {
        EXPECT_GE(s, 1u) << to_string(shape);
      }
    }
  }
}

TEST(WorkloadTest, ShapesHaveTheirSignatures) {
  auto even = cardinalities(800, 8, Shape::kEven, 1);
  EXPECT_TRUE(std::all_of(even.begin(), even.end(),
                          [](std::size_t s) { return s == 100; }));

  auto onehot = cardinalities(800, 8, Shape::kOneHot, 1);
  EXPECT_EQ(onehot[0], 800u - 7u);

  auto zipf = cardinalities(800, 8, Shape::kZipf, 1);
  EXPECT_GT(zipf[0], zipf[7]);

  auto stairs = cardinalities(800, 8, Shape::kStaircase, 1);
  EXPECT_LT(stairs[0], stairs[7]);
}

TEST(WorkloadTest, ValuesAreDistinct) {
  auto w = make_workload(500, 10, Shape::kRandom, 5);
  std::set<Word> seen;
  for (const auto& in : w.inputs) {
    for (Word v : in) {
      EXPECT_TRUE(seen.insert(v).second) << "duplicate " << v;
    }
  }
  EXPECT_EQ(seen.size(), 500u);
}

TEST(WorkloadTest, Deterministic) {
  auto a = make_workload(200, 5, Shape::kZipf, 9);
  auto b = make_workload(200, 5, Shape::kZipf, 9);
  EXPECT_EQ(a.inputs, b.inputs);
  auto c = make_workload(200, 5, Shape::kZipf, 10);
  EXPECT_NE(a.inputs, c.inputs);
}

TEST(WorkloadTest, MaxLocalAccessors) {
  Workload w;
  w.inputs = {{1, 2, 3}, {4}, {5, 6}};
  EXPECT_EQ(w.total(), 6u);
  EXPECT_EQ(w.max_local(), 3u);
  EXPECT_EQ(w.max2_local(), 2u);
}

TEST(WorkloadTest, EvenRequiresDivisibility) {
  EXPECT_THROW(cardinalities(10, 3, Shape::kEven, 0),
               std::invalid_argument);
  EXPECT_THROW(cardinalities(2, 4, Shape::kRandom, 0),
               std::invalid_argument);  // n < p
}

// --- splitmix64 --------------------------------------------------------------

TEST(RandomTest, SplitmixIsAPureMixer) {
  // Stateless: same input, same output — the property the sweep harness
  // seed derivation rests on.
  EXPECT_EQ(splitmix64(42), splitmix64(42));
  EXPECT_NE(splitmix64(1), splitmix64(2));
  // Known value pinned so the derivation (and thus every recorded sweep
  // seed) can never silently change.
  EXPECT_EQ(splitmix64(0), 0xe220a8397b1dcdafull);
}

// --- json --------------------------------------------------------------------

TEST(JsonTest, EscapeHandlesSpecialsAndPassesPlainText) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string("nul\0!", 5)), "nul\\u0000!");
}

TEST(JsonTest, ParsesScalarsObjectsAndArrays) {
  const auto doc = json_parse(
      R"({"name": "a\"b", "n": -2.5, "ok": true, "none": null,)"
      R"( "list": [1, 2, 3], "nested": {"x": 7}})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("name").as_string(), "a\"b");
  EXPECT_DOUBLE_EQ(doc.at("n").as_number(), -2.5);
  EXPECT_TRUE(doc.at("ok").as_bool());
  EXPECT_EQ(doc.at("none").kind(), JsonValue::Kind::kNull);
  ASSERT_EQ(doc.at("list").size(), 3u);
  EXPECT_DOUBLE_EQ(doc.at("list").at(2).as_number(), 3.0);
  EXPECT_DOUBLE_EQ(doc.at("nested").at("x").as_number(), 7.0);
  EXPECT_EQ(doc.find("absent"), nullptr);
  EXPECT_THROW(doc.at("absent"), std::invalid_argument);
  EXPECT_THROW(doc.at("n").as_string(), std::invalid_argument);
}

TEST(JsonTest, RoundTripsEscapedStrings) {
  const std::string raw = "phase \"x\"\nwith\\specials";
  const auto doc = json_parse("{\"s\": \"" + json_escape(raw) + "\"}");
  EXPECT_EQ(doc.at("s").as_string(), raw);
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_THROW(json_parse(""), std::invalid_argument);
  EXPECT_THROW(json_parse("{"), std::invalid_argument);
  EXPECT_THROW(json_parse("{\"a\": 1,}"), std::invalid_argument);
  EXPECT_THROW(json_parse("[1 2]"), std::invalid_argument);
  EXPECT_THROW(json_parse("{\"a\": 1} trailing"), std::invalid_argument);
  EXPECT_THROW(json_parse("\"unterminated"), std::invalid_argument);
  EXPECT_THROW(json_parse("nope"), std::invalid_argument);
}

}  // namespace
}  // namespace mcb::util
