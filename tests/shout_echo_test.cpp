// Tests of the Shout-Echo model port (Section 9 / [Marb85]): activity
// accounting, selection correctness across ranks and shapes, the
// O(log n)-activities bound, and the comparison against the value-range
// binary-search baseline.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "se/shout_echo.hpp"
#include "util/random.hpp"
#include "util/workload.hpp"

namespace mcb::se {
namespace {

Word oracle_rank(const std::vector<std::vector<Word>>& inputs,
                 std::size_t d) {
  std::vector<Word> all;
  for (const auto& in : inputs) all.insert(all.end(), in.begin(), in.end());
  std::sort(all.begin(), all.end(), std::greater<Word>{});
  return all[d - 1];
}

TEST(ShoutEchoNetTest, ActivityAccounting) {
  ShoutEchoNet net(5);
  auto echoes = net.shout(2, Message::of(Word{9}),
                          [](std::size_t proc, const Message& m) {
                            return Message::of(m.at(0) + Word(proc));
                          });
  EXPECT_EQ(net.stats().activities, 1u);
  EXPECT_EQ(net.stats().messages, 5u);  // 1 shout + 4 echoes
  EXPECT_TRUE(echoes[2].empty());       // the shouter has no echo slot
  EXPECT_EQ(echoes[0].at(0), 9);
  EXPECT_EQ(echoes[4].at(0), 13);
}

TEST(ShoutEchoNetTest, InvalidShouterRejected) {
  ShoutEchoNet net(2);
  EXPECT_THROW(net.shout(2, Message::of(Word{1}),
                         [](std::size_t, const Message&) {
                           return Message{};
                         }),
               std::invalid_argument);
}

TEST(SeSelectionTest, MatchesOracleAcrossRanks) {
  auto w = util::make_workload(96, 6, util::Shape::kRandom, 4);
  for (std::size_t d = 1; d <= 96; d += 5) {
    auto res = se_select_rank(w.inputs, d);
    EXPECT_EQ(res.value, oracle_rank(w.inputs, d)) << "d=" << d;
  }
}

TEST(SeSelectionTest, SkewedDistributions) {
  for (auto shape : {util::Shape::kZipf, util::Shape::kOneHot,
                     util::Shape::kStaircase}) {
    auto w = util::make_workload(300, 10, shape, 8);
    for (std::size_t d : {std::size_t{1}, std::size_t{150},
                          std::size_t{300}}) {
      auto res = se_select_rank(w.inputs, d);
      EXPECT_EQ(res.value, oracle_rank(w.inputs, d))
          << util::to_string(shape) << " d=" << d;
    }
  }
}

TEST(SeSelectionTest, SingleProcessorAndTinyInputs) {
  std::vector<std::vector<Word>> one{{7, 3, 9}};
  EXPECT_EQ(se_select_rank(one, 1).value, 9);
  EXPECT_EQ(se_select_rank(one, 3).value, 3);
  std::vector<std::vector<Word>> pairs{{5}, {1}};
  EXPECT_EQ(se_select_rank(pairs, 2).value, 1);
}

TEST(SeSelectionTest, ActivitiesAreLogarithmic) {
  // O(1) activities per filtering phase, O(log n) phases.
  for (std::size_t n : {256u, 4096u, 65536u}) {
    auto w = util::make_workload(n, 16, util::Shape::kEven, 2);
    auto res = se_select_rank(w.inputs, n / 2);
    const double bound = 4.0 * std::log2(double(n)) + 24.0;
    EXPECT_LE(double(res.stats.activities), bound) << "n=" << n;
  }
}

TEST(SeSelectionTest, InvalidArgumentsRejected) {
  std::vector<std::vector<Word>> inputs{{1}, {}};
  EXPECT_THROW(se_select_rank(inputs, 1), std::invalid_argument);
  std::vector<std::vector<Word>> ok{{1}, {2}};
  EXPECT_THROW(se_select_rank(ok, 0), std::invalid_argument);
  EXPECT_THROW(se_select_rank(ok, 3), std::invalid_argument);
}

TEST(SeBinarySearchTest, MatchesOracle) {
  auto w = util::make_workload(200, 8, util::Shape::kRandom, 6);
  for (std::size_t d : {std::size_t{1}, std::size_t{50}, std::size_t{100},
                        std::size_t{200}}) {
    auto res = se_select_binary_search(w.inputs, d);
    EXPECT_EQ(res.value, oracle_rank(w.inputs, d)) << "d=" << d;
  }
}

TEST(SeBinarySearchTest, FilteringBeatsItOnWideRanges) {
  // Same n, but values spread over a wide universe: binary search pays
  // log(range), filtering log(n).
  const std::size_t p = 8, n = 256;
  util::Xoshiro256StarStar rng(9);
  std::vector<std::vector<Word>> inputs(p);
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t e = 0; e < n / p; ++e) {
      inputs[i].push_back(rng.uniform(-1'000'000'000, 1'000'000'000));
    }
  }
  auto filt = se_select_rank(inputs, n / 2);
  auto bin = se_select_binary_search(inputs, n / 2);
  EXPECT_EQ(filt.value, bin.value);
  EXPECT_LT(filt.stats.activities, bin.stats.activities);
}

}  // namespace
}  // namespace mcb::se
