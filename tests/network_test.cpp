// Unit tests of the MCB network simulator: cycle semantics, broadcast
// delivery, silence detection, collision faults, skip scheduling, stats
// accounting, task composition and error propagation.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "mcb/errors.hpp"
#include "mcb/network.hpp"
#include "util/check.hpp"

namespace mcb {
namespace {

// --- tiny protocols used as fixtures ---------------------------------------

ProcMain idle_program(Proc& self, Cycle steps) {
  for (Cycle t = 0; t < steps; ++t) {
    co_await self.step();
  }
}

ProcMain send_one(Proc& self, ChannelId ch, Word value) {
  co_await self.write(ch, Message::of(value));
}

ProcMain recv_one(Proc& self, ChannelId ch, std::vector<Word>& out) {
  auto got = co_await self.read(ch);
  if (got) out.push_back(got->at(0));
}

TEST(NetworkTest, EmptyProgramsFinishInZeroCycles) {
  Network net({.p = 4, .k = 2});
  for (ProcId i = 0; i < 4; ++i) {
    net.install(i, idle_program(net.proc(i), 0));
  }
  auto stats = net.run();
  EXPECT_EQ(stats.cycles, 0u);
  EXPECT_EQ(stats.messages, 0u);
}

TEST(NetworkTest, IdleProgramsCountCycles) {
  Network net({.p = 3, .k = 1});
  net.install(0, idle_program(net.proc(0), 5));
  net.install(1, idle_program(net.proc(1), 2));
  net.install(2, idle_program(net.proc(2), 7));
  auto stats = net.run();
  EXPECT_EQ(stats.cycles, 7u);  // quiescence when the longest program ends
  EXPECT_EQ(stats.messages, 0u);
}

TEST(NetworkTest, BroadcastReachesAllReaders) {
  // One writer, three concurrent readers on the same channel: one message,
  // all readers observe it (concurrent read is allowed by the model).
  Network net({.p = 4, .k = 2});
  std::vector<Word> got[4];
  net.install(0, send_one(net.proc(0), 1, 42));
  for (ProcId i = 1; i < 4; ++i) {
    net.install(i, recv_one(net.proc(i), 1, got[i]));
  }
  auto stats = net.run();
  EXPECT_EQ(stats.cycles, 1u);
  EXPECT_EQ(stats.messages, 1u);
  for (ProcId i = 1; i < 4; ++i) {
    ASSERT_EQ(got[i].size(), 1u) << "P" << i + 1;
    EXPECT_EQ(got[i][0], 42);
  }
}

TEST(NetworkTest, SilenceIsObservable) {
  // Reading a channel nobody wrote yields nullopt, not a stale message.
  Network net({.p = 2, .k = 1});
  std::vector<Word> got;
  net.install(0, idle_program(net.proc(0), 1));
  net.install(1, recv_one(net.proc(1), 0, got));
  net.run();
  EXPECT_TRUE(got.empty());
}

TEST(NetworkTest, ChannelsAreMemoryless) {
  // P0 writes in cycle 0; P1 reads the same channel in cycle 1: silence.
  Network net({.p = 2, .k = 1});
  std::vector<Word> got;
  auto late_reader = [](Proc& self, std::vector<Word>& out) -> ProcMain {
    co_await self.step();
    auto m = co_await self.read(0);
    if (m) out.push_back(m->at(0));
  };
  net.install(0, send_one(net.proc(0), 0, 7));
  net.install(1, late_reader(net.proc(1), got));
  net.run();
  EXPECT_TRUE(got.empty());
}

TEST(NetworkTest, WriterAlsoReadsInSameCycle) {
  // A processor may write one channel and read another in the same cycle.
  Network net({.p = 2, .k = 2});
  std::vector<Word> got0, got1;
  auto xchg = [](Proc& self, ChannelId wch, ChannelId rch, Word v,
                 std::vector<Word>& out) -> ProcMain {
    auto m = co_await self.write_read(wch, Message::of(v), rch);
    if (m) out.push_back(m->at(0));
  };
  net.install(0, xchg(net.proc(0), 0, 1, 10, got0));
  net.install(1, xchg(net.proc(1), 1, 0, 20, got1));
  auto stats = net.run();
  EXPECT_EQ(stats.cycles, 1u);
  EXPECT_EQ(stats.messages, 2u);
  ASSERT_EQ(got0.size(), 1u);
  ASSERT_EQ(got1.size(), 1u);
  EXPECT_EQ(got0[0], 20);
  EXPECT_EQ(got1[0], 10);
}

TEST(NetworkTest, CollisionThrows) {
  Network net({.p = 2, .k = 1});
  net.install(0, send_one(net.proc(0), 0, 1));
  net.install(1, send_one(net.proc(1), 0, 2));
  try {
    net.run();
    FAIL() << "expected CollisionError";
  } catch (const CollisionError& e) {
    EXPECT_EQ(e.cycle(), 0u);
    EXPECT_EQ(e.channel(), 0u);
    EXPECT_EQ(e.first_writer(), 0u);
    EXPECT_EQ(e.second_writer(), 1u);
  }
}

TEST(NetworkTest, SkipMatchesSteps) {
  // skip(t) must be cycle-for-cycle equivalent to t steps: a writer waits
  // 5 cycles via skip, then writes; the reader polls every cycle.
  Network net({.p = 2, .k = 1});
  auto skipper = [](Proc& self) -> ProcMain {
    co_await self.skip(5);
    co_await self.write(0, Message::of(99));
  };
  std::vector<Cycle> heard_at;
  auto poller = [](Proc& self, std::vector<Cycle>& at) -> ProcMain {
    for (int t = 0; t < 8; ++t) {
      auto m = co_await self.read(0);
      if (m) at.push_back(self.now() - 1);
    }
  };
  net.install(0, skipper(net.proc(0)));
  net.install(1, poller(net.proc(1), heard_at));
  net.run();
  ASSERT_EQ(heard_at.size(), 1u);
  EXPECT_EQ(heard_at[0], 5u);  // cycles 0..4 skipped, write lands in cycle 5
}

TEST(NetworkTest, SkipZeroIsNoop) {
  Network net({.p = 1, .k = 1});
  auto prog = [](Proc& self) -> ProcMain {
    co_await self.skip(0);  // must not consume a cycle
    co_await self.step();
  };
  net.install(0, prog(net.proc(0)));
  auto stats = net.run();
  EXPECT_EQ(stats.cycles, 1u);
}

TEST(NetworkTest, PerProcAndPerChannelMessageCounts) {
  Network net({.p = 3, .k = 2});
  auto prog = [](Proc& self, ChannelId ch, int count) -> ProcMain {
    for (int i = 0; i < count; ++i) {
      co_await self.write(ch, Message::of(i));
    }
  };
  // Stagger: P0 writes C0 twice; P1 writes C1 three times; P2 silent.
  net.install(0, prog(net.proc(0), 0, 2));
  net.install(1, prog(net.proc(1), 1, 3));
  net.install(2, prog(net.proc(2), 0, 0));
  auto stats = net.run();
  EXPECT_EQ(stats.messages, 5u);
  EXPECT_EQ(stats.messages_per_proc[0], 2u);
  EXPECT_EQ(stats.messages_per_proc[1], 3u);
  EXPECT_EQ(stats.messages_per_proc[2], 0u);
  EXPECT_EQ(stats.messages_per_channel[0], 2u);
  EXPECT_EQ(stats.messages_per_channel[1], 3u);
}

// --- Task composition -------------------------------------------------------

Task<Word> sub_reader(Proc& self, ChannelId ch) {
  auto m = co_await self.read(ch);
  co_return m ? m->at(0) : Word{-1};
}

Task<void> sub_writer(Proc& self, ChannelId ch, Word v) {
  co_await self.write(ch, Message::of(v));
}

TEST(NetworkTest, TaskCompositionRoundTrip) {
  Network net({.p = 2, .k = 1});
  Word got = 0;
  auto writer = [](Proc& self) -> ProcMain {
    co_await sub_writer(self, 0, 123);
    co_await sub_writer(self, 0, 456);
  };
  auto reader = [](Proc& self, Word& out) -> ProcMain {
    Word a = co_await sub_reader(self, 0);
    Word b = co_await sub_reader(self, 0);
    out = a * 1000 + b;
  };
  net.install(0, writer(net.proc(0)));
  net.install(1, reader(net.proc(1), got));
  auto stats = net.run();
  EXPECT_EQ(stats.cycles, 2u);
  EXPECT_EQ(got, 123 * 1000 + 456);
}

Task<int> nested_inner(Proc& self) {
  co_await self.step();
  co_return 7;
}

Task<int> nested_outer(Proc& self) {
  int a = co_await nested_inner(self);
  int b = co_await nested_inner(self);
  co_return a + b;
}

TEST(NetworkTest, DeeplyNestedTasks) {
  Network net({.p = 1, .k = 1});
  int result = 0;
  auto prog = [](Proc& self, int& out) -> ProcMain {
    out = co_await nested_outer(self);
  };
  net.install(0, prog(net.proc(0), result));
  auto stats = net.run();
  EXPECT_EQ(result, 14);
  EXPECT_EQ(stats.cycles, 2u);
}

TEST(NetworkTest, ExceptionInProgramPropagates) {
  Network net({.p = 2, .k = 1});
  auto thrower = [](Proc& self) -> ProcMain {
    co_await self.step();
    throw std::runtime_error("boom");
  };
  net.install(0, thrower(net.proc(0)));
  net.install(1, idle_program(net.proc(1), 3));
  EXPECT_THROW(net.run(), std::runtime_error);
}

TEST(NetworkTest, ExceptionInTaskPropagatesToMain) {
  Network net({.p = 1, .k = 1});
  auto failing_task = [](Proc& self) -> Task<void> {
    co_await self.step();
    throw std::runtime_error("task boom");
  };
  bool caught = false;
  auto prog = [&failing_task](Proc& self, bool& flag) -> ProcMain {
    try {
      co_await failing_task(self);
    } catch (const std::runtime_error&) {
      flag = true;
    }
  };
  net.install(0, prog(net.proc(0), caught));
  net.run();
  EXPECT_TRUE(caught);
}

// --- configuration and protocol errors --------------------------------------

TEST(NetworkTest, ConfigValidation) {
  EXPECT_THROW(Network({.p = 0, .k = 0}), std::invalid_argument);
  EXPECT_THROW(Network({.p = 2, .k = 3}), std::invalid_argument);  // k > p
  EXPECT_NO_THROW(Network({.p = 3, .k = 3}));
}

TEST(NetworkTest, ChannelIndexOutOfRangeThrows) {
  Network net({.p = 2, .k = 2});
  auto prog = [](Proc& self) -> ProcMain {
    co_await self.write(5, Message::of(1));  // only channels 0..1 exist
  };
  net.install(0, prog(net.proc(0)));
  net.install(1, prog(net.proc(1)));
  EXPECT_THROW(net.run(), std::invalid_argument);
}

TEST(NetworkTest, RunIsSingleShot) {
  Network net({.p = 1, .k = 1});
  net.install(0, idle_program(net.proc(0), 1));
  net.run();
  EXPECT_THROW(net.run(), std::invalid_argument);
}

TEST(NetworkTest, MissingProgramRejected) {
  Network net({.p = 2, .k = 1});
  net.install(0, idle_program(net.proc(0), 1));
  EXPECT_THROW(net.run(), std::invalid_argument);
}

TEST(NetworkTest, DoubleInstallRejected) {
  Network net({.p = 1, .k = 1});
  net.install(0, idle_program(net.proc(0), 1));
  EXPECT_THROW(net.install(0, idle_program(net.proc(0), 1)),
               std::invalid_argument);
}

TEST(NetworkTest, MaxCyclesGuard) {
  Network net({.p = 1, .k = 1, .max_cycles = 10});
  net.install(0, idle_program(net.proc(0), 100));
  EXPECT_THROW(net.run(), ProtocolError);
}

TEST(NetworkTest, PhaseAccounting) {
  Network net({.p = 2, .k = 1});
  auto prog = [](Proc& self) -> ProcMain {
    self.mark_phase("alpha");
    co_await self.write(0, Message::of(1));
    co_await self.write(0, Message::of(2));
    self.mark_phase("beta");
    co_await self.step();
    co_await self.write(0, Message::of(3));
  };
  net.install(0, prog(net.proc(0)));
  net.install(1, idle_program(net.proc(1), 4));
  auto stats = net.run();
  const auto* alpha = stats.phase("alpha");
  const auto* beta = stats.phase("beta");
  ASSERT_NE(alpha, nullptr);
  ASSERT_NE(beta, nullptr);
  EXPECT_EQ(alpha->cycles, 2u);
  EXPECT_EQ(alpha->messages, 2u);
  EXPECT_EQ(beta->messages, 1u);
}

TEST(NetworkTest, AuxStorageTracking) {
  Network net({.p = 2, .k = 1});
  auto prog = [](Proc& self, std::size_t hi) -> ProcMain {
    self.note_aux(3);
    co_await self.step();
    self.note_aux(hi);
    co_await self.step();
    self.note_aux(1);
  };
  net.install(0, prog(net.proc(0), 17));
  net.install(1, prog(net.proc(1), 4));
  auto stats = net.run();
  EXPECT_EQ(stats.peak_aux_words[0], 17u);
  EXPECT_EQ(stats.peak_aux_words[1], 4u);
  EXPECT_EQ(stats.max_peak_aux(), 17u);
}

TEST(NetworkTest, DeterministicReplay) {
  // Two identical runs produce identical statistics.
  auto run_once = []() {
    Network net({.p = 4, .k = 2});
    auto prog = [](Proc& self) -> ProcMain {
      const ChannelId ch = self.id() % 2;
      if (self.id() < 2) {
        for (int i = 0; i < 10; ++i) {
          co_await self.write(
              ch, Message::of(static_cast<Word>(self.id()) * 100 + i));
        }
      } else {
        for (int i = 0; i < 10; ++i) {
          co_await self.read(ch);
        }
      }
    };
    for (ProcId i = 0; i < 4; ++i) net.install(i, prog(net.proc(i)));
    return net.run();
  };
  auto a = run_once();
  auto b = run_once();
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.messages_per_proc, b.messages_per_proc);
}

}  // namespace
}  // namespace mcb
