// Tests of the front-door sort API (dispatcher) and the baselines.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "algo/baselines.hpp"
#include "algo/sort.hpp"
#include "util/workload.hpp"

namespace mcb::algo {
namespace {

void expect_sorted_outputs(const std::vector<std::vector<Word>>& inputs,
                           const std::vector<std::vector<Word>>& outputs) {
  std::vector<Word> all;
  for (const auto& x : inputs) all.insert(all.end(), x.begin(), x.end());
  std::sort(all.begin(), all.end(), std::greater<Word>{});
  std::size_t at = 0;
  ASSERT_EQ(inputs.size(), outputs.size());
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    ASSERT_EQ(outputs[i].size(), inputs[i].size()) << "P" << i + 1;
    for (Word w : outputs[i]) {
      ASSERT_EQ(w, all[at]) << "P" << i + 1 << " rank " << at;
      ++at;
    }
  }
}

TEST(SortApiTest, AutoPicksEvenColumnsort) {
  auto w = util::make_workload(256, 16, util::Shape::kEven, 1);
  auto res = sort({.p = 16, .k = 4}, w.inputs);
  EXPECT_EQ(res.used, SortAlgorithm::kColumnsortEven);
  expect_sorted_outputs(w.inputs, res.run.outputs);
}

TEST(SortApiTest, AutoPicksUnevenForSkew) {
  auto w = util::make_workload(256, 16, util::Shape::kZipf, 1);
  auto res = sort({.p = 16, .k = 4}, w.inputs);
  EXPECT_EQ(res.used, SortAlgorithm::kUnevenColumnsort);
  expect_sorted_outputs(w.inputs, res.run.outputs);
}

TEST(SortApiTest, AutoPicksRankSortForSingleChannel) {
  auto w = util::make_workload(64, 8, util::Shape::kEven, 1);
  auto res = sort({.p = 8, .k = 1}, w.inputs);
  EXPECT_EQ(res.used, SortAlgorithm::kRankSort);
  expect_sorted_outputs(w.inputs, res.run.outputs);
}

TEST(SortApiTest, EveryExplicitAlgorithmSortsEvenInput) {
  auto w = util::make_workload(256, 16, util::Shape::kEven, 2);
  for (auto a : {SortAlgorithm::kColumnsortEven,
                 SortAlgorithm::kVirtualColumnsort, SortAlgorithm::kRecursive,
                 SortAlgorithm::kUnevenColumnsort, SortAlgorithm::kRankSort,
                 SortAlgorithm::kMergeSort, SortAlgorithm::kCentral}) {
    auto res = sort({.p = 16, .k = 4}, w.inputs, {.algorithm = a});
    EXPECT_EQ(res.used, a);
    expect_sorted_outputs(w.inputs, res.run.outputs);
  }
}

TEST(SortApiTest, AlgorithmNames) {
  EXPECT_STREQ(to_string(SortAlgorithm::kRecursive), "recursive-columnsort");
  EXPECT_STREQ(to_string(SortAlgorithm::kCentral), "central-sort");
}

TEST(CentralSortTest, SortsUnevenInputs) {
  for (auto shape : {util::Shape::kZipf, util::Shape::kOneHot,
                     util::Shape::kRandom}) {
    auto w = util::make_workload(200, 8, shape, 7);
    auto res = central_sort({.p = 8, .k = 4}, w.inputs);
    expect_sorted_outputs(w.inputs, res.outputs);
  }
}

TEST(CentralSortTest, IgnoresExtraChannels) {
  // The baseline uses one channel: same cycle count for k = 1 and k = 8
  // (the point of comparison against Columnsort). The gather/scatter part
  // is identical; only the Partial-Sums prologue gets faster with k.
  auto w = util::make_workload(512, 8, util::Shape::kEven, 4);
  auto k1 = central_sort({.p = 8, .k = 1}, w.inputs);
  auto k8 = central_sort({.p = 8, .k = 8}, w.inputs);
  const auto scatter1 = k1.stats.phase("scatter")->cycles;
  const auto scatter8 = k8.stats.phase("scatter")->cycles;
  EXPECT_EQ(scatter1, scatter8);
}

TEST(SelectionBySortingTest, AgreesWithFiltering) {
  auto w = util::make_workload(300, 6, util::Shape::kRandom, 5);
  for (std::size_t d : {std::size_t{1}, std::size_t{150},
                        std::size_t{300}}) {
    auto base = selection_by_sorting({.p = 6, .k = 3}, w.inputs, d);
    auto fast = select_rank({.p = 6, .k = 3}, w.inputs, d);
    EXPECT_EQ(base.value, fast.value) << "d=" << d;
  }
}

TEST(SelectionBySortingTest, PaysMoreMessagesThanFiltering) {
  const std::size_t p = 16, k = 4, n = 4096;
  auto w = util::make_workload(n, p, util::Shape::kEven, 6);
  auto base = selection_by_sorting({.p = p, .k = k}, w.inputs, n / 2);
  auto fast = select_rank({.p = p, .k = k}, w.inputs, n / 2);
  // Theta(n) vs Theta(p log(kn/p)): at this size the gap is large.
  EXPECT_GT(base.stats.messages, 4 * fast.stats.messages);
}

}  // namespace
}  // namespace mcb::algo
