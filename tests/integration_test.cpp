// Cross-module integration tests: every sorting algorithm agrees with every
// other on identical inputs, selection agrees with sorting at every rank,
// whole-run determinism holds across algorithms, and the simulator's
// safety rails (collision detection, cycle limits) fire inside real
// algorithm contexts.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "mcb/mcb.hpp"

namespace mcb {
namespace {

using algo::SortAlgorithm;

std::vector<std::vector<Word>> run_sort(SortAlgorithm a, std::size_t p,
                                        std::size_t k,
                                        const std::vector<std::vector<Word>>& in) {
  return algo::sort({.p = p, .k = k}, in, {.algorithm = a}).run.outputs;
}

TEST(IntegrationTest, AllSortersAgreeOnEvenInput) {
  const std::size_t p = 16, k = 4;
  auto w = util::make_workload(512, p, util::Shape::kEven, 77);
  const auto reference = run_sort(SortAlgorithm::kCentral, p, k, w.inputs);
  for (auto a : {SortAlgorithm::kColumnsortEven,
                 SortAlgorithm::kVirtualColumnsort, SortAlgorithm::kRecursive,
                 SortAlgorithm::kUnevenColumnsort, SortAlgorithm::kRankSort,
                 SortAlgorithm::kMergeSort}) {
    EXPECT_EQ(run_sort(a, p, k, w.inputs), reference)
        << algo::to_string(a);
  }
}

TEST(IntegrationTest, UnevenCapableSortersAgreeOnSkewedInput) {
  const std::size_t p = 12, k = 3;
  auto w = util::make_workload(300, p, util::Shape::kZipf, 5);
  const auto reference = run_sort(SortAlgorithm::kCentral, p, k, w.inputs);
  for (auto a : {SortAlgorithm::kUnevenColumnsort, SortAlgorithm::kRankSort,
                 SortAlgorithm::kMergeSort}) {
    EXPECT_EQ(run_sort(a, p, k, w.inputs), reference)
        << algo::to_string(a);
  }
}

TEST(IntegrationTest, SelectionMatchesSortAtEveryRank) {
  const std::size_t p = 8, k = 2, n = 96;
  auto w = util::make_workload(n, p, util::Shape::kRandom, 3);
  auto sorted = algo::sort({.p = p, .k = k}, w.inputs);
  std::vector<Word> flat;
  for (const auto& out : sorted.run.outputs) {
    flat.insert(flat.end(), out.begin(), out.end());
  }
  for (std::size_t d = 1; d <= n; d += 7) {
    auto res = algo::select_rank({.p = p, .k = k}, w.inputs, d);
    EXPECT_EQ(res.value, flat[d - 1]) << "d=" << d;
  }
}

TEST(IntegrationTest, WholeRunDeterminism) {
  const std::size_t p = 16, k = 4;
  auto w = util::make_workload(1024, p, util::Shape::kEven, 21);
  for (auto a : {SortAlgorithm::kColumnsortEven,
                 SortAlgorithm::kVirtualColumnsort,
                 SortAlgorithm::kRecursive}) {
    auto r1 = algo::sort({.p = p, .k = k}, w.inputs, {.algorithm = a});
    auto r2 = algo::sort({.p = p, .k = k}, w.inputs, {.algorithm = a});
    EXPECT_EQ(r1.run.outputs, r2.run.outputs) << algo::to_string(a);
    EXPECT_EQ(r1.run.stats.cycles, r2.run.stats.cycles);
    EXPECT_EQ(r1.run.stats.messages, r2.run.stats.messages);
    EXPECT_EQ(r1.run.stats.messages_per_proc, r2.run.stats.messages_per_proc);
  }
}

TEST(IntegrationTest, SelectionDeterminismIncludingQuickselect) {
  auto w = util::make_workload(400, 8, util::Shape::kZipf, 4);
  auto a = algo::select_median({.p = 8, .k = 4}, w.inputs,
                               {.use_quickselect = true});
  auto b = algo::select_median({.p = 8, .k = 4}, w.inputs,
                               {.use_quickselect = true});
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.stats.cycles, b.stats.cycles);
  EXPECT_EQ(a.filter_phases, b.filter_phases);
}

TEST(IntegrationTest, CollisionDetectionFiresInAlgorithmContext) {
  // A deliberately broken protocol: two processors follow the gather
  // schedule with the same offset — the simulator must catch it.
  Network net({.p = 3, .k = 1});
  auto broken = [](Proc& self) -> ProcMain {
    if (self.id() < 2) {
      co_await self.write(0, Message::of(Word(self.id())));
    } else {
      co_await self.read(0);
    }
  };
  for (ProcId i = 0; i < 3; ++i) net.install(i, broken(net.proc(i)));
  EXPECT_THROW(net.run(), CollisionError);
}

TEST(IntegrationTest, MaxCyclesGuardsAgainstRunawayProtocols) {
  Network net({.p = 2, .k = 1, .max_cycles = 64});
  auto spin = [](Proc& self) -> ProcMain {
    while (true) {
      co_await self.read(0);  // waits forever for a message nobody sends
    }
  };
  net.install(0, spin(net.proc(0)));
  net.install(1, spin(net.proc(1)));
  EXPECT_THROW(net.run(), ProtocolError);
}

TEST(IntegrationTest, PartialSumsComposesWithSortInOneRun) {
  // A custom protocol that runs Partial-Sums and then the even-sort
  // collective back to back — the composition pattern of the selection
  // algorithm, exercised directly.
  const std::size_t p = 8, k = 2;
  auto plan = algo::EvenSortPlan::build(p, k, 1);
  std::vector<Word> results(p, 0);
  Network net({.p = p, .k = k});
  auto prog = [](Proc& self, const algo::EvenSortPlan& pl,
                 Word& out) -> ProcMain {
    auto ps = co_await algo::partial_sums(
        self, static_cast<Word>(self.id() + 1), algo::SumOp::add());
    std::vector<algo::KV> pair{algo::KV{ps.self, Word(self.id())}};
    co_await algo::columnsort_even_collective(self, pl, pair);
    out = pair[0].key;
  };
  for (ProcId i = 0; i < p; ++i) {
    net.install(i, prog(net.proc(i), plan, results[i]));
  }
  net.run();
  // Prefix sums of 1..8 are 1,3,6,...,36; sorted descending across procs.
  const std::vector<Word> expect{36, 28, 21, 15, 10, 6, 3, 1};
  EXPECT_EQ(results, expect);
}

TEST(IntegrationTest, LargeScaleSmoke) {
  // A bigger configuration touching every phase: p=128, k=16, n=16384.
  const std::size_t p = 128, k = 16, n = 16384;
  auto w = util::make_workload(n, p, util::Shape::kEven, 1);
  auto res = algo::sort({.p = p, .k = k}, w.inputs);
  std::vector<Word> flat;
  for (const auto& out : res.run.outputs) {
    flat.insert(flat.end(), out.begin(), out.end());
  }
  EXPECT_TRUE(std::is_sorted(flat.begin(), flat.end(),
                             std::greater<Word>{}));
  EXPECT_LE(res.run.stats.cycles, 8 * n / k);
}

}  // namespace
}  // namespace mcb
