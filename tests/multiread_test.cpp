// Tests of the Section-9 model extension: reading all channels in one
// cycle (SimConfig::multi_read), and the central-sort demonstration that
// the extension speeds up gathering but cannot beat Columnsort overall.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "algo/baselines.hpp"
#include "algo/columnsort_even.hpp"
#include "mcb/network.hpp"
#include "mcb/trace.hpp"
#include "util/workload.hpp"

namespace mcb {
namespace {

TEST(MultiReadTest, ReadsAllChannelsInOneCycle) {
  Network net({.p = 4, .k = 3, .multi_read = true});
  std::vector<Word> heard;
  auto writer = [](Proc& self, ChannelId ch) -> ProcMain {
    co_await self.write(ch, Message::of(Word(100 + ch)));
  };
  auto reader = [](Proc& self, std::vector<Word>& out) -> ProcMain {
    auto got = co_await self.cycle_all(std::nullopt);
    for (const auto& m : got) {
      if (m) out.push_back(m->at(0));
    }
  };
  net.install(0, writer(net.proc(0), 0));
  net.install(1, writer(net.proc(1), 1));
  net.install(2, writer(net.proc(2), 2));
  net.install(3, reader(net.proc(3), heard));
  auto stats = net.run();
  EXPECT_EQ(stats.cycles, 1u);
  EXPECT_EQ(heard, (std::vector<Word>{100, 101, 102}));
}

TEST(MultiReadTest, SilentChannelsAreNullopt) {
  Network net({.p = 2, .k = 2, .multi_read = true});
  std::size_t heard = 0;
  auto writer = [](Proc& self) -> ProcMain {
    co_await self.write(1, Message::of(Word{5}));
  };
  auto reader = [](Proc& self, std::size_t& count) -> ProcMain {
    auto got = co_await self.cycle_all(std::nullopt);
    for (const auto& m : got) {
      if (m) ++count;
    }
  };
  net.install(0, writer(net.proc(0)));
  net.install(1, reader(net.proc(1), heard));
  net.run();
  EXPECT_EQ(heard, 1u);
}

TEST(MultiReadTest, WriteAndMultiReadInOneCycle) {
  Network net({.p = 2, .k = 2, .multi_read = true});
  std::vector<Word> heard;
  auto both = [](Proc& self, std::vector<Word>& out) -> ProcMain {
    auto got = co_await self.cycle_all(
        WriteOp{0, Message::of(Word{7})});
    for (const auto& m : got) {
      if (m) out.push_back(m->at(0));
    }
  };
  auto writer = [](Proc& self) -> ProcMain {
    co_await self.write(1, Message::of(Word{9}));
  };
  net.install(0, both(net.proc(0), heard));
  net.install(1, writer(net.proc(1)));
  net.run();
  // The multi-reader hears both channels — including its own write.
  std::sort(heard.begin(), heard.end());
  EXPECT_EQ(heard, (std::vector<Word>{7, 9}));
}

// Both engines must make multi-read cycles visible to the trace sink, and
// must agree on the events to the byte. (The seed's trace-emission blocks
// skipped processors whose only pending operation was a cycle_all, so a
// pure multi-read protocol traced as completely silent — under either
// engine.)
TEST(MultiReadTest, TracedIdenticallyUnderBothEngines) {
  auto run_traced = [](Engine engine) {
    ChannelTrace trace;
    Network net({.p = 3, .k = 2, .multi_read = true, .engine = engine},
                &trace);
    auto writer = [](Proc& self, ChannelId ch, Word v) -> ProcMain {
      co_await self.write(ch, Message::of(v));
      co_await self.cycle_all(std::nullopt);  // then turn multi-reader
    };
    auto reader = [](Proc& self) -> ProcMain {
      co_await self.cycle_all(std::nullopt);
      co_await self.cycle_all(WriteOp{0, Message::of(Word{77})});
    };
    net.install(0, writer(net.proc(0), 0, Word{10}));
    net.install(1, writer(net.proc(1), 1, Word{11}));
    net.install(2, reader(net.proc(2)));
    net.run();
    return trace.render(2);
  };

  const auto event = run_traced(Engine::kEventDriven);
  const auto reference = run_traced(Engine::kReference);
  EXPECT_FALSE(event.empty());
  EXPECT_EQ(event, reference);
  // The pure multi-read cycle is present, with the channel contents heard.
  EXPECT_NE(event.find("P3 <- all: C1 [10] C2 [11]"), std::string::npos);
  // And a combined write + multi-read renders both halves.
  EXPECT_NE(event.find("P3 -> C1 [77]"), std::string::npos);
}

TEST(MultiReadTest, RejectedWhenDisabled) {
  Network net({.p = 1, .k = 1});  // multi_read defaults to false
  auto prog = [](Proc& self) -> ProcMain {
    co_await self.cycle_all(std::nullopt);
  };
  net.install(0, prog(net.proc(0)));
  EXPECT_THROW(net.run(), std::invalid_argument);
}

TEST(MultiReadCentralSortTest, SortsCorrectly) {
  auto w = util::make_workload(512, 16, util::Shape::kEven, 3);
  auto res = algo::central_sort_multiread(
      {.p = 16, .k = 4, .multi_read = true}, w.inputs);
  std::vector<Word> flat;
  for (const auto& out : res.outputs) {
    flat.insert(flat.end(), out.begin(), out.end());
  }
  EXPECT_TRUE(std::is_sorted(flat.begin(), flat.end(), std::greater<Word>{}));
  EXPECT_EQ(flat.size(), 512u);
}

TEST(MultiReadCentralSortTest, GatherSpeedsUpButTotalStaysLinear) {
  const std::size_t n = 8192, p = 32, k = 8;
  auto w = util::make_workload(n, p, util::Shape::kEven, 4);
  auto multi = algo::central_sort_multiread(
      {.p = p, .k = k, .multi_read = true}, w.inputs);
  auto single = algo::central_sort({.p = p, .k = k}, w.inputs);

  // The multi-read gather is ~k times faster than the single-read gather.
  const auto* mg = multi.stats.phase("gather-multiread");
  const auto* sg = single.stats.phase("gather");
  ASSERT_NE(mg, nullptr);
  ASSERT_NE(sg, nullptr);
  EXPECT_LT(mg->cycles * (k / 2), sg->cycles);

  // ... but the scatter bottleneck keeps the total Theta(n): Columnsort in
  // the STANDARD model still wins. This is Section 9's closing point.
  auto cs = algo::columnsort_even({.p = p, .k = k}, w.inputs);
  EXPECT_LT(cs.run.stats.cycles, multi.stats.cycles);
}

TEST(MultiReadCentralSortTest, RequiresTheExtension) {
  auto w = util::make_workload(64, 8, util::Shape::kEven, 1);
  EXPECT_THROW(algo::central_sort_multiread({.p = 8, .k = 2}, w.inputs),
               std::invalid_argument);
}

}  // namespace
}  // namespace mcb
