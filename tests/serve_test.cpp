// Tests of the serving layer (src/serve) and its collective
// (algo::select_ranks): batched multi-rank selection against host ground
// truth on every engine, the quantile rank convention, query-class
// parsing, churn invariants of the resident dataset, and the server
// report's byte-determinism contract across engines and thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <functional>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "algo/multi_select.hpp"
#include "algo/selection.hpp"
#include "mcb/network.hpp"
#include "serve/query.hpp"
#include "serve/server.hpp"
#include "util/json.hpp"
#include "util/workload.hpp"

namespace mcb {
namespace {

std::vector<Word> sorted_desc(const std::vector<std::vector<Word>>& shards) {
  std::vector<Word> all;
  for (const auto& s : shards) all.insert(all.end(), s.begin(), s.end());
  std::sort(all.begin(), all.end(), std::greater<Word>{});
  return all;
}

TEST(MultiSelectTest, MatchesHostGroundTruth) {
  const auto w = util::make_workload(128, 8, util::Shape::kRandom, 9);
  const auto truth = sorted_desc(w.inputs);
  // Duplicated and unsorted ranks are part of the contract.
  const std::vector<std::size_t> ds = {64, 1, 128, 2, 64, 127, 13};
  const auto res = algo::select_ranks({.p = 8, .k = 2}, w.inputs, ds);
  ASSERT_EQ(res.values.size(), ds.size());
  for (std::size_t j = 0; j < ds.size(); ++j) {
    EXPECT_EQ(res.values[j], truth[ds[j] - 1]) << "rank " << ds[j];
  }
}

TEST(MultiSelectTest, AgreesWithSingleRankSelection) {
  const auto w = util::make_workload(300, 6, util::Shape::kZipf, 11);
  const std::vector<std::size_t> ds = {1, 30, 150, 290, 300};
  const SimConfig cfg{.p = 6, .k = 3};
  const auto batched = algo::select_ranks(cfg, w.inputs, ds);
  Cycle single_cycles = 0;
  for (std::size_t j = 0; j < ds.size(); ++j) {
    const auto one = algo::select_rank(cfg, w.inputs, ds[j]);
    EXPECT_EQ(batched.values[j], one.value) << "rank " << ds[j];
    single_cycles += one.stats.cycles;
  }
  // The whole point of batching: one run answers the cluster for less than
  // the rank-at-a-time total.
  EXPECT_LT(batched.stats.cycles, single_cycles);
}

TEST(MultiSelectTest, IdenticalAcrossEnginesAndThreads) {
  const auto w = util::make_workload(256, 16, util::Shape::kEven, 4);
  const std::vector<std::size_t> ds = {1, 26, 128, 231, 256};
  auto run = [&](Engine e, std::size_t threads) {
    SimConfig cfg{.p = 16, .k = 4};
    cfg.engine = e;
    cfg.threads = threads;
    return algo::select_ranks(cfg, w.inputs, ds);
  };
  const auto ref = run(Engine::kReference, 0);
  for (const auto& [e, t, label] :
       {std::tuple{Engine::kEventDriven, std::size_t{0}, "event"},
        std::tuple{Engine::kParallel, std::size_t{1}, "parallel-t1"},
        std::tuple{Engine::kParallel, std::size_t{4}, "parallel-t4"}}) {
    const auto got = run(e, t);
    EXPECT_EQ(ref.values, got.values) << label;
    EXPECT_EQ(ref.filter_phases, got.filter_phases) << label;
    EXPECT_EQ(ref.stats.cycles, got.stats.cycles) << label;
    EXPECT_EQ(ref.stats.messages, got.stats.messages) << label;
  }
}

TEST(MultiSelectTest, RejectsBadRanksAndEmptyBatch) {
  const auto w = util::make_workload(64, 8, util::Shape::kEven, 1);
  const SimConfig cfg{.p = 8, .k = 2};
  EXPECT_THROW(algo::select_ranks(cfg, w.inputs, {}), std::invalid_argument);
  EXPECT_THROW(algo::select_ranks(cfg, w.inputs, {0}),
               std::invalid_argument);
  EXPECT_THROW(algo::select_ranks(cfg, w.inputs, {65}),
               std::invalid_argument);
}

TEST(QuantileRankTest, CeilConvention) {
  // The examples/topk_query.cpp regression: truncation answered 1638.
  EXPECT_EQ(serve::quantile_rank(16384, 0.10), 1639u);
  EXPECT_EQ(serve::quantile_rank(16384, 0.50), 8192u);
  EXPECT_EQ(serve::quantile_rank(16384, 0.001), 17u);
  EXPECT_EQ(serve::quantile_rank(10, 0.25), 3u);  // ceil(2.5)
  EXPECT_EQ(serve::quantile_rank(100, 0.0), 1u);  // floored at 1
  EXPECT_EQ(serve::quantile_rank(100, 1.0), 100u);
  EXPECT_EQ(serve::quantile_rank(1, 0.5), 1u);
  EXPECT_THROW(serve::quantile_rank(0, 0.5), std::invalid_argument);
  EXPECT_THROW(serve::quantile_rank(10, 1.5), std::invalid_argument);
  EXPECT_THROW(serve::quantile_rank(10, -0.1), std::invalid_argument);
}

TEST(ParseClassesTest, ParsesWeightsAndKinds) {
  const auto cs = serve::parse_classes("rank:4,topk:2,churn:1");
  ASSERT_EQ(cs.size(), 3u);
  EXPECT_EQ(cs[0].name, "rank");
  EXPECT_EQ(cs[0].kind, serve::OpKind::kRankSelect);
  EXPECT_EQ(cs[0].weight, 4u);
  EXPECT_EQ(cs[1].kind, serve::OpKind::kTopK);
  EXPECT_EQ(cs[2].kind, serve::OpKind::kChurn);
  // Weight defaults to 1 when omitted.
  EXPECT_EQ(serve::parse_classes("rank")[0].weight, 1u);
}

TEST(ParseClassesTest, RejectsMalformedSpecs) {
  EXPECT_THROW(serve::parse_classes(""), std::invalid_argument);
  EXPECT_THROW(serve::parse_classes("median:1"), std::invalid_argument);
  EXPECT_THROW(serve::parse_classes("rank:0"), std::invalid_argument);
  EXPECT_THROW(serve::parse_classes("rank:-2"), std::invalid_argument);
  EXPECT_THROW(serve::parse_classes("rank:x"), std::invalid_argument);
}

TEST(DatasetTest, ChurnKeepsInvariants) {
  serve::Dataset data(256, 8, 42);
  ASSERT_EQ(data.size(), 256u);
  const Word max0 = data.nth_largest(1);
  for (int i = 0; i < 200; ++i) data.churn();
  // One insert + one delete per op: size is invariant.
  EXPECT_EQ(data.size(), 256u);
  std::set<Word> seen;
  std::size_t total = 0;
  for (const auto& shard : data.shards()) {
    EXPECT_GE(shard.size(), 1u);  // selection needs one element per proc
    for (Word v : shard) {
      seen.insert(v);
      ++total;
    }
  }
  EXPECT_EQ(total, 256u);
  EXPECT_EQ(seen.size(), 256u);  // distinctness survives churn
  // Fresh inserts are drawn above everything ever resident.
  EXPECT_GT(data.nth_largest(1), max0);
}

serve::ServeConfig small_config() {
  serve::ServeConfig sc;
  sc.sim.p = 8;
  sc.sim.k = 2;
  sc.n = 256;
  sc.seed = 13;
  sc.queries = 40;
  sc.batch = 4;
  return sc;
}

TEST(ServerTest, AnswersVerifiedAgainstGroundTruth) {
  auto sc = small_config();
  sc.verify = true;  // run_server throws on any wrong answer
  const auto rep = serve::run_server(sc);
  ASSERT_EQ(rep.queries.size(), sc.queries);
  std::size_t answered = 0;
  for (const auto& q : rep.queries) {
    if (q.kind == serve::OpKind::kChurn) continue;
    ++answered;
    EXPECT_GE(q.rank, 1u);
    EXPECT_GE(q.batch_id, 1u);
    EXPECT_GT(q.latency_cycles, 0u);
  }
  EXPECT_EQ(answered + rep.churn_ops, sc.queries);
  EXPECT_GE(rep.batches, (answered + sc.batch - 1) / sc.batch);
  EXPECT_LE(rep.batches, answered);  // batching can only merge runs
  EXPECT_GT(rep.total_cycles, 0u);
}

TEST(ServerTest, ReportByteIdenticalAcrossEnginesAndThreads) {
  auto run_with = [&](Engine e, std::size_t threads) {
    auto sc = small_config();
    sc.sim.engine = e;
    sc.sim.threads = threads;
    return serve::run_server(sc);
  };
  const auto ref = run_with(Engine::kReference, 0);
  const std::string want_json = ref.json();
  const std::string want_md = ref.markdown();
  // The JSON must survive the strict parser (the finiteness-guard contract
  // of util::json_double rides on this).
  EXPECT_NO_THROW(util::json_parse(want_json));
  for (const auto& [e, t, label] :
       {std::tuple{Engine::kEventDriven, std::size_t{0}, "event"},
        std::tuple{Engine::kParallel, std::size_t{1}, "parallel-t1"},
        std::tuple{Engine::kParallel, std::size_t{4}, "parallel-t4"}}) {
    const auto got = run_with(e, t);
    EXPECT_EQ(want_json, got.json()) << label;
    EXPECT_EQ(want_md, got.markdown()) << label;
  }
}

TEST(ServerTest, PersistentNetworkReusesFrames) {
  if (!MCB_FRAME_ARENA_ENABLED) GTEST_SKIP() << "arena off";
  auto sc = small_config();
  sc.classes = serve::parse_classes("rank:1");  // several batches, no churn
  const auto rep = serve::run_server(sc);
  ASSERT_GT(rep.batches, 1u);
  // Batches after the first come out of the warmed arenas.
  EXPECT_GT(rep.frame_reuses, 0u);
}

TEST(ServerTest, BatchingReducesCyclesPerQuery) {
  auto batched = small_config();
  batched.classes = serve::parse_classes("rank:1");
  auto sequential = batched;
  sequential.batch = 1;
  const auto b = serve::run_server(batched);
  const auto s = serve::run_server(sequential);
  // Identical stream, identical answers, fewer simulated cycles.
  ASSERT_EQ(b.queries.size(), s.queries.size());
  for (std::size_t i = 0; i < b.queries.size(); ++i) {
    EXPECT_EQ(b.queries[i].rank, s.queries[i].rank) << i;
    EXPECT_EQ(b.queries[i].value, s.queries[i].value) << i;
  }
  EXPECT_LT(b.total_cycles, s.total_cycles);
  EXPECT_LT(b.batches, s.batches);
}

TEST(ServerTest, RejectsBadConfig) {
  auto sc = small_config();
  sc.n = 255;  // not a multiple of p
  EXPECT_THROW(serve::run_server(sc), std::invalid_argument);
  sc = small_config();
  sc.batch = 0;
  EXPECT_THROW(serve::run_server(sc), std::invalid_argument);
}

}  // namespace
}  // namespace mcb
