// Tests of the distributed Columnsort for even distributions (Section 5.2):
// correctness against a sorting oracle over a parameter sweep, the paper's
// Theta(n) message / Theta(n/k) cycle bounds, collision-freedom (implicit:
// the simulator throws on any collision), and the fewer-columns fallback.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "algo/columnsort_even.hpp"
#include "algo/common.hpp"
#include "util/random.hpp"
#include "util/workload.hpp"

namespace mcb::algo {
namespace {

struct Shape {
  std::size_t p, k, ni;
};

std::vector<Word> flatten_sorted_desc(const std::vector<std::vector<Word>>& v) {
  std::vector<Word> all;
  for (const auto& x : v) all.insert(all.end(), x.begin(), x.end());
  std::sort(all.begin(), all.end(), std::greater<Word>{});
  return all;
}

void expect_sorted_outputs(const std::vector<std::vector<Word>>& inputs,
                           const std::vector<std::vector<Word>>& outputs) {
  ASSERT_EQ(inputs.size(), outputs.size());
  const auto expect = flatten_sorted_desc(inputs);
  std::size_t at = 0;
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    ASSERT_EQ(outputs[i].size(), inputs[i].size()) << "P" << i + 1;
    for (Word w : outputs[i]) {
      EXPECT_EQ(w, expect[at]) << "P" << i + 1 << " rank " << at;
      ++at;
    }
  }
}

class EvenSortSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(EvenSortSweep, SortsAndMeetsBounds) {
  const auto [p, k, ni] = GetParam();
  const std::size_t n = p * ni;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    auto w = util::make_workload(n, p, util::Shape::kEven, seed);
    auto res = columnsort_even({.p = p, .k = k}, w.inputs);
    expect_sorted_outputs(w.inputs, res.run.outputs);

    // Theta(n) messages: generous constant covering gather + 4 transforms +
    // double redistribute.
    EXPECT_LE(res.run.stats.messages, 8 * n) << "p=" << p << " k=" << k;
    // Theta(n/kk) cycles (kk = columns actually used).
    const std::size_t kk = res.columns;
    EXPECT_LE(res.run.stats.cycles, 8 * (n / kk) + 8 * kk * kk)
        << "p=" << p << " k=" << k << " kk=" << kk;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EvenSortSweep,
    ::testing::ValuesIn(std::vector<Shape>{
        // p == k cases (direct Columnsort, no gather)
        {4, 4, 48},     // m = 48, k = 4: comfortably valid
        {4, 4, 12},     // m = 12 = k(k-1): the boundary
        {2, 2, 2},      // minimal
        {8, 8, 56},     // m = k(k-1) boundary at k = 8
        {8, 8, 64},
        // p > k cases (gather + redistribute)
        {8, 2, 4},
        {16, 4, 16},
        {16, 4, 13},    // n/kk not a multiple of kk: padding path
        {32, 8, 49},
        {64, 8, 10},
        {12, 3, 17},
        // k = 1: single channel, single column
        {4, 1, 8},
        {7, 1, 5},
        // small n forcing the fewer-columns fallback
        {16, 8, 2},     // n = 32 < k^2(k-1) = 448
        {32, 16, 4},    // n = 128 < 16^2*15
    }),
    [](const auto& pinfo) {
      return "p" + std::to_string(pinfo.param.p) + "_k" +
             std::to_string(pinfo.param.k) + "_ni" +
             std::to_string(pinfo.param.ni);
    });

TEST(ColumnsortEvenTest, ChooseColumnsPrefersFullWidth) {
  // Plenty of data: use all k channels.
  EXPECT_EQ(choose_columns(4096, 16, 4), 4u);
  // n below k^2(k-1): fall back to fewer columns.
  EXPECT_LT(choose_columns(32, 16, 8), 8u);
  // Always at least one column.
  EXPECT_EQ(choose_columns(16, 16, 16), 2u);  // m=8 >= 2*1, kk=2 feasible
}

TEST(ColumnsortEvenTest, ExplicitColumnOverride) {
  auto w = util::make_workload(64, 8, util::Shape::kEven, 1);
  auto res = columnsort_even({.p = 8, .k = 4}, w.inputs, {.columns = 2});
  EXPECT_EQ(res.columns, 2u);
  expect_sorted_outputs(w.inputs, res.run.outputs);
}

TEST(ColumnsortEvenTest, InfeasibleOverrideRejected) {
  auto w = util::make_workload(64, 8, util::Shape::kEven, 1);
  // 3 does not divide p=8.
  EXPECT_THROW(columnsort_even({.p = 8, .k = 4}, w.inputs, {.columns = 3}),
               std::invalid_argument);
  // 4 columns with only 64 elements: m = 16 >= 4*3 holds, so 4 is fine,
  // but k=2 caps it.
  EXPECT_THROW(columnsort_even({.p = 8, .k = 2}, w.inputs, {.columns = 4}),
               std::invalid_argument);
}

TEST(ColumnsortEvenTest, UnevenInputRejected) {
  std::vector<std::vector<Word>> inputs{{1, 2}, {3}};
  EXPECT_THROW(columnsort_even({.p = 2, .k = 2}, inputs),
               std::invalid_argument);
}

TEST(ColumnsortEvenTest, DummyValueRejected) {
  std::vector<std::vector<Word>> inputs{{1}, {kDummy}};
  EXPECT_THROW(columnsort_even({.p = 2, .k = 2}, inputs),
               std::invalid_argument);
}

TEST(ColumnsortEvenTest, DuplicateValuesSortCorrectly) {
  // The paper assumes distinct elements w.l.o.g.; the implementation handles
  // duplicates directly (comparison sorting needs no tie-breaking).
  std::vector<std::vector<Word>> inputs{
      {5, 5, 1, 1}, {3, 3, 3, 3}, {5, 1, 3, 5}, {2, 2, 4, 4}};
  auto res = columnsort_even({.p = 4, .k = 4}, inputs);
  expect_sorted_outputs(inputs, res.run.outputs);
}

TEST(ColumnsortEvenTest, AlreadySortedAndReversed) {
  const std::size_t p = 8, k = 4, ni = 16;
  std::vector<std::vector<Word>> desc(p), asc(p);
  Word v = static_cast<Word>(p * ni);
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t e = 0; e < ni; ++e) {
      desc[i].push_back(v--);
    }
  }
  for (std::size_t i = 0; i < p; ++i) {
    asc[i] = desc[p - 1 - i];
    std::reverse(asc[i].begin(), asc[i].end());
  }
  for (const auto& inputs : {desc, asc}) {
    auto res = columnsort_even({.p = p, .k = k}, inputs);
    expect_sorted_outputs(inputs, res.run.outputs);
  }
}

TEST(ColumnsortEvenTest, PhaseAccountingPresent) {
  auto w = util::make_workload(256, 16, util::Shape::kEven, 2);
  auto res = columnsort_even({.p = 16, .k = 4}, w.inputs);
  const auto* ph = res.run.stats.phase("even-columnsort");
  ASSERT_NE(ph, nullptr);
  EXPECT_EQ(ph->cycles, res.run.stats.cycles);
  EXPECT_EQ(ph->messages, res.run.stats.messages);
}

TEST(ColumnsortEvenTest, DirectPEqualsKSkipsGatherAndRedistribute) {
  // p == k and k | ni: no padding, so only the four transformation phases
  // cost cycles (gather and redistribute are skipped entirely). Transpose
  // and un-diagonalize need <= m rounds each, the two shifts <= m/2: the
  // whole run fits in 3m cycles.
  const std::size_t ni = 48;
  auto w = util::make_workload(4 * ni, 4, util::Shape::kEven, 3);
  auto res = columnsort_even({.p = 4, .k = 4}, w.inputs);
  EXPECT_EQ(res.column_len, ni);
  EXPECT_LE(res.run.stats.cycles, 3 * ni);
  expect_sorted_outputs(w.inputs, res.run.outputs);
}

TEST(ColumnsortEvenTest, UntransposeVariantSortsDistributed) {
  auto w = util::make_workload(512, 16, util::Shape::kEven, 4);
  auto res = columnsort_even(
      {.p = 16, .k = 4}, w.inputs,
      {.variant = seq::ColumnsortVariant::kUntranspose});
  expect_sorted_outputs(w.inputs, res.run.outputs);
}

TEST(ColumnsortEvenTest, PaperVariantAdmitsMoreColumns) {
  // With n = 512 and k = 8: un-diagonalize allows kk = 8 (m = 64 >= 56);
  // untranspose needs m >= 2*49 = 98, capping kk at 4.
  EXPECT_EQ(choose_columns(512, 8, 8,
                           seq::ColumnsortVariant::kUndiagonalize), 8u);
  EXPECT_LT(choose_columns(512, 8, 8,
                           seq::ColumnsortVariant::kUntranspose), 8u);
}

TEST(ColumnsortEvenTest, PairSortCarriesValues) {
  // Sort (key, value) pairs; values must follow their keys.
  const std::size_t p = 8, ni = 8;
  util::Xoshiro256StarStar rng(17);
  std::vector<std::vector<KV>> inputs(p);
  std::vector<KV> all;
  for (auto& in : inputs) {
    for (std::size_t e = 0; e < ni; ++e) {
      KV kv{rng.uniform(-1000, 1000), rng.uniform(0, 99)};
      in.push_back(kv);
      all.push_back(kv);
    }
  }
  auto res = columnsort_even_pairs({.p = p, .k = 4}, inputs);
  std::sort(all.begin(), all.end(),
            [](const KV& a, const KV& b) { return desc_before(a, b); });
  std::size_t at = 0;
  for (const auto& out : res.outputs) {
    for (const KV& e : out) {
      EXPECT_EQ(e, all[at]) << "rank " << at;
      ++at;
    }
  }
}

}  // namespace
}  // namespace mcb::algo
