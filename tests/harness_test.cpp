// Tests of the parallel trial-sweep harness (src/harness): the determinism
// contract (results and serialized JSON independent of thread count), seed
// derivation, stable trial ordering, the nearest-rank aggregation and the
// error-capture path for infeasible grid points.
#include <gtest/gtest.h>

#include <atomic>
#include <exception>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "harness/sweep.hpp"
#include "harness/thread_pool.hpp"
#include "util/random.hpp"

namespace mcb::harness {
namespace {

Sweep small_sweep() {
  Sweep sweep;
  sweep.ps = {4, 8};
  sweep.ks = {2};
  sweep.ns = {64, 128};
  sweep.shapes = {util::Shape::kEven, util::Shape::kRandom};
  sweep.algorithms = {"auto", "select"};
  sweep.base_seed = 11;
  sweep.seeds = 3;
  return sweep;
}

// The acceptance criterion of the subsystem: the same sweep run with 1, 4
// and hardware_concurrency() threads must produce byte-identical aggregated
// JSON. Completion order differs across these runs; the serialized output
// must not.
TEST(HarnessTest, SweepJsonByteIdenticalAcrossThreadCounts) {
  const auto sweep = small_sweep();
  const auto json1 = sweep_json(run_sweep(sweep, {.threads = 1}));
  const auto json4 = sweep_json(run_sweep(sweep, {.threads = 4}));
  const auto jsonh = sweep_json(
      run_sweep(sweep, {.threads = std::thread::hardware_concurrency()}));
  EXPECT_EQ(json1, json4);
  EXPECT_EQ(json1, jsonh);
  EXPECT_FALSE(json1.empty());
}

TEST(HarnessTest, PerTrialAccountingIdenticalAcrossThreadCounts) {
  const auto sweep = small_sweep();
  const auto a = run_sweep(sweep, {.threads = 1});
  const auto b = run_sweep(sweep, {.threads = 4});
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].cycles, b.results[i].cycles) << "trial " << i;
    EXPECT_EQ(a.results[i].messages, b.results[i].messages) << "trial " << i;
    EXPECT_EQ(a.results[i].peak_aux_words, b.results[i].peak_aux_words);
    EXPECT_EQ(a.results[i].proc_resumes, b.results[i].proc_resumes);
    EXPECT_EQ(a.results[i].error, b.results[i].error);
  }
}

TEST(HarnessTest, TrialSeedMatchesContractAndSpreads) {
  // The documented derivation, verbatim.
  EXPECT_EQ(trial_seed(11, 5), util::splitmix64(11 ^ util::splitmix64(5)));
  // Distinct trials get distinct seeds (a collision over a small range
  // would silently halve the evidence a sweep collects).
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < 1000; ++i) seeds.insert(trial_seed(1, i));
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(HarnessTest, ExpandIsStableAndOrdered) {
  const auto sweep = small_sweep();
  const auto specs = expand(sweep);
  ASSERT_EQ(specs.size(), sweep.trials());
  // Enumeration: points p-major, seeds innermost; trial_index is the
  // position, and the seed depends only on (base_seed, trial_index).
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].trial_index, i);
    EXPECT_EQ(specs[i].point_index, i / sweep.seeds);
    EXPECT_EQ(specs[i].seed_index, i % sweep.seeds);
    EXPECT_EQ(specs[i].seed, trial_seed(sweep.base_seed, i));
  }
  // points() enumerates p, then k, then n, then shape, then algorithm.
  const auto pts = sweep.points();
  ASSERT_EQ(pts.size(), 16u);
  EXPECT_EQ(pts[0].p, 4u);
  EXPECT_EQ(pts[0].algorithm, "auto");
  EXPECT_EQ(pts[1].algorithm, "select");
  EXPECT_EQ(pts[2].shape, util::Shape::kRandom);
  EXPECT_EQ(pts[4].n, 128u);
  EXPECT_EQ(pts[8].p, 8u);
}

TEST(HarnessTest, ExplicitPointsOverrideTheAxes) {
  Sweep sweep;
  sweep.ps = {4, 8, 16};  // would be 3 points...
  sweep.explicit_points = {{.p = 32, .k = 4, .n = 256}};
  ASSERT_EQ(sweep.points().size(), 1u);  // ...but the list wins
  EXPECT_EQ(sweep.points()[0].p, 32u);
}

TEST(HarnessTest, SummarizeUsesNearestRankPercentiles) {
  const auto s = summarize({100.0, 2.0, 4.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean, 22.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);    // ceil(0.5 * 5) = rank 3 -> value 3
  EXPECT_DOUBLE_EQ(s.p95, 100.0);  // ceil(0.95 * 5) = rank 5 -> value 100
  const auto single = summarize({7.0});
  EXPECT_DOUBLE_EQ(single.p50, 7.0);
  EXPECT_DOUBLE_EQ(single.p95, 7.0);
  const auto empty = summarize({});
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
  EXPECT_DOUBLE_EQ(empty.p95, 0.0);
}

TEST(HarnessTest, InfeasiblePointsAreCapturedNotFatal) {
  // k > p violates the model (SimConfig::validate); the trial must record
  // the error deterministically instead of aborting the sweep, and the
  // aggregate must exclude it from the summaries.
  Sweep sweep;
  sweep.explicit_points = {
      {.p = 2, .k = 4, .n = 16, .algorithm = "select"},  // infeasible
      {.p = 8, .k = 2, .n = 64, .algorithm = "select"},  // fine
  };
  sweep.seeds = 2;
  const auto run = run_sweep(sweep, {.threads = 2});
  ASSERT_EQ(run.results.size(), 4u);
  EXPECT_FALSE(run.results[0].ok());
  EXPECT_FALSE(run.results[1].ok());
  EXPECT_EQ(run.results[0].error, run.results[1].error);
  EXPECT_TRUE(run.results[2].ok());
  EXPECT_TRUE(run.results[3].ok());
  ASSERT_EQ(run.aggregates.size(), 2u);
  EXPECT_EQ(run.aggregates[0].trials, 2u);
  EXPECT_EQ(run.aggregates[0].failed, 2u);
  EXPECT_EQ(run.aggregates[1].failed, 0u);
  EXPECT_GT(run.aggregates[1].cycles.mean, 0.0);
}

TEST(HarnessTest, RatiosAgainstTheoryArePopulated) {
  Sweep sweep;
  sweep.ps = {8};
  sweep.ks = {2};
  sweep.ns = {256};
  sweep.algorithms = {"columnsort", "select"};
  sweep.seeds = 2;
  const auto run = run_sweep(sweep);
  ASSERT_EQ(run.aggregates.size(), 2u);
  for (const auto& agg : run.aggregates) {
    EXPECT_EQ(agg.failed, 0u) << agg.point.algorithm;
    EXPECT_GT(agg.cycles_vs_predicted, 0.0) << agg.point.algorithm;
    EXPECT_GT(agg.messages_vs_predicted, 0.0) << agg.point.algorithm;
  }
  for (const auto& r : run.results) {
    EXPECT_GT(r.predicted_cycles, 0.0);
    EXPECT_GT(r.predicted_messages, 0.0);
    EXPECT_FALSE(r.algorithm_used.empty());
  }
}

TEST(HarnessTest, BothEnginesAgreeOnAccounting) {
  auto sweep = small_sweep();
  sweep.engine = Engine::kEventDriven;
  const auto ev = run_sweep(sweep, {.threads = 2});
  sweep.engine = Engine::kReference;
  const auto ref = run_sweep(sweep, {.threads = 2});
  ASSERT_EQ(ev.results.size(), ref.results.size());
  for (std::size_t i = 0; i < ev.results.size(); ++i) {
    EXPECT_EQ(ev.results[i].cycles, ref.results[i].cycles) << "trial " << i;
    EXPECT_EQ(ev.results[i].messages, ref.results[i].messages);
  }
}

TEST(ThreadPoolTest, ResolveThreadsClampsToWork) {
  EXPECT_EQ(resolve_threads(8, 3), 3u);  // never more workers than items
  EXPECT_EQ(resolve_threads(2, 100), 2u);
  EXPECT_GE(resolve_threads(0, 100), 1u);  // 0 = hardware concurrency
  EXPECT_EQ(resolve_threads(4, 0), 1u);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexOnce) {
  std::vector<int> hits(257, 0);
  parallel_for_index(hits.size(), 4,
                     [&](std::size_t i) { hits[i] += 1; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(WorkerPoolTest, RunZeroIsANoOpAndThePoolStaysUsable) {
  WorkerPool pool(4);
  std::atomic<int> calls{0};
  pool.run(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  // An empty batch must not wedge the epoch machinery for the next one.
  pool.run(5, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 5);
}

TEST(WorkerPoolTest, FewerItemsThanWorkersVisitsEachIndexOnce) {
  WorkerPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.run(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

// Straggler-epoch path: a worker that wakes late into a finished batch must
// observe the epoch mismatch in the packed state word and go back to sleep,
// never claiming indices from a later batch with a stale function pointer.
// Many small back-to-back batches (with static batches interleaved, whose
// saturated index half retires dynamic stragglers) make late wakes routine;
// any mis-claimed index shows up as a count != 1, and TSan (tools/ci.sh)
// would flag the stale-pointer call itself.
TEST(WorkerPoolTest, BackToBackBatchesNeverLeakAcrossEpochs) {
  WorkerPool pool(4);
  std::vector<std::atomic<int>> hits(17);
  std::atomic<int> static_calls{0};
  for (int round = 0; round < 500; ++round) {
    const std::size_t n = 1 + static_cast<std::size_t>(round) % hits.size();
    for (auto& h : hits) h.store(0, std::memory_order_relaxed);
    pool.run(n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), i < n ? 1 : 0)
          << "round " << round << " index " << i;
    }
    if (round % 7 == 0) {
      pool.run_static([&](std::size_t) { static_calls.fetch_add(1); });
    }
  }
  EXPECT_EQ(static_calls.load(), (500 / 7 + 1) * 4);
}

TEST(WorkerPoolTest, StaticBatchPinsEachLaneToItsThread) {
  WorkerPool pool(4);
  std::vector<std::thread::id> first(4);
  pool.run_static([&](std::size_t lane) {
    first[lane] = std::this_thread::get_id();
  });
  EXPECT_EQ(first[0], std::this_thread::get_id());  // lane 0 is the caller
  std::set<std::thread::id> distinct(first.begin(), first.end());
  EXPECT_EQ(distinct.size(), 4u);
  // Sticky affinity: every later static batch runs lane w on the same
  // thread as the first (this is what makes stripe->lane caching work).
  for (int round = 0; round < 50; ++round) {
    std::vector<std::thread::id> seen(4);
    pool.run_static([&](std::size_t lane) {
      seen[lane] = std::this_thread::get_id();
    });
    ASSERT_EQ(seen, first) << "round " << round;
  }
}

// The no-throw contract in practice: fn captures its own failures into
// per-lane slots (exactly what the parallel engine's stripes do). Every
// lane failing at once must leave the pool reusable, with every failure
// observable by the caller afterwards.
TEST(WorkerPoolTest, EveryLaneFailingIsCapturedAndThePoolSurvives) {
  WorkerPool pool(4);
  std::vector<std::exception_ptr> errors(4);
  pool.run_static([&](std::size_t lane) {
    try {
      throw std::runtime_error("lane " + std::to_string(lane));
    } catch (...) {
      errors[lane] = std::current_exception();
    }
  });
  for (std::size_t lane = 0; lane < errors.size(); ++lane) {
    ASSERT_TRUE(errors[lane] != nullptr) << "lane " << lane;
    try {
      std::rethrow_exception(errors[lane]);
      FAIL() << "expected a runtime_error";
    } catch (const std::runtime_error& e) {
      EXPECT_EQ(std::string(e.what()), "lane " + std::to_string(lane));
    }
  }
  std::atomic<int> calls{0};
  pool.run(8, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 8);
}

TEST(WorkerPoolTest, SingleLanePoolRunsEverythingInline) {
  WorkerPool pool(1);
  EXPECT_EQ(pool.workers(), 1u);
  std::vector<std::thread::id> tids;
  pool.run(3, [&](std::size_t) { tids.push_back(std::this_thread::get_id()); });
  pool.run_static([&](std::size_t lane) {
    EXPECT_EQ(lane, 0u);
    tids.push_back(std::this_thread::get_id());
  });
  ASSERT_EQ(tids.size(), 4u);
  for (const auto& id : tids) EXPECT_EQ(id, std::this_thread::get_id());
}

}  // namespace
}  // namespace mcb::harness
