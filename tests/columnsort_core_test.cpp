// Unit tests of the shared Columnsort core internals: CorePlan and
// EvenSortPlan construction invariants, and the pair-carrying transform
// machinery driven directly on a minimal network.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "algo/columnsort_core.hpp"
#include "algo/columnsort_even.hpp"
#include "mcb/network.hpp"
#include "util/random.hpp"

namespace mcb::algo {
namespace {

TEST(CorePlanTest, BuildInvariants) {
  for (auto [m, kk] : std::vector<std::pair<std::size_t, std::size_t>>{
           {12, 4}, {64, 8}, {240, 6}}) {
    auto plan = detail::CorePlan::build(m, kk);
    EXPECT_EQ(plan.m, m);
    EXPECT_EQ(plan.kk, kk);
    Cycle sum = 0;
    for (std::size_t t = 0; t < 4; ++t) {
      EXPECT_EQ(plan.tables[t].size(), m * kk) << "transform " << t;
      EXPECT_TRUE(sched::is_permutation_table(plan.tables[t]));
      EXPECT_LE(plan.plans[t].cycles(), m);  // Koenig bound
      sum += plan.plans[t].cycles();
    }
    EXPECT_EQ(plan.core_cycles, sum);
  }
}

TEST(CorePlanTest, SingleColumnIsFree) {
  auto plan = detail::CorePlan::build(17, 1);
  EXPECT_EQ(plan.core_cycles, 0u);
}

TEST(CorePlanTest, InvalidDimensionsRejected) {
  EXPECT_THROW(detail::CorePlan::build(4, 3), std::invalid_argument);
  EXPECT_THROW(detail::CorePlan::build(9, 2), std::invalid_argument);
}

TEST(CorePlanTest, SortColumnDescOrdersByKeyThenValue) {
  std::vector<KV> col{{3, 1}, {5, 0}, {3, 9}, {5, 2}, {-1, 7}};
  detail::sort_column_desc(col);
  const std::vector<KV> expect{{5, 2}, {5, 0}, {3, 9}, {3, 1}, {-1, 7}};
  EXPECT_EQ(col, expect);
}

TEST(EvenSortPlanTest, FieldConsistency) {
  auto plan = EvenSortPlan::build(16, 4, 32);
  EXPECT_EQ(plan.p, 16u);
  EXPECT_EQ(plan.n, 512u);
  EXPECT_EQ(plan.kk, 4u);
  EXPECT_EQ(plan.g, 4u);
  EXPECT_EQ(plan.core.m, 128u);
  EXPECT_TRUE(plan.redistribute);  // g > 1

  // p == kk and kk | ni: no redistribution needed.
  auto direct = EvenSortPlan::build(4, 4, 48);
  EXPECT_FALSE(direct.redistribute);
}

TEST(EvenSortPlanTest, RejectsBadParameters) {
  EXPECT_THROW(EvenSortPlan::build(4, 8, 16), std::invalid_argument);  // k>p
  EXPECT_THROW(EvenSortPlan::build(8, 4, 0), std::invalid_argument);  // ni=0
  EXPECT_THROW(EvenSortPlan::build(8, 4, 16, 3),
               std::invalid_argument);  // 3 does not divide p
}

TEST(EvenSortPlanTest, CollectiveCycleCountIsDeterministic) {
  // Two runs of the collective on different data must use identical cycle
  // counts — the property the selection loop relies on for lockstep.
  const auto plan = EvenSortPlan::build(8, 2, 4);
  auto run_once = [&plan](std::uint64_t seed) {
    util::Xoshiro256StarStar rng(seed);
    Network net({.p = 8, .k = 2});
    auto prog = [](Proc& self, const EvenSortPlan& pl,
                   std::vector<KV> data) -> ProcMain {
      co_await columnsort_even_collective(self, pl, data);
    };
    for (ProcId i = 0; i < 8; ++i) {
      std::vector<KV> data(4);
      for (auto& kv : data) kv = KV{rng.uniform(-99, 99), 0};
      net.install(i, prog(net.proc(i), plan, std::move(data)));
    }
    return net.run().cycles;
  };
  EXPECT_EQ(run_once(1), run_once(999));
}

TEST(RunTransformTest, TransformsMatchPermutationTables) {
  // Drive one transform directly on a p == kk network and compare against
  // the permutation table applied in memory.
  const std::size_t m = 12, kk = 4;
  auto plan = detail::CorePlan::build(m, kk);
  util::Xoshiro256StarStar rng(5);
  std::vector<std::vector<KV>> columns(kk, std::vector<KV>(m));
  std::vector<KV> flat(m * kk);
  for (std::size_t c = 0; c < kk; ++c) {
    for (std::size_t r = 0; r < m; ++r) {
      columns[c][r] = KV{rng.uniform(-999, 999),
                         static_cast<Word>(c * m + r)};
      flat[c * m + r] = columns[c][r];
    }
  }
  for (std::size_t t = 0; t < 4; ++t) {
    Network net({.p = kk, .k = kk});
    auto work = columns;  // fresh copy per transform
    auto prog = [](Proc& self, const detail::CorePlan& pl, std::size_t tt,
                   std::vector<KV>& col) -> ProcMain {
      co_await detail::run_transform(self, pl, tt, self.id(), col);
    };
    for (ProcId c = 0; c < kk; ++c) {
      net.install(c, prog(net.proc(c), plan, t, work[c]));
    }
    net.run();
    for (std::size_t src = 0; src < m * kk; ++src) {
      const std::size_t dst = plan.tables[t][src];
      EXPECT_EQ(work[dst / m][dst % m], flat[src])
          << "transform " << t << " src " << src;
    }
  }
}

}  // namespace
}  // namespace mcb::algo
