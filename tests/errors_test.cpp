// Error-path tests: simulator faults must carry accurate, machine-usable
// identity (cycle, channel, processor ids) and identical formatting on ALL
// engines — a debugging report that names the wrong cycle is worse than no
// report. The parallel engine reports collisions from its serial staged-
// write commit, a different code path from the serial engines' slot scans,
// so it is in every loop here. Exercises CollisionError and ProtocolError through deliberately
// faulty protocols.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "mcb/errors.hpp"
#include "mcb/network.hpp"

namespace mcb {
namespace {

ProcMain delayed_write(Proc& self, Cycle delay, ChannelId ch, Word v) {
  co_await self.skip(delay);
  co_await self.write(ch, Message::of(v));
}

ProcMain idle(Proc& self, Cycle steps) {
  co_await self.skip(steps);
}

/// Runs a 4-processor network where P2 and P4 both write channel 1 in cycle
/// 3, and returns the fault.
CollisionError collide(Engine engine) {
  Network net({.p = 4, .k = 2, .engine = engine});
  net.install(0, idle(net.proc(0), 5));
  net.install(1, delayed_write(net.proc(1), 3, 1, 10));
  net.install(2, idle(net.proc(2), 5));
  net.install(3, delayed_write(net.proc(3), 3, 1, 20));
  try {
    net.run();
  } catch (const CollisionError& e) {
    return e;
  }
  throw std::runtime_error("expected CollisionError");
}

TEST(ErrorsTest, CollisionCarriesExactIdentityOnBothEngines) {
  for (auto engine : {Engine::kEventDriven, Engine::kReference, Engine::kParallel}) {
    auto e = collide(engine);
    EXPECT_EQ(e.cycle(), 3u);
    EXPECT_EQ(e.channel(), 1u);
    EXPECT_EQ(e.first_writer(), 1u);
    EXPECT_EQ(e.second_writer(), 3u);
  }
}

TEST(ErrorsTest, CollisionMessageNamesEverythingOneBased) {
  // The formatted message uses the 1-based P/C convention of the paper and
  // of every other report in the repo.
  auto e = collide(Engine::kEventDriven);
  EXPECT_STREQ(e.what(),
               "write collision on channel C2 in cycle 3 between P2 and P4");
}

TEST(ErrorsTest, CollisionIdenticalAcrossEngines) {
  auto ev = collide(Engine::kEventDriven);
  for (auto engine : {Engine::kReference, Engine::kParallel}) {
    auto other = collide(engine);
    EXPECT_STREQ(ev.what(), other.what());
    EXPECT_EQ(ev.cycle(), other.cycle());
    EXPECT_EQ(ev.channel(), other.channel());
    EXPECT_EQ(ev.first_writer(), other.first_writer());
    EXPECT_EQ(ev.second_writer(), other.second_writer());
  }
}

TEST(ErrorsTest, FirstWriterIsLowestProcessorId) {
  // Installation/scan order must not leak into the report: the first writer
  // is the lowest-id processor regardless of engine scheduling.
  for (auto engine : {Engine::kEventDriven, Engine::kReference, Engine::kParallel}) {
    Network net({.p = 3, .k = 1, .engine = engine});
    net.install(0, delayed_write(net.proc(0), 0, 0, 1));
    net.install(1, delayed_write(net.proc(1), 0, 0, 2));
    net.install(2, delayed_write(net.proc(2), 0, 0, 3));
    try {
      net.run();
      FAIL() << "expected CollisionError";
    } catch (const CollisionError& e) {
      EXPECT_EQ(e.cycle(), 0u);
      EXPECT_EQ(e.first_writer(), 0u);
      EXPECT_GT(e.second_writer(), e.first_writer());
    }
  }
}

TEST(ErrorsTest, MaxCyclesProtocolErrorOnBothEngines) {
  for (auto engine : {Engine::kEventDriven, Engine::kReference, Engine::kParallel}) {
    Network net({.p = 2, .k = 1, .max_cycles = 16, .engine = engine});
    net.install(0, idle(net.proc(0), 1000));
    net.install(1, idle(net.proc(1), 1000));
    try {
      net.run();
      FAIL() << "expected ProtocolError";
    } catch (const ProtocolError& e) {
      // The message must name the limit so a user can act on it.
      EXPECT_NE(std::string(e.what()).find("max_cycles=16"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(ErrorsTest, FaultsAreSimErrors) {
  // Both fault types share the SimError base, so harnesses can catch the
  // family without enumerating it.
  for (auto engine : {Engine::kEventDriven, Engine::kReference, Engine::kParallel}) {
    Network net({.p = 2, .k = 1, .engine = engine});
    net.install(0, delayed_write(net.proc(0), 0, 0, 1));
    net.install(1, delayed_write(net.proc(1), 0, 0, 2));
    EXPECT_THROW(net.run(), SimError);
  }
}

}  // namespace
}  // namespace mcb
