// Tests of the sequential sorting substrate against std oracles.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "seq/sorting.hpp"
#include "util/random.hpp"

namespace mcb::seq {
namespace {

std::vector<Word> random_vec(std::size_t n, std::uint64_t seed,
                             std::int64_t lo = -1000, std::int64_t hi = 1000) {
  util::Xoshiro256StarStar rng(seed);
  std::vector<Word> v(n);
  for (auto& x : v) x = rng.uniform(lo, hi);
  return v;
}

using SortFn = void (*)(std::span<Word>, std::greater<Word>);

struct SortCase {
  const char* name;
  SortFn fn;
};

class SortAlgoTest : public ::testing::TestWithParam<SortCase> {};

TEST_P(SortAlgoTest, MatchesOracleOnRandomInputs) {
  for (std::size_t n : {0u, 1u, 2u, 3u, 7u, 24u, 25u, 100u, 1000u}) {
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      auto v = random_vec(n, seed * 77 + n);
      auto expect = v;
      std::sort(expect.begin(), expect.end(), std::greater<Word>{});
      GetParam().fn(std::span<Word>(v), std::greater<Word>{});
      EXPECT_EQ(v, expect) << GetParam().name << " n=" << n
                           << " seed=" << seed;
    }
  }
}

TEST_P(SortAlgoTest, HandlesAdversarialShapes) {
  for (std::size_t n : {64u, 257u}) {
    std::vector<std::vector<Word>> shapes;
    std::vector<Word> asc(n), desc(n), equal(n, 5), organ(n);
    for (std::size_t i = 0; i < n; ++i) {
      asc[i] = static_cast<Word>(i);
      desc[i] = static_cast<Word>(n - i);
      organ[i] = static_cast<Word>(std::min(i, n - i));
    }
    shapes = {asc, desc, equal, organ};
    for (auto& v : shapes) {
      auto expect = v;
      std::sort(expect.begin(), expect.end(), std::greater<Word>{});
      GetParam().fn(std::span<Word>(v), std::greater<Word>{});
      EXPECT_EQ(v, expect) << GetParam().name << " n=" << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, SortAlgoTest,
    ::testing::Values(
        SortCase{"insertion", &insertion_sort<Word, std::greater<Word>>},
        SortCase{"heap", &heap_sort<Word, std::greater<Word>>},
        SortCase{"merge", &merge_sort<Word, std::greater<Word>>},
        SortCase{"intro", &intro_sort<Word, std::greater<Word>>}),
    [](const auto& pinfo) { return pinfo.param.name; });

TEST(SortingTest, AscendingHelper) {
  auto v = random_vec(500, 9);
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  sort_ascending(v);
  EXPECT_EQ(v, expect);
}

TEST(SortingTest, DescendingHelper) {
  auto v = random_vec(500, 10);
  auto expect = v;
  std::sort(expect.begin(), expect.end(), std::greater<Word>{});
  sort_descending(v);
  EXPECT_EQ(v, expect);
  EXPECT_TRUE(is_sorted_descending(v));
}

TEST(SortingTest, IsSortedDescendingDetectsViolation) {
  std::vector<Word> v{5, 4, 4, 3};
  EXPECT_TRUE(is_sorted_descending(v));
  v.push_back(9);
  EXPECT_FALSE(is_sorted_descending(v));
  EXPECT_TRUE(is_sorted_descending(std::span<const Word>{}));
}

TEST(SortingTest, MergeSortIsStable) {
  // Sort pairs by first component only; second component records input
  // order and must be preserved among equal keys.
  struct P {
    int key;
    int tag;
    bool operator==(const P&) const = default;
  };
  util::Xoshiro256StarStar rng(3);
  std::vector<P> v(300);
  for (int i = 0; i < 300; ++i) {
    v[static_cast<std::size_t>(i)] = {
        static_cast<int>(rng.uniform(0, 9)), i};
  }
  auto expect = v;
  std::stable_sort(expect.begin(), expect.end(),
                   [](const P& a, const P& b) { return a.key < b.key; });
  merge_sort(std::span<P>(v), [](const P& a, const P& b) {
    return a.key < b.key;
  });
  EXPECT_EQ(v, expect);
}

}  // namespace
}  // namespace mcb::seq
