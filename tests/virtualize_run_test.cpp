// Tests of the executable virtualization (Section 2's simulation lemma,
// run for real): a recorded MCB(p', k') computation is replayed through
// relay processors on a smaller MCB(p, k), with every delivery verified
// and the closed-form cost matched exactly.
#include <gtest/gtest.h>

#include "algo/columnsort_even.hpp"
#include "algo/partial_sums.hpp"
#include "mcb/virtualize.hpp"
#include "util/workload.hpp"

namespace mcb {
namespace {

TEST(VirtualizedRunTest, IdentityHostingIsExact) {
  // real == virtual: overhead 1, message count unchanged.
  auto res = run_virtualized(
      {.p = 4, .k = 2}, {.p = 4, .k = 2}, [](Network& net) {
        auto prog = [](Proc& self) -> ProcMain {
          auto ps = co_await algo::partial_sums(
              self, static_cast<Word>(self.id()), algo::SumOp::add(),
              {.with_total = true});
          (void)ps;
        };
        for (ProcId i = 0; i < 4; ++i) net.install(i, prog(net.proc(i)));
      });
  EXPECT_EQ(res.real_stats.cycles, res.virtual_stats.cycles);
  EXPECT_EQ(res.real_stats.messages, res.virtual_stats.messages);
}

TEST(VirtualizedRunTest, ChannelOnlyVirtualization) {
  // p' == p, k' = 4k: overhead exactly k'/k (the paper's bound).
  auto res = run_virtualized(
      {.p = 8, .k = 2}, {.p = 8, .k = 8}, [](Network& net) {
        auto w = util::make_workload(64, 8, util::Shape::kEven, 1);
        // A columnsort needs per-proc output storage that outlives install;
        // use a simpler traffic generator: rotate messages around all 8
        // channels for 10 cycles.
        auto prog = [](Proc& self, std::vector<Word> vals) -> ProcMain {
          for (std::size_t t = 0; t < vals.size(); ++t) {
            const auto wch = static_cast<ChannelId>(self.id());
            const auto rch =
                static_cast<ChannelId>((self.id() + t + 1) % self.k());
            auto got = co_await self.write_read(
                wch, Message::of(vals[t]), rch);
            (void)got;
          }
        };
        for (ProcId i = 0; i < 8; ++i) {
          net.install(i, prog(net.proc(i), w.inputs[i]));
        }
      });
  EXPECT_EQ(res.predicted.hosts, 1u);
  EXPECT_EQ(res.predicted.channel_mux, 4u);
  EXPECT_EQ(res.real_stats.cycles, 4 * res.virtual_stats.cycles);
  EXPECT_EQ(res.real_stats.messages, res.virtual_stats.messages);
}

TEST(VirtualizedRunTest, HostedProcessorsPayQuadratic) {
  // p' = 4p: h = 4, so h^2 * c subrounds per cycle and 4 copies of every
  // message. The run_virtualized internals verify every delivery; here we
  // check the accounting contract.
  auto res = run_virtualized(
      {.p = 2, .k = 1}, {.p = 8, .k = 2}, [](Network& net) {
        auto w = util::make_workload(32, 8, util::Shape::kEven, 2);
        auto prog = [](Proc& self, std::vector<Word> vals) -> ProcMain {
          // Neighbour ring exchange on two channels.
          for (Word v : vals) {
            const auto wch = static_cast<ChannelId>(self.id() % 2);
            if (self.id() < 2) {
              co_await self.write(wch, Message::of(v));
            } else {
              co_await self.read(static_cast<ChannelId>(self.id() % 2));
            }
          }
        };
        for (ProcId i = 0; i < 8; ++i) {
          net.install(i, prog(net.proc(i), w.inputs[i]));
        }
      });
  EXPECT_EQ(res.predicted.hosts, 4u);
  EXPECT_EQ(res.predicted.channel_mux, 2u);
  EXPECT_EQ(res.real_stats.cycles, 32 * res.virtual_stats.cycles);
  EXPECT_EQ(res.real_stats.messages, 4 * res.virtual_stats.messages);
}

TEST(VirtualizedRunTest, HostsAWholeColumnsort) {
  // End to end: a full distributed sort on MCB(16,4), hosted on MCB(4,2).
  auto w = util::make_workload(256, 16, util::Shape::kEven, 3);
  std::vector<std::vector<Word>> outputs(16);
  auto res = run_virtualized(
      {.p = 4, .k = 2}, {.p = 16, .k = 4}, [&](Network& net) {
        // Reuse the pair collective through a plain program.
        static const auto plan = algo::EvenSortPlan::build(16, 4, 16);
        auto prog = [](Proc& self, const std::vector<Word>& in,
                       std::vector<Word>& out) -> ProcMain {
          std::vector<algo::KV> kv;
          kv.reserve(in.size());
          for (Word v : in) kv.push_back(algo::KV{v, 0});
          co_await algo::columnsort_even_collective(self, plan, kv);
          out.clear();
          for (const auto& e : kv) out.push_back(e.key);
        };
        for (ProcId i = 0; i < 16; ++i) {
          net.install(i, prog(net.proc(i), w.inputs[i], outputs[i]));
        }
      });
  // The virtual computation really sorted...
  Word prev = outputs[0][0];
  for (const auto& out : outputs) {
    for (Word v : out) {
      ASSERT_LE(v, prev);
      prev = v;
    }
  }
  // ... and the hosted execution carried it within the predicted budget.
  EXPECT_EQ(res.predicted.hosts, 4u);
  EXPECT_EQ(res.real_stats.cycles,
            res.virtual_stats.cycles * 4 * 4 * 2);
}

TEST(VirtualizedRunTest, RejectsNonDividingShapes) {
  EXPECT_THROW(run_virtualized({.p = 3, .k = 1}, {.p = 8, .k = 2},
                               [](Network&) {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace mcb
