// Tests of the transformation permutations (Section 5.1, Figure 1) and the
// reference in-memory Columnsort, including an empirical sweep of the
// dimension-validity region m >= k(k-1).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "seq/columnsort.hpp"
#include "seq/matrix.hpp"
#include "sched/permutation.hpp"
#include "util/random.hpp"

namespace mcb {
namespace {

using sched::Transform;

std::vector<Word> iota_matrix(std::size_t m, std::size_t k) {
  std::vector<Word> v(m * k);
  std::iota(v.begin(), v.end(), Word{0});
  return v;
}

// --- permutation properties -------------------------------------------------

class TransformTest
    : public ::testing::TestWithParam<std::tuple<Transform, std::size_t,
                                                 std::size_t>> {};

TEST_P(TransformTest, TableIsAPermutation) {
  auto [t, m, k] = GetParam();
  auto table = sched::permutation_table(t, m, k);
  EXPECT_TRUE(sched::is_permutation_table(table))
      << sched::to_string(t) << " m=" << m << " k=" << k;
}

TEST_P(TransformTest, TableMatchesPointQueries) {
  auto [t, m, k] = GetParam();
  auto table = sched::permutation_table(t, m, k);
  for (std::size_t ell = 0; ell < m * k; ++ell) {
    EXPECT_EQ(table[ell], sched::transform_index(t, ell, m, k)) << ell;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Dims, TransformTest,
    ::testing::Combine(::testing::Values(Transform::kTranspose,
                                         Transform::kUndiagonalize,
                                         Transform::kUpShift,
                                         Transform::kDownShift,
                                         Transform::kUntranspose),
                       ::testing::Values<std::size_t>(4, 8, 12, 20),
                       ::testing::Values<std::size_t>(2, 4)),
    [](const auto& pinfo) {
      return std::string(1,
                         "TUSDN"[static_cast<int>(std::get<0>(pinfo.param))]) +
             "_m" + std::to_string(std::get<1>(pinfo.param)) + "_k" +
             std::to_string(std::get<2>(pinfo.param));
    });

TEST(TransformTest, UpDownShiftAreInverses) {
  for (std::size_t m : {4u, 10u}) {
    for (std::size_t k : {2u, 5u}) {
      auto up = sched::permutation_table(Transform::kUpShift, m, k);
      auto down = sched::permutation_table(Transform::kDownShift, m, k);
      for (std::size_t i = 0; i < m * k; ++i) {
        EXPECT_EQ(down[up[i]], i);
      }
    }
  }
}

TEST(TransformTest, TransposeReadsColumnsWritesRows) {
  // 4x2 matrix, columns [0,1,2,3] and [4,5,6,7]: reading column-major gives
  // 0..7; writing row-major into 4x2 means element q lands at row q/2,
  // col q%2.
  const std::size_t m = 4, k = 2;
  auto data = iota_matrix(m, k);
  seq::apply_transform(Transform::kTranspose, data, m, k);
  seq::ColMatrix mat(data, m, k);
  for (std::size_t q = 0; q < 8; ++q) {
    EXPECT_EQ(mat.at(q / k, q % k), static_cast<Word>(q));
  }
}

TEST(TransformTest, UndiagonalizeMatchesPaperOrder) {
  // Section 5.1: elements taken in (column,row) order (1,1),(2,1),(1,2),
  // (3,1),(2,2),(1,3),... and stored column after column. With a 4x3 iota
  // matrix (column-major values = linear index), the first stored column
  // must be the first m elements of that diagonal enumeration.
  const std::size_t m = 4, k = 3;
  auto data = iota_matrix(m, k);
  seq::apply_transform(Transform::kUndiagonalize, data, m, k);
  seq::ColMatrix mat(data, m, k);
  // Diagonal enumeration of source cells (c,r) 0-based, c descending:
  // d=0:(0,0)  d=1:(1,0),(0,1)  d=2:(2,0),(1,1),(0,2)  d=3:(2,1),(1,2),(0,3)
  // d=4:(2,2),(1,3)  d=5:(2,3)
  // Source linear values (c*m+r): 0 | 4,1 | 8,5,2 | 9,6,3 | 10,7 | 11.
  const std::vector<Word> expected{0, 4, 1, 8, 5, 2, 9, 6, 3, 10, 7, 11};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(mat.at(i % m, i / m), expected[i]) << "position " << i;
  }
}

TEST(TransformTest, UpShiftMovesBottomHalfToNextColumn) {
  const std::size_t m = 4, k = 3;
  auto data = iota_matrix(m, k);
  seq::apply_transform(Transform::kUpShift, data, m, k);
  seq::ColMatrix mat(data, m, k);
  // Shift by floor(m/2)=2 in ascending column-major direction; the last 2
  // elements (10, 11) wrap to the start.
  EXPECT_EQ(mat.at(0, 0), 10);
  EXPECT_EQ(mat.at(1, 0), 11);
  EXPECT_EQ(mat.at(2, 0), 0);
  EXPECT_EQ(mat.at(3, 0), 1);
  EXPECT_EQ(mat.at(0, 1), 2);
  EXPECT_EQ(mat.at(3, 2), 9);
}

TEST(TransformTest, TransposeRequiresDivisibility) {
  EXPECT_THROW(sched::transform_index(Transform::kTranspose, 0, 5, 2),
               std::invalid_argument);
}

// --- Columnsort correctness -------------------------------------------------

void expect_sorts(std::size_t m, std::size_t k, std::uint64_t seed) {
  util::Xoshiro256StarStar rng(seed);
  std::vector<Word> v(m * k);
  for (auto& x : v) x = rng.uniform(-10000, 10000);
  auto expect = v;
  std::sort(expect.begin(), expect.end(), std::greater<Word>{});
  seq::columnsort(v, m, k);
  EXPECT_EQ(v, expect) << "m=" << m << " k=" << k << " seed=" << seed;
}

TEST(ColumnsortTest, SortsAtMinimumValidDimensions) {
  // m = k(k-1) exactly, the paper's boundary, padded up to a multiple of k.
  for (std::size_t k : {2u, 3u, 4u, 5u, 8u}) {
    std::size_t m = k * (k - 1);
    m = (m + k - 1) / k * k;  // k | m
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      expect_sorts(m, k, seed);
    }
  }
}

TEST(ColumnsortTest, SortsAtComfortableDimensions) {
  for (auto [m, k] : std::vector<std::pair<std::size_t, std::size_t>>{
           {8, 2}, {16, 4}, {64, 4}, {56, 7}, {256, 8}, {240, 6}}) {
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      expect_sorts(m, k, seed);
    }
  }
}

TEST(ColumnsortTest, SingleColumnDegenerates) {
  expect_sorts(17, 1, 0);
}

TEST(ColumnsortTest, AllEqualAndAlreadySorted) {
  const std::size_t m = 16, k = 4;
  std::vector<Word> equal(m * k, 3);
  seq::columnsort(equal, m, k);
  EXPECT_TRUE(std::all_of(equal.begin(), equal.end(),
                          [](Word w) { return w == 3; }));

  std::vector<Word> sorted(m * k);
  std::iota(sorted.begin(), sorted.end(), Word{0});
  std::reverse(sorted.begin(), sorted.end());
  auto expect = sorted;
  seq::columnsort(sorted, m, k);
  EXPECT_EQ(sorted, expect);
}

TEST(ColumnsortTest, RejectsInvalidDimensions) {
  std::vector<Word> v(12);
  EXPECT_THROW(seq::columnsort(v, 4, 3), std::invalid_argument);  // m < k(k-1)
  std::vector<Word> w(14);
  EXPECT_THROW(seq::columnsort(w, 7, 2), std::invalid_argument);  // k !| m
  std::vector<Word> x(10);
  EXPECT_THROW(seq::columnsort(x, 4, 2), std::invalid_argument);  // size wrong
}

TEST(ColumnsortTest, DimsOkPredicate) {
  EXPECT_TRUE(seq::columnsort_dims_ok(2, 2));
  EXPECT_TRUE(seq::columnsort_dims_ok(17, 1));
  EXPECT_FALSE(seq::columnsort_dims_ok(4, 3));   // m < k(k-1)
  EXPECT_FALSE(seq::columnsort_dims_ok(9, 2));   // k does not divide m
  EXPECT_FALSE(seq::columnsort_dims_ok(0, 1));
}

// --- variant ablation: Leighton's untranspose vs the paper's choice --------

void expect_sorts_variant(std::size_t m, std::size_t k,
                          seq::ColumnsortVariant variant,
                          std::uint64_t seed) {
  util::Xoshiro256StarStar rng(seed);
  std::vector<Word> v(m * k);
  for (auto& x : v) x = rng.uniform(-10000, 10000);
  auto expect = v;
  std::sort(expect.begin(), expect.end(), std::greater<Word>{});
  seq::columnsort(v, m, k, variant);
  EXPECT_EQ(v, expect) << "m=" << m << " k=" << k << " seed=" << seed;
}

TEST(ColumnsortVariantTest, UntransposeSortsAtItsOwnBoundary) {
  // Leighton's variant needs m >= 2(k-1)^2.
  for (std::size_t k : {2u, 3u, 4u, 6u}) {
    std::size_t m = 2 * (k - 1) * (k - 1);
    m = (m + k - 1) / k * k;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      expect_sorts_variant(m, k, seq::ColumnsortVariant::kUntranspose, seed);
    }
  }
}

TEST(ColumnsortVariantTest, UntransposeRejectedBelowItsBoundary) {
  // m = k(k-1) is enough for un-diagonalize but not for untranspose
  // (for k >= 4, k(k-1) < 2(k-1)^2).
  const std::size_t k = 4, m = k * (k - 1);  // 12 < 18
  EXPECT_TRUE(seq::columnsort_dims_ok(m, k,
                                      seq::ColumnsortVariant::kUndiagonalize));
  EXPECT_FALSE(seq::columnsort_dims_ok(m, k,
                                       seq::ColumnsortVariant::kUntranspose));
  std::vector<Word> v(m * k, 0);
  EXPECT_THROW(
      seq::columnsort(v, m, k, seq::ColumnsortVariant::kUntranspose),
      std::invalid_argument);
}

TEST(ColumnsortVariantTest, UntransposeIsInverseOfTranspose) {
  for (auto [m, k] : std::vector<std::pair<std::size_t, std::size_t>>{
           {8, 2}, {16, 4}, {36, 6}}) {
    auto t = sched::permutation_table(sched::Transform::kTranspose, m, k);
    auto u = sched::permutation_table(sched::Transform::kUntranspose, m, k);
    for (std::size_t i = 0; i < m * k; ++i) {
      EXPECT_EQ(u[t[i]], i);
      EXPECT_EQ(t[u[i]], i);
    }
  }
}

TEST(ColumnsortVariantTest, BothVariantsAgreeWhereBothValid) {
  const std::size_t k = 4, m = 32;  // 32 >= 2*9 = 18 and >= 12
  util::Xoshiro256StarStar rng(8);
  std::vector<Word> a(m * k);
  for (auto& x : a) x = rng.uniform(-500, 500);
  auto b = a;
  seq::columnsort(a, m, k, seq::ColumnsortVariant::kUndiagonalize);
  seq::columnsort(b, m, k, seq::ColumnsortVariant::kUntranspose);
  EXPECT_EQ(a, b);
}

// Property sweep: every valid (m, k) in a grid sorts random inputs. This is
// the empirical check of the paper's claim that m >= k(k-1) suffices.
class ColumnsortSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(ColumnsortSweep, Sorts) {
  auto [m, k] = GetParam();
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    expect_sorts(m, k, seed);
  }
}

std::vector<std::pair<std::size_t, std::size_t>> valid_grid() {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (std::size_t k = 2; k <= 6; ++k) {
    for (std::size_t mult = 1; mult <= 3; ++mult) {
      std::size_t m = k * (k - 1) * mult;
      m = (m + k - 1) / k * k;
      out.emplace_back(m, k);
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Grid, ColumnsortSweep,
                         ::testing::ValuesIn(valid_grid()),
                         [](const auto& pinfo) {
                           return "m" + std::to_string(pinfo.param.first) +
                                  "_k" + std::to_string(pinfo.param.second);
                         });

}  // namespace
}  // namespace mcb
