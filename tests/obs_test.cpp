// Tests of the run-telemetry layer (src/obs): span recording and
// reconciliation against PhaseStats, the bounded-memory channel timeline,
// the metrics registry, the Chrome trace-event exporter and the report
// sparkline. The span/phase reconciliation tests are the load-bearing ones:
// spans and PhaseStats are two independent accounting paths over the same
// engine counters, so exact agreement across the whole algorithm x engine
// grid pins both.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "algo/selection.hpp"
#include "algo/sort.hpp"
#include "check/conformance.hpp"
#include "mcb/network.hpp"
#include "mcb/stats.hpp"
#include "mcb/trace.hpp"
#include "obs/clock.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "obs/timeline.hpp"
#include "util/json.hpp"
#include "util/workload.hpp"

namespace mcb::obs {
namespace {

using algo::SortAlgorithm;

struct Instrumented {
  RunStats stats;
  Recorder recorder;
  Timeline timeline;
  std::uint64_t cycles_checked = 0;

  Instrumented(std::size_t k, std::size_t max_buckets = 256)
      : timeline(k, max_buckets) {}
};

/// Runs one algorithm with the full telemetry stack attached: recorder via
/// SimConfig::span_sink, timeline chained behind a conformance checker (the
/// same tee-free chaining mcbsim uses).
void run_instrumented(Instrumented& out, SimConfig cfg,
                      const std::vector<std::vector<Word>>& inputs,
                      SortAlgorithm algorithm) {
  cfg.span_sink = &out.recorder;
  check::ConformanceChecker checker(cfg, &out.timeline);
  if (algorithm == SortAlgorithm::kAuto) {
    auto res = algo::select_median(cfg, inputs, {}, &checker);
    out.stats = res.stats;
  } else {
    auto res = algo::sort(cfg, inputs, {.algorithm = algorithm}, &checker);
    out.stats = res.run.stats;
  }
  const auto& rep = checker.finish(out.stats);
  ASSERT_TRUE(rep.ok()) << rep.summary();
  out.cycles_checked = rep.cycles_checked;
  out.timeline.finalize(out.stats.cycles);
}

// kAuto stands in for "selection" in the grid below (sorts name their
// algorithm explicitly, so kAuto is free to repurpose).
const SortAlgorithm kGrid[] = {
    SortAlgorithm::kAuto,          SortAlgorithm::kColumnsortEven,
    SortAlgorithm::kVirtualColumnsort, SortAlgorithm::kRecursive,
    SortAlgorithm::kUnevenColumnsort,  SortAlgorithm::kRankSort,
    SortAlgorithm::kMergeSort,     SortAlgorithm::kCentral,
};

// --- spans reconcile across the whole grid, on both engines -----------------

TEST(SpanTest, GridReconcilesOnBothEngines) {
  auto w = util::make_workload(256, 16, util::Shape::kEven, 7);
  for (auto engine : {Engine::kEventDriven, Engine::kReference}) {
    for (auto a : kGrid) {
      Instrumented run(4);
      run_instrumented(run, {.p = 16, .k = 4, .engine = engine}, w.inputs, a);
      EXPECT_TRUE(run.recorder.well_formed()) << to_string(a);
      EXPECT_EQ(run.recorder.dropped(), 0u) << to_string(a);
      const auto problems = run.recorder.reconcile(run.stats);
      EXPECT_TRUE(problems.empty())
          << to_string(a) << " on "
          << (engine == Engine::kEventDriven ? "event" : "reference") << ": "
          << (problems.empty() ? "" : problems.front());
    }
  }
}

TEST(SpanTest, RecordsIdenticalAcrossEngines) {
  // Spans are part of the deterministic observable behaviour, so the two
  // engines must record byte-identical streams.
  auto w = util::make_workload(128, 8, util::Shape::kEven, 11);
  for (auto a : kGrid) {
    Instrumented ev(2);
    Instrumented ref(2);
    run_instrumented(ev, {.p = 8, .k = 2, .engine = Engine::kEventDriven},
                     w.inputs, a);
    run_instrumented(ref, {.p = 8, .k = 2, .engine = Engine::kReference},
                     w.inputs, a);
    const auto& re = ev.recorder.records();
    const auto& rr = ref.recorder.records();
    ASSERT_EQ(re.size(), rr.size()) << to_string(a);
    for (std::size_t i = 0; i < re.size(); ++i) {
      EXPECT_EQ(re[i].name, rr[i].name) << to_string(a) << " record " << i;
      EXPECT_EQ(re[i].parent, rr[i].parent) << to_string(a);
      EXPECT_EQ(re[i].begin_cycle, rr[i].begin_cycle) << to_string(a);
      EXPECT_EQ(re[i].end_cycle, rr[i].end_cycle) << to_string(a);
      EXPECT_EQ(re[i].begin_messages, rr[i].begin_messages) << to_string(a);
      EXPECT_EQ(re[i].end_messages, rr[i].end_messages) << to_string(a);
    }
  }
}

TEST(SpanTest, SelectionSpansNestAndCoverPhases) {
  auto w = util::make_workload(256, 8, util::Shape::kEven, 3);
  Instrumented run(4);
  run_instrumented(run, {.p = 8, .k = 4}, w.inputs, SortAlgorithm::kAuto);
  // partial-sums spans nest inside setup/filter/terminate.
  EXPECT_GE(run.recorder.max_depth(), 1u);
  std::set<std::string> names;
  for (const auto& s : run.recorder.summarize()) names.insert(s.name);
  for (const char* expect : {"setup", "filter", "terminate", "partial-sums"}) {
    EXPECT_TRUE(names.count(expect)) << expect;
  }
  // Summaries aggregate: the filter span count equals the phase iteration
  // count, and phase-aligned names match PhaseStats exactly.
  const auto summaries = run.recorder.summarize();
  for (const auto& s : summaries) {
    const PhaseStats* ph = run.stats.phase(s.name);
    if (ph == nullptr) continue;  // internal span (e.g. partial-sums)
    EXPECT_EQ(s.cycles, ph->cycles) << s.name;
    EXPECT_EQ(s.messages, ph->messages) << s.name;
  }
}

TEST(SpanTest, RecorderDetectsMismatchedStats) {
  // Hand-built stream: a "gather" span of 4 cycles / 2 messages against a
  // PhaseStats claiming 5 cycles. reconcile must flag it.
  Recorder rec;
  rec.on_span_begin("gather", 0, 0);
  rec.on_span_end(4, 2);
  EXPECT_TRUE(rec.well_formed());
  RunStats stats;
  stats.phases.push_back(PhaseStats{"gather", 0, 5, 2});
  const auto problems = rec.reconcile(stats);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("gather"), std::string::npos);
}

TEST(SpanTest, UnbalancedStreamIsNotWellFormed) {
  Recorder rec;
  rec.on_span_begin("open", 0, 0);
  EXPECT_FALSE(rec.well_formed());
  RunStats stats;
  EXPECT_FALSE(rec.reconcile(stats).empty());
}

TEST(SpanTest, CapacityDropsAreCountedAndStreamStaysBalanced) {
  Recorder rec(/*capacity=*/2);
  for (int i = 0; i < 5; ++i) {
    rec.on_span_begin("s", static_cast<Cycle>(i), 0);
    rec.on_span_end(static_cast<Cycle>(i) + 1, 0);
  }
  EXPECT_EQ(rec.records().size(), 2u);
  EXPECT_EQ(rec.dropped(), 3u);
  EXPECT_TRUE(rec.well_formed());
}

TEST(SpanTest, NullSinkSpansAreFree) {
  // No span_sink attached: instrumented algorithms still run and produce
  // stats identical to a recorder-attached run.
  auto w = util::make_workload(128, 8, util::Shape::kEven, 5);
  SimConfig cfg{.p = 8, .k = 2};
  auto bare = algo::sort(cfg, w.inputs, {});
  Instrumented obs(2);
  run_instrumented(obs, cfg, w.inputs, SortAlgorithm::kColumnsortEven);
  EXPECT_EQ(bare.run.stats.cycles, obs.stats.cycles);
  EXPECT_EQ(bare.run.stats.messages, obs.stats.messages);
}

// --- timeline ----------------------------------------------------------------

TEST(TimelineTest, TotalsMatchRunStats) {
  auto w = util::make_workload(256, 16, util::Shape::kEven, 9);
  for (auto a : kGrid) {
    Instrumented run(4);
    run_instrumented(run, {.p = 16, .k = 4}, w.inputs, a);
    const Timeline& tl = run.timeline;
    ASSERT_TRUE(tl.finalized());
    // Every message is a write; the engine's count and the timeline's must
    // agree exactly.
    EXPECT_EQ(tl.total_writes(), run.stats.messages) << to_string(a);
    std::uint64_t per_channel = 0;
    for (auto wch : tl.writes_per_channel()) per_channel += wch;
    EXPECT_EQ(per_channel, run.stats.messages) << to_string(a);
    // Busy/idle partition the run.
    EXPECT_EQ(tl.busy_cycles() + tl.idle_cycles(), run.stats.cycles)
        << to_string(a);
    // The conformance checker independently counts distinct busy cycles
    // from the same stream.
    EXPECT_EQ(tl.busy_cycles(), run.cycles_checked) << to_string(a);
  }
}

TEST(TimelineTest, BucketSumsEqualExactTotalsAtAnyResolution) {
  auto w = util::make_workload(256, 8, util::Shape::kEven, 13);
  for (std::size_t max_buckets : {2u, 8u, 256u}) {
    Instrumented run(2, max_buckets);
    run_instrumented(run, {.p = 8, .k = 2}, w.inputs,
                     SortAlgorithm::kColumnsortEven);
    const Timeline& tl = run.timeline;
    EXPECT_LE(tl.buckets().size(), max_buckets);
    // Width is a power of two and covers the run.
    EXPECT_EQ(tl.bucket_cycles() & (tl.bucket_cycles() - 1), 0u);
    EXPECT_GE(static_cast<Cycle>(tl.buckets().size()) * tl.bucket_cycles(),
              run.stats.cycles);
    // Merging preserves every count exactly.
    std::uint64_t writes = 0, reads = 0, silent = 0, busy = 0;
    for (const auto& b : tl.buckets()) {
      for (auto wch : b.writes) writes += wch;
      reads += b.reads;
      silent += b.silent_reads;
      busy += b.busy_cycles;
    }
    EXPECT_EQ(writes, tl.total_writes());
    EXPECT_EQ(reads, tl.total_reads());
    EXPECT_EQ(silent, tl.total_silent_reads());
    EXPECT_EQ(busy, tl.busy_cycles());
  }
}

TEST(TimelineTest, CountsMultiReads) {
  Timeline tl(2, 16);
  Network net({.p = 2, .k = 2, .multi_read = true}, &tl);
  auto writer = [](Proc& self) -> ProcMain {
    co_await self.write(1, Message::of(Word{9}));
  };
  auto reader = [](Proc& self) -> ProcMain {
    co_await self.cycle_all(std::nullopt);
  };
  net.install(0, writer(net.proc(0)));
  net.install(1, reader(net.proc(1)));
  auto stats = net.run();
  tl.finalize(stats.cycles);
  EXPECT_EQ(tl.total_multi_reads(), 1u);
  EXPECT_EQ(tl.total_writes(), 1u);
  EXPECT_EQ(tl.writes_per_channel()[1], 1u);
}

// --- metrics -----------------------------------------------------------------

TEST(MetricsTest, HistogramQuantilesAreExactNearestRank) {
  Histogram h;
  for (double v : {5.0, 1.0, 4.0, 2.0, 3.0}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.p50(), 3.0);   // ceil(0.5*5) = 3rd smallest
  EXPECT_DOUBLE_EQ(h.p95(), 5.0);   // ceil(0.95*5) = 5th smallest
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  EXPECT_DOUBLE_EQ(Histogram{}.p50(), 0.0);
}

TEST(MetricsTest, HistogramSortsOnceAcrossQuantileCalls) {
  // Serving reads p50/p95/p99 repeatedly from long-lived histograms; the
  // sorted view is cached behind a dirty flag, so a batch of quantile
  // calls costs one sort — with byte-identical answers to the re-sorting
  // implementation it replaced.
  Histogram h;
  for (int i = 1000; i > 0; --i) h.record(i);
  const double p50 = h.p50();
  const double p95 = h.p95();
  const double p99 = h.p99();
  EXPECT_EQ(h.sort_passes(), 1u);
  EXPECT_DOUBLE_EQ(p50, 500.0);
  EXPECT_DOUBLE_EQ(p95, 950.0);
  EXPECT_DOUBLE_EQ(p99, 990.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 250.0);
  EXPECT_EQ(h.sort_passes(), 1u);
  // A new observation invalidates the cache exactly once.
  h.record(0.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0001), 0.5);  // rank floors at 1
  EXPECT_DOUBLE_EQ(h.p50(), 500.0);  // ceil(0.5*1001) = 501st of 1001
  EXPECT_EQ(h.sort_passes(), 2u);
}

TEST(MetricsTest, NonFiniteValuesSerializeAsZeroAndRoundTrip) {
  // NaN/Inf have no JSON literal; the old formatter streamed them raw and
  // produced documents a strict parser rejects. util::json_double pins
  // them to 0.
  Metrics m;
  m.set("nan_gauge", std::nan(""));
  m.set("inf_gauge", std::numeric_limits<double>::infinity());
  m.set("finite_gauge", 2.5);
  m.observe("h", -std::numeric_limits<double>::infinity());
  m.observe("h", 3.0);
  const auto doc = util::json_parse(m.json());
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("nan_gauge").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("inf_gauge").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("finite_gauge").as_number(), 2.5);
  EXPECT_DOUBLE_EQ(doc.at("histograms").at("h").at("p50").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(doc.at("histograms").at("h").at("max").as_number(), 3.0);
}

TEST(MetricsTest, RunStatsJsonGuardsNonFiniteDoubles) {
  // The stats block mcbsim --json prints goes through the same guard: a
  // poisoned cycles_per_sec must not leak "nan" into the document.
  RunStats stats;
  stats.cycles = 10;
  stats.messages = 4;
  stats.messages_per_proc = {2, 2};
  stats.messages_per_channel = {4};
  stats.cycles_per_sec = std::nan("");
  stats.arena_hit_rate = std::numeric_limits<double>::infinity();
  const auto doc = util::json_parse(run_stats_json(stats));
  EXPECT_DOUBLE_EQ(doc.at("cycles").as_number(), 10.0);
  EXPECT_DOUBLE_EQ(doc.at("cycles_per_sec").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(doc.at("arena_hit_rate").as_number(), 0.0);
  ASSERT_NE(doc.find("frame_reuses"), nullptr);
}

TEST(MetricsTest, RegistryAccumulatesAndRendersDeterministically) {
  Metrics m;
  m.add("a.count", 2);
  m.add("a.count", 3);
  m.set("g", 1.5);
  m.observe("h", 1.0);
  m.observe("h", 9.0);
  EXPECT_EQ(m.counter("a.count"), 5u);
  EXPECT_EQ(m.counter("missing"), 0u);
  const auto text = m.render();
  EXPECT_NE(text.find("a.count"), std::string::npos);
  // json() must survive the strict parser and carry the histogram stats.
  const auto doc = util::json_parse(m.json());
  EXPECT_DOUBLE_EQ(doc.at("counters").at("a.count").as_number(), 5.0);
  EXPECT_DOUBLE_EQ(doc.at("histograms").at("h").at("p95").as_number(), 9.0);
}

TEST(MetricsTest, CollectFoldsRunAndCollectors) {
  auto w = util::make_workload(256, 8, util::Shape::kEven, 17);
  Instrumented run(2);
  run_instrumented(run, {.p = 8, .k = 2}, w.inputs, SortAlgorithm::kAuto);
  const Metrics m = collect_metrics(run.stats, &run.recorder, &run.timeline);
  EXPECT_EQ(m.counter("run.messages"), run.stats.messages);
  EXPECT_EQ(m.counter("run.cycles"), run.stats.cycles);
  EXPECT_EQ(m.counter("channel.C1.writes") + m.counter("channel.C2.writes"),
            run.stats.messages);
  EXPECT_GT(m.counter("spans.recorded"), 0u);
  // Null collectors are fine: only the run.* metrics appear.
  const Metrics bare = collect_metrics(run.stats, nullptr, nullptr);
  EXPECT_EQ(bare.counter("run.messages"), run.stats.messages);
  EXPECT_EQ(bare.counter("spans.recorded"), 0u);
}

// --- exporter ----------------------------------------------------------------

/// Parses a trace back and replays the span events, asserting B/E stack
/// discipline and collecting per-name cycle/message totals.
struct ReplayedSpans {
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> totals;
  std::size_t events = 0;
};

ReplayedSpans replay_spans(const util::JsonValue& trace) {
  ReplayedSpans out;
  std::vector<std::pair<std::string, std::pair<double, double>>> stack;
  double last_ts = 0.0;
  for (const auto& ev : trace.at("traceEvents").items()) {
    const auto& ph = ev.at("ph").as_string();
    if (ev.at("pid").as_number() != 1.0 || ph == "M") continue;
    const double ts = ev.at("ts").as_number();
    EXPECT_GE(ts, last_ts) << "span events out of order";
    last_ts = ts;
    if (ph == "B") {
      stack.emplace_back(
          ev.at("name").as_string(),
          std::make_pair(
              ts, ev.at("args").at("messages_at_begin").as_number()));
    } else {
      EXPECT_EQ(ph, "E");
      EXPECT_FALSE(stack.empty()) << "E without matching B";
      if (stack.empty()) continue;
      auto [name, begin] = stack.back();
      stack.pop_back();
      auto& [cycles, messages] = out.totals[name];
      cycles += static_cast<std::uint64_t>(ts - begin.first);
      messages +=
          static_cast<std::uint64_t>(ev.at("args").at("messages").as_number());
    }
    ++out.events;
  }
  EXPECT_TRUE(stack.empty()) << "unclosed B events";
  return out;
}

TEST(ExportTest, TraceParsesAndReconcilesWithPhases) {
  auto w = util::make_workload(256, 8, util::Shape::kEven, 21);
  SimConfig cfg{.p = 8, .k = 2};
  Instrumented run(2);
  run_instrumented(run, cfg, w.inputs, SortAlgorithm::kAuto);
  const auto json =
      chrome_trace_json(run.stats, cfg, &run.recorder, &run.timeline);
  const auto trace = util::json_parse(json);  // strict: throws on any slack

  EXPECT_DOUBLE_EQ(trace.at("otherData").at("p").as_number(), 8.0);
  EXPECT_DOUBLE_EQ(trace.at("otherData").at("messages").as_number(),
                   static_cast<double>(run.stats.messages));

  // Every channel has a counter track with at least one sample.
  std::set<std::string> counter_tracks;
  for (const auto& ev : trace.at("traceEvents").items()) {
    if (ev.at("ph").as_string() == "C") {
      counter_tracks.insert(ev.at("name").as_string());
    }
  }
  EXPECT_EQ(counter_tracks.size(), cfg.k);
  EXPECT_TRUE(counter_tracks.count("C1 writes"));
  EXPECT_TRUE(counter_tracks.count("C2 writes"));

  // Replayed span totals agree with the engine's phase accounting.
  const auto replayed = replay_spans(trace);
  EXPECT_GT(replayed.events, 0u);
  for (const auto& ph : run.stats.phases) {
    auto it = replayed.totals.find(ph.name);
    ASSERT_NE(it, replayed.totals.end()) << ph.name;
    EXPECT_EQ(it->second.first, ph.cycles) << ph.name;
    EXPECT_EQ(it->second.second, ph.messages) << ph.name;
  }
}

TEST(ExportTest, NullCollectorsYieldValidEmptyTrace) {
  RunStats stats;
  stats.cycles = 10;
  stats.messages = 4;
  const auto json = chrome_trace_json(stats, {.p = 2, .k = 1}, nullptr,
                                      nullptr);
  const auto trace = util::json_parse(json);
  EXPECT_EQ(trace.at("traceEvents").size(), 0u);
  EXPECT_DOUBLE_EQ(trace.at("otherData").at("cycles").as_number(), 10.0);
}

TEST(ExportTest, DeterministicAcrossEngines) {
  auto w = util::make_workload(128, 8, util::Shape::kEven, 23);
  std::string traces[2];
  int i = 0;
  for (auto engine : {Engine::kEventDriven, Engine::kReference}) {
    SimConfig cfg{.p = 8, .k = 2, .engine = engine};
    Instrumented run(2);
    run_instrumented(run, cfg, w.inputs, SortAlgorithm::kColumnsortEven);
    // Normalize the engine out of the header inputs: the exporter never
    // reads cfg.engine, so pass a fixed-config copy.
    traces[i++] =
        chrome_trace_json(run.stats, {.p = 8, .k = 2}, &run.recorder,
                          &run.timeline);
  }
  EXPECT_EQ(traces[0], traces[1]);
}

// --- report helpers ----------------------------------------------------------

TEST(ReportTest, SparklineScalesToMax) {
  EXPECT_EQ(spark({}), "");
  EXPECT_EQ(spark({0.0, 0.0}), "  ");
  // 10-level ramp, floor(v / max * 9): 1/10 -> level 0, 5/10 -> level 4,
  // max -> level 9, zero -> blank.
  EXPECT_EQ(spark({0.0, 1.0, 5.0, 10.0}), " .+@");
}

TEST(ReportTest, RejectsUnrecognizedDocuments) {
  EXPECT_THROW(report_markdown(util::json_parse("{\"x\": 1}")),
               std::invalid_argument);
}

// --- host profiler (clock seam, imbalance math, quarantine) ------------------

/// Deterministic clock: every now_ns() call advances by a fixed step, so a
/// "wall duration" counts clock reads instead of host time. Only safe where
/// a single thread reads the clock (the coordinator's seam; the pool's busy
/// clock is attached only when a profiler rides a pooled run).
class FakeClock final : public Clock {
 public:
  explicit FakeClock(std::uint64_t step = 1) : step_(step) {}
  std::uint64_t now_ns() override {
    now_ += step_;
    return now_;
  }

 private:
  std::uint64_t step_;
  std::uint64_t now_ = 0;
};

TEST(ProfilerTest, ImbalanceRatioIsMaxOverMeanLaneBusy) {
  FakeClock clk;
  Profiler prof(&clk);
  std::vector<std::uint64_t> busy = {0, 0};
  prof.begin_run(2, &busy);
  busy = {30, 10};  // what the pool's counters advanced by during the run
  prof.end_run();
  const auto totals = prof.lane_busy_totals();
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_EQ(totals[0], 30u);
  EXPECT_EQ(totals[1], 10u);
  EXPECT_DOUBLE_EQ(prof.imbalance_ratio(), 1.5);  // max 30 / mean 20
}

TEST(ProfilerTest, ImbalanceRatioEdgeCases) {
  FakeClock clk;
  Profiler idle(&clk);
  EXPECT_DOUBLE_EQ(idle.imbalance_ratio(), 0.0);  // nothing measured

  Profiler balanced(&clk);
  std::vector<std::uint64_t> busy = {0, 0};
  balanced.begin_run(2, &busy);
  busy = {25, 25};
  balanced.end_run();
  EXPECT_DOUBLE_EQ(balanced.imbalance_ratio(), 1.0);
}

TEST(ProfilerTest, PooledBarrierAccountingUnderFakeClock) {
  // Step-1 clock: every read advances 1 ns, so barrier_begin -> barrier_end
  // is exactly 1 ns of wall and merge_end charges exactly 1 ns of merge.
  FakeClock clk(1);
  Profiler prof(&clk);
  std::vector<std::uint64_t> busy = {0, 0};
  prof.begin_run(2, &busy);
  prof.barrier_begin();
  busy = {1, 0};  // one lane worked 1 ns inside the barrier
  prof.barrier_end("resume", /*pooled=*/true);
  prof.merge_end();
  prof.cycle_end();
  prof.end_run();

  ASSERT_EQ(prof.sites().size(), 1u);
  const auto& s = prof.sites()[0];
  EXPECT_EQ(s.name, "resume");
  EXPECT_EQ(s.barriers, 1u);
  EXPECT_EQ(s.pooled, 1u);
  EXPECT_EQ(s.dispatch_ns, 1u);  // 1 tick of wall
  EXPECT_EQ(s.busy_ns, 1u);      // the lanes' counter delta
  // Aggregate idle: lanes * wall - busy = 2*1 - 1.
  EXPECT_EQ(s.wait_ns, 1u);
  EXPECT_EQ(s.merge_ns, 1u);
  EXPECT_EQ(prof.cycles(), 1u);
}

TEST(ProfilerTest, InlineBarrierFoldsIntoLaneZero) {
  FakeClock clk(1);
  Profiler prof(&clk);
  std::vector<std::uint64_t> busy = {0, 0};
  prof.begin_run(2, &busy);
  prof.barrier_begin();
  prof.barrier_end("resume", /*pooled=*/false);
  prof.end_run();

  const auto& s = prof.sites()[0];
  EXPECT_EQ(s.pooled, 0u);
  EXPECT_EQ(s.wait_ns, 0u);  // inline: nobody waited
  EXPECT_EQ(s.busy_ns, s.dispatch_ns);
  // The coordinator runs inline passes, so their time lands on lane 0.
  const auto totals = prof.lane_busy_totals();
  EXPECT_EQ(totals[0], s.dispatch_ns);
  EXPECT_EQ(totals[1], 0u);
}

TEST(ProfilerTest, JsonIsStrictAndCarriesTheBreakdown) {
  FakeClock clk(1);
  Profiler prof(&clk, /*batch_cycles=*/1);
  std::vector<std::uint64_t> busy = {0};
  prof.begin_run(1, &busy);
  prof.barrier_begin();
  prof.barrier_end("init", true);
  prof.merge_end();
  prof.record_commit(5);
  prof.cycle_end();
  prof.end_run();

  const auto doc = util::json_parse(prof.json());  // strict: throws on slack
  EXPECT_EQ(doc.at("runs").as_number(), 1.0);
  EXPECT_EQ(doc.at("commits").as_number(), 1.0);
  EXPECT_EQ(doc.at("commit_ns").as_number(), 5.0);
  EXPECT_EQ(doc.at("batch_cycles").as_number(), 1.0);
  ASSERT_TRUE(doc.at("sites").is_array());
  EXPECT_EQ(doc.at("sites").at(0).at("name").as_string(), "init");
  ASSERT_NE(doc.find("barrier_wait_ns"), nullptr);
  ASSERT_NE(doc.find("batch_wall_ns"), nullptr);
  EXPECT_GT(doc.at("batch_wall_ns").at("count").as_number(), 0.0);
  EXPECT_NE(prof.text().find("host profile:"), std::string::npos);
}

TEST(ProfilerTest, ClockSeamMakesEngineWallClockDeterministic) {
  // The network reads wall time only through SimConfig::clock; a fixed-step
  // fake therefore makes sim_wall_ns a deterministic function of the run.
  auto w = util::make_workload(128, 8, util::Shape::kEven, 3);
  std::uint64_t walls[2] = {0, 0};
  for (auto& wall : walls) {
    FakeClock clk(7);
    SimConfig cfg{.p = 8, .k = 2};
    cfg.engine = Engine::kParallel;
    cfg.threads = 2;
    cfg.clock = &clk;
    wall = algo::select_median(cfg, w.inputs).stats.sim_wall_ns;
  }
  EXPECT_GT(walls[0], 0u);
  EXPECT_EQ(walls[0], walls[1]);
}

TEST(ProfilerTest, EngineRunPopulatesSitesWithoutPerturbingTheModel) {
  auto w = util::make_workload(256, 8, util::Shape::kEven, 11);
  SimConfig plain{.p = 8, .k = 2};
  plain.engine = Engine::kParallel;
  plain.threads = 2;
  const auto baseline = algo::select_median(plain, w.inputs);

  Profiler prof;
  SimConfig cfg = plain;
  cfg.profiler = &prof;
  const auto profiled = algo::select_median(cfg, w.inputs);

  // Quarantine: attaching the profiler changes zero model-level output.
  EXPECT_EQ(profiled.value, baseline.value);
  EXPECT_EQ(profiled.stats.cycles, baseline.stats.cycles);
  EXPECT_EQ(profiled.stats.messages, baseline.stats.messages);

  EXPECT_EQ(prof.runs(), 1u);
  EXPECT_EQ(prof.cycles(), profiled.stats.cycles);
  EXPECT_GT(prof.commits(), 0u);
  bool saw_resume = false;
  for (const auto& s : prof.sites()) saw_resume |= s.name == "resume";
  EXPECT_TRUE(saw_resume);
  EXPECT_GT(prof.imbalance_ratio(), 0.0);
}

TEST(ExportTest, ProfiledTraceCarriesHostPidAndStaysStrict) {
  auto w = util::make_workload(128, 8, util::Shape::kEven, 9);
  Profiler prof;
  SimConfig cfg{.p = 8, .k = 2};
  cfg.engine = Engine::kParallel;
  cfg.threads = 2;
  cfg.profiler = &prof;
  Instrumented run(2);
  run_instrumented(run, cfg, w.inputs, SortAlgorithm::kAuto);

  const auto json = chrome_trace_json(run.stats, cfg, &run.recorder,
                                      &run.timeline, &prof);
  const auto trace = util::json_parse(json);  // strict: throws on any slack
  std::size_t host_events = 0;
  for (const auto& ev : trace.at("traceEvents").items()) {
    const auto* pid = ev.find("pid");
    if (pid != nullptr && pid->as_number() == 3.0) ++host_events;
  }
  // At least the process-name metadata plus one lane or counter sample.
  EXPECT_GT(host_events, 1u);
}

// --- stats guards ------------------------------------------------------------

TEST(StatsGuardTest, SafeCyclesPerSecHandlesZeroWall) {
  EXPECT_DOUBLE_EQ(safe_cycles_per_sec(100, 0), 0.0);
  EXPECT_GT(safe_cycles_per_sec(100, 1000), 0.0);
}

}  // namespace
}  // namespace mcb::obs
