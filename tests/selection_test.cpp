// Tests of the distributed selection algorithm (Section 8): correctness for
// all ranks and distributions, the >= 1/4 purge guarantee (via the
// O(log(kn/p)) phase count), the Corollary 7 cycle/message bounds, and the
// termination-phase threshold.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "algo/common.hpp"
#include "algo/selection.hpp"
#include "util/workload.hpp"

namespace mcb::algo {
namespace {

Word oracle_rank(const std::vector<std::vector<Word>>& inputs,
                 std::size_t d) {
  std::vector<Word> all;
  for (const auto& in : inputs) all.insert(all.end(), in.begin(), in.end());
  std::sort(all.begin(), all.end(), std::greater<Word>{});
  return all[d - 1];
}

struct Shape {
  std::size_t p, k, n;
  util::Shape dist;
};

class SelectionSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(SelectionSweep, SelectsSampledRanks) {
  const auto& prm = GetParam();
  auto w = util::make_workload(prm.n, prm.p, prm.dist, 42);
  for (std::size_t d : {std::size_t{1}, prm.n / 4, (prm.n + 1) / 2,
                        3 * prm.n / 4, prm.n}) {
    if (d == 0) continue;
    auto res = select_rank({.p = prm.p, .k = prm.k}, w.inputs, d);
    EXPECT_EQ(res.value, oracle_rank(w.inputs, d))
        << "d=" << d << " n=" << prm.n;
  }
}

TEST_P(SelectionSweep, PhaseCountIsLogarithmic) {
  const auto& prm = GetParam();
  auto w = util::make_workload(prm.n, prm.p, prm.dist, 7);
  auto res = select_median({.p = prm.p, .k = prm.k}, w.inputs);
  // Each phase purges >= ~1/4 of the candidates, so the number of phases is
  // at most log_{4/3}(n / threshold) + O(1).
  const double threshold =
      std::max<double>(double(prm.p) / double(prm.k), 1.0);
  const double bound =
      std::log(double(prm.n) / threshold) / std::log(4.0 / 3.0) + 2.0;
  EXPECT_LE(double(res.filter_phases), bound)
      << "n=" << prm.n << " p=" << prm.p << " k=" << prm.k;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SelectionSweep,
    ::testing::ValuesIn(std::vector<Shape>{
        {4, 2, 64, util::Shape::kEven},
        {4, 2, 64, util::Shape::kZipf},
        {8, 4, 512, util::Shape::kEven},
        {8, 4, 512, util::Shape::kOneHot},
        {8, 2, 200, util::Shape::kRandom},
        {16, 4, 1024, util::Shape::kEven},
        {16, 4, 1024, util::Shape::kZipf},
        {16, 4, 999, util::Shape::kRandom},
        {32, 4, 4096, util::Shape::kEven},
        {5, 1, 100, util::Shape::kStaircase},
        {1, 1, 50, util::Shape::kEven},
        {3, 3, 99, util::Shape::kRandom},
    }),
    [](const auto& pinfo) {
      return "p" + std::to_string(pinfo.param.p) + "_k" +
             std::to_string(pinfo.param.k) + "_n" +
             std::to_string(pinfo.param.n) + "_" +
             util::to_string(pinfo.param.dist);
    });

TEST(SelectionTest, AllRanksSmallNetwork) {
  auto w = util::make_workload(48, 4, util::Shape::kRandom, 3);
  for (std::size_t d = 1; d <= 48; ++d) {
    auto res = select_rank({.p = 4, .k = 2}, w.inputs, d);
    ASSERT_EQ(res.value, oracle_rank(w.inputs, d)) << "d=" << d;
  }
}

TEST(SelectionTest, MedianConvenience) {
  auto w = util::make_workload(101, 5, util::Shape::kRandom, 9);
  auto res = select_median({.p = 5, .k = 2}, w.inputs);
  EXPECT_EQ(res.value, oracle_rank(w.inputs, 51));  // ceil(101/2)
}

TEST(SelectionTest, QuickselectOptionAgrees) {
  auto w = util::make_workload(300, 6, util::Shape::kZipf, 4);
  auto a = select_rank({.p = 6, .k = 3}, w.inputs, 77);
  auto b = select_rank({.p = 6, .k = 3}, w.inputs, 77,
                       {.use_quickselect = true});
  EXPECT_EQ(a.value, b.value);
}

TEST(SelectionTest, ThresholdOverride) {
  auto w = util::make_workload(256, 8, util::Shape::kEven, 5);
  // A huge threshold forces zero filtering phases (straight to the
  // termination phase); a tiny one forces more filtering.
  auto lazy = select_rank({.p = 8, .k = 4}, w.inputs, 128,
                          {.threshold = 10000});
  EXPECT_EQ(lazy.filter_phases, 0u);
  EXPECT_EQ(lazy.value, oracle_rank(w.inputs, 128));
  auto eager = select_rank({.p = 8, .k = 4}, w.inputs, 128, {.threshold = 1});
  EXPECT_GE(eager.filter_phases, 2u);
  EXPECT_EQ(eager.value, oracle_rank(w.inputs, 128));
}

TEST(SelectionTest, CycleAndMessageBounds) {
  // Corollary 7 regime: d ~ n/2, p >= k^2, n large. Verify the
  // O((p/k) log(kn/p)) cycle and O(p log(kn/p)) message bounds with
  // generous constants.
  const std::size_t p = 32, k = 4, n = 8192;
  auto w = util::make_workload(n, p, util::Shape::kEven, 11);
  auto res = select_median({.p = p, .k = k}, w.inputs);
  const double logterm =
      std::log2(double(k) * double(n) / double(p)) + 1.0;
  EXPECT_LE(double(res.stats.cycles),
            40.0 * (double(p) / double(k)) * logterm);
  EXPECT_LE(double(res.stats.messages), 40.0 * double(p) * logterm);
}

TEST(SelectionTest, ExtremeRanksAndTinyInputs) {
  std::vector<std::vector<Word>> inputs{{5}, {3}, {9}, {1}};
  EXPECT_EQ(select_rank({.p = 4, .k = 2}, inputs, 1).value, 9);
  EXPECT_EQ(select_rank({.p = 4, .k = 2}, inputs, 4).value, 1);
  EXPECT_EQ(select_rank({.p = 4, .k = 2}, inputs, 2).value, 5);
}

TEST(SelectionTest, SingleProcessor) {
  std::vector<std::vector<Word>> inputs{{10, 40, 20, 30}};
  EXPECT_EQ(select_rank({.p = 1, .k = 1}, inputs, 2).value, 30);
}

TEST(SelectionTest, InvalidArgumentsRejected) {
  std::vector<std::vector<Word>> inputs{{1, 2}, {3, 4}};
  EXPECT_THROW(select_rank({.p = 2, .k = 1}, inputs, 0),
               std::invalid_argument);
  EXPECT_THROW(select_rank({.p = 2, .k = 1}, inputs, 5),
               std::invalid_argument);
  std::vector<std::vector<Word>> empty{{1}, {}};
  EXPECT_THROW(select_rank({.p = 2, .k = 1}, empty, 1),
               std::invalid_argument);
  std::vector<std::vector<Word>> dummy{{1}, {kDummy}};
  EXPECT_THROW(select_rank({.p = 2, .k = 1}, dummy, 1),
               std::invalid_argument);
}

TEST(SelectionTest, NegativeValues) {
  std::vector<std::vector<Word>> inputs{{-5, -1}, {-9, -3}, {-7, -2}};
  EXPECT_EQ(select_rank({.p = 3, .k = 2}, inputs, 1).value, -1);
  EXPECT_EQ(select_rank({.p = 3, .k = 2}, inputs, 6).value, -9);
  EXPECT_EQ(select_rank({.p = 3, .k = 2}, inputs, 3).value, -3);
}

}  // namespace
}  // namespace mcb::algo
