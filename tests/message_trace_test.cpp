// Tests of Message (the O(log beta)-bit message model) and the channel
// trace observer, plus the virtualization cost model of Section 2.
#include <gtest/gtest.h>

#include <sstream>

#include "mcb/message.hpp"
#include "mcb/network.hpp"
#include "mcb/trace.hpp"
#include "mcb/virtualize.hpp"

namespace mcb {
namespace {

// --- Message -----------------------------------------------------------------

TEST(MessageTest, SizeAndAccess) {
  auto m = Message::of(Word{10}, Word{-3});
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.at(0), 10);
  EXPECT_EQ(m[1], -3);
  EXPECT_FALSE(m.empty());
  EXPECT_TRUE(Message{}.empty());
}

TEST(MessageTest, CapacityEnforced) {
  auto m = Message::of(Word{1}, Word{2}, Word{3}, Word{4});
  EXPECT_EQ(m.size(), Message::kMaxWords);
  EXPECT_THROW(m.push(5), std::invalid_argument);
  EXPECT_THROW((Message{1, 2, 3, 4, 5}), std::invalid_argument);
}

TEST(MessageTest, OutOfRangeAccessThrows) {
  auto m = Message::of(Word{7});
  EXPECT_THROW(m.at(1), std::invalid_argument);
}

TEST(MessageTest, ProtocolsStillRejectShortMessagesViaAt) {
  // operator[] is now unchecked (assert-only) for hot-path code, so
  // protocol-level validation of a received message MUST go through at().
  // A protocol expecting a (median, count) pair but receiving a single
  // word still fails loudly, and the error surfaces out of Network::run.
  Network net({.p = 2, .k = 1});
  auto writer = [](Proc& self) -> ProcMain {
    co_await self.write(0, Message::of(Word{5}));  // one word, not two
  };
  auto reader = [](Proc& self) -> ProcMain {
    auto got = co_await self.read(0);
    if (got) {
      [[maybe_unused]] Word median = got->at(0);
      [[maybe_unused]] Word count = got->at(1);  // out of range: throws
    }
  };
  net.install(0, writer(net.proc(0)));
  net.install(1, reader(net.proc(1)));
  EXPECT_THROW(net.run(), std::invalid_argument);
}

TEST(MessageTest, Equality) {
  EXPECT_EQ(Message::of(Word{1}, Word{2}), (Message{1, 2}));
  EXPECT_NE(Message::of(Word{1}), (Message{1, 0}));  // size matters
}

TEST(MessageTest, Streaming) {
  std::ostringstream os;
  os << Message::of(Word{4}, Word{-1});
  EXPECT_EQ(os.str(), "[4 -1]");
}

// --- ChannelTrace -------------------------------------------------------------

TEST(TraceTest, CapturesWritesReadsAndSilence) {
  ChannelTrace trace;
  Network net({.p = 2, .k = 2}, &trace);
  auto writer = [](Proc& self) -> ProcMain {
    co_await self.write(0, Message::of(Word{42}));
    co_await self.step();
  };
  auto reader = [](Proc& self) -> ProcMain {
    co_await self.read(0);
    co_await self.read(1);  // silence
  };
  net.install(0, writer(net.proc(0)));
  net.install(1, reader(net.proc(1)));
  net.run();

  // Cycle 0: P1 writes C1 [42]; P2 reads C1 and hears it.
  ASSERT_GE(trace.events().size(), 3u);
  const auto& w0 = trace.events()[0];
  EXPECT_EQ(w0.cycle, 0u);
  EXPECT_EQ(w0.proc, 0u);
  ASSERT_TRUE(w0.wrote.has_value());
  EXPECT_EQ(*w0.wrote, 0u);
  const auto& r0 = trace.events()[1];
  EXPECT_EQ(r0.proc, 1u);
  ASSERT_TRUE(r0.received.has_value());
  EXPECT_EQ(r0.received->at(0), 42);
  // Cycle 1: P2 reads C2, silence.
  const auto& r1 = trace.events()[2];
  EXPECT_EQ(r1.cycle, 1u);
  EXPECT_FALSE(r1.received.has_value());

  const auto text = trace.render(2);
  EXPECT_NE(text.find("P1 -> C1 [42]"), std::string::npos);
  EXPECT_NE(text.find("(silence)"), std::string::npos);
  EXPECT_FALSE(trace.truncated());
}

TEST(TraceTest, UtilizationFooterCountsWritesPerChannel) {
  // render(num_channels) reports per-channel write counts over the traced
  // span. (The seed implementation discarded its num_channels parameter and
  // emitted no utilization at all.)
  ChannelTrace trace;
  Network net({.p = 2, .k = 2}, &trace);
  auto prog = [](Proc& self) -> ProcMain {
    co_await self.write(0, Message::of(Word{1}));
    co_await self.write(1, Message::of(Word{2}));
    co_await self.write(0, Message::of(Word{3}));
  };
  auto idle = [](Proc& self) -> ProcMain {
    co_await self.step();  // no channel intent — invisible to the trace
  };
  net.install(0, prog(net.proc(0)));
  net.install(1, idle(net.proc(1)));
  net.run();

  const auto text = trace.render(2);
  EXPECT_NE(text.find("channel utilization over cycles 0..2 (3 cycles):"),
            std::string::npos);
  EXPECT_NE(text.find("C1: 2 writes (66%)"), std::string::npos);
  EXPECT_NE(text.find("C2: 1 writes (33%)"), std::string::npos);

  // The parameter sizes the footer: channels beyond those written appear
  // with zero utilization instead of vanishing.
  const auto wide = trace.render(4);
  EXPECT_NE(wide.find("C3: 0 writes (0%)"), std::string::npos);
  EXPECT_NE(wide.find("C4: 0 writes (0%)"), std::string::npos);
}

TEST(TraceTest, EmptyTraceOmitsUtilizationFooter) {
  ChannelTrace trace;
  EXPECT_EQ(trace.render(4).find("channel utilization"), std::string::npos);
}

TEST(TraceTest, MultiReadEventsAreRendered) {
  // A cycle_all() suspension must show up in the trace as one "<- all:"
  // line covering every channel. (The seed engine loops skipped processors
  // whose only pending operation was a multi-read, so such cycles were
  // invisible to any sink.)
  ChannelTrace trace;
  Network net({.p = 2, .k = 2, .multi_read = true}, &trace);
  auto writer = [](Proc& self) -> ProcMain {
    co_await self.write(1, Message::of(Word{9}));
  };
  auto reader = [](Proc& self) -> ProcMain {
    co_await self.cycle_all(std::nullopt);
  };
  net.install(0, writer(net.proc(0)));
  net.install(1, reader(net.proc(1)));
  net.run();

  const auto text = trace.render(2);
  EXPECT_NE(text.find("P1 -> C2 [9]"), std::string::npos);
  EXPECT_NE(text.find("P2 <- all: C1 (silence) C2 [9]"), std::string::npos);
}

TEST(TraceTest, CapacityTruncatesAndCountsDrops) {
  ChannelTrace trace(/*capacity=*/2);
  Network net({.p = 1, .k = 1}, &trace);
  auto prog = [](Proc& self) -> ProcMain {
    for (int i = 0; i < 10; ++i) {
      co_await self.write(0, Message::of(Word{i}));
    }
  };
  net.install(0, prog(net.proc(0)));
  net.run();
  EXPECT_EQ(trace.events().size(), 2u);
  EXPECT_TRUE(trace.truncated());
  // 10 write events, 2 kept: the footer reports exactly how many were shed.
  EXPECT_EQ(trace.dropped(), 8u);
  EXPECT_NE(trace.render(1).find("... (+8 dropped)"), std::string::npos);
}

TEST(TraceTest, TeeFansOutToEverySink) {
  ChannelTrace a;
  ChannelTrace b;
  TeeSink tee({&a, nullptr, &b});  // nulls are skipped at add() time
  EXPECT_EQ(tee.size(), 2u);
  EXPECT_EQ(tee.as_sink(), &tee);
  Network net({.p = 1, .k = 1}, tee.as_sink());
  auto prog = [](Proc& self) -> ProcMain {
    co_await self.write(0, Message::of(Word{5}));
  };
  net.install(0, prog(net.proc(0)));
  net.run();
  ASSERT_EQ(a.events().size(), 1u);
  ASSERT_EQ(b.events().size(), 1u);
  EXPECT_EQ(a.events()[0].sent->at(0), 5);
  EXPECT_EQ(b.events()[0].sent->at(0), 5);
}

TEST(TraceTest, TeeCollapsesToCheapestEquivalent) {
  TeeSink empty;
  EXPECT_EQ(empty.as_sink(), nullptr);
  ChannelTrace only;
  TeeSink single({&only});
  EXPECT_EQ(single.as_sink(), &only);  // no per-event indirection for one sink
}

// --- RunStats rendering --------------------------------------------------------

TEST(StatsTest, SummaryAndPhaseLookup) {
  RunStats st;
  st.cycles = 10;
  st.messages = 42;
  st.peak_aux_words = {3, 9, 1};
  st.phases.push_back(PhaseStats{"alpha", 0, 4, 20});
  st.phases.push_back(PhaseStats{"beta", 4, 6, 22});
  EXPECT_EQ(st.max_peak_aux(), 9u);
  ASSERT_NE(st.phase("alpha"), nullptr);
  EXPECT_EQ(st.phase("alpha")->messages, 20u);
  EXPECT_EQ(st.phase("gamma"), nullptr);
  const auto text = st.summary();
  EXPECT_NE(text.find("cycles=10"), std::string::npos);
  EXPECT_NE(text.find("phase beta"), std::string::npos);
}

TEST(StatsTest, RepeatedPhasesAggregate) {
  // The selection loop marks "filter" every iteration; the network must
  // fold repetitions into one entry.
  Network net({.p = 1, .k = 1});
  auto prog = [](Proc& self) -> ProcMain {
    for (int round = 0; round < 3; ++round) {
      self.mark_phase("loop");
      co_await self.write(0, Message::of(Word{round}));
      co_await self.step();
    }
  };
  net.install(0, prog(net.proc(0)));
  auto stats = net.run();
  ASSERT_EQ(stats.phases.size(), 1u);
  EXPECT_EQ(stats.phases[0].name, "loop");
  EXPECT_EQ(stats.phases[0].cycles, 6u);
  EXPECT_EQ(stats.phases[0].messages, 3u);
}

// --- virtualization cost -------------------------------------------------------

TEST(VirtualizeTest, IdentityIsFree) {
  RunStats stats;
  stats.cycles = 100;
  stats.messages = 500;
  auto cost = virtualization_cost({.p = 8, .k = 4}, {.p = 8, .k = 4}, stats);
  EXPECT_EQ(cost.hosts, 1u);
  EXPECT_EQ(cost.channel_mux, 1u);
  EXPECT_EQ(cost.real_cycles, 100u);
  EXPECT_EQ(cost.real_messages, 500u);
  EXPECT_DOUBLE_EQ(cost.cycle_overhead(stats), 1.0);
}

TEST(VirtualizeTest, ChannelOnlyMatchesPaperBound) {
  RunStats stats;
  stats.cycles = 100;
  stats.messages = 500;
  auto cost =
      virtualization_cost({.p = 8, .k = 2}, {.p = 8, .k = 8}, stats);
  EXPECT_EQ(cost.hosts, 1u);
  EXPECT_EQ(cost.channel_mux, 4u);
  EXPECT_EQ(cost.real_cycles, 400u);   // exactly (k'/k) * cycles
  EXPECT_EQ(cost.real_messages, 500u);  // no repeats needed
}

TEST(VirtualizeTest, HostingPaysQuadraticCycles) {
  RunStats stats;
  stats.cycles = 10;
  stats.messages = 70;
  auto cost =
      virtualization_cost({.p = 4, .k = 2}, {.p = 16, .k = 4}, stats);
  EXPECT_EQ(cost.hosts, 4u);
  EXPECT_EQ(cost.channel_mux, 2u);
  EXPECT_EQ(cost.real_cycles, 10u * 4 * 4 * 2);
  EXPECT_EQ(cost.real_messages, 70u * 4);
}

TEST(VirtualizeTest, RejectsShrinkingTheWrongWay) {
  RunStats stats;
  EXPECT_THROW(
      virtualization_cost({.p = 16, .k = 4}, {.p = 8, .k = 4}, stats),
      std::invalid_argument);
  EXPECT_THROW(
      virtualization_cost({.p = 8, .k = 8}, {.p = 8, .k = 4}, stats),
      std::invalid_argument);
}

}  // namespace
}  // namespace mcb
