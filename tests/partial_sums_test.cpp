// Tests of the Partial-Sums collective (Section 7.1): correctness against a
// prefix-scan oracle across operators and network shapes, plus the paper's
// O(p/k + log k) cycle and O(p) message bounds.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "algo/partial_sums.hpp"
#include "algo/runner.hpp"
#include "util/random.hpp"

namespace mcb::algo {
namespace {

struct PsOutcome {
  std::vector<PartialSumsResult> results;
  RunStats stats;
};

PsOutcome run_partial_sums(std::size_t p, std::size_t k,
                           const std::vector<Word>& values, const SumOp& op,
                           PartialSumsOptions opts = {}) {
  PsOutcome out;
  out.results.resize(p);
  Network net({.p = p, .k = k});
  auto prog = [](Proc& self, Word a, const SumOp& o, PartialSumsOptions po,
                 PartialSumsResult& res) -> ProcMain {
    res = co_await partial_sums(self, a, o, po);
  };
  for (ProcId i = 0; i < p; ++i) {
    net.install(i, prog(net.proc(i), values[i], op, opts, out.results[i]));
  }
  out.stats = net.run();
  return out;
}

class PartialSumsShapes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(PartialSumsShapes, AddMatchesPrefixScan) {
  auto [p, k] = GetParam();
  util::Xoshiro256StarStar rng(p * 31 + k);
  std::vector<Word> values(p);
  for (auto& v : values) v = rng.uniform(-100, 100);

  auto out = run_partial_sums(p, k, values, SumOp::add(),
                              {.with_total = true, .with_next = true});

  Word prefix = 0;
  Word total = std::accumulate(values.begin(), values.end(), Word{0});
  for (std::size_t i = 0; i < p; ++i) {
    EXPECT_EQ(out.results[i].before, prefix) << "P" << i + 1;
    prefix += values[i];
    EXPECT_EQ(out.results[i].self, prefix) << "P" << i + 1;
    const Word next =
        i + 1 < p ? prefix + values[i + 1] : prefix;
    EXPECT_EQ(out.results[i].next, next) << "P" << i + 1;
    EXPECT_EQ(out.results[i].total, total) << "P" << i + 1;
  }
}

TEST_P(PartialSumsShapes, CycleAndMessageBounds) {
  auto [p, k] = GetParam();
  std::vector<Word> values(p, 1);
  auto out = run_partial_sums(p, k, values, SumOp::add(),
                              {.with_total = true, .with_next = true});
  // Paper: O(p/k + log k) cycles, O(p) messages. Constants here cover the
  // bottom-up + top-down phases plus both optional steps.
  std::size_t logk = 1;
  while ((std::size_t{1} << logk) < k) ++logk;
  const auto cycle_bound = 6 * (p / k + 1) + 4 * logk + 2;
  EXPECT_LE(out.stats.cycles, cycle_bound) << "p=" << p << " k=" << k;
  EXPECT_LE(out.stats.messages, 4 * p) << "p=" << p << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartialSumsShapes,
    ::testing::ValuesIn(std::vector<std::pair<std::size_t, std::size_t>>{
        {1, 1}, {2, 1}, {2, 2}, {3, 2}, {4, 4}, {5, 2}, {7, 3}, {8, 2},
        {8, 8}, {13, 4}, {16, 4}, {31, 8}, {32, 8}, {33, 8}, {64, 1},
        {64, 16}, {100, 10}, {128, 32}}),
    [](const auto& pinfo) {
      // Built by append: operator+ chains over std::to_string temporaries
      // trip GCC 12's -Wrestrict false positive (PR105329) at -O3.
      std::string name = "p";
      name += std::to_string(pinfo.param.first);
      name += "_k";
      name += std::to_string(pinfo.param.second);
      return name;
    });

TEST(PartialSumsTest, MaxOperator) {
  const std::size_t p = 13, k = 4;
  util::Xoshiro256StarStar rng(5);
  std::vector<Word> values(p);
  for (auto& v : values) v = rng.uniform(-1000, 1000);
  auto out = run_partial_sums(p, k, values, SumOp::max(),
                              {.with_total = true});
  Word running = std::numeric_limits<Word>::min();
  for (std::size_t i = 0; i < p; ++i) {
    running = std::max(running, values[i]);
    EXPECT_EQ(out.results[i].self, running);
    EXPECT_EQ(out.results[i].total,
              *std::max_element(values.begin(), values.end()));
  }
}

TEST(PartialSumsTest, MinOperator) {
  const std::size_t p = 9, k = 3;
  std::vector<Word> values{5, -2, 8, 0, 3, -7, 4, 1, 2};
  auto out = run_partial_sums(p, k, values, SumOp::min());
  Word running = std::numeric_limits<Word>::max();
  for (std::size_t i = 0; i < p; ++i) {
    running = std::min(running, values[i]);
    EXPECT_EQ(out.results[i].self, running);
  }
}

TEST(PartialSumsTest, SingleProcessorShortCircuits) {
  auto out = run_partial_sums(1, 1, {42}, SumOp::add(),
                              {.with_total = true, .with_next = true});
  EXPECT_EQ(out.stats.cycles, 0u);
  EXPECT_EQ(out.stats.messages, 0u);
  EXPECT_EQ(out.results[0].before, 0);
  EXPECT_EQ(out.results[0].self, 42);
  EXPECT_EQ(out.results[0].next, 42);
  EXPECT_EQ(out.results[0].total, 42);
}

TEST(PartialSumsTest, ComposesSequentially) {
  // Two collectives back to back on the same network must not interfere:
  // the second runs over the outputs of the first.
  const std::size_t p = 8, k = 2;
  std::vector<Word> values{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<Word> finals(p);
  Network net({.p = p, .k = k});
  auto prog = [](Proc& self, Word a, Word& final_out) -> ProcMain {
    auto first = co_await partial_sums(self, a, SumOp::add());
    auto second = co_await partial_sums(self, first.self, SumOp::max());
    final_out = second.self;
  };
  for (ProcId i = 0; i < p; ++i) {
    net.install(i, prog(net.proc(i), values[i], finals[i]));
  }
  net.run();
  // First pass prefixes: 1,3,6,10,15,21,28,36 — monotone, so the running
  // max equals the prefix itself.
  std::vector<Word> expect{1, 3, 6, 10, 15, 21, 28, 36};
  EXPECT_EQ(finals, expect);
}

}  // namespace
}  // namespace mcb::algo
