// Tests of the small collectives (reduce, broadcast, extrema, counting) —
// Section 1's "extrema finding" problem in the multi-channel model.
#include <gtest/gtest.h>

#include <algorithm>

#include "algo/collectives.hpp"
#include "algo/selection.hpp"
#include "util/workload.hpp"

namespace mcb::algo {
namespace {

TEST(CollectivesTest, FindMaxAcrossShapes) {
  for (auto shape : {util::Shape::kEven, util::Shape::kZipf,
                     util::Shape::kOneHot}) {
    auto w = util::make_workload(300, 12, shape, 5);
    Word expect = std::numeric_limits<Word>::min();
    for (const auto& in : w.inputs) {
      for (Word v : in) expect = std::max(expect, v);
    }
    auto res = run_find_max({.p = 12, .k = 4}, w.inputs);
    EXPECT_EQ(res.value, expect) << util::to_string(shape);
  }
}

TEST(CollectivesTest, FindMinMatchesOracle) {
  auto w = util::make_workload(200, 8, util::Shape::kRandom, 9);
  Word expect = std::numeric_limits<Word>::max();
  for (const auto& in : w.inputs) {
    for (Word v : in) expect = std::min(expect, v);
  }
  auto res = run_find_min({.p = 8, .k = 2}, w.inputs);
  EXPECT_EQ(res.value, expect);
}

TEST(CollectivesTest, ExtremaCostMatchesPartialSums) {
  // O(p/k + log k) cycles, O(p) messages: extrema are as cheap as one
  // Partial-Sums pass plus the total broadcast.
  auto w = util::make_workload(4096, 64, util::Shape::kEven, 2);
  auto res = run_find_max({.p = 64, .k = 8}, w.inputs);
  EXPECT_LE(res.stats.cycles, 4 * (64 / 8) + 20);
  EXPECT_LE(res.stats.messages, 3 * 64);
}

TEST(CollectivesTest, CountGe) {
  auto w = util::make_workload(500, 10, util::Shape::kRandom, 3);
  std::vector<Word> all;
  for (const auto& in : w.inputs) all.insert(all.end(), in.begin(), in.end());
  std::sort(all.begin(), all.end(), std::greater<Word>{});
  const Word pivot = all[123];
  auto res = run_count_ge({.p = 10, .k = 5}, w.inputs, pivot);
  EXPECT_EQ(res.value, 124);  // distinct values: exactly 124 are >= all[123]
}

TEST(CollectivesTest, EmptyLocalListsAllowed) {
  std::vector<std::vector<Word>> inputs{{}, {7}, {}, {3, 9}};
  auto res = run_find_max({.p = 4, .k = 2}, inputs);
  EXPECT_EQ(res.value, 9);
  auto cnt = run_count_ge({.p = 4, .k = 2}, inputs, 5);
  EXPECT_EQ(cnt.value, 2);  // 7 and 9
}

TEST(CollectivesTest, BroadcastFromEveryRoot) {
  const std::size_t p = 6;
  for (ProcId root = 0; root < p; ++root) {
    Network net({.p = p, .k = 3});
    std::vector<Word> got(p, 0);
    auto prog = [](Proc& self, ProcId r, Word& out) -> ProcMain {
      out = co_await broadcast_value(
          self, r, self.id() == r ? Word{555} : Word{0});
    };
    for (ProcId i = 0; i < p; ++i) {
      net.install(i, prog(net.proc(i), root, got[i]));
    }
    auto stats = net.run();
    EXPECT_EQ(stats.cycles, 1u);
    EXPECT_EQ(stats.messages, 1u);
    for (Word v : got) {
      EXPECT_EQ(v, 555);
    }
  }
}

TEST(CollectivesTest, ReduceComposesWithSelection) {
  // Use count_ge to verify a selection result in-network: the count of
  // elements >= N[d] must be exactly d (distinct values).
  auto w = util::make_workload(256, 8, util::Shape::kEven, 7);
  const std::size_t d = 100;
  auto sel = select_rank({.p = 8, .k = 4}, w.inputs, d);
  auto cnt = run_count_ge({.p = 8, .k = 4}, w.inputs, sel.value);
  EXPECT_EQ(static_cast<std::size_t>(cnt.value), d);
}

}  // namespace
}  // namespace mcb::algo
