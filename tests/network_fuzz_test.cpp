// Simulator fuzzing: random collision-free schedules are generated as
// per-processor scripts, executed, and verified event for event — every
// planned delivery observed, every planned silence silent, exact message
// and cycle accounting. This is the trust anchor under all algorithm-level
// measurements.
#include <gtest/gtest.h>

#include <vector>

#include "mcb/network.hpp"
#include "util/random.hpp"

namespace mcb {
namespace {

struct Step {
  std::optional<std::pair<ChannelId, Word>> write;
  std::optional<ChannelId> read;
  std::optional<Word> expect;  // nullopt = expect silence (when reading)
};

using Script = std::vector<Step>;

ProcMain scripted(Proc& self, const Script& script, std::size_t& failures) {
  for (const auto& step : script) {
    std::optional<WriteOp> w;
    if (step.write) {
      w = WriteOp{step.write->first, Message::of(step.write->second)};
    }
    auto got = co_await self.cycle(std::move(w), step.read);
    if (step.read) {
      const bool ok = step.expect
                          ? (got.has_value() && got->at(0) == *step.expect)
                          : !got.has_value();
      if (!ok) ++failures;
    }
  }
}

TEST(NetworkFuzzTest, RandomCollisionFreeSchedules) {
  util::Xoshiro256StarStar rng(0x5eed);
  for (int trial = 0; trial < 40; ++trial) {
    const auto p = static_cast<std::size_t>(rng.uniform(1, 12));
    const auto k =
        static_cast<std::size_t>(rng.uniform(1, static_cast<int>(p)));
    const auto cycles = static_cast<std::size_t>(rng.uniform(1, 60));

    std::vector<Script> scripts(p, Script(cycles));
    std::uint64_t planned_messages = 0;
    for (std::size_t t = 0; t < cycles; ++t) {
      // Choose a random set of writers with distinct channels.
      std::vector<std::optional<Word>> channel_value(k);
      std::vector<std::size_t> procs(p);
      for (std::size_t i = 0; i < p; ++i) procs[i] = i;
      rng.shuffle(procs);
      const auto writers = static_cast<std::size_t>(
          rng.uniform(0, static_cast<int>(std::min(p, k))));
      for (std::size_t wi = 0; wi < writers; ++wi) {
        const auto ch = static_cast<ChannelId>(wi);  // distinct channels
        const Word value = rng.uniform(-1000, 1000);
        scripts[procs[wi]][t].write = {{ch, value}};
        channel_value[ch] = value;
        ++planned_messages;
      }
      // Everyone else (and writers too, on other channels) may read.
      for (std::size_t i = 0; i < p; ++i) {
        if (rng.uniform(0, 2) != 0) continue;  // ~1/3 read probability
        const auto ch = static_cast<ChannelId>(
            rng.uniform(0, static_cast<int>(k) - 1));
        // A writer must not read its own write channel in the same cycle
        // (the model separates the two ports).
        if (scripts[i][t].write && scripts[i][t].write->first == ch) {
          continue;
        }
        scripts[i][t].read = ch;
        scripts[i][t].expect = channel_value[ch];
      }
    }

    Network net({.p = p, .k = k});
    std::size_t failures = 0;
    for (ProcId i = 0; i < p; ++i) {
      net.install(i, scripted(net.proc(i), scripts[i], failures));
    }
    auto stats = net.run();
    EXPECT_EQ(failures, 0u) << "trial " << trial << " p=" << p << " k=" << k;
    EXPECT_EQ(stats.cycles, cycles);
    EXPECT_EQ(stats.messages, planned_messages);
  }
}

// Same step semantics as scripted(), but every step runs inside a
// two-deep Task chain, so each simulated cycle allocates and frees a pair
// of coroutine frames. Random schedules through this variant are the
// fuzzing pressure on the frame arena's recycling (util/arena.hpp) — the
// ASan+UBSan CI configuration runs it with the arena ON, its default.
Task<Proc::ReadResult> tasked_step_inner(Proc& self, const Step& step) {
  std::optional<WriteOp> w;
  if (step.write) {
    w = WriteOp{step.write->first, Message::of(step.write->second)};
  }
  co_return co_await self.cycle(std::move(w), step.read);
}

Task<Proc::ReadResult> tasked_step(Proc& self, const Step& step) {
  co_return co_await tasked_step_inner(self, step);
}

ProcMain scripted_tasked(Proc& self, const Script& script,
                         std::size_t& failures) {
  for (const auto& step : script) {
    auto got = co_await tasked_step(self, step);
    if (step.read) {
      const bool ok = step.expect
                          ? (got.has_value() && got->at(0) == *step.expect)
                          : !got.has_value();
      if (!ok) ++failures;
    }
  }
}

TEST(NetworkFuzzTest, TaskHeavySchedulesRecycleFrames) {
  util::Xoshiro256StarStar rng(0xf8a3e);
  for (int trial = 0; trial < 15; ++trial) {
    const auto p = static_cast<std::size_t>(rng.uniform(1, 12));
    const auto k =
        static_cast<std::size_t>(rng.uniform(1, static_cast<int>(p)));
    const auto cycles = static_cast<std::size_t>(rng.uniform(1, 60));

    // One writer per cycle on a rotating channel; everyone else reads it.
    std::vector<Script> scripts(p, Script(cycles));
    for (std::size_t t = 0; t < cycles; ++t) {
      const std::size_t writer = t % p;
      const auto ch = static_cast<ChannelId>(t % k);
      const Word value = rng.uniform(-1000, 1000);
      scripts[writer][t].write = {{ch, value}};
      for (std::size_t i = 0; i < p; ++i) {
        if (i == writer) continue;
        scripts[i][t].read = ch;
        scripts[i][t].expect = value;
      }
    }

    Network net({.p = p, .k = k});
    std::size_t failures = 0;
    for (ProcId i = 0; i < p; ++i) {
      net.install(i, scripted_tasked(net.proc(i), scripts[i], failures));
    }
    auto stats = net.run();
    EXPECT_EQ(failures, 0u) << "trial " << trial << " p=" << p << " k=" << k;
    EXPECT_EQ(stats.cycles, cycles);
    EXPECT_EQ(stats.messages, cycles);
#if MCB_FRAME_ARENA_ENABLED
    // Two Task frames per processor per cycle, all recycled by run's end.
    EXPECT_GE(stats.frame_allocs, 2 * p * cycles);
    EXPECT_EQ(stats.frame_allocs, stats.frame_frees);
#endif
  }
}

TEST(NetworkFuzzTest, RandomCollisionsAlwaysDetected) {
  util::Xoshiro256StarStar rng(0xbad);
  for (int trial = 0; trial < 20; ++trial) {
    const auto p = static_cast<std::size_t>(rng.uniform(2, 10));
    const auto k =
        static_cast<std::size_t>(rng.uniform(1, static_cast<int>(p)));
    const auto cycles = static_cast<std::size_t>(rng.uniform(1, 20));
    const auto bad_cycle =
        static_cast<std::size_t>(rng.uniform(0, static_cast<int>(cycles) - 1));
    const auto bad_channel =
        static_cast<ChannelId>(rng.uniform(0, static_cast<int>(k) - 1));

    std::vector<Script> scripts(p, Script(cycles));
    // Two distinct processors write the same channel in the same cycle.
    scripts[0][bad_cycle].write = {{bad_channel, 1}};
    scripts[1][bad_cycle].write = {{bad_channel, 2}};

    Network net({.p = p, .k = k});
    std::size_t failures = 0;
    for (ProcId i = 0; i < p; ++i) {
      net.install(i, scripted(net.proc(i), scripts[i], failures));
    }
    try {
      net.run();
      FAIL() << "collision not detected, trial " << trial;
    } catch (const CollisionError& e) {
      EXPECT_EQ(e.cycle(), bad_cycle);
      EXPECT_EQ(e.channel(), bad_channel);
    }
  }
}

}  // namespace
}  // namespace mcb
