// Unit tests for the bench harness guard helpers (bench/bench_common.hpp).
// The sorted-output guard aborts benches on wrong results; a broken guard
// would either kill valid benchmarks or wave bad schedules through, so its
// predicate is tested here against the library's actual output contract
// (descending — see algo/sort.hpp) and the historical failure modes.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "../bench/bench_common.hpp"
#include "algo/sort.hpp"
#include "util/workload.hpp"

namespace mcb::bench {
namespace {

TEST(BenchCommonTest, AcceptsDescendingOutput) {
  EXPECT_TRUE(is_sorted_output({{9, 7}, {7, 3}, {2}}));
  EXPECT_TRUE(is_sorted_output({{5, 4, 3}, {2, 1, 0}}));
}

TEST(BenchCommonTest, AcceptsAscendingOutput) {
  // Both orders are handled explicitly; a future ascending-order algorithm
  // must not be killed by the guard.
  EXPECT_TRUE(is_sorted_output({{1, 2}, {3, 4}, {5}}));
}

TEST(BenchCommonTest, RejectsUnsortedOutput) {
  EXPECT_FALSE(is_sorted_output({{3, 1}, {2}}));       // down then up
  EXPECT_FALSE(is_sorted_output({{1, 5}, {4}}));       // up then down
  EXPECT_FALSE(is_sorted_output({{9, 7}, {8, 3}}));    // cross-processor
}

TEST(BenchCommonTest, EmptyListsAreHandled) {
  // The seed guard initialized its comparison with a sentinel 0 when the
  // first processor's list was empty, spuriously rejecting any positive
  // descending output that followed. Comparison must start at the first
  // element actually present.
  EXPECT_TRUE(is_sorted_output({{}, {9, 7}, {3}}));
  EXPECT_TRUE(is_sorted_output({{9, 7}, {}, {3}}));
  EXPECT_TRUE(is_sorted_output({}));
  EXPECT_TRUE(is_sorted_output({{}, {}}));
  EXPECT_TRUE(is_sorted_output({{42}}));
  EXPECT_FALSE(is_sorted_output({{}, {3, 9}, {}, {7}}));
}

TEST(BenchCommonTest, EqualRunsAreSortedEitherWay) {
  EXPECT_TRUE(is_sorted_output({{4, 4}, {4}}));
}

TEST(BenchCommonTest, NegativeValuesAreCompared) {
  EXPECT_TRUE(is_sorted_output({{-1, -2}, {-3}}));
  EXPECT_FALSE(is_sorted_output({{-3, -1}, {-2}}));
}

TEST(BenchCommonTest, AcceptsTheLibrarysActualSortOutput) {
  // End-to-end agreement with the real output contract: the guard must
  // accept what algo::sort produces and reject the raw (shuffled) input.
  auto w = util::make_workload(128, 8, util::Shape::kEven, 3);
  auto res = algo::sort({.p = 8, .k = 4}, w.inputs);
  EXPECT_TRUE(is_sorted_output(res.run.outputs));
  EXPECT_FALSE(is_sorted_output(w.inputs));  // shuffled permutation
  EXPECT_TRUE(is_permutation_output(res.run.outputs, w.inputs));
}

// --- permutation guard --------------------------------------------------------
//
// Ordering alone is not a sort check: an implementation that loses or
// duplicates elements can still emit a perfectly ordered sequence. These pin
// the failure modes the content fingerprint must catch.

TEST(BenchCommonTest, PermutationAcceptsReorderings) {
  EXPECT_TRUE(is_permutation_output({{9, 7}, {3}}, {{3, 9}, {7}}));
  // Redistribution across processors is fine — only content counts.
  EXPECT_TRUE(is_permutation_output({{9, 7, 3}, {}}, {{3}, {9, 7}}));
  EXPECT_TRUE(is_permutation_output({}, {}));
}

TEST(BenchCommonTest, PermutationRejectsDroppedElements) {
  // Sorted AND missing an element: is_sorted_output alone waves it through;
  // the permutation guard must reject it.
  const std::vector<std::vector<Word>> input = {{5, 2}, {9, 1}};
  const std::vector<std::vector<Word>> dropped = {{9, 5}, {2}};
  EXPECT_TRUE(is_sorted_output(dropped));
  EXPECT_FALSE(is_permutation_output(dropped, input));
}

TEST(BenchCommonTest, PermutationRejectsDuplicatedElements) {
  const std::vector<std::vector<Word>> input = {{5, 2}, {9, 1}};
  const std::vector<std::vector<Word>> duped = {{9, 5}, {5, 2, 1}};
  EXPECT_TRUE(is_sorted_output(duped));
  EXPECT_FALSE(is_permutation_output(duped, input));
}

TEST(BenchCommonTest, PermutationRejectsSubstitutedValues) {
  // Same count, same ordering, different content — catches a sort that
  // fabricates values (count- or sum-only checks can be fooled; the hashed
  // fingerprint components make compensating errors implausible).
  EXPECT_FALSE(is_permutation_output({{9, 4}}, {{9, 5}}));
  // ... including swaps that preserve the sum.
  EXPECT_FALSE(is_permutation_output({{8, 6}}, {{9, 5}}));
}

TEST(BenchCommonTest, PermutationCountsMultiplicity) {
  EXPECT_TRUE(is_permutation_output({{4, 4, 1}}, {{4, 1, 4}}));
  EXPECT_FALSE(is_permutation_output({{4, 4, 1}}, {{4, 1, 1}}));
}

}  // namespace
}  // namespace mcb::bench
