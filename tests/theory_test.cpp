// Tests of the theory module: bound formulas, the hard sorting instances of
// Theorems 3/5, and the selection adversary game of Theorem 1 — including
// the end-to-end claim that any exposure strategy pays at least the
// Omega(...) number of messages, and that our real algorithms stay within
// constant factors of the lower bounds on the hard instances.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "algo/selection.hpp"
#include "algo/sort.hpp"
#include "theory/adversary.hpp"
#include "theory/bounds.hpp"
#include "util/random.hpp"
#include "util/workload.hpp"

namespace mcb::theory {
namespace {

TEST(BoundsTest, SortingFormulas) {
  // Even: n_max == n_max2, so the message bound is n/2.
  std::vector<std::size_t> even(8, 16);
  EXPECT_DOUBLE_EQ(sorting_messages_lower(even), 64.0);
  EXPECT_DOUBLE_EQ(sorting_messages_term(128), 128.0);
  EXPECT_DOUBLE_EQ(sorting_cycles_term(128, 4, 16), 32.0);
  // Skewed: n_max dominates the cycle bound.
  std::vector<std::size_t> skew{100, 1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(sorting_cycles_lower(skew, 4), 4.0);  // n - n_max
  EXPECT_DOUBLE_EQ(sorting_cycles_term(104, 4, 100), 100.0);
}

TEST(BoundsTest, SelectionFormulas) {
  std::vector<std::size_t> even(8, 16);
  // 7 pairs-partners contribute log2(32) = 5 each, halved.
  EXPECT_DOUBLE_EQ(selection_messages_lower(even), 0.5 * 7 * 5);
  EXPECT_GT(selection_messages_term(8, 2, 128), 0.0);
  EXPECT_DOUBLE_EQ(selection_cycles_lower(even, 2),
                   selection_messages_lower(even) / 2.0);
  // Theorem 2 at d = n/2 must be within a constant of Theorem 1.
  const double t2 = selection_messages_lower_rank(even, 64);
  EXPECT_GT(t2, 0.0);
  EXPECT_LE(t2, 2.0 * selection_messages_lower(even) + 8.0);
}

TEST(HardInstanceTest, CircularDistributionSeparatesNeighbours) {
  const std::vector<std::size_t> sizes{4, 4, 4, 4};
  auto inputs = hard_sort_instance(sizes);
  ASSERT_EQ(inputs.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(inputs[i].size(), sizes[i]);
  }
  // Map each value to its processor; consecutive values (descending global
  // order) must alternate processors in the covered prefix.
  std::vector<std::size_t> owner(17, SIZE_MAX);
  for (std::size_t i = 0; i < 4; ++i) {
    for (Word w : inputs[i]) {
      owner[static_cast<std::size_t>(w)] = i;
    }
  }
  for (std::size_t v = 16; v > 1; --v) {
    EXPECT_NE(owner[v], owner[v - 1]) << "values " << v << "," << v - 1;
  }
}

TEST(HardInstanceTest, CircularDistributionUnevenSizes) {
  const std::vector<std::size_t> sizes{6, 2, 1, 1};
  auto inputs = hard_sort_instance(sizes);
  std::set<Word> all;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_EQ(inputs[i].size(), sizes[i]);
    all.insert(inputs[i].begin(), inputs[i].end());
  }
  EXPECT_EQ(all.size(), 10u);  // all values distinct
}

TEST(HardInstanceTest, PmaxHoldsEveryOtherRank) {
  auto inputs = hard_sort_instance_pmax(8, 4);
  ASSERT_EQ(inputs[0].size(), 8u);
  // P_1's values are exactly the odd values (even ranks of the descending
  // order: N[2], N[4], ... = 15, 13, ...).
  for (Word w : inputs[0]) {
    EXPECT_EQ(w % 2, 1) << w;
  }
}

TEST(HardInstanceTest, SortingHardInstanceForcesMessages) {
  // Run the real sorting algorithm on the Theorem 3 instance: measured
  // messages must be >= the lower bound (sanity of both sides).
  const std::vector<std::size_t> sizes(8, 32);
  auto inputs = hard_sort_instance(sizes);
  auto res = algo::sort({.p = 8, .k = 4}, inputs);
  EXPECT_GE(double(res.run.stats.messages), sorting_messages_lower(sizes));
  // And within a constant factor of optimal (Theta-tightness).
  EXPECT_LE(double(res.run.stats.messages),
            16.0 * sorting_messages_lower(sizes));
}

TEST(AdversaryTest, InitialPairingEqualizesCandidates) {
  SelectionAdversary adv({10, 4, 8, 6});
  // Pairs by size: (10, 8) -> 8 each; (6, 4) -> 4 each.
  EXPECT_EQ(adv.candidates(0), 8u);
  EXPECT_EQ(adv.candidates(2), 8u);
  EXPECT_EQ(adv.candidates(3), 4u);
  EXPECT_EQ(adv.candidates(1), 4u);
  EXPECT_EQ(adv.total_candidates(), 24u);
}

TEST(AdversaryTest, OddProcessorOutKeepsNoCandidates) {
  SelectionAdversary adv({8, 8, 8});
  EXPECT_EQ(adv.total_candidates(), 16u);
  EXPECT_EQ(adv.candidates(2), 0u);
}

TEST(AdversaryTest, ExposureEliminatesAtMostHalfPlusOnePerPair) {
  SelectionAdversary adv({16, 16});
  const std::size_t pair_before = adv.total_candidates();  // 2m = 32
  const std::size_t gone = adv.expose(0, 8);  // expose P_1's median
  EXPECT_LE(gone, pair_before / 2 + 1);       // <= m + 1
  // The pair stays balanced.
  EXPECT_EQ(adv.candidates(0), adv.candidates(1));
}

TEST(AdversaryTest, FloorsAtTheFinalPair) {
  // The game bottoms out with the last balanced pair of candidates — the
  // surviving median is one of them, and the adversary refuses to
  // eliminate further.
  SelectionAdversary adv({2, 2});
  for (int round = 0; round < 100 && adv.total_candidates() > 2; ++round) {
    for (std::size_t proc = 0; proc < 2; ++proc) {
      if (adv.candidates(proc) > 0) {
        adv.expose(proc, (adv.candidates(proc) + 1) / 2);
      }
    }
  }
  EXPECT_EQ(adv.total_candidates(), 2u);
  EXPECT_EQ(adv.expose(0, 1), 0u);  // refused
  EXPECT_EQ(adv.total_candidates(), 2u);
}

TEST(AdversaryTest, AnyStrategyPaysTheLowerBound) {
  // Random exposure strategies against the game: messages until only the
  // final pair remains always reach the Theorem 1 formula (up to the
  // per-pair discretization slack the Omega notation absorbs).
  util::Xoshiro256StarStar rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::size_t> sizes(8);
    for (auto& s : sizes) {
      s = static_cast<std::size_t>(rng.uniform(2, 64));
    }
    SelectionAdversary adv(sizes);
    const double bound = selection_messages_lower(sizes);
    std::size_t guard = 0;
    while (adv.total_candidates() > 2) {
      // Pick a random processor with candidates and a random position.
      std::size_t proc;
      do {
        proc = static_cast<std::size_t>(rng.uniform(0, 7));
      } while (adv.candidates(proc) == 0);
      adv.expose(proc, static_cast<std::size_t>(rng.uniform(
                           1, static_cast<std::int64_t>(
                                  adv.candidates(proc)))));
      ASSERT_LT(++guard, 100000u) << "game did not converge";
    }
    EXPECT_GE(double(adv.messages()), bound - double(sizes.size()))
        << "trial " << trial;
  }
}

TEST(AdversaryTest, RankVariantCapsCandidates) {
  // Theorem 2 game: total candidates start <= 2d and every paired
  // processor keeps at least ceil(d/p).
  std::vector<std::size_t> sizes(8, 64);  // n = 512
  const std::size_t d = 32;
  SelectionAdversary adv(sizes, d);
  EXPECT_LE(adv.total_candidates(), 2 * d);
  const std::size_t floor_each = (d + sizes.size() - 1) / sizes.size();
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_GE(adv.candidates(i), floor_each) << "P" << i + 1;
  }
}

TEST(AdversaryTest, RankVariantStillPaysItsBound) {
  std::vector<std::size_t> sizes(16, 128);  // n = 2048
  const std::size_t d = 64;
  SelectionAdversary adv(sizes, d);
  const double bound = selection_messages_lower_rank(sizes, d);
  std::size_t guard = 0;
  while (adv.total_candidates() > 2 && ++guard < 100000) {
    for (std::size_t proc = 0; proc < sizes.size(); ++proc) {
      if (adv.total_candidates() <= 2) break;
      const std::size_t c = adv.candidates(proc);
      if (c > 0) adv.expose(proc, (c + 1) / 2);
    }
  }
  EXPECT_GE(double(adv.messages()), bound - double(sizes.size()));
}

TEST(AdversaryTest, RankVariantLeavesSmallInputsAlone) {
  // d large relative to the sizes: nothing needs trimming; identical to
  // the Theorem 1 game.
  std::vector<std::size_t> sizes{6, 4, 8, 2};
  SelectionAdversary t1(sizes);
  SelectionAdversary t2(sizes, 100);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_EQ(t1.candidates(i), t2.candidates(i));
  }
}

TEST(AdversaryTest, OptimalStrategyStaysNearTheBound) {
  // Always exposing the median is the algorithm's best play; the message
  // count must be Theta(bound) — within a small constant factor above it.
  std::vector<std::size_t> sizes(16, 256);
  SelectionAdversary adv(sizes);
  const double bound = selection_messages_lower(sizes);
  std::size_t guard = 0;
  while (adv.total_candidates() > 2) {
    for (std::size_t proc = 0; proc < sizes.size(); ++proc) {
      if (adv.total_candidates() <= 2) break;
      const std::size_t c = adv.candidates(proc);
      if (c > 0) adv.expose(proc, (c + 1) / 2);
    }
    ASSERT_LT(++guard, 10000u);
  }
  EXPECT_GE(double(adv.messages()), bound - double(sizes.size()));
  EXPECT_LE(double(adv.messages()), 4.0 * bound + 16.0);
}

TEST(AdversaryTest, RealSelectionBeatsLowerBoundWithinConstant) {
  // Our algorithm's measured messages on random inputs sit between the
  // Omega lower bound and a constant multiple of the Theta term.
  for (auto [p, k, n] : std::vector<std::array<std::size_t, 3>>{
           {8, 2, 256}, {16, 4, 1024}, {32, 4, 2048}}) {
    auto w = util::make_workload(n, p, util::Shape::kEven, 3);
    std::vector<std::size_t> sizes(p, n / p);
    auto res = algo::select_median({.p = p, .k = k}, w.inputs);
    EXPECT_GE(double(res.stats.messages), selection_messages_lower(sizes));
    EXPECT_LE(double(res.stats.messages),
              60.0 * selection_messages_term(p, k, n));
  }
}

}  // namespace
}  // namespace mcb::theory
