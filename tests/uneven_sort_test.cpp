// Tests of the uneven-distribution sorting algorithm (Section 7.2):
// correctness across skew shapes, segment ownership by original counts, the
// Theta(max{n/k, n_max}) cycle bound and Theta(n) message bound of
// Corollary 6, and group-formation edge cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "algo/common.hpp"
#include "algo/uneven_sort.hpp"
#include "util/workload.hpp"

namespace mcb::algo {
namespace {

void expect_sorted_outputs(const std::vector<std::vector<Word>>& inputs,
                           const std::vector<std::vector<Word>>& outputs) {
  std::vector<Word> all;
  for (const auto& x : inputs) all.insert(all.end(), x.begin(), x.end());
  std::sort(all.begin(), all.end(), std::greater<Word>{});
  std::size_t at = 0;
  ASSERT_EQ(inputs.size(), outputs.size());
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    ASSERT_EQ(outputs[i].size(), inputs[i].size())
        << "P" << i + 1 << " count changed";
    for (Word w : outputs[i]) {
      ASSERT_EQ(w, all[at]) << "P" << i + 1 << " rank " << at;
      ++at;
    }
  }
}

struct Shape {
  std::size_t p, k, n;
  util::Shape dist;
};

class UnevenSortSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(UnevenSortSweep, SortsAndMeetsBounds) {
  const auto& prm = GetParam();
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    auto w = util::make_workload(prm.n, prm.p, prm.dist, seed + 1);
    auto res = uneven_sort({.p = prm.p, .k = prm.k}, w.inputs);
    expect_sorted_outputs(w.inputs, res.run.outputs);
    EXPECT_LE(res.groups, prm.k);

    const std::size_t n_max = w.max_local();
    const std::size_t bound_driver =
        std::max(prm.n / prm.k, n_max) + prm.k * prm.k + prm.p;
    EXPECT_LE(res.run.stats.cycles, 10 * bound_driver)
        << "cycles vs Theta(max{n/k, n_max})";
    EXPECT_LE(res.run.stats.messages, 10 * prm.n + 8 * prm.p)
        << "messages vs Theta(n)";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, UnevenSortSweep,
    ::testing::ValuesIn(std::vector<Shape>{
        {4, 2, 64, util::Shape::kZipf},
        {4, 2, 64, util::Shape::kOneHot},
        {8, 4, 400, util::Shape::kRandom},
        {8, 4, 400, util::Shape::kZipf},
        {8, 4, 400, util::Shape::kStaircase},
        {16, 4, 1000, util::Shape::kZipf},
        {16, 4, 1000, util::Shape::kOneHot},
        {16, 8, 4096, util::Shape::kRandom},
        {5, 3, 200, util::Shape::kStaircase},
        {7, 2, 133, util::Shape::kRandom},
        {12, 4, 480, util::Shape::kEven},  // even input is a special case
        {3, 1, 60, util::Shape::kZipf},    // single channel
    }),
    [](const auto& pinfo) {
      return "p" + std::to_string(pinfo.param.p) + "_k" +
             std::to_string(pinfo.param.k) + "_n" +
             std::to_string(pinfo.param.n) + "_" +
             util::to_string(pinfo.param.dist);
    });

TEST(UnevenSortTest, SingleProcessor) {
  std::vector<std::vector<Word>> inputs{{3, 1, 4, 1, 5, 9, 2, 6}};
  auto res = uneven_sort({.p = 1, .k = 1}, inputs);
  EXPECT_EQ(res.run.outputs[0], (std::vector<Word>{9, 6, 5, 4, 3, 2, 1, 1}));
}

TEST(UnevenSortTest, OneElementEach) {
  std::vector<std::vector<Word>> inputs{{4}, {1}, {3}, {2}};
  auto res = uneven_sort({.p = 4, .k = 2}, inputs);
  expect_sorted_outputs(inputs, res.run.outputs);
}

TEST(UnevenSortTest, ExtremeSkewSingleHolder) {
  // One processor holds everything except one element each elsewhere.
  auto w = util::make_workload(200, 8, util::Shape::kOneHot, 7);
  auto res = uneven_sort({.p = 8, .k = 4}, w.inputs);
  expect_sorted_outputs(w.inputs, res.run.outputs);
  // n_max ~ n: the cycle bound degrades to Theta(n_max), which is expected.
  EXPECT_LE(res.run.stats.cycles, 12 * w.max_local());
}

TEST(UnevenSortTest, GroupCountNeverExceedsK) {
  for (std::size_t k : {1u, 2u, 3u, 5u, 8u}) {
    auto w = util::make_workload(600, 8, util::Shape::kRandom, k);
    auto res = uneven_sort({.p = 8, .k = k}, w.inputs);
    EXPECT_LE(res.groups, k);
    expect_sorted_outputs(w.inputs, res.run.outputs);
  }
}

TEST(UnevenSortTest, EmptyProcessorRejected) {
  std::vector<std::vector<Word>> inputs{{1, 2}, {}};
  EXPECT_THROW(uneven_sort({.p = 2, .k = 1}, inputs), std::invalid_argument);
}

TEST(UnevenSortTest, DummyValueRejected) {
  std::vector<std::vector<Word>> inputs{{1}, {kDummy}};
  EXPECT_THROW(uneven_sort({.p = 2, .k = 2}, inputs), std::invalid_argument);
}

TEST(UnevenSortTest, DuplicatesAcrossProcessors) {
  std::vector<std::vector<Word>> inputs{{5, 5, 5}, {5, 5}, {5, 1, 9}, {5}};
  auto res = uneven_sort({.p = 4, .k = 2}, inputs);
  expect_sorted_outputs(inputs, res.run.outputs);
}

TEST(UnevenSortTest, PhaseBreakdownCoversRun) {
  auto w = util::make_workload(512, 8, util::Shape::kZipf, 3);
  auto res = uneven_sort({.p = 8, .k = 4}, w.inputs);
  Cycle total = 0;
  for (const char* ph : {"phase0a:form", "phase0b:collect", "core:columnsort",
                         "phase10:redistribute"}) {
    const auto* stats = res.run.stats.phase(ph);
    ASSERT_NE(stats, nullptr) << ph;
    total += stats->cycles;
  }
  EXPECT_EQ(total, res.run.stats.cycles);
}

}  // namespace
}  // namespace mcb::algo
