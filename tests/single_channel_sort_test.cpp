// Tests of the single-channel sorting algorithms of Section 6.1: Rank-Sort
// and the distributed Merge-Sort. Both sort arbitrary (uneven)
// distributions in linear cycles/messages; Merge-Sort additionally keeps
// O(1) auxiliary storage per processor — asserted here via the simulator's
// storage accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "algo/mergesort.hpp"
#include "algo/ranksort.hpp"
#include "util/workload.hpp"

namespace mcb::algo {
namespace {

using SortFn = AlgoResult (*)(const SimConfig&,
                              const std::vector<std::vector<Word>>&,
                              TraceSink*);

struct Case {
  const char* name;
  SortFn fn;
};

void expect_sorted_outputs(const std::vector<std::vector<Word>>& inputs,
                           const std::vector<std::vector<Word>>& outputs) {
  std::vector<Word> all;
  for (const auto& x : inputs) all.insert(all.end(), x.begin(), x.end());
  std::sort(all.begin(), all.end(), std::greater<Word>{});
  std::size_t at = 0;
  ASSERT_EQ(inputs.size(), outputs.size());
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    ASSERT_EQ(outputs[i].size(), inputs[i].size()) << "P" << i + 1;
    for (Word w : outputs[i]) {
      ASSERT_EQ(w, all[at]) << "P" << i + 1 << " rank " << at;
      ++at;
    }
  }
}

class SingleChannelSort : public ::testing::TestWithParam<Case> {};

TEST_P(SingleChannelSort, SortsEvenDistributions) {
  for (auto [p, ni] : std::vector<std::pair<std::size_t, std::size_t>>{
           {1, 5}, {2, 1}, {2, 8}, {5, 4}, {8, 8}, {16, 3}}) {
    auto w = util::make_workload(p * ni, p, util::Shape::kEven, p * 100 + ni);
    auto res = GetParam().fn({.p = p, .k = 1}, w.inputs, nullptr);
    expect_sorted_outputs(w.inputs, res.outputs);
  }
}

TEST_P(SingleChannelSort, SortsUnevenDistributions) {
  for (auto shape : {util::Shape::kZipf, util::Shape::kOneHot,
                     util::Shape::kRandom, util::Shape::kStaircase}) {
    for (std::size_t p : {3u, 7u, 12u}) {
      auto w = util::make_workload(6 * p, p, shape, p);
      auto res = GetParam().fn({.p = p, .k = 1}, w.inputs, nullptr);
      expect_sorted_outputs(w.inputs, res.outputs);
    }
  }
}

TEST_P(SingleChannelSort, HandlesDuplicates) {
  std::vector<std::vector<Word>> inputs{
      {7, 7, 7}, {7, 1, 7, 1}, {2, 7}, {1}};
  auto res = GetParam().fn({.p = 4, .k = 1}, inputs, nullptr);
  expect_sorted_outputs(inputs, res.outputs);
}

TEST_P(SingleChannelSort, LinearCyclesAndMessages) {
  const std::size_t p = 8, ni = 32;
  const std::size_t n = p * ni;
  auto w = util::make_workload(n, p, util::Shape::kEven, 5);
  auto res = GetParam().fn({.p = p, .k = 1}, w.inputs, nullptr);
  EXPECT_LE(res.stats.cycles, 5 * n + 4 * p);
  EXPECT_LE(res.stats.messages, 5 * n + 4 * p);
  EXPECT_GE(res.stats.messages, n - ni);  // lower bound: most elements move
}

TEST_P(SingleChannelSort, WorksOnMultiChannelNetworkUsingOneChannel) {
  // The algorithms only touch channel 0 even when more channels exist.
  auto w = util::make_workload(40, 5, util::Shape::kRandom, 3);
  auto res = GetParam().fn({.p = 5, .k = 4}, w.inputs, nullptr);
  expect_sorted_outputs(w.inputs, res.outputs);
  for (std::size_t c = 1; c < 4; ++c) {
    EXPECT_EQ(res.stats.messages_per_channel[c], 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, SingleChannelSort,
                         ::testing::Values(Case{"ranksort", &ranksort},
                                           Case{"mergesort", &mergesort}),
                         [](const auto& pinfo) { return pinfo.param.name; });

TEST(MergeSortMemoryTest, ConstantAuxiliaryStorage) {
  // The point of Merge-Sort over Rank-Sort: O(1) aux words per processor,
  // independent of n. Compare n = 64 and n = 1024.
  for (std::size_t ni : {8u, 128u}) {
    auto w = util::make_workload(8 * ni, 8, util::Shape::kEven, 1);
    auto res = mergesort({.p = 8, .k = 1}, w.inputs);
    EXPECT_LE(res.stats.max_peak_aux(), 16u) << "ni=" << ni;
  }
}

TEST(RankSortMemoryTest, LinearAuxiliaryStorageIsAccounted) {
  // Rank-Sort's counters are Theta(n_i + n) aux words; verify the
  // accounting shows growth with n (contrast with Merge-Sort above).
  auto small = ranksort({.p = 4, .k = 1},
                        util::make_workload(32, 4, util::Shape::kEven, 1)
                            .inputs);
  auto large = ranksort({.p = 4, .k = 1},
                        util::make_workload(512, 4, util::Shape::kEven, 1)
                            .inputs);
  EXPECT_GT(large.stats.max_peak_aux(), small.stats.max_peak_aux());
}

TEST(SingleChannelSortTest, EmptyProcessorRejected) {
  std::vector<std::vector<Word>> inputs{{1, 2}, {}};
  EXPECT_THROW(ranksort({.p = 2, .k = 1}, inputs), std::invalid_argument);
  EXPECT_THROW(mergesort({.p = 2, .k = 1}, inputs), std::invalid_argument);
}

TEST(SingleChannelSortTest, GroupCollectivesRunConcurrently) {
  // Two groups on two channels sort independently at the same time — the
  // usage pattern of the memory-efficient Columnsort (Section 6.1).
  const std::size_t p = 6;
  std::vector<std::vector<Word>> inputs{{9, 2}, {5}, {7, 1, 3},
                                        {8, 8}, {4}, {6, 0, 2}};
  std::vector<std::vector<Word>> outputs(p);
  std::vector<std::size_t> sizes_a{2, 1, 3}, sizes_b{2, 1, 3};
  Network net({.p = p, .k = 2});
  auto prog = [](Proc& self, GroupSpec grp, std::vector<std::size_t> sizes,
                 const std::vector<Word>& in,
                 std::vector<Word>& out) -> ProcMain {
    out = in;
    co_await ranksort_group(self, grp, sizes, out);
  };
  for (ProcId i = 0; i < 3; ++i) {
    net.install(i, prog(net.proc(i), GroupSpec{0, 3, 0}, sizes_a, inputs[i],
                        outputs[i]));
  }
  for (ProcId i = 3; i < 6; ++i) {
    net.install(i, prog(net.proc(i), GroupSpec{3, 3, 1}, sizes_b, inputs[i],
                        outputs[i]));
  }
  net.run();
  // Group A sorted: 9 7 | 5 | 3 2 1 ; group B: 8 8 | 6 | 4 2 0.
  EXPECT_EQ(outputs[0], (std::vector<Word>{9, 7}));
  EXPECT_EQ(outputs[1], (std::vector<Word>{5}));
  EXPECT_EQ(outputs[2], (std::vector<Word>{3, 2, 1}));
  EXPECT_EQ(outputs[3], (std::vector<Word>{8, 8}));
  EXPECT_EQ(outputs[4], (std::vector<Word>{6}));
  EXPECT_EQ(outputs[5], (std::vector<Word>{4, 2, 0}));
}

}  // namespace
}  // namespace mcb::algo
