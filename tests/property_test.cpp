// Randomized property tests: many random (p, k, n, shape, seed,
// algorithm) configurations, each checked for full invariant sets —
// correctness against the oracle, count preservation, message/cycle sanity,
// per-channel accounting consistency, and idempotent determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "mcb/mcb.hpp"
#include "util/random.hpp"

namespace mcb {
namespace {

using algo::SortAlgorithm;

struct RandomConfig {
  std::size_t p, k, n;
  util::Shape shape;
  std::uint64_t seed;
  SortAlgorithm algorithm;
};

RandomConfig draw_config(util::Xoshiro256StarStar& rng, bool even_only) {
  static constexpr std::size_t kPs[] = {2, 3, 4, 6, 8, 12, 16, 24, 32};
  static constexpr util::Shape kShapes[] = {
      util::Shape::kEven, util::Shape::kZipf, util::Shape::kOneHot,
      util::Shape::kRandom, util::Shape::kStaircase};
  RandomConfig cfg;
  cfg.p = kPs[static_cast<std::size_t>(rng.uniform(0, 8))];
  cfg.k = 1 + static_cast<std::size_t>(
                  rng.uniform(0, static_cast<std::int64_t>(cfg.p) - 1));
  cfg.shape = even_only
                  ? util::Shape::kEven
                  : kShapes[static_cast<std::size_t>(rng.uniform(0, 4))];
  const auto per = static_cast<std::size_t>(rng.uniform(1, 40));
  cfg.n = cfg.p * per;  // p | n so every shape is constructible
  cfg.seed = static_cast<std::uint64_t>(rng.uniform(0, 1 << 20));
  return cfg;
}

void check_sort_invariants(const RandomConfig& cfg,
                           const std::vector<std::vector<Word>>& inputs,
                           const algo::SortOutcome& out) {
  // 1. Correctness + per-processor count preservation.
  std::vector<Word> expect;
  for (const auto& in : inputs) expect.insert(expect.end(), in.begin(),
                                              in.end());
  std::sort(expect.begin(), expect.end(), std::greater<Word>{});
  std::size_t at = 0;
  ASSERT_EQ(out.run.outputs.size(), inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    ASSERT_EQ(out.run.outputs[i].size(), inputs[i].size())
        << "P" << i + 1 << " count changed";
    for (Word w : out.run.outputs[i]) {
      ASSERT_EQ(w, expect[at++]);
    }
  }
  // 2. Accounting consistency: per-proc and per-channel sums match the
  // total; no channel beyond k was used.
  const auto& st = out.run.stats;
  EXPECT_EQ(std::accumulate(st.messages_per_proc.begin(),
                            st.messages_per_proc.end(), std::uint64_t{0}),
            st.messages);
  EXPECT_EQ(std::accumulate(st.messages_per_channel.begin(),
                            st.messages_per_channel.end(), std::uint64_t{0}),
            st.messages);
  EXPECT_EQ(st.messages_per_channel.size(), cfg.k);
  // 3. Coarse complexity sanity: no algorithm needs more than ~6n messages
  // per transform phase or 40n cycles (these catch runaway schedules, not
  // tight bounds — those live in the per-algorithm tests).
  EXPECT_LE(st.messages, 40 * cfg.n + 20 * cfg.p);
  EXPECT_LE(st.cycles, 40 * cfg.n + 20 * cfg.p);
}

TEST(PropertyTest, RandomConfigsAllSortersEvenInputs) {
  util::Xoshiro256StarStar rng(0xfeed);
  static constexpr SortAlgorithm kAll[] = {
      SortAlgorithm::kColumnsortEven, SortAlgorithm::kVirtualColumnsort,
      SortAlgorithm::kRecursive,      SortAlgorithm::kUnevenColumnsort,
      SortAlgorithm::kRankSort,       SortAlgorithm::kMergeSort,
      SortAlgorithm::kCentral};
  for (int trial = 0; trial < 60; ++trial) {
    auto cfg = draw_config(rng, /*even_only=*/true);
    cfg.algorithm = kAll[static_cast<std::size_t>(rng.uniform(0, 6))];
    auto w = util::make_workload(cfg.n, cfg.p, cfg.shape, cfg.seed);
    auto out = algo::sort({.p = cfg.p, .k = cfg.k}, w.inputs,
                          {.algorithm = cfg.algorithm});
    SCOPED_TRACE(::testing::Message()
                 << "trial " << trial << ": p=" << cfg.p << " k=" << cfg.k
                 << " n=" << cfg.n << " algo="
                 << algo::to_string(cfg.algorithm));
    check_sort_invariants(cfg, w.inputs, out);
  }
}

TEST(PropertyTest, RandomConfigsUnevenSorters) {
  util::Xoshiro256StarStar rng(0xbeef);
  static constexpr SortAlgorithm kUneven[] = {
      SortAlgorithm::kUnevenColumnsort, SortAlgorithm::kRankSort,
      SortAlgorithm::kMergeSort, SortAlgorithm::kCentral};
  for (int trial = 0; trial < 60; ++trial) {
    auto cfg = draw_config(rng, /*even_only=*/false);
    cfg.algorithm = kUneven[static_cast<std::size_t>(rng.uniform(0, 3))];
    auto w = util::make_workload(cfg.n, cfg.p, cfg.shape, cfg.seed);
    auto out = algo::sort({.p = cfg.p, .k = cfg.k}, w.inputs,
                          {.algorithm = cfg.algorithm});
    SCOPED_TRACE(::testing::Message()
                 << "trial " << trial << ": p=" << cfg.p << " k=" << cfg.k
                 << " n=" << cfg.n << " shape=" << util::to_string(cfg.shape)
                 << " algo=" << algo::to_string(cfg.algorithm));
    check_sort_invariants(cfg, w.inputs, out);
  }
}

TEST(PropertyTest, RandomSelections) {
  util::Xoshiro256StarStar rng(0xcafe);
  for (int trial = 0; trial < 60; ++trial) {
    auto cfg = draw_config(rng, /*even_only=*/false);
    auto w = util::make_workload(cfg.n, cfg.p, cfg.shape, cfg.seed);
    const auto d = static_cast<std::size_t>(
        rng.uniform(1, static_cast<std::int64_t>(cfg.n)));
    auto res = algo::select_rank({.p = cfg.p, .k = cfg.k}, w.inputs, d);

    std::vector<Word> all;
    for (const auto& in : w.inputs) all.insert(all.end(), in.begin(),
                                               in.end());
    std::sort(all.begin(), all.end(), std::greater<Word>{});
    SCOPED_TRACE(::testing::Message()
                 << "trial " << trial << ": p=" << cfg.p << " k=" << cfg.k
                 << " n=" << cfg.n << " d=" << d);
    ASSERT_EQ(res.value, all[d - 1]);
    // Candidate trace is strictly decreasing and respects the purge bound.
    for (std::size_t ph = 1; ph < res.candidates_per_phase.size(); ++ph) {
      ASSERT_LT(res.candidates_per_phase[ph],
                res.candidates_per_phase[ph - 1]);
      ASSERT_LE(4 * res.candidates_per_phase[ph],
                3 * res.candidates_per_phase[ph - 1] + 4);
    }
  }
}

TEST(PropertyTest, ShoutEchoAgreesWithMcbSelection) {
  util::Xoshiro256StarStar rng(0xd00d);
  for (int trial = 0; trial < 30; ++trial) {
    auto cfg = draw_config(rng, /*even_only=*/false);
    auto w = util::make_workload(cfg.n, cfg.p, cfg.shape, cfg.seed);
    const auto d = static_cast<std::size_t>(
        rng.uniform(1, static_cast<std::int64_t>(cfg.n)));
    auto mcb_res = algo::select_rank({.p = cfg.p, .k = cfg.k}, w.inputs, d);
    auto se_res = se::se_select_rank(w.inputs, d);
    ASSERT_EQ(mcb_res.value, se_res.value)
        << "trial " << trial << " d=" << d;
  }
}

}  // namespace
}  // namespace mcb
