// Tests of the memory-efficient virtual-column Columnsort (Section 6.1):
// correctness with both local-sort backends, cycle/message bounds, and —
// the point of the algorithm — bounded per-processor storage (no processor
// ever holds Theta(n/k) elements, unlike the gather-based variant).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "algo/columnsort_even.hpp"
#include "algo/virtual_columnsort.hpp"
#include "util/workload.hpp"

namespace mcb::algo {
namespace {

void expect_sorted_outputs(const std::vector<std::vector<Word>>& inputs,
                           const std::vector<std::vector<Word>>& outputs) {
  std::vector<Word> all;
  for (const auto& x : inputs) all.insert(all.end(), x.begin(), x.end());
  std::sort(all.begin(), all.end(), std::greater<Word>{});
  std::size_t at = 0;
  ASSERT_EQ(inputs.size(), outputs.size());
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    ASSERT_EQ(outputs[i].size(), inputs[i].size()) << "P" << i + 1;
    for (Word w : outputs[i]) {
      ASSERT_EQ(w, all[at]) << "P" << i + 1 << " rank " << at;
      ++at;
    }
  }
}

struct Shape {
  std::size_t p, k, ni;
  LocalSort ls;
};

class VirtualSortSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(VirtualSortSweep, SortsAndMeetsBounds) {
  const auto& prm = GetParam();
  const std::size_t n = prm.p * prm.ni;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    auto w = util::make_workload(n, prm.p, util::Shape::kEven, seed);
    auto res = virtual_columnsort({.p = prm.p, .k = prm.k}, w.inputs,
                                  {.local_sort = prm.ls});
    expect_sorted_outputs(w.inputs, res.run.outputs);
    const std::size_t kk = res.columns;
    // O(n/kk) cycles, O(n) messages; constants cover the four group sorts
    // (<= 4m or 3g+4m cycles each), four transforms and redistribution.
    EXPECT_LE(res.run.stats.cycles,
              30 * (n / kk) + 30 * kk * kk + 20 * prm.p)
        << "p=" << prm.p << " k=" << prm.k;
    EXPECT_LE(res.run.stats.messages, 30 * n + 20 * prm.p);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, VirtualSortSweep,
    ::testing::ValuesIn(std::vector<Shape>{
        {8, 2, 4, LocalSort::kRankSort},
        {8, 2, 4, LocalSort::kMergeSort},
        {16, 4, 16, LocalSort::kRankSort},
        {16, 4, 16, LocalSort::kMergeSort},
        {16, 4, 13, LocalSort::kRankSort},   // padding path
        {16, 4, 13, LocalSort::kMergeSort},
        {32, 8, 49, LocalSort::kRankSort},
        {12, 3, 17, LocalSort::kMergeSort},
        {4, 1, 8, LocalSort::kRankSort},     // single column
        {4, 4, 12, LocalSort::kRankSort},    // g == 1: local sorts
        {64, 8, 10, LocalSort::kMergeSort},
        {16, 8, 2, LocalSort::kRankSort},    // fewer-columns fallback
    }),
    [](const auto& pinfo) {
      // Built by append: operator+ chains over std::to_string temporaries
      // trip GCC 12's -Wrestrict false positive (PR105329) at -O3.
      std::string name = "p";
      name += std::to_string(pinfo.param.p);
      name += "_k";
      name += std::to_string(pinfo.param.k);
      name += "_ni";
      name += std::to_string(pinfo.param.ni);
      name += pinfo.param.ls == LocalSort::kRankSort ? "_rank" : "_merge";
      return name;
    });

TEST(VirtualColumnsortTest, MemoryStaysNearSliceSize) {
  // The gather-based algorithm concentrates m = n/kk elements in each
  // representative; the virtual version keeps every processor near its
  // slice size n/p. Compare peak storage directly.
  const std::size_t p = 16, k = 4, ni = 32;
  auto w = util::make_workload(p * ni, p, util::Shape::kEven, 1);

  auto gathered = columnsort_even({.p = p, .k = k}, w.inputs);
  auto virt = virtual_columnsort({.p = p, .k = k}, w.inputs);
  expect_sorted_outputs(w.inputs, virt.run.outputs);

  // Gather-based: a representative holds a whole column (m = 128 words).
  EXPECT_GE(gathered.run.stats.max_peak_aux(), p * ni / gathered.columns);
  // Virtual: every processor stays within a few multiples of its slice.
  EXPECT_LE(virt.run.stats.max_peak_aux(), 6 * ni);
}

TEST(VirtualColumnsortTest, BackendsAgreeExactly) {
  auto w = util::make_workload(512, 16, util::Shape::kEven, 9);
  auto a = virtual_columnsort({.p = 16, .k = 4}, w.inputs,
                              {.local_sort = LocalSort::kRankSort});
  auto b = virtual_columnsort({.p = 16, .k = 4}, w.inputs,
                              {.local_sort = LocalSort::kMergeSort});
  EXPECT_EQ(a.run.outputs, b.run.outputs);
}

TEST(VirtualColumnsortTest, MatchesGatherBasedResult) {
  auto w = util::make_workload(768, 16, util::Shape::kEven, 10);
  auto a = columnsort_even({.p = 16, .k = 4}, w.inputs);
  auto b = virtual_columnsort({.p = 16, .k = 4}, w.inputs);
  EXPECT_EQ(a.run.outputs, b.run.outputs);
}

TEST(VirtualColumnsortTest, DuplicatesHandled) {
  std::vector<std::vector<Word>> inputs{
      {4, 4, 4, 4}, {2, 2, 2, 2}, {4, 2, 4, 2}, {3, 3, 3, 3}};
  auto res = virtual_columnsort({.p = 4, .k = 2}, inputs);
  expect_sorted_outputs(inputs, res.run.outputs);
}

}  // namespace
}  // namespace mcb::algo
