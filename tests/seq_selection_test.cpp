// Tests of sequential selection (BFPRT and quickselect) against sorting
// oracles, including the paper's 1-based largest-first rank convention.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "seq/selection.hpp"
#include "util/random.hpp"

namespace mcb::seq {
namespace {

std::vector<Word> random_vec(std::size_t n, std::uint64_t seed,
                             std::int64_t lo = -500, std::int64_t hi = 500) {
  util::Xoshiro256StarStar rng(seed);
  std::vector<Word> v(n);
  for (auto& x : v) x = rng.uniform(lo, hi);
  return v;
}

Word oracle_kth_largest(std::vector<Word> v, std::size_t d) {
  std::sort(v.begin(), v.end(), std::greater<Word>{});
  return v[d - 1];
}

TEST(SelectionTest, KthLargestAllRanksSmall) {
  for (std::size_t n : {1u, 2u, 5u, 11u, 40u}) {
    auto base = random_vec(n, n * 13);
    for (std::size_t d = 1; d <= n; ++d) {
      auto v = base;
      EXPECT_EQ(kth_largest(v, d), oracle_kth_largest(base, d))
          << "n=" << n << " d=" << d;
    }
  }
}

TEST(SelectionTest, KthLargestSampledRanksLarge) {
  for (std::size_t n : {1000u, 4097u}) {
    auto base = random_vec(n, n);
    for (std::size_t d : {std::size_t{1}, n / 4, n / 2, n - 1, n}) {
      auto v = base;
      EXPECT_EQ(kth_largest(v, d), oracle_kth_largest(base, d))
          << "n=" << n << " d=" << d;
    }
  }
}

TEST(SelectionTest, ManyDuplicates) {
  // Three-way partitioning must stay linear and correct with few distinct
  // values.
  auto v = random_vec(2000, 4, 0, 3);
  auto base = v;
  for (std::size_t d : {std::size_t{1}, std::size_t{500}, std::size_t{1000},
                        std::size_t{2000}}) {
    v = base;
    EXPECT_EQ(kth_largest(v, d), oracle_kth_largest(base, d)) << "d=" << d;
  }
}

TEST(SelectionTest, QuickselectMatchesBfprt) {
  util::Xoshiro256StarStar rng(7);
  for (std::size_t n : {17u, 333u, 2048u}) {
    auto base = random_vec(n, n * 31);
    for (std::size_t d : {std::size_t{1}, n / 3, n / 2, n}) {
      auto v1 = base;
      auto v2 = base;
      EXPECT_EQ(kth_largest(v1, d), kth_largest_quickselect(v2, d, rng))
          << "n=" << n << " d=" << d;
    }
  }
}

TEST(SelectionTest, MedianUsesCeilHalfConvention) {
  // Section 3: the median is N[ceil(n/2)], ranks counted from the largest.
  std::vector<Word> odd{10, 30, 20, 50, 40};   // sorted desc: 50 40 30 20 10
  EXPECT_EQ(median(odd), 30);                  // rank ceil(5/2)=3
  std::vector<Word> even{4, 1, 3, 2};          // desc: 4 3 2 1
  EXPECT_EQ(median(even), 3);                  // rank ceil(4/2)=2
  std::vector<Word> one{7};
  EXPECT_EQ(median(one), 7);
}

TEST(SelectionTest, RankOutOfRangeThrows) {
  std::vector<Word> v{1, 2, 3};
  EXPECT_THROW(kth_largest(v, 0), std::invalid_argument);
  EXPECT_THROW(kth_largest(v, 4), std::invalid_argument);
  std::vector<Word> empty;
  EXPECT_THROW(median(empty), std::invalid_argument);
}

TEST(SelectionTest, CopyVariantPreservesInput) {
  const std::vector<Word> v{5, 9, 1, 7, 3};
  const auto before = v;
  EXPECT_EQ(kth_largest_copy(v, 2), 7);
  EXPECT_EQ(v, before);
}

TEST(SelectionTest, WorstCasePatternsStayCorrect) {
  // Sorted, reverse-sorted and organ-pipe inputs exercise BFPRT pivot
  // quality; correctness is what we assert (linearity is by construction).
  const std::size_t n = 3000;
  std::vector<Word> asc(n), desc(n), organ(n);
  for (std::size_t i = 0; i < n; ++i) {
    asc[i] = static_cast<Word>(i);
    desc[i] = static_cast<Word>(n - i);
    organ[i] = static_cast<Word>(std::min(i, n - i));
  }
  for (auto* base : {&asc, &desc, &organ}) {
    for (std::size_t d : {std::size_t{1}, n / 2, n}) {
      auto v = *base;
      EXPECT_EQ(kth_largest(v, d), oracle_kth_largest(*base, d));
    }
  }
}

}  // namespace
}  // namespace mcb::seq
