// Tests of the command-line flag parser used by the tools, plus end-to-end
// subprocess tests of mcbsim's --json output (parsed back with util::json).
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "util/cli.hpp"
#include "util/json.hpp"

namespace mcb::util {
namespace {

TEST(CliTest, SubcommandAndFlags) {
  auto cli = Cli::parse({"sort", "--p", "16", "--k=4", "--json"});
  EXPECT_EQ(cli.command(), "sort");
  EXPECT_EQ(cli.get_uint("p", 0), 16u);
  EXPECT_EQ(cli.get_uint("k", 0), 4u);
  EXPECT_TRUE(cli.get_bool("json"));
  EXPECT_TRUE(cli.unused().empty());
}

TEST(CliTest, DefaultsWhenAbsent) {
  auto cli = Cli::parse({"select"});
  EXPECT_EQ(cli.get_int("rank", -7), -7);
  EXPECT_EQ(cli.get_string("shape", "even"), "even");
  EXPECT_FALSE(cli.get_bool("json"));
  EXPECT_FALSE(cli.has("rank"));
}

TEST(CliTest, BooleanSpellings) {
  EXPECT_TRUE(Cli::parse({"x", "--a", "true"}).get_bool("a"));
  EXPECT_TRUE(Cli::parse({"x", "--a=1"}).get_bool("a"));
  EXPECT_FALSE(Cli::parse({"x", "--a", "false"}).get_bool("a", true));
  EXPECT_FALSE(Cli::parse({"x", "--a=0"}).get_bool("a", true));
  EXPECT_THROW(Cli::parse({"x", "--a", "maybe"}).get_bool("a"),
               std::invalid_argument);
}

TEST(CliTest, NegativeAndMalformedIntegers) {
  auto cli = Cli::parse({"x", "--v", "-12"});
  EXPECT_EQ(cli.get_int("v", 0), -12);
  EXPECT_THROW(cli.get_uint("v", 0), std::invalid_argument);
  auto bad = Cli::parse({"x", "--v", "12abc"});
  EXPECT_THROW(bad.get_int("v", 0), std::invalid_argument);
}

TEST(CliTest, DuplicateAndMalformedFlagsRejected) {
  EXPECT_THROW(Cli::parse({"x", "--a", "1", "--a", "2"}),
               std::invalid_argument);
  EXPECT_THROW(Cli::parse({"x", "stray"}), std::invalid_argument);
  EXPECT_THROW(Cli::parse({"x", "--"}), std::invalid_argument);
}

TEST(CliTest, NoSubcommand) {
  auto cli = Cli::parse({"--p", "4"});
  EXPECT_EQ(cli.command(), "");
  EXPECT_EQ(cli.get_uint("p", 0), 4u);
}

TEST(CliTest, UnusedFlagsReported) {
  auto cli = Cli::parse({"sort", "--p", "4", "--typo", "8"});
  EXPECT_EQ(cli.get_uint("p", 0), 4u);
  auto unused = cli.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(CliTest, ValuelessFlagBeforeAnotherFlag) {
  auto cli = Cli::parse({"x", "--verbose", "--p", "3"});
  EXPECT_TRUE(cli.get_bool("verbose"));
  EXPECT_EQ(cli.get_uint("p", 0), 3u);
}

// --- mcbsim --json end-to-end -------------------------------------------------
//
// These run the real binary (path injected through MCBSIM_BIN by ctest) and
// parse its --json output back, pinning the machine-readable contract:
// RunStats telemetry must be present and string fields must survive a strict
// parser. Skipped when the binary's location is unknown (e.g. running the
// test executable by hand outside ctest).

const char* mcbsim_bin() { return std::getenv("MCBSIM_BIN"); }

std::string run_command(const std::string& cmd) {
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  std::string out;
  char buf[4096];
  while (pipe != nullptr) {
    const auto got = fread(buf, 1, sizeof(buf), pipe);
    if (got == 0) break;
    out.append(buf, got);
  }
  if (pipe != nullptr) {
    EXPECT_EQ(pclose(pipe), 0) << cmd << "\noutput:\n" << out;
  }
  return out;
}

void expect_stats_telemetry(const JsonValue& stats) {
  EXPECT_GT(stats.at("cycles").as_number(), 0.0);
  EXPECT_GT(stats.at("messages").as_number(), 0.0);
  // The RunStats telemetry the seed CLI dropped: wall time, resume count
  // and throughput must all be serialized.
  ASSERT_NE(stats.find("sim_wall_ns"), nullptr);
  EXPECT_GT(stats.at("proc_resumes").as_number(), 0.0);
  ASSERT_NE(stats.find("cycles_per_sec"), nullptr);
  // Phases carry their full accounting: name, first cycle, extent, traffic.
  ASSERT_TRUE(stats.at("phases").is_array());
  ASSERT_GT(stats.at("phases").size(), 0u);
  double phase_cycles = 0.0, phase_messages = 0.0;
  for (const auto& ph : stats.at("phases").items()) {
    EXPECT_FALSE(ph.at("name").as_string().empty());
    ASSERT_NE(ph.find("first_cycle"), nullptr);
    phase_cycles += ph.at("cycles").as_number();
    phase_messages += ph.at("messages").as_number();
  }
  // Phases partition the run.
  EXPECT_EQ(phase_cycles, stats.at("cycles").as_number());
  EXPECT_EQ(phase_messages, stats.at("messages").as_number());
}

void expect_config(const JsonValue& doc) {
  const auto& cfg = doc.at("config");
  EXPECT_GT(cfg.at("p").as_number(), 0.0);
  EXPECT_GT(cfg.at("k").as_number(), 0.0);
  EXPECT_GT(cfg.at("n").as_number(), 0.0);
  EXPECT_FALSE(cfg.at("shape").as_string().empty());
  EXPECT_FALSE(cfg.at("engine").as_string().empty());
}

TEST(McbsimJsonTest, SortEmitsTelemetryAndParses) {
  if (mcbsim_bin() == nullptr) GTEST_SKIP() << "MCBSIM_BIN not set";
  const auto out = run_command(std::string(mcbsim_bin()) +
                               " sort --p 8 --k 2 --n 128 --json");
  const auto doc = json_parse(out);
  EXPECT_FALSE(doc.at("algorithm").as_string().empty());
  expect_config(doc);
  expect_stats_telemetry(doc.at("stats"));
  // Telemetry is opt-in: no "obs" member without --obs.
  EXPECT_EQ(doc.find("obs"), nullptr);
}

TEST(McbsimJsonTest, SelectEmitsTelemetryAndParses) {
  if (mcbsim_bin() == nullptr) GTEST_SKIP() << "MCBSIM_BIN not set";
  const auto out = run_command(std::string(mcbsim_bin()) +
                               " select --p 8 --k 2 --n 128 --json");
  const auto doc = json_parse(out);
  ASSERT_NE(doc.find("value"), nullptr);
  EXPECT_GT(doc.at("filter_phases").as_number(), 0.0);
  expect_config(doc);
  // Selection documents the rank it solved for.
  EXPECT_GT(doc.at("config").at("rank").as_number(), 0.0);
  expect_stats_telemetry(doc.at("stats"));
}

TEST(McbsimJsonTest, SweepEmitsGridTrialsAndAggregates) {
  if (mcbsim_bin() == nullptr) GTEST_SKIP() << "MCBSIM_BIN not set";
  const std::string flags =
      " sweep --p 4,8 --k 2 --n 64 --algorithms auto,select --seeds 2 "
      "--json";
  const auto out = run_command(std::string(mcbsim_bin()) + flags);
  const auto doc = json_parse(out);
  EXPECT_TRUE(doc.at("sweep").is_object());
  // 2 p-values x 2 algorithms x 2 seeds.
  ASSERT_EQ(doc.at("trials").size(), 8u);
  ASSERT_EQ(doc.at("aggregates").size(), 4u);
  for (const auto& trial : doc.at("trials").items()) {
    EXPECT_EQ(trial.at("error").as_string(), "");
    EXPECT_GT(trial.at("cycles").as_number(), 0.0);
    // Determinism contract: no host-side timing in sweep JSON.
    EXPECT_EQ(trial.find("sim_wall_ns"), nullptr);
  }
  for (const auto& agg : doc.at("aggregates").items()) {
    EXPECT_EQ(agg.at("failed").as_number(), 0.0);
    EXPECT_GT(agg.at("cycles").at("mean").as_number(), 0.0);
  }
}

TEST(McbsimJsonTest, SweepJsonIdenticalAcrossThreadFlags) {
  if (mcbsim_bin() == nullptr) GTEST_SKIP() << "MCBSIM_BIN not set";
  const std::string grid =
      " sweep --p 4,8 --k 2 --n 64,128 --algorithms select --seeds 3 --json"
      " --threads ";
  const auto t1 = run_command(std::string(mcbsim_bin()) + grid + "1");
  const auto t4 = run_command(std::string(mcbsim_bin()) + grid + "4");
  EXPECT_EQ(t1, t4);
  EXPECT_FALSE(t1.empty());
}

TEST(McbsimJsonTest, ParallelEngineMatchesEventAccounting) {
  if (mcbsim_bin() == nullptr) GTEST_SKIP() << "MCBSIM_BIN not set";
  auto model_stats = [&](const std::string& engine_flags) {
    const auto out =
        run_command(std::string(mcbsim_bin()) +
                    " select --p 8 --k 2 --n 256 --json " + engine_flags);
    return json_parse(out);
  };
  const auto ev = model_stats("--engine event");
  const auto par = model_stats("--engine parallel --threads 2");
  EXPECT_EQ(par.at("config").at("engine").as_string(), "parallel");
  EXPECT_EQ(par.at("value").as_number(), ev.at("value").as_number());
  EXPECT_EQ(par.at("stats").at("cycles").as_number(),
            ev.at("stats").at("cycles").as_number());
  EXPECT_EQ(par.at("stats").at("messages").as_number(),
            ev.at("stats").at("messages").as_number());
}

TEST(McbsimJsonTest, ThreadsFlagWithSerialEngineIsUsageError) {
  if (mcbsim_bin() == nullptr) GTEST_SKIP() << "MCBSIM_BIN not set";
  // --threads on a single-run command selects the parallel worker count;
  // silently running serial would misreport what was measured, so it must
  // be a usage error (exit 2) with both serial engines and by default.
  for (const char* flags :
       {" sort --p 8 --k 2 --n 64 --threads 2",
        " select --p 8 --k 2 --n 64 --engine event --threads 4",
        " trace --p 4 --engine reference --threads 2"}) {
    const std::string cmd = std::string(mcbsim_bin()) + flags + " 2>&1";
    FILE* pipe = popen(cmd.c_str(), "r");
    ASSERT_NE(pipe, nullptr) << cmd;
    std::string out;
    char buf[4096];
    std::size_t got = 0;
    while ((got = fread(buf, 1, sizeof(buf), pipe)) > 0) out.append(buf, got);
    const int status = pclose(pipe);
    ASSERT_TRUE(WIFEXITED(status)) << cmd;
    EXPECT_EQ(WEXITSTATUS(status), 2) << cmd << "\noutput:\n" << out;
    EXPECT_NE(out.find("--threads requires --engine parallel"),
              std::string::npos)
        << cmd << "\noutput:\n" << out;
  }
}

TEST(McbsimJsonTest, NegativeValuesInUintListsAreUsageErrors) {
  if (mcbsim_bin() == nullptr) GTEST_SKIP() << "MCBSIM_BIN not set";
  // Regression: parse_uint_list fed "-5" to std::stoull, which happily
  // wraps to 2^64-5 — the sweep then tried to allocate that many
  // processors. Any non-digit in a list item must be a usage error.
  for (const char* flags :
       {" sweep --p -5 --k 2 --n 64 --algorithms select --seeds 1",
        " sweep --p 4,-8 --k 2 --n 64 --algorithms select --seeds 1",
        " sweep --p 8 --k 2 --n 1e3 --algorithms select --seeds 1"}) {
    const std::string cmd = std::string(mcbsim_bin()) + flags + " 2>&1";
    FILE* pipe = popen(cmd.c_str(), "r");
    ASSERT_NE(pipe, nullptr) << cmd;
    std::string out;
    char buf[4096];
    std::size_t got = 0;
    while ((got = fread(buf, 1, sizeof(buf), pipe)) > 0) out.append(buf, got);
    const int status = pclose(pipe);
    ASSERT_TRUE(WIFEXITED(status)) << cmd;
    EXPECT_EQ(WEXITSTATUS(status), 2) << cmd << "\noutput:\n" << out;
    EXPECT_NE(out.find("malformed unsigned integer"), std::string::npos)
        << cmd << "\noutput:\n" << out;
  }
}

TEST(McbsimJsonTest, ServeEmitsDeterministicVerifiedReport) {
  if (mcbsim_bin() == nullptr) GTEST_SKIP() << "MCBSIM_BIN not set";
  const std::string args =
      " serve --p 8 --k 2 --n 256 --queries 24 --batch 4 --seed 5 --verify"
      " --json";
  const auto out = run_command(std::string(mcbsim_bin()) + args);
  const auto doc = json_parse(out);
  EXPECT_EQ(doc.at("config").at("p").as_number(), 8.0);
  EXPECT_EQ(doc.at("config").at("queries").as_number(), 24.0);
  EXPECT_GT(doc.at("batches").as_number(), 0.0);
  EXPECT_GT(doc.at("total_cycles").as_number(), 0.0);
  ASSERT_TRUE(doc.at("queries").is_array());
  EXPECT_EQ(doc.at("queries").size(), 24u);
  ASSERT_TRUE(doc.at("classes").is_array());
  // Byte-determinism across engines through the CLI (ci.sh enforces the
  // same with cmp; this keeps it pinned in-suite).
  const auto out2 = run_command(std::string(mcbsim_bin()) + args +
                                " --engine parallel --threads 4");
  EXPECT_EQ(out, out2);
}

// --- run telemetry (--obs / --trace-out / report) ----------------------------

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(McbsimObsTest, ObsJsonCarriesSpansTimelineAndMetrics) {
  if (mcbsim_bin() == nullptr) GTEST_SKIP() << "MCBSIM_BIN not set";
  const auto out = run_command(std::string(mcbsim_bin()) +
                               " select --p 8 --k 2 --n 128 --obs --json");
  const auto doc = json_parse(out);
  const auto& obs = doc.at("obs");
  // Span summaries cover the selection phases.
  ASSERT_TRUE(obs.at("spans").is_array());
  bool saw_filter = false;
  for (const auto& s : obs.at("spans").items()) {
    if (s.at("name").as_string() == "filter") {
      saw_filter = true;
      EXPECT_GT(s.at("cycles").as_number(), 0.0);
      EXPECT_GT(s.at("messages").as_number(), 0.0);
    }
  }
  EXPECT_TRUE(saw_filter);
  EXPECT_EQ(obs.at("spans_dropped").as_number(), 0.0);
  // Timeline: one channel entry per channel, busy+idle == cycles, per-channel
  // writes sum to the run's messages.
  const auto& tl = obs.at("timeline");
  ASSERT_EQ(tl.at("channels").size(), 2u);
  EXPECT_EQ(tl.at("busy_cycles").as_number() + tl.at("idle_cycles").as_number(),
            doc.at("stats").at("cycles").as_number());
  double writes = 0.0;
  for (const auto& ch : tl.at("channels").items()) {
    writes += ch.at("writes").as_number();
    EXPECT_GT(ch.at("buckets").size(), 0u);
  }
  EXPECT_EQ(writes, doc.at("stats").at("messages").as_number());
  // Metrics registry rides along and agrees with the stats block.
  EXPECT_EQ(obs.at("metrics").at("counters").at("run.messages").as_number(),
            doc.at("stats").at("messages").as_number());
}

TEST(McbsimObsTest, TraceOutWritesStrictPerfettoJson) {
  if (mcbsim_bin() == nullptr) GTEST_SKIP() << "MCBSIM_BIN not set";
  const auto trace_path = temp_path("cli_trace.json");
  run_command(std::string(mcbsim_bin()) +
              " sort --p 8 --k 2 --n 128 --trace-out " + trace_path);
  const auto trace = json_parse(read_file(trace_path));
  EXPECT_DOUBLE_EQ(trace.at("otherData").at("p").as_number(), 8.0);
  // At least one counter sample per channel and one span pair.
  std::size_t counters = 0, begins = 0, ends = 0;
  for (const auto& ev : trace.at("traceEvents").items()) {
    const auto& ph = ev.at("ph").as_string();
    if (ph == "C") ++counters;
    if (ph == "B") ++begins;
    if (ph == "E") ++ends;
  }
  EXPECT_GE(counters, 2u);
  EXPECT_GT(begins, 0u);
  EXPECT_EQ(begins, ends);
}

TEST(McbsimObsTest, ReportIsDeterministicAcrossRuns) {
  if (mcbsim_bin() == nullptr) GTEST_SKIP() << "MCBSIM_BIN not set";
  const std::string cmd =
      std::string(mcbsim_bin()) + " sort --p 8 --k 2 --n 128 --obs --json";
  const auto run_a = temp_path("cli_report_a.json");
  const auto run_b = temp_path("cli_report_b.json");
  {
    std::ofstream(run_a) << run_command(cmd);
    std::ofstream(run_b) << run_command(cmd);
  }
  const auto rep_a =
      run_command(std::string(mcbsim_bin()) + " report " + run_a);
  const auto rep_b =
      run_command(std::string(mcbsim_bin()) + " report " + run_b);
  // The two runs differ in sim_wall_ns etc.; the report must not.
  EXPECT_EQ(rep_a, rep_b);
  EXPECT_NE(rep_a.find("# mcbsim run report"), std::string::npos);
  EXPECT_NE(rep_a.find("## Phases"), std::string::npos);
  EXPECT_NE(rep_a.find("## Channel utilization"), std::string::npos);
}

TEST(McbsimObsTest, SweepObsDeterministicAcrossThreadsAndReportable) {
  if (mcbsim_bin() == nullptr) GTEST_SKIP() << "MCBSIM_BIN not set";
  const std::string grid =
      " sweep --p 8 --k 2 --n 64 --algorithms auto,select --seeds 2 --obs"
      " --json --threads ";
  const auto t1 = run_command(std::string(mcbsim_bin()) + grid + "1");
  const auto t4 = run_command(std::string(mcbsim_bin()) + grid + "4");
  EXPECT_EQ(t1, t4);
  const auto doc = json_parse(t1);
  for (const auto& trial : doc.at("trials").items()) {
    EXPECT_EQ(trial.at("error").as_string(), "");
    // --obs serializes per-trial span summaries.
    ASSERT_NE(trial.find("spans"), nullptr);
    EXPECT_GT(trial.at("spans").size(), 0u);
  }
  const auto sweep_path = temp_path("cli_sweep_obs.json");
  std::ofstream(sweep_path) << t1;
  const auto rep =
      run_command(std::string(mcbsim_bin()) + " report " + sweep_path);
  EXPECT_NE(rep.find("# mcbsim sweep report"), std::string::npos);
  EXPECT_NE(rep.find("## Spans (all trials)"), std::string::npos);
}

// --- host profiler quarantine (--profile / strip-host) -----------------------

TEST(McbsimProfileTest, StripHostMakesProfiledSelectByteIdentical) {
  if (mcbsim_bin() == nullptr) GTEST_SKIP() << "MCBSIM_BIN not set";
  const std::string base =
      " select --p 8 --k 2 --n 256 --engine parallel --threads 2 --json";
  const auto plain_path = temp_path("cli_prof_plain.json");
  const auto prof_path = temp_path("cli_prof_on.json");
  std::ofstream(plain_path) << run_command(std::string(mcbsim_bin()) + base);
  std::ofstream(prof_path)
      << run_command(std::string(mcbsim_bin()) + base + " --profile");
  // The profiled document parses strictly and carries the quarantined
  // subtree; stripping host fields from both makes them byte-identical.
  const auto doc = json_parse(read_file(prof_path));
  ASSERT_NE(doc.find("host_profile"), nullptr);
  EXPECT_GT(doc.at("host_profile").at("commits").as_number(), 0.0);
  const auto stripped_plain = run_command(std::string(mcbsim_bin()) +
                                          " strip-host " + plain_path);
  const auto stripped_prof =
      run_command(std::string(mcbsim_bin()) + " strip-host " + prof_path);
  EXPECT_EQ(stripped_plain, stripped_prof);
  EXPECT_EQ(stripped_prof.find("host_profile"), std::string::npos);
}

TEST(McbsimProfileTest, ServeProfileQuarantineAndReport) {
  if (mcbsim_bin() == nullptr) GTEST_SKIP() << "MCBSIM_BIN not set";
  const std::string base =
      " serve --p 8 --k 2 --n 256 --queries 24 --batch 4 --seed 5"
      " --engine parallel --threads 2 --json";
  const auto plain_path = temp_path("cli_serve_plain.json");
  const auto prof_path = temp_path("cli_serve_prof.json");
  std::ofstream(plain_path) << run_command(std::string(mcbsim_bin()) + base);
  std::ofstream(prof_path)
      << run_command(std::string(mcbsim_bin()) + base + " --profile");
  const auto doc = json_parse(read_file(prof_path));
  ASSERT_NE(doc.find("host_profile"), nullptr);
  // One profiler spans every batch run of the serving session.
  EXPECT_EQ(doc.at("host_profile").at("batch_runs").as_number(),
            doc.at("batches").as_number());
  const auto stripped_plain = run_command(std::string(mcbsim_bin()) +
                                          " strip-host " + plain_path);
  const auto stripped_prof =
      run_command(std::string(mcbsim_bin()) + " strip-host " + prof_path);
  EXPECT_EQ(stripped_plain, stripped_prof);
  // The report renderer accepts serve documents and, when profiled, adds
  // the host-profile section after the model-level tables.
  const auto rep =
      run_command(std::string(mcbsim_bin()) + " report " + prof_path);
  EXPECT_NE(rep.find("# mcbsim serving report"), std::string::npos);
  EXPECT_NE(rep.find("## Per-class latency"), std::string::npos);
  EXPECT_NE(rep.find("## Batch summary"), std::string::npos);
  EXPECT_NE(rep.find("## Host profile"), std::string::npos);
}

TEST(McbsimProfileTest, ProfiledTraceOutIsStrictWithHostTrack) {
  if (mcbsim_bin() == nullptr) GTEST_SKIP() << "MCBSIM_BIN not set";
  const auto trace_path = temp_path("cli_prof_trace.json");
  run_command(std::string(mcbsim_bin()) +
              " sort --p 8 --k 2 --n 128 --engine parallel --threads 2"
              " --profile --trace-out " + trace_path);
  const auto trace = json_parse(read_file(trace_path));  // strict parser
  std::size_t host_events = 0;
  for (const auto& ev : trace.at("traceEvents").items()) {
    const auto* pid = ev.find("pid");
    if (pid != nullptr && pid->as_number() == 3.0) ++host_events;
  }
  EXPECT_GT(host_events, 1u);
}

TEST(McbsimObsTest, SweepWithoutObsStaysSpanFree) {
  if (mcbsim_bin() == nullptr) GTEST_SKIP() << "MCBSIM_BIN not set";
  const auto out = run_command(
      std::string(mcbsim_bin()) +
      " sweep --p 8 --k 2 --n 64 --algorithms select --seeds 1 --json");
  const auto doc = json_parse(out);
  EXPECT_EQ(doc.at("sweep").find("obs"), nullptr);
  for (const auto& trial : doc.at("trials").items()) {
    EXPECT_EQ(trial.find("spans"), nullptr);
  }
}

}  // namespace
}  // namespace mcb::util
