// Tests of the command-line flag parser used by the tools.
#include <gtest/gtest.h>

#include "util/cli.hpp"

namespace mcb::util {
namespace {

TEST(CliTest, SubcommandAndFlags) {
  auto cli = Cli::parse({"sort", "--p", "16", "--k=4", "--json"});
  EXPECT_EQ(cli.command(), "sort");
  EXPECT_EQ(cli.get_uint("p", 0), 16u);
  EXPECT_EQ(cli.get_uint("k", 0), 4u);
  EXPECT_TRUE(cli.get_bool("json"));
  EXPECT_TRUE(cli.unused().empty());
}

TEST(CliTest, DefaultsWhenAbsent) {
  auto cli = Cli::parse({"select"});
  EXPECT_EQ(cli.get_int("rank", -7), -7);
  EXPECT_EQ(cli.get_string("shape", "even"), "even");
  EXPECT_FALSE(cli.get_bool("json"));
  EXPECT_FALSE(cli.has("rank"));
}

TEST(CliTest, BooleanSpellings) {
  EXPECT_TRUE(Cli::parse({"x", "--a", "true"}).get_bool("a"));
  EXPECT_TRUE(Cli::parse({"x", "--a=1"}).get_bool("a"));
  EXPECT_FALSE(Cli::parse({"x", "--a", "false"}).get_bool("a", true));
  EXPECT_FALSE(Cli::parse({"x", "--a=0"}).get_bool("a", true));
  EXPECT_THROW(Cli::parse({"x", "--a", "maybe"}).get_bool("a"),
               std::invalid_argument);
}

TEST(CliTest, NegativeAndMalformedIntegers) {
  auto cli = Cli::parse({"x", "--v", "-12"});
  EXPECT_EQ(cli.get_int("v", 0), -12);
  EXPECT_THROW(cli.get_uint("v", 0), std::invalid_argument);
  auto bad = Cli::parse({"x", "--v", "12abc"});
  EXPECT_THROW(bad.get_int("v", 0), std::invalid_argument);
}

TEST(CliTest, DuplicateAndMalformedFlagsRejected) {
  EXPECT_THROW(Cli::parse({"x", "--a", "1", "--a", "2"}),
               std::invalid_argument);
  EXPECT_THROW(Cli::parse({"x", "stray"}), std::invalid_argument);
  EXPECT_THROW(Cli::parse({"x", "--"}), std::invalid_argument);
}

TEST(CliTest, NoSubcommand) {
  auto cli = Cli::parse({"--p", "4"});
  EXPECT_EQ(cli.command(), "");
  EXPECT_EQ(cli.get_uint("p", 0), 4u);
}

TEST(CliTest, UnusedFlagsReported) {
  auto cli = Cli::parse({"sort", "--p", "4", "--typo", "8"});
  EXPECT_EQ(cli.get_uint("p", 0), 4u);
  auto unused = cli.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(CliTest, ValuelessFlagBeforeAnotherFlag) {
  auto cli = Cli::parse({"x", "--verbose", "--p", "3"});
  EXPECT_TRUE(cli.get_bool("verbose"));
  EXPECT_EQ(cli.get_uint("p", 0), 3u);
}

}  // namespace
}  // namespace mcb::util
