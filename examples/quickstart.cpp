// Quickstart: build an MCB(16, 4), hand every processor a slice of data,
// sort the whole network, and verify the result.
//
//   $ ./quickstart
#include <algorithm>
#include <iostream>

#include "mcb/mcb.hpp"

int main() {
  using namespace mcb;

  // A network of 16 processors sharing 4 broadcast channels.
  const SimConfig cfg{.p = 16, .k = 4};

  // 64 elements per processor, distinct values, deterministic seed.
  const auto workload =
      util::make_workload(/*n=*/1024, cfg.p, util::Shape::kEven, /*seed=*/1);

  // Sort: afterwards processor i holds the i-th descending segment.
  const auto result = algo::sort(cfg, workload.inputs);

  std::cout << "algorithm : " << algo::to_string(result.used) << '\n'
            << "cycles    : " << result.run.stats.cycles << '\n'
            << "messages  : " << result.run.stats.messages << '\n';

  // Verify against a flat sort.
  std::vector<Word> all;
  for (const auto& in : workload.inputs) {
    all.insert(all.end(), in.begin(), in.end());
  }
  std::sort(all.begin(), all.end(), std::greater<Word>{});
  std::size_t at = 0;
  for (const auto& out : result.run.outputs) {
    for (Word w : out) {
      if (w != all[at++]) {
        std::cerr << "MISMATCH at rank " << at - 1 << '\n';
        return 1;
      }
    }
  }
  std::cout << "verified  : " << at << " elements in descending order\n";

  // Selection without sorting: the network median in
  // Theta((p/k) log(kn/p)) cycles.
  const auto median = algo::select_median(cfg, workload.inputs);
  std::cout << "median    : " << median.value << " (found in "
            << median.stats.cycles << " cycles, "
            << median.filter_phases << " filtering phases)\n";
  return 0;
}
