// Distributed quantile queries: a sharded "database" of 16 nodes answers
// p50/p90/p99/p999 latency questions over 2 broadcast channels by running
// selection at the matching ranks — each query costs Theta(p log(kn/p))
// messages instead of shipping the shards anywhere.
//
//   $ ./topk_query
#include <iostream>

#include "mcb/mcb.hpp"
#include "serve/query.hpp"
#include "util/table.hpp"

int main() {
  using namespace mcb;

  const SimConfig cfg{.p = 16, .k = 2};
  const std::size_t n = 16384;

  // Latency-like values: a shuffled distinct population per shard.
  auto workload = util::make_workload(n, cfg.p, util::Shape::kRandom, 99);
  std::cout << "shards: " << cfg.p << ", rows: " << n << ", channels: "
            << cfg.k << "\n\n";

  struct Query {
    const char* name;
    double fraction;  // fraction of rows *above* the answer
  };
  const Query queries[] = {
      {"p50", 0.50}, {"p90", 0.10}, {"p99", 0.01}, {"p999", 0.001}};

  util::Table t;
  t.header({"quantile", "rank d", "value", "cycles", "messages"});
  for (const auto& q : queries) {
    // Nearest-rank with the ceil convention (serve::quantile_rank, same as
    // obs::Histogram::quantile): d = max(1, ceil(n * fraction)). Truncating
    // instead would answer rank 1638 for p90 over n=16384 — one element off
    // whenever n * fraction is not integral.
    const auto d = serve::quantile_rank(n, q.fraction);
    const auto res = algo::select_rank(cfg, workload.inputs, d);
    t.row({util::Table::txt(q.name),
           util::Table::num(d),
           util::Table::num(res.value),
           util::Table::num(res.stats.cycles),
           util::Table::num(res.stats.messages)});
  }
  std::cout << t << '\n'
            << "for scale: shipping all rows over one channel would cost "
            << n << "+ cycles per query\n";
  return 0;
}
