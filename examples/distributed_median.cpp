// Sensor fusion: 32 sensor nodes each hold a burst of readings (bursts are
// wildly uneven — some sensors fire constantly, some rarely). The fleet
// computes the network-wide median reading over 8 broadcast channels
// without ever concentrating the data, then compares the cost against the
// sort-everything strawman.
//
//   $ ./distributed_median
#include <iostream>

#include "mcb/mcb.hpp"
#include "util/table.hpp"

int main() {
  using namespace mcb;

  const SimConfig cfg{.p = 32, .k = 8};
  const std::size_t n = 20000;

  // Zipf burst sizes: sensor 1 holds ~ n/H readings, the tail almost none.
  auto workload = util::make_workload(n, cfg.p, util::Shape::kZipf, 7);
  std::cout << "readings   : " << n << " across " << cfg.p << " sensors\n"
            << "largest    : " << workload.max_local()
            << " readings at one sensor\n\n";

  const auto fast = algo::select_median(cfg, workload.inputs);
  const auto naive =
      algo::selection_by_sorting(cfg, workload.inputs, (n + 1) / 2);

  util::Table t;
  t.header({"method", "median", "cycles", "messages", "filter phases"});
  t.row({util::Table::txt("filtering (Sec. 8)"), util::Table::num(fast.value),
         util::Table::num(fast.stats.cycles),
         util::Table::num(fast.stats.messages),
         util::Table::num(fast.filter_phases)});
  t.row({util::Table::txt("sort-everything"), util::Table::num(naive.value),
         util::Table::num(naive.stats.cycles),
         util::Table::num(naive.stats.messages),
         util::Table::txt("-")});
  std::cout << t;

  if (fast.value != naive.value) {
    std::cerr << "methods disagree!\n";
    return 1;
  }
  std::cout << "\nfiltering used "
            << double(naive.stats.messages) / double(fast.stats.messages)
            << "x fewer messages\n";
  return 0;
}
