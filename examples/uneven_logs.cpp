// Log-shipping: 24 front-end nodes hold very different volumes of
// timestamped log records (one hot node, a zipf tail). Sorting the records
// across the fleet with the uneven-distribution Columnsort (Section 7.2)
// gives each node a contiguous, globally ordered slab — without any node
// ever holding more than its own share plus one column.
//
//   $ ./uneven_logs
#include <iostream>

#include "mcb/mcb.hpp"
#include "util/table.hpp"

int main() {
  using namespace mcb;

  const SimConfig cfg{.p = 24, .k = 6};
  const std::size_t n = 30000;

  auto workload = util::make_workload(n, cfg.p, util::Shape::kZipf, 13);
  std::cout << "records   : " << n << " over " << cfg.p << " nodes, "
            << "hottest node holds " << workload.max_local() << "\n\n";

  const auto res = algo::uneven_sort(cfg, workload.inputs);

  util::Table t;
  t.header({"phase", "cycles", "messages"});
  for (const auto& ph : res.run.stats.phases) {
    t.row({util::Table::txt(ph.name),
           util::Table::num(ph.cycles),
           util::Table::num(ph.messages)});
  }
  t.row({util::Table::txt("TOTAL"),
         util::Table::num(res.run.stats.cycles),
         util::Table::num(res.run.stats.messages)});
  std::cout << t;

  std::cout << "\ngroups formed : " << res.groups << " (columns of length "
            << res.column_len << ")\n";

  // Spot-check the global order across node boundaries.
  Word prev = res.run.outputs[0][0];
  for (const auto& out : res.run.outputs) {
    for (Word w : out) {
      if (w > prev) {
        std::cerr << "order violated\n";
        return 1;
      }
      prev = w;
    }
  }
  std::cout << "order checked : node 0 holds the newest records, node "
            << cfg.p << " the oldest\n";
  return 0;
}
