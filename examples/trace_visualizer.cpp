// Cycle-by-cycle visualization of a tiny Columnsort run — the executable
// version of the paper's Figure 1. A 4-processor, 4-channel network sorts
// 48 elements (columns of length 12 = k(k-1), the minimum valid length);
// the program prints the matrix between phases, then the first cycles of
// raw channel traffic, and closes with the per-channel utilization footer
// (writes per channel over the traced span).
//
//   $ ./trace_visualizer
#include <iostream>
#include <numeric>
#include <vector>

#include "mcb/mcb.hpp"
#include "seq/columnsort.hpp"
#include "seq/matrix.hpp"
#include "seq/sorting.hpp"
#include "util/random.hpp"

namespace {

void print_matrix(std::string_view title, std::span<const mcb::Word> data,
                  std::size_t m, std::size_t k) {
  std::cout << "--- " << title << " ---\n";
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < k; ++c) {
      std::cout.width(5);
      std::cout << data[c * m + r];
    }
    std::cout << '\n';
  }
  std::cout << '\n';
}

}  // namespace

int main() {
  using namespace mcb;
  const std::size_t m = 12, k = 4;

  // Figure 1 walk-through on the reference in-memory implementation:
  // show what each transformation does to an example matrix.
  std::vector<Word> data(m * k);
  std::iota(data.begin(), data.end(), Word{1});
  util::Xoshiro256StarStar rng(3);
  rng.shuffle(data);

  print_matrix("input (column-major, 12x4)", data, m, k);
  seq::ColMatrix mat(data, m, k);
  auto sort_columns = [&](std::size_t from) {
    for (std::size_t c = from; c < k; ++c) {
      seq::sort_descending(mat.column(c));
    }
  };
  sort_columns(0);
  print_matrix("phase 1: columns sorted", data, m, k);
  seq::apply_transform(sched::Transform::kTranspose, data, m, k);
  print_matrix("phase 2: transpose", data, m, k);
  sort_columns(0);
  seq::apply_transform(sched::Transform::kUndiagonalize, data, m, k);
  print_matrix("phase 4: un-diagonalize (after phase-3 sort)", data, m, k);
  sort_columns(0);
  seq::apply_transform(sched::Transform::kUpShift, data, m, k);
  print_matrix("phase 6: up-shift (after phase-5 sort)", data, m, k);
  sort_columns(1);
  seq::apply_transform(sched::Transform::kDownShift, data, m, k);
  print_matrix("phase 8: down-shift -> fully sorted", data, m, k);

  // Now the same dimensions on the real network, with the channel trace on.
  ChannelTrace trace(/*capacity=*/64);
  auto workload = util::make_workload(m * k, k, util::Shape::kEven, 3);
  auto res = algo::columnsort_even({.p = k, .k = k}, workload.inputs, {},
                                   &trace);
  std::cout << "distributed run: " << res.run.stats.cycles << " cycles, "
            << res.run.stats.messages << " messages over " << k
            << " channels\n\nfirst cycles of channel traffic (with "
               "per-channel utilization):\n"
            << trace.render(k);
  return 0;
}
