// Hosting a big network on small hardware (Section 2's simulation lemma,
// executed): a 32-processor, 8-channel sort is recorded and then replayed
// through relay processors on an 8-processor, 2-channel machine — every
// message really crosses a real channel, and every delivery is verified.
//
//   $ ./virtual_hardware
#include <iostream>

#include "mcb/mcb.hpp"
#include "mcb/virtualize.hpp"
#include "util/table.hpp"

int main() {
  using namespace mcb;

  const SimConfig virt{.p = 32, .k = 8};
  const SimConfig real{.p = 8, .k = 2};
  const std::size_t n = 1024;

  auto workload = util::make_workload(n, virt.p, util::Shape::kEven, 11);
  std::vector<std::vector<Word>> outputs(virt.p);

  std::cout << "sorting " << n << " elements on a virtual MCB(" << virt.p
            << "," << virt.k << "), hosted on a real MCB(" << real.p << ","
            << real.k << ")...\n\n";

  const auto plan = algo::EvenSortPlan::build(virt.p, virt.k, n / virt.p);
  auto res = run_virtualized(real, virt, [&](Network& net) {
    auto prog = [](Proc& self, const algo::EvenSortPlan& pl,
                   const std::vector<Word>& in,
                   std::vector<Word>& out) -> ProcMain {
      std::vector<algo::KV> kv;
      kv.reserve(in.size());
      for (Word v : in) kv.push_back(algo::KV{v, 0});
      co_await algo::columnsort_even_collective(self, pl, kv);
      out.clear();
      for (const auto& e : kv) out.push_back(e.key);
    };
    for (ProcId i = 0; i < virt.p; ++i) {
      net.install(i, prog(net.proc(i), plan, workload.inputs[i],
                          outputs[i]));
    }
  });

  // The sort happened: spot-check the global order.
  Word prev = outputs[0][0];
  for (const auto& out : outputs) {
    for (Word v : out) {
      if (v > prev) {
        std::cerr << "order violated!\n";
        return 1;
      }
      prev = v;
    }
  }

  util::Table t;
  t.header({"machine", "cycles", "messages"});
  t.row({util::Table::txt("virtual MCB(32,8)"),
         util::Table::num(res.virtual_stats.cycles),
         util::Table::num(res.virtual_stats.messages)});
  t.row({util::Table::txt("hosted on MCB(8,2)"),
         util::Table::num(res.real_stats.cycles),
         util::Table::num(res.real_stats.messages)});
  std::cout << t << "\noverhead: "
            << res.predicted.cycle_overhead(res.virtual_stats)
            << "x cycles (h=" << res.predicted.hosts
            << " hosted processors each, c=" << res.predicted.channel_mux
            << " channels multiplexed), " << res.predicted.hosts
            << "x messages — every delivery verified against the virtual "
               "run.\n";
  return 0;
}
