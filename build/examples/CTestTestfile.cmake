# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_distributed_median]=] "/root/repo/build/examples/distributed_median")
set_tests_properties([=[example_distributed_median]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_topk_query]=] "/root/repo/build/examples/topk_query")
set_tests_properties([=[example_topk_query]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_uneven_logs]=] "/root/repo/build/examples/uneven_logs")
set_tests_properties([=[example_uneven_logs]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_trace_visualizer]=] "/root/repo/build/examples/trace_visualizer")
set_tests_properties([=[example_trace_visualizer]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_virtual_hardware]=] "/root/repo/build/examples/virtual_hardware")
set_tests_properties([=[example_virtual_hardware]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
