# Empty dependencies file for distributed_median.
# This may be replaced when dependencies are built.
