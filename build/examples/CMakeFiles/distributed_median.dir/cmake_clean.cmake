file(REMOVE_RECURSE
  "CMakeFiles/distributed_median.dir/distributed_median.cpp.o"
  "CMakeFiles/distributed_median.dir/distributed_median.cpp.o.d"
  "distributed_median"
  "distributed_median.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_median.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
