# Empty dependencies file for trace_visualizer.
# This may be replaced when dependencies are built.
