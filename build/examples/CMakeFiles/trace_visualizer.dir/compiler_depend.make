# Empty compiler generated dependencies file for trace_visualizer.
# This may be replaced when dependencies are built.
