# Empty compiler generated dependencies file for topk_query.
# This may be replaced when dependencies are built.
