file(REMOVE_RECURSE
  "CMakeFiles/topk_query.dir/topk_query.cpp.o"
  "CMakeFiles/topk_query.dir/topk_query.cpp.o.d"
  "topk_query"
  "topk_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topk_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
