# Empty compiler generated dependencies file for uneven_logs.
# This may be replaced when dependencies are built.
