file(REMOVE_RECURSE
  "CMakeFiles/uneven_logs.dir/uneven_logs.cpp.o"
  "CMakeFiles/uneven_logs.dir/uneven_logs.cpp.o.d"
  "uneven_logs"
  "uneven_logs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uneven_logs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
