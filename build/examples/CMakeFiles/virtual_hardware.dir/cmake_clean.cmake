file(REMOVE_RECURSE
  "CMakeFiles/virtual_hardware.dir/virtual_hardware.cpp.o"
  "CMakeFiles/virtual_hardware.dir/virtual_hardware.cpp.o.d"
  "virtual_hardware"
  "virtual_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtual_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
