# Empty compiler generated dependencies file for virtual_hardware.
# This may be replaced when dependencies are built.
