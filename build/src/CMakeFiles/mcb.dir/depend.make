# Empty dependencies file for mcb.
# This may be replaced when dependencies are built.
