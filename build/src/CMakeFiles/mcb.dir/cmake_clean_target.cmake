file(REMOVE_RECURSE
  "libmcb.a"
)
