
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/baselines.cpp" "src/CMakeFiles/mcb.dir/algo/baselines.cpp.o" "gcc" "src/CMakeFiles/mcb.dir/algo/baselines.cpp.o.d"
  "/root/repo/src/algo/collectives.cpp" "src/CMakeFiles/mcb.dir/algo/collectives.cpp.o" "gcc" "src/CMakeFiles/mcb.dir/algo/collectives.cpp.o.d"
  "/root/repo/src/algo/columnsort_core.cpp" "src/CMakeFiles/mcb.dir/algo/columnsort_core.cpp.o" "gcc" "src/CMakeFiles/mcb.dir/algo/columnsort_core.cpp.o.d"
  "/root/repo/src/algo/columnsort_even.cpp" "src/CMakeFiles/mcb.dir/algo/columnsort_even.cpp.o" "gcc" "src/CMakeFiles/mcb.dir/algo/columnsort_even.cpp.o.d"
  "/root/repo/src/algo/mergesort.cpp" "src/CMakeFiles/mcb.dir/algo/mergesort.cpp.o" "gcc" "src/CMakeFiles/mcb.dir/algo/mergesort.cpp.o.d"
  "/root/repo/src/algo/partial_sums.cpp" "src/CMakeFiles/mcb.dir/algo/partial_sums.cpp.o" "gcc" "src/CMakeFiles/mcb.dir/algo/partial_sums.cpp.o.d"
  "/root/repo/src/algo/ranksort.cpp" "src/CMakeFiles/mcb.dir/algo/ranksort.cpp.o" "gcc" "src/CMakeFiles/mcb.dir/algo/ranksort.cpp.o.d"
  "/root/repo/src/algo/recursive_columnsort.cpp" "src/CMakeFiles/mcb.dir/algo/recursive_columnsort.cpp.o" "gcc" "src/CMakeFiles/mcb.dir/algo/recursive_columnsort.cpp.o.d"
  "/root/repo/src/algo/runner.cpp" "src/CMakeFiles/mcb.dir/algo/runner.cpp.o" "gcc" "src/CMakeFiles/mcb.dir/algo/runner.cpp.o.d"
  "/root/repo/src/algo/selection.cpp" "src/CMakeFiles/mcb.dir/algo/selection.cpp.o" "gcc" "src/CMakeFiles/mcb.dir/algo/selection.cpp.o.d"
  "/root/repo/src/algo/sort.cpp" "src/CMakeFiles/mcb.dir/algo/sort.cpp.o" "gcc" "src/CMakeFiles/mcb.dir/algo/sort.cpp.o.d"
  "/root/repo/src/algo/uneven_sort.cpp" "src/CMakeFiles/mcb.dir/algo/uneven_sort.cpp.o" "gcc" "src/CMakeFiles/mcb.dir/algo/uneven_sort.cpp.o.d"
  "/root/repo/src/algo/virtual_columnsort.cpp" "src/CMakeFiles/mcb.dir/algo/virtual_columnsort.cpp.o" "gcc" "src/CMakeFiles/mcb.dir/algo/virtual_columnsort.cpp.o.d"
  "/root/repo/src/mcb/message.cpp" "src/CMakeFiles/mcb.dir/mcb/message.cpp.o" "gcc" "src/CMakeFiles/mcb.dir/mcb/message.cpp.o.d"
  "/root/repo/src/mcb/network.cpp" "src/CMakeFiles/mcb.dir/mcb/network.cpp.o" "gcc" "src/CMakeFiles/mcb.dir/mcb/network.cpp.o.d"
  "/root/repo/src/mcb/proc.cpp" "src/CMakeFiles/mcb.dir/mcb/proc.cpp.o" "gcc" "src/CMakeFiles/mcb.dir/mcb/proc.cpp.o.d"
  "/root/repo/src/mcb/stats.cpp" "src/CMakeFiles/mcb.dir/mcb/stats.cpp.o" "gcc" "src/CMakeFiles/mcb.dir/mcb/stats.cpp.o.d"
  "/root/repo/src/mcb/trace.cpp" "src/CMakeFiles/mcb.dir/mcb/trace.cpp.o" "gcc" "src/CMakeFiles/mcb.dir/mcb/trace.cpp.o.d"
  "/root/repo/src/mcb/virtualize.cpp" "src/CMakeFiles/mcb.dir/mcb/virtualize.cpp.o" "gcc" "src/CMakeFiles/mcb.dir/mcb/virtualize.cpp.o.d"
  "/root/repo/src/sched/edge_coloring.cpp" "src/CMakeFiles/mcb.dir/sched/edge_coloring.cpp.o" "gcc" "src/CMakeFiles/mcb.dir/sched/edge_coloring.cpp.o.d"
  "/root/repo/src/sched/permutation.cpp" "src/CMakeFiles/mcb.dir/sched/permutation.cpp.o" "gcc" "src/CMakeFiles/mcb.dir/sched/permutation.cpp.o.d"
  "/root/repo/src/sched/schedule.cpp" "src/CMakeFiles/mcb.dir/sched/schedule.cpp.o" "gcc" "src/CMakeFiles/mcb.dir/sched/schedule.cpp.o.d"
  "/root/repo/src/se/shout_echo.cpp" "src/CMakeFiles/mcb.dir/se/shout_echo.cpp.o" "gcc" "src/CMakeFiles/mcb.dir/se/shout_echo.cpp.o.d"
  "/root/repo/src/seq/columnsort.cpp" "src/CMakeFiles/mcb.dir/seq/columnsort.cpp.o" "gcc" "src/CMakeFiles/mcb.dir/seq/columnsort.cpp.o.d"
  "/root/repo/src/seq/selection.cpp" "src/CMakeFiles/mcb.dir/seq/selection.cpp.o" "gcc" "src/CMakeFiles/mcb.dir/seq/selection.cpp.o.d"
  "/root/repo/src/seq/sorting.cpp" "src/CMakeFiles/mcb.dir/seq/sorting.cpp.o" "gcc" "src/CMakeFiles/mcb.dir/seq/sorting.cpp.o.d"
  "/root/repo/src/theory/adversary.cpp" "src/CMakeFiles/mcb.dir/theory/adversary.cpp.o" "gcc" "src/CMakeFiles/mcb.dir/theory/adversary.cpp.o.d"
  "/root/repo/src/theory/bounds.cpp" "src/CMakeFiles/mcb.dir/theory/bounds.cpp.o" "gcc" "src/CMakeFiles/mcb.dir/theory/bounds.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/mcb.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/mcb.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/random.cpp" "src/CMakeFiles/mcb.dir/util/random.cpp.o" "gcc" "src/CMakeFiles/mcb.dir/util/random.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/mcb.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/mcb.dir/util/table.cpp.o.d"
  "/root/repo/src/util/workload.cpp" "src/CMakeFiles/mcb.dir/util/workload.cpp.o" "gcc" "src/CMakeFiles/mcb.dir/util/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
