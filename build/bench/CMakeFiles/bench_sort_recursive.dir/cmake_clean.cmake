file(REMOVE_RECURSE
  "CMakeFiles/bench_sort_recursive.dir/bench_sort_recursive.cpp.o"
  "CMakeFiles/bench_sort_recursive.dir/bench_sort_recursive.cpp.o.d"
  "bench_sort_recursive"
  "bench_sort_recursive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sort_recursive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
