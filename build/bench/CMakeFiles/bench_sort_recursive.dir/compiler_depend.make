# Empty compiler generated dependencies file for bench_sort_recursive.
# This may be replaced when dependencies are built.
