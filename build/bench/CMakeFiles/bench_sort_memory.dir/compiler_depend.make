# Empty compiler generated dependencies file for bench_sort_memory.
# This may be replaced when dependencies are built.
