file(REMOVE_RECURSE
  "CMakeFiles/bench_sort_memory.dir/bench_sort_memory.cpp.o"
  "CMakeFiles/bench_sort_memory.dir/bench_sort_memory.cpp.o.d"
  "bench_sort_memory"
  "bench_sort_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sort_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
