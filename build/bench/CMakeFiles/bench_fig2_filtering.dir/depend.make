# Empty dependencies file for bench_fig2_filtering.
# This may be replaced when dependencies are built.
