file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_filtering.dir/bench_fig2_filtering.cpp.o"
  "CMakeFiles/bench_fig2_filtering.dir/bench_fig2_filtering.cpp.o.d"
  "bench_fig2_filtering"
  "bench_fig2_filtering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
