file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_transformations.dir/bench_fig1_transformations.cpp.o"
  "CMakeFiles/bench_fig1_transformations.dir/bench_fig1_transformations.cpp.o.d"
  "bench_fig1_transformations"
  "bench_fig1_transformations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_transformations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
