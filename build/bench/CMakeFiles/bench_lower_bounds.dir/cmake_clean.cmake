file(REMOVE_RECURSE
  "CMakeFiles/bench_lower_bounds.dir/bench_lower_bounds.cpp.o"
  "CMakeFiles/bench_lower_bounds.dir/bench_lower_bounds.cpp.o.d"
  "bench_lower_bounds"
  "bench_lower_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lower_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
