# Empty dependencies file for bench_sort_even.
# This may be replaced when dependencies are built.
