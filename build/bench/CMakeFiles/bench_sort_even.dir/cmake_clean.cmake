file(REMOVE_RECURSE
  "CMakeFiles/bench_sort_even.dir/bench_sort_even.cpp.o"
  "CMakeFiles/bench_sort_even.dir/bench_sort_even.cpp.o.d"
  "bench_sort_even"
  "bench_sort_even.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sort_even.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
