file(REMOVE_RECURSE
  "CMakeFiles/bench_sort_uneven.dir/bench_sort_uneven.cpp.o"
  "CMakeFiles/bench_sort_uneven.dir/bench_sort_uneven.cpp.o.d"
  "bench_sort_uneven"
  "bench_sort_uneven.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sort_uneven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
