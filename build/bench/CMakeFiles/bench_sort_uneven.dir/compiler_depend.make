# Empty compiler generated dependencies file for bench_sort_uneven.
# This may be replaced when dependencies are built.
