file(REMOVE_RECURSE
  "CMakeFiles/bench_partial_sums.dir/bench_partial_sums.cpp.o"
  "CMakeFiles/bench_partial_sums.dir/bench_partial_sums.cpp.o.d"
  "bench_partial_sums"
  "bench_partial_sums.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partial_sums.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
