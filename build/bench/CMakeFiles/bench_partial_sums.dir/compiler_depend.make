# Empty compiler generated dependencies file for bench_partial_sums.
# This may be replaced when dependencies are built.
