file(REMOVE_RECURSE
  "CMakeFiles/bench_selection.dir/bench_selection.cpp.o"
  "CMakeFiles/bench_selection.dir/bench_selection.cpp.o.d"
  "bench_selection"
  "bench_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
