# Empty dependencies file for bench_selection.
# This may be replaced when dependencies are built.
