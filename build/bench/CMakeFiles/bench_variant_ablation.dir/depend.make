# Empty dependencies file for bench_variant_ablation.
# This may be replaced when dependencies are built.
