file(REMOVE_RECURSE
  "CMakeFiles/bench_variant_ablation.dir/bench_variant_ablation.cpp.o"
  "CMakeFiles/bench_variant_ablation.dir/bench_variant_ablation.cpp.o.d"
  "bench_variant_ablation"
  "bench_variant_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_variant_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
