file(REMOVE_RECURSE
  "CMakeFiles/mcbsim.dir/mcbsim.cpp.o"
  "CMakeFiles/mcbsim.dir/mcbsim.cpp.o.d"
  "mcbsim"
  "mcbsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcbsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
