# Empty compiler generated dependencies file for mcbsim.
# This may be replaced when dependencies are built.
