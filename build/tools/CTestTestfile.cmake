# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[mcbsim_sort]=] "/root/repo/build/tools/mcbsim" "sort" "--p" "8" "--k" "2" "--n" "128" "--shape" "zipf")
set_tests_properties([=[mcbsim_sort]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[mcbsim_select]=] "/root/repo/build/tools/mcbsim" "select" "--p" "8" "--k" "2" "--n" "128" "--rank" "32" "--json")
set_tests_properties([=[mcbsim_select]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[mcbsim_select_se]=] "/root/repo/build/tools/mcbsim" "select" "--p" "8" "--k" "2" "--n" "128" "--shout-echo")
set_tests_properties([=[mcbsim_select_se]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[mcbsim_psum]=] "/root/repo/build/tools/mcbsim" "psum" "--p" "8" "--k" "4" "--op" "max")
set_tests_properties([=[mcbsim_psum]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[mcbsim_bounds]=] "/root/repo/build/tools/mcbsim" "bounds" "--p" "8" "--k" "2" "--n" "512")
set_tests_properties([=[mcbsim_bounds]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
