# Empty dependencies file for virtual_columnsort_test.
# This may be replaced when dependencies are built.
