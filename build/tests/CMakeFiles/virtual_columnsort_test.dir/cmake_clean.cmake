file(REMOVE_RECURSE
  "CMakeFiles/virtual_columnsort_test.dir/virtual_columnsort_test.cpp.o"
  "CMakeFiles/virtual_columnsort_test.dir/virtual_columnsort_test.cpp.o.d"
  "virtual_columnsort_test"
  "virtual_columnsort_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtual_columnsort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
