file(REMOVE_RECURSE
  "CMakeFiles/columnsort_core_test.dir/columnsort_core_test.cpp.o"
  "CMakeFiles/columnsort_core_test.dir/columnsort_core_test.cpp.o.d"
  "columnsort_core_test"
  "columnsort_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/columnsort_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
