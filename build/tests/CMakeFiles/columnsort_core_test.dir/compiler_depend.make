# Empty compiler generated dependencies file for columnsort_core_test.
# This may be replaced when dependencies are built.
