file(REMOVE_RECURSE
  "CMakeFiles/partial_sums_test.dir/partial_sums_test.cpp.o"
  "CMakeFiles/partial_sums_test.dir/partial_sums_test.cpp.o.d"
  "partial_sums_test"
  "partial_sums_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_sums_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
