# Empty compiler generated dependencies file for partial_sums_test.
# This may be replaced when dependencies are built.
