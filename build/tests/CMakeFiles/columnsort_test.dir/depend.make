# Empty dependencies file for columnsort_test.
# This may be replaced when dependencies are built.
