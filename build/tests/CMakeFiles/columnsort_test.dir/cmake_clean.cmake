file(REMOVE_RECURSE
  "CMakeFiles/columnsort_test.dir/columnsort_test.cpp.o"
  "CMakeFiles/columnsort_test.dir/columnsort_test.cpp.o.d"
  "columnsort_test"
  "columnsort_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/columnsort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
