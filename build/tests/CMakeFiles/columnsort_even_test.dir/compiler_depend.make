# Empty compiler generated dependencies file for columnsort_even_test.
# This may be replaced when dependencies are built.
