file(REMOVE_RECURSE
  "CMakeFiles/columnsort_even_test.dir/columnsort_even_test.cpp.o"
  "CMakeFiles/columnsort_even_test.dir/columnsort_even_test.cpp.o.d"
  "columnsort_even_test"
  "columnsort_even_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/columnsort_even_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
