file(REMOVE_RECURSE
  "CMakeFiles/recursive_columnsort_test.dir/recursive_columnsort_test.cpp.o"
  "CMakeFiles/recursive_columnsort_test.dir/recursive_columnsort_test.cpp.o.d"
  "recursive_columnsort_test"
  "recursive_columnsort_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recursive_columnsort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
