# Empty compiler generated dependencies file for recursive_columnsort_test.
# This may be replaced when dependencies are built.
