# Empty dependencies file for seq_selection_test.
# This may be replaced when dependencies are built.
