file(REMOVE_RECURSE
  "CMakeFiles/seq_selection_test.dir/seq_selection_test.cpp.o"
  "CMakeFiles/seq_selection_test.dir/seq_selection_test.cpp.o.d"
  "seq_selection_test"
  "seq_selection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_selection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
