file(REMOVE_RECURSE
  "CMakeFiles/network_test.dir/network_test.cpp.o"
  "CMakeFiles/network_test.dir/network_test.cpp.o.d"
  "network_test"
  "network_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
