file(REMOVE_RECURSE
  "CMakeFiles/network_fuzz_test.dir/network_fuzz_test.cpp.o"
  "CMakeFiles/network_fuzz_test.dir/network_fuzz_test.cpp.o.d"
  "network_fuzz_test"
  "network_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
