# Empty dependencies file for network_fuzz_test.
# This may be replaced when dependencies are built.
