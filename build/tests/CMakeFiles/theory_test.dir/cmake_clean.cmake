file(REMOVE_RECURSE
  "CMakeFiles/theory_test.dir/theory_test.cpp.o"
  "CMakeFiles/theory_test.dir/theory_test.cpp.o.d"
  "theory_test"
  "theory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
