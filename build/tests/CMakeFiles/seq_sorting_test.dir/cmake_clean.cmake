file(REMOVE_RECURSE
  "CMakeFiles/seq_sorting_test.dir/seq_sorting_test.cpp.o"
  "CMakeFiles/seq_sorting_test.dir/seq_sorting_test.cpp.o.d"
  "seq_sorting_test"
  "seq_sorting_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_sorting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
