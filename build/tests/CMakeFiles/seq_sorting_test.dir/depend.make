# Empty dependencies file for seq_sorting_test.
# This may be replaced when dependencies are built.
