file(REMOVE_RECURSE
  "CMakeFiles/collectives_test.dir/collectives_test.cpp.o"
  "CMakeFiles/collectives_test.dir/collectives_test.cpp.o.d"
  "collectives_test"
  "collectives_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collectives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
