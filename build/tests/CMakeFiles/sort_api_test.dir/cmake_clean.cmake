file(REMOVE_RECURSE
  "CMakeFiles/sort_api_test.dir/sort_api_test.cpp.o"
  "CMakeFiles/sort_api_test.dir/sort_api_test.cpp.o.d"
  "sort_api_test"
  "sort_api_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sort_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
