# Empty dependencies file for sort_api_test.
# This may be replaced when dependencies are built.
