# Empty dependencies file for uneven_sort_test.
# This may be replaced when dependencies are built.
