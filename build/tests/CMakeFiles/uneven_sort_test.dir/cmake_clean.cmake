file(REMOVE_RECURSE
  "CMakeFiles/uneven_sort_test.dir/uneven_sort_test.cpp.o"
  "CMakeFiles/uneven_sort_test.dir/uneven_sort_test.cpp.o.d"
  "uneven_sort_test"
  "uneven_sort_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uneven_sort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
