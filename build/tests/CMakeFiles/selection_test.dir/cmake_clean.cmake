file(REMOVE_RECURSE
  "CMakeFiles/selection_test.dir/selection_test.cpp.o"
  "CMakeFiles/selection_test.dir/selection_test.cpp.o.d"
  "selection_test"
  "selection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
