# Empty compiler generated dependencies file for selection_test.
# This may be replaced when dependencies are built.
