# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for virtualize_run_test.
