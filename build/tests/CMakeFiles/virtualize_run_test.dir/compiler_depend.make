# Empty compiler generated dependencies file for virtualize_run_test.
# This may be replaced when dependencies are built.
