file(REMOVE_RECURSE
  "CMakeFiles/virtualize_run_test.dir/virtualize_run_test.cpp.o"
  "CMakeFiles/virtualize_run_test.dir/virtualize_run_test.cpp.o.d"
  "virtualize_run_test"
  "virtualize_run_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtualize_run_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
