# Empty compiler generated dependencies file for single_channel_sort_test.
# This may be replaced when dependencies are built.
