file(REMOVE_RECURSE
  "CMakeFiles/single_channel_sort_test.dir/single_channel_sort_test.cpp.o"
  "CMakeFiles/single_channel_sort_test.dir/single_channel_sort_test.cpp.o.d"
  "single_channel_sort_test"
  "single_channel_sort_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/single_channel_sort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
