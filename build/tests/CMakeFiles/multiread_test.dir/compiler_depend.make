# Empty compiler generated dependencies file for multiread_test.
# This may be replaced when dependencies are built.
