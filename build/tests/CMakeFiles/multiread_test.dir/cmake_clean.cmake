file(REMOVE_RECURSE
  "CMakeFiles/multiread_test.dir/multiread_test.cpp.o"
  "CMakeFiles/multiread_test.dir/multiread_test.cpp.o.d"
  "multiread_test"
  "multiread_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiread_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
