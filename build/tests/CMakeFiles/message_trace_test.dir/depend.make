# Empty dependencies file for message_trace_test.
# This may be replaced when dependencies are built.
