file(REMOVE_RECURSE
  "CMakeFiles/message_trace_test.dir/message_trace_test.cpp.o"
  "CMakeFiles/message_trace_test.dir/message_trace_test.cpp.o.d"
  "message_trace_test"
  "message_trace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/message_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
