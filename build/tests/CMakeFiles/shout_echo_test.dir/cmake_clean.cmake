file(REMOVE_RECURSE
  "CMakeFiles/shout_echo_test.dir/shout_echo_test.cpp.o"
  "CMakeFiles/shout_echo_test.dir/shout_echo_test.cpp.o.d"
  "shout_echo_test"
  "shout_echo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shout_echo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
