# Empty dependencies file for shout_echo_test.
# This may be replaced when dependencies are built.
