// mcblint lexer: turns one C++ translation unit into a token stream the
// rule engine can reason about, with comments, string/char literals and
// preprocessor directives stripped *structurally* (not by regex), so that
//
//   * `rand()` inside a comment, a string literal or a raw string never
//     trips a rule,
//   * multi-line statements are one token sequence (the awk rules this
//     tool replaces could only see one line at a time),
//   * escape hatches (`lint-allow: <rule>`) and the parallel-region
//     begin/end markers are read out of the comments they live in, at the
//     line they occur.
//
// The lexer is deliberately not a full C++ tokenizer: it produces the four
// token classes the rules consume (identifiers, numbers, punctuation,
// literals) and folds every maximal multi-character operator the rules
// care about (`::`, `->`, `++`, `+=`, ...). Preprocessor directives are
// consumed whole (honouring line continuations and embedded comments) and
// emit no tokens — a `#define` with unbalanced braces must not derail the
// scanner's brace matching.
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace mcblint {

enum class TokKind {
  kIdent,   // identifiers and keywords (co_await, while, ...)
  kNumber,  // pp-numbers, including 1'000'000 digit separators
  kPunct,   // operators/punctuation, max-munched
  kString,  // string literal (text dropped; raw strings included)
  kChar,    // character literal (text dropped)
};

struct Token {
  TokKind kind;
  std::string text;  // empty for kString/kChar — contents must never match
  int line;          // 1-based line of the token's first character
};

/// A parallel-region fence comment: the marker prefix followed by
/// `begin [allow=a,b,c]` or `end` (docs/LINT.md shows the exact spelling).
struct RegionMarker {
  int line = 0;
  bool begin = false;
  std::set<std::string> allow;  // member names writable inside the region
};

struct LexedFile {
  std::string path;  // repo-relative, '/'-separated (set by the caller)
  std::vector<Token> tokens;
  /// line -> rule names allowed there. An entry on line N suppresses
  /// findings on line N (trailing comment) and line N+1 (comment-above
  /// style). Names are rule slugs ("naked-new"), ids ("MCB-L6") or "all".
  std::map<int, std::set<std::string>> allows;
  std::vector<RegionMarker> markers;
};

/// Lexes `text`. `path` is stored verbatim into the result.
LexedFile lex(std::string path, std::string_view text);

}  // namespace mcblint
