#include "mcblint/lexer.hpp"

#include <array>
#include <cctype>
#include <cstddef>

namespace mcblint {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

// Multi-character operators, longest first (max munch). Only operators a
// rule distinguishes need folding; everything else falls through to
// single-character punctuation.
constexpr std::array<std::string_view, 22> kOps3{
    "<<=", ">>=", "...", "->*",
    // 2-char from here on (scanned after the 3-char ones miss)
    "::", "->", "++", "--", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=", "==", "!=", "<=", ">=", "&&", "||"};

/// Parses the directives out of one comment's text. `line` is the line the
/// comment starts on; `text` may span lines (block comments) — newlines in
/// it advance the attributed line.
void scan_comment(std::string_view text, int line, LexedFile& out) {
  int cur = line;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') {
      ++cur;
      continue;
    }
    // lint-allow: rule[, rule...]
    constexpr std::string_view kAllow = "lint-allow:";
    constexpr std::string_view kRegion = "mcblint: parallel-region";
    if (text.compare(i, kAllow.size(), kAllow) == 0) {
      std::size_t j = i + kAllow.size();
      while (true) {
        while (j < text.size() && (text[j] == ' ' || text[j] == '\t')) ++j;
        std::size_t s = j;
        while (j < text.size() &&
               (is_ident_char(text[j]) || text[j] == '-')) {
          ++j;
        }
        if (j == s) break;
        out.allows[cur].insert(std::string(text.substr(s, j - s)));
        if (j < text.size() && text[j] == ',') {
          ++j;
          continue;
        }
        break;
      }
      i = j - 1;
      continue;
    }
    if (text.compare(i, kRegion.size(), kRegion) == 0) {
      std::size_t j = i + kRegion.size();
      while (j < text.size() && (text[j] == ' ' || text[j] == '\t')) ++j;
      RegionMarker m;
      m.line = cur;
      constexpr std::string_view kBegin = "begin";
      constexpr std::string_view kEnd = "end";
      if (text.compare(j, kBegin.size(), kBegin) == 0) {
        m.begin = true;
        j += kBegin.size();
      } else if (text.compare(j, kEnd.size(), kEnd) == 0) {
        m.begin = false;
        j += kEnd.size();
      } else {
        continue;  // malformed marker; L4 reports unpaired markers anyway
      }
      while (j < text.size() && (text[j] == ' ' || text[j] == '\t')) ++j;
      constexpr std::string_view kAllowEq = "allow=";
      if (text.compare(j, kAllowEq.size(), kAllowEq) == 0) {
        j += kAllowEq.size();
        while (true) {
          std::size_t s = j;
          while (j < text.size() && is_ident_char(text[j])) ++j;
          if (j > s) m.allow.insert(std::string(text.substr(s, j - s)));
          if (j < text.size() && text[j] == ',') {
            ++j;
            continue;
          }
          break;
        }
      }
      out.markers.push_back(std::move(m));
      i = j - 1;
      continue;
    }
  }
}

class Lexer {
 public:
  Lexer(std::string_view text, LexedFile& out) : t_(text), out_(out) {}

  void run() {
    while (i_ < t_.size()) {
      const char c = t_[i_];
      if (c == '\n') {
        ++line_;
        at_line_start_ = true;
        ++i_;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++i_;
        continue;
      }
      if (c == '#' && at_line_start_) {
        directive();
        continue;
      }
      at_line_start_ = false;
      if (c == '/' && peek(1) == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      if (raw_string_prefix() > 0) {
        raw_string();
        continue;
      }
      if (c == '"') {
        string_literal('"', TokKind::kString);
        continue;
      }
      if (c == '\'') {
        string_literal('\'', TokKind::kChar);
        continue;
      }
      if (is_ident_start(c)) {
        identifier();
        continue;
      }
      if (is_digit(c) || (c == '.' && is_digit(peek(1)))) {
        number();
        continue;
      }
      punct();
    }
  }

 private:
  char peek(std::size_t off) const {
    return i_ + off < t_.size() ? t_[i_ + off] : '\0';
  }

  void emit(TokKind k, std::string text, int line) {
    out_.tokens.push_back(Token{k, std::move(text), line});
  }

  /// Whole-directive consumption: to end of line, honouring backslash
  /// continuations and comments/strings inside the directive. Emits no
  /// tokens.
  void directive() {
    while (i_ < t_.size()) {
      const char c = t_[i_];
      if (c == '\\' && peek(1) == '\n') {
        i_ += 2;
        ++line_;
        continue;
      }
      if (c == '\n') break;  // leave the newline to the main loop
      if (c == '/' && peek(1) == '/') {
        line_comment();
        break;  // a // comment runs to the same EOL the directive ends at
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      if (c == '"' || c == '\'') {
        skip_quoted(c);
        continue;
      }
      ++i_;
    }
  }

  void line_comment() {
    const int start_line = line_;
    const std::size_t s = i_ + 2;
    i_ += 2;
    while (i_ < t_.size()) {
      if (t_[i_] == '\\' && peek(1) == '\n') {  // spliced comment line
        i_ += 2;
        ++line_;
        continue;
      }
      if (t_[i_] == '\n') break;
      ++i_;
    }
    scan_comment(t_.substr(s, i_ - s), start_line, out_);
  }

  void block_comment() {
    const int start_line = line_;
    const std::size_t s = i_ + 2;
    i_ += 2;
    while (i_ < t_.size()) {
      if (t_[i_] == '*' && peek(1) == '/') {
        scan_comment(t_.substr(s, i_ - s), start_line, out_);
        i_ += 2;
        return;
      }
      if (t_[i_] == '\n') ++line_;
      ++i_;
    }
    scan_comment(t_.substr(s, i_ - s), start_line, out_);  // unterminated
  }

  /// Length of a raw-string prefix (R" u8R" uR" LR" UR") at i_, else 0.
  std::size_t raw_string_prefix() const {
    std::size_t j = i_;
    if (t_[j] == 'u' && peek(1) == '8') j += 2;
    else if (t_[j] == 'u' || t_[j] == 'U' || t_[j] == 'L') j += 1;
    if (j < t_.size() && t_[j] == 'R' && j + 1 < t_.size() &&
        t_[j + 1] == '"') {
      return j + 2 - i_;
    }
    return 0;
  }

  void raw_string() {
    const int start_line = line_;
    i_ += raw_string_prefix();  // past R"
    // delimiter up to '('
    std::size_t d = i_;
    while (i_ < t_.size() && t_[i_] != '(') ++i_;
    std::string close;
    close.reserve(i_ - d + 2);
    close.push_back(')');
    close.append(t_.substr(d, i_ - d));
    close.push_back('"');
    if (i_ < t_.size()) ++i_;  // past '('
    while (i_ < t_.size()) {
      if (t_[i_] == '\n') ++line_;
      if (t_.compare(i_, close.size(), close) == 0) {
        i_ += close.size();
        break;
      }
      ++i_;
    }
    emit(TokKind::kString, "", start_line);
  }

  void skip_quoted(char q) {
    ++i_;  // opening quote
    while (i_ < t_.size()) {
      if (t_[i_] == '\\') {
        i_ += 2;
        continue;
      }
      if (t_[i_] == '\n') {  // unterminated (or spliced); don't run away
        return;
      }
      if (t_[i_] == q) {
        ++i_;
        return;
      }
      ++i_;
    }
  }

  void string_literal(char q, TokKind kind) {
    const int start_line = line_;
    skip_quoted(q);
    emit(kind, "", start_line);
  }

  void identifier() {
    const int start_line = line_;
    const std::size_t s = i_;
    while (i_ < t_.size() && is_ident_char(t_[i_])) ++i_;
    // encoding-prefixed string like u8"..." handled by raw_string_prefix /
    // the '"' branch on the next loop turn; the prefix itself is harmless
    // as an identifier token.
    emit(TokKind::kIdent, std::string(t_.substr(s, i_ - s)), start_line);
  }

  void number() {
    const int start_line = line_;
    const std::size_t s = i_;
    while (i_ < t_.size()) {
      const char c = t_[i_];
      if (is_ident_char(c) || c == '.' || c == '\'') {
        ++i_;
        continue;
      }
      if ((c == '+' || c == '-') && i_ > s) {
        const char p = t_[i_ - 1];
        if (p == 'e' || p == 'E' || p == 'p' || p == 'P') {
          ++i_;
          continue;
        }
      }
      break;
    }
    emit(TokKind::kNumber, std::string(t_.substr(s, i_ - s)), start_line);
  }

  void punct() {
    for (const std::string_view op : kOps3) {
      if (t_.compare(i_, op.size(), op) == 0) {
        emit(TokKind::kPunct, std::string(op), line_);
        i_ += op.size();
        return;
      }
    }
    emit(TokKind::kPunct, std::string(1, t_[i_]), line_);
    ++i_;
  }

  std::string_view t_;
  LexedFile& out_;
  std::size_t i_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
};

}  // namespace

LexedFile lex(std::string path, std::string_view text) {
  LexedFile out;
  out.path = std::move(path);
  Lexer(text, out).run();
  return out;
}

}  // namespace mcblint
