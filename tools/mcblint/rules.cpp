#include "mcblint/rules.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <set>
#include <sstream>
#include <string_view>
#include <tuple>

#include "mcblint/scanner.hpp"
#include "util/json.hpp"

namespace mcblint {

namespace {

constexpr std::size_t npos = Scan::npos;

bool is_punct(const Token& t, std::string_view s) {
  return t.kind == TokKind::kPunct && t.text == s;
}
bool is_ident(const Token& t, std::string_view s) {
  return t.kind == TokKind::kIdent && t.text == s;
}
bool starts_with(std::string_view s, std::string_view pre) {
  return s.size() >= pre.size() && s.compare(0, pre.size(), pre) == 0;
}
bool ends_with(std::string_view s, std::string_view suf) {
  return s.size() >= suf.size() &&
         s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

struct RuleDef {
  std::string_view id;
  std::string_view slug;
  std::vector<std::string_view> scopes;  // path prefixes; empty = everywhere
};

const std::array<RuleDef, 6>& rule_defs() {
  static const std::array<RuleDef, 6> defs{{
      {"MCB-L1", "use-after-suspend", {}},
      {"MCB-L2",
       "nondeterminism",
       {"src/mcb/", "src/algo/", "src/se/", "src/sched/", "src/serve/"}},
      {"MCB-L3",
       "unordered-iteration",
       {"src/mcb/", "src/algo/", "src/se/", "src/sched/", "src/serve/"}},
      {"MCB-L4", "parallel-phase", {}},
      {"MCB-L5", "busy-wait-step", {"src/"}},
      {"MCB-L6",
       "naked-new",
       {"src/mcb/", "src/algo/", "src/se/", "src/sched/", "src/check/",
        "src/harness/"}},
  }};
  return defs;
}

bool rule_in_scope(const RuleDef& r, std::string_view path, bool all) {
  if (all || r.scopes.empty()) return true;
  for (const std::string_view pre : r.scopes) {
    if (starts_with(path, pre)) return true;
  }
  return false;
}

void add(std::vector<Finding>* out, const RuleDef& r, const LexedFile& f,
         int line, std::string detail) {
  out->push_back(Finding{std::string(r.id), std::string(r.slug), f.path,
                         line, std::move(detail)});
}

// --------------------------------------------------------------------------
// MCB-L1: use-after-suspend
// --------------------------------------------------------------------------

// Statement keywords that can never start a declaration we track.
bool is_stmt_keyword(std::string_view s) {
  static const std::set<std::string, std::less<>> kw{
      "return",   "if",      "else",    "while",   "for",     "do",
      "switch",   "case",    "break",   "continue", "goto",   "co_await",
      "co_return", "co_yield", "throw", "delete",  "new",     "try",
      "catch",    "using",   "typedef", "template", "public", "private",
      "protected", "default", "sizeof", "this",    "operator"};
  return kw.count(s) > 0;
}

// Type qualifiers/specifiers that contribute to a declaration's type
// without being the declared name.
bool is_type_qualifier(std::string_view s) {
  static const std::set<std::string, std::less<>> kw{
      "const",    "constexpr", "static",  "thread_local", "volatile",
      "mutable",  "register",  "inline",  "typename",     "unsigned",
      "signed",   "long",      "short",   "auto",         "struct",
      "class",    "enum",      "union"};
  return kw.count(s) > 0;
}

/// Skips a balanced <...> starting at `i` (toks[i] == "<"). Returns the
/// index just past the matching ">", or npos when the run hits a token
/// that proves this was a comparison, not template arguments.
std::size_t skip_angles(const std::vector<Token>& toks, std::size_t i,
                        std::size_t limit) {
  int depth = 0;
  std::size_t steps = 0;
  for (std::size_t j = i; j < limit && steps < 256; ++j, ++steps) {
    const Token& t = toks[j];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "<") ++depth;
    else if (t.text == ">") {
      if (--depth == 0) return j + 1;
    } else if (t.text == ";" || t.text == "{" || t.text == "}") {
      return npos;
    }
  }
  return npos;
}

enum class Root { kCall, kLocal, kParam, kValue, kUnknown };

struct RootInfo {
  Root kind = Root::kUnknown;
  bool addr_of = false;    // leading unary & in the initializer
  std::string name;        // root variable, when kind is a variable kind
  bool suspends = false;   // initializer itself contains co_await/co_yield
};

struct L1Scope {
  std::set<std::string> values;  // locals declared in this scope
};

struct L1Ref {
  std::string name;
  int decl_line = 0;
  std::string origin;     // "a temporary" / "stack local 'x'"
  int suspend_line = -1;  // first co_await after the declaration
  bool reported = false;
  std::size_t scope = 0;
};

struct L1State {
  std::vector<L1Scope> scopes;
  std::vector<L1Ref> refs;
  std::set<std::string> params;

  bool is_local(std::string_view n) const {
    for (const L1Scope& s : scopes) {
      if (s.values.count(std::string(n)) > 0) return true;
    }
    return false;
  }
};

/// Classifies the root of an initializer expression in [a, b).
RootInfo root_of(const std::vector<Token>& toks, std::size_t a,
                 std::size_t b, const L1State& st) {
  RootInfo out;
  std::size_t i = a;
  int guard = 0;
  while (i < b && guard++ < 64) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kIdent &&
        (t.text == "co_await" || t.text == "co_yield")) {
      out.suspends = true;
      // The awaited result is a prvalue as far as binding is concerned.
      out.kind = Root::kCall;
      return out;
    }
    if (t.kind == TokKind::kPunct) {
      if (t.text == "&" && i == a) {
        out.addr_of = true;
        ++i;
        continue;
      }
      if (t.text == "(" || t.text == "*" || t.text == "+" ||
          t.text == "-" || t.text == "!" || t.text == "~") {
        ++i;
        continue;
      }
      out.kind = Root::kValue;
      return out;
    }
    if (t.kind == TokKind::kNumber || t.kind == TokKind::kString ||
        t.kind == TokKind::kChar) {
      out.kind = Root::kValue;
      return out;
    }
    // Identifier: casts and std::move/forward unwrap to their argument.
    if (t.text == "static_cast" || t.text == "dynamic_cast" ||
        t.text == "const_cast" || t.text == "reinterpret_cast") {
      std::size_t j = i + 1;
      if (j < b && is_punct(toks[j], "<")) {
        j = skip_angles(toks, j, b);
        if (j == npos) break;
      }
      if (j < b && is_punct(toks[j], "(")) {
        i = j + 1;
        continue;
      }
      break;
    }
    // Read one qualified chain: id (:: id)*.
    std::size_t j = i;
    bool qualified = false;
    std::string first = toks[j].text;
    std::string second;
    while (j + 2 < b && is_punct(toks[j + 1], "::") &&
           toks[j + 2].kind == TokKind::kIdent) {
      qualified = true;
      if (second.empty()) second = toks[j + 2].text;
      j += 2;
    }
    const Token* next = j + 1 < b ? &toks[j + 1] : nullptr;
    if (qualified && first == "std" &&
        (second == "move" || second == "forward") && next != nullptr &&
        is_punct(*next, "(")) {
      i = j + 2;  // unwrap std::move(...)
      continue;
    }
    if (next != nullptr && (is_punct(*next, "(") || is_punct(*next, "{"))) {
      out.kind = Root::kCall;
      return out;
    }
    if (qualified) {
      out.kind = Root::kUnknown;
      return out;
    }
    out.name = first;
    if (st.is_local(first)) out.kind = Root::kLocal;
    else if (st.params.count(first) > 0) out.kind = Root::kParam;
    else out.kind = Root::kUnknown;
    return out;
  }
  return out;
}

struct L1Decl {
  bool ok = false;
  std::size_t next = 0;   // resume index for the walk
  std::string name;
  int name_line = 0;
  bool refness = false;
  bool ptr = false;
  bool range_for = false;  // `Type x : range` — skipped by design
  bool has_init = false;
  std::size_t init_begin = 0, init_end = 0;  // [begin, end) token range
};

/// Attempts to parse a simple declaration starting at `i` (a statement
/// start). Handles `T x;`, `T x = init;`, `T x(init);`, `T x{init};`,
/// refs/pointers, qualified and templated types. Initializer extents stop
/// at the first top-level ';' / ',' and never cross `close`.
L1Decl parse_decl(const std::vector<Token>& toks, std::size_t i,
                  std::size_t close) {
  L1Decl d;
  std::size_t j = i;
  int words = 0;
  std::string last_ident;
  int last_line = 0;
  int guard = 0;
  while (j < close && guard++ < 64) {
    const Token& t = toks[j];
    if (t.kind == TokKind::kIdent) {
      if (is_stmt_keyword(t.text)) return d;
      if (is_type_qualifier(t.text)) {
        ++words;
        ++j;
        continue;
      }
      last_ident = t.text;
      last_line = t.line;
      ++words;
      ++j;
      continue;
    }
    if (is_punct(t, "::")) {
      ++j;
      continue;
    }
    if (is_punct(t, "<")) {
      const std::size_t after = skip_angles(toks, j, close);
      if (after == npos) return d;
      j = after;
      continue;
    }
    if (is_punct(t, "&") || is_punct(t, "&&")) {
      d.refness = true;
      ++j;
      continue;
    }
    if (is_punct(t, "*")) {
      d.ptr = true;
      ++j;
      continue;
    }
    break;
  }
  if (words < 2 || last_ident.empty() || j >= close) return d;
  d.name = last_ident;
  d.name_line = last_line;
  const Token& term = toks[j];
  if (is_punct(term, ";") || is_punct(term, ",")) {
    d.ok = true;
    d.next = j;  // leave the terminator to the main walk
    return d;
  }
  if (is_punct(term, ":")) {
    d.ok = true;
    d.range_for = true;
    d.next = j;
    return d;
  }
  if (is_punct(term, "=")) {
    // Initializer runs to the first top-level ';' or ','.
    std::size_t k = j + 1;
    int depth = 0;
    while (k < close) {
      const Token& t = toks[k];
      if (t.kind == TokKind::kPunct) {
        if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
        else if (t.text == ")" || t.text == "]" || t.text == "}") --depth;
        else if ((t.text == ";" || t.text == ",") && depth == 0) break;
      }
      ++k;
    }
    d.ok = true;
    d.has_init = true;
    d.init_begin = j + 1;
    d.init_end = k;
    d.next = k;
    return d;
  }
  if (is_punct(term, "(") || is_punct(term, "{")) {
    // Constructor-style init: the balanced group is the initializer.
    int depth = 0;
    std::size_t k = j;
    while (k < close) {
      const Token& t = toks[k];
      if (t.kind == TokKind::kPunct) {
        if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
        else if (t.text == ")" || t.text == "]" || t.text == "}") {
          if (--depth == 0) break;
        }
      }
      ++k;
    }
    if (k >= close) return d;
    d.ok = true;
    d.has_init = true;
    d.init_begin = j + 1;
    d.init_end = k;
    d.next = k + 1;
    return d;
  }
  return d;
}

void l1_body(const LexedFile& f, const Scan& sc, std::size_t bi,
             std::vector<Finding>* out, const RuleDef& rule) {
  const std::vector<Token>& toks = f.tokens;
  const Body& body = sc.bodies[bi];
  L1State st;
  st.scopes.push_back({});
  st.params.insert(body.params.begin(), body.params.end());

  auto mark_suspend = [&st](int line) {
    for (L1Ref& r : st.refs) {
      if (r.suspend_line < 0) r.suspend_line = line;
    }
  };
  auto drop_scope_refs = [&st]() {
    const std::size_t depth = st.scopes.size();
    std::erase_if(st.refs,
                  [depth](const L1Ref& r) { return r.scope >= depth; });
  };

  bool stmt_start = true;
  bool for_header = false;
  std::size_t i = body.open + 1;
  while (i < body.close) {
    if (sc.body_of[i] != bi) {  // token inside a nested lambda body
      ++i;
      continue;
    }
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "{") {
        st.scopes.push_back({});
        stmt_start = true;
        ++i;
        continue;
      }
      if (t.text == "}") {
        if (st.scopes.size() > 1) {
          drop_scope_refs();
          st.scopes.pop_back();
        }
        stmt_start = true;
        ++i;
        continue;
      }
      if (t.text == ";") {
        stmt_start = true;
        ++i;
        continue;
      }
      if (t.text == "(" && for_header) {
        for_header = false;
        stmt_start = true;  // `for (` introduces an init declaration
        ++i;
        continue;
      }
      stmt_start = false;
      ++i;
      continue;
    }
    if (t.kind != TokKind::kIdent) {
      stmt_start = false;
      ++i;
      continue;
    }
    if (t.text == "co_await" || t.text == "co_yield") {
      mark_suspend(t.line);
      stmt_start = false;
      ++i;
      continue;
    }
    if (t.text == "for" || t.text == "while" || t.text == "if" ||
        t.text == "switch" || t.text == "catch") {
      for_header = t.text == "for";
      stmt_start = false;
      ++i;
      continue;
    }
    if (stmt_start && !is_stmt_keyword(t.text)) {
      L1Decl d = parse_decl(toks, i, body.close);
      if (d.ok && !d.range_for) {
        RootInfo root;
        if (d.has_init) {
          root = root_of(toks, d.init_begin, d.init_end, st);
          // A co_await inside the initializer suspends *before* the new
          // binding exists, so it only arms the refs declared earlier.
          for (std::size_t k = d.init_begin; k < d.init_end; ++k) {
            const Token& it = toks[k];
            if (it.kind == TokKind::kIdent &&
                (it.text == "co_await" || it.text == "co_yield")) {
              mark_suspend(it.line);
            }
            // Initializer identifiers are themselves uses of earlier refs.
            if (it.kind == TokKind::kIdent) {
              for (L1Ref& r : st.refs) {
                if (!r.reported && r.suspend_line >= 0 &&
                    r.name == it.text &&
                    !(k > 0 && (is_punct(toks[k - 1], ".") ||
                                is_punct(toks[k - 1], "->") ||
                                is_punct(toks[k - 1], "::")))) {
                  add(out, rule, f, it.line,
                      "'" + r.name + "' binds " + r.origin + " (line " +
                          std::to_string(r.decl_line) +
                          ") and is used after a co_await at line " +
                          std::to_string(r.suspend_line) +
                          "; copy the value before suspending");
                  r.reported = true;
                }
              }
            }
          }
        }
        const bool risky_ref =
            d.refness &&
            (root.kind == Root::kCall || root.kind == Root::kLocal);
        const bool risky_ptr = d.ptr && root.addr_of &&
                               root.kind == Root::kLocal;
        if (risky_ref || risky_ptr) {
          L1Ref r;
          r.name = d.name;
          r.decl_line = d.name_line;
          r.origin = root.kind == Root::kCall
                         ? "a temporary"
                         : "stack local '" + root.name + "'";
          r.scope = st.scopes.size();
          st.refs.push_back(std::move(r));
        } else {
          st.scopes.back().values.insert(d.name);
        }
        i = d.next;
        stmt_start = false;
        continue;
      }
    }
    // Plain identifier: a use of any armed risky ref.
    const bool member_access =
        i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->") ||
                  is_punct(toks[i - 1], "::"));
    if (!member_access) {
      for (L1Ref& r : st.refs) {
        if (!r.reported && r.suspend_line >= 0 && r.name == t.text) {
          add(out, rule, f, t.line,
              "'" + r.name + "' binds " + r.origin + " (line " +
                  std::to_string(r.decl_line) +
                  ") and is used after a co_await at line " +
                  std::to_string(r.suspend_line) +
                  "; copy the value before suspending");
          r.reported = true;
        }
      }
    }
    stmt_start = false;
    ++i;
  }
}

void rule_l1(const LexedFile& f, const Scan& sc, std::vector<Finding>* out) {
  const RuleDef& rule = rule_defs()[0];
  for (std::size_t bi = 0; bi < sc.bodies.size(); ++bi) {
    if (sc.bodies[bi].coroutine) l1_body(f, sc, bi, out, rule);
  }
}

// --------------------------------------------------------------------------
// MCB-L2: nondeterminism sources
// --------------------------------------------------------------------------

void rule_l2(const LexedFile& f, std::vector<Finding>* out) {
  const RuleDef& rule = rule_defs()[1];
  const std::vector<Token>& toks = f.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    const Token* prev = i > 0 ? &toks[i - 1] : nullptr;
    const Token* prev2 = i > 1 ? &toks[i - 2] : nullptr;
    const Token* next = i + 1 < toks.size() ? &toks[i + 1] : nullptr;
    const Token* next2 = i + 2 < toks.size() ? &toks[i + 2] : nullptr;
    const bool member =
        prev != nullptr && (is_punct(*prev, ".") || is_punct(*prev, "->"));
    const bool called = next != nullptr && is_punct(*next, "(");

    if (!member && called &&
        (t.text == "rand" || t.text == "srand" || t.text == "rand_r" ||
         t.text == "drand48")) {
      add(out, rule, f, t.line,
          "C PRNG call '" + t.text + "()' — use the run's seeded "
          "util::Random so results are a function of the seed");
      continue;
    }
    if (t.text == "random_device") {
      add(out, rule, f, t.line,
          "std::random_device draws host entropy — protocol randomness "
          "must come from the seeded util::Random");
      continue;
    }
    if (t.text == "this_thread") {
      add(out, rule, f, t.line,
          "std::this_thread queries host scheduling state — protocol code "
          "must not observe which thread runs it");
      continue;
    }
    if (t.text == "hardware_concurrency") {
      add(out, rule, f, t.line,
          "hardware_concurrency() is host topology — results must not "
          "depend on the machine's thread count");
      continue;
    }
    if (ends_with(t.text, "_clock") && next != nullptr &&
        is_punct(*next, "::") && next2 != nullptr &&
        is_ident(*next2, "now")) {
      add(out, rule, f, t.line,
          t.text + "::now() reads the wall clock — model time is the "
          "cycle counter; wall time is host telemetry only");
      continue;
    }
    if (!member && called &&
        (t.text == "time" || t.text == "clock" ||
         t.text == "gettimeofday" || t.text == "clock_gettime")) {
      // `std::time(...)` qualifies; `obj::time(...)` for other scopes
      // does not.
      const bool scoped = prev != nullptr && is_punct(*prev, "::");
      const bool std_scoped =
          scoped && prev2 != nullptr && is_ident(*prev2, "std");
      if (!scoped || std_scoped) {
        add(out, rule, f, t.line,
            "C time source '" + t.text + "()' — wall time is host "
            "telemetry, never protocol input");
      }
      continue;
    }
  }
}

// --------------------------------------------------------------------------
// MCB-L3: unordered-container iteration
// --------------------------------------------------------------------------

bool is_unordered(std::string_view s) {
  return s == "unordered_map" || s == "unordered_set" ||
         s == "unordered_multimap" || s == "unordered_multiset";
}

void rule_l3(const LexedFile& f, const Scan& sc, std::vector<Finding>* out) {
  const RuleDef& rule = rule_defs()[2];
  const std::vector<Token>& toks = f.tokens;

  // Names declared with an unordered container type, anywhere in the file
  // (locals, members, parameters). Flat per-file resolution is enough —
  // a name that shadows an unordered container with an ordered one in the
  // same file would be its own review problem.
  std::set<std::string> unordered_names;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || !is_unordered(toks[i].text)) {
      continue;
    }
    std::size_t j = i + 1;
    if (j < toks.size() && is_punct(toks[j], "<")) {
      j = skip_angles(toks, j, toks.size());
      if (j == npos) continue;
    }
    while (j < toks.size() &&
           (is_punct(toks[j], "&") || is_punct(toks[j], "*") ||
            is_punct(toks[j], "&&"))) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == TokKind::kIdent) {
      unordered_names.insert(toks[j].text);
    }
  }

  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "for") || !is_punct(toks[i + 1], "(")) continue;
    const std::size_t close = sc.match[i + 1];
    if (close == npos) continue;
    // Top-level ':' inside the parens marks a range-for.
    std::size_t colon = npos;
    int depth = 0;
    for (std::size_t j = i + 2; j < close; ++j) {
      const Token& t = toks[j];
      if (t.kind != TokKind::kPunct) continue;
      if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
      else if (t.text == ")" || t.text == "]" || t.text == "}") --depth;
      else if (t.text == ":" && depth == 0) {
        colon = j;
        break;
      } else if (t.text == ";" && depth == 0) {
        break;  // classic for
      }
    }
    if (colon == npos) continue;
    // Any identifier in the range expression that names (or is a member
    // path ending in) a known unordered container convicts the loop:
    // `seen`, `idx.by_id`, `this->index_` all resolve.
    std::string root;
    bool unordered = false;
    for (std::size_t j = colon + 1; j < close; ++j) {
      const Token& t = toks[j];
      if (t.kind == TokKind::kIdent) {
        if (is_unordered(t.text)) unordered = true;
        if (!unordered && unordered_names.count(t.text) > 0) {
          unordered = true;
          root = t.text;
        }
        if (root.empty() && !is_punct(toks[j - 1], "::")) root = t.text;
      }
    }
    if (unordered) {
      add(out, rule, f, toks[i].line,
          "range-for over unordered container" +
              (root.empty() ? std::string() : " '" + root + "'") +
              " — hash-iteration order leaks host nondeterminism into "
              "traces; use an ordered container or sort first");
    }
  }
}

// --------------------------------------------------------------------------
// MCB-L4: parallel-phase discipline
// --------------------------------------------------------------------------

bool is_assign_op(const Token& t) {
  static const std::set<std::string, std::less<>> ops{
      "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="};
  return t.kind == TokKind::kPunct && ops.count(t.text) > 0;
}

bool is_mutator(std::string_view s) {
  static const std::set<std::string, std::less<>> m{
      "push_back", "emplace_back", "pop_back", "clear",    "resize",
      "reserve",   "assign",       "insert",   "erase",    "emplace",
      "store",     "exchange",     "fetch_add", "fetch_sub", "swap",
      "push",      "pop",          "reset"};
  return m.count(s) > 0;
}

void rule_l4(const LexedFile& f, const Scan& sc, std::vector<Finding>* out) {
  const RuleDef& rule = rule_defs()[3];
  const std::vector<Token>& toks = f.tokens;

  struct Region {
    int begin_line = 0;
    int end_line = 0;
    const std::set<std::string>* allow = nullptr;
  };
  std::vector<Region> regions;
  const RegionMarker* open = nullptr;
  for (const RegionMarker& m : f.markers) {
    if (m.begin) {
      if (open != nullptr) {
        add(out, rule, f, m.line,
            "nested 'parallel-region begin' (previous begin at line " +
                std::to_string(open->line) + " is still open)");
      }
      open = &m;
    } else {
      if (open == nullptr) {
        add(out, rule, f, m.line, "'parallel-region end' without a begin");
        continue;
      }
      regions.push_back(Region{open->line, m.line, &open->allow});
      open = nullptr;
    }
  }
  if (open != nullptr) {
    add(out, rule, f, open->line,
        "'parallel-region begin' never closed by an end marker");
  }
  if (regions.empty()) return;

  auto region_allowing = [&regions](int line) -> const Region* {
    for (const Region& r : regions) {
      if (line > r.begin_line && line < r.end_line) return &r;
    }
    return nullptr;
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    const Region* reg = region_allowing(t.line);
    if (reg == nullptr) continue;

    // Roots: `member_` by naming convention, or `this->member`.
    bool rooted = t.text.size() > 1 && ends_with(t.text, "_");
    if (i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->") ||
                  is_punct(toks[i - 1], "::"))) {
      // Only `this->member` keeps root status; `other.member_` is rooted
      // at `other`, which is per-stripe state by construction.
      rooted = is_punct(toks[i - 1], "->") && i > 1 &&
               is_ident(toks[i - 2], "this");
    }
    if (!rooted) continue;

    bool write = false;
    std::string op;
    if (i > 0 && (is_punct(toks[i - 1], "++") || is_punct(toks[i - 1], "--"))) {
      write = true;
      op = toks[i - 1].text;
    }
    std::size_t j = i + 1;
    int guard = 0;
    while (!write && j < toks.size() && guard++ < 64) {
      const Token& n = toks[j];
      if (is_punct(n, "[")) {
        const std::size_t m = sc.match[j];
        if (m == npos) break;
        j = m + 1;
        continue;
      }
      if (is_punct(n, ".") || is_punct(n, "->")) {
        if (j + 1 >= toks.size() || toks[j + 1].kind != TokKind::kIdent) {
          break;
        }
        const std::string& sub = toks[j + 1].text;
        if (j + 2 < toks.size() && is_punct(toks[j + 2], "(")) {
          if (is_mutator(sub)) {
            write = true;
            op = sub + "()";
          }
          break;  // non-mutating call ends the chain
        }
        j += 2;
        continue;
      }
      if (is_assign_op(n) || is_punct(n, "++") || is_punct(n, "--")) {
        write = true;
        op = n.text;
      }
      break;
    }
    if (!write) continue;
    if (reg->allow->count(t.text) > 0) continue;
    std::string allowed;
    for (const std::string& a : *reg->allow) {
      allowed += allowed.empty() ? a : ", " + a;
    }
    add(out, rule, f, t.line,
        "write ('" + op + "') to engine member '" + t.text +
            "' inside a parallel region (allowed: " +
            (allowed.empty() ? "none" : allowed) +
            ") — shared state may only be mutated in serial commit "
            "phases");
  }
}

// --------------------------------------------------------------------------
// MCB-L5: busy-wait step() loops
// --------------------------------------------------------------------------

void rule_l5(const LexedFile& f, const Scan& sc, std::vector<Finding>* out) {
  const RuleDef& rule = rule_defs()[4];
  const std::vector<Token>& toks = f.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent || (t.text != "while" && t.text != "for")) {
      continue;
    }
    if (!is_punct(toks[i + 1], "(")) continue;
    const std::size_t header_close = sc.match[i + 1];
    if (header_close == npos) continue;
    std::size_t body_begin = header_close + 1;
    std::size_t body_end;  // exclusive, past the trailing ';'
    if (body_begin < toks.size() && is_punct(toks[body_begin], "{")) {
      const std::size_t brace_close = sc.match[body_begin];
      if (brace_close == npos) continue;
      body_end = brace_close;  // '}' excluded
      ++body_begin;
    } else {
      std::size_t j = body_begin;
      int depth = 0;
      while (j < toks.size()) {
        const Token& b = toks[j];
        if (b.kind == TokKind::kPunct) {
          if (b.text == "(" || b.text == "[" || b.text == "{") ++depth;
          else if (b.text == ")" || b.text == "]" || b.text == "}") --depth;
          else if (b.text == ";" && depth == 0) break;
        }
        ++j;
      }
      if (j >= toks.size()) continue;
      body_end = j + 1;
    }
    // The whole body must be exactly `co_await <expr>.step();`.
    const std::size_t n = body_end - body_begin;
    if (n < 5) continue;
    if (!is_ident(toks[body_begin], "co_await")) continue;
    int semis = 0;
    for (std::size_t j = body_begin; j < body_end; ++j) {
      if (is_punct(toks[j], ";")) ++semis;
    }
    if (semis != 1 || !is_punct(toks[body_end - 1], ";")) continue;
    if (!is_punct(toks[body_end - 2], ")") ||
        !is_punct(toks[body_end - 3], "(") ||
        !is_ident(toks[body_end - 4], "step")) {
      continue;
    }
    add(out, rule, f, toks[body_begin].line,
        "busy-wait loop around step(): O(t) simulation work where "
        "Proc::skip(t) is O(1) (see docs/ENGINE.md)");
  }
}

// --------------------------------------------------------------------------
// MCB-L6: naked new
// --------------------------------------------------------------------------

void rule_l6(const LexedFile& f, std::vector<Finding>* out) {
  const RuleDef& rule = rule_defs()[5];
  const std::vector<Token>& toks = f.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_ident(toks[i], "new")) continue;
    if (i > 0 && is_ident(toks[i - 1], "operator")) continue;  // definitions
    if (i + 1 >= toks.size()) continue;
    const Token& next = toks[i + 1];
    if (is_punct(next, "(")) continue;  // placement / nothrow form
    if (next.kind != TokKind::kIdent) continue;
    add(out, rule, f, toks[i].line,
        "naked new ('new " + next.text + "') in protocol code — frames "
        "come from the arena (util/arena.hpp), everything else owns "
        "memory via containers/smart pointers");
  }
}

// --------------------------------------------------------------------------
// Engine
// --------------------------------------------------------------------------

bool allow_matches(const std::set<std::string>& names, const Finding& fi) {
  return names.count(std::string(fi.slug)) > 0 ||
         names.count(fi.rule) > 0 || names.count("all") > 0;
}

}  // namespace

FileReport analyze(const LexedFile& f, const Options& opts) {
  const Scan sc = scan(f);
  std::vector<Finding> raw;
  const auto& defs = rule_defs();
  if (rule_in_scope(defs[0], f.path, opts.all_scopes)) rule_l1(f, sc, &raw);
  if (rule_in_scope(defs[1], f.path, opts.all_scopes)) rule_l2(f, &raw);
  if (rule_in_scope(defs[2], f.path, opts.all_scopes)) rule_l3(f, sc, &raw);
  if (rule_in_scope(defs[3], f.path, opts.all_scopes)) rule_l4(f, sc, &raw);
  if (rule_in_scope(defs[4], f.path, opts.all_scopes)) rule_l5(f, sc, &raw);
  if (rule_in_scope(defs[5], f.path, opts.all_scopes)) rule_l6(f, &raw);

  FileReport rep;
  for (Finding& fi : raw) {
    bool allowed = false;
    for (int line : {fi.line, fi.line - 1}) {
      auto it = f.allows.find(line);
      if (it != f.allows.end() && allow_matches(it->second, fi)) {
        allowed = true;
        break;
      }
    }
    if (allowed) {
      ++rep.suppressed_allow;
    } else {
      rep.findings.push_back(std::move(fi));
    }
  }
  sort_findings(&rep.findings);
  return rep;
}

void sort_findings(std::vector<Finding>* findings) {
  auto key = [](const Finding& a) {
    return std::tie(a.file, a.line, a.rule, a.detail);
  };
  std::sort(findings->begin(), findings->end(),
            [&key](const Finding& a, const Finding& b) {
              return key(a) < key(b);
            });
  findings->erase(std::unique(findings->begin(), findings->end(),
                              [&key](const Finding& a, const Finding& b) {
                                return key(a) == key(b);
                              }),
                  findings->end());
}

bool parse_baseline(std::string_view text, std::vector<BaselineEntry>* out,
                    std::string* error) {
  std::size_t lineno = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++lineno;
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) {
      line.remove_prefix(1);
    }
    while (!line.empty() &&
           (line.back() == ' ' || line.back() == '\t' || line.back() == '\r')) {
      line.remove_suffix(1);
    }
    if (line.empty() || line.front() == '#') continue;
    const std::size_t sp = line.find(' ');
    const std::size_t colon = line.rfind(':');
    if (sp == std::string_view::npos || colon == std::string_view::npos ||
        colon <= sp + 1) {
      if (error != nullptr) {
        *error = "baseline line " + std::to_string(lineno) +
                 ": expected '<rule> <file>:<line>'";
      }
      return false;
    }
    BaselineEntry e;
    e.rule = std::string(line.substr(0, sp));
    e.file = std::string(line.substr(sp + 1, colon - sp - 1));
    const std::string num(line.substr(colon + 1));
    char* end = nullptr;
    e.line = static_cast<int>(std::strtol(num.c_str(), &end, 10));
    if (end == nullptr || *end != '\0' || e.line <= 0) {
      if (error != nullptr) {
        *error = "baseline line " + std::to_string(lineno) +
                 ": bad line number '" + num + "'";
      }
      return false;
    }
    out->push_back(std::move(e));
  }
  return true;
}

int apply_baseline(std::vector<Finding>* findings,
                   const std::vector<BaselineEntry>& baseline,
                   std::vector<BaselineEntry>* stale) {
  int suppressed = 0;
  std::vector<bool> used(baseline.size(), false);
  std::erase_if(*findings, [&](const Finding& fi) {
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      const BaselineEntry& b = baseline[i];
      if (b.rule == fi.rule && b.file == fi.file && b.line == fi.line) {
        used[i] = true;
        ++suppressed;
        return true;
      }
    }
    return false;
  });
  if (stale != nullptr) {
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      if (!used[i]) stale->push_back(baseline[i]);
    }
  }
  return suppressed;
}

std::string render_text(const std::vector<Finding>& findings) {
  std::ostringstream os;
  for (const Finding& fi : findings) {
    os << fi.file << ":" << fi.line << ": " << fi.rule << " (" << fi.slug
       << "): " << fi.detail << "\n";
  }
  return os.str();
}

std::string render_json(const std::vector<Finding>& findings,
                        std::size_t files_scanned, int suppressed_allow,
                        int suppressed_baseline) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"tool\": \"mcblint\",\n";
  os << "  \"version\": 1,\n";
  os << "  \"files_scanned\": " << files_scanned << ",\n";
  os << "  \"suppressed\": {\"lint_allow\": " << suppressed_allow
     << ", \"baseline\": " << suppressed_baseline << "},\n";
  os << "  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& fi = findings[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"rule\": \"" << mcb::util::json_escape(fi.rule)
       << "\", \"slug\": \"" << mcb::util::json_escape(fi.slug)
       << "\", \"file\": \"" << mcb::util::json_escape(fi.file)
       << "\", \"line\": " << fi.line << ", \"detail\": \""
       << mcb::util::json_escape(fi.detail) << "\"}";
  }
  os << (findings.empty() ? "]\n" : "\n  ]\n");
  os << "}\n";
  return os.str();
}

}  // namespace mcblint
