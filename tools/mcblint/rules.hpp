// mcblint rule engine: the six repo-specific rules MCB-L1..L6, numbered in
// the style of the conformance checker's MCB-W1/R1/C1 trace rules. Where
// the conformance checker audits *executions* against the model spec, these
// rules audit *source* against the engine's determinism contract — the
// third leg next to TSan (races on observed schedules) and the trace
// checker (violations on observed runs). docs/LINT.md maps each rule to
// the invariant it protects.
//
//   MCB-L1  use-after-suspend      ref/pointer bound to a temporary or a
//                                  stack local, used after a later co_await
//   MCB-L2  nondeterminism         wall clocks / PRNGs / host-thread
//                                  queries in protocol & engine code
//   MCB-L3  unordered-iteration    range-for over std::unordered_*
//   MCB-L4  parallel-phase         writes to engine members inside fenced
//                                  parallel regions, off the allowlist
//   MCB-L5  busy-wait-step         loops whose whole body is co_await
//                                  ...step() — O(t) where skip() is O(1)
//   MCB-L6  naked-new              `new` outside the frame arena in
//                                  protocol code
//
// Escapes: a `lint-allow: <slug-or-id>` comment on the finding's line or
// the line above suppresses it; a baseline file grandfathers findings by
// exact (rule, file, line).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "mcblint/lexer.hpp"

namespace mcblint {

struct Finding {
  std::string rule;   // "MCB-L1" ... "MCB-L6"
  std::string slug;   // "use-after-suspend" ...
  std::string file;   // repo-relative path
  int line = 0;       // 1-based
  std::string detail;
};

struct Options {
  /// Ignore per-rule path scoping — every rule runs on every file. Used by
  /// the fixture tests (fixtures live under tests/, outside every scope).
  bool all_scopes = false;
};

struct FileReport {
  std::vector<Finding> findings;
  int suppressed_allow = 0;  // findings silenced by lint-allow comments
};

/// Runs every rule on one lexed file; findings are sorted by (line, rule)
/// and already filtered through the file's lint-allow comments.
FileReport analyze(const LexedFile& f, const Options& opts);

/// One baseline entry: an exact (rule, file, line) to grandfather.
struct BaselineEntry {
  std::string rule;
  std::string file;
  int line = 0;
};

/// Parses a baseline file ("MCB-L6 src/foo.cpp:12" per line, '#' comments).
/// Returns false on malformed lines (reported via *error).
bool parse_baseline(std::string_view text, std::vector<BaselineEntry>* out,
                    std::string* error);

/// Removes baselined findings in place; returns how many were suppressed.
/// Entries that matched nothing are reported through *stale.
int apply_baseline(std::vector<Finding>* findings,
                   const std::vector<BaselineEntry>& baseline,
                   std::vector<BaselineEntry>* stale);

/// Renderers over the merged, sorted finding list. Both are byte-stable
/// functions of their inputs — mcblint's own output is held to the same
/// determinism contract as the engines (ci.sh cmp's two runs).
std::string render_text(const std::vector<Finding>& findings);
std::string render_json(const std::vector<Finding>& findings,
                        std::size_t files_scanned, int suppressed_allow,
                        int suppressed_baseline);

/// Sort + exact-duplicate removal used before rendering: order is
/// (file, line, rule, detail).
void sort_findings(std::vector<Finding>* findings);

}  // namespace mcblint
