// mcblint CLI — the repo-specific static analyzer run by tools/lint.sh and
// tools/ci.sh. See docs/LINT.md for the rules and the invariants they
// protect.
//
//   usage: mcblint [options] <file-or-dir>...
//     --json               emit the strict-JSON report instead of text
//     --baseline <file>    grandfathered findings ("MCB-Lx path:line")
//     --root <dir>         repo root paths are reported relative to (default .)
//     --all-rules          ignore per-rule path scoping (fixture tests)
//     --list-rules         print the rule table and exit
//
// Exit codes (consumed by tools/lint.sh): 0 = clean, 1 = findings,
// 2 = usage or I/O error. Output is a pure function of the input files —
// ci.sh cmp's the JSON of two runs to hold the linter itself to the same
// determinism contract it enforces.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "mcblint/lexer.hpp"
#include "mcblint/rules.hpp"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

int usage() {
  std::cerr << "usage: mcblint [--json] [--baseline <file>] [--root <dir>]"
               " [--all-rules] <file-or-dir>...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool all_rules = false;
  std::string baseline_path;
  std::string root = ".";
  std::vector<std::string> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json") {
      json = true;
    } else if (a == "--all-rules") {
      all_rules = true;
    } else if (a == "--baseline") {
      if (++i >= argc) return usage();
      baseline_path = argv[i];
    } else if (a == "--root") {
      if (++i >= argc) return usage();
      root = argv[i];
    } else if (a == "--list-rules") {
      std::cout << "MCB-L1 use-after-suspend    ref/pointer to a temporary "
                   "or stack local used across co_await\n"
                << "MCB-L2 nondeterminism       wall clocks / PRNGs / host "
                   "topology in protocol code\n"
                << "MCB-L3 unordered-iteration  range-for over "
                   "std::unordered_* in protocol code\n"
                << "MCB-L4 parallel-phase       off-allowlist member writes "
                   "inside fenced parallel regions\n"
                << "MCB-L5 busy-wait-step       loop body that is only "
                   "co_await ...step()\n"
                << "MCB-L6 naked-new            naked new outside the frame "
                   "arena\n";
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      std::cerr << "mcblint: unknown option '" << a << "'\n";
      return usage();
    } else {
      inputs.push_back(a);
    }
  }
  if (inputs.empty()) return usage();

  // Expand directories, sort for deterministic order, dedupe.
  std::vector<fs::path> files;
  std::error_code ec;
  for (const std::string& in : inputs) {
    const fs::path p(in);
    if (fs::is_directory(p, ec)) {
      for (fs::recursive_directory_iterator it(p, ec), end; it != end;
           it.increment(ec)) {
        if (ec) break;
        if (it->is_regular_file(ec) && lintable(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      std::cerr << "mcblint: cannot read '" << in << "'\n";
      return 2;
    }
  }
  const fs::path root_path = fs::absolute(root, ec);
  auto rel = [&root_path](const fs::path& p) {
    std::error_code e;
    const fs::path a = fs::absolute(p, e);
    const fs::path r = a.lexically_relative(root_path);
    const std::string s = r.generic_string();
    return s.empty() || s.substr(0, 2) == ".." ? a.generic_string() : s;
  };
  std::sort(files.begin(), files.end(),
            [&rel](const fs::path& a, const fs::path& b) {
              return rel(a) < rel(b);
            });
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<mcblint::BaselineEntry> baseline;
  if (!baseline_path.empty()) {
    std::ifstream bf(baseline_path);
    if (!bf) {
      std::cerr << "mcblint: cannot read baseline '" << baseline_path
                << "'\n";
      return 2;
    }
    std::ostringstream ss;
    ss << bf.rdbuf();
    std::string err;
    if (!mcblint::parse_baseline(ss.str(), &baseline, &err)) {
      std::cerr << "mcblint: " << baseline_path << ": " << err << "\n";
      return 2;
    }
  }

  mcblint::Options opts;
  opts.all_scopes = all_rules;
  std::vector<mcblint::Finding> findings;
  int suppressed_allow = 0;
  for (const fs::path& p : files) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      std::cerr << "mcblint: cannot read '" << p.string() << "'\n";
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const mcblint::LexedFile lf = mcblint::lex(rel(p), ss.str());
    mcblint::FileReport rep = mcblint::analyze(lf, opts);
    suppressed_allow += rep.suppressed_allow;
    findings.insert(findings.end(),
                    std::make_move_iterator(rep.findings.begin()),
                    std::make_move_iterator(rep.findings.end()));
  }

  std::vector<mcblint::BaselineEntry> stale;
  const int suppressed_baseline =
      mcblint::apply_baseline(&findings, baseline, &stale);
  for (const mcblint::BaselineEntry& s : stale) {
    std::cerr << "mcblint: WARNING: stale baseline entry " << s.rule << " "
              << s.file << ":" << s.line << " matched no finding — remove "
              << "it from " << baseline_path << "\n";
  }

  mcblint::sort_findings(&findings);
  if (json) {
    std::cout << mcblint::render_json(findings, files.size(),
                                      suppressed_allow, suppressed_baseline);
  } else {
    std::cout << mcblint::render_text(findings);
  }
  std::cerr << "mcblint: " << files.size() << " file(s), "
            << findings.size() << " finding(s), " << suppressed_allow
            << " lint-allow'd, " << suppressed_baseline << " baselined\n";
  return findings.empty() ? 0 : 1;
}
