// mcblint scanner: structural view over a lexed file — matched brackets,
// function/lambda body extents, per-body parameter names and the
// coroutine property (a function is a coroutine iff its own body, not
// counting nested lambdas, contains co_await / co_return / co_yield).
//
// Classification of a '{' is heuristic but tuned to this repo's idiom: it
// distinguishes function bodies (including constructors with init lists,
// trailing return types and noexcept specifiers) and lambda bodies from
// class/namespace/enum braces, braced initializers and control-flow
// compound statements. Rules that need "inside a coroutine" (L1) or
// "this loop's body" (L5) build on these extents.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "mcblint/lexer.hpp"

namespace mcblint {

struct Body {
  std::size_t open = 0;   // token index of '{'
  std::size_t close = 0;  // token index of matching '}'
  bool lambda = false;
  bool coroutine = false;
  std::vector<std::string> params;  // declared parameter names, if any
};

struct Scan {
  /// match[i] = index of the bracket matching token i (for ( ) [ ] { }),
  /// or npos when unmatched.
  std::vector<std::size_t> match;
  /// Function and lambda bodies, in order of their '{' token.
  std::vector<Body> bodies;
  /// body_of[i] = index into `bodies` of the innermost body containing
  /// token i, or npos for file-scope tokens.
  std::vector<std::size_t> body_of;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

Scan scan(const LexedFile& f);

}  // namespace mcblint
