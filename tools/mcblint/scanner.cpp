#include "mcblint/scanner.hpp"

#include <algorithm>
#include <set>
#include <string_view>

namespace mcblint {

namespace {

constexpr std::size_t npos = Scan::npos;

bool is_punct(const Token& t, std::string_view s) {
  return t.kind == TokKind::kPunct && t.text == s;
}
bool is_ident(const Token& t, std::string_view s) {
  return t.kind == TokKind::kIdent && t.text == s;
}

const std::set<std::string, std::less<>>& control_keywords() {
  static const std::set<std::string, std::less<>> kw{
      "if", "while", "for", "switch", "catch"};
  return kw;
}

/// Declared parameter names between tokens (open, close) of a parameter
/// list: for each top-level comma-separated piece, the last identifier
/// before a default-argument '=' (or the end). Unnamed parameters yield
/// their type's last word, which is harmless — it can never collide with
/// a local variable use.
std::vector<std::string> parse_params(const std::vector<Token>& toks,
                                      std::size_t open, std::size_t close) {
  std::vector<std::string> names;
  std::string last_ident;
  int depth = 0;       // (), [], {}
  int angle = 0;       // best-effort <> balance inside a param list
  bool in_default = false;
  auto flush = [&] {
    if (!last_ident.empty()) names.push_back(last_ident);
    last_ident.clear();
    in_default = false;
  };
  for (std::size_t i = open + 1; i < close; ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
      else if (t.text == ")" || t.text == "]" || t.text == "}") --depth;
      else if (t.text == "<") ++angle;
      else if (t.text == ">" && angle > 0) --angle;
      else if (t.text == "," && depth == 0 && angle == 0) flush();
      else if (t.text == "=" && depth == 0 && angle == 0) in_default = true;
      continue;
    }
    if (t.kind == TokKind::kIdent && depth == 0 && angle == 0 &&
        !in_default) {
      last_ident = t.text;
    }
  }
  flush();
  return names;
}

/// Classifier for a '{' at token index i. Returns true when it opens a
/// function or lambda body, filling *out (params/lambda).
bool classify_body(const std::vector<Token>& toks,
                   const std::vector<std::size_t>& match, std::size_t i,
                   Body* out) {
  if (i == 0) return false;
  std::size_t j = i - 1;

  // Skip a trailing-return type: `) -> Type {`. Walk back over the type
  // words to the `->`, then resume the normal scan before it.
  {
    std::size_t k = j;
    int steps = 0;
    while (k > 0 && steps < 48) {
      const Token& t = toks[k];
      const bool type_tok =
          t.kind == TokKind::kIdent ||
          (t.kind == TokKind::kPunct &&
           (t.text == "::" || t.text == "<" || t.text == ">" ||
            t.text == "," || t.text == "*" || t.text == "&"));
      if (!type_tok) break;
      --k;
      ++steps;
    }
    if (k > 0 && k < j && is_punct(toks[k], "->")) j = k - 1;
  }

  // Walk back over specifier suffixes and constructor init lists until we
  // can see what precedes the (last) parenthesized group.
  int hops = 0;
  while (hops++ < 64) {
    const Token& t = toks[j];
    if (t.kind == TokKind::kIdent &&
        (t.text == "const" || t.text == "override" || t.text == "final" ||
         t.text == "mutable" || t.text == "noexcept" ||
         t.text == "constexpr")) {
      if (j == 0) return false;
      --j;
      continue;
    }
    if (is_punct(t, ")")) {
      const std::size_t open = match[j];
      if (open == npos || open == 0) return false;
      const Token& pre = toks[open - 1];
      if (pre.kind == TokKind::kIdent &&
          control_keywords().count(pre.text) > 0) {
        return false;  // if/while/for/switch/catch (...) {
      }
      if (is_ident(pre, "constexpr")) return false;  // if constexpr (...)
      if (is_ident(pre, "noexcept")) {
        // `) noexcept(expr) {` — skip the group, keep walking back.
        if (open - 1 == 0) return false;
        j = open - 2;
        continue;
      }
      if (is_punct(pre, "]")) {
        // [captures](params) ... {
        out->lambda = true;
        out->params = parse_params(toks, open, j);
        return true;
      }
      if (is_punct(pre, ")")) {
        // `operator()(params)` — the inner group is the declarator's ().
        const std::size_t open2 = match[open - 1];
        if (open2 != npos && open2 > 0 &&
            is_ident(toks[open2 - 1], "operator")) {
          out->params = parse_params(toks, open, j);
          return true;
        }
        return false;  // call-expression followed by braced init
      }
      if (pre.kind == TokKind::kIdent || is_punct(pre, ">") ||
          is_punct(pre, "::")) {
        // Either `name(params) {` — a function — or a constructor
        // init-list entry `: member(expr) {`; both open a function body.
        out->params = parse_params(toks, open, j);
        return true;
      }
      return false;
    }
    if (is_punct(t, "]")) {
      // `[captures] {` — a lambda with no parameter list, provided the
      // intro position can't be an array subscript.
      const std::size_t open = match[j];
      if (open == npos) return false;
      if (open == 0) {
        out->lambda = true;
        return true;
      }
      const Token& pre = toks[open - 1];
      if (pre.kind == TokKind::kPunct &&
          (pre.text == "(" || pre.text == "," || pre.text == "=" ||
           pre.text == "{" || pre.text == ";" || pre.text == "&&" ||
           pre.text == "||" || pre.text == "?" || pre.text == ":")) {
        out->lambda = true;
        return true;
      }
      if (pre.kind == TokKind::kIdent && pre.text == "return") {
        out->lambda = true;
        return true;
      }
      return false;
    }
    break;
  }
  return false;
}

}  // namespace

Scan scan(const LexedFile& f) {
  const std::vector<Token>& toks = f.tokens;
  Scan out;
  out.match.assign(toks.size(), npos);
  out.body_of.assign(toks.size(), npos);

  // Bracket matching. A stray closer (macro artifacts) is left unmatched
  // rather than popping an unrelated opener.
  std::vector<std::size_t> stack;
  auto opener_for = [](const std::string& s) -> char {
    if (s == ")") return '(';
    if (s == "]") return '[';
    return '{';
  };
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "(" || t.text == "[" || t.text == "{") {
      stack.push_back(i);
    } else if (t.text == ")" || t.text == "]" || t.text == "}") {
      const char want = opener_for(t.text);
      if (!stack.empty() && toks[stack.back()].text[0] == want) {
        out.match[stack.back()] = i;
        out.match[i] = stack.back();
        stack.pop_back();
      }
    }
  }

  // Body discovery, in token order (so bodies are sorted by `open` and
  // nested bodies follow their parents).
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_punct(toks[i], "{") || out.match[i] == npos) continue;
    Body b;
    if (classify_body(toks, out.match, i, &b)) {
      b.open = i;
      b.close = out.match[i];
      out.bodies.push_back(std::move(b));
    }
  }

  // Innermost-body attribution + coroutine detection in one sweep.
  std::vector<std::size_t> body_stack;
  std::size_t next_body = 0;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    while (!body_stack.empty() && i > out.bodies[body_stack.back()].close) {
      body_stack.pop_back();
    }
    if (next_body < out.bodies.size() &&
        out.bodies[next_body].open == i) {
      body_stack.push_back(next_body);
      ++next_body;
    }
    if (!body_stack.empty()) out.body_of[i] = body_stack.back();
    const Token& t = toks[i];
    if (t.kind == TokKind::kIdent && !body_stack.empty() &&
        (t.text == "co_await" || t.text == "co_return" ||
         t.text == "co_yield")) {
      out.bodies[body_stack.back()].coroutine = true;
    }
  }
  return out;
}

}  // namespace mcblint
