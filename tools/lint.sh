#!/usr/bin/env bash
# Static-analysis wall: clang-tidy (profile in .clang-tidy) plus the
# repo-specific lint rules, over src/. Run by tools/ci.sh; exits non-zero on
# any finding.
#
#   usage: tools/lint.sh [compile-commands-dir]
#
# clang-tidy needs a compile_commands.json (every configured build tree has
# one — CMAKE_EXPORT_COMPILE_COMMANDS is ON globally). The first existing of
# [argument, build, build-release] is used. When clang-tidy itself is not
# installed, that half is SKIPPED with a loud warning — mirroring the
# unenforced-bench-gate policy: a machine that cannot run a check must say
# so visibly, never silently pass it.
#
# Repo-specific rules (always run; no toolchain dependency):
#
#   busy-wait-step  A while/for loop whose body is only `co_await
#                   ...step();` burns O(t) simulation work where Proc::skip
#                   is O(1) — the anti-pattern PR 1 converted out of the
#                   library. Legitimate per-cycle participation inside a
#                   larger loop body is untouched.
#   naked-new       Protocol/coroutine code must not allocate with naked
#                   `new`: coroutine frames route through the frame arena
#                   (util/arena.hpp) and everything else owns memory via
#                   containers/smart pointers. Placement new and `operator
#                   new` definitions are exempt; a deliberate exception
#                   carries a `lint-allow: naked-new` comment.
set -uo pipefail

cd "$(dirname "$0")/.."
FAILURES=0
WARNINGS=0

# --- clang-tidy ------------------------------------------------------------

run_clang_tidy() {
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "WARNING: clang-tidy is not installed — the clang-tidy half of the" \
         "lint wall DID NOT RUN on this machine (repo lint still enforced)" >&2
    WARNINGS=$((WARNINGS + 1))
    return 0
  fi
  local ccdir=""
  for d in "${1:-}" build build-release; do
    if [ -n "$d" ] && [ -f "$d/compile_commands.json" ]; then
      ccdir="$d"
      break
    fi
  done
  if [ -z "$ccdir" ]; then
    echo "WARNING: no compile_commands.json found (configure a build tree" \
         "first, e.g. cmake --preset default) — clang-tidy DID NOT RUN" >&2
    WARNINGS=$((WARNINGS + 1))
    return 0
  fi
  echo "=== clang-tidy (database: $ccdir) ==="
  local rc=0
  # One process over all TUs keeps include parsing warm; --quiet suppresses
  # the per-file banner noise but not findings.
  if ! clang-tidy -p "$ccdir" --quiet $(find src -name '*.cpp' | sort); then
    rc=1
  fi
  if [ "$rc" -ne 0 ]; then
    echo "lint: clang-tidy reported findings" >&2
    FAILURES=$((FAILURES + 1))
  fi
}

# --- repo lint: busy-wait step() loops -------------------------------------

# Flags while/for loops whose entire body is a bare `co_await ...step();`:
#   while (cond) co_await self.step();
#   while (cond) { co_await self.step(); }
#   while (cond) {
#     co_await self.step();
#   }
check_busy_wait() {
  echo "=== repo lint: busy-wait step() loops ==="
  local found=0
  while IFS= read -r file; do
    local hits
    hits=$(awk '
      function report(line, text) {
        printf "%s:%d: busy-wait loop around step(): %s\n", FILENAME, line, text
      }
      {
        # Strip // comments so commented-out code never trips the rule.
        line = $0
        sub(/\/\/.*$/, "", line)
      }
      # Single-line forms, braced or not.
      /^[[:space:]]*(while|for)[[:space:]]*\(/ &&
      line ~ /co_await[^;]*\.step\(\);[[:space:]]*\}?[[:space:]]*$/ {
        report(NR, $0); next
      }
      # Multi-line form: header ending in "{", body that is only the
      # step() await, then a lone "}".  Runs before the window shift so
      # prev2/prev1 still hold the two preceding lines.
      /^[[:space:]]*\}[[:space:]]*$/ {
        if (prev2 ~ /^[[:space:]]*(while|for)[[:space:]]*\(.*\{[[:space:]]*$/ &&
            prev2nr == NR - 2 &&
            prev1 ~ /^[[:space:]]*co_await[^;]*\.step\(\);[[:space:]]*$/) {
          report(prev1nr, prev1)
        }
      }
      {
        prev2 = prev1; prev2nr = prev1nr
        prev1 = line; prev1nr = NR
      }
    ' "$file")
    if [ -n "$hits" ]; then
      echo "$hits" >&2
      found=1
    fi
  done < <(find src -name '*.cpp' -o -name '*.hpp' | sort)
  if [ "$found" -ne 0 ]; then
    echo "lint: convert busy-wait step() loops to Proc::skip(t) — O(1)" \
         "simulation work instead of O(t) (see docs/ENGINE.md)" >&2
    FAILURES=$((FAILURES + 1))
  fi
}

# --- repo lint: naked new in protocol/coroutine code -----------------------

check_naked_new() {
  echo "=== repo lint: naked new outside the arena ==="
  local found=0
  local hits
  hits=$(awk '
    /lint-allow: naked-new/ { next }
    /operator new/ { next }
    {
      line = $0
      sub(/\/\/.*$/, "", line)
      # Placement new never takes ownership: `new (addr) T` / `::new (...)`.
      if (line ~ /(^|[^[:alnum:]_])new[[:space:]]+[A-Za-z_]/ &&
          line !~ /new[[:space:]]*\(/) {
        printf "%s:%d: naked new in protocol code: %s\n", FILENAME, NR, $0
      }
    }
  ' $(find src/mcb src/algo src/se src/sched src/check src/harness \
        -name '*.cpp' -o -name '*.hpp' | sort))
  if [ -n "$hits" ]; then
    echo "$hits" >&2
    echo "lint: allocate through containers / the frame arena" \
         "(util/arena.hpp); annotate deliberate exceptions with" \
         "\"lint-allow: naked-new\"" >&2
    found=1
  fi
  if [ "$found" -ne 0 ]; then
    FAILURES=$((FAILURES + 1))
  fi
}

run_clang_tidy "${1:-}"
check_busy_wait
check_naked_new

if [ "$FAILURES" -gt 0 ]; then
  echo "LINT FAILED: $FAILURES rule group(s) reported findings" >&2
  exit 1
fi
if [ "$WARNINGS" -gt 0 ]; then
  echo "LINT OK with $WARNINGS WARNING(s): repo lint clean; some tools" \
       "were unavailable on this machine (see warnings above)"
else
  echo "LINT OK: clang-tidy and repo lint clean"
fi
