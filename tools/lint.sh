#!/usr/bin/env bash
# Static-analysis wall: mcblint (the repo-aware analyzer, tools/mcblint/,
# rules MCB-L1..L6 — see docs/LINT.md) plus the clang-tidy profile in
# .clang-tidy, over the library, tools and bench sources. Run by
# tools/ci.sh on every preset leg.
#
#   usage: tools/lint.sh [compile-commands-dir]
#
# Exit discipline (mirrors `mcbsim gates`):
#
#   0  clean — the enforced checks ran and passed
#   1  findings — mcblint or clang-tidy reported at least one problem
#   3  tool-missing-warn — no findings, but the ENFORCED analyzer could not
#      run: no mcblint binary exists in any configured build tree. ci.sh
#      surfaces 3 as a loud WARNING: a machine that cannot run the check
#      must say so visibly, never silently pass.
#
# mcblint is the enforced half (its rules need no external toolchain, only
# the repo's own build): the binary is searched across the configured build
# trees. clang-tidy is best-effort with the long-standing loud-skip policy
# — when it or its compile_commands.json is unavailable that half is
# SKIPPED with a loud warning and does not affect the exit code. The first
# existing database of [argument, build, build-release, build-tsan,
# build-perf] is used.
set -uo pipefail

cd "$(dirname "$0")/.."
FINDINGS=0
MISSING=0
SKIPPED=0

# Sources the wall covers. tests/ is excluded: tests/lint_fixtures/ exists
# to fire the rules (tests/mcblint_test.cpp asserts the exact findings).
LINT_PATHS=(src bench tools/mcbsim.cpp tools/mcblint)

# --- mcblint: repo rules MCB-L1..L6 -----------------------------------------

run_mcblint() {
  local bin=""
  for d in "${1:-}" build build-release build-tsan build-perf build-asan \
           build-noarena; do
    if [ -n "$d" ] && [ -x "$d/tools/mcblint/mcblint" ]; then
      bin="$d/tools/mcblint/mcblint"
      break
    fi
  done
  if [ -z "$bin" ]; then
    echo "WARNING: no mcblint binary in any configured build tree — the" \
         "repo rules MCB-L1..L6 DID NOT RUN (build one first, e.g." \
         "cmake --build build --target mcblint)" >&2
    MISSING=$((MISSING + 1))
    return 0
  fi
  echo "=== mcblint (repo rules MCB-L1..L6; binary: $bin) ==="
  local rc=0
  "$bin" --root . --baseline tools/mcblint/baseline.txt \
    "${LINT_PATHS[@]}" || rc=$?
  case "$rc" in
    0) ;;
    1)
      echo "lint: mcblint reported findings — fix, lint-allow with a" \
           "justification, or (exceptionally) baseline (docs/LINT.md)" >&2
      FINDINGS=$((FINDINGS + 1))
      ;;
    *)
      echo "lint: mcblint failed to run (exit $rc)" >&2
      FINDINGS=$((FINDINGS + 1))
      ;;
  esac
}

# --- clang-tidy --------------------------------------------------------------

run_clang_tidy() {
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "WARNING: clang-tidy is not installed — the clang-tidy half of the" \
         "lint wall DID NOT RUN on this machine (mcblint still enforced)" >&2
    SKIPPED=$((SKIPPED + 1))
    return 0
  fi
  local ccdir=""
  for d in "${1:-}" build build-release build-tsan build-perf; do
    if [ -n "$d" ] && [ -f "$d/compile_commands.json" ]; then
      ccdir="$d"
      break
    fi
  done
  if [ -z "$ccdir" ]; then
    echo "WARNING: no compile_commands.json found (configure a build tree" \
         "first, e.g. cmake --preset default) — clang-tidy DID NOT RUN" >&2
    SKIPPED=$((SKIPPED + 1))
    return 0
  fi
  echo "=== clang-tidy (database: $ccdir; $(nproc)-way parallel) ==="
  local start end rc=0
  start=$(date +%s)
  # One clang-tidy process per TU, file-parallel across the machine: TUs are
  # independent, so this scales where the old single-process run serialized.
  # xargs exits non-zero iff any invocation reported findings or failed.
  find src -name '*.cpp' | sort \
    | xargs -P "$(nproc)" -n 1 clang-tidy -p "$ccdir" --quiet || rc=$?
  end=$(date +%s)
  echo "clang-tidy wall time: $((end - start))s"
  if [ "$rc" -ne 0 ]; then
    echo "lint: clang-tidy reported findings" >&2
    FINDINGS=$((FINDINGS + 1))
  fi
}

run_mcblint "${1:-}"
run_clang_tidy "${1:-}"

if [ "$FINDINGS" -gt 0 ]; then
  echo "LINT FAILED: $FINDINGS check(s) reported findings" >&2
  exit 1
fi
if [ "$MISSING" -gt 0 ]; then
  echo "LINT INCOMPLETE: the enforced analyzer (mcblint) could not run on" \
       "this machine (see the warning above)" >&2
  exit 3
fi
if [ "$SKIPPED" -gt 0 ]; then
  echo "LINT OK with $SKIPPED WARNING(s): mcblint clean; the best-effort" \
       "clang-tidy half was unavailable on this machine (see above)"
else
  echo "LINT OK: mcblint and clang-tidy clean"
fi
